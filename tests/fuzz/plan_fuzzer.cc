// libFuzzer entry point for the repair-plan reader. The parser must
// return a clean Status on every input — any crash, sanitizer report, or
// runaway allocation is a finding. Interesting inputs should be minimized
// and committed to tests/data/corrupt/ so the table-driven regression
// test (corrupt_corpus_test.cc) keeps covering them without a fuzzer.
//
// Build (needs Clang; the target is skipped under GCC):
//   cmake -B build-fuzz -DCMAKE_CXX_COMPILER=clang++ -DOTFAIR_BUILD_FUZZERS=ON
//   cmake --build build-fuzz --target otfair_plan_fuzzer
// Run with the committed corpus as the seed set:
//   build-fuzz/tests/fuzz/otfair_plan_fuzzer tests/data/corrupt

#include <cstddef>
#include <cstdint>

#include "core/repair_plan.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  auto parsed = otfair::core::RepairPlanSet::ParseFromBuffer(
      reinterpret_cast<const char*>(data), size, "fuzz");
  if (parsed.ok()) {
    // A valid plan must survive its own round trip: re-serializing and
    // re-parsing exercises the writer against fuzzer-discovered shapes.
    const std::string bytes = parsed->SerializeToString();
    auto again = otfair::core::RepairPlanSet::ParseFromBuffer(bytes.data(), bytes.size(),
                                                             "fuzz-roundtrip");
    if (!again.ok()) __builtin_trap();
  }
  return 0;
}
