// libFuzzer entry point for the serve checkpoint reader. Exercises the
// full parse path — header, CRC, embedded plan, sketches, deferred drift
// payload — against arbitrary bytes. See plan_fuzzer.cc for build/run
// instructions; the target is otfair_checkpoint_fuzzer.

#include <cstddef>
#include <cstdint>

#include "serve/checkpointer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  auto parsed = otfair::serve::ParseCheckpoint(reinterpret_cast<const char*>(data),
                                               size, "fuzz");
  (void)parsed;  // Accepted or rejected — either is fine, crashing is not.
  return 0;
}
