#include "sim/gaussian_mixture.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace otfair::sim {
namespace {

TEST(GaussianMixtureTest, PaperDefaultConfiguration) {
  const GaussianSimConfig config = GaussianSimConfig::PaperDefault();
  EXPECT_EQ(config.dim, 2u);
  EXPECT_DOUBLE_EQ(config.sigma, 1.0);
  EXPECT_DOUBLE_EQ(config.pr_u0, 0.5);
  EXPECT_DOUBLE_EQ(config.pr_s0_given_u0, 0.3);
  EXPECT_DOUBLE_EQ(config.pr_s0_given_u1, 0.1);
  EXPECT_EQ(config.mean[0][0], (std::vector<double>{-1.0, -1.0}));
  EXPECT_EQ(config.mean[1][0], (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(config.mean[0][1], (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(config.mean[1][1], (std::vector<double>{0.0, 0.0}));
}

TEST(GaussianMixtureTest, ShapeAndNames) {
  common::Rng rng(1);
  auto d = SimulateGaussianMixture(100, GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 100u);
  EXPECT_EQ(d->dim(), 2u);
  EXPECT_EQ(d->feature_names(), (std::vector<std::string>{"x1", "x2"}));
  EXPECT_FALSE(d->has_outcome());
}

TEST(GaussianMixtureTest, GroupPriorsMatch) {
  common::Rng rng(2);
  auto d = SimulateGaussianMixture(60000, GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->ProportionU1(), 0.5, 0.01);
  // Pr[s=1|u] = 1 - Pr[s=0|u].
  EXPECT_NEAR(d->ProportionS1GivenU(0), 0.7, 0.01);
  EXPECT_NEAR(d->ProportionS1GivenU(1), 0.9, 0.01);
}

TEST(GaussianMixtureTest, ComponentMeansMatch) {
  common::Rng rng(3);
  auto d = SimulateGaussianMixture(40000, GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(d.ok());
  const auto idx00 = d->GroupIndices({0, 0});
  const auto idx10 = d->GroupIndices({1, 0});
  EXPECT_NEAR(stats::Mean(d->FeatureColumn(0, idx00)), -1.0, 0.05);
  EXPECT_NEAR(stats::Mean(d->FeatureColumn(1, idx00)), -1.0, 0.05);
  EXPECT_NEAR(stats::Mean(d->FeatureColumn(0, idx10)), 1.0, 0.05);
}

TEST(GaussianMixtureTest, UnitVarianceComponents) {
  common::Rng rng(4);
  auto d = SimulateGaussianMixture(40000, GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(d.ok());
  const auto idx = d->GroupIndices({0, 1});
  EXPECT_NEAR(stats::StdDev(d->FeatureColumn(0, idx)), 1.0, 0.03);
}

TEST(GaussianMixtureTest, CustomConfigRespected) {
  GaussianSimConfig config;
  config.dim = 3;
  config.sigma = 0.1;
  config.pr_u0 = 1.0;          // all u = 0
  config.pr_s0_given_u0 = 1.0;  // all s = 0
  config.pr_s0_given_u1 = 0.5;
  for (int u = 0; u <= 1; ++u)
    for (int s = 0; s <= 1; ++s) config.mean[u][s] = {9.0, 9.0, 9.0};
  common::Rng rng(5);
  auto d = SimulateGaussianMixture(500, config, rng);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->dim(), 3u);
  for (size_t i = 0; i < d->size(); ++i) {
    EXPECT_EQ(d->u(i), 0);
    EXPECT_EQ(d->s(i), 0);
    EXPECT_NEAR(d->feature(i, 2), 9.0, 1.0);
  }
}

TEST(GaussianMixtureTest, DeterministicGivenSeed) {
  common::Rng a(6);
  common::Rng b(6);
  auto da = SimulateGaussianMixture(50, GaussianSimConfig::PaperDefault(), a);
  auto db = SimulateGaussianMixture(50, GaussianSimConfig::PaperDefault(), b);
  ASSERT_TRUE(da.ok() && db.ok());
  for (size_t i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(da->feature(i, 0), db->feature(i, 0));
}

TEST(GaussianMixtureTest, CorrelationKnob) {
  GaussianSimConfig config = GaussianSimConfig::PaperDefault();
  config.rho = 0.8;
  common::Rng rng(8);
  auto d = SimulateGaussianMixture(30000, config, rng);
  ASSERT_TRUE(d.ok());
  // Empirical correlation within one component should approach rho.
  const auto idx = d->GroupIndices({0, 1});
  const auto xs = d->FeatureColumn(0, idx);
  const auto ys = d->FeatureColumn(1, idx);
  const double mx = stats::Mean(xs);
  const double my = stats::Mean(ys);
  double cov = 0.0;
  double vx = 0.0;
  double vy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - mx) * (ys[i] - my);
    vx += (xs[i] - mx) * (xs[i] - mx);
    vy += (ys[i] - my) * (ys[i] - my);
  }
  EXPECT_NEAR(cov / std::sqrt(vx * vy), 0.8, 0.02);
}

TEST(GaussianMixtureTest, ZeroRhoUncorrelated) {
  common::Rng rng(9);
  auto d = SimulateGaussianMixture(30000, GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(d.ok());
  const auto idx = d->GroupIndices({0, 1});
  const auto xs = d->FeatureColumn(0, idx);
  const auto ys = d->FeatureColumn(1, idx);
  const double mx = stats::Mean(xs);
  const double my = stats::Mean(ys);
  double cov = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) cov += (xs[i] - mx) * (ys[i] - my);
  cov /= static_cast<double>(xs.size());
  EXPECT_NEAR(cov, 0.0, 0.03);
}

TEST(GaussianMixtureTest, RejectsBadConfig) {
  common::Rng rng(7);
  EXPECT_FALSE(SimulateGaussianMixture(0, GaussianSimConfig::PaperDefault(), rng).ok());
  GaussianSimConfig bad_mean = GaussianSimConfig::PaperDefault();
  bad_mean.mean[0][0] = {1.0};  // wrong dimension
  EXPECT_FALSE(SimulateGaussianMixture(10, bad_mean, rng).ok());
  GaussianSimConfig bad_sigma = GaussianSimConfig::PaperDefault();
  bad_sigma.sigma = 0.0;
  EXPECT_FALSE(SimulateGaussianMixture(10, bad_sigma, rng).ok());
  GaussianSimConfig bad_prob = GaussianSimConfig::PaperDefault();
  bad_prob.pr_u0 = 1.5;
  EXPECT_FALSE(SimulateGaussianMixture(10, bad_prob, rng).ok());
}

TEST(MultiGroupSimTest, DefaultConfigSeparatesAdjacentLevels) {
  common::Rng rng(41);
  auto d = SimulateMultiGroupGaussian(20000, MultiGroupSimConfig::Default(4, 3), rng);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->s_levels(), 4u);
  EXPECT_EQ(d->u_levels(), 3u);
  EXPECT_EQ(d->dim(), 2u);
  // Within each u stratum the s-conditional means are strictly ordered
  // (the fanned-out default geometry) — the separation the repair targets.
  for (int u = 0; u < 3; ++u) {
    double prev = -1e30;
    for (int s = 0; s < 4; ++s) {
      const auto idx = d->GroupIndices({u, s});
      ASSERT_GT(idx.size(), 200u);
      double mean = 0.0;
      for (size_t i : idx) mean += d->feature(i, 0);
      mean /= static_cast<double>(idx.size());
      EXPECT_GT(mean, prev + 0.2) << "u=" << u << " s=" << s;
      prev = mean;
    }
  }
}

TEST(MultiGroupSimTest, ValidatesConfigShapes) {
  common::Rng rng(42);
  MultiGroupSimConfig config = MultiGroupSimConfig::Default(3, 2);
  config.mean[0].pop_back();  // ragged component grid
  EXPECT_FALSE(SimulateMultiGroupGaussian(10, config, rng).ok());
  config = MultiGroupSimConfig::Default(3, 2);
  config.pr_u = {1.0};  // prior shape mismatch
  EXPECT_FALSE(SimulateMultiGroupGaussian(10, config, rng).ok());
  config = MultiGroupSimConfig::Default(3, 2);
  config.pr_s_given_u[1] = {-1.0, 1.0, 1.0};  // negative prior
  EXPECT_FALSE(SimulateMultiGroupGaussian(10, config, rng).ok());
  config = MultiGroupSimConfig::Default(3, 2);
  config.mean[1][2] = {0.0};  // wrong dimension
  EXPECT_FALSE(SimulateMultiGroupGaussian(10, config, rng).ok());
}

TEST(MultiGroupSimTest, SingleUStratumIsSupported) {
  common::Rng rng(43);
  auto d = SimulateMultiGroupGaussian(500, MultiGroupSimConfig::Default(3, 1), rng);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->u_levels(), 1u);
  for (size_t i = 0; i < d->size(); ++i) EXPECT_EQ(d->u(i), 0);
}

}  // namespace
}  // namespace otfair::sim
