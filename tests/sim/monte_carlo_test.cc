#include "sim/monte_carlo.h"

#include <cmath>

#include <gtest/gtest.h>

namespace otfair::sim {
namespace {

using common::Result;
using common::Rng;
using common::Status;

TEST(MonteCarloTest, AggregatesMeanAndStd) {
  // Trial emits a deterministic counter: values 0, 1, 2, ... per trial via
  // rng-independent state is not possible (trials are stateless), so use
  // the rng uniform and check moments statistically instead.
  auto trial = [](Rng& rng) -> Result<std::map<std::string, double>> {
    return std::map<std::string, double>{{"u", rng.Uniform()}};
  };
  auto summary = RunMonteCarlo(2000, 42, trial);
  ASSERT_TRUE(summary.ok());
  const McSummary& s = summary->at("u");
  EXPECT_EQ(s.trials, 2000u);
  EXPECT_NEAR(s.mean, 0.5, 0.02);
  EXPECT_NEAR(s.std, std::sqrt(1.0 / 12.0), 0.02);
}

TEST(MonteCarloTest, MultipleMetricsAggregatedIndependently) {
  auto trial = [](Rng& rng) -> Result<std::map<std::string, double>> {
    const double u = rng.Uniform();
    return std::map<std::string, double>{{"a", u}, {"b", 10.0 + u}};
  };
  auto summary = RunMonteCarlo(500, 1, trial);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->size(), 2u);
  EXPECT_NEAR(summary->at("b").mean - summary->at("a").mean, 10.0, 1e-12);
  EXPECT_NEAR(summary->at("a").std, summary->at("b").std, 1e-12);
}

TEST(MonteCarloTest, ReproducibleGivenSeed) {
  auto trial = [](Rng& rng) -> Result<std::map<std::string, double>> {
    return std::map<std::string, double>{{"x", rng.Normal()}};
  };
  auto a = RunMonteCarlo(50, 7, trial);
  auto b = RunMonteCarlo(50, 7, trial);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->at("x").mean, b->at("x").mean);
  EXPECT_DOUBLE_EQ(a->at("x").std, b->at("x").std);
}

TEST(MonteCarloTest, DifferentSeedsDiffer) {
  auto trial = [](Rng& rng) -> Result<std::map<std::string, double>> {
    return std::map<std::string, double>{{"x", rng.Normal()}};
  };
  auto a = RunMonteCarlo(50, 7, trial);
  auto b = RunMonteCarlo(50, 8, trial);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->at("x").mean, b->at("x").mean);
}

TEST(MonteCarloTest, TrialsGetIndependentStreams) {
  // If every trial saw the same stream, the std of a per-trial draw would
  // be 0.
  auto trial = [](Rng& rng) -> Result<std::map<std::string, double>> {
    return std::map<std::string, double>{{"x", rng.Uniform()}};
  };
  auto summary = RunMonteCarlo(100, 3, trial);
  ASSERT_TRUE(summary.ok());
  EXPECT_GT(summary->at("x").std, 0.1);
}

TEST(MonteCarloTest, ErrorInTrialAbortsRun) {
  size_t calls = 0;
  auto trial = [&calls](Rng&) -> Result<std::map<std::string, double>> {
    if (++calls == 3) return Status::Internal("trial blew up");
    return std::map<std::string, double>{{"x", 1.0}};
  };
  auto summary = RunMonteCarlo(10, 1, trial);
  EXPECT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), common::StatusCode::kInternal);
  EXPECT_EQ(calls, 3u);
}

TEST(MonteCarloTest, InconsistentKeysRejected) {
  size_t calls = 0;
  auto trial = [&calls](Rng&) -> Result<std::map<std::string, double>> {
    ++calls;
    if (calls == 2) return std::map<std::string, double>{{"other", 1.0}};
    return std::map<std::string, double>{{"x", 1.0}};
  };
  auto summary = RunMonteCarlo(5, 1, trial);
  EXPECT_FALSE(summary.ok());
}

TEST(MonteCarloTest, ZeroTrialsRejected) {
  auto trial = [](Rng&) -> Result<std::map<std::string, double>> {
    return std::map<std::string, double>{{"x", 1.0}};
  };
  EXPECT_FALSE(RunMonteCarlo(0, 1, trial).ok());
}

TEST(MonteCarloTest, SingleTrialHasZeroStd) {
  auto trial = [](Rng&) -> Result<std::map<std::string, double>> {
    return std::map<std::string, double>{{"x", 4.2}};
  };
  auto summary = RunMonteCarlo(1, 1, trial);
  ASSERT_TRUE(summary.ok());
  EXPECT_DOUBLE_EQ(summary->at("x").mean, 4.2);
  EXPECT_DOUBLE_EQ(summary->at("x").std, 0.0);
}

}  // namespace
}  // namespace otfair::sim
