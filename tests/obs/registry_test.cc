#include "obs/registry.h"

#include <cmath>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "obs/prometheus.h"

namespace otfair::obs {
namespace {

using otfair::common::StatusCode;

TEST(RegistryTest, DuplicateNamesRejectedAcrossKinds) {
  Registry registry;
  ASSERT_TRUE(registry.AddCounter("otfair_x_total", "a counter").ok());
  // The namespace is shared: a second counter, a gauge, a histogram, and
  // a callback under the same name must all bounce.
  EXPECT_EQ(registry.AddCounter("otfair_x_total", "again").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.AddGauge("otfair_x_total", "as gauge").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.AddHistogram("otfair_x_total", "as histogram").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry
                .AddCallback("otfair_x_total", "as callback", MetricKind::kGauge,
                             [] { return std::vector<MetricSample>{}; })
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RegistryTest, InvalidNamesRejected) {
  Registry registry;
  EXPECT_FALSE(registry.AddCounter("", "empty").ok());
  EXPECT_FALSE(registry.AddCounter("9starts_with_digit", "bad").ok());
  EXPECT_FALSE(registry.AddCounter("has space", "bad").ok());
  EXPECT_FALSE(registry.AddCounter("has-dash", "bad").ok());
  EXPECT_TRUE(registry.AddCounter("ok_name:with_colon", "good").ok());
  EXPECT_TRUE(registry.AddCounter("_underscore_first", "good").ok());
}

TEST(RegistryTest, RelaxedCounterIsExactUnderEightThreadHammering) {
  Registry registry;
  Counter* counter = registry.AddCounter("hammered_total", "hammered").value();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 200000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  // fetch_add is exact regardless of memory order: no lost updates.
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kAddsPerThread));
}

TEST(RegistryTest, GaugeRoundTripsDoubles) {
  Registry registry;
  Gauge* gauge = registry.AddGauge("g", "gauge").value();
  EXPECT_EQ(gauge->Value(), 0.0);
  gauge->Set(3.5);
  EXPECT_EQ(gauge->Value(), 3.5);
  gauge->Set(-1.0);
  EXPECT_EQ(gauge->Value(), -1.0);
}

TEST(RegistryTest, HistogramBucketLadderIsMonotoneAndTight) {
  for (uint64_t us : {0ull, 1ull, 7ull, 8ull, 9ull, 100ull, 4095ull, 4096ull,
                      1000000ull, (1ull << 40)}) {
    const int bucket = Histogram::BucketIndex(us);
    ASSERT_GE(bucket, 0);
    ASSERT_LT(bucket, Histogram::kBuckets);
    // The value maps inside its own bucket's [lower, upper] range.
    EXPECT_LE(us, Histogram::BucketUpperEdgeUs(bucket)) << us;
    if (bucket + 1 < Histogram::kBuckets) {
      EXPECT_GT(Histogram::BucketUpperEdgeUs(bucket + 1),
                Histogram::BucketUpperEdgeUs(bucket));
    }
    // Log-linear with 8 sub-buckets: midpoint within 1/8 relative error.
    if (us >= 8) {
      EXPECT_NEAR(static_cast<double>(Histogram::BucketValueUs(bucket)),
                  static_cast<double>(us), static_cast<double>(us) / 8.0)
          << us;
    } else {
      EXPECT_EQ(Histogram::BucketValueUs(bucket), us);
    }
  }
}

TEST(RegistryTest, HistogramRecordsCountSumMaxAndQuantiles) {
  Registry registry;
  Histogram* histogram = registry.AddHistogram("h_us", "latencies").value();
  for (int i = 0; i < 90; ++i) histogram->Record(100);
  for (int i = 0; i < 10; ++i) histogram->Record(10000);
  const Histogram::Snapshot snap = histogram->Read();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.max, 10000u);
  EXPECT_DOUBLE_EQ(snap.sum, 90 * 100.0 + 10 * 10000.0);
  EXPECT_NEAR(static_cast<double>(snap.QuantileUs(0.5)), 100.0, 100.0 * 0.125);
  EXPECT_NEAR(static_cast<double>(snap.QuantileUs(0.99)), 10000.0, 10000.0 * 0.125);
}

TEST(RegistryTest, HistogramDeltaIsolatesAWindow) {
  Registry registry;
  Histogram* histogram = registry.AddHistogram("h_us", "latencies").value();
  for (int i = 0; i < 50; ++i) histogram->Record(10);
  const Histogram::Snapshot before = histogram->Read();
  for (int i = 0; i < 30; ++i) histogram->Record(2000);
  const Histogram::Snapshot after = histogram->Read();
  const Histogram::Snapshot window = Histogram::Delta(after, before);
  EXPECT_EQ(window.count, 30u);
  EXPECT_DOUBLE_EQ(window.sum, 30 * 2000.0);
  // The old population cancels out: the window quantile sees only 2000s.
  EXPECT_NEAR(static_cast<double>(window.QuantileUs(0.5)), 2000.0, 2000.0 * 0.125);
}

TEST(RegistryTest, NamesSortedAndCallbackHandleUnregisters) {
  Registry registry;
  ASSERT_TRUE(registry.AddCounter("zz_total", "z").ok());
  ASSERT_TRUE(registry.AddGauge("aa", "a").ok());
  {
    auto handle = registry.AddCallback("mm", "m", MetricKind::kGauge, [] {
      return std::vector<MetricSample>{{"k=\"1\"", 42.0}};
    });
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(registry.Names(), (std::vector<std::string>{"aa", "mm", "zz_total"}));
    bool found = false;
    for (const MetricFamily& family : registry.Collect()) {
      if (family.name != "mm") continue;
      found = true;
      ASSERT_EQ(family.samples.size(), 1u);
      EXPECT_EQ(family.samples[0].labels, "k=\"1\"");
      EXPECT_EQ(family.samples[0].value, 42.0);
    }
    EXPECT_TRUE(found);
  }
  // Handle destruction frees the name for re-registration.
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"aa", "zz_total"}));
  EXPECT_TRUE(registry
                  .AddCallback("mm", "m2", MetricKind::kGauge,
                               [] { return std::vector<MetricSample>{}; })
                  .ok());
}

TEST(RegistryTest, PrometheusRenderingCoversEveryKind) {
  Registry registry;
  registry.AddCounter("demo_total", "a counter").value()->Add(7);
  registry.AddGauge("demo_gauge", "a gauge").value()->Set(2.5);
  Histogram* histogram = registry.AddHistogram("demo_us", "a histogram").value();
  histogram->Record(3);
  histogram->Record(700);
  auto handle = registry.AddCallback("demo_labeled", "labeled", MetricKind::kGauge, [] {
    return std::vector<MetricSample>{{"u=\"0\",s=\"1\"", 0.25}};
  });
  ASSERT_TRUE(handle.ok());

  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE demo_total counter\ndemo_total 7\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE demo_gauge gauge\ndemo_gauge 2.5\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE demo_us histogram\n"), std::string::npos) << text;
  EXPECT_NE(text.find("demo_us_bucket{le=\"+Inf\"} 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("demo_us_sum 703\n"), std::string::npos) << text;
  EXPECT_NE(text.find("demo_us_count 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("demo_labeled{u=\"0\",s=\"1\"} 0.25\n"), std::string::npos) << text;
  // Cumulative buckets: the le="4" bucket already holds the 3 µs record.
  EXPECT_NE(text.find("demo_us_bucket{le=\"4\"} 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("demo_us_bucket{le=\"1024\"} 2\n"), std::string::npos) << text;
}

}  // namespace
}  // namespace otfair::obs
