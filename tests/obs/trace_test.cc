#include "obs/trace.h"

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace otfair::obs {
namespace {

/// The collector is a process singleton shared across tests; every test
/// starts from a clean slate.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Global().Disable();
    TraceCollector::Global().ResetForTest();
  }
  void TearDown() override {
    TraceCollector::Global().Disable();
    TraceCollector::Global().ResetForTest();
  }
};

TEST_F(TraceTest, RingKeepsNewestOnWraparoundAndCountsDrops) {
  TraceRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) ring.Push("span", /*start_ns=*/i, /*end_ns=*/i + 1);
  std::vector<CompletedSpan> out;
  const uint64_t dropped = ring.Drain(/*tid=*/7, &out);
  // Overwrite-oldest: the 8 newest survive, the 12 oldest are counted.
  EXPECT_EQ(dropped, 12u);
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].start_ns, 12 + i);
    EXPECT_EQ(out[i].end_ns, 13 + i);
    EXPECT_EQ(out[i].tid, 7u);
  }
}

TEST_F(TraceTest, RingDrainsIncrementally) {
  TraceRing ring(16);
  ring.Push("a", 1, 2);
  ring.Push("b", 3, 4);
  std::vector<CompletedSpan> out;
  EXPECT_EQ(ring.Drain(1, &out), 0u);
  EXPECT_EQ(out.size(), 2u);
  ring.Push("c", 5, 6);
  out.clear();
  EXPECT_EQ(ring.Drain(1, &out), 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_STREQ(out[0].name, "c");
  EXPECT_EQ(ring.pushed(), 3u);
}

TEST_F(TraceTest, DisabledSpanEmitsNothing) {
  ASSERT_FALSE(TraceCollector::Global().enabled());
  { OTFAIR_TRACE_SPAN("never_recorded"); }
  for (const CompletedSpan& span : TraceCollector::Global().Drain())
    EXPECT_STRNE(span.name, "never_recorded");
}

TEST_F(TraceTest, EnabledSpanRecordsOrderedTimestamps) {
  TraceCollector::Global().Enable();
  { OTFAIR_TRACE_SPAN("recorded_once"); }
  TraceCollector::Global().Disable();
  int hits = 0;
  for (const CompletedSpan& span : TraceCollector::Global().Drain()) {
    if (std::string(span.name) != "recorded_once") continue;
    ++hits;
    EXPECT_LE(span.start_ns, span.end_ns);
    EXPECT_GT(span.tid, 0u);
  }
  EXPECT_EQ(hits, 1);
}

TEST_F(TraceTest, CrossThreadDrainSeesEveryThreadsSpans) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  TraceCollector::Global().Enable();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        OTFAIR_TRACE_SPAN("cross_thread");
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  TraceCollector::Global().Disable();

  std::map<uint32_t, int> per_tid;
  std::map<uint32_t, uint64_t> last_start;
  for (const CompletedSpan& span : TraceCollector::Global().Drain()) {
    if (std::string(span.name) != "cross_thread") continue;
    ++per_tid[span.tid];
    // Within one thread the drained order preserves emission order, and
    // the steady clock is monotone per thread.
    EXPECT_GE(span.start_ns, last_start[span.tid]);
    last_start[span.tid] = span.start_ns;
  }
  ASSERT_EQ(per_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, count] : per_tid) EXPECT_EQ(count, kSpansPerThread) << tid;
  EXPECT_EQ(TraceCollector::Global().dropped_total(), 0u);
}

TEST_F(TraceTest, ConcurrentPushAndDrainNeverTearsASlot) {
  // Hammer one thread's ring while the collector drains concurrently:
  // every drained span must be internally consistent (seqlock discards
  // torn reads as drops, never emits them).
  TraceCollector::Global().Enable();
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      internal::EmitCompletedSpan("torn_check", 2 * i, 2 * i + 1);
      ++i;
    }
  });
  // Keep draining until enough spans have raced past (the producer
  // thread may take a while to start); the producer never stops pushing,
  // so this terminates.
  uint64_t seen = 0;
  while (seen < 20000) {
    for (const CompletedSpan& span : TraceCollector::Global().Drain()) {
      if (std::string(span.name) != "torn_check") continue;
      ++seen;
      // start even, end = start + 1: any mixed-generation read breaks it.
      EXPECT_EQ(span.start_ns % 2, 0u);
      EXPECT_EQ(span.end_ns, span.start_ns + 1);
    }
    TraceCollector::Global().ResetForTest();
  }
  stop.store(true, std::memory_order_relaxed);
  producer.join();
  EXPECT_GE(seen, 20000u);
}

TEST_F(TraceTest, ChromeTraceJsonMatchesGoldenSchema) {
  // Two spans with known rebased timestamps: the earliest start becomes
  // ts 0, a span starting 1000 ns later gets ts 1 (µs). Everything else
  // in the golden fragment is fixed by the Chrome trace-event schema.
  internal::EmitCompletedSpan("alpha", 1000, 5000);
  internal::EmitCompletedSpan("beta", 2000, 3000);
  const std::string json = TraceCollector::Global().ChromeTraceJson();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"alpha\",\"cat\":\"otfair\",\"ph\":\"X\",\"pid\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ts\":0,\"dur\":4}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"beta\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":1,\"dur\":1}"), std::string::npos) << json;
  EXPECT_EQ(json.substr(json.size() - 2), "]}") << json;
}

TEST_F(TraceTest, WriteChromeTraceProducesLoadableFile) {
  internal::EmitCompletedSpan("file_span", 10, 20);
  const std::string path = ::testing::TempDir() + "/otfair_trace_test.json";
  ASSERT_TRUE(TraceCollector::Global().WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("file_span"), std::string::npos);
}

}  // namespace
}  // namespace otfair::obs
