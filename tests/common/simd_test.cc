#include "common/simd.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace otfair::common::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The widest compiled lane count is 4 (AVX2 doubles); the issue's parity
// sweep asks for every unaligned length up to 4*lanes + 3, and the unrolled
// reduction kernels consume 16 at a time, so sweep well past that too.
constexpr size_t kMaxLen = 4 * 4 + 3;
constexpr size_t kUnrollLen = 67;  // > 4 * 16, hits the unrolled main loops

std::vector<double> RandomVec(Rng& rng, size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = lo + (hi - lo) * rng.Uniform();
  return v;
}

// Reductions re-associate across lanes, so parity with the scalar table is
// checked to a tight relative tolerance, not bit equality.
void ExpectClose(double expected, double actual) {
  if (std::isinf(expected)) {
    EXPECT_EQ(expected, actual);
    return;
  }
  const double scale = std::max(1.0, std::abs(expected));
  EXPECT_NEAR(expected, actual, 1e-12 * scale);
}

class SimdParityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SimdParityTest, SumDotMatchScalar) {
  const size_t n = GetParam();
  Rng rng(1234 + n);
  const auto x = RandomVec(rng, n, -3.0, 3.0);
  const auto y = RandomVec(rng, n, -2.0, 5.0);
  const Ops& best = BestOps();
  ExpectClose(ScalarOps().sum(x.data(), n), best.sum(x.data(), n));
  ExpectClose(ScalarOps().dot(x.data(), y.data(), n),
              best.dot(x.data(), y.data(), n));
}

TEST_P(SimdParityTest, MaxKernelsBitExact) {
  const size_t n = GetParam();
  Rng rng(99 + n);
  const auto x = RandomVec(rng, n, -10.0, 10.0);
  const auto y = RandomVec(rng, n, -10.0, 10.0);
  const Ops& best = BestOps();
  // Max and MaxAbsDiff only compare/subtract element-wise: bit-exact.
  EXPECT_EQ(ScalarOps().max(x.data(), n), best.max(x.data(), n));
  EXPECT_EQ(ScalarOps().max_abs_diff(x.data(), y.data(), n),
            best.max_abs_diff(x.data(), y.data(), n));
}

TEST_P(SimdParityTest, ElementwiseKernelsBitExact) {
  const size_t n = GetParam();
  Rng rng(7 + n);
  const auto x = RandomVec(rng, n, -4.0, 4.0);
  const auto y = RandomVec(rng, n, -4.0, 4.0);
  auto dst_scalar = RandomVec(rng, n, 0.0, 1.0);
  auto dst_vector = dst_scalar;
  const Ops& best = BestOps();

  ScalarOps().add_in_place(dst_scalar.data(), x.data(), n);
  best.add_in_place(dst_vector.data(), x.data(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(dst_scalar[i], dst_vector[i]);

  ScalarOps().scaled_mul(dst_scalar.data(), x.data(), y.data(), 0.37, n);
  best.scaled_mul(dst_vector.data(), x.data(), y.data(), 0.37, n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(dst_scalar[i], dst_vector[i]);
}

TEST_P(SimdParityTest, LseDiffMatchesScalar) {
  const size_t n = GetParam();
  Rng rng(4242 + n);
  // Sinkhorn feeds log-potential minus scaled-cost differences that span a
  // wide dynamic range; exercise both moderate and extreme spreads.
  const auto x = RandomVec(rng, n, -50.0, 50.0);
  const auto y = RandomVec(rng, n, -30.0, 30.0);
  const Ops& best = BestOps();
  const double expected = ScalarOps().lse_diff(x.data(), y.data(), n);
  const double actual = best.lse_diff(x.data(), y.data(), n);
  ExpectClose(expected, actual);
}

TEST_P(SimdParityTest, LseDiffHandlesNegInfTerms) {
  const size_t n = GetParam();
  Rng rng(5 + n);
  auto x = RandomVec(rng, n, -5.0, 5.0);
  const auto y = RandomVec(rng, n, -5.0, 5.0);
  // Zero-mass atoms enter the log-domain solver as -inf log-weights.
  for (size_t i = 0; i < n; i += 2) x[i] = -kInf;
  const Ops& best = BestOps();
  const double expected = ScalarOps().lse_diff(x.data(), y.data(), n);
  const double actual = best.lse_diff(x.data(), y.data(), n);
  ExpectClose(expected, actual);

  // All terms -inf: the LSE is -inf in both paths.
  std::vector<double> all_ninf(n, -kInf);
  EXPECT_EQ(-kInf, ScalarOps().lse_diff(all_ninf.data(), y.data(), n));
  EXPECT_EQ(-kInf, best.lse_diff(all_ninf.data(), y.data(), n));
}

INSTANTIATE_TEST_SUITE_P(UnalignedLengths, SimdParityTest,
                         ::testing::Range<size_t>(1, kMaxLen + 1));
INSTANTIATE_TEST_SUITE_P(UnrolledLengths, SimdParityTest,
                         ::testing::Values<size_t>(kUnrollLen, kUnrollLen + 1,
                                                   kUnrollLen + 2, 256));

TEST(SimdTest, EmptyInputs) {
  const Ops& best = BestOps();
  EXPECT_EQ(0.0, best.sum(nullptr, 0));
  EXPECT_EQ(0.0, best.dot(nullptr, nullptr, 0));
  EXPECT_EQ(-kInf, best.max(nullptr, 0));
  EXPECT_EQ(0.0, best.max_abs_diff(nullptr, nullptr, 0));
  EXPECT_EQ(-kInf, best.lse_diff(nullptr, nullptr, 0));
}

TEST(SimdTest, VectorExpAccuracyAcrossRange) {
  // LseDiff with y = 0 and a single dominant term isolates the vector exp:
  // lse([v, hi]) = hi + log(exp(v - hi) + 1). Instead probe exp directly
  // through a 4-lane lse where three lanes are -inf.
  const Ops& best = BestOps();
  for (double v = -700.0; v <= 0.0; v += 0.37) {
    const double x[4] = {v, -kInf, -kInf, 0.0};
    const double y[4] = {0.0, 0.0, 0.0, 0.0};
    const double expected = std::log(std::exp(v) + 1.0);
    const double actual = best.lse_diff(x, y, 4);
    EXPECT_NEAR(expected, actual, 1e-14 * std::max(1.0, std::abs(expected)))
        << "v=" << v;
  }
}

TEST(SimdTest, ForceScalarSwitchesActiveTable) {
  const bool was_forced = ForcedScalar();
  SetForceScalar(true);
  EXPECT_TRUE(ForcedScalar());
  EXPECT_STREQ("scalar", ActiveIsa());
  EXPECT_EQ(&Active(), &ScalarOps());
  SetForceScalar(false);
  EXPECT_FALSE(ForcedScalar());
  EXPECT_EQ(&Active(), &BestOps());
  SetForceScalar(was_forced);
}

TEST(SimdTest, IsaTagIsKnown) {
  const std::string isa = BestOps().isa;
  EXPECT_TRUE(isa == "scalar" || isa == "avx2" || isa == "neon") << isa;
}

}  // namespace
}  // namespace otfair::common::simd
