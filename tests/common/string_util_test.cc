#include "common/string_util.h"

#include <gtest/gtest.h>

namespace otfair::common {
namespace {

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitKeepsEmptyTokens) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitSingleToken) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  const std::vector<std::string> tokens = {"x", "y", "z"};
  EXPECT_EQ(Join(tokens, ","), "x,y,z");
  EXPECT_EQ(Split(Join(tokens, ","), ','), tokens);
}

TEST(StringUtilTest, JoinEmpty) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-flag", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 2.5), "2.50");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  const std::string long_str(500, 'x');
  EXPECT_EQ(StrFormat("%s", long_str.c_str()).size(), 500u);
}

}  // namespace
}  // namespace otfair::common
