#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace otfair::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, OkCodeClearsMessage) {
  Status status(StatusCode::kOk, "ignored");
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad").ToString(), "INVALID_ARGUMENT: bad");
  EXPECT_EQ(Status::NotConverged("slow").ToString(), "NOT_CONVERGED: slow");
  EXPECT_EQ(Status::Unavailable("busy").ToString(), "UNAVAILABLE: busy");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::IoError("a"));
  EXPECT_EQ(Status(), Status::Ok());
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::NotFound("missing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    OTFAIR_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = []() -> Status { return Status::Ok(); };
  auto outer = [&]() -> Status {
    OTFAIR_RETURN_IF_ERROR(succeeds());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, CodeNamesAreUnique) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STRNE(StatusCodeToString(StatusCode::kInternal),
               StatusCodeToString(StatusCode::kNotConverged));
}

}  // namespace
}  // namespace otfair::common
