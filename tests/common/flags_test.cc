#include "common/flags.h"

#include <gtest/gtest.h>

namespace otfair::common {
namespace {

FlagParser MakeParser(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser flags = MakeParser({"--trials=200", "--seed=42"});
  EXPECT_EQ(flags.GetInt("trials", 0), 200);
  EXPECT_EQ(flags.GetUint64("seed", 0), 42u);
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser flags = MakeParser({"--name", "adult"});
  EXPECT_EQ(flags.GetString("name", ""), "adult");
}

TEST(FlagsTest, BareBooleanFlag) {
  FlagParser flags = MakeParser({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
}

TEST(FlagsTest, BoolParsesCommonSpellings) {
  EXPECT_TRUE(MakeParser({"--x=true"}).GetBool("x", false));
  EXPECT_TRUE(MakeParser({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(MakeParser({"--x=yes"}).GetBool("x", false));
  EXPECT_FALSE(MakeParser({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(MakeParser({"--x=0"}).GetBool("x", true));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  FlagParser flags = MakeParser({});
  EXPECT_EQ(flags.GetInt("trials", 50), 50);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.05), 0.05);
  EXPECT_EQ(flags.GetString("name", "default"), "default");
  EXPECT_FALSE(flags.Has("trials"));
}

TEST(FlagsTest, DoubleParsing) {
  FlagParser flags = MakeParser({"--t=0.75"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("t", 0.0), 0.75);
}

TEST(FlagsTest, IntListParsing) {
  FlagParser flags = MakeParser({"--sizes=25,50,100"});
  EXPECT_EQ(flags.GetIntList("sizes", {}), (std::vector<int>{25, 50, 100}));
}

TEST(FlagsTest, IntListDefault) {
  FlagParser flags = MakeParser({});
  EXPECT_EQ(flags.GetIntList("sizes", {5, 10}), (std::vector<int>{5, 10}));
}

TEST(FlagsTest, PositionalArguments) {
  FlagParser flags = MakeParser({"input.csv", "--n=3", "output.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "output.csv");
}

TEST(FlagsTest, ValidateAcceptsKnownFlags) {
  FlagParser flags = MakeParser({"--trials=5", "--seed=1"});
  EXPECT_TRUE(flags.Validate({"trials", "seed", "unused"}).ok());
}

TEST(FlagsTest, ValidateRejectsUnknownFlags) {
  FlagParser flags = MakeParser({"--trails=5"});  // typo
  Status status = flags.Validate({"trials"});
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("trails"), std::string::npos);
}

TEST(FlagsTest, ProgramNameCaptured) {
  FlagParser flags = MakeParser({});
  EXPECT_EQ(flags.program_name(), "prog");
}

}  // namespace
}  // namespace otfair::common
