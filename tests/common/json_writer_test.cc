#include "common/json_writer.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace otfair::common {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject()
      .Key("name").String("otfair")
      .Key("rows").Uint(42)
      .Key("delta").Int(-7)
      .Key("ok").Bool(true)
      .Key("none").Null()
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"otfair\",\"rows\":42,\"delta\":-7,\"ok\":true,\"none\":null}");
}

TEST(JsonWriterTest, NestedObjectsAndArrays) {
  JsonWriter w;
  w.BeginObject().Key("channels").BeginArray();
  for (int i = 0; i < 2; ++i) w.BeginObject().Key("k").Int(i).EndObject();
  w.EndArray().Key("empty").BeginArray().EndArray().EndObject();
  EXPECT_EQ(w.str(), "{\"channels\":[{\"k\":0},{\"k\":1}],\"empty\":[]}");
}

TEST(JsonWriterTest, ArrayOfScalars) {
  JsonWriter w;
  w.BeginArray().Int(1).Int(2).Double(0.5).EndArray();
  EXPECT_EQ(w.str(), "[1,2,0.5]");
}

TEST(JsonWriterTest, StringEscaping) {
  JsonWriter w;
  w.BeginObject().Key("msg").String("a\"b\\c\nd\te\r\x01").EndObject();
  EXPECT_EQ(w.str(), "{\"msg\":\"a\\\"b\\\\c\\nd\\te\\r\\u0001\"}");
}

TEST(JsonWriterTest, KeyEscaping) {
  JsonWriter w;
  w.BeginObject().Key("we\"ird").Int(1).EndObject();
  EXPECT_EQ(w.str(), "{\"we\\\"ird\":1}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray()
      .Double(std::numeric_limits<double>::quiet_NaN())
      .Double(std::numeric_limits<double>::infinity())
      .Double(1.25)
      .EndArray();
  EXPECT_EQ(w.str(), "[null,null,1.25]");
}

TEST(JsonWriterTest, JsonEscapePassthrough) {
  EXPECT_EQ(JsonEscape("plain text 123"), "plain text 123");
}

}  // namespace
}  // namespace otfair::common
