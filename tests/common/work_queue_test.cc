#include "common/work_queue.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace otfair::common {
namespace {

using std::chrono::microseconds;

TEST(BoundedWorkQueueTest, FifoThroughTryPushTryPop) {
  BoundedWorkQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    size_t size_after = 0;
    EXPECT_TRUE(queue.TryPush(int(i), &size_after));
    EXPECT_EQ(size_after, static_cast<size_t>(i + 1));
  }
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(3, &out), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.TryPopBatch(10, &out), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(queue.TryPopBatch(1, &out), 0u);
}

TEST(BoundedWorkQueueTest, CapacityBoundsPushes) {
  BoundedWorkQueue<int> queue(3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(queue.TryPush(int(i)));
  EXPECT_FALSE(queue.TryPush(99));  // full -> backpressure
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(1, &out), 1u);
  EXPECT_TRUE(queue.TryPush(99));  // slot freed
  EXPECT_EQ(queue.size(), 3u);
}

TEST(BoundedWorkQueueTest, RingWrapsAroundManyTimes) {
  BoundedWorkQueue<std::string> queue(4);
  std::vector<std::string> out;
  for (int round = 0; round < 25; ++round) {
    std::string a = "a";
    a += std::to_string(round);
    std::string b = "b";
    b += std::to_string(round);
    EXPECT_TRUE(queue.TryPush(std::string(a)));
    EXPECT_TRUE(queue.TryPush(std::string(b)));
    out.clear();
    ASSERT_EQ(queue.TryPopBatch(2, &out), 2u);
    EXPECT_EQ(out[0], a);
    EXPECT_EQ(out[1], b);
  }
}

TEST(BoundedWorkQueueTest, PopBatchTimesOutWithPartialBatch) {
  BoundedWorkQueue<int> queue(8);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  std::vector<int> out;
  // Wants 4, only 2 exist: returns them after the deadline.
  EXPECT_EQ(queue.PopBatch(4, &out, microseconds(2000)), 2u);
}

TEST(BoundedWorkQueueTest, PopBatchWhenReadyBlocksForFirstItem) {
  BoundedWorkQueue<int> queue(8);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.TryPush(7);
  });
  std::vector<int> out;
  // No deadline while empty: waits for the producer, then gives
  // stragglers a short window.
  EXPECT_EQ(queue.PopBatchWhenReady(4, &out, microseconds(500)), 1u);
  EXPECT_EQ(out[0], 7);
  producer.join();
}

TEST(BoundedWorkQueueTest, PopBatchReturnsImmediatelyWhenFull) {
  BoundedWorkQueue<int> queue(8);
  for (int i = 0; i < 4; ++i) queue.TryPush(int(i));
  std::vector<int> out;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.PopBatch(4, &out, microseconds(5'000'000)), 4u);
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(1));
}

TEST(BoundedWorkQueueTest, CloseWakesBlockedConsumerAndDrains) {
  BoundedWorkQueue<int> queue(8);
  queue.TryPush(5);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.Close();
  });
  std::vector<int> out;
  // Accepted items survive the close.
  EXPECT_EQ(queue.PopBatchWhenReady(8, &out, microseconds(60'000'000)), 1u);
  closer.join();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.TryPush(6));
  EXPECT_EQ(queue.PopBatchWhenReady(8, &out, microseconds(0)), 0u);
}

TEST(BoundedWorkQueueTest, ConcurrentProducersLoseNothing) {
  BoundedWorkQueue<int> queue(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        while (!queue.TryPush(std::move(value))) std::this_thread::yield();
        accepted.fetch_add(1);
      }
    });
  }
  std::vector<int> drained;
  while (drained.size() < kProducers * kPerProducer) {
    std::vector<int> out;
    if (queue.PopBatch(32, &out, microseconds(1000)) > 0)
      drained.insert(drained.end(), out.begin(), out.end());
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int v : drained) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, kProducers * kPerProducer);
    EXPECT_FALSE(seen[v]) << "duplicate " << v;
    seen[v] = true;
  }
}

}  // namespace
}  // namespace otfair::common
