#include "common/matrix.h"

#include <gtest/gtest.h>

namespace otfair::common {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
}

TEST(MatrixTest, FillValueConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
  EXPECT_EQ(m.Sum(), 30.0);
}

TEST(MatrixTest, FromRowsRoundTrip) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 0), 4.0);
}

TEST(MatrixTest, IdentityDiagonal) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id.Sum(), 3.0);
  EXPECT_EQ(id(1, 1), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
}

TEST(MatrixTest, RowAndColSums) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.RowSums(), (std::vector<double>{3, 7}));
  EXPECT_EQ(m.ColSums(), (std::vector<double>{4, 6}));
}

TEST(MatrixTest, RowAndColVectors) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.RowVector(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(m.ColVector(0), (std::vector<double>{1, 3}));
}

TEST(MatrixTest, MaxAbs) {
  Matrix m = Matrix::FromRows({{1, -9}, {3, 4}});
  EXPECT_EQ(m.MaxAbs(), 9.0);
}

TEST(MatrixTest, FrobeniusDot) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  EXPECT_EQ(a.Dot(b), 5.0 + 12.0 + 21.0 + 32.0);
}

TEST(MatrixTest, Transposed) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t(0, 0), 1.0);
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix p = a.Multiply(b);
  EXPECT_EQ(p(0, 0), 19.0);
  EXPECT_EQ(p(0, 1), 22.0);
  EXPECT_EQ(p(1, 0), 43.0);
  EXPECT_EQ(p(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoop) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix p = a.Multiply(Matrix::Identity(2));
  EXPECT_EQ(p.MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, ScaleInPlace) {
  Matrix m = Matrix::FromRows({{1, 2}});
  m.Scale(3.0);
  EXPECT_EQ(m(0, 1), 6.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{1.5, 1}});
  EXPECT_EQ(a.MaxAbsDiff(b), 1.0);
}

TEST(MatrixTest, RowPointerWritable) {
  Matrix m(2, 2);
  m.row(1)[0] = 9.0;
  EXPECT_EQ(m(1, 0), 9.0);
}

TEST(MatrixTest, ToStringContainsValues) {
  Matrix m = Matrix::FromRows({{1.25, 2.5}});
  const std::string s = m.ToString(2);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("2.50"), std::string::npos);
}

TEST(MatrixDeathTest, RaggedFromRowsAborts) {
  EXPECT_DEATH(Matrix::FromRows({{1, 2}, {3}}), "ragged");
}

}  // namespace
}  // namespace otfair::common
