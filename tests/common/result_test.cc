#include "common/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace otfair::common {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(err.value_or(-1), -1);
  Result<int> ok(7);
  EXPECT_EQ(ok.value_or(-1), 7);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MoveOnlyValueSupported) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r.value().push_back(3);
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacroExtractsValue) {
  auto inner = []() -> Result<int> { return 10; };
  auto outer = [&]() -> Result<int> {
    OTFAIR_ASSIGN_OR_RETURN(int v, inner());
    return v * 2;
  };
  auto result = outer();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 20);
}

TEST(ResultTest, AssignOrReturnMacroPropagatesError) {
  auto inner = []() -> Result<int> { return Status::IoError("disk"); };
  auto outer = [&]() -> Result<int> {
    OTFAIR_ASSIGN_OR_RETURN(int v, inner());
    return v * 2;
  };
  auto result = outer();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("bad"));
  EXPECT_DEATH((void)r.value(), "Result::value");
}

TEST(ResultDeathTest, OkStatusWithoutValueAborts) {
  EXPECT_DEATH(Result<int>{Status::Ok()}, "OK status");
}

}  // namespace
}  // namespace otfair::common
