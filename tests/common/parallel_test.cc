#include "common/parallel.h"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace otfair::common::parallel {
namespace {

/// Restores the process-wide override on scope exit so tests compose.
struct ScopedThreadCount {
  explicit ScopedThreadCount(size_t count) { SetThreadCount(count); }
  ~ScopedThreadCount() { SetThreadCount(0); }
};

TEST(ParseThreadCountTest, AcceptsPositiveIntegers) {
  EXPECT_EQ(ParseThreadCount("1"), 1u);
  EXPECT_EQ(ParseThreadCount("8"), 8u);
  EXPECT_EQ(ParseThreadCount("128"), 128u);
}

TEST(ParseThreadCountTest, RejectsGarbage) {
  EXPECT_EQ(ParseThreadCount(nullptr), 0u);
  EXPECT_EQ(ParseThreadCount(""), 0u);
  EXPECT_EQ(ParseThreadCount("0"), 0u);
  EXPECT_EQ(ParseThreadCount("-4"), 0u);
  EXPECT_EQ(ParseThreadCount("4x"), 0u);
  EXPECT_EQ(ParseThreadCount("3.5"), 0u);
  EXPECT_EQ(ParseThreadCount("99999999999999999999999999"), 0u);  // overflow
}

TEST(ThreadCountTest, DefaultIsPositive) { EXPECT_GE(DefaultThreadCount(), 1u); }

TEST(ThreadCountTest, OverrideWinsAndClears) {
  {
    ScopedThreadCount scope(3);
    EXPECT_EQ(ThreadCount(), 3u);
  }
  EXPECT_EQ(ThreadCount(), DefaultThreadCount());
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  ParallelFor(0, 0, [&](size_t) { ++calls; });
  ParallelFor(5, 5, [&](size_t) { ++calls; });
  ParallelFor(7, 3, [&](size_t) { ++calls; });  // end < begin
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(0, n, [&](size_t i) { ++hits[i]; }, threads);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads;
  }
}

TEST(ParallelForTest, RespectsBeginOffset) {
  std::vector<int> slot(10, 0);
  ParallelFor(4, 10, [&](size_t i) { slot[i] = 1; }, 4);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(slot[i], i >= 4 ? 1 : 0);
}

TEST(ParallelForTest, SerialAtOneThreadRunsInline) {
  // threads=1 must execute on the calling thread, in index order.
  const auto caller = std::this_thread::get_id();
  std::vector<size_t> order;
  ParallelFor(0, 100,
              [&](size_t i) {
                EXPECT_EQ(std::this_thread::get_id(), caller);
                order.push_back(i);
              },
              1);
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, PerIndexSlotsAreDeterministicAcrossThreadCounts) {
  const size_t n = 500;
  auto run = [&](size_t threads) {
    std::vector<double> slots(n, 0.0);
    ParallelFor(0, n, [&](size_t i) { slots[i] = static_cast<double>(i) * 1.5 + 1.0; },
                threads);
    return slots;
  };
  const std::vector<double> serial = run(1);
  for (size_t threads : {size_t{2}, size_t{5}, size_t{16}}) {
    EXPECT_EQ(run(threads), serial) << "threads=" << threads;
  }
}

TEST(ParallelForTest, PropagatesExceptionsFromWorkers) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    EXPECT_THROW(
        ParallelFor(0, 64,
                    [&](size_t i) {
                      if (i == 13) throw std::runtime_error("boom");
                    },
                    threads),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelForTest, DrainsAllIndicesDespiteException) {
  // The loop must not abandon unprocessed indices when one body throws.
  std::vector<std::atomic<int>> hits(256);
  try {
    ParallelFor(0, 256,
                [&](size_t i) {
                  ++hits[i];
                  if (i % 32 == 0) throw std::runtime_error("boom");
                },
                4);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, NestedLoopsRunSerially) {
  // A ParallelFor inside a ParallelFor body must not deadlock the pool;
  // the inner loop falls back to inline execution.
  std::vector<std::atomic<int>> hits(16 * 16);
  ParallelFor(0, 16,
              [&](size_t outer) {
                ParallelFor(0, 16, [&](size_t inner) { ++hits[outer * 16 + inner]; }, 8);
              },
              4);
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ExplicitSerialSuppressesNestedFanOut) {
  // threads=1 is a promise of serial execution all the way down: a
  // nested loop must stay on the calling thread even if it asks for
  // more lanes.
  const auto caller = std::this_thread::get_id();
  ParallelFor(0, 4,
              [&](size_t) {
                ParallelFor(0, 8,
                            [&](size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); }, 8);
              },
              1);
}

TEST(ParallelForTest, ExplicitThreadsGrowThePoolBeyondProcessDefault) {
  ScopedThreadCount scope(1);
  // An explicit per-call count must win over a smaller process default:
  // the global pool has to grow to offer threads-1 workers, not silently
  // run the loop on ThreadCount() lanes.
  std::vector<int> slot(64, 0);
  ParallelFor(0, 64, [&](size_t i) { slot[i] = 1; }, 4);
  for (int v : slot) EXPECT_EQ(v, 1);
  EXPECT_GE(GlobalPool().workers(), 3u);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::vector<int> slot(32, 0);
  pool.Run(0, 32, [&](size_t i) { slot[i] = 1; }, 4);
  for (int v : slot) EXPECT_EQ(v, 1);
}

TEST(ThreadPoolTest, ReusableAcrossRuns) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.Run(0, 100, [&](size_t i) { sum += i; }, 4);
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

}  // namespace
}  // namespace otfair::common::parallel
