#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace otfair::common {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next64() != b.Next64()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.Uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 2.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 2.0);
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIntUnbiasedRoughly) {
  Rng rng(19);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Normal(5.0, 2.0);
    sum += z;
    sum_sq += z * z;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(sum_sq / n - mean * mean, 4.0, 0.1);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremesAreDeterministic) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalSkipsZeroWeights) {
  Rng rng(43);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(weights), 1u);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(47);
  const int n = 100000;
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += rng.Exponential(2.0);
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(53);
  std::vector<size_t> perm = rng.Permutation(100);
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationShuffles) {
  Rng rng(59);
  std::vector<size_t> perm = rng.Permutation(50);
  size_t fixed_points = 0;
  for (size_t i = 0; i < perm.size(); ++i) fixed_points += perm[i] == i ? 1 : 0;
  EXPECT_LT(fixed_points, 10u);  // expectation is 1 fixed point
}

TEST(RngTest, ForkedStreamsDecorrelated) {
  Rng parent(61);
  Rng child = parent.Fork();
  // Child stream should differ from the parent's continuation.
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.Next64() != child.Next64()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, ForkIsDeterministicGivenParentState) {
  Rng a(67);
  Rng b(67);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ca.Next64(), cb.Next64());
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(71);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace otfair::common
