// POSIX file helpers backing plan and checkpoint I/O. The load-bearing
// contract: AtomicWriteFile either lands the complete new content or
// leaves the previous file untouched — readers never observe a torn or
// partial file, which is what makes kill -9 during a checkpoint write
// safe.

#include "common/file_util.h"

#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

namespace otfair::common {
namespace {

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

TEST(FileUtilTest, WriteReadRoundTripIsBitExact) {
  const std::string path = TempPath("file_util_roundtrip.bin");
  // Binary content with NULs, newlines, and high bytes — nothing may be
  // text-mangled or truncated at a NUL.
  std::string content;
  for (int i = 0; i < 4096; ++i) content.push_back(static_cast<char>(i * 131 % 256));
  ASSERT_TRUE(AtomicWriteFile(path, content).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);
}

TEST(FileUtilTest, EmptyFileRoundTrips) {
  const std::string path = TempPath("file_util_empty.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST(FileUtilTest, LargeFileCrossesReadBufferBoundary) {
  // > the reader's 64 KiB chunk so the loop takes multiple iterations.
  const std::string path = TempPath("file_util_large.bin");
  std::string content(300 * 1024 + 17, '\0');
  for (size_t i = 0; i < content.size(); ++i)
    content[i] = static_cast<char>((i * 2654435761u) >> 13);
  ASSERT_TRUE(AtomicWriteFile(path, content).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);
}

TEST(FileUtilTest, AtomicWriteReplacesExistingContentWhole) {
  const std::string path = TempPath("file_util_replace.bin");
  ASSERT_TRUE(AtomicWriteFile(path, std::string(100, 'a')).ok());
  ASSERT_TRUE(AtomicWriteFile(path, std::string(3, 'b')).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  // The replacement fully supersedes the longer old content — no stale
  // tail (the write goes through a temp file + rename, not in-place).
  EXPECT_EQ(*read, "bbb");
}

TEST(FileUtilTest, MissingFileIsCleanError) {
  auto read = ReadFileToString(TempPath("file_util_does_not_exist.bin"));
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("file_util_does_not_exist"), std::string::npos);
}

TEST(FileUtilTest, WriteIntoMissingDirectoryFailsWithoutCreatingPath) {
  const std::string path = TempPath("no_such_dir/file_util_orphan.bin");
  EXPECT_FALSE(AtomicWriteFile(path, "x").ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(FileUtilTest, FileExistsReflectsState) {
  const std::string path = TempPath("file_util_exists.bin");
  ::unlink(path.c_str());  // a previous run may have left the file behind
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(AtomicWriteFile(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
}

}  // namespace
}  // namespace otfair::common
