#include "ot/cost.h"

#include <gtest/gtest.h>

namespace otfair::ot {
namespace {

TEST(CostTest, SquaredEuclideanValues) {
  common::Matrix c = SquaredEuclideanCost({0.0, 1.0}, {0.0, 3.0});
  EXPECT_DOUBLE_EQ(c(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);
}

TEST(CostTest, RectangularShape) {
  common::Matrix c = SquaredEuclideanCost({0.0, 1.0, 2.0}, {5.0});
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(2, 0), 9.0);
}

TEST(CostTest, L1CostIsAbsoluteDifference) {
  common::Matrix c = LpCost({0.0, -2.0}, {1.0}, 1);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 3.0);
}

TEST(CostTest, Lp2MatchesSquaredEuclidean) {
  const std::vector<double> xs = {0.0, 0.5, -1.0};
  const std::vector<double> ys = {2.0, 1.0};
  common::Matrix a = LpCost(xs, ys, 2);
  common::Matrix b = SquaredEuclideanCost(xs, ys);
  EXPECT_EQ(a.MaxAbsDiff(b), 0.0);
}

TEST(CostTest, CubicCost) {
  common::Matrix c = LpCost({0.0}, {2.0}, 3);
  EXPECT_DOUBLE_EQ(c(0, 0), 8.0);
}

TEST(CostTest, DiagonalOfSelfCostIsZero) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  common::Matrix c = SquaredEuclideanCost(xs, xs);
  for (size_t i = 0; i < xs.size(); ++i) EXPECT_DOUBLE_EQ(c(i, i), 0.0);
}

TEST(CostTest, SymmetricOnSharedSupport) {
  const std::vector<double> xs = {1.0, 4.0, 9.0};
  common::Matrix c = SquaredEuclideanCost(xs, xs);
  for (size_t i = 0; i < xs.size(); ++i)
    for (size_t j = 0; j < xs.size(); ++j) EXPECT_DOUBLE_EQ(c(i, j), c(j, i));
}

}  // namespace
}  // namespace otfair::ot
