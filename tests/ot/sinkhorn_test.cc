#include "ot/sinkhorn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/cost.h"
#include "ot/exact.h"

namespace otfair::ot {
namespace {

struct Problem {
  std::vector<double> a;
  std::vector<double> b;
  common::Matrix cost;
};

Problem RandomProblem(size_t n, size_t m, uint64_t seed) {
  common::Rng rng(seed);
  Problem p;
  p.a.resize(n);
  p.b.resize(m);
  double sa = 0.0;
  double sb = 0.0;
  for (double& v : p.a) sa += (v = rng.Uniform(0.2, 1.0));
  for (double& v : p.b) sb += (v = rng.Uniform(0.2, 1.0));
  for (double& v : p.a) v /= sa;
  for (double& v : p.b) v /= sb;
  std::vector<double> xs(n);
  std::vector<double> ys(m);
  for (double& v : xs) v = rng.Uniform(-1.0, 1.0);
  for (double& v : ys) v = rng.Uniform(-1.0, 1.0);
  p.cost = SquaredEuclideanCost(xs, ys);
  return p;
}

TEST(SinkhornTest, ConvergesAndSatisfiesMarginals) {
  Problem p = RandomProblem(20, 15, 3);
  SinkhornOptions options;
  options.epsilon = 0.05;
  auto result = SolveSinkhorn(p.a, p.b, p.cost, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_LT(result->plan.MarginalError(p.a, p.b), 1e-7);
}

TEST(SinkhornTest, CostAboveExactOptimum) {
  Problem p = RandomProblem(12, 12, 5);
  auto exact = SolveExact(p.a, p.b, p.cost);
  ASSERT_TRUE(exact.ok());
  SinkhornOptions options;
  options.epsilon = 0.1;
  auto reg = SolveSinkhorn(p.a, p.b, p.cost, options);
  ASSERT_TRUE(reg.ok());
  // The entropic plan is feasible, so its linear cost can't beat the LP.
  EXPECT_GE(reg->plan.cost, exact->cost - 1e-9);
}

TEST(SinkhornTest, CostApproachesExactAsEpsilonShrinks) {
  Problem p = RandomProblem(10, 10, 11);
  auto exact = SolveExact(p.a, p.b, p.cost);
  ASSERT_TRUE(exact.ok());
  double prev_gap = 1e9;
  for (double eps : {0.5, 0.1, 0.02}) {
    SinkhornOptions options;
    options.epsilon = eps;
    options.log_domain = true;
    options.max_iterations = 50000;
    auto reg = SolveSinkhorn(p.a, p.b, p.cost, options);
    ASSERT_TRUE(reg.ok()) << "eps=" << eps;
    const double gap = reg->plan.cost - exact->cost;
    EXPECT_GE(gap, -1e-8);
    EXPECT_LE(gap, prev_gap + 1e-9) << "eps=" << eps;
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.01);
}

TEST(SinkhornTest, LogDomainMatchesStandardDomain) {
  Problem p = RandomProblem(14, 9, 17);
  SinkhornOptions standard;
  standard.epsilon = 0.2;
  SinkhornOptions log_domain = standard;
  log_domain.log_domain = true;
  auto a = SolveSinkhorn(p.a, p.b, p.cost, standard);
  auto b = SolveSinkhorn(p.a, p.b, p.cost, log_domain);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(a->plan.coupling.MaxAbsDiff(b->plan.coupling), 1e-6);
}

TEST(SinkhornTest, LogDomainSurvivesTinyEpsilon) {
  // Standard domain underflows here; log domain must not produce NaN.
  Problem p = RandomProblem(8, 8, 23);
  p.cost.Scale(50.0);  // make -C/eps extreme
  SinkhornOptions options;
  options.epsilon = 0.01;
  options.log_domain = true;
  options.max_iterations = 200000;
  auto result = SolveSinkhorn(p.a, p.b, p.cost, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 8; ++i)
    for (size_t j = 0; j < 8; ++j) EXPECT_FALSE(std::isnan(result->plan.coupling(i, j)));
}

TEST(SinkhornTest, PlanIsStrictlyPositiveAtPositiveMarginals) {
  // Entropic plans are dense: every admissible cell carries some mass.
  Problem p = RandomProblem(6, 6, 29);
  SinkhornOptions options;
  options.epsilon = 0.5;
  auto result = SolveSinkhorn(p.a, p.b, p.cost, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 6; ++i)
    for (size_t j = 0; j < 6; ++j) EXPECT_GT(result->plan.coupling(i, j), 0.0);
}

TEST(SinkhornTest, ZeroMarginalEntriesStayZero) {
  std::vector<double> a = {0.0, 1.0};
  std::vector<double> b = {0.5, 0.5};
  auto result = SolveSinkhorn(a, b, SquaredEuclideanCost({0.0, 1.0}, {0.0, 1.0}), {});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->plan.coupling(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(result->plan.coupling(0, 1), 0.0, 1e-12);
}

TEST(SinkhornTest, IterationCapReportedAsNotConvergedFlag) {
  Problem p = RandomProblem(10, 10, 31);
  SinkhornOptions options;
  options.epsilon = 0.01;
  options.max_iterations = 3;  // deliberately starved
  options.log_domain = true;
  auto result = SolveSinkhorn(p.a, p.b, p.cost, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converged);
  EXPECT_EQ(result->iterations, 3u);
}

TEST(SinkhornTest, RejectsBadEpsilon) {
  Problem p = RandomProblem(3, 3, 37);
  SinkhornOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(SolveSinkhorn(p.a, p.b, p.cost, options).ok());
}

TEST(SinkhornTest, RejectsUnbalanced) {
  auto result = SolveSinkhorn({1.0}, {0.4}, SquaredEuclideanCost({0.0}, {1.0}), {});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace otfair::ot
