// Unit tests for the CSR SparsePlan — the canonical transport-plan
// representation: construction paths (entries, dense, raw CSR),
// reductions, transpose, diffing, and the truncation/refold extraction
// used by the entropic backends.

#include "ot/plan.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/matrix.h"

namespace otfair::ot {
namespace {

using common::Matrix;

Matrix StaircaseDense() {
  // 3 x 4 staircase: the shape the monotone solver produces.
  Matrix m(3, 4);
  m(0, 0) = 0.2;
  m(0, 1) = 0.1;
  m(1, 1) = 0.15;
  m(1, 2) = 0.25;
  m(2, 2) = 0.05;
  m(2, 3) = 0.25;
  return m;
}

TEST(SparsePlanTest, FromEntriesRoundTripsThroughDense) {
  const std::vector<PlanEntry> entries = {{0, 0, 0.2}, {0, 1, 0.1},  {1, 1, 0.15},
                                          {1, 2, 0.25}, {2, 2, 0.05}, {2, 3, 0.25}};
  const SparsePlan plan = SparsePlan::FromEntries(entries, 3, 4);
  EXPECT_EQ(plan.rows(), 3u);
  EXPECT_EQ(plan.cols(), 4u);
  EXPECT_EQ(plan.nnz(), 6u);
  EXPECT_TRUE(plan.columns_sorted());
  EXPECT_EQ(plan.ToDense().MaxAbsDiff(StaircaseDense()), 0.0);
}

TEST(SparsePlanTest, FromEntriesSortsAndMergesDuplicates) {
  // Unsorted input with a duplicated cell: sorted into row-major order,
  // duplicate mass merged.
  const std::vector<PlanEntry> entries = {
      {2, 3, 0.25}, {0, 1, 0.05}, {1, 2, 0.25}, {0, 0, 0.2},
      {2, 2, 0.05}, {1, 1, 0.15}, {0, 1, 0.05}};
  const SparsePlan plan = SparsePlan::FromEntries(entries, 3, 4);
  EXPECT_EQ(plan.nnz(), 6u);
  EXPECT_TRUE(plan.columns_sorted());
  EXPECT_LT(plan.ToDense().MaxAbsDiff(StaircaseDense()), 1e-15);
}

TEST(SparsePlanTest, FromDenseThresholdDropsSmallEntries) {
  Matrix dense = StaircaseDense();
  const SparsePlan all = SparsePlan::FromDense(dense);
  EXPECT_EQ(all.nnz(), 6u);
  const SparsePlan big = SparsePlan::FromDense(dense, 0.1);
  EXPECT_EQ(big.nnz(), 4u);  // 0.1 and 0.05 dropped (strict threshold)
}

TEST(SparsePlanTest, RowViewAndSums) {
  const SparsePlan plan = SparsePlan::FromDense(StaircaseDense());
  const SparsePlan::RowView row1 = plan.Row(1);
  ASSERT_EQ(row1.nnz, 2u);
  EXPECT_EQ(row1.cols[0], 1u);
  EXPECT_EQ(row1.cols[1], 2u);
  EXPECT_DOUBLE_EQ(row1.values[0], 0.15);
  EXPECT_DOUBLE_EQ(row1.values[1], 0.25);

  const std::vector<double> rows = plan.RowSums();
  const std::vector<double> dense_rows = StaircaseDense().RowSums();
  for (size_t r = 0; r < 3; ++r) EXPECT_NEAR(rows[r], dense_rows[r], 1e-15);
  EXPECT_NEAR(plan.RowSum(2), dense_rows[2], 1e-15);

  const std::vector<double> cols = plan.ColSums();
  const std::vector<double> dense_cols = StaircaseDense().ColSums();
  for (size_t c = 0; c < 4; ++c) EXPECT_NEAR(cols[c], dense_cols[c], 1e-15);

  EXPECT_NEAR(plan.Sum(), 1.0, 1e-12);
}

TEST(SparsePlanTest, TransposeMatchesDenseTranspose) {
  const SparsePlan plan = SparsePlan::FromDense(StaircaseDense());
  const SparsePlan t = plan.Transposed();
  EXPECT_EQ(t.rows(), 4u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.nnz(), plan.nnz());
  EXPECT_TRUE(t.columns_sorted());
  EXPECT_EQ(t.ToDense().MaxAbsDiff(StaircaseDense().Transposed()), 0.0);
}

TEST(SparsePlanTest, CostMatchesDenseDot) {
  const SparsePlan plan = SparsePlan::FromDense(StaircaseDense());
  Matrix cost(3, 4);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 4; ++j)
      cost(i, j) = (static_cast<double>(i) - static_cast<double>(j)) *
                   (static_cast<double>(i) - static_cast<double>(j));
  EXPECT_NEAR(plan.Cost(cost), StaircaseDense().Dot(cost), 1e-15);
}

TEST(SparsePlanTest, MaxAbsDiffHandlesDifferentPatterns) {
  const SparsePlan a = SparsePlan::FromDense(StaircaseDense());
  Matrix other = StaircaseDense();
  other(0, 1) = 0.0;   // entry present in a, absent in b
  other(2, 0) = 0.07;  // entry absent in a, present in b
  const SparsePlan b = SparsePlan::FromDense(other);
  EXPECT_NEAR(a.MaxAbsDiff(b), 0.1, 1e-15);
  EXPECT_NEAR(b.MaxAbsDiff(a), 0.1, 1e-15);
  EXPECT_EQ(a.MaxAbsDiff(a), 0.0);
}

TEST(SparsePlanTest, FromCsrValidates) {
  // A valid 2 x 3 plan.
  auto good = SparsePlan::FromCsr(2, 3, {0, 2, 3}, {0, 2, 1}, {0.25, 0.25, 0.5});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->nnz(), 3u);
  EXPECT_TRUE(good->columns_sorted());

  // Offset arity, monotonicity, final-offset, column bound, value sign.
  EXPECT_FALSE(SparsePlan::FromCsr(2, 3, {0, 2}, {0, 2}, {0.5, 0.5}).ok());
  EXPECT_FALSE(SparsePlan::FromCsr(2, 3, {0, 2, 1}, {0, 2}, {0.5, 0.5}).ok());
  EXPECT_FALSE(SparsePlan::FromCsr(2, 3, {0, 2, 4}, {0, 2}, {0.5, 0.5}).ok());
  EXPECT_FALSE(SparsePlan::FromCsr(2, 3, {0, 1, 2}, {0, 3}, {0.5, 0.5}).ok());
  EXPECT_FALSE(SparsePlan::FromCsr(2, 3, {0, 1, 2}, {0, 2}, {0.5, -0.5}).ok());
  // An interior offset past nnz must error cleanly, not read out of
  // bounds (the corrupt-file path: front/back offsets look consistent).
  EXPECT_FALSE(SparsePlan::FromCsr(2, 3, {0, 10, 2}, {0, 2}, {0.5, 0.5}).ok());

  // Unsorted-within-row columns are legal but flagged.
  auto unsorted = SparsePlan::FromCsr(1, 3, {0, 2}, {2, 0}, {0.5, 0.5});
  ASSERT_TRUE(unsorted.ok());
  EXPECT_FALSE(unsorted->columns_sorted());
  const std::vector<double> cols = unsorted->ColSums();
  EXPECT_DOUBLE_EQ(cols[0], 0.5);
  EXPECT_DOUBLE_EQ(cols[2], 0.5);
}

TEST(SparsePlanTest, TransposeOfUnsortedPlanStaysCorrect) {
  // A row with duplicate columns (only reachable through FromCsr)
  // transposes into a row with duplicate entries; the sorted flag must
  // not be asserted, and diffing must still see the merged cell mass.
  auto dup = SparsePlan::FromCsr(1, 3, {0, 2}, {1, 1}, {0.5, 0.5});
  ASSERT_TRUE(dup.ok());
  const SparsePlan t = dup->Transposed();
  EXPECT_FALSE(t.columns_sorted());
  EXPECT_EQ(t.ToDense().MaxAbsDiff(dup->ToDense().Transposed()), 0.0);
  const SparsePlan merged = SparsePlan::FromEntries({{1, 0, 1.0}}, 3, 1);
  EXPECT_EQ(t.MaxAbsDiff(merged), 0.0);
}

TEST(SparsePlanTest, TruncateToSparsePreservesRowMarginalsExactly) {
  // A Gibbs-like row profile with long tails.
  const size_t n = 32;
  Matrix dense(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double d = static_cast<double>(i) - static_cast<double>(j);
      dense(i, j) = std::exp(-d * d / 2.0) / static_cast<double>(n);
    }
  }
  const SparsePlan plan = TruncateToSparse(dense, 1e-8);
  EXPECT_LT(plan.nnz(), n * n);
  EXPECT_GT(plan.nnz(), 0u);
  const std::vector<double> sparse_rows = plan.RowSums();
  const std::vector<double> dense_rows = dense.RowSums();
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(sparse_rows[i], dense_rows[i], 1e-15);
  const std::vector<double> sparse_cols = plan.ColSums();
  const std::vector<double> dense_cols = dense.ColSums();
  for (size_t j = 0; j < n; ++j)
    EXPECT_NEAR(sparse_cols[j], dense_cols[j], 1e-8 * dense.Sum());
}

TEST(SparsePlanTest, TruncateKeepsRowPeakEvenWhenTiny) {
  // One row whose total mass is minuscule: its peak must survive so the
  // row never empties.
  Matrix dense(2, 3);
  dense(0, 0) = 1.0;
  dense(1, 0) = 1e-280;
  dense(1, 1) = 3e-280;
  const SparsePlan plan = TruncateToSparse(dense, 1e-6);
  EXPECT_GE(plan.Row(1).nnz, 1u);
  EXPECT_NEAR(plan.RowSum(1), 4e-280, 1e-290);
}

TEST(SparsePlanTest, EmptyAndDefaultPlans) {
  const SparsePlan empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.nnz(), 0u);
  EXPECT_EQ(empty.ToDense().size(), 0u);
  EXPECT_TRUE(empty.RowSums().empty());
  EXPECT_TRUE(empty.ColSums().empty());

  const SparsePlan zero = SparsePlan::FromDense(Matrix(3, 3));
  EXPECT_EQ(zero.rows(), 3u);
  EXPECT_EQ(zero.nnz(), 0u);
  EXPECT_EQ(zero.Row(1).nnz, 0u);
  EXPECT_EQ(zero.Sum(), 0.0);
}

TEST(SparsePlanTest, MemoryBytesFarBelowDenseForStaircasePlans) {
  // A monotone-style staircase at n = 64: ~2n entries against n^2 dense.
  const size_t n = 64;
  Matrix dense(n, n);
  for (size_t i = 0; i < n; ++i) {
    dense(i, i) = 0.7 / static_cast<double>(n);
    if (i + 1 < n) dense(i, i + 1) = 0.3 / static_cast<double>(n);
  }
  const SparsePlan plan = SparsePlan::FromDense(dense);
  EXPECT_EQ(plan.nnz(), 2 * n - 1);
  const size_t dense_bytes = n * n * sizeof(double);
  EXPECT_LT(plan.MemoryBytes(), dense_bytes / 10);
}

}  // namespace
}  // namespace otfair::ot
