#include "ot/measure.h"

#include <cmath>

#include <gtest/gtest.h>

namespace otfair::ot {
namespace {

TEST(MeasureTest, CreateNormalizesWeights) {
  auto m = DiscreteMeasure::Create({0.0, 1.0}, {2.0, 6.0});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->weight_at(0), 0.25);
  EXPECT_DOUBLE_EQ(m->weight_at(1), 0.75);
  EXPECT_LT(m->NormalizationError(), 1e-15);
}

TEST(MeasureTest, CreateRejectsBadInput) {
  EXPECT_FALSE(DiscreteMeasure::Create({}, {}).ok());
  EXPECT_FALSE(DiscreteMeasure::Create({0.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(DiscreteMeasure::Create({0.0}, {-1.0}).ok());
  EXPECT_FALSE(DiscreteMeasure::Create({0.0, 1.0}, {0.0, 0.0}).ok());
  EXPECT_FALSE(DiscreteMeasure::Create({std::nan("")}, {1.0}).ok());
  EXPECT_FALSE(
      DiscreteMeasure::Create({std::numeric_limits<double>::infinity()}, {1.0}).ok());
}

TEST(MeasureTest, FromSamplesGivesUniformWeights) {
  auto m = DiscreteMeasure::FromSamples({3.0, 1.0, 2.0});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(m->weight_at(i), 1.0 / 3.0);
}

TEST(MeasureTest, UniformFactory) {
  auto m = DiscreteMeasure::Uniform({0.0, 1.0, 2.0, 3.0});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->weight_at(2), 0.25);
}

TEST(MeasureTest, SortedBySupportOrdersAtoms) {
  auto m = DiscreteMeasure::Create({3.0, 1.0, 2.0}, {0.5, 0.25, 0.25});
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->IsSorted());
  DiscreteMeasure sorted = m->SortedBySupport();
  EXPECT_TRUE(sorted.IsSorted());
  EXPECT_EQ(sorted.support(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(sorted.weight_at(2), 0.5);  // weight follows its atom
}

TEST(MeasureTest, MeanAndVariance) {
  auto m = DiscreteMeasure::Create({0.0, 2.0}, {0.5, 0.5});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Mean(), 1.0);
  EXPECT_DOUBLE_EQ(m->Variance(), 1.0);
}

TEST(MeasureTest, PointMassHasZeroVariance) {
  auto m = DiscreteMeasure::Create({5.0}, {1.0});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Mean(), 5.0);
  EXPECT_DOUBLE_EQ(m->Variance(), 0.0);
}

TEST(MeasureTest, CdfIsRightContinuousStep) {
  auto m = DiscreteMeasure::Create({1.0, 2.0, 3.0}, {0.2, 0.3, 0.5});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(m->Cdf(1.0), 0.2);
  EXPECT_DOUBLE_EQ(m->Cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(m->Cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(m->Cdf(99.0), 1.0);
}

TEST(MeasureTest, QuantileInvertsCdf) {
  auto m = DiscreteMeasure::Create({1.0, 2.0, 3.0}, {0.2, 0.3, 0.5});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m->Quantile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(m->Quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(m->Quantile(0.35), 2.0);
  EXPECT_DOUBLE_EQ(m->Quantile(0.8), 3.0);
  EXPECT_DOUBLE_EQ(m->Quantile(1.0), 3.0);
}

TEST(MeasureTest, DuplicateAtomsAreKept) {
  auto m = DiscreteMeasure::FromSamples({1.0, 1.0, 2.0});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size(), 3u);
  EXPECT_DOUBLE_EQ(m->Cdf(1.0), 2.0 / 3.0);
}

}  // namespace
}  // namespace otfair::ot
