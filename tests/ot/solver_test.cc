// Unit tests for the ot::Solver seam and the SolverRegistry: the three
// built-in backends must be constructible by name, report honest
// capability flags, and solve a tiny instance correctly; custom backends
// registered at runtime must become reachable through the same path the
// pipeline and CLI use.

#include "ot/solver.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "ot/cost.h"

namespace otfair::ot {
namespace {

using common::Matrix;

DiscreteMeasure MakeMeasure(std::vector<double> support, std::vector<double> weights) {
  auto m = DiscreteMeasure::Create(std::move(support), std::move(weights));
  EXPECT_TRUE(m.ok());
  return *m;
}

TEST(SolverRegistryTest, BuiltinsRegistered) {
  // Containment, not equality: other tests in this binary may register
  // extra backends into the process-global registry in any order.
  for (const std::string name : {"exact", "monotone", "sinkhorn"}) {
    EXPECT_TRUE(SolverRegistry::Global().Contains(name)) << name;
    auto solver = MakeSolver(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_EQ((*solver)->name(), name);
  }
}

TEST(SolverRegistryTest, UnknownNameReportsKnownOnes) {
  auto solver = MakeSolver("simplex");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), common::StatusCode::kNotFound);
  EXPECT_NE(solver.status().message().find("monotone"), std::string::npos);
}

TEST(SolverRegistryTest, DuplicateRegistrationRejected) {
  auto status = SolverRegistry::Global().Register(
      "monotone", [](const SolverOptions&) { return DefaultSolver(); });
  EXPECT_FALSE(status.ok());
}

TEST(SolverRegistryTest, CustomBackendBecomesReachable) {
  // A "backend" that just forwards to the default solver, under a fresh
  // name. Registered once for the whole test binary.
  static bool registered = [] {
    auto status = SolverRegistry::Global().Register(
        "custom-for-test",
        [](const SolverOptions&) { return DefaultSolver(); });
    return status.ok();
  }();
  EXPECT_TRUE(registered);
  EXPECT_TRUE(SolverRegistry::Global().Contains("custom-for-test"));
  auto solver = MakeSolver("custom-for-test");
  ASSERT_TRUE(solver.ok());
  EXPECT_EQ((*solver)->name(), "monotone");  // forwards to the default
}

TEST(SolverTest, CapabilityFlags) {
  auto monotone = *MakeSolver("monotone");
  auto exact = *MakeSolver("exact");
  auto sinkhorn = *MakeSolver("sinkhorn");
  EXPECT_TRUE(monotone->is_exact());
  EXPECT_FALSE(monotone->supports_general_cost());
  EXPECT_TRUE(exact->is_exact());
  EXPECT_TRUE(exact->supports_general_cost());
  EXPECT_FALSE(sinkhorn->is_exact());
  EXPECT_TRUE(sinkhorn->supports_general_cost());
}

TEST(SolverTest, MonotoneRefusesGeneralCost) {
  auto monotone = *MakeSolver("monotone");
  const Matrix cost = SquaredEuclideanCost({0.0, 1.0}, {0.0, 1.0});
  auto plan = monotone->Solve({0.5, 0.5}, {0.5, 0.5}, cost);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), common::StatusCode::kUnimplemented);
}

TEST(SolverTest, Solve1DRequiresSortedSupports) {
  const DiscreteMeasure unsorted = MakeMeasure({1.0, 0.0}, {0.5, 0.5});
  const DiscreteMeasure sorted = MakeMeasure({0.0, 1.0}, {0.5, 0.5});
  for (const char* name : {"monotone", "exact", "sinkhorn"}) {
    auto solver = *MakeSolver(name);
    EXPECT_FALSE(solver->Solve1D(unsorted, sorted).ok()) << name;
    EXPECT_FALSE(solver->Solve1D(sorted, unsorted).ok()) << name;
  }
}

TEST(SolverTest, IdentitySolveOnSharedSupport) {
  // mu == nu on a shared support: the optimal plan is diagonal with zero
  // cost, for every exact backend.
  const DiscreteMeasure mu = MakeMeasure({-1.0, 0.0, 2.0}, {0.2, 0.3, 0.5});
  for (const char* name : {"monotone", "exact"}) {
    auto solver = *MakeSolver(name);
    auto dense = solver->Solve1DDense(mu, mu);
    ASSERT_TRUE(dense.ok()) << name;
    for (size_t i = 0; i < 3; ++i) {
      for (size_t j = 0; j < 3; ++j) {
        EXPECT_NEAR((*dense)(i, j), i == j ? mu.weight_at(i) : 0.0, 1e-12)
            << name << " at (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(SolverTest, Solve1DSparseMatchesDenseForEveryBackend) {
  const DiscreteMeasure mu = MakeMeasure({-1.0, 0.0, 0.5, 2.0}, {0.1, 0.4, 0.3, 0.2});
  const DiscreteMeasure nu = MakeMeasure({-0.5, 0.25, 1.0}, {0.3, 0.3, 0.4});
  for (const char* name : {"monotone", "exact", "sinkhorn"}) {
    auto solver = *MakeSolver(name);
    auto sparse = solver->Solve1DSparse(mu, nu);
    auto dense = solver->Solve1DDense(mu, nu);
    ASSERT_TRUE(sparse.ok() && dense.ok()) << name;
    EXPECT_EQ(sparse->rows(), mu.size()) << name;
    EXPECT_EQ(sparse->cols(), nu.size()) << name;
    EXPECT_LT(sparse->ToDense().MaxAbsDiff(*dense), 1e-9) << name;
  }
}

TEST(SolverTest, Solve1DSparseRequiresSortedSupports) {
  const DiscreteMeasure unsorted = MakeMeasure({1.0, 0.0}, {0.5, 0.5});
  const DiscreteMeasure sorted = MakeMeasure({0.0, 1.0}, {0.5, 0.5});
  for (const char* name : {"monotone", "exact", "sinkhorn"}) {
    auto solver = *MakeSolver(name);
    EXPECT_FALSE(solver->Solve1DSparse(unsorted, sorted).ok()) << name;
    EXPECT_FALSE(solver->Solve1DSparse(sorted, unsorted).ok()) << name;
  }
}

TEST(SolverTest, MonotoneSparsePlanIsAStaircase) {
  // n + m - 1 entries at most, CSR-sorted, marginals exact.
  const DiscreteMeasure mu = MakeMeasure({0.0, 1.0, 2.0, 3.0}, {0.25, 0.25, 0.25, 0.25});
  const DiscreteMeasure nu = MakeMeasure({0.5, 1.5, 2.5}, {0.4, 0.3, 0.3});
  auto sparse = (*MakeSolver("monotone"))->Solve1DSparse(mu, nu);
  ASSERT_TRUE(sparse.ok());
  EXPECT_LE(sparse->nnz(), mu.size() + nu.size() - 1);
  EXPECT_TRUE(sparse->columns_sorted());
  const std::vector<double> rows = sparse->RowSums();
  for (size_t i = 0; i < mu.size(); ++i) EXPECT_NEAR(rows[i], mu.weight_at(i), 1e-15);
  const std::vector<double> cols = sparse->ColSums();
  for (size_t j = 0; j < nu.size(); ++j) EXPECT_NEAR(cols[j], nu.weight_at(j), 1e-15);
}

TEST(SolverTest, SinkhornSparseTruncationShrinksThePlan) {
  // Spread-out supports + small epsilon: the off-band entries underflow
  // the mass-relative threshold and the truncated CSR is strictly
  // smaller than dense, with marginals held to solver tolerance.
  std::vector<double> support(24);
  std::vector<double> weights(24, 1.0 / 24.0);
  for (size_t i = 0; i < support.size(); ++i) support[i] = static_cast<double>(i) * 0.25;
  const DiscreteMeasure mu = MakeMeasure(support, weights);
  SolverOptions options;
  options.sinkhorn.epsilon = 0.02;
  options.sinkhorn.log_domain = true;
  auto sparse = (*MakeSolver("sinkhorn", options))->Solve1DSparse(mu, mu);
  ASSERT_TRUE(sparse.ok());
  EXPECT_LT(sparse->nnz(), mu.size() * mu.size());
  const std::vector<double> rows = sparse->RowSums();
  const std::vector<double> cols = sparse->ColSums();
  for (size_t i = 0; i < mu.size(); ++i) {
    EXPECT_NEAR(rows[i], mu.weight_at(i), 1e-6) << i;
    EXPECT_NEAR(cols[i], mu.weight_at(i), 1e-6) << i;
  }
}

TEST(SolverTest, SolverOptionsReachTheBackend) {
  // A Sinkhorn backend built with a huge tolerance and one iteration
  // produces a sloppier plan than the defaults — proving the registry
  // factory passes options through.
  const DiscreteMeasure mu = MakeMeasure({0.0, 1.0, 2.0}, {0.6, 0.3, 0.1});
  const DiscreteMeasure nu = MakeMeasure({0.0, 1.0, 2.0}, {0.1, 0.3, 0.6});

  SolverOptions sloppy;
  sloppy.sinkhorn.max_iterations = 1;
  SolverOptions tight;
  tight.sinkhorn.max_iterations = 10000;
  tight.sinkhorn.tolerance = 1e-12;

  auto plan_sloppy = (*MakeSolver("sinkhorn", sloppy))->Solve1DDense(mu, nu);
  auto plan_tight = (*MakeSolver("sinkhorn", tight))->Solve1DDense(mu, nu);
  ASSERT_TRUE(plan_sloppy.ok() && plan_tight.ok());

  auto row_error = [&](const Matrix& plan) {
    double worst = 0.0;
    for (size_t i = 0; i < 3; ++i) {
      double mass = 0.0;
      for (size_t j = 0; j < 3; ++j) mass += plan(i, j);
      worst = std::max(worst, std::fabs(mass - mu.weight_at(i)));
    }
    return worst;
  };
  EXPECT_GT(row_error(*plan_sloppy), row_error(*plan_tight));
}

}  // namespace
}  // namespace otfair::ot
