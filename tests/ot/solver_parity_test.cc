// Cross-backend parity property test (ISSUE 1 satellite): on random 1-D
// squared-Euclidean instances, the exact network solver and the monotone
// map must attain the *same* optimal objective (the monotone rearrangement
// is optimal for convex costs on the line), and small-epsilon Sinkhorn
// must approach it from above. Both exact backends must also produce
// non-crossing (monotone) couplings — the structural signature of 1-D
// optimality the repair pipeline relies on.

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/cost.h"
#include "ot/plan.h"
#include "ot/solver.h"

namespace otfair::ot {
namespace {

using common::Rng;

struct Instance {
  DiscreteMeasure mu;
  DiscreteMeasure nu;
};

/// Random sorted-support measure: n atoms at uniform positions in
/// [-scale, scale], Dirichlet-ish positive weights.
DiscreteMeasure RandomMeasure(size_t n, double scale, Rng& rng) {
  std::vector<double> support(n);
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    support[i] = rng.Uniform(-scale, scale);
    weights[i] = rng.Exponential(1.0) + 1e-3;
  }
  std::sort(support.begin(), support.end());
  auto m = DiscreteMeasure::Create(std::move(support), std::move(weights));
  EXPECT_TRUE(m.ok());
  return *m;
}

Instance RandomInstance(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  return Instance{RandomMeasure(n, 2.0, rng), RandomMeasure(m, 3.0, rng)};
}

double PlanCost(const std::vector<PlanEntry>& entries, const Instance& inst) {
  const common::Matrix cost =
      SquaredEuclideanCost(inst.mu.support(), inst.nu.support());
  return SparsePlanCost(entries, cost);
}

/// Largest marginal violation of a sparse plan against the two weight
/// vectors.
double MarginalError(const std::vector<PlanEntry>& entries, const Instance& inst) {
  std::vector<double> row(inst.mu.size(), 0.0);
  std::vector<double> col(inst.nu.size(), 0.0);
  for (const PlanEntry& e : entries) {
    row[e.i] += e.mass;
    col[e.j] += e.mass;
  }
  double worst = 0.0;
  for (size_t i = 0; i < row.size(); ++i)
    worst = std::max(worst, std::fabs(row[i] - inst.mu.weight_at(i)));
  for (size_t j = 0; j < col.size(); ++j)
    worst = std::max(worst, std::fabs(col[j] - inst.nu.weight_at(j)));
  return worst;
}

/// A coupling is monotone (non-crossing) when no two mass-bearing entries
/// move in opposite index directions.
bool IsMonotoneCoupling(const std::vector<PlanEntry>& entries, double mass_floor) {
  for (size_t a = 0; a < entries.size(); ++a) {
    if (entries[a].mass <= mass_floor) continue;
    for (size_t b = a + 1; b < entries.size(); ++b) {
      if (entries[b].mass <= mass_floor) continue;
      const auto di = static_cast<long>(entries[a].i) - static_cast<long>(entries[b].i);
      const auto dj = static_cast<long>(entries[a].j) - static_cast<long>(entries[b].j);
      if (di * dj < 0) return false;
    }
  }
  return true;
}

// (n, m, seed)
using ParamType = std::tuple<size_t, size_t, uint64_t>;

class SolverParityTest : public ::testing::TestWithParam<ParamType> {};

TEST_P(SolverParityTest, ExactBackendsAgreeAndSinkhornApproaches) {
  const auto [n, m, seed] = GetParam();
  const Instance inst = RandomInstance(n, m, seed);

  auto monotone = (*MakeSolver("monotone"))->Solve1D(inst.mu, inst.nu);
  auto exact = (*MakeSolver("exact"))->Solve1D(inst.mu, inst.nu);
  ASSERT_TRUE(monotone.ok()) << monotone.status().ToString();
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();

  const double cost_monotone = PlanCost(*monotone, inst);
  const double cost_exact = PlanCost(*exact, inst);

  // Same optimum, to solver precision.
  EXPECT_NEAR(cost_monotone, cost_exact, 1e-9 * (1.0 + cost_monotone));

  // Feasibility and non-crossing structure for both exact backends.
  EXPECT_LT(MarginalError(*monotone, inst), 1e-9);
  EXPECT_LT(MarginalError(*exact, inst), 1e-9);
  EXPECT_TRUE(IsMonotoneCoupling(*monotone, 0.0));
  EXPECT_TRUE(IsMonotoneCoupling(*exact, 1e-12));

  // Small-epsilon Sinkhorn: the entropic objective upper-bounds the exact
  // one and converges to it as epsilon -> 0. The supports span O(1)
  // ranges, so epsilon = 0.01 puts the entropy gap well under 5%.
  SolverOptions options;
  options.sinkhorn.epsilon = 0.01;
  options.sinkhorn.log_domain = true;
  options.sinkhorn.max_iterations = 20000;
  auto sinkhorn = (*MakeSolver("sinkhorn", options))->Solve1D(inst.mu, inst.nu);
  ASSERT_TRUE(sinkhorn.ok()) << sinkhorn.status().ToString();
  const double cost_sinkhorn = PlanCost(*sinkhorn, inst);
  EXPECT_GT(cost_sinkhorn, cost_exact - 1e-9);
  EXPECT_NEAR(cost_sinkhorn, cost_exact, 0.05 * (1.0 + cost_exact));
  EXPECT_LT(MarginalError(*sinkhorn, inst), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, SolverParityTest,
    ::testing::Values(ParamType{5, 5, 1}, ParamType{16, 16, 2}, ParamType{32, 32, 3},
                      ParamType{50, 50, 4}, ParamType{8, 24, 5}, ParamType{24, 8, 6},
                      ParamType{40, 17, 7}, ParamType{64, 64, 8}),
    [](const ::testing::TestParamInfo<ParamType>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "m" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace otfair::ot
