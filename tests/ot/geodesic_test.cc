#include "ot/geodesic.h"

#include <gtest/gtest.h>

#include "ot/monotone.h"

namespace otfair::ot {
namespace {

TEST(DisplacementTest, MidpointOfCoupledAtoms) {
  std::vector<PlanEntry> entries = {{0, 0, 0.5}, {1, 1, 0.5}};
  std::vector<double> xs = {0.0, 2.0};
  std::vector<double> ys = {10.0, 12.0};
  auto mid = DisplacementInterpolation(entries, xs, ys, 0.5);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->support(), (std::vector<double>{5.0, 7.0}));
  EXPECT_DOUBLE_EQ(mid->weight_at(0), 0.5);
}

TEST(DisplacementTest, EndpointsReproduceMarginals) {
  auto mu = DiscreteMeasure::FromSamples({0.0, 1.0, 2.0});
  auto nu = DiscreteMeasure::FromSamples({5.0, 6.0, 9.0});
  auto coupling = SolveMonotone1D(*mu, *nu);
  ASSERT_TRUE(coupling.ok());
  auto at0 = DisplacementInterpolation(coupling->entries, mu->support(), nu->support(), 0.0);
  auto at1 = DisplacementInterpolation(coupling->entries, mu->support(), nu->support(), 1.0);
  ASSERT_TRUE(at0.ok() && at1.ok());
  EXPECT_DOUBLE_EQ(at0->Mean(), mu->Mean());
  EXPECT_DOUBLE_EQ(at1->Mean(), nu->Mean());
}

TEST(DisplacementTest, ResultIsSorted) {
  std::vector<PlanEntry> entries = {{1, 0, 0.5}, {0, 1, 0.5}};
  auto out = DisplacementInterpolation(entries, {0.0, 10.0}, {1.0, 2.0}, 0.5);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->IsSorted());
}

TEST(DisplacementTest, RejectsBadInput) {
  std::vector<PlanEntry> entries = {{0, 5, 1.0}};  // j out of range
  EXPECT_FALSE(DisplacementInterpolation(entries, {0.0}, {1.0}, 0.5).ok());
  EXPECT_FALSE(DisplacementInterpolation({}, {0.0}, {1.0}, 0.5).ok());
  std::vector<PlanEntry> good = {{0, 0, 1.0}};
  EXPECT_FALSE(DisplacementInterpolation(good, {0.0}, {1.0}, 2.0).ok());
}

TEST(ProjectToGridTest, AtomOnGridPointStaysPut) {
  auto m = DiscreteMeasure::Create({1.0}, {1.0});
  auto proj = ProjectToGrid(*m, {0.0, 1.0, 2.0});
  ASSERT_TRUE(proj.ok());
  EXPECT_DOUBLE_EQ(proj->weight_at(1), 1.0);
}

TEST(ProjectToGridTest, InteriorAtomSplitsProportionally) {
  auto m = DiscreteMeasure::Create({0.25}, {1.0});
  auto proj = ProjectToGrid(*m, {0.0, 1.0});
  ASSERT_TRUE(proj.ok());
  EXPECT_NEAR(proj->weight_at(0), 0.75, 1e-12);
  EXPECT_NEAR(proj->weight_at(1), 0.25, 1e-12);
  EXPECT_NEAR(proj->Mean(), 0.25, 1e-12);  // mean-preserving split
}

TEST(ProjectToGridTest, OutOfRangeAtomsSnapToEnds) {
  auto m = DiscreteMeasure::Create({-5.0, 20.0}, {0.5, 0.5});
  auto proj = ProjectToGrid(*m, {0.0, 1.0, 2.0});
  ASSERT_TRUE(proj.ok());
  EXPECT_DOUBLE_EQ(proj->weight_at(0), 0.5);
  EXPECT_DOUBLE_EQ(proj->weight_at(2), 0.5);
}

TEST(ProjectToGridTest, TotalMassPreserved) {
  auto m = DiscreteMeasure::FromSamples({0.1, 0.7, 1.3, 1.9, 2.2});
  auto proj = ProjectToGrid(*m, {0.0, 0.5, 1.0, 1.5, 2.0});
  ASSERT_TRUE(proj.ok());
  EXPECT_LT(proj->NormalizationError(), 1e-12);
}

TEST(ProjectToGridTest, RejectsNonIncreasingGrid) {
  auto m = DiscreteMeasure::FromSamples({0.5});
  EXPECT_FALSE(ProjectToGrid(*m, {1.0, 1.0}).ok());
  EXPECT_FALSE(ProjectToGrid(*m, {2.0, 1.0}).ok());
  EXPECT_FALSE(ProjectToGrid(*m, {}).ok());
}

}  // namespace
}  // namespace otfair::ot
