#include "ot/monotone.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/cost.h"
#include "ot/plan.h"

namespace otfair::ot {
namespace {

DiscreteMeasure Uniform(std::vector<double> support) {
  auto m = DiscreteMeasure::Uniform(std::move(support));
  EXPECT_TRUE(m.ok());
  return *m;
}

TEST(MonotoneTest, EqualSizeUniformGivesDiagonalMatching) {
  auto coupling = SolveMonotone1D(Uniform({0.0, 1.0, 2.0}), Uniform({5.0, 6.0, 7.0}));
  ASSERT_TRUE(coupling.ok());
  ASSERT_EQ(coupling->entries.size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(coupling->entries[k].i, k);
    EXPECT_EQ(coupling->entries[k].j, k);
    EXPECT_NEAR(coupling->entries[k].mass, 1.0 / 3.0, 1e-12);
  }
}

TEST(MonotoneTest, CouplingIsMonotone) {
  common::Rng rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) xs.push_back(rng.Normal());
  for (int i = 0; i < 25; ++i) ys.push_back(rng.Normal(2.0, 0.5));
  auto coupling = SolveMonotone1D(*DiscreteMeasure::FromSamples(xs),
                                  *DiscreteMeasure::FromSamples(ys));
  ASSERT_TRUE(coupling.ok());
  for (size_t k = 1; k < coupling->entries.size(); ++k) {
    EXPECT_GE(coupling->entries[k].i, coupling->entries[k - 1].i);
    EXPECT_GE(coupling->entries[k].j, coupling->entries[k - 1].j);
  }
}

TEST(MonotoneTest, MarginalsExactlySatisfied) {
  auto mu = DiscreteMeasure::Create({0.0, 1.0, 2.0}, {0.5, 0.2, 0.3});
  auto nu = DiscreteMeasure::Create({-1.0, 4.0}, {0.6, 0.4});
  ASSERT_TRUE(mu.ok() && nu.ok());
  auto coupling = SolveMonotone1D(*mu, *nu);
  ASSERT_TRUE(coupling.ok());
  common::Matrix dense = SparseToDense(coupling->entries, mu->size(), nu->size());
  TransportPlan plan{dense, 0.0};
  EXPECT_LT(plan.MarginalError(mu->weights(), nu->weights()), 1e-12);
}

TEST(MonotoneTest, UnsortedInputsAreSortedInternally) {
  auto mu = DiscreteMeasure::Create({2.0, 0.0, 1.0}, {0.3, 0.3, 0.4});
  auto nu = DiscreteMeasure::Create({10.0, 8.0}, {0.5, 0.5});
  ASSERT_TRUE(mu.ok() && nu.ok());
  auto coupling = SolveMonotone1D(*mu, *nu);
  ASSERT_TRUE(coupling.ok());
  EXPECT_TRUE(coupling->sorted_source.IsSorted());
  EXPECT_TRUE(coupling->sorted_target.IsSorted());
  // First entry couples the smallest atoms of both measures.
  EXPECT_DOUBLE_EQ(coupling->sorted_source.support_at(coupling->entries[0].i), 0.0);
  EXPECT_DOUBLE_EQ(coupling->sorted_target.support_at(coupling->entries[0].j), 8.0);
}

TEST(MonotoneTest, EntryCountBounded) {
  common::Rng rng(31);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 64; ++i) xs.push_back(rng.Uniform());
  for (int i = 0; i < 100; ++i) ys.push_back(rng.Uniform());
  auto coupling = SolveMonotone1D(*DiscreteMeasure::FromSamples(xs),
                                  *DiscreteMeasure::FromSamples(ys));
  ASSERT_TRUE(coupling.ok());
  EXPECT_LE(coupling->entries.size(), 64u + 100u - 1u);
}

TEST(MonotoneTest, RejectsEmptyMeasure) {
  DiscreteMeasure empty;
  EXPECT_FALSE(SolveMonotone1D(empty, Uniform({1.0})).ok());
}

TEST(Wasserstein1DTest, TranslationDistance) {
  // W_p between a distribution and its translation is the shift, any p.
  std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(x + 5.0);
  auto mu = DiscreteMeasure::FromSamples(xs);
  auto nu = DiscreteMeasure::FromSamples(ys);
  for (int p = 1; p <= 3; ++p) {
    auto w = Wasserstein1D(*mu, *nu, p);
    ASSERT_TRUE(w.ok());
    EXPECT_NEAR(*w, 5.0, 1e-12) << "p=" << p;
  }
}

TEST(Wasserstein1DTest, IdentityIsZero) {
  auto mu = DiscreteMeasure::FromSamples({1.0, 2.0, 3.0});
  auto w = Wasserstein1D(*mu, *mu, 2);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(*w, 0.0, 1e-12);
}

TEST(Wasserstein1DTest, SymmetricInArguments) {
  common::Rng rng(77);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 30; ++i) xs.push_back(rng.Normal());
  for (int i = 0; i < 50; ++i) ys.push_back(rng.Normal(1.0, 2.0));
  auto mu = DiscreteMeasure::FromSamples(xs);
  auto nu = DiscreteMeasure::FromSamples(ys);
  auto ab = Wasserstein1D(*mu, *nu, 2);
  auto ba = Wasserstein1D(*nu, *mu, 2);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_NEAR(*ab, *ba, 1e-10);
}

TEST(Wasserstein1DTest, TriangleInequality) {
  common::Rng rng(101);
  auto draw = [&rng](double mean, int n) {
    std::vector<double> out;
    for (int i = 0; i < n; ++i) out.push_back(rng.Normal(mean, 1.0));
    return *DiscreteMeasure::FromSamples(out);
  };
  DiscreteMeasure a = draw(0.0, 24);
  DiscreteMeasure b = draw(1.5, 36);
  DiscreteMeasure c = draw(4.0, 24);
  auto ab = Wasserstein1D(a, b, 2);
  auto bc = Wasserstein1D(b, c, 2);
  auto ac = Wasserstein1D(a, c, 2);
  ASSERT_TRUE(ab.ok() && bc.ok() && ac.ok());
  EXPECT_LE(*ac, *ab + *bc + 1e-10);
}

TEST(Wasserstein1DTest, HandComputedTwoPointCase) {
  // mu = delta_0, nu = 0.5 delta_{-1} + 0.5 delta_{1}:
  // W2^2 = 0.5 * 1 + 0.5 * 1 = 1.
  auto mu = DiscreteMeasure::Create({0.0}, {1.0});
  auto nu = DiscreteMeasure::Create({-1.0, 1.0}, {0.5, 0.5});
  auto w = Wasserstein1D(*mu, *nu, 2);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(*w, 1.0, 1e-12);
}

TEST(Wasserstein1DTest, RejectsBadOrder) {
  auto mu = DiscreteMeasure::FromSamples({0.0});
  EXPECT_FALSE(Wasserstein1D(*mu, *mu, 0).ok());
}

}  // namespace
}  // namespace otfair::ot
