#include "ot/barycenter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/monotone.h"

namespace otfair::ot {
namespace {

std::vector<double> Grid(double lo, double hi, size_t n) {
  std::vector<double> g(n);
  for (size_t i = 0; i < n; ++i)
    g[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  return g;
}

TEST(QuantileBarycenterTest, EndpointsRecoverInputs) {
  auto mu0 = DiscreteMeasure::FromSamples({0.0, 1.0, 2.0});
  auto mu1 = DiscreteMeasure::FromSamples({10.0, 11.0, 12.0});
  auto at0 = QuantileBarycenter1D(*mu0, *mu1, 0.0);
  auto at1 = QuantileBarycenter1D(*mu0, *mu1, 1.0);
  ASSERT_TRUE(at0.ok() && at1.ok());
  EXPECT_EQ(at0->support(), mu0->support());
  EXPECT_EQ(at1->support(), mu1->support());
}

TEST(QuantileBarycenterTest, MidpointOfTranslatedMeasures) {
  // Barycenter of mu and mu shifted by c is mu shifted by t*c.
  auto mu0 = DiscreteMeasure::FromSamples({0.0, 1.0, 4.0});
  auto mu1 = DiscreteMeasure::FromSamples({6.0, 7.0, 10.0});
  auto mid = QuantileBarycenter1D(*mu0, *mu1, 0.5);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->support(), (std::vector<double>{3.0, 4.0, 7.0}));
}

TEST(QuantileBarycenterTest, MeanInterpolatesLinearly) {
  common::Rng rng(3);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) xs.push_back(rng.Normal(0.0, 1.0));
  for (int i = 0; i < 70; ++i) ys.push_back(rng.Normal(5.0, 2.0));
  auto mu0 = DiscreteMeasure::FromSamples(xs);
  auto mu1 = DiscreteMeasure::FromSamples(ys);
  for (double t : {0.25, 0.5, 0.75}) {
    auto bary = QuantileBarycenter1D(*mu0, *mu1, t);
    ASSERT_TRUE(bary.ok());
    EXPECT_NEAR(bary->Mean(), (1.0 - t) * mu0->Mean() + t * mu1->Mean(), 1e-10);
  }
}

TEST(QuantileBarycenterTest, FairBarycentreEquidistant) {
  // W2(mu0, nu) == W2(mu1, nu) at t = 0.5 (centre of the geodesic).
  common::Rng rng(9);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) xs.push_back(rng.Normal(-2.0, 1.0));
  for (int i = 0; i < 40; ++i) ys.push_back(rng.Normal(3.0, 0.5));
  auto mu0 = DiscreteMeasure::FromSamples(xs);
  auto mu1 = DiscreteMeasure::FromSamples(ys);
  auto nu = QuantileBarycenter1D(*mu0, *mu1, 0.5);
  ASSERT_TRUE(nu.ok());
  auto w0 = Wasserstein1D(*mu0, *nu, 2);
  auto w1 = Wasserstein1D(*mu1, *nu, 2);
  ASSERT_TRUE(w0.ok() && w1.ok());
  EXPECT_NEAR(*w0, *w1, 1e-9);
}

TEST(QuantileBarycenterTest, GeodesicAdditivity) {
  // W2(mu0, nu_t) == t * W2(mu0, mu1) along the geodesic.
  auto mu0 = DiscreteMeasure::FromSamples({0.0, 2.0, 4.0, 8.0});
  auto mu1 = DiscreteMeasure::FromSamples({1.0, 5.0, 9.0, 13.0});
  auto full = Wasserstein1D(*mu0, *mu1, 2);
  ASSERT_TRUE(full.ok());
  for (double t : {0.2, 0.6}) {
    auto nu = QuantileBarycenter1D(*mu0, *mu1, t);
    ASSERT_TRUE(nu.ok());
    auto part = Wasserstein1D(*mu0, *nu, 2);
    ASSERT_TRUE(part.ok());
    EXPECT_NEAR(*part, t * *full, 1e-9) << "t=" << t;
  }
}

TEST(QuantileBarycenterTest, RejectsBadT) {
  auto mu = DiscreteMeasure::FromSamples({0.0, 1.0});
  EXPECT_FALSE(QuantileBarycenter1D(*mu, *mu, -0.1).ok());
  EXPECT_FALSE(QuantileBarycenter1D(*mu, *mu, 1.1).ok());
}

TEST(GridBarycenterTest, MassAndMeanPreservedInsideGrid) {
  auto mu0 = DiscreteMeasure::FromSamples({1.0, 2.0, 3.0});
  auto mu1 = DiscreteMeasure::FromSamples({5.0, 6.0, 7.0});
  const std::vector<double> grid = Grid(0.0, 10.0, 101);
  auto bary = QuantileBarycenterOnGrid(*mu0, *mu1, 0.5, grid);
  ASSERT_TRUE(bary.ok());
  EXPECT_LT(bary->NormalizationError(), 1e-12);
  // Interior projection preserves the mean exactly.
  auto atoms = QuantileBarycenter1D(*mu0, *mu1, 0.5);
  ASSERT_TRUE(atoms.ok());
  EXPECT_NEAR(bary->Mean(), atoms->Mean(), 1e-10);
}

TEST(GridBarycenterTest, SupportsIsTheGrid) {
  auto mu0 = DiscreteMeasure::FromSamples({1.0, 2.0});
  auto mu1 = DiscreteMeasure::FromSamples({3.0, 4.0});
  const std::vector<double> grid = Grid(0.0, 5.0, 11);
  auto bary = QuantileBarycenterOnGrid(*mu0, *mu1, 0.5, grid);
  ASSERT_TRUE(bary.ok());
  EXPECT_EQ(bary->support(), grid);
}

TEST(BregmanBarycenterTest, AgreesWithQuantileMethodOnGaussians) {
  common::Rng rng(41);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.Normal(-1.0, 0.7));
  for (int i = 0; i < 200; ++i) ys.push_back(rng.Normal(2.0, 0.7));
  const std::vector<double> grid = Grid(-4.0, 5.0, 60);
  auto mu0 = DiscreteMeasure::FromSamples(xs);
  auto mu1 = DiscreteMeasure::FromSamples(ys);

  auto quantile = QuantileBarycenterOnGrid(*mu0, *mu1, 0.5, grid);
  ASSERT_TRUE(quantile.ok());
  BregmanBarycenterOptions options;
  options.epsilon = 0.05;
  auto bregman = BregmanBarycenter({*mu0, *mu1}, {0.5, 0.5}, grid, options);
  ASSERT_TRUE(bregman.ok());

  // Entropic smoothing blurs the pmf, but the first moment should agree.
  EXPECT_NEAR(bregman->Mean(), quantile->Mean(), 0.15);
}

TEST(BregmanBarycenterTest, DegenerateWeightRecoversThatMeasureMean) {
  auto mu0 = DiscreteMeasure::FromSamples({0.0, 0.5, 1.0});
  auto mu1 = DiscreteMeasure::FromSamples({8.0, 9.0, 10.0});
  const std::vector<double> grid = Grid(-1.0, 11.0, 80);
  BregmanBarycenterOptions options;
  options.epsilon = 0.05;
  auto bary = BregmanBarycenter({*mu0, *mu1}, {1.0, 0.0}, grid, options);
  ASSERT_TRUE(bary.ok());
  EXPECT_NEAR(bary->Mean(), mu0->Mean(), 0.2);
}

TEST(BregmanBarycenterTest, LambdasNormalized) {
  auto mu0 = DiscreteMeasure::FromSamples({0.0, 1.0});
  auto mu1 = DiscreteMeasure::FromSamples({4.0, 5.0});
  const std::vector<double> grid = Grid(-1.0, 6.0, 50);
  auto a = BregmanBarycenter({*mu0, *mu1}, {0.5, 0.5}, grid, {});
  auto b = BregmanBarycenter({*mu0, *mu1}, {2.0, 2.0}, grid, {});
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(a->weight_at(i), b->weight_at(i), 1e-9);
}

TEST(BregmanBarycenterTest, RejectsBadInputs) {
  auto mu = DiscreteMeasure::FromSamples({0.0, 1.0});
  const std::vector<double> grid = Grid(0.0, 1.0, 10);
  EXPECT_FALSE(BregmanBarycenter({}, {}, grid, {}).ok());
  EXPECT_FALSE(BregmanBarycenter({*mu}, {0.5, 0.5}, grid, {}).ok());
  EXPECT_FALSE(BregmanBarycenter({*mu}, {0.0}, grid, {}).ok());
  EXPECT_FALSE(BregmanBarycenter({*mu}, {-1.0}, grid, {}).ok());
}

}  // namespace
}  // namespace otfair::ot
