#include "ot/barycenter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/monotone.h"

namespace otfair::ot {
namespace {

std::vector<double> Grid(double lo, double hi, size_t n) {
  std::vector<double> g(n);
  for (size_t i = 0; i < n; ++i)
    g[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  return g;
}

TEST(QuantileBarycenterTest, EndpointsRecoverInputs) {
  auto mu0 = DiscreteMeasure::FromSamples({0.0, 1.0, 2.0});
  auto mu1 = DiscreteMeasure::FromSamples({10.0, 11.0, 12.0});
  auto at0 = QuantileBarycenter1D(*mu0, *mu1, 0.0);
  auto at1 = QuantileBarycenter1D(*mu0, *mu1, 1.0);
  ASSERT_TRUE(at0.ok() && at1.ok());
  EXPECT_EQ(at0->support(), mu0->support());
  EXPECT_EQ(at1->support(), mu1->support());
}

TEST(QuantileBarycenterTest, MidpointOfTranslatedMeasures) {
  // Barycenter of mu and mu shifted by c is mu shifted by t*c.
  auto mu0 = DiscreteMeasure::FromSamples({0.0, 1.0, 4.0});
  auto mu1 = DiscreteMeasure::FromSamples({6.0, 7.0, 10.0});
  auto mid = QuantileBarycenter1D(*mu0, *mu1, 0.5);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->support(), (std::vector<double>{3.0, 4.0, 7.0}));
}

TEST(QuantileBarycenterTest, MeanInterpolatesLinearly) {
  common::Rng rng(3);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) xs.push_back(rng.Normal(0.0, 1.0));
  for (int i = 0; i < 70; ++i) ys.push_back(rng.Normal(5.0, 2.0));
  auto mu0 = DiscreteMeasure::FromSamples(xs);
  auto mu1 = DiscreteMeasure::FromSamples(ys);
  for (double t : {0.25, 0.5, 0.75}) {
    auto bary = QuantileBarycenter1D(*mu0, *mu1, t);
    ASSERT_TRUE(bary.ok());
    EXPECT_NEAR(bary->Mean(), (1.0 - t) * mu0->Mean() + t * mu1->Mean(), 1e-10);
  }
}

TEST(QuantileBarycenterTest, FairBarycentreEquidistant) {
  // W2(mu0, nu) == W2(mu1, nu) at t = 0.5 (centre of the geodesic).
  common::Rng rng(9);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) xs.push_back(rng.Normal(-2.0, 1.0));
  for (int i = 0; i < 40; ++i) ys.push_back(rng.Normal(3.0, 0.5));
  auto mu0 = DiscreteMeasure::FromSamples(xs);
  auto mu1 = DiscreteMeasure::FromSamples(ys);
  auto nu = QuantileBarycenter1D(*mu0, *mu1, 0.5);
  ASSERT_TRUE(nu.ok());
  auto w0 = Wasserstein1D(*mu0, *nu, 2);
  auto w1 = Wasserstein1D(*mu1, *nu, 2);
  ASSERT_TRUE(w0.ok() && w1.ok());
  EXPECT_NEAR(*w0, *w1, 1e-9);
}

TEST(QuantileBarycenterTest, GeodesicAdditivity) {
  // W2(mu0, nu_t) == t * W2(mu0, mu1) along the geodesic.
  auto mu0 = DiscreteMeasure::FromSamples({0.0, 2.0, 4.0, 8.0});
  auto mu1 = DiscreteMeasure::FromSamples({1.0, 5.0, 9.0, 13.0});
  auto full = Wasserstein1D(*mu0, *mu1, 2);
  ASSERT_TRUE(full.ok());
  for (double t : {0.2, 0.6}) {
    auto nu = QuantileBarycenter1D(*mu0, *mu1, t);
    ASSERT_TRUE(nu.ok());
    auto part = Wasserstein1D(*mu0, *nu, 2);
    ASSERT_TRUE(part.ok());
    EXPECT_NEAR(*part, t * *full, 1e-9) << "t=" << t;
  }
}

TEST(QuantileBarycenterTest, RejectsBadT) {
  auto mu = DiscreteMeasure::FromSamples({0.0, 1.0});
  EXPECT_FALSE(QuantileBarycenter1D(*mu, *mu, -0.1).ok());
  EXPECT_FALSE(QuantileBarycenter1D(*mu, *mu, 1.1).ok());
}

TEST(GridBarycenterTest, MassAndMeanPreservedInsideGrid) {
  auto mu0 = DiscreteMeasure::FromSamples({1.0, 2.0, 3.0});
  auto mu1 = DiscreteMeasure::FromSamples({5.0, 6.0, 7.0});
  const std::vector<double> grid = Grid(0.0, 10.0, 101);
  auto bary = QuantileBarycenterOnGrid(*mu0, *mu1, 0.5, grid);
  ASSERT_TRUE(bary.ok());
  EXPECT_LT(bary->NormalizationError(), 1e-12);
  // Interior projection preserves the mean exactly.
  auto atoms = QuantileBarycenter1D(*mu0, *mu1, 0.5);
  ASSERT_TRUE(atoms.ok());
  EXPECT_NEAR(bary->Mean(), atoms->Mean(), 1e-10);
}

TEST(GridBarycenterTest, SupportsIsTheGrid) {
  auto mu0 = DiscreteMeasure::FromSamples({1.0, 2.0});
  auto mu1 = DiscreteMeasure::FromSamples({3.0, 4.0});
  const std::vector<double> grid = Grid(0.0, 5.0, 11);
  auto bary = QuantileBarycenterOnGrid(*mu0, *mu1, 0.5, grid);
  ASSERT_TRUE(bary.ok());
  EXPECT_EQ(bary->support(), grid);
}

TEST(BregmanBarycenterTest, AgreesWithQuantileMethodOnGaussians) {
  common::Rng rng(41);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.Normal(-1.0, 0.7));
  for (int i = 0; i < 200; ++i) ys.push_back(rng.Normal(2.0, 0.7));
  const std::vector<double> grid = Grid(-4.0, 5.0, 60);
  auto mu0 = DiscreteMeasure::FromSamples(xs);
  auto mu1 = DiscreteMeasure::FromSamples(ys);

  auto quantile = QuantileBarycenterOnGrid(*mu0, *mu1, 0.5, grid);
  ASSERT_TRUE(quantile.ok());
  BregmanBarycenterOptions options;
  options.epsilon = 0.05;
  auto bregman = BregmanBarycenter({*mu0, *mu1}, {0.5, 0.5}, grid, options);
  ASSERT_TRUE(bregman.ok());

  // Entropic smoothing blurs the pmf, but the first moment should agree.
  EXPECT_NEAR(bregman->Mean(), quantile->Mean(), 0.15);
}

TEST(BregmanBarycenterTest, DegenerateWeightRecoversThatMeasureMean) {
  auto mu0 = DiscreteMeasure::FromSamples({0.0, 0.5, 1.0});
  auto mu1 = DiscreteMeasure::FromSamples({8.0, 9.0, 10.0});
  const std::vector<double> grid = Grid(-1.0, 11.0, 80);
  BregmanBarycenterOptions options;
  options.epsilon = 0.05;
  auto bary = BregmanBarycenter({*mu0, *mu1}, {1.0, 0.0}, grid, options);
  ASSERT_TRUE(bary.ok());
  EXPECT_NEAR(bary->Mean(), mu0->Mean(), 0.2);
}

TEST(BregmanBarycenterTest, LambdasNormalized) {
  auto mu0 = DiscreteMeasure::FromSamples({0.0, 1.0});
  auto mu1 = DiscreteMeasure::FromSamples({4.0, 5.0});
  const std::vector<double> grid = Grid(-1.0, 6.0, 50);
  auto a = BregmanBarycenter({*mu0, *mu1}, {0.5, 0.5}, grid, {});
  auto b = BregmanBarycenter({*mu0, *mu1}, {2.0, 2.0}, grid, {});
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(a->weight_at(i), b->weight_at(i), 1e-9);
}

TEST(BregmanBarycenterTest, RejectsBadInputs) {
  auto mu = DiscreteMeasure::FromSamples({0.0, 1.0});
  const std::vector<double> grid = Grid(0.0, 1.0, 10);
  EXPECT_FALSE(BregmanBarycenter({}, {}, grid, {}).ok());
  EXPECT_FALSE(BregmanBarycenter({*mu}, {0.5, 0.5}, grid, {}).ok());
  EXPECT_FALSE(BregmanBarycenter({*mu}, {0.0}, grid, {}).ok());
  EXPECT_FALSE(BregmanBarycenter({*mu}, {-1.0}, grid, {}).ok());
}

TEST(QuantileBarycenterNTest, TwoMeasureCaseMatchesPairwise) {
  auto mu0 = DiscreteMeasure::Create({0.0, 1.0, 2.0}, {0.2, 0.5, 0.3});
  auto mu1 = DiscreteMeasure::Create({1.0, 3.0, 4.0, 6.0}, {0.1, 0.4, 0.3, 0.2});
  ASSERT_TRUE(mu0.ok() && mu1.ok());
  for (double t : {0.0, 0.25, 0.5, 1.0}) {
    auto pairwise = QuantileBarycenter1D(*mu0, *mu1, t);
    auto n_measure = QuantileBarycenter1D({*mu0, *mu1}, {1.0 - t, t});
    ASSERT_TRUE(pairwise.ok() && n_measure.ok());
    EXPECT_NEAR(pairwise->Mean(), n_measure->Mean(), 1e-12);
    EXPECT_NEAR(pairwise->Variance(), n_measure->Variance(), 1e-12);
    // Same quantile function everywhere, not just matching moments.
    for (double q : {0.05, 0.3, 0.5, 0.8, 0.95})
      EXPECT_NEAR(pairwise->Quantile(q), n_measure->Quantile(q), 1e-12) << "t=" << t;
  }
}

TEST(QuantileBarycenterNTest, WeightedQuantileAveragingOfTranslates) {
  // Translates of one shape: the barycenter is the lambda-weighted
  // translate, exactly (the 1-D closed form).
  auto base = DiscreteMeasure::Create({0.0, 1.0, 2.0}, {0.25, 0.5, 0.25});
  ASSERT_TRUE(base.ok());
  std::vector<DiscreteMeasure> measures;
  const std::vector<double> shifts = {0.0, 2.0, 5.0};
  for (double shift : shifts) {
    std::vector<double> support;
    for (double x : base->support()) support.push_back(x + shift);
    measures.push_back(*DiscreteMeasure::Create(support, base->weights()));
  }
  const std::vector<double> lambdas = {0.5, 0.3, 0.2};
  auto bary = QuantileBarycenter1D(measures, lambdas);
  ASSERT_TRUE(bary.ok());
  double expected_shift = 0.0;
  for (size_t i = 0; i < shifts.size(); ++i) expected_shift += lambdas[i] * shifts[i];
  EXPECT_NEAR(bary->Mean(), base->Mean() + expected_shift, 1e-12);
  EXPECT_NEAR(bary->Variance(), base->Variance(), 1e-12);
}

TEST(QuantileBarycenterNTest, SingleMeasureIsIdentity) {
  auto mu = DiscreteMeasure::Create({0.0, 2.0, 5.0}, {0.3, 0.4, 0.3});
  ASSERT_TRUE(mu.ok());
  auto bary = QuantileBarycenter1D({*mu}, {1.0});
  ASSERT_TRUE(bary.ok());
  ASSERT_EQ(bary->size(), mu->size());
  for (size_t i = 0; i < mu->size(); ++i) {
    EXPECT_DOUBLE_EQ(bary->support_at(i), mu->support_at(i));
    EXPECT_NEAR(bary->weight_at(i), mu->weight_at(i), 1e-15);
  }
}

TEST(QuantileBarycenterNTest, CrossCheckAgainstBregman) {
  // Three Gaussians-on-a-grid: the exact quantile barycenter and the
  // entropic Bregman barycenter must agree up to the entropic smoothing.
  std::vector<double> grid;
  for (int i = 0; i <= 120; ++i) grid.push_back(-4.0 + i * (12.0 / 120.0));
  auto gaussian_on = [&](double mean) {
    std::vector<double> w;
    for (double x : grid) w.push_back(std::exp(-0.5 * (x - mean) * (x - mean)));
    return *DiscreteMeasure::Create(grid, w);
  };
  const std::vector<DiscreteMeasure> measures = {gaussian_on(-1.0), gaussian_on(1.5),
                                                 gaussian_on(4.0)};
  const std::vector<double> lambdas = {0.5, 0.25, 0.25};
  auto exact = QuantileBarycenterOnGrid(measures, lambdas, grid);
  ASSERT_TRUE(exact.ok());
  BregmanBarycenterOptions options;
  options.epsilon = 0.05;
  auto entropic = BregmanBarycenter(measures, lambdas, grid, options);
  ASSERT_TRUE(entropic.ok());
  // Means agree tightly; the entropic one is smoothed, so variances only
  // roughly.
  EXPECT_NEAR(exact->Mean(), entropic->Mean(), 0.05);
  EXPECT_NEAR(exact->Variance(), entropic->Variance(), 0.3);
}

TEST(QuantileBarycenterNTest, RejectsBadArguments) {
  auto mu = DiscreteMeasure::Create({0.0, 1.0}, {0.5, 0.5});
  ASSERT_TRUE(mu.ok());
  EXPECT_FALSE(QuantileBarycenter1D({}, {}).ok());
  EXPECT_FALSE(QuantileBarycenter1D({*mu}, {0.5, 0.5}).ok());
  EXPECT_FALSE(QuantileBarycenter1D({*mu, *mu}, {0.5, -0.5}).ok());
  EXPECT_FALSE(QuantileBarycenter1D({*mu, *mu}, {0.0, 0.0}).ok());
  auto unsorted = DiscreteMeasure::Create({2.0, 0.0}, {0.5, 0.5});
  ASSERT_TRUE(unsorted.ok());
  EXPECT_FALSE(QuantileBarycenter1D({*unsorted, *mu}, {0.5, 0.5}).ok());
}

}  // namespace
}  // namespace otfair::ot
