// Cross-solver property suite: the three solvers (1-D monotone, exact
// network flow, Sinkhorn) must agree on their common domain. Parameterized
// over problem sizes, seeds and cost orders.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/cost.h"
#include "ot/exact.h"
#include "ot/measure.h"
#include "ot/monotone.h"
#include "ot/plan.h"
#include "ot/sinkhorn.h"
#include "ot/wasserstein.h"

namespace otfair::ot {
namespace {

// (n, m, p, seed)
using ParamType = std::tuple<size_t, size_t, int, uint64_t>;

class SolverAgreementTest : public ::testing::TestWithParam<ParamType> {
 protected:
  void SetUp() override {
    const auto [n, m, p, seed] = GetParam();
    n_ = n;
    m_ = m;
    p_ = p;
    common::Rng rng(seed);
    std::vector<double> xs(n);
    std::vector<double> ys(m);
    std::vector<double> wa(n);
    std::vector<double> wb(m);
    for (double& v : xs) v = rng.Normal(0.0, 2.0);
    for (double& v : ys) v = rng.Normal(1.5, 1.0);
    for (double& v : wa) v = rng.Uniform(0.1, 1.0);
    for (double& v : wb) v = rng.Uniform(0.1, 1.0);
    mu_ = *DiscreteMeasure::Create(xs, wa);
    nu_ = *DiscreteMeasure::Create(ys, wb);
  }

  size_t n_ = 0;
  size_t m_ = 0;
  int p_ = 2;
  DiscreteMeasure mu_;
  DiscreteMeasure nu_;
};

TEST_P(SolverAgreementTest, MonotoneCostEqualsExactCost) {
  // 1-D with convex cost: the monotone coupling is optimal, so its cost
  // must match the LP optimum from the network solver.
  const DiscreteMeasure mu = mu_.SortedBySupport();
  const DiscreteMeasure nu = nu_.SortedBySupport();
  auto coupling = SolveMonotone1D(mu, nu);
  ASSERT_TRUE(coupling.ok());
  const common::Matrix cost = LpCost(mu.support(), nu.support(), p_);
  const double monotone_cost = SparsePlanCost(coupling->entries, cost);
  auto exact = SolveExact(mu.weights(), nu.weights(), cost);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(monotone_cost, exact->cost, 1e-9 * (1.0 + std::fabs(exact->cost)));
}

TEST_P(SolverAgreementTest, Wasserstein1DEqualsExactWasserstein) {
  auto fast = Wasserstein1D(mu_, nu_, p_);
  auto slow = WassersteinExact(mu_, nu_, p_);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_NEAR(*fast, *slow, 1e-8 * (1.0 + *slow));
}

TEST_P(SolverAgreementTest, MonotonePlanSatisfiesMarginals) {
  const DiscreteMeasure mu = mu_.SortedBySupport();
  const DiscreteMeasure nu = nu_.SortedBySupport();
  auto coupling = SolveMonotone1D(mu, nu);
  ASSERT_TRUE(coupling.ok());
  TransportPlan plan{SparseToDense(coupling->entries, mu.size(), nu.size()), 0.0};
  EXPECT_LT(plan.MarginalError(mu.weights(), nu.weights()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverAgreementTest,
    ::testing::Values(ParamType{4, 4, 2, 1}, ParamType{8, 5, 2, 2}, ParamType{16, 16, 2, 3},
                      ParamType{25, 10, 2, 4}, ParamType{32, 32, 2, 5}, ParamType{7, 7, 1, 6},
                      ParamType{20, 14, 1, 7}, ParamType{12, 30, 3, 8}, ParamType{40, 40, 2, 9},
                      ParamType{3, 50, 2, 10}));

class SinkhornApproachesExactTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SinkhornApproachesExactTest, GapShrinksWithEpsilon) {
  common::Rng rng(GetParam());
  const size_t n = 12;
  std::vector<double> xs(n);
  std::vector<double> w(n);
  std::vector<double> ys(n);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.Uniform(-1.0, 1.0);
    ys[i] = rng.Uniform(-1.0, 1.0);
    w[i] = rng.Uniform(0.2, 1.0);
    v[i] = rng.Uniform(0.2, 1.0);
  }
  const common::Matrix cost = SquaredEuclideanCost(xs, ys);
  double sw = 0.0;
  double sv = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sw += w[i];
    sv += v[i];
  }
  for (size_t i = 0; i < n; ++i) {
    w[i] /= sw;
    v[i] /= sv;
  }
  auto exact = SolveExact(w, v, cost);
  ASSERT_TRUE(exact.ok());

  SinkhornOptions loose;
  loose.epsilon = 0.5;
  SinkhornOptions tight;
  tight.epsilon = 0.02;
  tight.log_domain = true;
  tight.max_iterations = 100000;
  auto coarse = SolveSinkhorn(w, v, cost, loose);
  auto fine = SolveSinkhorn(w, v, cost, tight);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  const double coarse_gap = coarse->plan.cost - exact->cost;
  const double fine_gap = fine->plan.cost - exact->cost;
  EXPECT_GE(coarse_gap, -1e-9);
  EXPECT_GE(fine_gap, -1e-9);
  EXPECT_LE(fine_gap, coarse_gap + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SinkhornApproachesExactTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// Wasserstein distance between Gaussian empiricals approaches the
// closed-form W2 for Gaussians: W2^2 = (m1-m2)^2 + (s1-s2)^2.
class GaussianW2Test : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GaussianW2Test, MatchesClosedFormApproximately) {
  const auto [mean_shift, sd1] = GetParam();
  common::Rng rng(1234);
  const int n = 4000;
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (int i = 0; i < n; ++i) {
    xs[i] = rng.Normal(0.0, 1.0);
    ys[i] = rng.Normal(mean_shift, sd1);
  }
  auto w = Wasserstein1D(*DiscreteMeasure::FromSamples(xs),
                         *DiscreteMeasure::FromSamples(ys), 2);
  ASSERT_TRUE(w.ok());
  const double expected =
      std::sqrt(mean_shift * mean_shift + (1.0 - sd1) * (1.0 - sd1));
  EXPECT_NEAR(*w, expected, 0.08) << "shift=" << mean_shift << " sd=" << sd1;
}

INSTANTIATE_TEST_SUITE_P(Params, GaussianW2Test,
                         ::testing::Values(std::tuple{0.0, 1.0}, std::tuple{2.0, 1.0},
                                           std::tuple{0.0, 2.0}, std::tuple{1.0, 0.5},
                                           std::tuple{3.0, 2.0}));

}  // namespace
}  // namespace otfair::ot
