#include "ot/exact.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/cost.h"

namespace otfair::ot {
namespace {

TEST(ExactTest, IdenticalMarginalsOnSharedSupportCostZero) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> w = {0.2, 0.5, 0.3};
  auto plan = SolveExact(w, w, SquaredEuclideanCost(xs, xs));
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->cost, 0.0, 1e-12);
  // Identity coupling: all mass stays on the diagonal.
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(plan->coupling(i, i), w[i], 1e-12);
}

TEST(ExactTest, PointMassToPointMass) {
  auto plan = SolveExact({1.0}, {1.0}, SquaredEuclideanCost({0.0}, {3.0}));
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->cost, 9.0, 1e-12);
  EXPECT_NEAR(plan->coupling(0, 0), 1.0, 1e-12);
}

TEST(ExactTest, TwoByTwoHandSolvable) {
  // Sources at 0 and 1, sinks at 0 and 1, equal masses: identity is optimal.
  auto plan = SolveExact({0.5, 0.5}, {0.5, 0.5},
                         SquaredEuclideanCost({0.0, 1.0}, {0.0, 1.0}));
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->cost, 0.0, 1e-12);
}

TEST(ExactTest, CrossingAssignmentChosenWhenCheaper) {
  // Cost matrix forces the anti-diagonal.
  common::Matrix cost = common::Matrix::FromRows({{10.0, 1.0}, {1.0, 10.0}});
  auto plan = SolveExact({0.5, 0.5}, {0.5, 0.5}, cost);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->cost, 1.0, 1e-12);
  EXPECT_NEAR(plan->coupling(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(plan->coupling(1, 0), 0.5, 1e-12);
}

TEST(ExactTest, MassSplittingRequired) {
  // One source must split across two sinks.
  auto plan = SolveExact({1.0}, {0.4, 0.6}, SquaredEuclideanCost({0.0}, {-1.0, 1.0}));
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->coupling(0, 0), 0.4, 1e-12);
  EXPECT_NEAR(plan->coupling(0, 1), 0.6, 1e-12);
  EXPECT_NEAR(plan->cost, 1.0, 1e-12);
}

TEST(ExactTest, MarginalsSatisfiedOnRandomProblem) {
  common::Rng rng(99);
  const size_t n = 17;
  const size_t m = 23;
  std::vector<double> a(n);
  std::vector<double> b(m);
  double sa = 0.0;
  double sb = 0.0;
  for (double& v : a) sa += (v = rng.Uniform(0.1, 1.0));
  for (double& v : b) sb += (v = rng.Uniform(0.1, 1.0));
  for (double& v : a) v /= sa;
  for (double& v : b) v /= sb;
  common::Matrix cost(n, m);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < m; ++j) cost(i, j) = rng.Uniform(0.0, 5.0);
  auto plan = SolveExact(a, b, cost);
  ASSERT_TRUE(plan.ok());
  EXPECT_LT(plan->MarginalError(a, b), 1e-9);
}

TEST(ExactTest, OptimalPlanIsSparse) {
  common::Rng rng(7);
  const size_t n = 12;
  std::vector<double> a(n, 1.0 / n);
  std::vector<double> b(n, 1.0 / n);
  common::Matrix cost(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) cost(i, j) = rng.Uniform(0.0, 1.0);
  auto plan = SolveExact(a, b, cost);
  ASSERT_TRUE(plan.ok());
  // Basic solutions of the transportation polytope have <= n + m - 1 atoms.
  EXPECT_LE(plan->ToSparse(1e-12).size(), 2 * n - 1);
}

TEST(ExactTest, CostLowerBoundsAnyFeasiblePlan) {
  // Compare against the independent (product) coupling.
  common::Rng rng(21);
  const size_t n = 8;
  std::vector<double> a(n, 1.0 / n);
  std::vector<double> b(n, 1.0 / n);
  common::Matrix cost(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) cost(i, j) = rng.Uniform(0.0, 3.0);
  auto plan = SolveExact(a, b, cost);
  ASSERT_TRUE(plan.ok());
  double product_cost = 0.0;
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) product_cost += a[i] * b[j] * cost(i, j);
  EXPECT_LE(plan->cost, product_cost + 1e-12);
}

TEST(ExactTest, NegativeCostsHandled) {
  common::Matrix cost = common::Matrix::FromRows({{-5.0, 0.0}, {0.0, -5.0}});
  auto plan = SolveExact({0.5, 0.5}, {0.5, 0.5}, cost);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->cost, -5.0, 1e-12);
}

TEST(ExactTest, ZeroWeightAtomsTolerated) {
  auto plan = SolveExact({0.0, 1.0}, {0.5, 0.5},
                         SquaredEuclideanCost({0.0, 1.0}, {0.0, 2.0}));
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->coupling.RowSums()[0], 0.0, 1e-12);
  EXPECT_NEAR(plan->coupling.RowSums()[1], 1.0, 1e-12);
}

TEST(ExactTest, RejectsUnbalancedProblem) {
  auto plan = SolveExact({1.0}, {0.5}, SquaredEuclideanCost({0.0}, {1.0}));
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(ExactTest, RejectsShapeMismatch) {
  auto plan = SolveExact({0.5, 0.5}, {1.0}, SquaredEuclideanCost({0.0}, {1.0}));
  EXPECT_FALSE(plan.ok());
}

TEST(ExactTest, RejectsNegativeWeights) {
  auto plan = SolveExact({1.5, -0.5}, {0.5, 0.5},
                         SquaredEuclideanCost({0.0, 1.0}, {0.0, 1.0}));
  EXPECT_FALSE(plan.ok());
}

TEST(ExactTest, RejectsEmptyInput) {
  EXPECT_FALSE(SolveExact({}, {}, common::Matrix()).ok());
}

TEST(ExactTest, SparseDenseRoundTrip) {
  auto plan = SolveExact({0.3, 0.7}, {0.6, 0.4},
                         SquaredEuclideanCost({0.0, 1.0}, {0.0, 1.0}));
  ASSERT_TRUE(plan.ok());
  auto sparse = plan->ToSparse();
  common::Matrix dense = SparseToDense(sparse, 2, 2);
  EXPECT_LT(dense.MaxAbsDiff(plan->coupling), 1e-14);
  EXPECT_NEAR(SparsePlanCost(sparse, SquaredEuclideanCost({0.0, 1.0}, {0.0, 1.0})),
              plan->cost, 1e-12);
}

}  // namespace
}  // namespace otfair::ot
