// Parallel-vs-serial determinism suite: every parallelized pipeline stage
// must produce bit-identical output at any thread count. The contract is
// structural (per-index result slots, per-row RNG sub-streams, serial
// reductions), so these tests compare exact doubles, not tolerances.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/designer.h"
#include "core/geometric.h"
#include "core/joint_repair.h"
#include "core/pipeline.h"
#include "core/repairer.h"
#include "ot/sinkhorn.h"
#include "ot/solver.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

struct Fixture {
  data::Dataset research;
  data::Dataset archive;
};

Fixture MakeFixture(uint64_t seed, size_t n_research = 600, size_t n_archive = 1500) {
  common::Rng rng(seed);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(n_research, config, rng);
  auto archive = sim::SimulateGaussianMixture(n_archive, config, rng);
  EXPECT_TRUE(research.ok() && archive.ok());
  return Fixture{std::move(*research), std::move(*archive)};
}

void ExpectPlansIdentical(const RepairPlanSet& a, const RepairPlanSet& b) {
  ASSERT_EQ(a.dim(), b.dim());
  for (int u = 0; u <= 1; ++u) {
    for (size_t k = 0; k < a.dim(); ++k) {
      const ChannelPlan& ca = a.At(u, k);
      const ChannelPlan& cb = b.At(u, k);
      ASSERT_EQ(ca.grid.size(), cb.grid.size());
      for (size_t q = 0; q < ca.grid.size(); ++q)
        ASSERT_EQ(ca.grid.point(q), cb.grid.point(q)) << "u=" << u << " k=" << k;
      for (int s = 0; s <= 1; ++s) {
        ASSERT_EQ(ca.plan[s].MaxAbsDiff(cb.plan[s]), 0.0) << "u=" << u << " k=" << k;
        const auto& wa = ca.marginal[s].weights();
        const auto& wb = cb.marginal[s].weights();
        ASSERT_EQ(wa, wb) << "u=" << u << " k=" << k;
      }
      ASSERT_EQ(ca.barycenter.weights(), cb.barycenter.weights()) << "u=" << u << " k=" << k;
    }
  }
}

void ExpectDatasetsIdentical(const data::Dataset& a, const data::Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dim(), b.dim());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t k = 0; k < a.dim(); ++k)
      ASSERT_EQ(a.feature(i, k), b.feature(i, k)) << "row " << i << " k " << k;
  }
}

TEST(DeterminismTest, DesignBitIdenticalAcrossThreadCounts) {
  Fixture fx = MakeFixture(21);
  DesignOptions serial;
  serial.n_q = 40;
  serial.threads = 1;
  auto reference = DesignDistributionalRepair(fx.research, serial);
  ASSERT_TRUE(reference.ok());
  for (int threads : {2, 3, 8}) {
    DesignOptions options = serial;
    options.threads = threads;
    auto plans = DesignDistributionalRepair(fx.research, options);
    ASSERT_TRUE(plans.ok()) << "threads=" << threads;
    ExpectPlansIdentical(*reference, *plans);
  }
}

TEST(DeterminismTest, RepairDatasetBitIdenticalAcrossThreadCounts) {
  Fixture fx = MakeFixture(22);
  DesignOptions design;
  design.n_q = 40;
  auto plans = DesignDistributionalRepair(fx.research, design);
  ASSERT_TRUE(plans.ok());
  RepairOptions serial;
  serial.seed = 4242;
  serial.threads = 1;
  auto ref_repairer = OffSampleRepairer::Create(*plans, serial);
  ASSERT_TRUE(ref_repairer.ok());
  auto reference = ref_repairer->RepairDataset(fx.archive);
  ASSERT_TRUE(reference.ok());
  for (int threads : {2, 3, 8}) {
    RepairOptions options = serial;
    options.threads = threads;
    auto repairer = OffSampleRepairer::Create(*plans, options);
    ASSERT_TRUE(repairer.ok()) << "threads=" << threads;
    auto repaired = repairer->RepairDataset(fx.archive);
    ASSERT_TRUE(repaired.ok()) << "threads=" << threads;
    ExpectDatasetsIdentical(*reference, *repaired);
    // The serially-reduced stats totals are schedule-independent too.
    EXPECT_EQ(repairer->stats().values_repaired, ref_repairer->stats().values_repaired);
    EXPECT_EQ(repairer->stats().values_clamped, ref_repairer->stats().values_clamped);
    EXPECT_EQ(repairer->stats().empty_row_fallbacks,
              ref_repairer->stats().empty_row_fallbacks);
  }
}

TEST(DeterminismTest, RepairDatasetSoftBitIdenticalAcrossThreadCounts) {
  Fixture fx = MakeFixture(23, 600, 800);
  DesignOptions design;
  design.n_q = 32;
  auto plans = DesignDistributionalRepair(fx.research, design);
  ASSERT_TRUE(plans.ok());
  std::vector<double> posteriors;
  common::Rng rng(7);
  for (size_t i = 0; i < fx.archive.size(); ++i) posteriors.push_back(rng.Uniform());

  auto run = [&](int threads) {
    RepairOptions options;
    options.seed = 99;
    options.threads = threads;
    auto repairer = OffSampleRepairer::Create(*plans, options);
    EXPECT_TRUE(repairer.ok());
    auto repaired = repairer->RepairDatasetSoft(fx.archive, posteriors);
    EXPECT_TRUE(repaired.ok());
    return std::move(*repaired);
  };
  const data::Dataset reference = run(1);
  for (int threads : {2, 8}) {
    const data::Dataset repaired = run(threads);
    ExpectDatasetsIdentical(reference, repaired);
  }
}

TEST(DeterminismTest, PipelineThreadsOverrideBitIdentical) {
  Fixture fx = MakeFixture(24, 500, 700);
  PipelineOptions serial;
  serial.design.n_q = 32;
  serial.threads = 1;
  auto reference = RunRepairPipeline(fx.research, fx.archive, serial);
  ASSERT_TRUE(reference.ok());
  PipelineOptions parallel = serial;
  parallel.threads = 4;
  auto result = RunRepairPipeline(fx.research, fx.archive, parallel);
  ASSERT_TRUE(result.ok());
  ExpectDatasetsIdentical(reference->repaired_research, result->repaired_research);
  ExpectDatasetsIdentical(reference->repaired_archive, result->repaired_archive);
  ExpectPlansIdentical(reference->plans, result->plans);
}

TEST(DeterminismTest, GeometricRepairBitIdenticalAcrossThreadCounts) {
  Fixture fx = MakeFixture(25, 800, 1);
  common::parallel::SetThreadCount(1);
  auto reference = GeometricRepairDataset(fx.research, {});
  ASSERT_TRUE(reference.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    common::parallel::SetThreadCount(threads);
    auto repaired = GeometricRepairDataset(fx.research, {});
    ASSERT_TRUE(repaired.ok()) << "threads=" << threads;
    ExpectDatasetsIdentical(*reference, *repaired);
  }
  common::parallel::SetThreadCount(0);
}

TEST(DeterminismTest, JointRepairBitIdenticalAcrossThreadCounts) {
  Fixture fx = MakeFixture(26, 900, 400);
  JointDesignOptions options;
  options.n_q = 10;
  auto repairer = JointPairRepairer::Design(fx.research, 0, 1, options);
  ASSERT_TRUE(repairer.ok());
  common::parallel::SetThreadCount(1);
  auto reference = repairer->RepairDataset(fx.archive, 77);
  ASSERT_TRUE(reference.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    common::parallel::SetThreadCount(threads);
    auto repaired = repairer->RepairDataset(fx.archive, 77);
    ASSERT_TRUE(repaired.ok()) << "threads=" << threads;
    ExpectDatasetsIdentical(*reference, *repaired);
  }
  common::parallel::SetThreadCount(0);
}

TEST(DeterminismTest, SinkhornBitIdenticalAcrossThreadCounts) {
  // Sinkhorn's row updates write per-index slots, so its plans are exact
  // matches across thread counts in both domains. n is chosen above the
  // solver's small-problem grain threshold so the pool really engages.
  const size_t n = 160;
  common::Rng rng(31);
  std::vector<double> a(n);
  std::vector<double> b(n);
  double sa = 0.0;
  double sb = 0.0;
  for (double& v : a) sa += (v = rng.Uniform(0.2, 1.0));
  for (double& v : b) sb += (v = rng.Uniform(0.2, 1.0));
  for (double& v : a) v /= sa;
  for (double& v : b) v /= sb;
  common::Matrix cost(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j)
      cost(i, j) = (static_cast<double>(i) - static_cast<double>(j)) *
                   (static_cast<double>(i) - static_cast<double>(j)) / static_cast<double>(n * n);

  for (const bool log_domain : {false, true}) {
    ot::SinkhornOptions options;
    options.epsilon = 0.1;
    options.log_domain = log_domain;
    common::parallel::SetThreadCount(1);
    auto reference = ot::SolveSinkhorn(a, b, cost, options);
    ASSERT_TRUE(reference.ok());
    for (size_t threads : {size_t{2}, size_t{8}}) {
      common::parallel::SetThreadCount(threads);
      auto result = ot::SolveSinkhorn(a, b, cost, options);
      ASSERT_TRUE(result.ok()) << "threads=" << threads;
      EXPECT_EQ(result->iterations, reference->iterations) << "log=" << log_domain;
      EXPECT_EQ(result->plan.coupling.MaxAbsDiff(reference->plan.coupling), 0.0)
          << "log=" << log_domain << " threads=" << threads;
    }
    common::parallel::SetThreadCount(0);
  }
}

// --- Sparse/dense plan parity ------------------------------------------
//
// The CSR representation is the canonical plan type; these properties pin
// its contract against the dense route on random 1-D instances: (i) the
// sparse plan densifies to the dense plan for every backend, (ii) the
// Sinkhorn truncation refold keeps the truncated plan's marginals on the
// untruncated plan's marginals, and (iii) repair driven by a
// dense-roundtripped plan set is bit-identical to the sparse-native one.

ot::DiscreteMeasure RandomSortedMeasure(common::Rng& rng, size_t n) {
  std::vector<double> support(n);
  std::vector<double> weights(n);
  double x = rng.Uniform(-2.0, -1.0);
  for (size_t i = 0; i < n; ++i) {
    x += rng.Uniform(0.01, 0.3);
    support[i] = x;
    weights[i] = rng.Uniform(0.05, 1.0);
  }
  auto m = ot::DiscreteMeasure::Create(std::move(support), std::move(weights));
  EXPECT_TRUE(m.ok());
  return *m;
}

TEST(SparseDenseParityTest, SparsePlanDensifiesToDensePlanForAllBackends) {
  common::Rng rng(401);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t n = 5 + static_cast<size_t>(rng.UniformInt(20));
    const size_t m = 5 + static_cast<size_t>(rng.UniformInt(20));
    const ot::DiscreteMeasure mu = RandomSortedMeasure(rng, n);
    const ot::DiscreteMeasure nu = RandomSortedMeasure(rng, m);
    for (const char* name : {"monotone", "exact", "sinkhorn"}) {
      auto solver = *ot::MakeSolver(name);
      auto sparse = solver->Solve1DSparse(mu, nu);
      auto dense = solver->Solve1DDense(mu, nu);
      ASSERT_TRUE(sparse.ok() && dense.ok()) << name << " trial " << trial;
      ASSERT_EQ(sparse->rows(), n);
      ASSERT_EQ(sparse->cols(), m);
      // Exact backends roundtrip to machine precision; Sinkhorn's sparse
      // path additionally truncates, which moves entries by at most the
      // (mass-relative) plan_truncation refold.
      const double tolerance = std::string(name) == "sinkhorn" ? 1e-9 : 1e-13;
      EXPECT_LT(sparse->ToDense().MaxAbsDiff(*dense), tolerance)
          << name << " trial " << trial;
      EXPECT_TRUE(sparse->columns_sorted()) << name;
      EXPECT_LE(sparse->nnz(), n * m) << name;
    }
  }
}

TEST(SparseDenseParityTest, SinkhornTruncationRefoldPreservesMarginals) {
  common::Rng rng(402);
  ot::SolverOptions options;
  options.sinkhorn.epsilon = 0.02;  // narrow band: truncation really bites
  options.sinkhorn.plan_truncation = 1e-10;
  auto solver = *ot::MakeSolver("sinkhorn", options);
  for (int trial = 0; trial < 4; ++trial) {
    const size_t n = 24 + static_cast<size_t>(rng.UniformInt(16));
    const ot::DiscreteMeasure mu = RandomSortedMeasure(rng, n);
    const ot::DiscreteMeasure nu = RandomSortedMeasure(rng, n);
    auto sparse = solver->Solve1DSparse(mu, nu);
    auto dense = solver->Solve1DDense(mu, nu);
    ASSERT_TRUE(sparse.ok() && dense.ok());
    EXPECT_LT(sparse->nnz(), n * n) << "truncation dropped nothing at eps=0.02";
    // Row marginals match the untruncated plan to roundoff (the refold
    // guarantee); column marginals to the mass-relative threshold.
    const std::vector<double> sparse_rows = sparse->RowSums();
    const std::vector<double> dense_rows = dense->RowSums();
    for (size_t i = 0; i < n; ++i)
      EXPECT_NEAR(sparse_rows[i], dense_rows[i], 1e-14) << "row " << i;
    const std::vector<double> sparse_cols = sparse->ColSums();
    const std::vector<double> dense_cols = dense->ColSums();
    for (size_t j = 0; j < n; ++j)
      EXPECT_NEAR(sparse_cols[j], dense_cols[j], 1e-9) << "col " << j;
  }
}

TEST(SparseDenseParityTest, RepairBitIdenticalUnderDenseRoundtrippedPlans) {
  Fixture fx = MakeFixture(27, 500, 1200);
  DesignOptions design;
  design.n_q = 48;
  auto plans = DesignDistributionalRepair(fx.research, design);
  ASSERT_TRUE(plans.ok());

  // Round-trip every channel plan through the dense representation; the
  // CSR rebuilt from it must drive byte-identical repairs at a fixed
  // seed (same pattern, same values, same RNG consumption).
  RepairPlanSet roundtripped = *plans;
  for (int u = 0; u <= 1; ++u) {
    for (size_t k = 0; k < roundtripped.dim(); ++k) {
      for (int s = 0; s <= 1; ++s) {
        ot::SparsePlan& pi = roundtripped.At(u, k).plan[static_cast<size_t>(s)];
        pi = ot::SparsePlan::FromDense(pi.ToDense());
        ASSERT_EQ(pi.MaxAbsDiff(plans->At(u, k).plan[static_cast<size_t>(s)]), 0.0);
      }
    }
  }

  RepairOptions options;
  options.seed = 5151;
  auto ra = OffSampleRepairer::Create(*plans, options);
  auto rb = OffSampleRepairer::Create(roundtripped, options);
  ASSERT_TRUE(ra.ok() && rb.ok());
  auto repaired_a = ra->RepairDataset(fx.archive);
  auto repaired_b = rb->RepairDataset(fx.archive);
  ASSERT_TRUE(repaired_a.ok() && repaired_b.ok());
  ExpectDatasetsIdentical(*repaired_a, *repaired_b);
}

// PR 6 regression: repair output is a pure function of (plans, seed,
// dataset) across every execution configuration the SIMD pass touched —
// scalar vs vector dispatch, SoA batch vs row-by-row, serial vs
// multi-threaded. Only table lookups and reductions were vectorized,
// never the RNG streams, so all 2x2x2 combinations must agree bit-exactly.
TEST(DeterminismTest, RepairBitIdenticalAcrossSimdSoaAndThreadConfigs) {
  Fixture fx = MakeFixture(29, 500, 1200);
  DesignOptions design;
  design.n_q = 48;
  auto plans = DesignDistributionalRepair(fx.research, design);
  ASSERT_TRUE(plans.ok());

  const bool was_forced = common::simd::ForcedScalar();
  auto repair_once = [&](bool force_scalar, bool soa, int threads) {
    common::simd::SetForceScalar(force_scalar);
    RepairOptions options;
    options.seed = 6161;
    options.threads = threads;
    options.soa_batch = soa;
    auto repairer = OffSampleRepairer::Create(*plans, options);
    EXPECT_TRUE(repairer.ok());
    auto repaired = repairer->RepairDataset(fx.archive);
    EXPECT_TRUE(repaired.ok());
    common::simd::SetForceScalar(was_forced);
    return std::move(*repaired);
  };

  const data::Dataset reference = repair_once(/*force_scalar=*/true, /*soa=*/false,
                                              /*threads=*/1);
  for (bool force_scalar : {true, false}) {
    for (bool soa : {false, true}) {
      for (int threads : {1, 3, 8}) {
        const data::Dataset repaired = repair_once(force_scalar, soa, threads);
        SCOPED_TRACE("scalar=" + std::to_string(force_scalar) + " soa=" +
                     std::to_string(soa) + " threads=" + std::to_string(threads));
        ExpectDatasetsIdentical(reference, repaired);
      }
    }
  }
}

}  // namespace
}  // namespace otfair::core
