#include "core/marginals.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/normal.h"

namespace otfair::core {
namespace {

TEST(MarginalsTest, PmfOnGridNormalized) {
  common::Rng rng(100);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(rng.Normal());
  auto grid = SupportGrid::FromSamples(samples, 50);
  ASSERT_TRUE(grid.ok());
  auto marginal = InterpolateMarginal(samples, *grid);
  ASSERT_TRUE(marginal.ok());
  EXPECT_EQ(marginal->size(), 50u);
  EXPECT_LT(marginal->NormalizationError(), 1e-12);
  EXPECT_EQ(marginal->support(), grid->points());
}

TEST(MarginalsTest, TracksUnderlyingDensityShape) {
  common::Rng rng(101);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.Normal(0.0, 1.0));
  auto grid = SupportGrid::Create(-3.0, 3.0, 61);
  ASSERT_TRUE(grid.ok());
  auto marginal = InterpolateMarginal(samples, *grid);
  ASSERT_TRUE(marginal.ok());
  // Mode near 0, symmetric-ish tails.
  size_t argmax = 0;
  for (size_t q = 1; q < marginal->size(); ++q) {
    if (marginal->weight_at(q) > marginal->weight_at(argmax)) argmax = q;
  }
  EXPECT_NEAR(marginal->support_at(argmax), 0.0, 0.3);
  EXPECT_NEAR(marginal->Mean(), 0.0, 0.1);
}

TEST(MarginalsTest, ExplicitBandwidthUsed) {
  std::vector<double> samples = {0.0};
  auto grid = SupportGrid::Create(-2.0, 2.0, 41);
  ASSERT_TRUE(grid.ok());
  MarginalOptions wide;
  wide.bandwidth = 1.0;
  MarginalOptions narrow;
  narrow.bandwidth = 0.1;
  auto broad = InterpolateMarginal(samples, *grid, wide);
  auto sharp = InterpolateMarginal(samples, *grid, narrow);
  ASSERT_TRUE(broad.ok() && sharp.ok());
  // Narrow bandwidth concentrates more mass at the atom's grid point.
  const size_t centre = 20;  // grid point 0.0
  EXPECT_GT(sharp->weight_at(centre), broad->weight_at(centre));
}

TEST(MarginalsTest, SmallSampleStillWellFormed) {
  auto grid = SupportGrid::Create(0.0, 1.0, 11);
  ASSERT_TRUE(grid.ok());
  auto marginal = InterpolateMarginal({0.4, 0.6}, *grid);
  ASSERT_TRUE(marginal.ok());
  EXPECT_LT(marginal->NormalizationError(), 1e-12);
}

TEST(MarginalsTest, RejectsEmptySample) {
  auto grid = SupportGrid::Create(0.0, 1.0, 5);
  ASSERT_TRUE(grid.ok());
  EXPECT_FALSE(InterpolateMarginal({}, *grid).ok());
}

TEST(MarginalsTest, VarianceInflatedByKernelSmoothing) {
  // KDE adds h^2 to the sample variance; check directionally.
  common::Rng rng(102);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.Normal(0.0, 1.0));
  auto grid = SupportGrid::Create(-5.0, 5.0, 201);
  ASSERT_TRUE(grid.ok());
  MarginalOptions options;
  options.bandwidth = 1.0;  // large, to make the inflation visible
  auto marginal = InterpolateMarginal(samples, *grid, options);
  ASSERT_TRUE(marginal.ok());
  EXPECT_GT(marginal->Variance(), 1.5);  // ~ 1 + 1
}

}  // namespace
}  // namespace otfair::core
