#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

struct Data {
  data::Dataset research;
  data::Dataset archive;
};

Data MakeData(uint64_t seed, size_t n_research = 500, size_t n_archive = 3000) {
  common::Rng rng(seed);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(n_research, config, rng);
  auto archive = sim::SimulateGaussianMixture(n_archive, config, rng);
  EXPECT_TRUE(research.ok() && archive.ok());
  return Data{std::move(*research), std::move(*archive)};
}

TEST(PipelineTest, EndToEndRepairsBothSets) {
  Data d = MakeData(1);
  auto result = RunRepairPipeline(d.research, d.archive, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->repaired_research.size(), d.research.size());
  EXPECT_EQ(result->repaired_archive.size(), d.archive.size());
  EXPECT_FALSE(result->label_estimate_accuracy.has_value());

  auto e_res_before = fairness::AggregateE(d.research);
  auto e_res_after = fairness::AggregateE(result->repaired_research);
  auto e_arc_before = fairness::AggregateE(d.archive);
  auto e_arc_after = fairness::AggregateE(result->repaired_archive);
  ASSERT_TRUE(e_res_before.ok() && e_res_after.ok() && e_arc_before.ok() && e_arc_after.ok());
  EXPECT_LT(*e_res_after, *e_res_before / 5.0);
  EXPECT_LT(*e_arc_after, *e_arc_before / 5.0);
}

TEST(PipelineTest, StatsAccumulateAcrossBothRepairs) {
  Data d = MakeData(2, 300, 700);
  auto result = RunRepairPipeline(d.research, d.archive, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.values_repaired,
            (d.research.size() + d.archive.size()) * d.research.dim());
}

TEST(PipelineTest, LabelEstimationModeReportsAccuracy) {
  Data d = MakeData(3, 1500, 3000);
  PipelineOptions options;
  options.estimate_archive_labels = true;
  auto result = RunRepairPipeline(d.research, d.archive, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->label_estimate_accuracy.has_value());
  EXPECT_GT(*result->label_estimate_accuracy, 0.6);
  EXPECT_LE(*result->label_estimate_accuracy, 1.0);
}

TEST(PipelineTest, LabelEstimationStillRepairs) {
  Data d = MakeData(4, 1500, 4000);
  PipelineOptions options;
  options.estimate_archive_labels = true;
  auto result = RunRepairPipeline(d.research, d.archive, options);
  ASSERT_TRUE(result.ok());
  auto before = fairness::AggregateE(d.archive);
  auto after = fairness::AggregateE(result->repaired_archive);
  ASSERT_TRUE(before.ok() && after.ok());
  // Label noise costs repair quality (the paper's config has overlapping
  // components, so s_hat is ~70-75% accurate); the repair must still help
  // clearly. Paper §VI assumes labels "estimated with low error" for the
  // full effect.
  EXPECT_LT(*after, *before * 0.75);
}

TEST(PipelineTest, CustomDesignOptionsFlowThrough) {
  Data d = MakeData(5, 400, 400);
  PipelineOptions options;
  options.design.n_q = 17;
  options.design.target_t = 0.25;
  auto result = RunRepairPipeline(d.research, d.archive, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plans.At(0, 0).grid.size(), 17u);
  EXPECT_DOUBLE_EQ(result->plans.target_t(), 0.25);
}

TEST(PipelineTest, RejectsDimensionMismatch) {
  Data d = MakeData(6, 200, 200);
  common::Matrix features = common::Matrix::FromRows({{0.0}, {1.0}});
  auto one_dim = data::Dataset::Create(std::move(features), {0, 1}, {0, 1}, {"x"});
  ASSERT_TRUE(one_dim.ok());
  EXPECT_FALSE(RunRepairPipeline(d.research, *one_dim, {}).ok());
}

TEST(PipelineTest, DeterministicGivenSeeds) {
  Data d = MakeData(7, 300, 500);
  PipelineOptions options;
  options.repair.seed = 99;
  auto a = RunRepairPipeline(d.research, d.archive, options);
  auto b = RunRepairPipeline(d.research, d.archive, options);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < d.archive.size(); ++i) {
    for (size_t k = 0; k < d.archive.dim(); ++k) {
      EXPECT_DOUBLE_EQ(a->repaired_archive.feature(i, k),
                       b->repaired_archive.feature(i, k));
    }
  }
}

}  // namespace
}  // namespace otfair::core
