#include "core/quantile_repair.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "core/label_estimator.h"
#include "core/repairer.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"
#include "stats/descriptive.h"

namespace otfair::core {
namespace {

struct Fixture {
  data::Dataset research;
  data::Dataset archive;
  RepairPlanSet plans;
};

Fixture MakeFixture(uint64_t seed, size_t n_research = 800, size_t n_archive = 4000) {
  common::Rng rng(seed);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(n_research, config, rng);
  auto archive = sim::SimulateGaussianMixture(n_archive, config, rng);
  EXPECT_TRUE(research.ok() && archive.ok());
  auto plans = DesignDistributionalRepair(*research, {});
  EXPECT_TRUE(plans.ok());
  return Fixture{std::move(*research), std::move(*archive), std::move(*plans)};
}

TEST(QuantileRepairTest, DeterministicNoRngConsumed) {
  Fixture fx = MakeFixture(1);
  auto repairer = QuantileMapRepairer::Create(fx.plans);
  ASSERT_TRUE(repairer.ok());
  for (double x : {-2.0, -0.5, 0.0, 1.3, 2.2}) {
    EXPECT_DOUBLE_EQ(repairer->RepairValue(0, 0, 0, x), repairer->RepairValue(0, 0, 0, x));
  }
}

TEST(QuantileRepairTest, MonotoneInInput) {
  // The Monge-map property the paper's §VI highlights: order preserved.
  Fixture fx = MakeFixture(2);
  auto repairer = QuantileMapRepairer::Create(fx.plans);
  ASSERT_TRUE(repairer.ok());
  for (int u = 0; u <= 1; ++u) {
    for (int s = 0; s <= 1; ++s) {
      for (size_t k = 0; k < 2; ++k) {
        double prev = repairer->RepairValue(u, s, k, -5.0);
        for (double x = -4.9; x <= 5.0; x += 0.05) {
          const double cur = repairer->RepairValue(u, s, k, x);
          EXPECT_GE(cur, prev - 1e-12) << "u=" << u << " s=" << s << " k=" << k << " x=" << x;
          prev = cur;
        }
      }
    }
  }
}

TEST(QuantileRepairTest, IndividualFairnessSimilarInputsSimilarOutputs) {
  // Continuity: nearby inputs map to nearby outputs (no grid snapping).
  Fixture fx = MakeFixture(3);
  auto repairer = QuantileMapRepairer::Create(fx.plans);
  ASSERT_TRUE(repairer.ok());
  const auto& grid = fx.plans.At(0, 0).grid;
  const double interior_lo = grid.lo() + 0.2 * (grid.hi() - grid.lo());
  const double interior_hi = grid.lo() + 0.8 * (grid.hi() - grid.lo());
  common::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const double x = rng.Uniform(interior_lo, interior_hi);
    const double eps = 1e-4;
    const double gap =
        std::fabs(repairer->RepairValue(0, 1, 0, x + eps) - repairer->RepairValue(0, 1, 0, x));
    // Lipschitz-ish bound: the interpolated map's slope is bounded by the
    // ratio of the largest target cell to the smallest populated source
    // cell mass; generous envelope here.
    EXPECT_LT(gap, 0.5) << "x=" << x;
  }
}

TEST(QuantileRepairTest, QuenchesConditionalDependence) {
  Fixture fx = MakeFixture(5);
  auto repairer = QuantileMapRepairer::Create(fx.plans);
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive);
  ASSERT_TRUE(repaired.ok());
  auto before = fairness::AggregateE(fx.archive);
  auto after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_LT(*after, *before / 5.0);
}

TEST(QuantileRepairTest, PushforwardMatchesBarycenterMoments) {
  Fixture fx = MakeFixture(6, 2000, 1);
  auto repairer = QuantileMapRepairer::Create(fx.plans);
  ASSERT_TRUE(repairer.ok());
  const ChannelPlan& channel = fx.plans.At(0, 0);
  common::Rng rng(7);
  std::vector<double> outputs;
  for (int i = 0; i < 20000; ++i) {
    outputs.push_back(repairer->RepairValue(0, 0, 0, rng.Normal(-1.0, 1.0)));
  }
  EXPECT_NEAR(stats::Mean(outputs), channel.barycenter.Mean(), 0.08);
  EXPECT_NEAR(stats::Variance(outputs), channel.barycenter.Variance(), 0.25);
}

TEST(QuantileRepairTest, ComparableToStochasticRepair) {
  Fixture fx = MakeFixture(8);
  auto monge = QuantileMapRepairer::Create(fx.plans);
  auto stochastic = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(monge.ok() && stochastic.ok());
  auto repaired_monge = monge->RepairDataset(fx.archive);
  auto repaired_stochastic = stochastic->RepairDataset(fx.archive);
  ASSERT_TRUE(repaired_monge.ok() && repaired_stochastic.ok());
  auto e_monge = fairness::AggregateE(*repaired_monge);
  auto e_stochastic = fairness::AggregateE(*repaired_stochastic);
  ASSERT_TRUE(e_monge.ok() && e_stochastic.ok());
  // Both should quench dependence to the same order.
  EXPECT_LT(*e_monge, 3.0 * *e_stochastic + 0.05);
}

TEST(QuantileRepairTest, ZeroStrengthIsIdentity) {
  Fixture fx = MakeFixture(9);
  auto repairer = QuantileMapRepairer::Create(fx.plans, 0.0);
  ASSERT_TRUE(repairer.ok());
  for (double x : {-1.0, 0.0, 2.5}) {
    EXPECT_DOUBLE_EQ(repairer->RepairValue(1, 1, 1, x), x);
  }
}

TEST(QuantileRepairTest, SoftRepairInterpolatesClassMaps) {
  Fixture fx = MakeFixture(10);
  auto repairer = QuantileMapRepairer::Create(fx.plans);
  ASSERT_TRUE(repairer.ok());
  const double x = 0.3;
  const double t0 = repairer->RepairValue(0, 0, 0, x);
  const double t1 = repairer->RepairValue(0, 1, 0, x);
  EXPECT_DOUBLE_EQ(repairer->RepairValueSoft(0, 0.0, 0, x), t0);
  EXPECT_DOUBLE_EQ(repairer->RepairValueSoft(0, 1.0, 0, x), t1);
  EXPECT_DOUBLE_EQ(repairer->RepairValueSoft(0, 0.5, 0, x), 0.5 * (t0 + t1));
}

TEST(QuantileRepairTest, SoftDatasetRepairWithPosteriors) {
  Fixture fx = MakeFixture(11, 2000, 4000);
  auto estimator = LabelEstimator::Fit(fx.research);
  ASSERT_TRUE(estimator.ok());
  auto posteriors = estimator->PosteriorsS1(fx.archive);
  ASSERT_TRUE(posteriors.ok());
  auto repairer = QuantileMapRepairer::Create(fx.plans);
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDatasetSoft(fx.archive, *posteriors);
  ASSERT_TRUE(repaired.ok());
  auto before = fairness::AggregateE(fx.archive);
  auto after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(before.ok() && after.ok());
  // The paper's components overlap heavily, so GMM posteriors are noisy
  // (~70-75% MAP accuracy) and the posterior-averaged map retains part of
  // the class difference; the repair must still clearly help.
  EXPECT_LT(*after, *before * 0.8);
}

TEST(QuantileRepairTest, RejectsBadInputs) {
  Fixture fx = MakeFixture(12, 300, 300);
  EXPECT_FALSE(QuantileMapRepairer::Create(fx.plans, 1.5).ok());
  auto repairer = QuantileMapRepairer::Create(fx.plans);
  ASSERT_TRUE(repairer.ok());
  EXPECT_FALSE(
      repairer->RepairDatasetWithLabels(fx.archive, std::vector<int>(3, 0)).ok());
  EXPECT_FALSE(
      repairer->RepairDatasetSoft(fx.archive, std::vector<double>(fx.archive.size(), 2.0))
          .ok());
}

TEST(QuantileRepairTest, OutOfRangeInputsClampToTargetRange) {
  Fixture fx = MakeFixture(13);
  auto repairer = QuantileMapRepairer::Create(fx.plans);
  ASSERT_TRUE(repairer.ok());
  const auto& channel = fx.plans.At(0, 0);
  const double below = repairer->RepairValue(0, 0, 0, channel.grid.lo() - 100.0);
  const double above = repairer->RepairValue(0, 0, 0, channel.grid.hi() + 100.0);
  EXPECT_GE(below, channel.grid.lo());
  EXPECT_LE(above, channel.grid.hi());
  EXPECT_LT(below, above);
}

}  // namespace
}  // namespace otfair::core
