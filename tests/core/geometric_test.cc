#include "core/geometric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fairness/emetric.h"
#include "ot/solver.h"
#include "sim/gaussian_mixture.h"
#include "stats/descriptive.h"

namespace otfair::core {
namespace {

data::Dataset PaperResearchData(uint64_t seed, size_t n = 600) {
  common::Rng rng(seed);
  auto d = sim::SimulateGaussianMixture(n, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(GeometricTest, QuenchesConditionalDependence) {
  data::Dataset research = PaperResearchData(1, 1500);
  auto before = fairness::AggregateE(research);
  ASSERT_TRUE(before.ok());
  auto repaired = GeometricRepairDataset(research, {});
  ASSERT_TRUE(repaired.ok());
  auto after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(after.ok());
  // Paper Table I: geometric repair achieves E ~ 0.007 from ~7: very
  // strong. Demand at least a 20x reduction.
  EXPECT_LT(*after, *before / 20.0);
}

TEST(GeometricTest, StrongerThanOrComparableToDistributionalOnSample) {
  // Table I ordering: geometric <= distributional on the research data.
  data::Dataset research = PaperResearchData(2, 1000);
  auto repaired = GeometricRepairDataset(research, {});
  ASSERT_TRUE(repaired.ok());
  auto e = fairness::AggregateE(*repaired);
  ASSERT_TRUE(e.ok());
  EXPECT_LT(*e, 0.15);
}

TEST(GeometricTest, EqualSizeClassesMeetAtMidpoints) {
  // Two rows per class per stratum with hand-checkable values.
  common::Matrix features = common::Matrix::FromRows({{0.0}, {2.0}, {10.0}, {12.0}});
  auto d = data::Dataset::Create(std::move(features), {0, 0, 1, 1}, {0, 0, 0, 0}, {"x"});
  ASSERT_TRUE(d.ok());
  // The (u=1) stratum is empty -> must fail. Build a valid one instead:
  // reuse u = 0 for all rows but duplicate as u = 1 via a second dataset.
  common::Matrix features2 =
      common::Matrix::FromRows({{0.0}, {2.0}, {10.0}, {12.0}, {0.0}, {2.0}, {10.0}, {12.0}});
  auto d2 = data::Dataset::Create(std::move(features2), {0, 0, 1, 1, 0, 0, 1, 1},
                                  {0, 0, 0, 0, 1, 1, 1, 1}, {"x"});
  ASSERT_TRUE(d2.ok());
  auto repaired = GeometricRepairDataset(*d2, {});
  ASSERT_TRUE(repaired.ok());
  // Monotone matching pairs 0<->10 and 2<->12; t=0.5 midpoints are 5 and 7.
  EXPECT_DOUBLE_EQ(repaired->feature(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(repaired->feature(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(repaired->feature(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(repaired->feature(3, 0), 7.0);
}

TEST(GeometricTest, TZeroLeavesS0Unchanged) {
  data::Dataset research = PaperResearchData(3, 400);
  GeometricOptions options;
  options.t = 0.0;
  auto repaired = GeometricRepairDataset(research, options);
  ASSERT_TRUE(repaired.ok());
  for (size_t i = 0; i < research.size(); ++i) {
    if (research.s(i) == 0) {
      for (size_t k = 0; k < research.dim(); ++k)
        EXPECT_NEAR(repaired->feature(i, k), research.feature(i, k), 1e-9);
    }
  }
}

TEST(GeometricTest, TOneLeavesS1Unchanged) {
  data::Dataset research = PaperResearchData(4, 400);
  GeometricOptions options;
  options.t = 1.0;
  auto repaired = GeometricRepairDataset(research, options);
  ASSERT_TRUE(repaired.ok());
  for (size_t i = 0; i < research.size(); ++i) {
    if (research.s(i) == 1) {
      for (size_t k = 0; k < research.dim(); ++k)
        EXPECT_NEAR(repaired->feature(i, k), research.feature(i, k), 1e-9);
    }
  }
}

TEST(GeometricTest, GrandMeanApproximatelyPreservedAtHalf) {
  // The t=0.5 repair moves both classes to the barycentre; each stratum's
  // repaired mean is the midpoint of its class means.
  data::Dataset research = PaperResearchData(5, 3000);
  auto repaired = GeometricRepairDataset(research, {});
  ASSERT_TRUE(repaired.ok());
  for (int u = 0; u <= 1; ++u) {
    const auto idx0 = research.GroupIndices({u, 0});
    const auto idx1 = research.GroupIndices({u, 1});
    const double mean0 = stats::Mean(research.FeatureColumn(0, idx0));
    const double mean1 = stats::Mean(research.FeatureColumn(0, idx1));
    const double target = 0.5 * (mean0 + mean1);
    const double repaired0 = stats::Mean(repaired->FeatureColumn(0, idx0));
    const double repaired1 = stats::Mean(repaired->FeatureColumn(0, idx1));
    EXPECT_NEAR(repaired0, target, 0.1) << "u=" << u;
    EXPECT_NEAR(repaired1, target, 0.1) << "u=" << u;
  }
}

TEST(GeometricTest, RepairedClassDistributionsCoincide) {
  // After full repair the s-conditional empirical distributions should be
  // (near-)identical within each stratum.
  data::Dataset research = PaperResearchData(6, 2000);
  auto repaired = GeometricRepairDataset(research, {});
  ASSERT_TRUE(repaired.ok());
  for (int u = 0; u <= 1; ++u) {
    const auto x0 = repaired->FeatureColumn(0, repaired->GroupIndices({u, 0}));
    const auto x1 = repaired->FeatureColumn(0, repaired->GroupIndices({u, 1}));
    EXPECT_NEAR(stats::Mean(x0), stats::Mean(x1), 0.1);
    EXPECT_NEAR(stats::StdDev(x0), stats::StdDev(x1), 0.12);
  }
}

TEST(GeometricTest, LabelsAndShapeUntouched) {
  data::Dataset research = PaperResearchData(7, 300);
  auto repaired = GeometricRepairDataset(research, {});
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->size(), research.size());
  for (size_t i = 0; i < research.size(); ++i) {
    EXPECT_EQ(repaired->s(i), research.s(i));
    EXPECT_EQ(repaired->u(i), research.u(i));
  }
}

TEST(GeometricTest, InjectedExactSolverMatchesMonotoneDefault) {
  // The empirical coupling is 1-D squared-Euclidean, so the exact network
  // solver must reproduce the monotone default row for row.
  data::Dataset research = PaperResearchData(9, 150);
  GeometricOptions exact;
  exact.solver = *ot::MakeSolver("exact");
  auto a = GeometricRepairDataset(research, {});
  auto b = GeometricRepairDataset(research, exact);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < research.size(); ++i) {
    for (size_t k = 0; k < research.dim(); ++k) {
      EXPECT_NEAR(a->feature(i, k), b->feature(i, k), 1e-8) << "i=" << i << " k=" << k;
    }
  }
}

TEST(GeometricTest, RejectsBadInputs) {
  data::Dataset research = PaperResearchData(8, 200);
  GeometricOptions bad;
  bad.t = -0.5;
  EXPECT_FALSE(GeometricRepairDataset(research, bad).ok());
  // Missing class.
  common::Matrix features = common::Matrix::FromRows({{0.0}, {1.0}});
  auto d = data::Dataset::Create(std::move(features), {0, 0}, {0, 1}, {"x"});
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(GeometricRepairDataset(*d, {}).ok());
}

}  // namespace
}  // namespace otfair::core
