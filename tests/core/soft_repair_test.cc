// Tests for soft-label (probabilistic protected attribute) repair on the
// stochastic repairer, plus the LabelEstimator posterior API they consume.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "core/label_estimator.h"
#include "core/repairer.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

struct Fixture {
  data::Dataset research;
  data::Dataset archive;
  RepairPlanSet plans;
};

Fixture MakeFixture(uint64_t seed, size_t n_research = 1500, size_t n_archive = 4000) {
  common::Rng rng(seed);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(n_research, config, rng);
  auto archive = sim::SimulateGaussianMixture(n_archive, config, rng);
  EXPECT_TRUE(research.ok() && archive.ok());
  auto plans = DesignDistributionalRepair(*research, {});
  EXPECT_TRUE(plans.ok());
  return Fixture{std::move(*research), std::move(*archive), std::move(*plans)};
}

TEST(PosteriorTest, SumsWithComplement) {
  Fixture fx = MakeFixture(1);
  auto estimator = LabelEstimator::Fit(fx.research);
  ASSERT_TRUE(estimator.ok());
  for (size_t i = 0; i < 50; ++i) {
    const double p1 = estimator->PosteriorS1(fx.archive.u(i), fx.archive.Row(i));
    EXPECT_GE(p1, 0.0);
    EXPECT_LE(p1, 1.0);
  }
}

TEST(PosteriorTest, ConsistentWithMapEstimate) {
  Fixture fx = MakeFixture(2);
  auto estimator = LabelEstimator::Fit(fx.research);
  ASSERT_TRUE(estimator.ok());
  for (size_t i = 0; i < 200; ++i) {
    const auto row = fx.archive.Row(i);
    const double p1 = estimator->PosteriorS1(fx.archive.u(i), row);
    const int map = estimator->EstimateOne(fx.archive.u(i), row);
    EXPECT_EQ(map, p1 >= 0.5 ? 1 : 0);
  }
}

TEST(PosteriorTest, BatchMatchesPointwise) {
  Fixture fx = MakeFixture(3);
  auto estimator = LabelEstimator::Fit(fx.research);
  ASSERT_TRUE(estimator.ok());
  auto batch = estimator->PosteriorsS1(fx.archive);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), fx.archive.size());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ((*batch)[i],
                     estimator->PosteriorS1(fx.archive.u(i), fx.archive.Row(i)));
  }
}

TEST(SoftRepairTest, DegeneratePosteriorsMatchHardRepair) {
  Fixture fx = MakeFixture(4, 800, 500);
  RepairOptions options;
  options.seed = 99;
  auto hard = OffSampleRepairer::Create(fx.plans, options);
  auto soft = OffSampleRepairer::Create(fx.plans, options);
  ASSERT_TRUE(hard.ok() && soft.ok());
  std::vector<double> certain;
  for (size_t i = 0; i < fx.archive.size(); ++i)
    certain.push_back(static_cast<double>(fx.archive.s(i)));
  auto repaired_hard = hard->RepairDataset(fx.archive);
  auto repaired_soft = soft->RepairDatasetSoft(fx.archive, certain);
  ASSERT_TRUE(repaired_hard.ok() && repaired_soft.ok());
  // With pr in {0, 1} the class draw is deterministic... but it still
  // consumes one RNG draw per row, so values differ; compare statistics
  // instead of values.
  auto e_hard = fairness::AggregateE(*repaired_hard);
  auto e_soft = fairness::AggregateE(*repaired_soft);
  ASSERT_TRUE(e_hard.ok() && e_soft.ok());
  EXPECT_NEAR(*e_hard, *e_soft, 0.5 * (*e_hard + *e_soft) + 0.02);
}

TEST(SoftRepairTest, GmmPosteriorsStillQuenchDependence) {
  Fixture fx = MakeFixture(5, 2000, 5000);
  auto estimator = LabelEstimator::Fit(fx.research);
  ASSERT_TRUE(estimator.ok());
  auto posteriors = estimator->PosteriorsS1(fx.archive);
  ASSERT_TRUE(posteriors.ok());
  auto repairer = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDatasetSoft(fx.archive, *posteriors);
  ASSERT_TRUE(repaired.ok());
  auto before = fairness::AggregateE(fx.archive);
  auto after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_LT(*after, *before * 0.6);
}

TEST(SoftRepairTest, StreamingSoftValueInRange) {
  Fixture fx = MakeFixture(6, 800, 1);
  auto repairer = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(repairer.ok());
  const auto& grid = fx.plans.At(0, 0).grid;
  for (int i = 0; i < 500; ++i) {
    const double repaired =
        repairer->RepairValueSoft(0, 0.3, 0, -1.0 + 0.01 * static_cast<double>(i));
    EXPECT_GE(repaired, grid.lo());
    EXPECT_LE(repaired, grid.hi());
  }
}

TEST(SoftRepairTest, RejectsBadPosteriors) {
  Fixture fx = MakeFixture(7, 500, 300);
  auto repairer = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(repairer.ok());
  EXPECT_FALSE(
      repairer->RepairDatasetSoft(fx.archive, std::vector<double>(3, 0.5)).ok());
  EXPECT_FALSE(repairer
                   ->RepairDatasetSoft(fx.archive,
                                       std::vector<double>(fx.archive.size(), 1.5))
                   .ok());
}

}  // namespace
}  // namespace otfair::core
