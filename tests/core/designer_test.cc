#include "core/designer.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/cost.h"
#include "ot/monotone.h"
#include "ot/solver.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

data::Dataset PaperResearchData(uint64_t seed, size_t n = 500) {
  common::Rng rng(seed);
  auto d = sim::SimulateGaussianMixture(n, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(DesignerTest, ProducesValidPlanSet) {
  data::Dataset research = PaperResearchData(1);
  DesignOptions options;
  options.n_q = 50;
  auto plans = DesignDistributionalRepair(research, options);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->dim(), 2u);
  EXPECT_TRUE(plans->Validate().ok());
  EXPECT_DOUBLE_EQ(plans->target_t(), 0.5);
}

TEST(DesignerTest, GridSpansResearchStratumRange) {
  data::Dataset research = PaperResearchData(2);
  DesignOptions options;
  options.n_q = 30;
  auto plans = DesignDistributionalRepair(research, options);
  ASSERT_TRUE(plans.ok());
  for (int u = 0; u <= 1; ++u) {
    const auto idx = research.UIndices(u);
    for (size_t k = 0; k < 2; ++k) {
      const auto column = research.FeatureColumn(k, idx);
      const auto [lo, hi] = std::minmax_element(column.begin(), column.end());
      const ChannelPlan& channel = plans->At(u, k);
      EXPECT_DOUBLE_EQ(channel.grid.lo(), *lo);
      EXPECT_DOUBLE_EQ(channel.grid.hi(), *hi);
      EXPECT_EQ(channel.grid.size(), 30u);
    }
  }
}

TEST(DesignerTest, BarycentreEquidistantFromBothMarginals) {
  data::Dataset research = PaperResearchData(3);
  auto plans = DesignDistributionalRepair(research, {});
  ASSERT_TRUE(plans.ok());
  for (int u = 0; u <= 1; ++u) {
    for (size_t k = 0; k < 2; ++k) {
      const ChannelPlan& channel = plans->At(u, k);
      auto w0 = ot::Wasserstein1D(channel.marginal[0], channel.barycenter, 2);
      auto w1 = ot::Wasserstein1D(channel.marginal[1], channel.barycenter, 2);
      ASSERT_TRUE(w0.ok() && w1.ok());
      // Grid projection introduces O(step) distortion; tolerate a few %.
      EXPECT_NEAR(*w0, *w1, 0.05 * (*w0 + *w1) + 0.02);
    }
  }
}

TEST(DesignerTest, SolversAgreeOnPlanCost) {
  data::Dataset research = PaperResearchData(4, 300);
  DesignOptions monotone;
  monotone.n_q = 25;
  monotone.solver = *ot::MakeSolver("monotone");
  DesignOptions exact = monotone;
  exact.solver = *ot::MakeSolver("exact");
  auto a = DesignDistributionalRepair(research, monotone);
  auto b = DesignDistributionalRepair(research, exact);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int u = 0; u <= 1; ++u) {
    for (size_t k = 0; k < 2; ++k) {
      for (int s = 0; s <= 1; ++s) {
        const auto& pa = a->At(u, k).plan[s];
        const auto& pb = b->At(u, k).plan[s];
        const auto cost = ot::SquaredEuclideanCost(a->At(u, k).grid.points(),
                                                   a->At(u, k).grid.points());
        EXPECT_NEAR(pa.Cost(cost), pb.Cost(cost), 1e-8)
            << "u=" << u << " k=" << k << " s=" << s;
      }
    }
  }
}

TEST(DesignerTest, SinkhornSolverProducesValidPlans) {
  data::Dataset research = PaperResearchData(5, 300);
  DesignOptions options;
  options.n_q = 20;
  ot::SolverOptions solver_options;
  solver_options.sinkhorn.epsilon = 0.1;
  solver_options.sinkhorn.log_domain = true;
  options.solver = *ot::MakeSolver("sinkhorn", solver_options);
  auto plans = DesignDistributionalRepair(research, options);
  ASSERT_TRUE(plans.ok());
  EXPECT_TRUE(plans->Validate(1e-4).ok());
}

TEST(DesignerTest, PartialTargetMovesBarycentreTowardS1) {
  data::Dataset research = PaperResearchData(6);
  DesignOptions toward0;
  toward0.target_t = 0.1;
  DesignOptions toward1;
  toward1.target_t = 0.9;
  auto a = DesignDistributionalRepair(research, toward0);
  auto b = DesignDistributionalRepair(research, toward1);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int u = 0; u <= 1; ++u) {
    const ChannelPlan& ca = a->At(u, 0);
    const ChannelPlan& cb = b->At(u, 0);
    const double dist_a0 = std::fabs(ca.barycenter.Mean() - ca.marginal[0].Mean());
    const double dist_b0 = std::fabs(cb.barycenter.Mean() - cb.marginal[0].Mean());
    // t = 0.1 keeps the target near mu_0; t = 0.9 pushes it away,
    // whenever the two marginals actually differ.
    if (std::fabs(ca.marginal[0].Mean() - ca.marginal[1].Mean()) > 0.2) {
      EXPECT_LT(dist_a0, dist_b0);
    }
  }
}

TEST(DesignerTest, TargetZeroMakesBarycenterMu0) {
  data::Dataset research = PaperResearchData(7);
  DesignOptions options;
  options.target_t = 0.0;
  auto plans = DesignDistributionalRepair(research, options);
  ASSERT_TRUE(plans.ok());
  const ChannelPlan& channel = plans->At(0, 0);
  // nu == mu_0 (up to the grid re-projection, which is exact here since
  // mu_0 already lives on the grid).
  for (size_t q = 0; q < channel.grid.size(); ++q) {
    EXPECT_NEAR(channel.barycenter.weight_at(q), channel.marginal[0].weight_at(q), 1e-9);
  }
}

TEST(DesignerTest, RejectsBadOptions) {
  data::Dataset research = PaperResearchData(8, 200);
  DesignOptions bad_nq;
  bad_nq.n_q = 1;
  EXPECT_FALSE(DesignDistributionalRepair(research, bad_nq).ok());
  DesignOptions bad_t;
  bad_t.target_t = 1.5;
  EXPECT_FALSE(DesignDistributionalRepair(research, bad_t).ok());
}

TEST(DesignerTest, RejectsMissingGroup) {
  // All rows are s = 1: no s = 0 conditional to estimate.
  common::Matrix features = common::Matrix::FromRows({{0.0}, {1.0}, {2.0}, {3.0}});
  auto d = data::Dataset::Create(std::move(features), {1, 1, 1, 1}, {0, 0, 1, 1}, {"x"});
  ASSERT_TRUE(d.ok());
  auto plans = DesignDistributionalRepair(*d, {});
  EXPECT_FALSE(plans.ok());
  EXPECT_EQ(plans.status().code(), common::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace otfair::core
