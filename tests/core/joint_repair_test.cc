#include "core/joint_repair.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "fairness/emetric.h"
#include "fairness/joint_emetric.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

/// Config where the *correlation* (not the marginals) depends on s: the
/// regime where per-feature repair provably cannot finish the job.
sim::GaussianSimConfig CorrelationOnlyConfig() {
  sim::GaussianSimConfig config = sim::GaussianSimConfig::PaperDefault();
  // Same means for both s classes; dependence enters via rho below.
  config.mean[0][0] = {0.0, 0.0};
  config.mean[0][1] = {0.0, 0.0};
  config.mean[1][0] = {1.0, 1.0};
  config.mean[1][1] = {1.0, 1.0};
  return config;
}

struct Fixture {
  data::Dataset research;
  data::Dataset archive;
};

Fixture MakeFixture(const sim::GaussianSimConfig& config, uint64_t seed,
                    size_t n_research = 2000, size_t n_archive = 6000) {
  common::Rng rng(seed);
  auto research = sim::SimulateGaussianMixture(n_research, config, rng);
  auto archive = sim::SimulateGaussianMixture(n_archive, config, rng);
  EXPECT_TRUE(research.ok() && archive.ok());
  return Fixture{std::move(*research), std::move(*archive)};
}

TEST(JointRepairTest, DesignSucceedsOnPaperConfig) {
  Fixture fx = MakeFixture(sim::GaussianSimConfig::PaperDefault(), 1);
  JointDesignOptions options;
  options.n_q = 16;
  auto repairer = JointPairRepairer::Design(fx.research, 0, 1, options);
  ASSERT_TRUE(repairer.ok());
  EXPECT_EQ(repairer->k1(), 0u);
  EXPECT_EQ(repairer->k2(), 1u);
}

TEST(JointRepairTest, RepairedPairsLieOnProductGrid) {
  Fixture fx = MakeFixture(sim::GaussianSimConfig::PaperDefault(), 2, 1500, 100);
  JointDesignOptions options;
  options.n_q = 12;
  auto repairer = JointPairRepairer::Design(fx.research, 0, 1, options);
  ASSERT_TRUE(repairer.ok());
  common::Rng rng(3);
  for (size_t i = 0; i < fx.archive.size(); ++i) {
    const auto [x, y] = repairer->RepairPair(fx.archive.u(i), fx.archive.s(i),
                                             fx.archive.feature(i, 0),
                                             fx.archive.feature(i, 1), rng);
    EXPECT_TRUE(std::isfinite(x));
    EXPECT_TRUE(std::isfinite(y));
  }
}

TEST(JointRepairTest, QuenchesMarginalDependence) {
  Fixture fx = MakeFixture(sim::GaussianSimConfig::PaperDefault(), 4);
  JointDesignOptions options;
  options.n_q = 20;
  auto repairer = JointPairRepairer::Design(fx.research, 0, 1, options);
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive, 5);
  ASSERT_TRUE(repaired.ok());
  auto before = fairness::AggregateE(fx.archive);
  auto after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_LT(*after, *before / 3.0);
}

TEST(JointRepairTest, RemovesCorrelationDependencePerFeatureCannot) {
  // s = 0 records are positively correlated, s = 1 uncorrelated; all
  // marginals identical. Per-feature repair barely changes the data (its
  // marginals already match), so joint dependence persists; joint repair
  // removes it.
  sim::GaussianSimConfig correlated = CorrelationOnlyConfig();
  correlated.rho = 0.85;
  sim::GaussianSimConfig uncorrelated = CorrelationOnlyConfig();
  uncorrelated.rho = 0.0;

  // Build a dataset whose s=0 rows come from the correlated config and
  // s=1 rows from the uncorrelated one.
  common::Rng rng(6);
  auto d_corr = sim::SimulateGaussianMixture(8000, correlated, rng);
  auto d_unco = sim::SimulateGaussianMixture(8000, uncorrelated, rng);
  ASSERT_TRUE(d_corr.ok() && d_unco.ok());
  std::vector<size_t> take_corr;
  std::vector<size_t> take_unco;
  for (size_t i = 0; i < d_corr->size(); ++i) {
    if (d_corr->s(i) == 0) take_corr.push_back(i);
  }
  for (size_t i = 0; i < d_unco->size(); ++i) {
    if (d_unco->s(i) == 1) take_unco.push_back(i);
  }
  data::Dataset part0 = d_corr->Subset(take_corr);
  data::Dataset part1 = d_unco->Subset(take_unco);
  common::Matrix features(part0.size() + part1.size(), 2);
  std::vector<int> s;
  std::vector<int> u;
  for (size_t i = 0; i < part0.size(); ++i) {
    features(i, 0) = part0.feature(i, 0);
    features(i, 1) = part0.feature(i, 1);
    s.push_back(0);
    u.push_back(part0.u(i));
  }
  for (size_t i = 0; i < part1.size(); ++i) {
    features(part0.size() + i, 0) = part1.feature(i, 0);
    features(part0.size() + i, 1) = part1.feature(i, 1);
    s.push_back(1);
    u.push_back(part1.u(i));
  }
  auto combined = data::Dataset::Create(std::move(features), std::move(s), std::move(u),
                                        {"x1", "x2"});
  ASSERT_TRUE(combined.ok());
  common::Rng split_rng(7);
  auto split = data::SplitResearchArchive(*combined, 4000, split_rng);
  ASSERT_TRUE(split.ok());
  const data::Dataset& research = split->first;
  const data::Dataset& archive = split->second;

  // Joint dependence before repair is substantial; per-feature E is small
  // (marginals coincide by construction).
  auto joint_before = fairness::JointFeaturePairE(archive, 0, 1);
  auto marginal_before = fairness::AggregateE(archive);
  ASSERT_TRUE(joint_before.ok() && marginal_before.ok());
  EXPECT_GT(*joint_before, 3.0 * *marginal_before);

  // Per-feature repair: joint dependence largely survives.
  auto plans = DesignDistributionalRepair(research, {});
  ASSERT_TRUE(plans.ok());
  auto per_feature = OffSampleRepairer::Create(*plans, {});
  ASSERT_TRUE(per_feature.ok());
  auto repaired_pf = per_feature->RepairDataset(archive);
  ASSERT_TRUE(repaired_pf.ok());
  auto joint_after_pf = fairness::JointFeaturePairE(*repaired_pf, 0, 1);
  ASSERT_TRUE(joint_after_pf.ok());

  // Joint repair: joint dependence drops substantially below the
  // per-feature result.
  JointDesignOptions options;
  options.n_q = 20;
  auto joint = JointPairRepairer::Design(research, 0, 1, options);
  ASSERT_TRUE(joint.ok());
  auto repaired_joint = joint->RepairDataset(archive, 8);
  ASSERT_TRUE(repaired_joint.ok());
  auto joint_after_joint = fairness::JointFeaturePairE(*repaired_joint, 0, 1);
  ASSERT_TRUE(joint_after_joint.ok());

  EXPECT_LT(*joint_after_joint, 0.5 * *joint_after_pf)
      << "joint before=" << *joint_before << " per-feature after=" << *joint_after_pf
      << " joint after=" << *joint_after_joint;
}

TEST(JointRepairTest, InjectedBackendSolvesProductGridPlans) {
  // A registry backend replaces the separable-kernel path: Sinkhorn on the
  // dense 2-D cost still quenches dependence, and the 1-D-only monotone
  // backend is rejected with a clean error instead of nonsense plans.
  Fixture fx = MakeFixture(sim::GaussianSimConfig::PaperDefault(), 11, 1500, 2000);
  JointDesignOptions options;
  options.n_q = 8;
  ot::SolverOptions solver_options;
  solver_options.sinkhorn.epsilon = 0.1;
  solver_options.sinkhorn.log_domain = true;
  options.solver = *ot::MakeSolver("sinkhorn", solver_options);
  auto repairer = JointPairRepairer::Design(fx.research, 0, 1, options);
  ASSERT_TRUE(repairer.ok()) << repairer.status().ToString();
  auto repaired = repairer->RepairDataset(fx.archive, 7);
  ASSERT_TRUE(repaired.ok());
  auto e_before = fairness::AggregateE(fx.archive);
  auto e_after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(e_before.ok() && e_after.ok());
  EXPECT_LT(*e_after, *e_before / 2.0);

  JointDesignOptions bad = options;
  bad.solver = *ot::MakeSolver("monotone");
  auto rejected = JointPairRepairer::Design(fx.research, 0, 1, bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), common::StatusCode::kUnimplemented);
}

TEST(JointRepairTest, DeterministicGivenSeed) {
  Fixture fx = MakeFixture(sim::GaussianSimConfig::PaperDefault(), 9, 1000, 200);
  JointDesignOptions options;
  options.n_q = 10;
  auto repairer = JointPairRepairer::Design(fx.research, 0, 1, options);
  ASSERT_TRUE(repairer.ok());
  auto a = repairer->RepairDataset(fx.archive, 42);
  auto b = repairer->RepairDataset(fx.archive, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ(a->feature(i, 0), b->feature(i, 0));
    EXPECT_DOUBLE_EQ(a->feature(i, 1), b->feature(i, 1));
  }
}

TEST(JointRepairTest, LabelsPreserved) {
  Fixture fx = MakeFixture(sim::GaussianSimConfig::PaperDefault(), 10, 1000, 300);
  JointDesignOptions options;
  options.n_q = 10;
  auto repairer = JointPairRepairer::Design(fx.research, 0, 1, options);
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive, 1);
  ASSERT_TRUE(repaired.ok());
  for (size_t i = 0; i < repaired->size(); ++i) {
    EXPECT_EQ(repaired->s(i), fx.archive.s(i));
    EXPECT_EQ(repaired->u(i), fx.archive.u(i));
  }
}

TEST(JointRepairTest, RejectsBadArguments) {
  Fixture fx = MakeFixture(sim::GaussianSimConfig::PaperDefault(), 11, 500, 100);
  EXPECT_FALSE(JointPairRepairer::Design(fx.research, 0, 0, {}).ok());
  EXPECT_FALSE(JointPairRepairer::Design(fx.research, 0, 5, {}).ok());
  JointDesignOptions bad_nq;
  bad_nq.n_q = 100;
  EXPECT_FALSE(JointPairRepairer::Design(fx.research, 0, 1, bad_nq).ok());
  JointDesignOptions bad_t;
  bad_t.target_t = -1.0;
  EXPECT_FALSE(JointPairRepairer::Design(fx.research, 0, 1, bad_t).ok());
}

}  // namespace
}  // namespace otfair::core
