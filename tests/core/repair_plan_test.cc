#include "core/repair_plan.h"

#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/rng.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "ot/plan.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

RepairPlanSet DesignedPlans(uint64_t seed, size_t n_q = 25) {
  common::Rng rng(seed);
  auto research =
      sim::SimulateGaussianMixture(400, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(research.ok());
  DesignOptions options;
  options.n_q = n_q;
  auto plans = DesignDistributionalRepair(*research, options);
  EXPECT_TRUE(plans.ok());
  return *plans;
}

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

TEST(RepairPlanTest, DesignedPlanValidates) {
  RepairPlanSet plans = DesignedPlans(1);
  EXPECT_TRUE(plans.Validate().ok());
}

TEST(RepairPlanTest, ValidateCatchesCorruptedRowMarginal) {
  RepairPlanSet plans = DesignedPlans(2);
  // Perturb one stored CSR value: breaks the row-sum constraint.
  plans.At(0, 0).plan[0].mutable_values()[0] += 0.1;
  EXPECT_FALSE(plans.Validate().ok());
}

TEST(RepairPlanTest, ValidateCatchesShapeMismatch) {
  RepairPlanSet plans = DesignedPlans(3);
  plans.At(1, 1).plan[1] = ot::SparsePlan::FromDense(common::Matrix(3, 3));
  auto status = plans.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("u=1"), std::string::npos);
}

TEST(RepairPlanTest, SaveLoadRoundTrip) {
  RepairPlanSet plans = DesignedPlans(4);
  const std::string path = TempPath("plans.bin");
  ASSERT_TRUE(plans.SaveToFile(path).ok());
  auto loaded = RepairPlanSet::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dim(), plans.dim());
  EXPECT_EQ(loaded->feature_names(), plans.feature_names());
  EXPECT_DOUBLE_EQ(loaded->target_t(), plans.target_t());
  for (int u = 0; u <= 1; ++u) {
    for (size_t k = 0; k < plans.dim(); ++k) {
      const ChannelPlan& a = plans.At(u, k);
      const ChannelPlan& b = loaded->At(u, k);
      EXPECT_EQ(a.grid.size(), b.grid.size());
      EXPECT_DOUBLE_EQ(a.grid.lo(), b.grid.lo());
      EXPECT_DOUBLE_EQ(a.grid.hi(), b.grid.hi());
      for (int s = 0; s <= 1; ++s) {
        EXPECT_EQ(a.plan[s].MaxAbsDiff(b.plan[s]), 0.0);
        for (size_t q = 0; q < a.grid.size(); ++q) {
          EXPECT_DOUBLE_EQ(a.marginal[s].weight_at(q), b.marginal[s].weight_at(q));
        }
      }
      for (size_t q = 0; q < a.grid.size(); ++q)
        EXPECT_DOUBLE_EQ(a.barycenter.weight_at(q), b.barycenter.weight_at(q));
    }
  }
}

TEST(RepairPlanTest, LoadedPlanDrivesIdenticalRepairs) {
  RepairPlanSet plans = DesignedPlans(5);
  const std::string path = TempPath("plans_repair.bin");
  ASSERT_TRUE(plans.SaveToFile(path).ok());
  auto loaded = RepairPlanSet::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());

  RepairOptions options;
  options.seed = 42;
  auto ra = OffSampleRepairer::Create(plans, options);
  auto rb = OffSampleRepairer::Create(*loaded, options);
  ASSERT_TRUE(ra.ok() && rb.ok());
  common::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal(0.0, 1.0);
    const int u = rng.Bernoulli(0.5) ? 1 : 0;
    const int s = rng.Bernoulli(0.5) ? 1 : 0;
    EXPECT_DOUBLE_EQ(ra->RepairValue(u, s, 0, x), rb->RepairValue(u, s, 0, x));
  }
}

TEST(RepairPlanTest, LegacyDenseV1FileLoadsAndMatches) {
  // Writes the pre-CSR version-1 format (dense n_Q x n_Q plan matrices)
  // by hand and loads it: the deployed-artifact back-compat promise.
  RepairPlanSet plans = DesignedPlans(8);
  const std::string path = TempPath("plans_v1.bin");
  {
    std::ofstream out(path, std::ios::binary);
    auto u32 = [&](uint32_t v) { out.write(reinterpret_cast<const char*>(&v), sizeof(v)); };
    auto u64 = [&](uint64_t v) { out.write(reinterpret_cast<const char*>(&v), sizeof(v)); };
    auto f64 = [&](double v) { out.write(reinterpret_cast<const char*>(&v), sizeof(v)); };
    auto doubles = [&](const std::vector<double>& v) {
      out.write(reinterpret_cast<const char*>(v.data()),
                static_cast<std::streamsize>(v.size() * sizeof(double)));
    };
    auto measure = [&](const ot::DiscreteMeasure& m) {
      u64(m.size());
      doubles(m.support());
      doubles(m.weights());
    };
    u32(0x4F544652);  // "OTFR"
    u32(1);           // the legacy dense version
    u64(plans.dim());
    f64(plans.target_t());
    for (const std::string& name : plans.feature_names()) {
      u64(name.size());
      out.write(name.data(), static_cast<std::streamsize>(name.size()));
    }
    for (int u = 0; u <= 1; ++u) {
      for (size_t k = 0; k < plans.dim(); ++k) {
        const ChannelPlan& channel = plans.At(u, k);
        u64(channel.grid.size());
        f64(channel.grid.lo());
        f64(channel.grid.hi());
        for (int s = 0; s <= 1; ++s) measure(channel.marginal[static_cast<size_t>(s)]);
        measure(channel.barycenter);
        for (int s = 0; s <= 1; ++s) {
          const common::Matrix dense = channel.plan[static_cast<size_t>(s)].ToDense();
          out.write(reinterpret_cast<const char*>(dense.data()),
                    static_cast<std::streamsize>(dense.size() * sizeof(double)));
        }
      }
    }
  }
  auto loaded = RepairPlanSet::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->dim(), plans.dim());
  for (int u = 0; u <= 1; ++u) {
    for (size_t k = 0; k < plans.dim(); ++k) {
      for (int s = 0; s <= 1; ++s) {
        const auto& original = plans.At(u, k).plan[static_cast<size_t>(s)];
        const auto& roundtripped = loaded->At(u, k).plan[static_cast<size_t>(s)];
        EXPECT_EQ(original.nnz(), roundtripped.nnz()) << "u=" << u << " k=" << k;
        EXPECT_EQ(original.MaxAbsDiff(roundtripped), 0.0) << "u=" << u << " k=" << k;
      }
    }
  }
}

TEST(RepairPlanTest, LoadRejectsGarbageFile) {
  const std::string path = TempPath("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a plan file at all";
  }
  auto loaded = RepairPlanSet::LoadFromFile(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
}

TEST(RepairPlanTest, LoadRejectsTruncatedFile) {
  RepairPlanSet plans = DesignedPlans(7);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(plans.SaveToFile(path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string content(static_cast<size_t>(size) / 2, '\0');
  in.read(content.data(), static_cast<std::streamsize>(content.size()));
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.close();
  EXPECT_FALSE(RepairPlanSet::LoadFromFile(path).ok());
}

TEST(RepairPlanTest, LoadMissingFileGivesIoError) {
  auto loaded = RepairPlanSet::LoadFromFile(TempPath("nope.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
}

TEST(RepairPlanTest, ParseRejectsTrailingBytesAfterValidPayload) {
  // An oversized file — a valid plan plus junk — must not load: the
  // trailing bytes mean the file is not what the writer produced
  // (e.g. two concatenated plans, or a torn overwrite).
  RepairPlanSet plans = DesignedPlans(8);
  std::string bytes = plans.SerializeToString();
  ASSERT_TRUE(
      RepairPlanSet::ParseFromBuffer(bytes.data(), bytes.size(), "pristine").ok());
  bytes += "junk";
  auto loaded = RepairPlanSet::ParseFromBuffer(bytes.data(), bytes.size(), "oversized");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("trailing"), std::string::npos);
}

TEST(RepairPlanTest, ParseRejectsEveryTruncatedPrefix) {
  RepairPlanSet plans = DesignedPlans(9, /*n_q=*/10);
  const std::string bytes = plans.SerializeToString();
  for (size_t len = 0; len < bytes.size(); len = len < 64 ? len + 1 : len + 131) {
    auto loaded = RepairPlanSet::ParseFromBuffer(bytes.data(), len, "trunc");
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes parsed as a plan";
  }
}

TEST(RepairPlanTest, ParseRejectsInflatedLengthFieldWithoutHugeAllocation) {
  // Blow up the first feature-name length field (offset 48 in a binary
  // |S|=2 v3 file: magic, version, dim, target_t, u_levels, s_levels, two
  // lambdas). The parser must bounds-check against the remaining bytes
  // BEFORE allocating — under ASan an attempted 2^60-byte string would
  // abort the test.
  RepairPlanSet plans = DesignedPlans(10);
  std::string bytes = plans.SerializeToString();
  const uint64_t huge = 1ULL << 60;
  ASSERT_GE(bytes.size(), 56u);
  std::memcpy(bytes.data() + 48, &huge, sizeof(huge));
  EXPECT_FALSE(RepairPlanSet::ParseFromBuffer(bytes.data(), bytes.size(), "huge").ok());
}

TEST(RepairPlanTest, SerializeParseRoundTripIsBitIdentical) {
  RepairPlanSet plans = DesignedPlans(11);
  const std::string bytes = plans.SerializeToString();
  auto parsed = RepairPlanSet::ParseFromBuffer(bytes.data(), bytes.size(), "roundtrip");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->SerializeToString(), bytes);
}

TEST(RepairPlanTest, SaveEmptyPlanFails) {
  RepairPlanSet empty;
  EXPECT_FALSE(empty.SaveToFile(TempPath("empty.bin")).ok());
}

}  // namespace
}  // namespace otfair::core
