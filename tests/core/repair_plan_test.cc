#include "core/repair_plan.h"

#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

RepairPlanSet DesignedPlans(uint64_t seed, size_t n_q = 25) {
  common::Rng rng(seed);
  auto research =
      sim::SimulateGaussianMixture(400, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(research.ok());
  DesignOptions options;
  options.n_q = n_q;
  auto plans = DesignDistributionalRepair(*research, options);
  EXPECT_TRUE(plans.ok());
  return *plans;
}

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

TEST(RepairPlanTest, DesignedPlanValidates) {
  RepairPlanSet plans = DesignedPlans(1);
  EXPECT_TRUE(plans.Validate().ok());
}

TEST(RepairPlanTest, ValidateCatchesCorruptedRowMarginal) {
  RepairPlanSet plans = DesignedPlans(2);
  plans.At(0, 0).plan[0](0, 0) += 0.1;  // break the row-sum constraint
  EXPECT_FALSE(plans.Validate().ok());
}

TEST(RepairPlanTest, ValidateCatchesShapeMismatch) {
  RepairPlanSet plans = DesignedPlans(3);
  plans.At(1, 1).plan[1] = common::Matrix(3, 3);
  auto status = plans.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("u=1"), std::string::npos);
}

TEST(RepairPlanTest, SaveLoadRoundTrip) {
  RepairPlanSet plans = DesignedPlans(4);
  const std::string path = TempPath("plans.bin");
  ASSERT_TRUE(plans.SaveToFile(path).ok());
  auto loaded = RepairPlanSet::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dim(), plans.dim());
  EXPECT_EQ(loaded->feature_names(), plans.feature_names());
  EXPECT_DOUBLE_EQ(loaded->target_t(), plans.target_t());
  for (int u = 0; u <= 1; ++u) {
    for (size_t k = 0; k < plans.dim(); ++k) {
      const ChannelPlan& a = plans.At(u, k);
      const ChannelPlan& b = loaded->At(u, k);
      EXPECT_EQ(a.grid.size(), b.grid.size());
      EXPECT_DOUBLE_EQ(a.grid.lo(), b.grid.lo());
      EXPECT_DOUBLE_EQ(a.grid.hi(), b.grid.hi());
      for (int s = 0; s <= 1; ++s) {
        EXPECT_EQ(a.plan[s].MaxAbsDiff(b.plan[s]), 0.0);
        for (size_t q = 0; q < a.grid.size(); ++q) {
          EXPECT_DOUBLE_EQ(a.marginal[s].weight_at(q), b.marginal[s].weight_at(q));
        }
      }
      for (size_t q = 0; q < a.grid.size(); ++q)
        EXPECT_DOUBLE_EQ(a.barycenter.weight_at(q), b.barycenter.weight_at(q));
    }
  }
}

TEST(RepairPlanTest, LoadedPlanDrivesIdenticalRepairs) {
  RepairPlanSet plans = DesignedPlans(5);
  const std::string path = TempPath("plans_repair.bin");
  ASSERT_TRUE(plans.SaveToFile(path).ok());
  auto loaded = RepairPlanSet::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());

  RepairOptions options;
  options.seed = 42;
  auto ra = OffSampleRepairer::Create(plans, options);
  auto rb = OffSampleRepairer::Create(*loaded, options);
  ASSERT_TRUE(ra.ok() && rb.ok());
  common::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal(0.0, 1.0);
    const int u = rng.Bernoulli(0.5) ? 1 : 0;
    const int s = rng.Bernoulli(0.5) ? 1 : 0;
    EXPECT_DOUBLE_EQ(ra->RepairValue(u, s, 0, x), rb->RepairValue(u, s, 0, x));
  }
}

TEST(RepairPlanTest, LoadRejectsGarbageFile) {
  const std::string path = TempPath("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a plan file at all";
  }
  auto loaded = RepairPlanSet::LoadFromFile(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
}

TEST(RepairPlanTest, LoadRejectsTruncatedFile) {
  RepairPlanSet plans = DesignedPlans(7);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(plans.SaveToFile(path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string content(static_cast<size_t>(size) / 2, '\0');
  in.read(content.data(), static_cast<std::streamsize>(content.size()));
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.close();
  EXPECT_FALSE(RepairPlanSet::LoadFromFile(path).ok());
}

TEST(RepairPlanTest, LoadMissingFileGivesIoError) {
  auto loaded = RepairPlanSet::LoadFromFile(TempPath("nope.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
}

TEST(RepairPlanTest, SaveEmptyPlanFails) {
  RepairPlanSet empty;
  EXPECT_FALSE(empty.SaveToFile(TempPath("empty.bin")).ok());
}

}  // namespace
}  // namespace otfair::core
