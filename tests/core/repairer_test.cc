#include "core/repairer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

struct Fixture {
  data::Dataset research;
  data::Dataset archive;
  RepairPlanSet plans;
};

Fixture MakeFixture(uint64_t seed, size_t n_research = 500, size_t n_archive = 2000,
                    size_t n_q = 50) {
  common::Rng rng(seed);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(n_research, config, rng);
  auto archive = sim::SimulateGaussianMixture(n_archive, config, rng);
  EXPECT_TRUE(research.ok() && archive.ok());
  DesignOptions options;
  options.n_q = n_q;
  auto plans = DesignDistributionalRepair(*research, options);
  EXPECT_TRUE(plans.ok());
  return Fixture{std::move(*research), std::move(*archive), std::move(*plans)};
}

TEST(RepairerTest, RepairedValuesLieOnGrid) {
  Fixture fx = MakeFixture(1);
  auto repairer = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(repairer.ok());
  for (int i = 0; i < 200; ++i) {
    const double x = fx.archive.feature(static_cast<size_t>(i), 0);
    const int u = fx.archive.u(static_cast<size_t>(i));
    const int s = fx.archive.s(static_cast<size_t>(i));
    const double repaired = repairer->RepairValue(u, s, 0, x);
    const auto& grid = repairer->plans().At(u, 0).grid;
    // Full-strength stochastic repair lands exactly on a grid point.
    double nearest = std::numeric_limits<double>::infinity();
    for (size_t q = 0; q < grid.size(); ++q)
      nearest = std::min(nearest, std::fabs(repaired - grid.point(q)));
    EXPECT_NEAR(nearest, 0.0, 1e-9);
  }
}

TEST(RepairerTest, CardinalityPreserved) {
  Fixture fx = MakeFixture(2);
  auto repairer = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->size(), fx.archive.size());
  EXPECT_EQ(repaired->dim(), fx.archive.dim());
  // Labels untouched.
  for (size_t i = 0; i < repaired->size(); ++i) {
    EXPECT_EQ(repaired->s(i), fx.archive.s(i));
    EXPECT_EQ(repaired->u(i), fx.archive.u(i));
  }
}

TEST(RepairerTest, InputDatasetNotMutated) {
  Fixture fx = MakeFixture(3);
  const double before = fx.archive.feature(0, 0);
  auto repairer = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive);
  ASSERT_TRUE(repaired.ok());
  EXPECT_DOUBLE_EQ(fx.archive.feature(0, 0), before);
}

TEST(RepairerTest, ReducesConditionalDependenceOffSample) {
  Fixture fx = MakeFixture(4, 500, 4000);
  auto before = fairness::AggregateE(fx.archive);
  ASSERT_TRUE(before.ok());
  auto repairer = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive);
  ASSERT_TRUE(repaired.ok());
  auto after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(after.ok());
  // Paper Table I: unrepaired ~6-7, repaired ~0.4: demand a 5x reduction.
  EXPECT_LT(*after, *before / 5.0);
}

TEST(RepairerTest, OnSampleRepairEvenTighter) {
  Fixture fx = MakeFixture(5, 800, 800);
  auto repairer = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(repairer.ok());
  auto on_sample = repairer->RepairDataset(fx.research);
  auto off_sample = repairer->RepairDataset(fx.archive);
  ASSERT_TRUE(on_sample.ok() && off_sample.ok());
  auto e_on = fairness::AggregateE(*on_sample);
  auto e_off = fairness::AggregateE(*off_sample);
  ASSERT_TRUE(e_on.ok() && e_off.ok());
  // Table I pattern: research repair is at least as good (allow slack for
  // randomness).
  EXPECT_LT(*e_on, *e_off * 2.0 + 0.1);
}

TEST(RepairerTest, DeterministicGivenSeed) {
  Fixture fx = MakeFixture(6);
  RepairOptions options;
  options.seed = 12345;
  auto ra = OffSampleRepairer::Create(fx.plans, options);
  auto rb = OffSampleRepairer::Create(fx.plans, options);
  ASSERT_TRUE(ra.ok() && rb.ok());
  auto da = ra->RepairDataset(fx.archive);
  auto db = rb->RepairDataset(fx.archive);
  ASSERT_TRUE(da.ok() && db.ok());
  for (size_t i = 0; i < da->size(); ++i) {
    for (size_t k = 0; k < da->dim(); ++k)
      EXPECT_DOUBLE_EQ(da->feature(i, k), db->feature(i, k));
  }
}

TEST(RepairerTest, StreamingMatchesBatchGivenRowSubStreams) {
  Fixture fx = MakeFixture(7, 300, 500);
  RepairOptions options;
  options.seed = 777;
  auto batch = OffSampleRepairer::Create(fx.plans, options);
  auto stream = OffSampleRepairer::Create(fx.plans, options);
  ASSERT_TRUE(batch.ok() && stream.ok());
  auto batch_out = batch->RepairDataset(fx.archive);
  ASSERT_TRUE(batch_out.ok());
  // Batch repair gives row i the sub-stream Rng::ForStream(seed, i) and
  // repairs channels in k order, so record-at-a-time replay under the
  // same scheme reproduces the batch output — in any row order; walk the
  // rows backwards to prove order independence.
  for (size_t r = fx.archive.size(); r-- > 0;) {
    common::Rng rng = common::Rng::ForStream(777, r);
    for (size_t k = 0; k < fx.archive.dim(); ++k) {
      const double value = stream->RepairValue(fx.archive.u(r), fx.archive.s(r), k,
                                               fx.archive.feature(r, k), rng);
      EXPECT_DOUBLE_EQ(value, batch_out->feature(r, k)) << "row " << r << " k " << k;
    }
  }
}

TEST(RepairerTest, ZeroStrengthIsIdentity) {
  Fixture fx = MakeFixture(8);
  RepairOptions options;
  options.strength = 0.0;
  auto repairer = OffSampleRepairer::Create(fx.plans, options);
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive);
  ASSERT_TRUE(repaired.ok());
  for (size_t i = 0; i < 50; ++i) {
    for (size_t k = 0; k < 2; ++k)
      EXPECT_DOUBLE_EQ(repaired->feature(i, k), fx.archive.feature(i, k));
  }
}

TEST(RepairerTest, PartialStrengthInterpolates) {
  Fixture fx = MakeFixture(9, 500, 2000);
  RepairOptions half;
  half.strength = 0.5;
  half.seed = 5;
  auto repairer = OffSampleRepairer::Create(fx.plans, half);
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive);
  ASSERT_TRUE(repaired.ok());
  auto e_before = fairness::AggregateE(fx.archive);
  auto e_after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(e_before.ok() && e_after.ok());
  // Partial repair helps but less than full repair.
  EXPECT_LT(*e_after, *e_before);
  EXPECT_GT(*e_after, 0.05 * *e_before);
}

TEST(RepairerTest, ConditionalMeanModeIsDeterministic) {
  Fixture fx = MakeFixture(10);
  RepairOptions options;
  options.mode = TransportMode::kConditionalMean;
  options.seed = 1;
  auto ra = OffSampleRepairer::Create(fx.plans, options);
  options.seed = 999;  // different seed must not matter
  auto rb = OffSampleRepairer::Create(fx.plans, options);
  ASSERT_TRUE(ra.ok() && rb.ok());
  for (size_t i = 0; i < 100; ++i) {
    const double x = fx.archive.feature(i, 1);
    EXPECT_DOUBLE_EQ(ra->RepairValue(fx.archive.u(i), fx.archive.s(i), 1, x),
                     rb->RepairValue(fx.archive.u(i), fx.archive.s(i), 1, x));
  }
}

TEST(RepairerTest, ConditionalMeanModeAlsoRepairs) {
  Fixture fx = MakeFixture(11, 500, 4000);
  RepairOptions options;
  options.mode = TransportMode::kConditionalMean;
  auto repairer = OffSampleRepairer::Create(fx.plans, options);
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive);
  ASSERT_TRUE(repaired.ok());
  auto e_before = fairness::AggregateE(fx.archive);
  auto e_after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(e_before.ok() && e_after.ok());
  EXPECT_LT(*e_after, *e_before / 3.0);
}

TEST(RepairerTest, ClampStatisticsTracked) {
  Fixture fx = MakeFixture(12, 200, 3000);
  auto repairer = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive);
  ASSERT_TRUE(repaired.ok());
  const RepairStats& stats = repairer->stats();
  EXPECT_EQ(stats.values_repaired, fx.archive.size() * fx.archive.dim());
  // With a small research set, some archival values fall outside the grid.
  EXPECT_GT(stats.values_clamped, 0u);
  EXPECT_LT(stats.values_clamped, stats.values_repaired / 10);
}

TEST(RepairerTest, RepairWithExternalLabels) {
  Fixture fx = MakeFixture(13, 400, 600);
  auto repairer = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(repairer.ok());
  std::vector<int> flipped;
  for (size_t i = 0; i < fx.archive.size(); ++i) flipped.push_back(1 - fx.archive.s(i));
  auto repaired = repairer->RepairDatasetWithLabels(fx.archive, flipped);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->size(), fx.archive.size());
}

TEST(RepairerTest, RejectsBadInputs) {
  Fixture fx = MakeFixture(14, 300, 300);
  RepairOptions bad_strength;
  bad_strength.strength = 1.5;
  EXPECT_FALSE(OffSampleRepairer::Create(fx.plans, bad_strength).ok());

  auto repairer = OffSampleRepairer::Create(fx.plans, {});
  ASSERT_TRUE(repairer.ok());
  EXPECT_FALSE(
      repairer->RepairDatasetWithLabels(fx.archive, std::vector<int>(3, 0)).ok());
  EXPECT_FALSE(
      repairer
          ->RepairDatasetWithLabels(fx.archive, std::vector<int>(fx.archive.size(), 7))
          .ok());
}

TEST(RepairerTest, RepairedMarginalMatchesBarycenter) {
  // Push many archival s=0 values through channel (u=0, k=0): the repaired
  // empirical distribution should approximate the barycenter.
  Fixture fx = MakeFixture(15, 2000, 1, 40);
  RepairOptions options;
  options.seed = 3;
  auto repairer = OffSampleRepairer::Create(fx.plans, options);
  ASSERT_TRUE(repairer.ok());
  const ChannelPlan& channel = fx.plans.At(0, 0);

  common::Rng rng(16);
  std::vector<double> counts(channel.grid.size(), 0.0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(-1.0, 1.0);  // mu_{0,0} of the paper config
    const double repaired = repairer->RepairValue(0, 0, 0, x);
    counts[channel.grid.Locate(repaired).lower] += 1.0;
  }
  for (double& c : counts) c /= n;
  // Compare first moment with the barycenter's.
  double mean = 0.0;
  for (size_t q = 0; q < counts.size(); ++q) mean += counts[q] * channel.grid.point(q);
  EXPECT_NEAR(mean, channel.barycenter.Mean(), 0.08);
}

}  // namespace
}  // namespace otfair::core
