#include "core/drift_monitor.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/byte_io.h"
#include "common/rng.h"
#include "core/designer.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

struct Fixture {
  data::Dataset research;
  RepairPlanSet plans;
  sim::GaussianSimConfig config;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture fx;
  fx.config = sim::GaussianSimConfig::PaperDefault();
  common::Rng rng(seed);
  auto research = sim::SimulateGaussianMixture(1000, fx.config, rng);
  EXPECT_TRUE(research.ok());
  fx.research = std::move(*research);
  auto plans = DesignDistributionalRepair(fx.research, {});
  EXPECT_TRUE(plans.ok());
  fx.plans = std::move(*plans);
  return fx;
}

/// Streams `n` draws from the configured mixture (optionally shifted) into
/// the monitor.
void StreamMixture(DriftMonitor& monitor, const sim::GaussianSimConfig& config, size_t n,
                   double shift, common::Rng& rng) {
  for (size_t i = 0; i < n; ++i) {
    const int u = rng.Bernoulli(config.pr_u0) ? 0 : 1;
    const double pr_s0 = (u == 0) ? config.pr_s0_given_u0 : config.pr_s0_given_u1;
    const int s = rng.Bernoulli(pr_s0) ? 0 : 1;
    for (size_t k = 0; k < 2; ++k) {
      monitor.Observe(u, s, k, rng.Normal(config.mean[u][s][k] + shift, config.sigma));
    }
  }
}

TEST(DriftMonitorTest, StationaryStreamNotFlagged) {
  Fixture fx = MakeFixture(1);
  auto monitor = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(monitor.ok());
  common::Rng rng(2);
  StreamMixture(*monitor, fx.config, 20000, 0.0, rng);
  const DriftReport report = monitor->Report();
  EXPECT_FALSE(report.drifted) << report.ToString();
  EXPECT_LT(report.worst_w1, 0.1);
}

TEST(DriftMonitorTest, ShiftedStreamFlagged) {
  Fixture fx = MakeFixture(3);
  auto monitor = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(monitor.ok());
  common::Rng rng(4);
  StreamMixture(*monitor, fx.config, 20000, 1.5, rng);  // 1.5 sigma shift
  const DriftReport report = monitor->Report();
  EXPECT_TRUE(report.drifted) << report.ToString();
  EXPECT_GT(report.worst_w1, 0.1);
}

TEST(DriftMonitorTest, OutOfRangeRateDetected) {
  Fixture fx = MakeFixture(5);
  DriftMonitorOptions options;
  options.w1_threshold = 10.0;  // isolate the out-of-range signal
  auto monitor = DriftMonitor::Create(fx.plans, options);
  ASSERT_TRUE(monitor.ok());
  common::Rng rng(6);
  StreamMixture(*monitor, fx.config, 5000, 6.0, rng);  // way outside the grid
  const DriftReport report = monitor->Report();
  EXPECT_TRUE(report.drifted);
  EXPECT_GT(report.worst_out_of_range, 0.05);
}

TEST(DriftMonitorTest, SmallCountsNotJudged) {
  Fixture fx = MakeFixture(7);
  auto monitor = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(monitor.ok());
  // A handful of wildly shifted values must not trip the alarm yet.
  for (int i = 0; i < 20; ++i) monitor->Observe(0, 0, 0, 100.0);
  EXPECT_FALSE(monitor->Report().drifted);
}

TEST(DriftMonitorTest, PerChannelBreakdownExposed) {
  Fixture fx = MakeFixture(8);
  auto monitor = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(monitor.ok());
  common::Rng rng(9);
  // Drift only channel (u=0, s=0, k=1).
  for (int i = 0; i < 5000; ++i) {
    monitor->Observe(0, 0, 0, rng.Normal(-1.0, 1.0));         // on-distribution
    monitor->Observe(0, 0, 1, rng.Normal(-1.0 + 2.0, 1.0));   // shifted
  }
  const DriftReport report = monitor->Report();
  double drifted_w1 = -1.0;
  double clean_w1 = -1.0;
  for (const ChannelDrift& c : report.channels) {
    if (c.u == 0 && c.s == 0 && c.k == 1) drifted_w1 = c.w1_normalized;
    if (c.u == 0 && c.s == 0 && c.k == 0) clean_w1 = c.w1_normalized;
  }
  EXPECT_GT(drifted_w1, 3.0 * clean_w1);
}

TEST(DriftMonitorTest, ResetClearsState) {
  Fixture fx = MakeFixture(10);
  auto monitor = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(monitor.ok());
  common::Rng rng(11);
  StreamMixture(*monitor, fx.config, 5000, 2.0, rng);
  EXPECT_TRUE(monitor->Report().drifted);
  monitor->Reset();
  const DriftReport report = monitor->Report();
  EXPECT_FALSE(report.drifted);
  for (const ChannelDrift& c : report.channels) EXPECT_EQ(c.count, 0u);
}

TEST(DriftMonitorTest, ReportRendering) {
  Fixture fx = MakeFixture(12);
  auto monitor = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(monitor.ok());
  const std::string text = monitor->Report().ToString();
  EXPECT_NE(text.find("stationary"), std::string::npos);
  EXPECT_NE(text.find("(u=0, s=0, k=0)"), std::string::npos);
}

TEST(DriftMonitorTest, RejectsBadOptions) {
  Fixture fx = MakeFixture(13);
  DriftMonitorOptions options;
  options.min_count = 0;
  EXPECT_FALSE(DriftMonitor::Create(fx.plans, options).ok());
}

void ExpectReportsIdentical(const DriftReport& a, const DriftReport& b) {
  EXPECT_EQ(a.drifted, b.drifted);
  EXPECT_EQ(a.worst_w1, b.worst_w1);
  EXPECT_EQ(a.worst_out_of_range, b.worst_out_of_range);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (size_t i = 0; i < a.channels.size(); ++i) {
    EXPECT_EQ(a.channels[i].count, b.channels[i].count);
    // Exact equality is the point: integer counts plus an identical W1
    // summation order mean incremental accumulation must be bit-equal.
    EXPECT_EQ(a.channels[i].w1_normalized, b.channels[i].w1_normalized);
    EXPECT_EQ(a.channels[i].out_of_range_rate, b.channels[i].out_of_range_rate);
  }
}

TEST(DriftMonitorTest, IncrementalSnapshotsReproduceOneShotReport) {
  // The serving layer observes in micro-batches and snapshots between
  // them; the final judgement must match the single batch run exactly.
  Fixture fx = MakeFixture(14);
  auto one_shot = DriftMonitor::Create(fx.plans);
  auto incremental = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(one_shot.ok() && incremental.ok());
  common::Rng rng_a(15);
  common::Rng rng_b(15);
  StreamMixture(*one_shot, fx.config, 10000, 0.7, rng_a);
  size_t left = 10000;
  while (left > 0) {
    const size_t chunk = std::min<size_t>(left, 37);
    StreamMixture(*incremental, fx.config, chunk, 0.7, rng_b);
    incremental->SnapshotReport();  // snapshots must not disturb state
    left -= chunk;
  }
  ExpectReportsIdentical(one_shot->Report(), incremental->SnapshotReport());
}

TEST(DriftMonitorTest, MergedShardsReproduceOneShotReport) {
  Fixture fx = MakeFixture(16);
  auto one_shot = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(one_shot.ok());
  std::vector<DriftMonitor> shards;
  for (int i = 0; i < 3; ++i) {
    auto shard = DriftMonitor::Create(fx.plans);
    ASSERT_TRUE(shard.ok());
    shards.push_back(std::move(*shard));
  }
  common::Rng rng(17);
  for (size_t i = 0; i < 6000; ++i) {
    const int u = rng.Bernoulli(fx.config.pr_u0) ? 0 : 1;
    const int s = rng.Bernoulli(0.5) ? 0 : 1;
    for (size_t k = 0; k < 2; ++k) {
      const double x = rng.Normal(fx.config.mean[u][s][k] + 0.5, fx.config.sigma);
      one_shot->Observe(u, s, k, x);
      shards[i % shards.size()].Observe(u, s, k, x);
    }
  }
  DriftMonitor merged = std::move(shards[0]);
  for (size_t i = 1; i < shards.size(); ++i)
    ASSERT_TRUE(merged.MergeFrom(shards[i]).ok());
  ExpectReportsIdentical(one_shot->Report(), merged.SnapshotReport());
}

TEST(DriftMonitorTest, MergeRejectsMismatchedShapes) {
  Fixture fx = MakeFixture(18);
  auto monitor = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(monitor.ok());
  // A monitor designed on different research data has different grids.
  Fixture other = MakeFixture(19);
  auto mismatched = DriftMonitor::Create(other.plans);
  ASSERT_TRUE(mismatched.ok());
  EXPECT_FALSE(monitor->MergeFrom(*mismatched).ok());
}

TEST(DriftMonitorSerializationTest, CountsRoundTripReproducesReportExactly) {
  Fixture fx = MakeFixture(20);
  auto monitor = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(monitor.ok());
  common::Rng rng(20);
  StreamMixture(*monitor, fx.config, 3000, 0.7, rng);

  std::string bytes;
  common::ByteWriter writer(&bytes);
  monitor->SerializeCounts(writer);

  // Restore into a FRESH monitor of the same geometry: addition into
  // zeros is an exact restore.
  auto restored = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(restored.ok());
  common::ByteReader reader(bytes);
  ASSERT_TRUE(restored->RestoreCounts(reader).ok());
  EXPECT_TRUE(reader.exhausted());

  const DriftReport before = monitor->SnapshotReport();
  const DriftReport after = restored->SnapshotReport();
  EXPECT_EQ(after.drifted, before.drifted);
  EXPECT_EQ(after.worst_w1, before.worst_w1);
  EXPECT_EQ(after.worst_out_of_range, before.worst_out_of_range);
  ASSERT_EQ(after.channels.size(), before.channels.size());
  for (size_t i = 0; i < before.channels.size(); ++i) {
    EXPECT_EQ(after.channels[i].count, before.channels[i].count);
    EXPECT_EQ(after.channels[i].w1_normalized, before.channels[i].w1_normalized);
    EXPECT_EQ(after.channels[i].out_of_range_rate, before.channels[i].out_of_range_rate);
  }
}

TEST(DriftMonitorSerializationTest, RestoreRejectsMismatchedGeometryAndCorruptPayloads) {
  Fixture fx = MakeFixture(21);
  auto monitor = DriftMonitor::Create(fx.plans);
  ASSERT_TRUE(monitor.ok());
  common::Rng rng(21);
  StreamMixture(*monitor, fx.config, 500, 0.0, rng);
  std::string bytes;
  common::ByteWriter writer(&bytes);
  monitor->SerializeCounts(writer);

  // A monitor with different grids must refuse the payload (the counts
  // would be reinterpreted against the wrong design distribution).
  Fixture other = MakeFixture(22);
  auto mismatched = DriftMonitor::Create(other.plans);
  ASSERT_TRUE(mismatched.ok());
  {
    common::ByteReader reader(bytes);
    EXPECT_FALSE(mismatched->RestoreCounts(reader).ok());
  }
  // Truncations fail without mutating the target.
  for (size_t len : {size_t{0}, bytes.size() / 3, bytes.size() - 1}) {
    auto target = DriftMonitor::Create(fx.plans);
    ASSERT_TRUE(target.ok());
    common::ByteReader reader(bytes.data(), len);
    EXPECT_FALSE(target->RestoreCounts(reader).ok()) << "prefix " << len;
    uint64_t observed = 0;
    for (const auto& channel : target->SnapshotReport().channels)
      observed += channel.count;
    EXPECT_EQ(observed, 0u) << "prefix " << len << " left a partial restore";
  }
}

}  // namespace
}  // namespace otfair::core
