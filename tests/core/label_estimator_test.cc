#include "core/label_estimator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/adult_like.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

TEST(LabelEstimatorTest, HighAccuracyOnSeparatedComponents) {
  // Well-separated means: near-perfect s-recovery expected.
  sim::GaussianSimConfig config = sim::GaussianSimConfig::PaperDefault();
  config.mean[0][0] = {-4.0, -4.0};
  config.mean[0][1] = {4.0, 4.0};
  config.mean[1][0] = {-4.0, 4.0};
  config.mean[1][1] = {4.0, -4.0};
  common::Rng rng(1);
  auto research = sim::SimulateGaussianMixture(1000, config, rng);
  auto archive = sim::SimulateGaussianMixture(3000, config, rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  auto estimator = LabelEstimator::Fit(*research);
  ASSERT_TRUE(estimator.ok());
  auto accuracy = estimator->AccuracyOn(*archive);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.98);
}

TEST(LabelEstimatorTest, PaperConfigBetterThanChanceAndPrior) {
  common::Rng rng(2);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(2000, config, rng);
  auto archive = sim::SimulateGaussianMixture(5000, config, rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  auto estimator = LabelEstimator::Fit(*research);
  ASSERT_TRUE(estimator.ok());
  auto accuracy = estimator->AccuracyOn(*archive);
  ASSERT_TRUE(accuracy.ok());
  // Components overlap (1 sigma apart at ~unit covariance), but estimates
  // should still beat the 70-90% majority prior marginally... at minimum
  // beat coin flipping decisively.
  EXPECT_GT(*accuracy, 0.7);
}

TEST(LabelEstimatorTest, EstimateUsesCorrectStratumModel) {
  // Stratum-dependent component geometry: a point classified as s=1 in
  // u=0 should classify as s=0 in u=1.
  sim::GaussianSimConfig config = sim::GaussianSimConfig::PaperDefault();
  config.mean[0][0] = {-3.0, 0.0};
  config.mean[0][1] = {3.0, 0.0};
  config.mean[1][0] = {3.0, 0.0};   // mirrored roles in u=1
  config.mean[1][1] = {-3.0, 0.0};
  config.pr_s0_given_u0 = 0.5;
  config.pr_s0_given_u1 = 0.5;
  common::Rng rng(3);
  auto research = sim::SimulateGaussianMixture(4000, config, rng);
  ASSERT_TRUE(research.ok());
  auto estimator = LabelEstimator::Fit(*research);
  ASSERT_TRUE(estimator.ok());
  EXPECT_EQ(estimator->EstimateOne(0, {3.0, 0.0}), 1);
  EXPECT_EQ(estimator->EstimateOne(1, {3.0, 0.0}), 0);
}

TEST(LabelEstimatorTest, WorksOnAdultLikeData) {
  common::Rng rng(4);
  auto research = data::GenerateAdultLike(5000, rng);
  auto archive = data::GenerateAdultLike(5000, rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  auto estimator = LabelEstimator::Fit(*research);
  ASSERT_TRUE(estimator.ok());
  auto accuracy = estimator->AccuracyOn(*archive);
  ASSERT_TRUE(accuracy.ok());
  // Age/hours only weakly separate the sexes: expect better than the
  // trivial 50% but no miracles (paper §VI flags exactly this difficulty).
  EXPECT_GT(*accuracy, 0.55);
}

TEST(LabelEstimatorTest, EstimateSMatchesEstimateOne) {
  common::Rng rng(5);
  auto research =
      sim::SimulateGaussianMixture(800, sim::GaussianSimConfig::PaperDefault(), rng);
  auto archive =
      sim::SimulateGaussianMixture(100, sim::GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  auto estimator = LabelEstimator::Fit(*research);
  ASSERT_TRUE(estimator.ok());
  auto labels = estimator->EstimateS(*archive);
  ASSERT_TRUE(labels.ok());
  ASSERT_EQ(labels->size(), archive->size());
  for (size_t i = 0; i < archive->size(); ++i) {
    EXPECT_EQ((*labels)[i], estimator->EstimateOne(archive->u(i), archive->Row(i)));
  }
}

TEST(LabelEstimatorTest, RejectsMissingStratum) {
  common::Matrix features = common::Matrix::FromRows({{0.0}, {1.0}});
  auto d = data::Dataset::Create(std::move(features), {0, 1}, {0, 0}, {"x"});
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(LabelEstimator::Fit(*d).ok());
}

TEST(LabelEstimatorTest, RejectsDimensionMismatch) {
  common::Rng rng(6);
  auto research =
      sim::SimulateGaussianMixture(200, sim::GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(research.ok());
  auto estimator = LabelEstimator::Fit(*research);
  ASSERT_TRUE(estimator.ok());
  common::Matrix features = common::Matrix::FromRows({{0.0}});
  auto wrong_dim = data::Dataset::Create(std::move(features), {0}, {0}, {"x"});
  ASSERT_TRUE(wrong_dim.ok());
  EXPECT_FALSE(estimator->EstimateS(*wrong_dim).ok());
}

}  // namespace
}  // namespace otfair::core
