#include "core/support_grid.h"

#include <gtest/gtest.h>

namespace otfair::core {
namespace {

TEST(SupportGridTest, EndpointsAndSpacing) {
  auto grid = SupportGrid::Create(0.0, 10.0, 11);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->size(), 11u);
  EXPECT_DOUBLE_EQ(grid->lo(), 0.0);
  EXPECT_DOUBLE_EQ(grid->hi(), 10.0);
  EXPECT_DOUBLE_EQ(grid->step(), 1.0);
  EXPECT_DOUBLE_EQ(grid->point(5), 5.0);
}

TEST(SupportGridTest, MatchesAlgorithmOneFormula) {
  // zeta_i = (nQ-i)/(nQ-1) * lo + (i-1)/(nQ-1) * hi for i = 1..nQ.
  const double lo = -2.0;
  const double hi = 3.0;
  const size_t nq = 7;
  auto grid = SupportGrid::Create(lo, hi, nq);
  ASSERT_TRUE(grid.ok());
  for (size_t i = 1; i <= nq; ++i) {
    const double fi = static_cast<double>(i);
    const double expected =
        (static_cast<double>(nq) - fi) / (nq - 1.0) * lo + (fi - 1.0) / (nq - 1.0) * hi;
    EXPECT_DOUBLE_EQ(grid->point(i - 1), expected);
  }
}

TEST(SupportGridTest, FromSamplesSpansRange) {
  auto grid = SupportGrid::FromSamples({3.0, -1.0, 2.0, 0.5}, 5);
  ASSERT_TRUE(grid.ok());
  EXPECT_DOUBLE_EQ(grid->lo(), -1.0);
  EXPECT_DOUBLE_EQ(grid->hi(), 3.0);
}

TEST(SupportGridTest, DegenerateRangeWidened) {
  auto grid = SupportGrid::FromSamples({5.0, 5.0, 5.0}, 4);
  ASSERT_TRUE(grid.ok());
  EXPECT_LT(grid->lo(), 5.0);
  EXPECT_GT(grid->hi(), 5.0);
  EXPECT_GT(grid->step(), 0.0);
}

TEST(SupportGridTest, LocateInteriorPoint) {
  auto grid = SupportGrid::Create(0.0, 10.0, 11);
  ASSERT_TRUE(grid.ok());
  const auto loc = grid->Locate(3.25);
  EXPECT_EQ(loc.lower, 3u);
  EXPECT_NEAR(loc.tau, 0.25, 1e-12);
  EXPECT_FALSE(loc.clamped);
}

TEST(SupportGridTest, LocateExactGridPointHasZeroTau) {
  auto grid = SupportGrid::Create(0.0, 10.0, 11);
  ASSERT_TRUE(grid.ok());
  const auto loc = grid->Locate(7.0);
  EXPECT_EQ(loc.lower, 7u);
  EXPECT_NEAR(loc.tau, 0.0, 1e-12);
}

TEST(SupportGridTest, LocateEndpoints) {
  auto grid = SupportGrid::Create(0.0, 10.0, 11);
  ASSERT_TRUE(grid.ok());
  const auto lo = grid->Locate(0.0);
  EXPECT_EQ(lo.lower, 0u);
  EXPECT_FALSE(lo.clamped);
  const auto hi = grid->Locate(10.0);
  EXPECT_EQ(hi.lower, 10u);
  EXPECT_DOUBLE_EQ(hi.tau, 0.0);
  EXPECT_FALSE(hi.clamped);
}

TEST(SupportGridTest, LocateClampsOutOfRange) {
  auto grid = SupportGrid::Create(0.0, 10.0, 11);
  ASSERT_TRUE(grid.ok());
  const auto below = grid->Locate(-3.0);
  EXPECT_TRUE(below.clamped);
  EXPECT_EQ(below.lower, 0u);
  const auto above = grid->Locate(42.0);
  EXPECT_TRUE(above.clamped);
  EXPECT_EQ(above.lower, 10u);
}

TEST(SupportGridTest, TauAlwaysInUnitInterval) {
  auto grid = SupportGrid::Create(-1.0, 1.0, 33);
  ASSERT_TRUE(grid.ok());
  for (double x = -1.5; x <= 1.5; x += 0.01) {
    const auto loc = grid->Locate(x);
    EXPECT_GE(loc.tau, 0.0);
    EXPECT_LE(loc.tau, 1.0);
    EXPECT_LT(loc.lower, grid->size());
  }
}

TEST(SupportGridTest, LocateConsistentWithPoints) {
  // Reconstruction: point(lower) + tau * step ~ x for interior x.
  auto grid = SupportGrid::Create(2.0, 8.0, 25);
  ASSERT_TRUE(grid.ok());
  for (double x : {2.3, 4.77, 6.123, 7.999}) {
    const auto loc = grid->Locate(x);
    EXPECT_NEAR(grid->point(loc.lower) + loc.tau * grid->step(), x, 1e-9);
  }
}

TEST(SupportGridTest, RejectsBadArguments) {
  EXPECT_FALSE(SupportGrid::Create(0.0, 1.0, 1).ok());
  EXPECT_FALSE(SupportGrid::Create(0.0, 1.0, 0).ok());
  EXPECT_FALSE(SupportGrid::FromSamples({}, 5).ok());
  EXPECT_FALSE(
      SupportGrid::Create(std::numeric_limits<double>::quiet_NaN(), 1.0, 5).ok());
}

}  // namespace
}  // namespace otfair::core
