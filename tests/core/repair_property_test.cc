// Parameterized property suite over the full repair pipeline: for every
// combination of support resolution, plan solver, transport mode and
// repair strength, the designed plans and repaired data must satisfy the
// method's structural invariants.

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "fairness/emetric.h"
#include "ot/solver.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

// (n_q, solver registry name, mode, strength, seed)
using ParamType = std::tuple<size_t, const char*, TransportMode, double, uint64_t>;

class RepairPropertyTest : public ::testing::TestWithParam<ParamType> {
 protected:
  void SetUp() override {
    const auto [n_q, solver, mode, strength, seed] = GetParam();
    common::Rng rng(seed);
    const auto config = sim::GaussianSimConfig::PaperDefault();
    auto research = sim::SimulateGaussianMixture(600, config, rng);
    auto archive = sim::SimulateGaussianMixture(2500, config, rng);
    ASSERT_TRUE(research.ok() && archive.ok());
    research_ = std::move(*research);
    archive_ = std::move(*archive);

    DesignOptions design;
    design.n_q = n_q;
    ot::SolverOptions solver_options;
    solver_options.sinkhorn.epsilon = 0.1;
    solver_options.sinkhorn.log_domain = true;
    auto backend = ot::MakeSolver(solver, solver_options);
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    design.solver = std::move(*backend);
    auto plans = DesignDistributionalRepair(research_, design);
    ASSERT_TRUE(plans.ok()) << plans.status().ToString();
    plans_ = std::move(*plans);

    RepairOptions repair;
    repair.mode = mode;
    repair.strength = strength;
    repair.seed = seed + 17;
    auto repairer = OffSampleRepairer::Create(plans_, repair);
    ASSERT_TRUE(repairer.ok()) << repairer.status().ToString();
    auto repaired = repairer->RepairDataset(archive_);
    ASSERT_TRUE(repaired.ok());
    repaired_ = std::move(*repaired);
  }

  data::Dataset research_;
  data::Dataset archive_;
  RepairPlanSet plans_;
  data::Dataset repaired_;
};

TEST_P(RepairPropertyTest, PlansSatisfyMarginalConstraints) {
  const std::string solver = std::get<1>(GetParam());
  // Sinkhorn plans meet the constraints approximately; exact solvers
  // tightly.
  const double tolerance = solver == "sinkhorn" ? 1e-4 : 1e-8;
  EXPECT_TRUE(plans_.Validate(tolerance).ok());
}

TEST_P(RepairPropertyTest, CardinalityAndLabelsPreserved) {
  EXPECT_EQ(repaired_.size(), archive_.size());
  EXPECT_EQ(repaired_.dim(), archive_.dim());
  for (size_t i = 0; i < archive_.size(); ++i) {
    EXPECT_EQ(repaired_.s(i), archive_.s(i));
    EXPECT_EQ(repaired_.u(i), archive_.u(i));
  }
}

TEST_P(RepairPropertyTest, RepairedValuesFiniteAndBounded) {
  const auto strength = std::get<3>(GetParam());
  for (size_t i = 0; i < repaired_.size(); ++i) {
    for (size_t k = 0; k < repaired_.dim(); ++k) {
      const double value = repaired_.feature(i, k);
      EXPECT_TRUE(std::isfinite(value));
      // Full-strength repairs land inside the plan grid; partial repairs
      // are convex combinations with the (possibly wider) input.
      const auto& grid = plans_.At(archive_.u(i), k).grid;
      const double lo =
          std::min(grid.lo(), archive_.feature(i, k)) - 1e-9;
      const double hi =
          std::max(grid.hi(), archive_.feature(i, k)) + 1e-9;
      EXPECT_GE(value, lo);
      EXPECT_LE(value, hi);
      if (strength == 0.0) {
        EXPECT_DOUBLE_EQ(value, archive_.feature(i, k));
      }
    }
  }
}

TEST_P(RepairPropertyTest, DependenceNeverIncreasesMaterially) {
  const auto strength = std::get<3>(GetParam());
  auto before = fairness::AggregateE(archive_);
  auto after = fairness::AggregateE(repaired_);
  ASSERT_TRUE(before.ok() && after.ok());
  if (strength == 0.0) {
    EXPECT_NEAR(*after, *before, 1e-9);
  } else if (strength == 1.0) {
    EXPECT_LT(*after, *before / 2.0);
  } else {
    EXPECT_LT(*after, (*before) * 1.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RepairPropertyTest,
    ::testing::Values(
        // n_q sweep, default solver/mode, full strength.
        ParamType{10, "monotone", TransportMode::kStochastic, 1.0, 1},
        ParamType{25, "monotone", TransportMode::kStochastic, 1.0, 2},
        ParamType{50, "monotone", TransportMode::kStochastic, 1.0, 3},
        ParamType{100, "monotone", TransportMode::kStochastic, 1.0, 4},
        // Solver sweep.
        ParamType{30, "exact", TransportMode::kStochastic, 1.0, 5},
        ParamType{30, "sinkhorn", TransportMode::kStochastic, 1.0, 6},
        // Mode sweep.
        ParamType{50, "monotone", TransportMode::kConditionalMean, 1.0, 7},
        ParamType{30, "exact", TransportMode::kConditionalMean, 1.0, 8},
        // Strength sweep.
        ParamType{50, "monotone", TransportMode::kStochastic, 0.0, 9},
        ParamType{50, "monotone", TransportMode::kStochastic, 0.5, 10},
        ParamType{50, "monotone", TransportMode::kConditionalMean, 0.5, 11}));

// Target-t sweep: the repaired archive must approach mu_{t-target}'s mean
// per stratum, for any t.
class TargetSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(TargetSweepTest, RepairedMeanTracksGeodesicTarget) {
  const double t = GetParam();
  common::Rng rng(100 + static_cast<uint64_t>(t * 100));
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(3000, config, rng);
  auto archive = sim::SimulateGaussianMixture(6000, config, rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  DesignOptions design;
  design.target_t = t;
  auto plans = DesignDistributionalRepair(*research, design);
  ASSERT_TRUE(plans.ok());
  RepairOptions repair;
  repair.seed = 5;
  auto repairer = OffSampleRepairer::Create(*plans, repair);
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(*archive);
  ASSERT_TRUE(repaired.ok());

  for (int u = 0; u <= 1; ++u) {
    // Expected target mean: (1 - t) mu_{u,0} + t mu_{u,1} (translation
    // family: geodesic interpolates means linearly).
    const double expected =
        (1.0 - t) * config.mean[u][0][0] + t * config.mean[u][1][0];
    const auto idx = repaired->UIndices(u);
    double acc = 0.0;
    for (size_t i : idx) acc += repaired->feature(i, 0);
    const double mean = acc / static_cast<double>(idx.size());
    EXPECT_NEAR(mean, expected, 0.15) << "u=" << u << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(TSweep, TargetSweepTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace otfair::core
