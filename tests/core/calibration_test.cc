#include "core/calibration.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/gaussian_mixture.h"

namespace otfair::core {
namespace {

data::Dataset Simulated(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  auto d = sim::SimulateGaussianMixture(n, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(SufficiencyTest, LargeResearchSetSufficient) {
  data::Dataset research = Simulated(4000, 1);
  auto verdict = CheckResearchSufficiency(research);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->sufficient) << "worst=" << verdict->worst_instability << " at "
                                   << verdict->worst_channel;
}

TEST(SufficiencyTest, TinyResearchSetInsufficient) {
  data::Dataset research = Simulated(60, 2);
  auto verdict = CheckResearchSufficiency(research);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->sufficient);
  EXPECT_GT(verdict->worst_instability, 0.05);
  EXPECT_FALSE(verdict->worst_channel.empty());
}

TEST(SufficiencyTest, InstabilityDecreasesWithData) {
  data::Dataset small = Simulated(150, 3);
  data::Dataset large = Simulated(6000, 3);
  auto v_small = CheckResearchSufficiency(small);
  auto v_large = CheckResearchSufficiency(large);
  ASSERT_TRUE(v_small.ok() && v_large.ok());
  EXPECT_GT(v_small->worst_instability, 2.0 * v_large->worst_instability);
}

TEST(SufficiencyTest, PerChannelVectorShape) {
  data::Dataset research = Simulated(1000, 4);
  auto verdict = CheckResearchSufficiency(research);
  ASSERT_TRUE(verdict.ok());
  // 2 u-strata x 2 s-classes x 2 features.
  EXPECT_EQ(verdict->instability.size(), 8u);
  for (double v : verdict->instability) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SufficiencyTest, DeterministicGivenSeed) {
  data::Dataset research = Simulated(500, 5);
  auto a = CheckResearchSufficiency(research);
  auto b = CheckResearchSufficiency(research);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->worst_instability, b->worst_instability);
}

TEST(SufficiencyTest, RejectsBadOptions) {
  data::Dataset research = Simulated(100, 6);
  SufficiencyOptions options;
  options.splits = 0;
  EXPECT_FALSE(CheckResearchSufficiency(research, options).ok());
  options.splits = 4;
  options.threshold = 0.0;
  EXPECT_FALSE(CheckResearchSufficiency(research, options).ok());
}

TEST(ResolutionTest, SelectsModerateResolutionForGaussians) {
  // The paper finds n_Q ~ 30 suffices for these channels; the automatic
  // rule should land in the same regime (within the doubling ladder).
  data::Dataset research = Simulated(1000, 7);
  auto n_q = SelectSupportResolution(research);
  ASSERT_TRUE(n_q.ok());
  EXPECT_GE(*n_q, 10u);
  EXPECT_LE(*n_q, 160u);
}

TEST(ResolutionTest, TighterToleranceNeedsMoreStates) {
  data::Dataset research = Simulated(1500, 8);
  ResolutionOptions loose;
  loose.tolerance = 0.05;
  ResolutionOptions tight;
  tight.tolerance = 0.002;
  auto coarse = SelectSupportResolution(research, loose);
  auto fine = SelectSupportResolution(research, tight);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  EXPECT_LE(*coarse, *fine);
}

TEST(ResolutionTest, RespectsBounds) {
  data::Dataset research = Simulated(500, 9);
  ResolutionOptions options;
  options.min_n_q = 8;
  options.max_n_q = 16;
  options.tolerance = 1e-9;  // never met -> capped at max
  auto n_q = SelectSupportResolution(research, options);
  ASSERT_TRUE(n_q.ok());
  EXPECT_EQ(*n_q, 16u);
}

TEST(ResolutionTest, RejectsBadOptions) {
  data::Dataset research = Simulated(200, 10);
  ResolutionOptions options;
  options.min_n_q = 1;
  EXPECT_FALSE(SelectSupportResolution(research, options).ok());
  options.min_n_q = 32;
  options.max_n_q = 16;
  EXPECT_FALSE(SelectSupportResolution(research, options).ok());
}

TEST(ResolutionTest, FailsCleanlyOnMissingGroup) {
  common::Matrix features = common::Matrix::FromRows({{0.0}, {1.0}, {2.0}, {3.0}});
  auto d = data::Dataset::Create(std::move(features), {1, 1, 1, 1}, {0, 0, 1, 1}, {"x"});
  ASSERT_TRUE(d.ok());
  auto n_q = SelectSupportResolution(*d);
  EXPECT_FALSE(n_q.ok());
}

}  // namespace
}  // namespace otfair::core
