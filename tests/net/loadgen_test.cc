// Loadgen contract tests: a clean run accounts for every row against the
// server's own counters, the synthetic workload is deterministic,
// backpressure shows up as per-row errors (never drops), and failure
// modes (unreachable server, bad options) are structured errors — not
// hangs.

#include "net/loadgen.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/repair_service.h"
#include "sim/gaussian_mixture.h"

namespace otfair::net {
namespace {

struct ServerUnderTest {
  core::RepairPlanSet plans;
  std::unique_ptr<serve::RepairService> service;
  std::unique_ptr<Server> server;
};

ServerUnderTest MakeServer(uint64_t seed, ServerOptions options = {}) {
  ServerUnderTest sut;
  common::Rng rng(seed);
  auto research =
      sim::SimulateGaussianMixture(800, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(research.ok());
  auto plans = core::DesignDistributionalRepair(*research, {});
  EXPECT_TRUE(plans.ok());
  sut.plans = std::move(*plans);
  auto service = serve::RepairService::Create(sut.plans, {});
  EXPECT_TRUE(service.ok());
  sut.service = std::move(*service);
  auto server = Server::Create(sut.service.get(), options);
  EXPECT_TRUE(server.ok());
  sut.server = std::move(*server);
  return sut;
}

TEST(LoadgenTest, CleanRunAccountsForEveryRow) {
  ServerOptions server_options;
  server_options.net_threads = 2;
  ServerUnderTest sut = MakeServer(41, server_options);

  LoadgenOptions options;
  options.port = sut.server->port();
  options.connections = 4;
  options.sessions = 8;
  options.rows_per_session = 200;
  options.window = 32;
  auto result = RunLoadgen(options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result->clean()) << result->first_error;
  EXPECT_EQ(result->rows_sent, 1600u);
  EXPECT_EQ(result->rows_ok, 1600u);
  EXPECT_EQ(result->rows_err, 0u);
  EXPECT_EQ(result->latency_samples, 1600u);
  EXPECT_GT(result->rows_per_sec, 0.0);
  EXPECT_GT(result->p50_us, 0.0);
  EXPECT_LE(result->p50_us, result->p99_us);
  EXPECT_LE(result->p99_us, result->max_us);

  // The server's own ledger agrees: every submitted row was repaired.
  EXPECT_EQ(sut.service->metrics().Snapshot().rows_repaired, 1600u);
}

TEST(LoadgenTest, WorkloadIsDeterministicAcrossRuns) {
  ServerUnderTest sut = MakeServer(42);
  LoadgenOptions options;
  options.port = sut.server->port();
  options.connections = 2;
  options.sessions = 4;
  options.rows_per_session = 100;
  auto first = RunLoadgen(options);
  auto second = RunLoadgen(options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_TRUE(first->clean() && second->clean());
  EXPECT_EQ(first->rows_sent, second->rows_sent);
  // Identical (seed, session, row) streams: the server saw the same 400
  // rows twice, so its repaired counter is exactly doubled.
  EXPECT_EQ(sut.service->metrics().Snapshot().rows_repaired, 800u);
}

TEST(LoadgenTest, BackpressureSurfacesAsRowErrorsNotDrops) {
  ServerOptions server_options;
  server_options.batcher.max_batch = 64;
  server_options.batcher.max_queue_depth = 2;
  ServerUnderTest sut = MakeServer(43, server_options);

  LoadgenOptions options;
  options.port = sut.server->port();
  options.connections = 2;
  options.rows_per_session = 400;
  options.window = 64;  // far outruns a queue depth of 2
  auto result = RunLoadgen(options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  // Every row is accounted for — rejected ones as explicit UNAVAILABLE
  // error lines, never silently dropped.
  EXPECT_EQ(result->rows_ok + result->rows_err, result->rows_sent);
  EXPECT_GT(result->rows_err, 0u);
  EXPECT_FALSE(result->clean());
  EXPECT_NE(result->first_error.find("UNAVAILABLE"), std::string::npos)
      << result->first_error;
}

TEST(LoadgenTest, DimMismatchFailsStructurallyNotSilently) {
  ServerUnderTest sut = MakeServer(44);
  LoadgenOptions options;
  options.port = sut.server->port();
  options.rows_per_session = 10;
  options.dim = 3;  // the served plan is dim 2
  auto result = RunLoadgen(options);
  // The server answers `err - -` (it cannot attribute a line it failed to
  // parse), which the loadgen reports as a run-level error.
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unattributable"), std::string::npos)
      << result.status().message();
}

TEST(LoadgenTest, ConnectFailureIsAnError) {
  // Bind then release an ephemeral port: connecting to it must be refused.
  uint16_t port = 0;
  {
    auto listener = ListenTcp("127.0.0.1", 0, 1, &port);
    ASSERT_TRUE(listener.ok());
  }
  LoadgenOptions options;
  options.port = port;
  options.rows_per_session = 1;
  auto result = RunLoadgen(options);
  EXPECT_FALSE(result.ok());
}

TEST(LoadgenTest, RejectsBadOptions) {
  LoadgenOptions options;
  options.port = 1;
  options.connections = 4;
  options.sessions = 2;  // fewer sessions than connections: no assignment
  EXPECT_FALSE(RunLoadgen(options).ok());
  options.sessions = 0;
  options.window = 0;
  EXPECT_FALSE(RunLoadgen(options).ok());
  options.window = 64;
  options.rows_per_session = 0;
  EXPECT_FALSE(RunLoadgen(options).ok());
}

TEST(LoadgenTest, SendVerbControlPlane) {
  ServerUnderTest sut = MakeServer(45);
  auto health = SendVerb("127.0.0.1", sut.server->port(), "health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->front(), '{');
  EXPECT_NE(health->find("\"plan_version\""), std::string::npos);

  auto prom = SendVerb("127.0.0.1", sut.server->port(), "metrics --prom");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("otfair_net_connections_accepted_total"), std::string::npos);
  EXPECT_NE(prom->find("# EOF\n"), std::string::npos);
}

TEST(LoadgenTest, ResultSerializationShapes) {
  LoadgenResult result;
  result.rows_sent = 10;
  result.rows_ok = 9;
  result.rows_err = 1;
  result.seconds = 0.5;
  result.rows_per_sec = 18.0;
  result.latency_samples = 10;
  result.p50_us = 100.0;
  result.p90_us = 200.0;
  result.p99_us = 300.0;
  result.max_us = 400.0;
  result.first_error = "err 0 3 UNAVAILABLE queue full";
  EXPECT_FALSE(result.clean());

  const std::string json = result.ToJson();
  for (const char* key : {"\"rows_sent\":10", "\"rows_ok\":9", "\"rows_err\":1",
                          "\"clean\":false", "\"p99_us\":", "\"first_error\":"})
    EXPECT_NE(json.find(key), std::string::npos) << json;

  // CSV row and header agree column-for-column.
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(LoadgenResult::CsvHeader()), commas(result.CsvRow()));
  EXPECT_EQ(result.CsvRow().rfind("10,9,1,", 0), 0u) << result.CsvRow();
}

}  // namespace
}  // namespace otfair::net
