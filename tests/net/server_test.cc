// Networked serving contract tests. The load-bearing ones:
//
//  - Line framing survives arbitrary packetization: a table of split
//    strategies (byte-at-a-time, adversarial mid-token cuts, CRLF,
//    many-lines-per-write) all yield the same response byte stream.
//  - Per-session TCP output is byte-identical to OffSampleRepairer batch
//    repair — with concurrent clients, at multiple worker counts, under
//    a reload storm (the network must not touch the determinism
//    contract).
//  - Backpressure answers every row: rejected submits become explicit
//    `err ... UNAVAILABLE` lines, nothing is dropped.
//  - Oversized or garbage input closes the connection after a sanitized
//    error line; malformed arguments to a known verb do not.
//  - Shutdown() drains: every row the server read is answered before the
//    connection closes.

#include "net/server.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "net/socket.h"
#include "serve/protocol.h"
#include "serve/repair_service.h"
#include "sim/gaussian_mixture.h"

namespace otfair::net {
namespace {

struct Fixture {
  data::Dataset research;
  data::Dataset archive;
  core::RepairPlanSet plans;
};

Fixture MakeFixture(uint64_t seed, size_t archive_rows = 400) {
  Fixture fx;
  common::Rng rng(seed);
  auto research =
      sim::SimulateGaussianMixture(800, sim::GaussianSimConfig::PaperDefault(), rng);
  auto archive = sim::SimulateGaussianMixture(
      archive_rows, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(research.ok() && archive.ok());
  fx.research = std::move(*research);
  fx.archive = std::move(*archive);
  auto plans = core::DesignDistributionalRepair(fx.research, {});
  EXPECT_TRUE(plans.ok());
  fx.plans = std::move(*plans);
  return fx;
}

/// The offline ground truth for one session: OffSampleRepairer batch
/// repair of the whole archive under the session's seed.
data::Dataset OfflineRepair(const Fixture& fx, const serve::RepairService& service,
                            uint64_t session) {
  core::RepairOptions options;
  options.seed = service.SessionSeed(session);
  options.threads = 1;
  auto repairer = core::OffSampleRepairer::Create(fx.plans, options);
  EXPECT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive);
  EXPECT_TRUE(repaired.ok());
  return std::move(*repaired);
}

/// One archive row as a protocol request line (%.17g features round-trip
/// bit-exact through the parser).
std::string RepairLine(const data::Dataset& archive, uint64_t session, size_t row) {
  std::string line = "repair " + std::to_string(session) + ' ' + std::to_string(row) +
                     ' ' + std::to_string(archive.u(row)) + ' ' +
                     std::to_string(archive.s(row));
  char buf[40];
  for (const double v : archive.Row(row)) {
    std::snprintf(buf, sizeof(buf), " %.17g", v);
    line += buf;
  }
  return line;
}

/// The exact response line stdio serve (and therefore TCP serve) must emit
/// for one offline-repaired row.
std::string ExpectedLine(const data::Dataset& offline, uint64_t session, size_t row) {
  serve::RowResponse response;
  response.session_id = session;
  response.row_index = row;
  response.repaired = offline.Row(row);
  return serve::FormatRowResponse(response);
}

struct NetFixture {
  Fixture fx;
  std::unique_ptr<serve::RepairService> service;
  std::unique_ptr<Server> server;
};

NetFixture MakeServer(uint64_t seed, ServerOptions options = {}, ServerHooks hooks = {},
                      size_t archive_rows = 400) {
  NetFixture nf;
  nf.fx = MakeFixture(seed, archive_rows);
  auto service = serve::RepairService::Create(nf.fx.plans, {});
  EXPECT_TRUE(service.ok());
  nf.service = std::move(*service);
  auto server = Server::Create(nf.service.get(), options, std::move(hooks));
  EXPECT_TRUE(server.ok());
  nf.server = std::move(*server);
  return nf;
}

/// Minimal blocking test client with a receive timeout (a server bug must
/// fail the test, not hang the suite).
class Client {
 public:
  explicit Client(uint16_t port) {
    auto sock = ConnectTcp("127.0.0.1", port);
    EXPECT_TRUE(sock.ok()) << sock.status().message();
    if (!sock.ok()) return;
    sock_ = std::move(*sock);
    timeval tv{30, 0};
    ::setsockopt(sock_.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    SetNoDelay(sock_.fd());
  }

  bool connected() const { return sock_.valid(); }

  bool SendAll(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(sock_.fd(), data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Sends `data` carved into the given chunk lengths (cycled), pausing
  /// between chunks so each arrives as its own read on the server side.
  bool SendSplit(const std::string& data, const std::vector<size_t>& chunks) {
    size_t off = 0;
    size_t i = 0;
    while (off < data.size()) {
      const size_t len = std::min(chunks[i % chunks.size()], data.size() - off);
      if (!SendAll(data.substr(off, len))) return false;
      off += len;
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    return true;
  }

  /// Half-close: tells the server this client is done sending, so it
  /// flushes everything owed and FINs back (ReadLine then drains to EOF).
  void FinishSending() { ::shutdown(sock_.fd(), SHUT_WR); }

  /// False on EOF or timeout; strips the '\n' (and any '\r').
  bool ReadLine(std::string* line) {
    while (true) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        while (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(sock_.fd(), chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True when the server has closed (no buffered bytes, recv sees EOF).
  bool AtEof() {
    if (!buf_.empty()) return false;
    char c;
    while (true) {
      const ssize_t n = ::recv(sock_.fd(), &c, 1, 0);
      if (n < 0 && errno == EINTR) continue;
      return n == 0;
    }
  }

 private:
  Socket sock_;
  std::string buf_;
};

// ---------------------------------------------------------------------------
// Framing: every packetization of the same bytes yields the same responses.

TEST(NetServerTest, FramingSurvivesArbitrarySplits) {
  NetFixture nf = MakeServer(21);
  const data::Dataset offline0 = OfflineRepair(nf.fx, *nf.service, 0);
  const data::Dataset offline1 = OfflineRepair(nf.fx, *nf.service, 1);

  // Two sessions interleaved; CRLF endings, a blank line, and an
  // interior empty CR line must all be tolerated.
  std::string payload;
  payload += RepairLine(nf.fx.archive, 0, 0) + "\n";
  payload += RepairLine(nf.fx.archive, 1, 0) + "\r\n";
  payload += "\n";
  payload += RepairLine(nf.fx.archive, 0, 1) + "\n";
  payload += "\r\n";
  payload += RepairLine(nf.fx.archive, 1, 1) + "\r\n";
  const std::vector<std::string> expected = {
      ExpectedLine(offline0, 0, 0),
      ExpectedLine(offline1, 1, 0),
      ExpectedLine(offline0, 0, 1),
      ExpectedLine(offline1, 1, 1),
  };

  struct SplitCase {
    const char* name;
    std::vector<size_t> chunks;  // cycled over the payload
  };
  const std::vector<SplitCase> cases = {
      {"whole payload in one write", {payload.size()}},
      {"byte at a time", {1}},
      {"two bytes", {2}},
      {"adversarial mid-token prime", {7}},
      {"adversarial mid-number prime", {13}},
      {"line and a half", {RepairLine(nf.fx.archive, 0, 0).size() + 30}},
      {"alternating tiny and large", {3, 64, 1, 128}},
  };

  for (const SplitCase& split : cases) {
    SCOPED_TRACE(split.name);
    Client client(nf.server->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendSplit(payload, split.chunks));
    client.FinishSending();
    std::string line;
    for (const std::string& want : expected) {
      ASSERT_TRUE(client.ReadLine(&line)) << "connection closed early";
      EXPECT_EQ(line, want);
    }
    EXPECT_TRUE(client.AtEof());
  }
}

// ---------------------------------------------------------------------------
// Robustness: oversize and garbage close, malformed known verbs do not.

TEST(NetServerTest, OversizedLineClosesWithSanitizedError) {
  NetFixture nf = MakeServer(22);
  struct OversizeCase {
    const char* name;
    bool with_newline;
  };
  for (const OversizeCase& c :
       {OversizeCase{"newline-terminated", true}, OversizeCase{"no newline yet", false}}) {
    SCOPED_TRACE(c.name);
    Client client(nf.server->port());
    ASSERT_TRUE(client.connected());
    // The cap must hold across split reads: the line arrives in many
    // chunks, and a newline-less prefix alone must trip it.
    std::string big(serve::kMaxRequestLineBytes + 64, 'x');
    if (c.with_newline) big += '\n';
    ASSERT_TRUE(client.SendAll(big));
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line.rfind("err - - INVALID_ARGUMENT", 0), 0u) << line;
    EXPECT_NE(line.find("exceeds"), std::string::npos) << line;
    EXPECT_TRUE(client.AtEof());
  }
}

TEST(NetServerTest, GarbageInputTable) {
  NetFixture nf = MakeServer(23);
  struct GarbageCase {
    const char* name;
    std::string input;
    bool closes;  // unknown verb / junk closes; known verb with bad args stays open
  };
  const std::vector<GarbageCase> cases = {
      {"unknown verb", "frobnicate 1 2\n", true},
      {"binary junk", std::string("\x01\x02\xfe\xff stuff\n"), true},
      {"http request", "GET / HTTP/1.1\n", true},
      {"repair with non-numeric row", "repair 0 zero 0 0 1.0 2.0\n", false},
      {"repair with missing features", "repair 0 0 0 0 1.0\n", false},
      {"repair with out-of-range label", "repair 0 0 9 0 1.0 2.0\n", false},
      {"repair with non-finite feature", "repair 0 0 0 0 nan 2.0\n", false},
      {"reload without a path", "reload\n", false},
  };
  for (const GarbageCase& c : cases) {
    SCOPED_TRACE(c.name);
    Client client(nf.server->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendAll(c.input));
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line.rfind("err - - ", 0), 0u) << line;
    // Sanitized: whatever came in, the error line is printable ASCII.
    for (const char ch : line)
      EXPECT_TRUE(ch >= 0x20 && ch < 0x7f) << c.name << ": raw byte in error line";
    if (c.closes) {
      EXPECT_TRUE(client.AtEof());
    } else {
      // The connection survives a malformed known verb: a well-formed
      // request right after must be answered.
      ASSERT_TRUE(client.SendAll("health\n"));
      ASSERT_TRUE(client.ReadLine(&line));
      EXPECT_EQ(line.front(), '{') << line;
    }
  }
}

// ---------------------------------------------------------------------------
// Backpressure: rejected submits become explicit UNAVAILABLE lines.

TEST(NetServerTest, BackpressureAnswersEveryRow) {
  ServerOptions options;
  options.batcher.max_batch = 64;
  options.batcher.max_queue_depth = 2;
  NetFixture nf = MakeServer(24, options);

  constexpr size_t kRows = 30;
  std::string payload;
  for (size_t row = 0; row < kRows; ++row)
    payload += RepairLine(nf.fx.archive, 0, row) + "\n";
  Client client(nf.server->port());
  ASSERT_TRUE(client.connected());
  // One write: the burst lands in (at most a few) reads, far outrunning a
  // queue depth of 2, so some rows must be rejected — and every single one
  // must still be answered.
  ASSERT_TRUE(client.SendAll(payload));
  client.FinishSending();

  std::vector<int> answered(kRows, 0);
  size_t ok_rows = 0;
  size_t unavailable_rows = 0;
  std::string line;
  while (client.ReadLine(&line)) {
    unsigned long long session = 99;
    unsigned long long row = 0;
    if (std::sscanf(line.c_str(), "ok %llu %llu", &session, &row) == 2) {
      ++ok_rows;
    } else {
      ASSERT_EQ(std::sscanf(line.c_str(), "err %llu %llu", &session, &row), 2) << line;
      EXPECT_NE(line.find("UNAVAILABLE"), std::string::npos) << line;
      ++unavailable_rows;
    }
    ASSERT_EQ(session, 0u);
    ASSERT_LT(row, kRows);
    ++answered[row];
  }
  EXPECT_EQ(ok_rows + unavailable_rows, kRows);
  EXPECT_GT(unavailable_rows, 0u) << "queue depth 2 never pushed back on a 30-row burst";
  for (size_t row = 0; row < kRows; ++row)
    EXPECT_EQ(answered[row], 1) << "row " << row << " answered " << answered[row]
                                << " times";
}

// ---------------------------------------------------------------------------
// Determinism: concurrent TCP clients == offline batch repair, bit for bit.

void RunTcpReplay(int net_threads, bool reload_storm) {
  ServerOptions options;
  options.net_threads = net_threads;
  NetFixture nf = MakeServer(25, options);
  constexpr uint64_t kClients = 4;
  constexpr uint64_t kSessionsPerClient = 2;
  constexpr uint64_t kSessions = kClients * kSessionsPerClient;
  const size_t rows = nf.fx.archive.size();

  std::atomic<bool> done{false};
  std::thread reloader;
  if (reload_storm) {
    reloader = std::thread([&] {
      // Same plan, new snapshot: output must not change, nothing may drop.
      while (!done.load()) {
        EXPECT_TRUE(nf.service->ReloadPlan(nf.fx.plans).ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  std::vector<std::string> got(kSessions * rows);
  std::atomic<uint64_t> malformed{0};
  std::atomic<uint64_t> short_streams{0};
  std::vector<std::thread> clients;
  for (uint64_t ci = 0; ci < kClients; ++ci) {
    clients.emplace_back([&, ci] {
      Client client(nf.server->port());
      if (!client.connected()) {
        short_streams.fetch_add(1);
        return;
      }
      // Each client owns kSessionsPerClient sessions and replays the
      // archive in its own shuffled order: determinism must not depend on
      // arrival order, interleaving, or which worker accepted us.
      common::Rng order_rng(700 + ci);
      const std::vector<size_t> order = order_rng.Permutation(rows);
      std::string payload;
      for (const size_t row : order)
        for (uint64_t j = 0; j < kSessionsPerClient; ++j)
          payload += RepairLine(nf.fx.archive, ci + j * kClients, row) + "\n";
      if (!client.SendAll(payload)) {
        short_streams.fetch_add(1);
        return;
      }
      client.FinishSending();
      uint64_t received = 0;
      std::string line;
      while (client.ReadLine(&line)) {
        unsigned long long session = 0;
        unsigned long long row = 0;
        if (std::sscanf(line.c_str(), "ok %llu %llu", &session, &row) != 2 ||
            session >= kSessions || row >= rows) {
          malformed.fetch_add(1);
          continue;
        }
        got[session * rows + row] = line;
        ++received;
      }
      if (received != kSessionsPerClient * rows) short_streams.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  done.store(true);
  if (reloader.joinable()) reloader.join();

  ASSERT_EQ(malformed.load(), 0u);
  ASSERT_EQ(short_streams.load(), 0u);
  for (uint64_t session = 0; session < kSessions; ++session) {
    const data::Dataset offline = OfflineRepair(nf.fx, *nf.service, session);
    for (size_t row = 0; row < rows; ++row) {
      ASSERT_EQ(got[session * rows + row], ExpectedLine(offline, session, row))
          << "session " << session << " row " << row;
    }
  }
  if (reload_storm) {
    EXPECT_GT(nf.service->plan_version(), 1u);
  }
}

TEST(NetServerTest, ConcurrentClientsMatchOfflineSingleWorker) {
  RunTcpReplay(/*net_threads=*/1, /*reload_storm=*/false);
}

TEST(NetServerTest, ConcurrentClientsMatchOfflineThreeWorkersUnderReloadStorm) {
  RunTcpReplay(/*net_threads=*/3, /*reload_storm=*/true);
}

// ---------------------------------------------------------------------------
// Control verbs over TCP.

TEST(NetServerTest, ControlVerbs) {
  NetFixture nf = MakeServer(26);
  Client client(nf.server->port());
  ASSERT_TRUE(client.connected());
  std::string line;

  ASSERT_TRUE(client.SendAll("health\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_NE(line.find("\"plan_version\":1"), std::string::npos) << line;

  ASSERT_TRUE(client.SendAll("metrics\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_NE(line.find("\"rows_repaired\""), std::string::npos) << line;

  // The one multi-line response: Prometheus exposition, "# EOF"-terminated,
  // carrying the net-layer counters registered on the service registry.
  ASSERT_TRUE(client.SendAll("metrics --prom\n"));
  std::string prom;
  while (true) {
    ASSERT_TRUE(client.ReadLine(&line));
    if (line == "# EOF") break;
    prom += line + "\n";
  }
  EXPECT_NE(prom.find("otfair_net_connections_accepted_total"), std::string::npos);
  EXPECT_NE(prom.find("otfair_net_active_connections"), std::string::npos);

  const std::string plan_path = testing::TempDir() + "/net_server_test_plan.bin";
  ASSERT_TRUE(nf.fx.plans.SaveToFile(plan_path).ok());
  ASSERT_TRUE(client.SendAll("reload " + plan_path + "\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "ok reload 2");

  // No checkpoint hook configured: the same FAILED_PRECONDITION stdio
  // serve gives.
  ASSERT_TRUE(client.SendAll("checkpoint\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line.rfind("err - - FAILED_PRECONDITION", 0), 0u) << line;

  ASSERT_TRUE(client.SendAll("quit\n"));
  EXPECT_TRUE(client.AtEof());
}

TEST(NetServerTest, CheckpointHookFlushesAndAcksGeneration) {
  std::atomic<int> checkpoints{0};
  ServerHooks hooks;
  hooks.checkpoint = [&]() -> common::Result<uint64_t> {
    checkpoints.fetch_add(1);
    return static_cast<uint64_t>(42);
  };
  NetFixture nf = MakeServer(27, {}, std::move(hooks));
  Client client(nf.server->port());
  ASSERT_TRUE(client.connected());
  // Rows submitted before the verb must be covered (the worker flushes its
  // micro-batch before acking), so their responses arrive before the ack.
  std::string payload;
  for (size_t row = 0; row < 5; ++row)
    payload += RepairLine(nf.fx.archive, 0, row) + "\n";
  payload += "checkpoint\n";
  ASSERT_TRUE(client.SendAll(payload));
  std::string line;
  for (size_t row = 0; row < 5; ++row) {
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line.rfind("ok 0 " + std::to_string(row), 0), 0u) << line;
  }
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "ok checkpoint 42");
  EXPECT_EQ(checkpoints.load(), 1);
}

TEST(NetServerTest, QuitDrainsThisConnectionOnly) {
  NetFixture nf = MakeServer(28);
  Client quitter(nf.server->port());
  ASSERT_TRUE(quitter.connected());
  // Everything before `quit` is answered; everything after it is not (the
  // connection is done), and the process keeps serving other clients.
  ASSERT_TRUE(
      quitter.SendAll(RepairLine(nf.fx.archive, 0, 0) + "\nquit\nhealth\n"));
  std::string line;
  ASSERT_TRUE(quitter.ReadLine(&line));
  EXPECT_EQ(line.rfind("ok 0 0 ", 0), 0u) << line;
  EXPECT_TRUE(quitter.AtEof());

  Client survivor(nf.server->port());
  ASSERT_TRUE(survivor.connected());
  ASSERT_TRUE(survivor.SendAll("health\n"));
  ASSERT_TRUE(survivor.ReadLine(&line));
  EXPECT_EQ(line.front(), '{');
}

// ---------------------------------------------------------------------------
// Limits and drain.

TEST(NetServerTest, ConnectionLimitRejectsWithUnavailable) {
  ServerOptions options;
  options.max_connections = 2;
  NetFixture nf = MakeServer(29, options);
  Client first(nf.server->port());
  Client second(nf.server->port());
  ASSERT_TRUE(first.connected() && second.connected());
  std::string line;
  // Round-trip both so they are registered before the third connects.
  ASSERT_TRUE(first.SendAll("health\n") && first.ReadLine(&line));
  ASSERT_TRUE(second.SendAll("health\n") && second.ReadLine(&line));

  Client third(nf.server->port());
  ASSERT_TRUE(third.connected());
  ASSERT_TRUE(third.ReadLine(&line));
  EXPECT_EQ(line.rfind("err - - UNAVAILABLE", 0), 0u) << line;
  EXPECT_TRUE(third.AtEof());

  // Existing connections are unaffected by the rejected accept.
  ASSERT_TRUE(first.SendAll("health\n") && first.ReadLine(&line));
  EXPECT_EQ(line.front(), '{');
}

TEST(NetServerTest, ShutdownDrainsPendingResponses) {
  ServerOptions options;
  options.net_threads = 2;
  NetFixture nf = MakeServer(30, options);
  constexpr size_t kRows = 200;
  const data::Dataset offline = OfflineRepair(nf.fx, *nf.service, 0);
  std::string payload;
  for (size_t row = 0; row < kRows; ++row)
    payload += RepairLine(nf.fx.archive, 0, row) + "\n";
  Client client(nf.server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendAll(payload));
  // Give the worker time to consume the burst, then drain: every row the
  // server read must be answered before the FIN.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  nf.server->Shutdown();
  EXPECT_EQ(nf.server->queue_depth(), 0u);
  std::string line;
  size_t received = 0;
  while (client.ReadLine(&line)) {
    unsigned long long session = 0;
    unsigned long long row = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "ok %llu %llu", &session, &row), 2) << line;
    ASSERT_LT(row, kRows);
    EXPECT_EQ(line, ExpectedLine(offline, 0, row));
    ++received;
  }
  EXPECT_EQ(received, kRows);
  EXPECT_TRUE(client.AtEof());
  nf.server->Shutdown();  // idempotent
}

TEST(NetServerTest, EphemeralPortIsResolvedAndServesOnAllWorkers) {
  ServerOptions options;
  options.net_threads = 3;
  NetFixture nf = MakeServer(31, options);
  ASSERT_GT(nf.server->port(), 0);
  // Many short-lived connections: wherever the kernel lands each accept,
  // the same port answers.
  for (int i = 0; i < 12; ++i) {
    Client client(nf.server->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendAll("health\n"));
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line.front(), '{');
  }
}

}  // namespace
}  // namespace otfair::net
