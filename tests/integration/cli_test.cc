// End-to-end test of the otfair CLI binary: exercises design -> inspect ->
// repair -> drift over real files, via std::system. The binary path is
// injected by CMake (OTFAIR_CLI_PATH).

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/adult_like.h"
#include "data/csv.h"
#include "fairness/emetric.h"
#include "net/socket.h"
#include "sim/gaussian_mixture.h"

#ifndef OTFAIR_CLI_PATH
#define OTFAIR_CLI_PATH "./tools/otfair"
#endif

namespace otfair {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per-process fixture paths: gtest_discover_tests runs every
    // TEST as its own ctest entry, so under `ctest -j` several CliTest
    // processes are alive at once and must not clobber each other's
    // files in the shared TempDir.
    dir_ = ::testing::TempDir() + "/otfair_cli_" + std::to_string(::getpid());
    ASSERT_EQ(std::system(("mkdir -p " + dir_).c_str()), 0);
    common::Rng rng(1);
    auto research = sim::SimulateGaussianMixture(
        800, sim::GaussianSimConfig::PaperDefault(), rng);
    auto archive = sim::SimulateGaussianMixture(
        3000, sim::GaussianSimConfig::PaperDefault(), rng);
    ASSERT_TRUE(research.ok() && archive.ok());
    research_path_ = dir_ + "/research.csv";
    archive_path_ = dir_ + "/archive.csv";
    plan_path_ = dir_ + "/plan.bin";
    repaired_path_ = dir_ + "/repaired.csv";
    ASSERT_TRUE(data::WriteCsv(*research, research_path_).ok());
    ASSERT_TRUE(data::WriteCsv(*archive, archive_path_).ok());
  }

  void TearDown() override {
    StopTcpServe();
    // Fixtures are per-pid (see SetUp); remove them so repeated ctest
    // runs don't accumulate garbage in the shared temp dir.
    if (!dir_.empty()) std::system(("rm -rf " + dir_).c_str());
  }

  /// Starts `serve --listen=0` on the designed plan in the background and
  /// returns the bound port (0 on failure). StopTcpServe / TearDown kill it.
  int StartTcpServe(const std::string& extra_flags = "") {
    const std::string port_file = dir_ + "/serve_port.txt";
    pid_file_ = dir_ + "/serve_pid.txt";
    std::remove(port_file.c_str());
    const std::string command = std::string(OTFAIR_CLI_PATH) + " serve --plan=" +
                                plan_path_ + " --listen=0 --port-file=" + port_file +
                                " " + extra_flags + " > /dev/null 2>&1 & echo $! > " +
                                pid_file_;
    if (std::system(command.c_str()) != 0) return 0;
    for (int i = 0; i < 200; ++i) {  // up to 10 s for design + bind
      if (std::FILE* f = std::fopen(port_file.c_str(), "r")) {
        int port = 0;
        const bool got = std::fscanf(f, "%d", &port) == 1 && port > 0;
        std::fclose(f);
        if (got) return port;
      }
      ::usleep(50 * 1000);
    }
    return 0;
  }

  void StopTcpServe() {
    if (pid_file_.empty()) return;
    std::system(("kill -TERM $(cat " + pid_file_ + ") > /dev/null 2>&1").c_str());
    pid_file_.clear();
  }

  int Run(const std::string& args) {
    const std::string command =
        std::string(OTFAIR_CLI_PATH) + " " + args + " > /dev/null 2>&1";
    const int status = std::system(command.c_str());
    return WEXITSTATUS(status);
  }

  /// Runs the CLI and captures stdout (stderr discarded); exit code via
  /// `exit_code`.
  std::string RunCapture(const std::string& args, int* exit_code = nullptr) {
    const std::string command = std::string(OTFAIR_CLI_PATH) + " " + args + " 2> /dev/null";
    std::FILE* pipe = ::popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    if (pipe == nullptr) {
      if (exit_code != nullptr) *exit_code = -1;
      return "";
    }
    std::string output;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) output.append(buffer, n);
    const int status = ::pclose(pipe);
    if (exit_code != nullptr) *exit_code = WEXITSTATUS(status);
    return output;
  }

  std::string dir_;
  std::string research_path_;
  std::string archive_path_;
  std::string plan_path_;
  std::string repaired_path_;
  std::string pid_file_;
};

/// Blocking one-connection exchange against a TCP serve: sends `payload`,
/// half-closes, and returns everything the server wrote until EOF.
std::string TcpExchange(int port, const std::string& payload) {
  auto sock = net::ConnectTcp("127.0.0.1", static_cast<uint16_t>(port));
  EXPECT_TRUE(sock.ok()) << sock.status().message();
  if (!sock.ok()) return "";
  timeval tv{30, 0};
  ::setsockopt(sock->fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n =
        ::send(sock->fd(), payload.data() + off, payload.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ADD_FAILURE() << "send failed: " << std::strerror(errno);
      return "";
    }
    off += static_cast<size_t>(n);
  }
  ::shutdown(sock->fd(), SHUT_WR);
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(sock->fd(), buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

/// The `ok ...` repair-response lines of a serve transcript, in order.
std::vector<std::string> OkLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(start, nl - start);
    if (line.rfind("ok ", 0) == 0) lines.push_back(line);
    start = nl + 1;
  }
  return lines;
}

TEST_F(CliTest, FullWorkflow) {
  // design
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_ +
                " --n_q=40"),
            0);
  // inspect plan and data
  EXPECT_EQ(Run("inspect --plan=" + plan_path_), 0);
  EXPECT_EQ(Run("inspect --data=" + archive_path_), 0);
  // repair (stochastic)
  ASSERT_EQ(Run("repair --plan=" + plan_path_ + " --input=" + archive_path_ +
                " --output=" + repaired_path_ + " --seed=9"),
            0);
  auto archive = data::ReadCsv(archive_path_);
  auto repaired = data::ReadCsv(repaired_path_);
  ASSERT_TRUE(archive.ok() && repaired.ok());
  EXPECT_EQ(repaired->size(), archive->size());
  auto e_before = fairness::AggregateE(*archive);
  auto e_after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(e_before.ok() && e_after.ok());
  EXPECT_LT(*e_after, *e_before / 3.0);
}

TEST_F(CliTest, EverySolverBackendReachable) {
  // Each registered backend designs a working plan through --solver, and
  // the repaired archive comes out fairer regardless of the backend.
  for (const std::string solver : {"monotone", "exact", "sinkhorn"}) {
    const std::string plan = dir_ + "/plan_" + solver + ".bin";
    const std::string out = dir_ + "/repaired_" + solver + ".csv";
    ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan +
                  " --n_q=30 --solver=" + solver + " --epsilon=0.1"),
              0)
        << solver;
    ASSERT_EQ(Run("repair --plan=" + plan + " --input=" + archive_path_ +
                  " --output=" + out + " --seed=11"),
              0)
        << solver;
    auto archive = data::ReadCsv(archive_path_);
    auto repaired = data::ReadCsv(out);
    ASSERT_TRUE(archive.ok() && repaired.ok());
    auto e_before = fairness::AggregateE(*archive);
    auto e_after = fairness::AggregateE(*repaired);
    ASSERT_TRUE(e_before.ok() && e_after.ok());
    EXPECT_LT(*e_after, *e_before / 2.0) << solver;
  }
  // Unknown backends fail with a clean error, not a crash.
  EXPECT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_ +
                " --solver=does-not-exist"),
            1);
}

TEST_F(CliTest, QuantileModeRepairs) {
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_), 0);
  ASSERT_EQ(Run("repair --plan=" + plan_path_ + " --input=" + archive_path_ +
                " --output=" + repaired_path_ + " --mode=quantile"),
            0);
  auto archive = data::ReadCsv(archive_path_);
  auto repaired = data::ReadCsv(repaired_path_);
  ASSERT_TRUE(archive.ok() && repaired.ok());
  auto e_before = fairness::AggregateE(*archive);
  auto e_after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(e_before.ok() && e_after.ok());
  EXPECT_LT(*e_after, *e_before / 3.0);
}

TEST_F(CliTest, EstimatedLabelsMode) {
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_), 0);
  EXPECT_EQ(Run("repair --plan=" + plan_path_ + " --input=" + archive_path_ +
                " --output=" + repaired_path_ +
                " --estimate_labels --research=" + research_path_),
            0);
}

TEST_F(CliTest, DriftExitCodes) {
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_), 0);
  // Stationary archive: exit 0.
  EXPECT_EQ(Run("drift --plan=" + plan_path_ + " --input=" + archive_path_), 0);
  // Shifted archive: exit 3 (the drift signal).
  common::Rng rng(2);
  sim::GaussianSimConfig shifted = sim::GaussianSimConfig::PaperDefault();
  for (int u = 0; u <= 1; ++u)
    for (int s = 0; s <= 1; ++s) shifted.mean[u][s][0] += 2.0;
  auto drifted = sim::SimulateGaussianMixture(3000, shifted, rng);
  ASSERT_TRUE(drifted.ok());
  const std::string drifted_path = dir_ + "/drifted.csv";
  ASSERT_TRUE(data::WriteCsv(*drifted, drifted_path).ok());
  EXPECT_EQ(Run("drift --plan=" + plan_path_ + " --input=" + drifted_path), 3);
  // A multi-group archive against a binary plan is an operational error
  // (exit 1), not a crash.
  const std::string multi_path = dir_ + "/drift_multi.csv";
  ASSERT_EQ(Run("simulate --out=" + multi_path + " --rows=500 --seed=7 --s-levels=4"), 0);
  EXPECT_EQ(Run("drift --plan=" + plan_path_ + " --input=" + multi_path), 1);
}

TEST_F(CliTest, BadInvocationsFailCleanly) {
  EXPECT_EQ(Run(""), 2);
  EXPECT_EQ(Run("unknown-command"), 2);
  EXPECT_EQ(Run("design --research=/nonexistent.csv --plan=" + plan_path_), 1);
  EXPECT_EQ(Run("repair --plan=/nonexistent.bin --input=" + archive_path_ +
                " --output=" + repaired_path_),
            1);
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_), 0);
  EXPECT_EQ(Run("repair --plan=" + plan_path_ + " --input=" + archive_path_ +
                " --output=" + repaired_path_ + " --mode=bogus"),
            2);
}

TEST_F(CliTest, UsageAndPerCommandHelp) {
  // Top-level help exits 0 and lists every subcommand.
  int exit_code = -1;
  const std::string usage = RunCapture("--help", &exit_code);
  EXPECT_EQ(exit_code, 0);
  for (const std::string command :
       {"design", "repair", "serve", "inspect", "drift", "simulate"}) {
    EXPECT_NE(usage.find(command), std::string::npos) << command;
  }
  // Per-command --help exits 0 and names the command's flags.
  const std::string serve_help = RunCapture("serve --help", &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(serve_help.find("--replay"), std::string::npos);
  EXPECT_NE(serve_help.find("--max_batch"), std::string::npos);
  EXPECT_EQ(RunCapture("design --help", &exit_code).find("usage: otfair design"), 0u);
  EXPECT_EQ(exit_code, 0);
  // Unknown commands and missing required flags exit 2.
  EXPECT_EQ(Run("not-a-command"), 2);
  EXPECT_EQ(Run("serve"), 2);
  EXPECT_EQ(Run("simulate"), 2);
}

TEST_F(CliTest, JsonOutputs) {
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_ +
                " --n_q=40"),
            0);
  int exit_code = -1;
  const std::string plan_json =
      RunCapture("inspect --plan=" + plan_path_ + " --json", &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_EQ(plan_json.front(), '{');
  EXPECT_NE(plan_json.find("\"kind\":\"plan\""), std::string::npos);
  EXPECT_NE(plan_json.find("\"channels\":["), std::string::npos);
  EXPECT_NE(plan_json.find("\"nnz\":"), std::string::npos);
  // Bench harnesses record which vector ISA actually ran from this key.
  EXPECT_NE(plan_json.find("\"simd_isa\":\""), std::string::npos);

  const std::string data_json =
      RunCapture("inspect --data=" + archive_path_ + " --json", &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(data_json.find("\"kind\":\"data\""), std::string::npos);
  EXPECT_NE(data_json.find("\"e_aggregate\":"), std::string::npos);

  // --no-simd forces the scalar table and the JSON reports it.
  const std::string scalar_json =
      RunCapture("inspect --plan=" + plan_path_ + " --json --no-simd", &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(scalar_json.find("\"simd_isa\":\"scalar\""), std::string::npos);

  const std::string drift_json = RunCapture(
      "drift --plan=" + plan_path_ + " --input=" + archive_path_ + " --json", &exit_code);
  EXPECT_EQ(exit_code, 0);  // stationary stream
  EXPECT_NE(drift_json.find("\"drifted\":false"), std::string::npos);
  EXPECT_NE(drift_json.find("\"worst_w1\":"), std::string::npos);
}

TEST_F(CliTest, SimulateGeneratesLoadableData) {
  const std::string sim_path = dir_ + "/sim.csv";
  ASSERT_EQ(Run("simulate --out=" + sim_path + " --rows=600 --seed=5"), 0);
  auto dataset = data::ReadCsv(sim_path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->size(), 600u);
  EXPECT_EQ(dataset->dim(), 2u);
  // The generated data designs a working plan.
  EXPECT_EQ(Run("design --research=" + sim_path + " --plan=" + dir_ + "/sim_plan.bin" +
                " --n_q=30"),
            0);
}

TEST_F(CliTest, ServeReplayHealthyAndDriftedExits) {
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_ +
                " --n_q=40"),
            0);
  // Stationary replay: exit 0, JSON metrics + health on stdout.
  int exit_code = -1;
  const std::string output = RunCapture("serve --plan=" + plan_path_ + " --replay=" +
                                            archive_path_ + " --sessions=2 --max_batch=64",
                                        &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(output.find("\"rows_repaired\":6000"), std::string::npos) << output;
  EXPECT_NE(output.find("\"healthy\":true"), std::string::npos) << output;
  // Drifted replay: exit 3.
  const std::string drifted_path = dir_ + "/serve_drifted.csv";
  ASSERT_EQ(Run("simulate --out=" + drifted_path + " --rows=3000 --seed=6 --shift=2.5"),
            0);
  EXPECT_EQ(Run("serve --plan=" + plan_path_ + " --replay=" + drifted_path +
                " --sessions=1"),
            3);
}

TEST_F(CliTest, ServeStdioProtocolRoundTrip) {
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_ +
                " --n_q=40"),
            0);
  const std::string input_path = dir_ + "/serve_input.txt";
  std::FILE* f = std::fopen(input_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "repair 0 0 0 1 0.5 -0.5\n"
      "health\n"
      "bogus-verb\n"
      "quit\n",
      f);
  std::fclose(f);
  int exit_code = -1;
  const std::string output = RunCapture(
      "serve --plan=" + plan_path_ + " --max_wait_us=100 < " + input_path, &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(output.find("ok 0 0 "), std::string::npos) << output;
  EXPECT_NE(output.find("\"plan_version\":1"), std::string::npos) << output;
  EXPECT_NE(output.find("err - - INVALID_ARGUMENT"), std::string::npos) << output;
}

TEST_F(CliTest, ServeListenAndReplayAreMutuallyExclusive) {
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_ +
                " --n_q=40"),
            0);
  EXPECT_EQ(Run("serve --plan=" + plan_path_ + " --listen=0 --replay=" + archive_path_),
            2);
  // Loadgen without a port is the same class of usage error.
  EXPECT_EQ(Run("loadgen"), 2);
}

TEST_F(CliTest, InspectJsonReportsNetworkServing) {
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_ +
                " --n_q=40"),
            0);
  int exit_code = -1;
  const std::string json =
      RunCapture("inspect --plan=" + plan_path_ + " --json", &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(json.find("\"net_available\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"net_listen\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"line_cap_bytes\":65536"), std::string::npos) << json;
}

TEST_F(CliTest, ServeTcpMatchesStdioServeByteForByte) {
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_ +
                " --n_q=40"),
            0);
  // The same request stream through both front ends. Values are arbitrary;
  // both paths parse the identical bytes, so the %.17g responses must be
  // byte-identical line for line.
  const std::vector<std::string> requests = {
      "repair 0 0 0 1 0.5 -0.5",     "repair 3 0 1 0 1.25 0.75",
      "repair 0 1 0 0 -2.5 0.125",   "repair 3 1 1 1 3.5 -1.75",
      "repair 0 2 1 1 0.0078125 42.5", "repair 3 2 0 0 -0.375 7.0",
  };
  std::string payload;
  for (const std::string& request : requests) payload += request + "\n";

  const std::string input_path = dir_ + "/tcp_vs_stdio_input.txt";
  std::FILE* f = std::fopen(input_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs((payload + "quit\n").c_str(), f);
  std::fclose(f);
  int exit_code = -1;
  const std::string stdio_output = RunCapture(
      "serve --plan=" + plan_path_ + " --max_wait_us=100 < " + input_path, &exit_code);
  EXPECT_EQ(exit_code, 0);
  const std::vector<std::string> stdio_lines = OkLines(stdio_output);
  ASSERT_EQ(stdio_lines.size(), requests.size());

  const int port = StartTcpServe("--net-threads=2");
  ASSERT_GT(port, 0);
  const std::vector<std::string> tcp_lines = OkLines(TcpExchange(port, payload));
  EXPECT_EQ(tcp_lines, stdio_lines);
  StopTcpServe();
}

TEST_F(CliTest, ServeTcpDrainsToExitZeroOnSigterm) {
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_ +
                " --n_q=40"),
            0);
  // One shell: background the server, wait for the bound-port file, send
  // SIGTERM, and propagate the server's own exit code through `wait`.
  const std::string port_file = dir_ + "/drain_port.txt";
  const std::string command =
      std::string(OTFAIR_CLI_PATH) + " serve --plan=" + plan_path_ +
      " --listen=0 --port-file=" + port_file + " > /dev/null 2>&1 & pid=$!; i=0;" +
      " while [ ! -s " + port_file + " ] && [ $i -lt 200 ]; do sleep 0.05; i=$((i+1));" +
      " done; kill -TERM $pid; wait $pid";
  const int status = std::system(command.c_str());
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST_F(CliTest, LoadgenEndToEndAgainstServeTcp) {
  ASSERT_EQ(Run("design --research=" + research_path_ + " --plan=" + plan_path_ +
                " --n_q=40"),
            0);
  const int port = StartTcpServe("--net-threads=2");
  ASSERT_GT(port, 0);
  const std::string port_flag = " --port=" + std::to_string(port);

  const std::string json_path = dir_ + "/loadgen.json";
  const std::string csv_path = dir_ + "/loadgen.csv";
  ASSERT_EQ(Run("loadgen" + port_flag +
                " --connections=4 --sessions=8 --rows=200 --json=" + json_path +
                " --csv=" + csv_path),
            0);
  int exit_code = -1;
  const std::string json = ReadFileOrEmpty(json_path);
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rows_ok\":1600"), std::string::npos) << json;

  // Control mode reaches the same server; the exposition carries the
  // net-layer counters.
  const std::string prom =
      RunCapture("loadgen" + port_flag + " --verb='metrics --prom'", &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(prom.find("otfair_net_connections_accepted_total"), std::string::npos);
  EXPECT_NE(prom.find("# EOF"), std::string::npos);

  // A second run appends one CSV row under the same header.
  ASSERT_EQ(Run("loadgen" + port_flag + " --connections=2 --rows=50 --csv=" + csv_path),
            0);
  const std::string csv = ReadFileOrEmpty(csv_path);
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 3) << csv;
  EXPECT_EQ(csv.rfind("rows_sent,", 0), 0u) << csv;
  StopTcpServe();
}

}  // namespace
}  // namespace otfair
