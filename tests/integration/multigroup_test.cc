// Multi-group (K-valued S/U) end-to-end property suite: the pipeline the
// binary paper formulation generalizes into. Exercises design -> repair ->
// serve -> drift across |S| > 2, |U| != 2 datasets, plus the multi-group
// behaviour of the fairness metrics, the geometric baseline, the quantile
// (Monge) repairer, the label estimator and the plan artifact.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "core/drift_monitor.h"
#include "core/geometric.h"
#include "core/label_estimator.h"
#include "core/pipeline.h"
#include "core/quantile_repair.h"
#include "core/repair_plan.h"
#include "core/repairer.h"
#include "fairness/emetric.h"
#include "serve/repair_service.h"
#include "sim/gaussian_mixture.h"

namespace otfair {
namespace {

data::Dataset Simulate(size_t n, size_t s_levels, size_t u_levels, uint64_t seed,
                       double shift = 0.0) {
  sim::MultiGroupSimConfig config = sim::MultiGroupSimConfig::Default(s_levels, u_levels);
  for (auto& stratum : config.mean)
    for (auto& component : stratum)
      for (double& m : component) m += shift;
  common::Rng rng(seed);
  auto dataset = sim::SimulateMultiGroupGaussian(n, config, rng);
  EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
  return *dataset;
}

core::RepairPlanSet Design(const data::Dataset& research, size_t n_q = 40) {
  core::DesignOptions options;
  options.n_q = n_q;
  auto plans = core::DesignDistributionalRepair(research, options);
  EXPECT_TRUE(plans.ok()) << plans.status().ToString();
  return *plans;
}

TEST(MultiGroupTest, DesignCarriesLevelsAndValidates) {
  data::Dataset research = Simulate(3000, 4, 3, 1);
  EXPECT_EQ(research.s_levels(), 4u);
  EXPECT_EQ(research.u_levels(), 3u);
  core::RepairPlanSet plans = Design(research);
  EXPECT_EQ(plans.s_levels(), 4u);
  EXPECT_EQ(plans.u_levels(), 3u);
  ASSERT_EQ(plans.lambdas().size(), 4u);
  for (double l : plans.lambdas()) EXPECT_DOUBLE_EQ(l, 0.25);
  EXPECT_TRUE(plans.Validate(1e-5).ok());
  // Every (u, k) channel carries |S| marginals and plans.
  for (size_t u = 0; u < 3; ++u) {
    for (size_t k = 0; k < plans.dim(); ++k)
      EXPECT_EQ(plans.At(static_cast<int>(u), k).s_levels(), 4u);
  }
}

TEST(MultiGroupTest, StochasticRepairQuenchesKGroupDependence) {
  data::Dataset research = Simulate(4000, 4, 3, 2);
  data::Dataset archive = Simulate(12000, 4, 3, 3);
  auto repairer = core::OffSampleRepairer::Create(Design(research), {});
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(archive);
  ASSERT_TRUE(repaired.ok());
  auto e_before = fairness::AggregateE(archive);
  auto e_after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(e_before.ok() && e_after.ok());
  // Max-over-pairs E collapses: the K-group repair must quench the
  // worst class pair, not just an average.
  EXPECT_LT(*e_after, *e_before / 10.0);
}

TEST(MultiGroupTest, RepairRejectsOutOfRangeLabels) {
  data::Dataset research = Simulate(2000, 3, 2, 4);
  auto repairer = core::OffSampleRepairer::Create(Design(research), {});
  ASSERT_TRUE(repairer.ok());
  data::Dataset archive = Simulate(50, 3, 2, 5);
  std::vector<int> labels(archive.size(), 0);
  labels[0] = 3;  // beyond |S| = 3
  EXPECT_FALSE(repairer->RepairDatasetWithLabels(archive, labels).ok());
  labels[0] = -1;
  EXPECT_FALSE(repairer->RepairDatasetWithLabels(archive, labels).ok());
  // A 4-level archive cannot ride through a 3-level plan.
  data::Dataset wide = Simulate(50, 4, 2, 6);
  EXPECT_FALSE(repairer->RepairDataset(wide).ok());
}

TEST(MultiGroupTest, SoftRepairRequiresBinaryS) {
  data::Dataset research = Simulate(2000, 3, 2, 7);
  auto repairer = core::OffSampleRepairer::Create(Design(research), {});
  ASSERT_TRUE(repairer.ok());
  data::Dataset archive = Simulate(50, 3, 2, 8);
  std::vector<double> posteriors(archive.size(), 0.5);
  EXPECT_FALSE(repairer->RepairDatasetSoft(archive, posteriors).ok());
}

TEST(MultiGroupTest, PlanV3RoundTripPreservesLevelsAndValues) {
  data::Dataset research = Simulate(2500, 3, 2, 9);
  core::DesignOptions options;
  options.n_q = 32;
  options.lambdas = {0.2, 0.3, 0.5};
  auto plans = core::DesignDistributionalRepair(research, options);
  ASSERT_TRUE(plans.ok());
  const std::string path = ::testing::TempDir() + "/multigroup_v3.bin";
  ASSERT_TRUE(plans->SaveToFile(path).ok());
  auto loaded = core::RepairPlanSet::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->s_levels(), 3u);
  EXPECT_EQ(loaded->u_levels(), 2u);
  ASSERT_EQ(loaded->lambdas().size(), 3u);
  for (size_t s = 0; s < 3; ++s)
    EXPECT_DOUBLE_EQ(loaded->lambdas()[s], plans->lambdas()[s]);
  for (size_t u = 0; u < 2; ++u) {
    for (size_t k = 0; k < plans->dim(); ++k) {
      const core::ChannelPlan& a = plans->At(static_cast<int>(u), k);
      const core::ChannelPlan& b = loaded->At(static_cast<int>(u), k);
      // CSR plan payloads are raw bytes (bit-exact); measures
      // re-normalize on load, hence the 4-ulp comparison.
      for (size_t s = 0; s < 3; ++s) {
        EXPECT_EQ(a.plan[s].MaxAbsDiff(b.plan[s]), 0.0);
        for (size_t q = 0; q < a.grid.size(); ++q)
          EXPECT_DOUBLE_EQ(a.marginal[s].weight_at(q), b.marginal[s].weight_at(q));
      }
      for (size_t q = 0; q < a.grid.size(); ++q)
        EXPECT_DOUBLE_EQ(a.barycenter.weight_at(q), b.barycenter.weight_at(q));
    }
  }
}

TEST(MultiGroupTest, NonUniformLambdasPullTheBarycenter) {
  // With lambda concentrated on class 0, the repair target must sit near
  // class 0's conditional, so class 0 barely moves and the top class
  // moves a lot.
  data::Dataset research = Simulate(4000, 3, 2, 10);
  core::DesignOptions options;
  options.n_q = 40;
  options.lambdas = {1.0, 0.0, 0.0};
  auto plans = core::DesignDistributionalRepair(research, options);
  ASSERT_TRUE(plans.ok());
  for (size_t u = 0; u < 2; ++u) {
    for (size_t k = 0; k < plans->dim(); ++k) {
      const core::ChannelPlan& channel = plans->At(static_cast<int>(u), k);
      const double gap0 = std::fabs(channel.barycenter.Mean() - channel.marginal[0].Mean());
      const double gap2 = std::fabs(channel.barycenter.Mean() - channel.marginal[2].Mean());
      EXPECT_LT(gap0, 0.05);
      EXPECT_GT(gap2, 0.5);
    }
  }
}

TEST(MultiGroupTest, QuantileMapRepairerHandlesKGroups) {
  data::Dataset research = Simulate(4000, 4, 2, 11);
  data::Dataset archive = Simulate(8000, 4, 2, 12);
  auto repairer = core::QuantileMapRepairer::Create(Design(research), 1.0);
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(archive);
  ASSERT_TRUE(repaired.ok());
  auto e_before = fairness::AggregateE(archive);
  auto e_after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(e_before.ok() && e_after.ok());
  EXPECT_LT(*e_after, *e_before / 10.0);
  // The Monge map stays monotone within every (u, s, k) channel.
  for (int s = 0; s < 4; ++s) {
    double prev = repairer->RepairValue(0, s, 0, -3.0);
    for (double x = -2.9; x < 3.0; x += 0.1) {
      const double cur = repairer->RepairValue(0, s, 0, x);
      EXPECT_GE(cur, prev - 1e-12);
      prev = cur;
    }
  }
}

TEST(MultiGroupTest, GeometricRepairHandlesKGroups) {
  data::Dataset research = Simulate(4000, 3, 3, 13);
  auto repaired = core::GeometricRepairDataset(research, {});
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  auto e_before = fairness::AggregateE(research);
  auto e_after = fairness::AggregateE(*repaired);
  ASSERT_TRUE(e_before.ok() && e_after.ok());
  EXPECT_LT(*e_after, *e_before / 5.0);
}

TEST(MultiGroupTest, DriftMonitorShardsPerGroup) {
  data::Dataset research = Simulate(3000, 4, 2, 14);
  core::RepairPlanSet plans = Design(research);
  auto monitor = core::DriftMonitor::Create(plans);
  ASSERT_TRUE(monitor.ok());
  // Stationary stream: no drift across all |U| x |S| x d channels.
  data::Dataset stationary = Simulate(20000, 4, 2, 15);
  for (size_t i = 0; i < stationary.size(); ++i) {
    for (size_t k = 0; k < stationary.dim(); ++k)
      monitor->Observe(stationary.u(i), stationary.s(i), k, stationary.feature(i, k));
  }
  core::DriftReport report = monitor->Report();
  EXPECT_EQ(report.channels.size(), 4u * 2u * 2u);
  EXPECT_FALSE(report.drifted);
  // Shifted stream: drift must trip.
  monitor->Reset();
  data::Dataset drifted = Simulate(20000, 4, 2, 16, /*shift=*/2.0);
  for (size_t i = 0; i < drifted.size(); ++i) {
    for (size_t k = 0; k < drifted.dim(); ++k)
      monitor->Observe(drifted.u(i), drifted.s(i), k, drifted.feature(i, k));
  }
  EXPECT_TRUE(monitor->Report().drifted);
}

TEST(MultiGroupTest, LabelEstimatorRecoversKClasses) {
  data::Dataset research = Simulate(6000, 3, 2, 17);
  auto estimator = core::LabelEstimator::Fit(research);
  ASSERT_TRUE(estimator.ok()) << estimator.status().ToString();
  data::Dataset archive = Simulate(4000, 3, 2, 18);
  auto accuracy = estimator->AccuracyOn(archive);
  ASSERT_TRUE(accuracy.ok());
  // Three well-separated components: far better than the 1/3 chance rate.
  EXPECT_GT(*accuracy, 0.6);
  // Per-level posteriors form a distribution.
  const std::vector<double> post = estimator->PosteriorsFor(0, archive.Row(0));
  ASSERT_EQ(post.size(), 3u);
  double total = 0.0;
  for (double p : post) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MultiGroupTest, PipelineRunsEndToEnd) {
  data::Dataset research = Simulate(3000, 3, 2, 19);
  data::Dataset archive = Simulate(6000, 3, 2, 20);
  core::PipelineOptions options;
  options.design.n_q = 32;
  auto result = core::RunRepairPipeline(research, archive, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto e_after = fairness::AggregateE(result->repaired_archive);
  ASSERT_TRUE(e_after.ok());
  EXPECT_LT(*e_after, 0.2);
}

TEST(MultiGroupTest, ServeValidatesAndMatchesOfflineRepair) {
  data::Dataset research = Simulate(3000, 4, 3, 21);
  data::Dataset archive = Simulate(200, 4, 3, 22);
  core::RepairPlanSet plans = Design(research);
  serve::ServiceOptions service_options;
  auto service = serve::RepairService::Create(plans, service_options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ((*service)->s_levels(), 4u);
  EXPECT_EQ((*service)->u_levels(), 3u);

  // Offline twin: session 0 = the batch repairer under the base seed.
  core::RepairOptions repair_options;
  repair_options.seed = service_options.seed;
  auto offline = core::OffSampleRepairer::Create(plans, repair_options);
  ASSERT_TRUE(offline.ok());
  auto batch = offline->RepairDataset(archive);
  ASSERT_TRUE(batch.ok());

  for (size_t i = 0; i < archive.size(); ++i) {
    serve::RowRequest request;
    request.session_id = 0;
    request.row_index = i;
    request.u = archive.u(i);
    request.s = archive.s(i);
    request.features = archive.Row(i);
    serve::RowResponse response;
    ASSERT_TRUE((*service)->RepairRow(request, &response).ok());
    for (size_t k = 0; k < archive.dim(); ++k)
      EXPECT_EQ(response.repaired[k], batch->feature(i, k)) << "row " << i;
  }

  // Labels outside the plan's level grid are rejected per row.
  serve::RowRequest bad;
  bad.u = 3;  // |U| = 3 -> valid levels 0..2
  bad.s = 0;
  bad.features = archive.Row(0);
  serve::RowResponse response;
  EXPECT_FALSE((*service)->RepairRow(bad, &response).ok());
  bad.u = 0;
  bad.s = 4;  // |S| = 4 -> valid levels 0..3
  EXPECT_FALSE((*service)->RepairRow(bad, &response).ok());

  // Reloading with mismatched level counts is refused; matching ones work.
  data::Dataset binary_research = Simulate(2000, 2, 2, 23);
  EXPECT_FALSE((*service)->ReloadPlan(Design(binary_research)).ok());
  EXPECT_TRUE((*service)->ReloadPlan(Design(research)).ok());
  EXPECT_EQ((*service)->plan_version(), 2u);
}

}  // namespace
}  // namespace otfair
