// The self-healing serving loop, end to end and in-process: a stream that
// shifts mid-flight trips the drift monitor, the background redesigner
// rebuilds the plan from streaming quantile sketches (no raw-row
// retention) and hot-swaps it — zero dropped requests, no restart — and
// the paper's E-metric on service-repaired post-shift traffic lands back
// below threshold. This closes the loop the redesigner's internal W1 fit
// gate only proxies.

#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/rng.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "data/dataset.h"
#include "fairness/emetric.h"
#include "serve/redesigner.h"
#include "serve/repair_service.h"
#include "sim/gaussian_mixture.h"

namespace otfair {
namespace {

using Clock = std::chrono::steady_clock;

/// Shifts every feature of `dataset` by `shift`, keeping labels — the
/// mid-stream covariate shift of the acceptance scenario.
data::Dataset Shifted(const data::Dataset& dataset, double shift) {
  common::Matrix features(dataset.size(), dataset.dim());
  for (size_t i = 0; i < dataset.size(); ++i)
    for (size_t k = 0; k < dataset.dim(); ++k)
      features(i, k) = dataset.feature(i, k) + shift;
  auto shifted = data::Dataset::Create(std::move(features), dataset.s_labels(),
                                       dataset.u_labels(), dataset.feature_names());
  EXPECT_TRUE(shifted.ok());
  return std::move(*shifted);
}

/// Streams rows [begin, end) of `archive` through the service as session
/// `session`, asserting zero drops, and returns the repaired features.
/// `row_base` offsets the request row indices (default: the dataset row),
/// for continuing streams that recycle archive rows.
common::Matrix StreamRows(serve::RepairService* service, const data::Dataset& archive,
                          size_t begin, size_t end, uint64_t session = 0,
                          uint64_t row_base = static_cast<uint64_t>(-1)) {
  std::vector<serve::RowRequest> requests;
  requests.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    serve::RowRequest request;
    request.session_id = session;
    request.row_index = row_base == static_cast<uint64_t>(-1) ? i : row_base + (i - begin);
    request.u = archive.u(i);
    request.s = archive.s(i);
    request.features = archive.Row(i);
    requests.push_back(std::move(request));
  }
  std::vector<serve::RowResponse> responses;
  service->RepairBatch(requests.data(), requests.size(), &responses);
  common::Matrix repaired(end - begin, archive.dim());
  EXPECT_EQ(responses.size(), end - begin);
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].status.ok()) << "row " << begin + i << " dropped: "
                                          << responses[i].status;
    for (size_t k = 0; k < archive.dim(); ++k)
      repaired(i, k) = responses[i].repaired[k];
  }
  return repaired;
}

double EMetricOf(common::Matrix features, const data::Dataset& labels_from, size_t begin,
                 size_t end) {
  std::vector<int> s(labels_from.s_labels().begin() + static_cast<ptrdiff_t>(begin),
                     labels_from.s_labels().begin() + static_cast<ptrdiff_t>(end));
  std::vector<int> u(labels_from.u_labels().begin() + static_cast<ptrdiff_t>(begin),
                     labels_from.u_labels().begin() + static_cast<ptrdiff_t>(end));
  auto dataset = data::Dataset::Create(std::move(features), std::move(s), std::move(u),
                                       labels_from.feature_names());
  EXPECT_TRUE(dataset.ok());
  auto e = fairness::AggregateE(*dataset);
  EXPECT_TRUE(e.ok()) << e.status();
  return *e;
}

TEST(SelfHealIntegrationTest, MidStreamShiftConvergesBelowThresholdWithZeroDrops) {
  // Design on research data, then serve a stream whose distribution shifts
  // a third of the way in: rows [0, cut) match the design, rows [cut, n)
  // are shifted by +2 sigma in every channel.
  common::Rng rng(1);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(800, config, rng);
  auto archive = sim::SimulateGaussianMixture(9000, config, rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  auto plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(plans.ok());
  const size_t cut = 3000;
  const data::Dataset shifted = Shifted(*archive, 2.0);

  serve::ServiceOptions service_options;
  service_options.sketch_sample_every = 1;
  auto service = serve::RepairService::Create(*plans, service_options);
  ASSERT_TRUE(service.ok());
  serve::RedesignerOptions heal_options;
  heal_options.poll_interval_ms = 5;
  heal_options.backoff_initial_ms = 1;
  auto redesigner = serve::Redesigner::Create(service->get(), heal_options);
  ASSERT_TRUE(redesigner.ok());

  // Phase 1: pre-shift traffic. Healthy, no redesign.
  StreamRows(service->get(), *archive, 0, cut);
  EXPECT_FALSE((*service)->Health().drifted);
  EXPECT_EQ((*service)->plan_version(), 1u);

  // Phase 2: the shift hits. Keep streaming shifted traffic (row indices
  // keep counting, archive rows recycle) until the self-heal loop trips,
  // restarts its sketches, ripens them on the post-shift stream, redesigns
  // and hot-swaps — mid-stream, on the live service, with every row still
  // answered.
  size_t next = cut;
  const Clock::time_point deadline = Clock::now() + std::chrono::seconds(120);
  while ((*service)->plan_version() < 2 && Clock::now() < deadline) {
    const size_t src = next % shifted.size();
    const size_t end = std::min(src + 500, shifted.size());
    StreamRows(service->get(), shifted, src, end, /*session=*/0, /*row_base=*/next);
    next += end - src;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE((*service)->plan_version(), 2u)
      << "self-heal never reloaded; last error: " << (*redesigner)->last_error();

  // Phase 3: post-heal traffic — a fresh session replaying the shifted
  // tail. The redesigned plan serves it; drift must stay quiet and the
  // E-metric on the repaired rows must land back below threshold.
  const size_t tail_begin = cut;
  const common::Matrix healed = StreamRows((*service).get(), shifted, tail_begin,
                                           shifted.size(), /*session=*/1);
  const serve::ServiceHealth health = (*service)->Health();
  EXPECT_FALSE(health.drifted) << "worst_w1 " << health.worst_w1;
  EXPECT_FALSE(health.degraded);
  EXPECT_STREQ(health.state(), "healthy");

  // Zero drops across all phases: every accepted row was repaired.
  const serve::MetricsSnapshot metrics = (*service)->metrics().Snapshot();
  EXPECT_EQ(metrics.rows_invalid, 0u);
  EXPECT_EQ(metrics.rows_rejected, 0u);
  EXPECT_EQ(metrics.rows_repaired, metrics.rows_accepted);

  // The convergence claim, on the paper's own measure. A uniform shift
  // leaves the raw s|u dependence intact (~0.5), the STALE plan repairs
  // the shifted stream poorly, and the redesigned plan restores E to the
  // repaired regime (threshold 0.05; the seed design achieves ~0.006 on
  // in-distribution data).
  const double e_raw = EMetricOf(
      [&] {
        common::Matrix raw(shifted.size() - tail_begin, shifted.dim());
        for (size_t i = tail_begin; i < shifted.size(); ++i)
          for (size_t k = 0; k < shifted.dim(); ++k)
            raw(i - tail_begin, k) = shifted.feature(i, k);
        return raw;
      }(),
      shifted, tail_begin, shifted.size());
  core::RepairOptions stale_options;
  stale_options.seed = (*service)->SessionSeed(1);
  auto stale_repairer = core::OffSampleRepairer::Create(*plans, stale_options);
  ASSERT_TRUE(stale_repairer.ok());
  auto stale_repaired = stale_repairer->RepairDataset(shifted);
  ASSERT_TRUE(stale_repaired.ok());
  double e_stale = EMetricOf(
      [&] {
        common::Matrix stale(shifted.size() - tail_begin, shifted.dim());
        for (size_t i = tail_begin; i < shifted.size(); ++i)
          for (size_t k = 0; k < shifted.dim(); ++k)
            stale(i - tail_begin, k) = stale_repaired->feature(i, k);
        return stale;
      }(),
      shifted, tail_begin, shifted.size());
  const double e_healed = EMetricOf(healed, shifted, tail_begin, shifted.size());

  EXPECT_GT(e_raw, 0.3);          // the shift does not hide the unfairness
  EXPECT_LT(e_healed, 0.05);      // the acceptance threshold
  EXPECT_LT(e_healed, e_stale);   // strictly better than serving the stale plan
  EXPECT_LT(e_healed, e_raw / 5); // and a real repair, not a no-op

  (*redesigner)->Stop();
}

TEST(SelfHealIntegrationTest, InjectedFaultDegradesWithoutDroppingTraffic) {
  // The graceful-degradation acceptance: with redesign forced to fail,
  // the same shifted stream ends degraded-but-serving — every row
  // answered on the old snapshot, health says degraded, process alive.
  common::Rng rng(2);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(800, config, rng);
  auto archive = sim::SimulateGaussianMixture(4000, config, rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  auto plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(plans.ok());
  const data::Dataset shifted = Shifted(*archive, 2.0);

  serve::ServiceOptions service_options;
  service_options.sketch_sample_every = 1;
  service_options.faults = "redesign_throw";  // every attempt fails
  auto service = serve::RepairService::Create(*plans, service_options);
  ASSERT_TRUE(service.ok());
  serve::RedesignerOptions heal_options;
  heal_options.poll_interval_ms = 5;
  heal_options.max_retries = 2;
  heal_options.backoff_initial_ms = 1;
  heal_options.backoff_max_ms = 4;
  auto redesigner = serve::Redesigner::Create(service->get(), heal_options);
  ASSERT_TRUE(redesigner.ok());

  StreamRows(service->get(), shifted, 0, shifted.size());
  const Clock::time_point deadline = Clock::now() + std::chrono::seconds(30);
  while (!(*service)->degraded() && Clock::now() < deadline) {
    StreamRows(service->get(), shifted, 0, 200, /*session=*/7);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE((*service)->degraded());
  // Still serving, on the original plan, with nothing dropped.
  EXPECT_EQ((*service)->plan_version(), 1u);
  StreamRows(service->get(), shifted, 0, 100, /*session=*/8);
  const serve::MetricsSnapshot metrics = (*service)->metrics().Snapshot();
  EXPECT_EQ(metrics.rows_invalid, 0u);
  EXPECT_EQ(metrics.rows_rejected, 0u);
  EXPECT_EQ(metrics.rows_repaired, metrics.rows_accepted);
  EXPECT_STREQ((*service)->Health().state(), "degraded");
  (*redesigner)->Stop();
}

}  // namespace
}  // namespace otfair
