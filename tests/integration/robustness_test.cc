// Failure-injection and edge-regime tests: degenerate data, hostile
// inputs, extreme parameters. The library must fail loudly (Status) or
// degrade gracefully — never crash or emit NaN.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "core/pipeline.h"
#include "core/quantile_repair.h"
#include "core/repairer.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"

namespace otfair {
namespace {

using common::Matrix;
using common::Rng;

data::Dataset DatasetFromRows(const std::vector<std::vector<double>>& rows,
                              std::vector<int> s, std::vector<int> u) {
  std::vector<std::string> names;
  for (size_t k = 0; k < rows[0].size(); ++k) names.push_back("f" + std::to_string(k));
  auto d = data::Dataset::Create(Matrix::FromRows(rows), std::move(s), std::move(u), names);
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(RobustnessTest, ConstantFeatureChannelSurvivesPipeline) {
  // A channel where every research value is identical: the grid widens the
  // degenerate range, KDE falls back to a positive bandwidth, and repair
  // must stay finite.
  Rng rng(1);
  const size_t n = 400;
  Matrix features(n, 2);
  std::vector<int> s(n);
  std::vector<int> u(n);
  for (size_t i = 0; i < n; ++i) {
    s[i] = rng.Bernoulli(0.5) ? 1 : 0;
    u[i] = rng.Bernoulli(0.5) ? 1 : 0;
    features(i, 0) = 7.0;  // constant channel
    features(i, 1) = rng.Normal(s[i] * 1.0, 1.0);
  }
  auto research = data::Dataset::Create(std::move(features), s, u, {"const", "x"});
  ASSERT_TRUE(research.ok());

  auto plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(plans.ok()) << plans.status().ToString();
  auto repairer = core::OffSampleRepairer::Create(*plans, {});
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(*research);
  ASSERT_TRUE(repaired.ok());
  for (size_t i = 0; i < repaired->size(); ++i) {
    EXPECT_TRUE(std::isfinite(repaired->feature(i, 0)));
    // Constant channel: repaired values stay near the constant.
    EXPECT_NEAR(repaired->feature(i, 0), 7.0, 1.0);
  }
}

TEST(RobustnessTest, MinimalGroupSizesStillDesign) {
  // Exactly min_group_size rows in the smallest (u, s) cell.
  data::Dataset research = DatasetFromRows(
      {{0.0}, {0.5}, {1.0}, {1.5}, {2.0}, {2.5}, {3.0}, {3.5}},
      {0, 0, 1, 1, 0, 0, 1, 1}, {0, 0, 0, 0, 1, 1, 1, 1});
  auto plans = core::DesignDistributionalRepair(research, {});
  ASSERT_TRUE(plans.ok()) << plans.status().ToString();
  EXPECT_TRUE(plans->Validate(1e-6).ok());
}

TEST(RobustnessTest, ExtremeArchiveValuesClampedNotCrashed) {
  Rng rng(2);
  auto research = sim::SimulateGaussianMixture(
      500, sim::GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(research.ok());
  auto plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(plans.ok());
  auto repairer = core::OffSampleRepairer::Create(*plans, {});
  ASSERT_TRUE(repairer.ok());
  for (double x : {1e30, -1e30, 1e-300, std::numeric_limits<double>::max(),
                   std::numeric_limits<double>::lowest()}) {
    const double repaired = repairer->RepairValue(0, 0, 0, x);
    EXPECT_TRUE(std::isfinite(repaired)) << "x=" << x;
    const auto& grid = plans->At(0, 0).grid;
    EXPECT_GE(repaired, grid.lo());
    EXPECT_LE(repaired, grid.hi());
  }
  EXPECT_GT(repairer->stats().values_clamped, 0u);
}

TEST(RobustnessTest, QuantileMapHandlesExtremeValues) {
  Rng rng(3);
  auto research = sim::SimulateGaussianMixture(
      500, sim::GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(research.ok());
  auto plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(plans.ok());
  auto repairer = core::QuantileMapRepairer::Create(*plans);
  ASSERT_TRUE(repairer.ok());
  for (double x : {1e30, -1e30}) {
    EXPECT_TRUE(std::isfinite(repairer->RepairValue(1, 1, 1, x)));
  }
}

TEST(RobustnessTest, HeavilyImbalancedClassesRepairable) {
  // 95/5 class imbalance within strata: the minority conditional is
  // estimated from few points but the pipeline must hold.
  sim::GaussianSimConfig config = sim::GaussianSimConfig::PaperDefault();
  config.pr_s0_given_u0 = 0.05;
  config.pr_s0_given_u1 = 0.05;
  Rng rng(4);
  auto research = sim::SimulateGaussianMixture(2000, config, rng);
  auto archive = sim::SimulateGaussianMixture(4000, config, rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  auto result = core::RunRepairPipeline(*research, *archive, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto before = fairness::AggregateE(*archive);
  auto after = fairness::AggregateE(result->repaired_archive);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_LT(*after, *before);
}

TEST(RobustnessTest, HeavyTailedDataSurvives) {
  // Cauchy-ish research data (normal ratio): huge outliers stretch the
  // grid; design and repair must stay finite.
  Rng rng(5);
  const size_t n = 1000;
  Matrix features(n, 1);
  std::vector<int> s(n);
  std::vector<int> u(n);
  for (size_t i = 0; i < n; ++i) {
    s[i] = rng.Bernoulli(0.5) ? 1 : 0;
    u[i] = rng.Bernoulli(0.5) ? 1 : 0;
    double denom = rng.Normal();
    if (std::fabs(denom) < 1e-3) denom = 1e-3;
    features(i, 0) = s[i] + rng.Normal() / denom;
  }
  auto research = data::Dataset::Create(std::move(features), s, u, {"x"});
  ASSERT_TRUE(research.ok());
  auto plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(plans.ok()) << plans.status().ToString();
  auto repairer = core::OffSampleRepairer::Create(*plans, {});
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(*research);
  ASSERT_TRUE(repaired.ok());
  for (size_t i = 0; i < repaired->size(); ++i)
    EXPECT_TRUE(std::isfinite(repaired->feature(i, 0)));
}

TEST(RobustnessTest, SinglePointGroupsRejectedCleanly) {
  data::Dataset research = DatasetFromRows({{0.0}, {1.0}, {2.0}, {3.0}, {4.0}, {5.0}},
                                           {0, 1, 1, 0, 1, 1}, {0, 0, 0, 1, 1, 1});
  // (u=0, s=0) and (u=1, s=0) have one row each: below min_group_size.
  auto plans = core::DesignDistributionalRepair(research, {});
  EXPECT_FALSE(plans.ok());
  EXPECT_EQ(plans.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST(RobustnessTest, HugeNqOnTinyDataWellFormed) {
  // More grid states than research points: the interpolants oversample the
  // KDE, which must stay normalized and repairable.
  data::Dataset research = DatasetFromRows(
      {{0.0}, {1.0}, {2.0}, {3.0}, {0.5}, {1.5}, {2.5}, {3.5}},
      {0, 0, 1, 1, 0, 0, 1, 1}, {0, 0, 0, 0, 1, 1, 1, 1});
  core::DesignOptions options;
  options.n_q = 200;
  auto plans = core::DesignDistributionalRepair(research, options);
  ASSERT_TRUE(plans.ok());
  EXPECT_TRUE(plans->Validate(1e-6).ok());
  auto repairer = core::OffSampleRepairer::Create(*plans, {});
  ASSERT_TRUE(repairer.ok());
  EXPECT_TRUE(std::isfinite(repairer->RepairValue(0, 0, 0, 1.23)));
}

TEST(RobustnessTest, RepairerStatsConsistent) {
  Rng rng(6);
  auto research = sim::SimulateGaussianMixture(
      400, sim::GaussianSimConfig::PaperDefault(), rng);
  auto archive = sim::SimulateGaussianMixture(
      1000, sim::GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  auto plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(plans.ok());
  auto repairer = core::OffSampleRepairer::Create(*plans, {});
  ASSERT_TRUE(repairer.ok());
  (void)repairer->RepairDataset(*archive);
  const core::RepairStats& stats = repairer->stats();
  EXPECT_EQ(stats.values_repaired, archive->size() * archive->dim());
  EXPECT_LE(stats.values_clamped, stats.values_repaired);
  EXPECT_LE(stats.empty_row_fallbacks, stats.values_repaired);
}

}  // namespace
}  // namespace otfair
