// Crash/recovery chaos, in process: a serving process "dies" by dropping
// its service object with no drain — exactly what kill -9 leaves behind —
// and a new one recovers from the checkpoint directory. The contracts
// under test:
//
//  - the recovered process serves the same plan version bit-identically
//    (same repaired bytes for the same (session, row) requests);
//  - observed state (drift accumulators, channel sketches) resumes at the
//    last checkpoint — traffic after the final checkpoint is lost, and
//    nothing else;
//  - recovery falls back past a corrupt newest generation, and cold-starts
//    when nothing is intact — it never refuses to serve;
//  - a crash mid-self-heal-episode recovers and the redesigner converges
//    on the restored accumulators.
//
// The true kill -9 variant (separate processes, SIGKILL mid-replay) runs
// in tools/chaos_replay.sh / CI; these tests keep the same state machine
// deterministic and sanitizer-friendly.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/byte_io.h"
#include "common/file_util.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "core/designer.h"
#include "data/dataset.h"
#include "serve/checkpointer.h"
#include "serve/redesigner.h"
#include "serve/repair_service.h"
#include "sim/gaussian_mixture.h"

namespace otfair {
namespace {

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  // Wipe leftovers from a previous run so every test starts empty.
  if (DIR* handle = ::opendir(dir.c_str())) {
    while (const struct dirent* entry = ::readdir(handle)) {
      const std::string file = entry->d_name;
      if (file != "." && file != "..") ::unlink((dir + "/" + file).c_str());
    }
    ::closedir(handle);
  }
  return dir;
}

struct Fixture {
  data::Dataset research;
  data::Dataset archive;
  core::RepairPlanSet plans;
};

Fixture MakeFixture(uint64_t seed, size_t archive_rows = 2000) {
  Fixture fx;
  common::Rng rng(seed);
  auto research =
      sim::SimulateGaussianMixture(600, sim::GaussianSimConfig::PaperDefault(), rng);
  auto archive = sim::SimulateGaussianMixture(
      archive_rows, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(research.ok() && archive.ok());
  fx.research = std::move(*research);
  fx.archive = std::move(*archive);
  auto plans = core::DesignDistributionalRepair(fx.research, {});
  EXPECT_TRUE(plans.ok());
  fx.plans = std::move(*plans);
  return fx;
}

/// Streams rows [begin, end) as `session`, asserting zero drops; returns
/// the repaired features.
common::Matrix StreamRows(serve::RepairService* service, const data::Dataset& archive,
                          size_t begin, size_t end, uint64_t session = 0) {
  std::vector<serve::RowRequest> requests;
  requests.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    serve::RowRequest request;
    request.session_id = session;
    request.row_index = i;
    request.u = archive.u(i);
    request.s = archive.s(i);
    request.features = archive.Row(i);
    requests.push_back(std::move(request));
  }
  std::vector<serve::RowResponse> responses;
  service->RepairBatch(requests.data(), requests.size(), &responses);
  common::Matrix repaired(end - begin, archive.dim());
  EXPECT_EQ(responses.size(), end - begin);
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].status.ok()) << "row " << begin + i;
    for (size_t k = 0; k < archive.dim(); ++k) repaired(i, k) = responses[i].repaired[k];
  }
  return repaired;
}

/// Recovers a service from `dir` the way `otfair serve --recover` does:
/// the checkpoint's repair semantics and plan version override the base
/// options, observed state folds in, and the recovered generation is
/// surfaced through `out_generation`.
std::unique_ptr<serve::RepairService> Recover(const std::string& dir,
                                              serve::ServiceOptions base,
                                              uint64_t* out_generation = nullptr) {
  auto recovered = serve::RecoverNewestCheckpoint(dir);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  if (!recovered.ok()) return nullptr;
  serve::CheckpointData& data = recovered->data;
  base.seed = data.seed;
  base.mode = static_cast<core::TransportMode>(data.mode);
  base.strength = data.strength;
  base.sketch_sample_every = data.sketch_sample_every;
  base.initial_plan_version = data.plan_version;
  auto service = serve::RepairService::Create(std::move(data.plans), base);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  if (!service.ok()) return nullptr;
  EXPECT_TRUE(
      (*service)->RestoreObservedState(data.drift_counts, data.sketches).ok());
  (*service)->SetDegraded(data.degraded);
  (*service)->MarkRecovered(data.generation);
  if (out_generation != nullptr) *out_generation = data.generation;
  return std::move(*service);
}

uint64_t TotalSketchCount(const std::vector<stats::QuantileSketch>& sketches) {
  uint64_t total = 0;
  for (const auto& sketch : sketches) total += sketch.count();
  return total;
}

TEST(ChaosTest, CrashAfterCheckpointRecoversBitIdenticalServing) {
  Fixture fx = MakeFixture(1);
  const std::string dir = TempDirFor("chaos_bit_identical");
  serve::ServiceOptions options;
  options.seed = 4242;
  options.sketch_sample_every = 4;

  common::Matrix pre_crash(0, 0);
  uint64_t checkpoint_sketch_rows = 0;
  core::DriftReport checkpoint_drift;
  {
    auto service = serve::RepairService::Create(fx.plans, options);
    ASSERT_TRUE(service.ok());
    auto checkpointer = serve::Checkpointer::Create(
        service->get(), {dir, /*interval_ms=*/60000, /*keep=*/3});
    ASSERT_TRUE(checkpointer.ok());

    // Serve 1200 rows, checkpoint, serve 300 more (these are the rows a
    // real crash loses), record what a fresh session's repairs look like.
    StreamRows(service->get(), fx.archive, 0, 1200, /*session=*/0);
    ASSERT_TRUE((*checkpointer)->WriteNow().ok());
    checkpoint_sketch_rows = TotalSketchCount((*service)->SketchSnapshot());
    checkpoint_drift = (*service)->DriftSnapshot();
    StreamRows(service->get(), fx.archive, 1200, 1500, /*session=*/0);
    pre_crash = StreamRows(service->get(), fx.archive, 0, 400, /*session=*/9);
    // Crash: scope exit destroys the service with no drain and no final
    // checkpoint. (Checkpointer stops first, as its dtor would.)
  }

  uint64_t generation = 0;
  auto recovered = Recover(dir, serve::ServiceOptions{}, &generation);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(generation, 1u);

  // Same plan version, surfaced as recovered in health.
  const auto health = recovered->Health();
  EXPECT_EQ(health.plan_version, 1u);
  EXPECT_TRUE(health.recovered);
  EXPECT_EQ(health.recovered_generation, 1u);

  // Bit-identity: session 9's repairs come out byte-for-byte the same as
  // the pre-crash process produced them.
  const common::Matrix post = StreamRows(recovered.get(), fx.archive, 0, 400, 9);
  for (size_t i = 0; i < 400; ++i)
    for (size_t k = 0; k < fx.archive.dim(); ++k)
      ASSERT_EQ(post(i, k), pre_crash(i, k)) << "row " << i << " k " << k;

  // Observed state resumed at the checkpoint boundary: the session-9
  // probe rows above observed into the recovered accumulators, so
  // subtract them; what remains is exactly the checkpointed state — the
  // 300 post-checkpoint rows (and only those) were lost.
  const uint64_t probe_sketch_rows =
      400 / options.sketch_sample_every * fx.archive.dim();
  EXPECT_EQ(TotalSketchCount(recovered->SketchSnapshot()) - probe_sketch_rows,
            checkpoint_sketch_rows);
  const auto drift = recovered->DriftSnapshot();
  uint64_t checkpoint_values = 0;
  uint64_t recovered_values = 0;
  for (const auto& channel : checkpoint_drift.channels) checkpoint_values += channel.count;
  for (const auto& channel : drift.channels) recovered_values += channel.count;
  EXPECT_EQ(recovered_values, checkpoint_values + 400 * fx.archive.dim());
}

TEST(ChaosTest, RecoveryFallsBackPastTornNewestGeneration) {
  Fixture fx = MakeFixture(2);
  const std::string dir = TempDirFor("chaos_torn_newest");
  {
    auto service = serve::RepairService::Create(fx.plans, {});
    ASSERT_TRUE(service.ok());
    auto checkpointer =
        serve::Checkpointer::Create(service->get(), {dir, 60000, /*keep=*/3});
    ASSERT_TRUE(checkpointer.ok());
    StreamRows(service->get(), fx.archive, 0, 500);
    ASSERT_TRUE((*checkpointer)->WriteNow().ok());
    StreamRows(service->get(), fx.archive, 500, 1000);
    ASSERT_TRUE((*checkpointer)->WriteNow().ok());
  }
  // Tear generation 2 the way a crash mid-write would if the write were
  // not atomic (recovery must not trust the newest filename).
  const std::string newest = serve::CheckpointPath(dir, 2);
  auto bytes = common::ReadFileToString(newest);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(common::AtomicWriteFile(newest, bytes->substr(0, bytes->size() / 3)).ok());

  uint64_t generation = 0;
  auto recovered = Recover(dir, serve::ServiceOptions{}, &generation);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(generation, 1u);
  // And the recovered service still serves.
  StreamRows(recovered.get(), fx.archive, 0, 100);
}

TEST(ChaosTest, AllCorruptFallsBackToColdStart) {
  Fixture fx = MakeFixture(3);
  const std::string dir = TempDirFor("chaos_all_corrupt");
  ASSERT_TRUE(common::AtomicWriteFile(serve::CheckpointPath(dir, 1), "junk").ok());
  ASSERT_TRUE(
      common::AtomicWriteFile(serve::CheckpointPath(dir, 2), std::string(64, '\0')).ok());
  auto recovered = serve::RecoverNewestCheckpoint(dir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), common::StatusCode::kNotFound);
  // The cold-start path the CLI takes on kNotFound: plans from the plan
  // file, fresh state — serving is never refused.
  auto service = serve::RepairService::Create(fx.plans, {});
  ASSERT_TRUE(service.ok());
  StreamRows(service->get(), fx.archive, 0, 100);
  EXPECT_FALSE((*service)->Health().recovered);
}

TEST(ChaosTest, CheckpointDuringReloadRecoversAWholeVersion) {
  // Checkpoints race a stream of reloads; whatever generation lands last
  // must recover to a service whose plan and version are one coherent
  // pair (the version is the one the embedded plan was serving under).
  Fixture fx = MakeFixture(4);
  const std::string dir = TempDirFor("chaos_reload_race");
  uint64_t final_version = 0;
  {
    auto service = serve::RepairService::Create(fx.plans, {});
    ASSERT_TRUE(service.ok());
    auto checkpointer =
        serve::Checkpointer::Create(service->get(), {dir, 60000, /*keep=*/100});
    ASSERT_TRUE(checkpointer.ok());
    std::thread reloader([&] {
      for (int i = 0; i < 15; ++i) ASSERT_TRUE((*service)->ReloadPlan(fx.plans).ok());
    });
    for (int i = 0; i < 15; ++i) ASSERT_TRUE((*checkpointer)->WriteNow().ok());
    reloader.join();
    ASSERT_TRUE((*checkpointer)->WriteNow().ok());  // capture the final state
    final_version = (*service)->plan_version();
  }
  uint64_t generation = 0;
  auto recovered = Recover(dir, serve::ServiceOptions{}, &generation);
  ASSERT_NE(recovered, nullptr);
  // The final checkpoint ran after the last reload, so recovery serves
  // the last-writer version.
  EXPECT_EQ(recovered->plan_version(), final_version);
  StreamRows(recovered.get(), fx.archive, 0, 100);
}

TEST(ChaosTest, SelfHealConvergesAfterCrashMidEpisode) {
  // Drift trips, the redesigner opens an episode, and the process dies
  // before the redesign lands. The recovered process restores the tripped
  // drift accumulators, its own redesigner re-opens the episode, ripens
  // sketches on continuing post-shift traffic, and lands the redesign —
  // ending healthy with a bumped plan version.
  common::Rng rng(5);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(600, config, rng);
  auto archive = sim::SimulateGaussianMixture(6000, config, rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  auto plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(plans.ok());
  // The shifted stream (the same +2 sigma covariate shift the self-heal
  // acceptance test uses).
  common::Matrix shifted_features(archive->size(), archive->dim());
  for (size_t i = 0; i < archive->size(); ++i)
    for (size_t k = 0; k < archive->dim(); ++k)
      shifted_features(i, k) = archive->feature(i, k) + 2.0;
  auto shifted_result = data::Dataset::Create(std::move(shifted_features),
                                              archive->s_labels(), archive->u_labels(),
                                              archive->feature_names());
  ASSERT_TRUE(shifted_result.ok());
  const data::Dataset shifted = std::move(*shifted_result);

  const std::string dir = TempDirFor("chaos_mid_episode");
  serve::ServiceOptions options;
  options.sketch_sample_every = 1;

  serve::RedesignerOptions heal;
  heal.poll_interval_ms = 5;
  heal.backoff_initial_ms = 1;
  heal.cooldown_ms = 1;
  heal.min_channel_count = 64;
  // Long fresh-sketch wait: after the episode opens (sketches restarted),
  // the redesign blocks on post-drift samples. Phase 1 sends no more
  // traffic, so the episode deterministically stays open across the
  // checkpoint and the crash; phase 2's traffic ripens it.
  heal.fresh_sketch_wait_ms = 60000;

  {
    auto service = serve::RepairService::Create(*plans, options);
    ASSERT_TRUE(service.ok());
    auto redesigner = serve::Redesigner::Create(service->get(), heal);
    ASSERT_TRUE(redesigner.ok());
    auto checkpointer = serve::Checkpointer::Create(
        service->get(), {dir, 60000, /*keep=*/3}, redesigner->get());
    ASSERT_TRUE(checkpointer.ok());

    // Enough shifted traffic to trip the monitor, then wait for the
    // episode to open and checkpoint inside it.
    StreamRows(service->get(), shifted, 0, 2000);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!(*redesigner)->episode_open() &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE((*redesigner)->episode_open());
    ASSERT_TRUE((*checkpointer)->WriteNow().ok());
    (*redesigner)->Stop();  // a real crash would not stop it; Stop() only
                            // joins the thread so the scope exit is clean
  }

  // Recovery: the tripped drift accumulators must have survived the crash
  // — that is what lets the new process's redesigner re-open the episode.
  auto recovered = Recover(dir, options);
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(recovered->Health().drifted);
  auto redesigner = serve::Redesigner::Create(recovered.get(), heal);
  ASSERT_TRUE(redesigner.ok());

  // Keep streaming post-shift traffic until the heal lands.
  const uint64_t recovered_version = recovered->plan_version();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  size_t next = 2000;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto health = recovered->Health();
    if (!health.drifted && recovered->plan_version() > recovered_version) break;
    const size_t src = next % shifted.size();
    const size_t end = std::min(src + 500, shifted.size());
    StreamRows(recovered.get(), shifted, src, end);
    next += end - src;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  (*redesigner)->Stop();
  const auto health = recovered->Health();
  EXPECT_FALSE(health.drifted) << "self-heal did not converge after crash";
  EXPECT_GT(recovered->plan_version(), recovered_version);
  EXPECT_TRUE(health.recovered);
}

}  // namespace
}  // namespace otfair
