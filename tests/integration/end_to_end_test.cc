// Integration tests: the full Table-I / Table-II style flows, exercising
// designer + repairer + baselines + metrics + persistence together.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "core/geometric.h"
#include "core/pipeline.h"
#include "core/repairer.h"
#include "data/adult_like.h"
#include "data/csv.h"
#include "fairness/damage.h"
#include "fairness/disparate_impact.h"
#include "fairness/emetric.h"
#include "fairness/logistic.h"
#include "fairness/report.h"
#include "sim/gaussian_mixture.h"

namespace otfair {
namespace {

TEST(EndToEndTest, SimulatedStudyReproducesTableIOrdering) {
  // One draw of the paper's §V-A setting; orderings (not exact values)
  // must match Table I: None >> Distributional, Geometric <= Distributional
  // on research data, archive E above research E.
  common::Rng rng(1);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(500, config, rng);
  auto archive = sim::SimulateGaussianMixture(5000, config, rng);
  ASSERT_TRUE(research.ok() && archive.ok());

  auto result = core::RunRepairPipeline(*research, *archive, {});
  ASSERT_TRUE(result.ok());
  auto geometric = core::GeometricRepairDataset(*research, {});
  ASSERT_TRUE(geometric.ok());

  auto e_unrepaired_research = fairness::AggregateE(*research);
  auto e_unrepaired_archive = fairness::AggregateE(*archive);
  auto e_dist_research = fairness::AggregateE(result->repaired_research);
  auto e_dist_archive = fairness::AggregateE(result->repaired_archive);
  auto e_geom_research = fairness::AggregateE(*geometric);
  ASSERT_TRUE(e_unrepaired_research.ok() && e_unrepaired_archive.ok() &&
              e_dist_research.ok() && e_dist_archive.ok() && e_geom_research.ok());

  // Table I *shape* (see EXPERIMENTS.md: our KDE-based E estimator sits on
  // a scale ~10x below the paper's, but the reduction factors match):
  // unrepaired ~0.5; distributional research ~0.006 (~80x, paper ~83x);
  // archive ~0.04 (~12x, paper ~16x); geometric below distributional.
  EXPECT_GT(*e_unrepaired_research, 0.3);
  EXPECT_GT(*e_unrepaired_archive, 0.3);
  EXPECT_LT(*e_dist_research, *e_unrepaired_research / 20.0);
  EXPECT_LT(*e_dist_archive, *e_unrepaired_archive / 5.0);
  EXPECT_LT(*e_geom_research, *e_dist_research);
  EXPECT_LT(*e_dist_research, *e_dist_archive);
}

TEST(EndToEndTest, AdultLikeStudyReproducesTableIIOrdering) {
  common::Rng rng(2);
  auto research = data::GenerateAdultLike(4000, rng);
  auto archive = data::GenerateAdultLike(8000, rng, {.drift = 0.15});
  ASSERT_TRUE(research.ok() && archive.ok());

  core::PipelineOptions options;
  options.design.n_q = 250;
  auto result = core::RunRepairPipeline(*research, *archive, options);
  ASSERT_TRUE(result.ok());

  for (size_t k = 0; k < 2; ++k) {
    auto before_r = fairness::FeatureE(*research, k);
    auto after_r = fairness::FeatureE(result->repaired_research, k);
    auto before_a = fairness::FeatureE(*archive, k);
    auto after_a = fairness::FeatureE(result->repaired_archive, k);
    ASSERT_TRUE(before_r.ok() && after_r.ok() && before_a.ok() && after_a.ok());
    EXPECT_LT(*after_r, *before_r) << "feature " << k;
    EXPECT_LT(*after_a, *before_a) << "feature " << k;
  }
}

TEST(EndToEndTest, RepairImprovesDownstreamDisparateImpact) {
  // Train g on unrepaired vs repaired data; DI(u) of the repaired-model
  // predictions should move toward 1.
  common::Rng rng(3);
  auto research = data::GenerateAdultLike(6000, rng);
  auto archive = data::GenerateAdultLike(12000, rng);
  ASSERT_TRUE(research.ok() && archive.ok());

  auto result = core::RunRepairPipeline(*research, *archive, {});
  ASSERT_TRUE(result.ok());

  auto model_raw = fairness::LogisticRegression::FitDataset(*archive);
  auto model_fair = fairness::LogisticRegression::FitDataset(result->repaired_archive);
  ASSERT_TRUE(model_raw.ok() && model_fair.ok());

  double worst_raw = 1.0;
  double worst_fair = 1.0;
  for (int u = 0; u <= 1; ++u) {
    auto di_raw =
        fairness::DisparateImpact(*archive, model_raw->ClassifyDataset(*archive), u);
    auto di_fair = fairness::DisparateImpact(
        result->repaired_archive, model_fair->ClassifyDataset(result->repaired_archive), u);
    ASSERT_TRUE(di_raw.ok() && di_fair.ok());
    worst_raw = std::min(worst_raw, *di_raw);
    worst_fair = std::min(worst_fair, *di_fair);
  }
  EXPECT_GT(worst_fair, worst_raw);
}

TEST(EndToEndTest, DamageBoundedByFeatureScale) {
  common::Rng rng(4);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(600, config, rng);
  auto archive = sim::SimulateGaussianMixture(2000, config, rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  auto result = core::RunRepairPipeline(*research, *archive, {});
  ASSERT_TRUE(result.ok());
  auto damage = fairness::ComputeDamage(*archive, result->repaired_archive);
  ASSERT_TRUE(damage.ok());
  // Components are ~1 sigma apart; the repair should move points by
  // O(1 sigma), not more.
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_GT(damage->mean_abs_displacement[k], 0.0);
    EXPECT_LT(damage->mean_abs_displacement[k], 2.0);
  }
}

TEST(EndToEndTest, PlanShippedThroughFileRepairsIdentically) {
  // The deployment story: design at HQ, save the plan artifact, load at
  // the edge, and repair the stream there.
  common::Rng rng(5);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(500, config, rng);
  auto archive = sim::SimulateGaussianMixture(1000, config, rng);
  ASSERT_TRUE(research.ok() && archive.ok());

  auto plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(plans.ok());
  const std::string path = ::testing::TempDir() + "/e2e_plan.bin";
  ASSERT_TRUE(plans->SaveToFile(path).ok());
  auto loaded = core::RepairPlanSet::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());

  core::RepairOptions options;
  options.seed = 11;
  auto local = core::OffSampleRepairer::Create(*plans, options);
  auto remote = core::OffSampleRepairer::Create(*loaded, options);
  ASSERT_TRUE(local.ok() && remote.ok());
  auto a = local->RepairDataset(*archive);
  auto b = remote->RepairDataset(*archive);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < archive->size(); ++i)
    for (size_t k = 0; k < 2; ++k)
      EXPECT_DOUBLE_EQ(a->feature(i, k), b->feature(i, k));
}

TEST(EndToEndTest, CsvRoundTripThroughRepair) {
  common::Rng rng(6);
  auto dataset = data::GenerateAdultLike(800, rng);
  ASSERT_TRUE(dataset.ok());
  const std::string raw_path = ::testing::TempDir() + "/raw.csv";
  const std::string repaired_path = ::testing::TempDir() + "/repaired.csv";
  ASSERT_TRUE(data::WriteCsv(*dataset, raw_path).ok());
  auto loaded = data::ReadCsv(raw_path);
  ASSERT_TRUE(loaded.ok());

  common::Rng rng2(7);
  auto research = data::GenerateAdultLike(3000, rng2);
  ASSERT_TRUE(research.ok());
  auto plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(plans.ok());
  auto repairer = core::OffSampleRepairer::Create(*plans, {});
  ASSERT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(*loaded);
  ASSERT_TRUE(repaired.ok());
  ASSERT_TRUE(data::WriteCsv(*repaired, repaired_path).ok());
  auto reloaded = data::ReadCsv(repaired_path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->size(), dataset->size());
}

TEST(EndToEndTest, FairnessReportRenders) {
  common::Rng rng(8);
  auto dataset = data::GenerateAdultLike(2000, rng);
  ASSERT_TRUE(dataset.ok());
  auto report = fairness::MakeFairnessReport(*dataset);
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToString();
  EXPECT_NE(text.find("age"), std::string::npos);
  EXPECT_NE(text.find("hours_per_week"), std::string::npos);
  EXPECT_NE(text.find("E (aggregate)"), std::string::npos);
  EXPECT_EQ(report->rows, 2000u);
}

TEST(EndToEndTest, PartialRepairTradeoffMonotoneInStrength) {
  // The §VI trade-off: more strength -> fairer but more damage.
  common::Rng rng(9);
  const auto config = sim::GaussianSimConfig::PaperDefault();
  auto research = sim::SimulateGaussianMixture(800, config, rng);
  auto archive = sim::SimulateGaussianMixture(4000, config, rng);
  ASSERT_TRUE(research.ok() && archive.ok());
  auto plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(plans.ok());

  double prev_e = 1e9;
  double prev_damage = -1.0;
  for (double strength : {0.25, 0.5, 1.0}) {
    core::RepairOptions options;
    options.strength = strength;
    options.seed = 17;
    auto repairer = core::OffSampleRepairer::Create(*plans, options);
    ASSERT_TRUE(repairer.ok());
    auto repaired = repairer->RepairDataset(*archive);
    ASSERT_TRUE(repaired.ok());
    auto e = fairness::AggregateE(*repaired);
    auto damage = fairness::ComputeDamage(*archive, *repaired);
    ASSERT_TRUE(e.ok() && damage.ok());
    EXPECT_LT(*e, prev_e * 1.05) << "strength " << strength;
    EXPECT_GT(damage->mean_l2_displacement, prev_damage) << "strength " << strength;
    prev_e = *e;
    prev_damage = damage->mean_l2_displacement;
  }
}

}  // namespace
}  // namespace otfair
