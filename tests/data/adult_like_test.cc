#include "data/adult_like.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace otfair::data {
namespace {

TEST(AdultLikeTest, ShapeAndSchema) {
  common::Rng rng(60);
  auto d = GenerateAdultLike(500, rng);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 500u);
  EXPECT_EQ(d->dim(), 2u);
  EXPECT_TRUE(d->has_outcome());
  EXPECT_EQ(d->feature_names(),
            (std::vector<std::string>{"age", "hours_per_week"}));
}

TEST(AdultLikeTest, FeatureRangesRespectClamps) {
  common::Rng rng(61);
  auto d = GenerateAdultLike(5000, rng);
  ASSERT_TRUE(d.ok());
  for (size_t i = 0; i < d->size(); ++i) {
    EXPECT_GE(d->feature(i, 0), 17.0);
    EXPECT_LE(d->feature(i, 0), 90.0);
    EXPECT_GE(d->feature(i, 1), 1.0);
    EXPECT_LE(d->feature(i, 1), 99.0);
  }
}

TEST(AdultLikeTest, GroupPriorsMatchCalibration) {
  common::Rng rng(62);
  auto d = GenerateAdultLike(40000, rng);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->ProportionU1(), 0.27, 0.01);
  EXPECT_NEAR(d->ProportionS1GivenU(0), 0.64, 0.01);
  EXPECT_NEAR(d->ProportionS1GivenU(1), 0.72, 0.015);
}

TEST(AdultLikeTest, StructuralSURelationship) {
  // Pr[s=1|u=1] > Pr[s=1|u=0]: the structural dependence the paper keeps.
  common::Rng rng(63);
  auto d = GenerateAdultLike(30000, rng);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d->ProportionS1GivenU(1), d->ProportionS1GivenU(0));
}

TEST(AdultLikeTest, MalesWorkMoreHoursWithinStratum) {
  common::Rng rng(64);
  auto d = GenerateAdultLike(30000, rng);
  ASSERT_TRUE(d.ok());
  for (int u = 0; u <= 1; ++u) {
    const double women = stats::Mean(d->FeatureColumn(1, d->GroupIndices({u, 0})));
    const double men = stats::Mean(d->FeatureColumn(1, d->GroupIndices({u, 1})));
    EXPECT_GT(men, women + 1.0) << "u=" << u;
  }
}

TEST(AdultLikeTest, CollegeEducatedAreOlder) {
  common::Rng rng(65);
  auto d = GenerateAdultLike(30000, rng);
  ASSERT_TRUE(d.ok());
  const double noncollege = stats::Mean(d->FeatureColumn(0, d->UIndices(0)));
  const double college = stats::Mean(d->FeatureColumn(0, d->UIndices(1)));
  EXPECT_GT(college, noncollege + 1.0);
}

TEST(AdultLikeTest, HoursSpikeAtForty) {
  // The hallmark Adult non-Gaussianity: a large fraction near 40 h.
  common::Rng rng(66);
  auto d = GenerateAdultLike(20000, rng);
  ASSERT_TRUE(d.ok());
  size_t near40 = 0;
  for (size_t i = 0; i < d->size(); ++i) {
    if (std::fabs(d->feature(i, 1) - 40.0) < 3.0) ++near40;
  }
  EXPECT_GT(static_cast<double>(near40) / static_cast<double>(d->size()), 0.30);
}

TEST(AdultLikeTest, PositiveIncomeRatePlausible) {
  common::Rng rng(67);
  auto d = GenerateAdultLike(30000, rng);
  ASSERT_TRUE(d.ok());
  double positives = 0;
  for (size_t i = 0; i < d->size(); ++i) positives += d->y(i);
  const double rate = positives / static_cast<double>(d->size());
  EXPECT_GT(rate, 0.12);
  EXPECT_LT(rate, 0.40);
}

TEST(AdultLikeTest, IncomeFavoursCollegeAndMales) {
  common::Rng rng(68);
  auto d = GenerateAdultLike(40000, rng);
  ASSERT_TRUE(d.ok());
  auto rate_of = [&](const GroupKey& g) {
    const auto idx = d->GroupIndices(g);
    double pos = 0;
    for (size_t i : idx) pos += d->y(i);
    return pos / static_cast<double>(idx.size());
  };
  EXPECT_GT(rate_of({1, 1}), rate_of({0, 1}));  // education premium
  EXPECT_GT(rate_of({1, 1}), rate_of({1, 0}));  // gender premium
}

TEST(AdultLikeTest, DriftShiftsArchiveDistribution) {
  common::Rng rng_a(69);
  common::Rng rng_b(69);
  auto base = GenerateAdultLike(30000, rng_a, {.drift = 0.0});
  auto drifted = GenerateAdultLike(30000, rng_b, {.drift = 1.0});
  ASSERT_TRUE(base.ok() && drifted.ok());
  EXPECT_GT(stats::Mean(drifted->FeatureColumn(0)), stats::Mean(base->FeatureColumn(0)) + 1.0);
}

TEST(AdultLikeTest, WithoutOutcomeOption) {
  common::Rng rng(70);
  auto d = GenerateAdultLike(100, rng, {.drift = 0.0, .with_outcome = false});
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->has_outcome());
}

TEST(AdultLikeTest, RejectsBadArguments) {
  common::Rng rng(71);
  EXPECT_FALSE(GenerateAdultLike(0, rng).ok());
  EXPECT_FALSE(GenerateAdultLike(10, rng, {.drift = -0.5}).ok());
  EXPECT_FALSE(GenerateAdultLike(10, rng, {.drift = 1.5}).ok());
}

TEST(AdultLikeTest, DeterministicGivenSeed) {
  common::Rng a(72);
  common::Rng b(72);
  auto da = GenerateAdultLike(50, a);
  auto db = GenerateAdultLike(50, b);
  ASSERT_TRUE(da.ok() && db.ok());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(da->feature(i, 0), db->feature(i, 0));
    EXPECT_EQ(da->s(i), db->s(i));
  }
}

TEST(AdultLikeMultiGroupTest, GeneratesRequestedLevels) {
  common::Rng rng(71);
  AdultLikeOptions options;
  options.s_levels = 4;
  options.u_levels = 3;
  auto d = GenerateAdultLike(20000, rng, options);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->s_levels(), 4u);
  EXPECT_EQ(d->u_levels(), 3u);
  // Every (u, s) group is populated at this sample size (the rarest cell,
  // top-u x bottom-s, still carries a few hundredths of the mass).
  for (const auto& [group, count] : d->GroupCounts())
    EXPECT_GT(count, 20u) << "u=" << group.u << " s=" << group.s;
  // The interpolated parameters keep the published feature ranges.
  for (size_t i = 0; i < d->size(); ++i) {
    EXPECT_GE(d->feature(i, 0), 17.0);
    EXPECT_LE(d->feature(i, 0), 90.0);
    EXPECT_GE(d->feature(i, 1), 1.0);
    EXPECT_LE(d->feature(i, 1), 99.0);
  }
}

TEST(AdultLikeMultiGroupTest, LevelsOrderTheAgeGradient) {
  // The bilinear interpolation keeps the published corner monotonicity:
  // higher education and higher s levels mean older groups.
  common::Rng rng(72);
  AdultLikeOptions options;
  options.s_levels = 3;
  options.u_levels = 3;
  options.integer_valued = false;
  auto d = GenerateAdultLike(30000, rng, options);
  ASSERT_TRUE(d.ok());
  auto mean_age = [&](int u, int s) {
    const auto idx = d->GroupIndices({u, s});
    double total = 0.0;
    for (size_t i : idx) total += d->feature(i, 0);
    return total / static_cast<double>(idx.size());
  };
  EXPECT_LT(mean_age(0, 0), mean_age(2, 2));
  EXPECT_LT(mean_age(0, 0), mean_age(0, 2));
  EXPECT_LT(mean_age(0, 0), mean_age(2, 0));
}

TEST(AdultLikeMultiGroupTest, RejectsDegenerateLevels) {
  common::Rng rng(73);
  AdultLikeOptions options;
  options.s_levels = 1;
  EXPECT_FALSE(GenerateAdultLike(10, rng, options).ok());
  options.s_levels = 2;
  options.u_levels = 0;
  EXPECT_FALSE(GenerateAdultLike(10, rng, options).ok());
}

}  // namespace
}  // namespace otfair::data
