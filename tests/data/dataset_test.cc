#include "data/dataset.h"

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/rng.h"

namespace otfair::data {
namespace {

using common::Matrix;

Dataset SmallDataset() {
  // 6 rows covering all four (u, s) groups.
  Matrix features = Matrix::FromRows(
      {{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}, {4.0, 40.0}, {5.0, 50.0}, {6.0, 60.0}});
  auto d = Dataset::Create(std::move(features), {0, 1, 0, 1, 0, 1}, {0, 0, 1, 1, 1, 1},
                           {"a", "b"}, {1, 0, 1, 0, 1, 0});
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(DatasetTest, CreateValidatesShapes) {
  Matrix f = Matrix::FromRows({{1.0}});
  EXPECT_TRUE(Dataset::Create(f, {0}, {1}, {"x"}).ok());
  EXPECT_FALSE(Dataset::Create(f, {0, 1}, {1}, {"x"}).ok());
  EXPECT_FALSE(Dataset::Create(f, {0}, {1, 0}, {"x"}).ok());
  EXPECT_FALSE(Dataset::Create(f, {0}, {1}, {"x", "y"}).ok());
  EXPECT_FALSE(Dataset::Create(f, {0}, {1}, {"x"}, {0, 1}).ok());
  EXPECT_FALSE(Dataset::Create(Matrix(), {}, {}, {}).ok());
}

TEST(DatasetTest, CreateValidatesLabels) {
  Matrix f = Matrix::FromRows({{1.0}});
  // Negative levels and non-binary outcomes are always rejected.
  EXPECT_FALSE(Dataset::Create(f, {-1}, {0}, {"x"}).ok());
  EXPECT_FALSE(Dataset::Create(f, {0}, {-1}, {"x"}).ok());
  EXPECT_FALSE(Dataset::Create(f, {0}, {0}, {"x"}, {3}).ok());
  // Labels beyond an explicit level count are rejected.
  EXPECT_FALSE(Dataset::Create(f, {2}, {0}, {"x"}, {}, /*s_levels=*/2).ok());
  EXPECT_FALSE(Dataset::Create(f, {0}, {3}, {"x"}, {}, 0, /*u_levels=*/2).ok());
  // s needs at least two levels; u may be a single declared stratum.
  EXPECT_FALSE(Dataset::Create(f, {0}, {0}, {"x"}, {}, /*s_levels=*/1).ok());
  EXPECT_TRUE(Dataset::Create(f, {0}, {0}, {"x"}, {}, 0, /*u_levels=*/1).ok());
}

TEST(DatasetTest, LevelInferenceFloorsAtTwo) {
  Matrix f = Matrix::FromRows({{1.0}, {2.0}});
  auto d = Dataset::Create(f, {0, 0}, {0, 0}, {"x"});
  ASSERT_TRUE(d.ok());
  // The binary-era contract: an all-zero label column still means a
  // two-level attribute whose second level is unobserved.
  EXPECT_EQ(d->s_levels(), 2u);
  EXPECT_EQ(d->u_levels(), 2u);
}

TEST(DatasetTest, MultiLevelInferenceAndGroups) {
  Matrix f = Matrix::FromRows({{1.0}, {2.0}, {3.0}, {4.0}});
  auto d = Dataset::Create(f, {0, 1, 2, 3}, {0, 1, 2, 0}, {"x"});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->s_levels(), 4u);
  EXPECT_EQ(d->u_levels(), 3u);
  const auto groups = d->Groups();
  ASSERT_EQ(groups.size(), 12u);
  EXPECT_EQ(groups[0], (GroupKey{0, 0}));
  EXPECT_EQ(groups[11], (GroupKey{2, 3}));
  // Canonical order is u-major, s-minor.
  EXPECT_EQ(groups[4], (GroupKey{1, 0}));
  auto counts = d->GroupCounts();
  EXPECT_EQ(counts.size(), 12u);
  EXPECT_EQ((counts[GroupKey{1, 1}]), 1u);
  EXPECT_EQ((counts[GroupKey{2, 1}]), 0u);
}

TEST(DatasetTest, MultiLevelProportions) {
  Matrix f = Matrix::FromRows({{1.0}, {2.0}, {3.0}, {4.0}});
  auto d = Dataset::Create(f, {0, 1, 2, 2}, {0, 0, 1, 1}, {"x"});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->ProportionU(1), 0.5, 1e-12);
  EXPECT_NEAR(d->ProportionSGivenU(2, 1), 1.0, 1e-12);
  EXPECT_NEAR(d->ProportionSGivenU(0, 0), 0.5, 1e-12);
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.size(), 6u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_TRUE(d.has_outcome());
  EXPECT_EQ(d.s(1), 1);
  EXPECT_EQ(d.u(0), 0);
  EXPECT_EQ(d.y(0), 1);
  EXPECT_DOUBLE_EQ(d.feature(2, 1), 30.0);
  EXPECT_EQ(d.feature_names()[1], "b");
}

TEST(DatasetTest, SetFeatureMutates) {
  Dataset d = SmallDataset();
  d.set_feature(0, 0, 99.0);
  EXPECT_DOUBLE_EQ(d.feature(0, 0), 99.0);
}

TEST(DatasetTest, RowExtraction) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.Row(3), (std::vector<double>{4.0, 40.0}));
}

TEST(DatasetTest, GroupIndices) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.GroupIndices({0, 0}), (std::vector<size_t>{0}));
  EXPECT_EQ(d.GroupIndices({0, 1}), (std::vector<size_t>{1}));
  EXPECT_EQ(d.GroupIndices({1, 0}), (std::vector<size_t>{2, 4}));
  EXPECT_EQ(d.GroupIndices({1, 1}), (std::vector<size_t>{3, 5}));
}

TEST(DatasetTest, GroupIndexBucketsMatchPerGroupScans) {
  Matrix f = Matrix::FromRows({{1.0}, {2.0}, {3.0}, {4.0}, {5.0}});
  auto d = Dataset::Create(f, {0, 2, 1, 2, 0}, {1, 0, 1, 1, 0}, {"x"});
  ASSERT_TRUE(d.ok());
  const auto buckets = d->GroupIndexBuckets();
  ASSERT_EQ(buckets.size(), d->u_levels() * d->s_levels());
  for (const GroupKey& g : d->Groups()) {
    EXPECT_EQ(buckets[static_cast<size_t>(g.u) * d->s_levels() + static_cast<size_t>(g.s)],
              d->GroupIndices(g))
        << "u=" << g.u << " s=" << g.s;
  }
}

TEST(DatasetTest, UIndices) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.UIndices(0), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(d.UIndices(1), (std::vector<size_t>{2, 3, 4, 5}));
}

TEST(DatasetTest, FeatureColumnWithIndices) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.FeatureColumn(1, {0, 2}), (std::vector<double>{10.0, 30.0}));
  EXPECT_EQ(d.FeatureColumn(0), (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(DatasetTest, GroupCountsCoverAllGroups) {
  Dataset d = SmallDataset();
  auto counts = d.GroupCounts();
  EXPECT_EQ((counts[GroupKey{0, 0}]), 1u);
  EXPECT_EQ((counts[GroupKey{1, 1}]), 2u);
  size_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  EXPECT_EQ(total, d.size());
}

TEST(DatasetTest, Proportions) {
  Dataset d = SmallDataset();
  EXPECT_NEAR(d.ProportionU1(), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(d.ProportionS1GivenU(0), 0.5, 1e-12);
  EXPECT_NEAR(d.ProportionS1GivenU(1), 0.5, 1e-12);
}

TEST(DatasetTest, SubsetPreservesOrderAndLabels) {
  Dataset d = SmallDataset();
  Dataset sub = d.Subset({5, 0});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.feature(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(sub.feature(1, 0), 1.0);
  EXPECT_EQ(sub.s(0), 1);
  EXPECT_EQ(sub.u(1), 0);
  EXPECT_EQ(sub.y(0), 0);
  EXPECT_EQ(sub.feature_names(), d.feature_names());
}

TEST(DatasetTest, CloneIsDeep) {
  Dataset d = SmallDataset();
  Dataset clone = d.Clone();
  clone.set_feature(0, 0, -1.0);
  EXPECT_DOUBLE_EQ(d.feature(0, 0), 1.0);
}

TEST(DatasetTest, GroupsCanonicalOrder) {
  const auto groups = SmallDataset().Groups();
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (GroupKey{0, 0}));
  EXPECT_EQ(groups[3], (GroupKey{1, 1}));
}

TEST(DatasetTest, SubsetInheritsLevelCounts) {
  Matrix f = Matrix::FromRows({{1.0}, {2.0}, {3.0}});
  auto d = Dataset::Create(f, {0, 1, 2}, {0, 1, 0}, {"x"});
  ASSERT_TRUE(d.ok());
  Dataset sub = d->Subset({0});
  // Sub-sampling must not shrink the attribute cardinalities.
  EXPECT_EQ(sub.s_levels(), 3u);
  EXPECT_EQ(sub.u_levels(), 2u);
}

TEST(SplitTest, SizesAndDisjointness) {
  Dataset d = SmallDataset();
  common::Rng rng(50);
  auto split = SplitResearchArchive(d, 2, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->first.size(), 2u);
  EXPECT_EQ(split->second.size(), 4u);
}

TEST(SplitTest, UnionPreservesFeatureMultiset) {
  Dataset d = SmallDataset();
  common::Rng rng(51);
  auto split = SplitResearchArchive(d, 3, rng);
  ASSERT_TRUE(split.ok());
  std::vector<double> all;
  for (size_t i = 0; i < split->first.size(); ++i) all.push_back(split->first.feature(i, 0));
  for (size_t i = 0; i < split->second.size(); ++i) all.push_back(split->second.feature(i, 0));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(SplitTest, RejectsDegenerateSizes) {
  Dataset d = SmallDataset();
  common::Rng rng(52);
  EXPECT_FALSE(SplitResearchArchive(d, 0, rng).ok());
  EXPECT_FALSE(SplitResearchArchive(d, 6, rng).ok());
  EXPECT_FALSE(SplitResearchArchive(d, 7, rng).ok());
}

TEST(SplitTest, DeterministicGivenSeed) {
  Dataset d = SmallDataset();
  common::Rng a(53);
  common::Rng b(53);
  auto sa = SplitResearchArchive(d, 3, a);
  auto sb = SplitResearchArchive(d, 3, b);
  ASSERT_TRUE(sa.ok() && sb.ok());
  for (size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(sa->first.feature(i, 0), sb->first.feature(i, 0));
}

}  // namespace
}  // namespace otfair::data
