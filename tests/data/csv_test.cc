#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/matrix.h"

namespace otfair::data {
namespace {

using common::Matrix;

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, RoundTripWithOutcome) {
  Matrix f = Matrix::FromRows({{1.5, -2.25}, {3.0, 4.125}});
  auto original = Dataset::Create(f, {0, 1}, {1, 0}, {"age", "hours"}, {1, 0});
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(*original, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->dim(), 2u);
  EXPECT_TRUE(loaded->has_outcome());
  EXPECT_EQ(loaded->feature_names(), (std::vector<std::string>{"age", "hours"}));
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded->s(i), original->s(i));
    EXPECT_EQ(loaded->u(i), original->u(i));
    EXPECT_EQ(loaded->y(i), original->y(i));
    for (size_t k = 0; k < 2; ++k)
      EXPECT_DOUBLE_EQ(loaded->feature(i, k), original->feature(i, k));
  }
}

TEST_F(CsvTest, RoundTripWithoutOutcome) {
  Matrix f = Matrix::FromRows({{7.0}});
  auto original = Dataset::Create(f, {1}, {1}, {"x"});
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("no_outcome.csv");
  ASSERT_TRUE(WriteCsv(*original, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->has_outcome());
  EXPECT_DOUBLE_EQ(loaded->feature(0, 0), 7.0);
}

TEST_F(CsvTest, ReadHandWrittenFile) {
  const std::string path = TempPath("hand.csv");
  WriteFile(path, "s,u,age,hours\n0,1,25.5,40\n1,0,60,37.5\n");
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->feature(1, 1), 37.5);
  EXPECT_EQ(loaded->u(0), 1);
}

TEST_F(CsvTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  WriteFile(path, "s,u,x\n0,1,1.0\n\n1,0,2.0\n\n");
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST_F(CsvTest, TrimsWhitespace) {
  const std::string path = TempPath("ws.csv");
  WriteFile(path, "s, u, x\n 0 , 1 , 3.5 \n");
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->feature(0, 0), 3.5);
}

TEST_F(CsvTest, RejectsBadHeader) {
  const std::string path = TempPath("badheader.csv");
  WriteFile(path, "u,s,x\n1,0,1.0\n");
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST_F(CsvTest, RejectsHeaderWithoutFeatures) {
  const std::string path = TempPath("nofeat.csv");
  WriteFile(path, "s,u\n0,1\n");
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST_F(CsvTest, AcceptsCategoricalLabels) {
  // Multi-level s/u columns load with inferred cardinalities.
  const std::string path = TempPath("multilabel.csv");
  WriteFile(path, "s,u,x\n2,0,1.0\n0,3,2.0\n1,1,3.0\n");
  auto d = ReadCsv(path);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->s_levels(), 3u);
  EXPECT_EQ(d->u_levels(), 4u);
  EXPECT_EQ(d->s(0), 2);
  EXPECT_EQ(d->u(1), 3);
}

TEST_F(CsvTest, RejectsBadLabels) {
  // Negative and non-integer labels are still rejected.
  const std::string neg = TempPath("neglabel.csv");
  WriteFile(neg, "s,u,x\n-1,0,1.0\n");
  EXPECT_FALSE(ReadCsv(neg).ok());
  const std::string frac = TempPath("fraclabel.csv");
  WriteFile(frac, "s,u,x\n0.5,0,1.0\n");
  EXPECT_FALSE(ReadCsv(frac).ok());
  // Outcomes stay binary.
  const std::string bady = TempPath("bady.csv");
  WriteFile(bady, "s,u,y,x\n0,0,2,1.0\n");
  EXPECT_FALSE(ReadCsv(bady).ok());
}

TEST_F(CsvTest, RoundTripPreservesDeclaredLevels) {
  // Levels inference cannot recover — an unobserved top s level and a
  // single declared u stratum — survive the CSV round trip via the
  // level-comment line.
  common::Matrix f = common::Matrix::FromRows({{1.0}, {2.0}});
  auto d = Dataset::Create(std::move(f), {0, 1}, {0, 0}, {"x"}, {}, /*s_levels=*/4,
                           /*u_levels=*/1);
  ASSERT_TRUE(d.ok());
  const std::string path = TempPath("declared_levels.csv");
  ASSERT_TRUE(WriteCsv(*d, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->s_levels(), 4u);
  EXPECT_EQ(back->u_levels(), 1u);
}

TEST_F(CsvTest, MalformedLevelCommentIsRejected) {
  // A comment line that is not a valid level declaration must error, not
  // silently degrade to inference.
  const std::string path = TempPath("bad_comment.csv");
  WriteFile(path, "# s_levels=4\ns,u,x\n0,0,1.0\n");
  EXPECT_FALSE(ReadCsv(path).ok());
  const std::string swapped = TempPath("swapped_comment.csv");
  WriteFile(swapped, "# u_levels=3 s_levels=4\ns,u,x\n0,0,1.0\n");
  EXPECT_FALSE(ReadCsv(swapped).ok());
}

TEST_F(CsvTest, BinaryDatasetsGetNoLevelComment) {
  // Binary-era files must stay byte-identical: when inference recovers
  // the level counts, no comment line is written.
  common::Matrix f = common::Matrix::FromRows({{1.0}, {2.0}});
  auto d = Dataset::Create(std::move(f), {0, 1}, {1, 0}, {"x"});
  ASSERT_TRUE(d.ok());
  const std::string path = TempPath("no_comment.csv");
  ASSERT_TRUE(WriteCsv(*d, path).ok());
  std::ifstream in(path);
  std::string first;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, first)));
  EXPECT_EQ(first, "s,u,x");
}

TEST_F(CsvTest, MultiGroupRoundTrip) {
  common::Matrix f = common::Matrix::FromRows({{1.5}, {2.5}, {3.5}});
  auto d = Dataset::Create(std::move(f), {0, 2, 1}, {1, 0, 2}, {"x"});
  ASSERT_TRUE(d.ok());
  const std::string path = TempPath("multi_roundtrip.csv");
  ASSERT_TRUE(WriteCsv(*d, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->s_levels(), 3u);
  EXPECT_EQ(back->u_levels(), 3u);
  for (size_t i = 0; i < d->size(); ++i) {
    EXPECT_EQ(back->s(i), d->s(i));
    EXPECT_EQ(back->u(i), d->u(i));
    EXPECT_DOUBLE_EQ(back->feature(i, 0), d->feature(i, 0));
  }
}

TEST_F(CsvTest, RejectsNonNumericFeature) {
  const std::string path = TempPath("badnum.csv");
  WriteFile(path, "s,u,x\n0,1,abc\n");
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST_F(CsvTest, RejectsWrongColumnCount) {
  const std::string path = TempPath("badcols.csv");
  WriteFile(path, "s,u,x,y2\n0,1,1.0\n");
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST_F(CsvTest, RejectsEmptyFile) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST_F(CsvTest, RejectsHeaderOnlyFile) {
  const std::string path = TempPath("headeronly.csv");
  WriteFile(path, "s,u,x\n");
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST_F(CsvTest, MissingFileGivesIoError) {
  auto loaded = ReadCsv(TempPath("does_not_exist.csv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
}

}  // namespace
}  // namespace otfair::data
