#include "serve/batcher.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "serve/repair_service.h"
#include "sim/gaussian_mixture.h"

namespace otfair::serve {
namespace {

std::unique_ptr<RepairService> MakeService(uint64_t seed, ServiceOptions options = {}) {
  common::Rng rng(seed);
  auto research =
      sim::SimulateGaussianMixture(600, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(research.ok());
  auto plans = core::DesignDistributionalRepair(*research, {});
  EXPECT_TRUE(plans.ok());
  auto service = RepairService::Create(std::move(*plans), options);
  EXPECT_TRUE(service.ok()) << service.status();
  return std::move(*service);
}

RowRequest MakeRequest(uint64_t session, uint64_t row) {
  RowRequest request;
  request.session_id = session;
  request.row_index = row;
  request.u = static_cast<int>(row % 2);
  request.s = static_cast<int>((row / 2) % 2);
  request.features = {0.1 * static_cast<double>(row % 20) - 1.0, 0.5};
  return request;
}

/// Thread-safe sink collecting every delivered (session, row) exactly once.
struct CollectingSink {
  std::mutex mu;
  std::set<std::pair<uint64_t, uint64_t>> seen;
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> duplicates{0};

  Batcher::Sink AsSink() {
    return [this](const RowResponse& response) {
      responses.fetch_add(1);
      if (!response.status.ok()) failures.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      if (!seen.insert({response.session_id, response.row_index}).second)
        duplicates.fetch_add(1);
    };
  }
};

TEST(BatcherTest, CoalescesSingleRowsIntoBatches) {
  auto service = MakeService(1);
  CollectingSink sink;
  BatcherOptions options;
  options.max_batch = 64;
  options.background_flush = false;  // deterministic batch boundaries
  Batcher batcher(service.get(), options, sink.AsSink());
  for (uint64_t i = 0; i < 1000; ++i)
    ASSERT_TRUE(batcher.Submit(MakeRequest(0, i)).ok());
  batcher.Flush();
  EXPECT_EQ(sink.responses.load(), 1000u);
  EXPECT_EQ(sink.failures.load(), 0u);
  EXPECT_EQ(sink.duplicates.load(), 0u);
  const MetricsSnapshot metrics = service->metrics().Snapshot();
  EXPECT_EQ(metrics.rows_repaired, 1000u);
  // 1000 rows at max_batch 64: 15 full caller-run batches + the flush
  // residue — far fewer executions than rows.
  EXPECT_LE(metrics.batches, 17u);
  EXPECT_GE(metrics.batches, 16u);
}

TEST(BatcherTest, BackpressureRejectsWhenQueueFull) {
  auto service = MakeService(2);
  CollectingSink sink;
  BatcherOptions options;
  options.max_batch = 128;  // never fills from 4 rows -> queue backs up
  options.max_queue_depth = 4;
  options.background_flush = false;
  Batcher batcher(service.get(), options, sink.AsSink());
  for (uint64_t i = 0; i < 4; ++i)
    ASSERT_TRUE(batcher.Submit(MakeRequest(0, i)).ok());
  RowRequest rejected = MakeRequest(0, 999);
  const common::Status status = batcher.Submit(std::move(rejected));
  EXPECT_EQ(status.code(), common::StatusCode::kUnavailable);
  // The request is handed back intact for a retry.
  EXPECT_EQ(rejected.features.size(), 2u);
  EXPECT_EQ(service->metrics().Snapshot().rows_rejected, 1u);
  batcher.Flush();
  EXPECT_TRUE(batcher.Submit(std::move(rejected)).ok());
  batcher.Flush();
  EXPECT_EQ(sink.failures.load(), 0u);
  EXPECT_EQ(sink.responses.load(), 5u);
}

TEST(BatcherTest, ZeroOptionsAreNormalized) {
  auto service = MakeService(3);
  BatcherOptions options;
  options.max_batch = 0;
  options.max_queue_depth = 0;
  options.max_wait_us = -5;
  Batcher batcher(service.get(), options, nullptr);
  EXPECT_EQ(batcher.options().max_batch, 1u);
  EXPECT_EQ(batcher.options().max_queue_depth, 1u);
  EXPECT_EQ(batcher.options().max_wait_us, 0);
}

TEST(BatcherTest, BackgroundFlusherDeliversPartialBatches) {
  auto service = MakeService(4);
  CollectingSink sink;
  BatcherOptions options;
  options.max_batch = 1024;  // never fills on its own
  options.max_wait_us = 2000;
  options.background_flush = true;
  Batcher batcher(service.get(), options, sink.AsSink());
  for (uint64_t i = 0; i < 3; ++i) ASSERT_TRUE(batcher.Submit(MakeRequest(0, i)).ok());
  // No Flush() call: the flusher must deliver within ~max_wait_us.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sink.responses.load() < 3 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(sink.responses.load(), 3u);
}

TEST(BatcherTest, CloseDrainsEverythingAndRejectsAfter) {
  auto service = MakeService(5);
  CollectingSink sink;
  BatcherOptions options;
  options.max_batch = 256;
  options.background_flush = false;
  Batcher batcher(service.get(), options, sink.AsSink());
  for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(batcher.Submit(MakeRequest(1, i)).ok());
  batcher.Close();
  EXPECT_EQ(sink.responses.load(), 10u);
  EXPECT_EQ(batcher.Submit(MakeRequest(1, 11)).code(), common::StatusCode::kUnavailable);
  batcher.Close();  // idempotent
  EXPECT_EQ(sink.responses.load(), 10u);
}

TEST(BatcherTest, ConcurrentProducersEveryRowDeliveredOnce) {
  auto service = MakeService(6);
  CollectingSink sink;
  BatcherOptions options;
  options.max_batch = 32;
  options.max_queue_depth = 64;
  options.background_flush = true;
  options.max_wait_us = 500;
  Batcher batcher(service.get(), options, sink.AsSink());
  constexpr uint64_t kSessions = 4;
  constexpr uint64_t kRows = 500;
  std::vector<std::thread> producers;
  for (uint64_t session = 0; session < kSessions; ++session) {
    producers.emplace_back([&, session] {
      for (uint64_t i = 0; i < kRows; ++i) {
        RowRequest request = MakeRequest(session, i);
        while (true) {
          if (batcher.Submit(std::move(request)).ok()) break;
          batcher.Flush();  // backpressure: help drain, then retry
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  batcher.Close();
  EXPECT_EQ(sink.responses.load(), kSessions * kRows);
  EXPECT_EQ(sink.duplicates.load(), 0u);
  EXPECT_EQ(sink.failures.load(), 0u);
  EXPECT_EQ(sink.seen.size(), kSessions * kRows);
}

TEST(BatcherTest, InvalidRowsComeBackWithErrorStatus) {
  auto service = MakeService(7);
  CollectingSink sink;
  BatcherOptions options;
  options.background_flush = false;
  Batcher batcher(service.get(), options, sink.AsSink());
  RowRequest bad = MakeRequest(0, 0);
  bad.features.push_back(1.0);  // wrong dimensionality
  ASSERT_TRUE(batcher.Submit(std::move(bad)).ok());  // accepted: failure is per-row
  batcher.Flush();
  EXPECT_EQ(sink.responses.load(), 1u);
  EXPECT_EQ(sink.failures.load(), 1u);
  EXPECT_EQ(service->metrics().Snapshot().rows_invalid, 1u);
}

}  // namespace
}  // namespace otfair::serve
