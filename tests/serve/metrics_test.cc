#include "serve/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace otfair::serve {
namespace {

TEST(MetricsTest, CountersAccumulate) {
  Metrics metrics;
  metrics.AddAccepted(10);
  metrics.AddRepaired(8);
  metrics.AddInvalid(2);
  metrics.AddRejected(3);
  metrics.AddBatch();
  metrics.AddBatch();
  metrics.AddReload();
  const MetricsSnapshot snap = metrics.Snapshot(17);
  EXPECT_EQ(snap.rows_accepted, 10u);
  EXPECT_EQ(snap.rows_repaired, 8u);
  EXPECT_EQ(snap.rows_invalid, 2u);
  EXPECT_EQ(snap.rows_rejected, 3u);
  EXPECT_EQ(snap.batches, 2u);
  EXPECT_EQ(snap.reloads, 1u);
  EXPECT_EQ(snap.queue_depth, 17u);
  EXPECT_GT(snap.uptime_seconds, 0.0);
}

TEST(MetricsTest, LatencyQuantilesWithinBucketResolution) {
  Metrics metrics;
  // 980 fast requests at 100us, 20 slow ones at 10000us: nearest-rank p99
  // (rank 990 of 1000) lands in the slow population.
  for (int i = 0; i < 980; ++i) metrics.RecordLatencyUs(100.0);
  for (int i = 0; i < 20; ++i) metrics.RecordLatencyUs(10000.0);
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.latency_samples, 1000u);
  // Log-linear buckets are exact to within 12.5%.
  EXPECT_NEAR(snap.latency_p50_us, 100.0, 100.0 * 0.15);
  EXPECT_NEAR(snap.latency_p90_us, 100.0, 100.0 * 0.15);
  EXPECT_NEAR(snap.latency_p99_us, 10000.0, 10000.0 * 0.15);
  EXPECT_EQ(snap.latency_max_us, 10000.0);
}

TEST(MetricsTest, LatencyEdgeValues) {
  Metrics metrics;
  metrics.RecordLatencyUs(-5.0);  // clamps to 0
  metrics.RecordLatencyUs(0.0);
  metrics.RecordLatencyUs(3.0);   // exact low buckets
  metrics.RecordLatencyUs(1e12);  // far tail still lands in a bucket
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.latency_samples, 4u);
  EXPECT_EQ(snap.latency_p50_us, 0.0);  // nearest-rank 2 of 4
  EXPECT_GT(snap.latency_p99_us, 1e9);  // nearest-rank 4 of 4: the tail sample
}

TEST(MetricsTest, SnapshotUnderConcurrentWriters) {
  Metrics metrics;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        metrics.AddAccepted(1);
        metrics.AddRepaired(1);
        metrics.RecordLatencyUs(50.0);
      }
    });
  }
  for (auto& w : writers) w.join();
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.rows_accepted, 40000u);
  EXPECT_EQ(snap.rows_repaired, 40000u);
  EXPECT_EQ(snap.latency_samples, 40000u);
}

TEST(MetricsTest, ToJsonCarriesTheCounters) {
  Metrics metrics;
  metrics.AddAccepted(5);
  metrics.AddRepaired(5);
  const std::string json = metrics.Snapshot(2).ToJson();
  EXPECT_NE(json.find("\"rows_accepted\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_depth\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_p99_us\":"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsTest, LegacyJsonKeyOrderPreservedNewKeysAppended) {
  Metrics metrics;
  const std::string json = metrics.Snapshot().ToJson();
  // Pre-registry keys must render first and in the historical order —
  // consumers of the `metrics` verb parse positionally-diffable lines.
  EXPECT_EQ(json.find("{\"rows_accepted\":"), 0u) << json;
  const size_t legacy_tail = json.find("\"latency_max_us\":");
  ASSERT_NE(legacy_tail, std::string::npos) << json;
  for (const char* appended :
       {"\"degraded\":false", "\"redesign_episodes\":0", "\"redesign_gave_up\":0",
        "\"window_latency_samples\":0", "\"window_latency_p99_us\":0"}) {
    const size_t pos = json.find(appended);
    ASSERT_NE(pos, std::string::npos) << appended << " missing in " << json;
    EXPECT_GT(pos, legacy_tail) << appended << " must append after the legacy keys";
  }
}

TEST(MetricsTest, DegradedAndRedesignCountersFlowThrough) {
  Metrics metrics;
  metrics.SetDegraded(true);
  metrics.AddRedesignEpisode();
  metrics.AddRedesignAttempt();
  metrics.AddRedesignAttempt();
  metrics.AddRedesignFailure();
  metrics.AddRedesignReload();
  metrics.AddRedesignGaveUp();
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_TRUE(snap.degraded);
  EXPECT_EQ(snap.redesign_episodes, 1u);
  EXPECT_EQ(snap.redesign_attempts, 2u);
  EXPECT_EQ(snap.redesign_failures, 1u);
  EXPECT_EQ(snap.redesign_reloads, 1u);
  EXPECT_EQ(snap.redesign_gave_up, 1u);
  metrics.SetDegraded(false);
  EXPECT_FALSE(metrics.Snapshot().degraded);
}

TEST(MetricsTest, ScrapeWindowIsolatesTheInterval) {
  Metrics metrics;
  for (int i = 0; i < 100; ++i) metrics.RecordLatencyUs(100.0);
  // Snapshot() never consumes the window: before the first scrape the
  // window quantiles stay zero no matter how often health is polled.
  EXPECT_EQ(metrics.Snapshot().window_latency_samples, 0u);
  EXPECT_EQ(metrics.Snapshot().window_latency_samples, 0u);

  // First scrape closes window #1 (everything since start).
  const MetricsSnapshot first = metrics.ScrapeSnapshot();
  EXPECT_EQ(first.window_latency_samples, 100u);
  EXPECT_NEAR(first.window_latency_p50_us, 100.0, 100.0 * 0.15);

  // A slow interval: the next scrape's window sees ONLY the new samples,
  // while the lifetime quantiles still blend both populations.
  for (int i = 0; i < 100; ++i) metrics.RecordLatencyUs(10000.0);
  const MetricsSnapshot second = metrics.ScrapeSnapshot();
  EXPECT_EQ(second.window_latency_samples, 100u);
  EXPECT_NEAR(second.window_latency_p50_us, 10000.0, 10000.0 * 0.15);
  EXPECT_EQ(second.latency_samples, 200u);
  EXPECT_NEAR(second.latency_p50_us, 100.0, 100.0 * 0.15);

  // Non-scrape snapshots keep reporting the last CLOSED window.
  EXPECT_EQ(metrics.Snapshot().window_latency_samples, 100u);
  EXPECT_NEAR(metrics.Snapshot().window_latency_p50_us, 10000.0, 10000.0 * 0.15);
}

TEST(MetricsTest, RenderPrometheusExposesTheFacadeInstruments) {
  Metrics metrics;
  metrics.AddAccepted(3);
  metrics.AddRepaired(3);
  metrics.RecordLatencyUs(50.0);
  const std::string text = metrics.RenderPrometheus(/*queue_depth=*/5);
  EXPECT_NE(text.find("# TYPE otfair_serve_rows_accepted_total counter\n"
                      "otfair_serve_rows_accepted_total 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("otfair_serve_queue_depth 5\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE otfair_serve_latency_us histogram\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("otfair_serve_latency_us_count 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("otfair_serve_latency_us_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(MetricsTest, RegistryIsTheExtensionPoint) {
  Metrics metrics;
  // Components hang their own gauges off the facade's registry and show
  // up in the same exposition; name collisions with the facade bounce.
  auto* gauge = metrics.registry().AddGauge("otfair_serve_custom", "component gauge").value();
  gauge->Set(9.0);
  EXPECT_NE(metrics.RenderPrometheus().find("otfair_serve_custom 9\n"), std::string::npos);
  EXPECT_FALSE(metrics.registry().AddCounter("otfair_serve_rows_accepted_total", "dup").ok());
}

}  // namespace
}  // namespace otfair::serve
