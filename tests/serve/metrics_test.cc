#include "serve/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace otfair::serve {
namespace {

TEST(MetricsTest, CountersAccumulate) {
  Metrics metrics;
  metrics.AddAccepted(10);
  metrics.AddRepaired(8);
  metrics.AddInvalid(2);
  metrics.AddRejected(3);
  metrics.AddBatch();
  metrics.AddBatch();
  metrics.AddReload();
  const MetricsSnapshot snap = metrics.Snapshot(17);
  EXPECT_EQ(snap.rows_accepted, 10u);
  EXPECT_EQ(snap.rows_repaired, 8u);
  EXPECT_EQ(snap.rows_invalid, 2u);
  EXPECT_EQ(snap.rows_rejected, 3u);
  EXPECT_EQ(snap.batches, 2u);
  EXPECT_EQ(snap.reloads, 1u);
  EXPECT_EQ(snap.queue_depth, 17u);
  EXPECT_GT(snap.uptime_seconds, 0.0);
}

TEST(MetricsTest, LatencyQuantilesWithinBucketResolution) {
  Metrics metrics;
  // 980 fast requests at 100us, 20 slow ones at 10000us: nearest-rank p99
  // (rank 990 of 1000) lands in the slow population.
  for (int i = 0; i < 980; ++i) metrics.RecordLatencyUs(100.0);
  for (int i = 0; i < 20; ++i) metrics.RecordLatencyUs(10000.0);
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.latency_samples, 1000u);
  // Log-linear buckets are exact to within 12.5%.
  EXPECT_NEAR(snap.latency_p50_us, 100.0, 100.0 * 0.15);
  EXPECT_NEAR(snap.latency_p90_us, 100.0, 100.0 * 0.15);
  EXPECT_NEAR(snap.latency_p99_us, 10000.0, 10000.0 * 0.15);
  EXPECT_EQ(snap.latency_max_us, 10000.0);
}

TEST(MetricsTest, LatencyEdgeValues) {
  Metrics metrics;
  metrics.RecordLatencyUs(-5.0);  // clamps to 0
  metrics.RecordLatencyUs(0.0);
  metrics.RecordLatencyUs(3.0);   // exact low buckets
  metrics.RecordLatencyUs(1e12);  // far tail still lands in a bucket
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.latency_samples, 4u);
  EXPECT_EQ(snap.latency_p50_us, 0.0);  // nearest-rank 2 of 4
  EXPECT_GT(snap.latency_p99_us, 1e9);  // nearest-rank 4 of 4: the tail sample
}

TEST(MetricsTest, SnapshotUnderConcurrentWriters) {
  Metrics metrics;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        metrics.AddAccepted(1);
        metrics.AddRepaired(1);
        metrics.RecordLatencyUs(50.0);
      }
    });
  }
  for (auto& w : writers) w.join();
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.rows_accepted, 40000u);
  EXPECT_EQ(snap.rows_repaired, 40000u);
  EXPECT_EQ(snap.latency_samples, 40000u);
}

TEST(MetricsTest, ToJsonCarriesTheCounters) {
  Metrics metrics;
  metrics.AddAccepted(5);
  metrics.AddRepaired(5);
  const std::string json = metrics.Snapshot(2).ToJson();
  EXPECT_NE(json.find("\"rows_accepted\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_depth\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_p99_us\":"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace otfair::serve
