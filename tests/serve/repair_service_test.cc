// Serving-layer contract tests. The load-bearing ones:
//
//  - N concurrent sessions replaying a shuffled archive through the
//    batcher produce output bit-identical to OffSampleRepairer batch
//    repair per session, at any thread count, and across mid-stream
//    ReloadPlan() calls with an identical plan (the hot-swap acceptance
//    criterion).
//  - ReloadPlan under continuous traffic never drops or corrupts a
//    request.

#include "serve/repair_service.h"

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "serve/batcher.h"
#include "sim/gaussian_mixture.h"

namespace otfair::serve {
namespace {

struct Fixture {
  data::Dataset research;
  data::Dataset archive;
  core::RepairPlanSet plans;
};

Fixture MakeFixture(uint64_t seed, size_t archive_rows = 1500) {
  Fixture fx;
  common::Rng rng(seed);
  auto research =
      sim::SimulateGaussianMixture(800, sim::GaussianSimConfig::PaperDefault(), rng);
  auto archive = sim::SimulateGaussianMixture(
      archive_rows, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(research.ok() && archive.ok());
  fx.research = std::move(*research);
  fx.archive = std::move(*archive);
  auto plans = core::DesignDistributionalRepair(fx.research, {});
  EXPECT_TRUE(plans.ok());
  fx.plans = std::move(*plans);
  return fx;
}

RowRequest ArchiveRequest(const data::Dataset& archive, uint64_t session, size_t row) {
  RowRequest request;
  request.session_id = session;
  request.row_index = row;
  request.u = archive.u(row);
  request.s = archive.s(row);
  request.features = archive.Row(row);
  return request;
}

/// The offline ground truth for one session: OffSampleRepairer batch
/// repair of the whole archive under the session's seed.
data::Dataset OfflineRepair(const Fixture& fx, const RepairService& service,
                            uint64_t session) {
  core::RepairOptions options;
  options.seed = service.SessionSeed(session);
  options.threads = 1;
  auto repairer = core::OffSampleRepairer::Create(fx.plans, options);
  EXPECT_TRUE(repairer.ok());
  auto repaired = repairer->RepairDataset(fx.archive);
  EXPECT_TRUE(repaired.ok());
  return std::move(*repaired);
}

TEST(RepairServiceTest, SingleRowsMatchOfflineBatchBitForBit) {
  Fixture fx = MakeFixture(1);
  auto service = RepairService::Create(fx.plans, {});
  ASSERT_TRUE(service.ok());
  const data::Dataset offline = OfflineRepair(fx, **service, 0);
  RowResponse response;
  for (size_t i = 0; i < fx.archive.size(); ++i) {
    ASSERT_TRUE((*service)->RepairRow(ArchiveRequest(fx.archive, 0, i), &response).ok());
    for (size_t k = 0; k < fx.archive.dim(); ++k)
      ASSERT_EQ(response.repaired[k], offline.feature(i, k)) << "row " << i << " k " << k;
  }
}

TEST(RepairServiceTest, SessionSeedContract) {
  Fixture fx = MakeFixture(2);
  ServiceOptions options;
  options.seed = 1234;
  auto service = RepairService::Create(fx.plans, options);
  ASSERT_TRUE(service.ok());
  // Session 0 is literally the offline batch seed; other sessions get
  // decorrelated sub-seeds, stable across calls.
  EXPECT_EQ((*service)->SessionSeed(0), 1234u);
  EXPECT_NE((*service)->SessionSeed(1), 1234u);
  EXPECT_EQ((*service)->SessionSeed(7), (*service)->SessionSeed(7));
  EXPECT_NE((*service)->SessionSeed(1), (*service)->SessionSeed(2));
}

TEST(RepairServiceTest, RepairBatchMatchesSingleRows) {
  Fixture fx = MakeFixture(3);
  auto service = RepairService::Create(fx.plans, {});
  ASSERT_TRUE(service.ok());
  std::vector<RowRequest> requests;
  for (size_t i = 0; i < 200; ++i) requests.push_back(ArchiveRequest(fx.archive, 5, i));
  std::vector<RowResponse> batch;
  (*service)->RepairBatch(requests.data(), requests.size(), &batch);
  RowResponse single;
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(batch[i].status.ok());
    ASSERT_TRUE((*service)->RepairRow(requests[i], &single).ok());
    EXPECT_EQ(batch[i].repaired, single.repaired) << "row " << i;
  }
}

/// The full determinism gauntlet: kSessions threads replay the archive in
/// per-session shuffled orders through a shared Batcher while the main
/// thread hot-swaps an identical plan several times mid-stream. Every
/// session's collected output must equal its offline batch repair
/// bit-for-bit, for every service thread count.
void RunConcurrentReplay(int service_threads, bool reload_mid_stream) {
  Fixture fx = MakeFixture(4);
  ServiceOptions service_options;
  service_options.threads = service_threads;
  auto service = RepairService::Create(fx.plans, service_options);
  ASSERT_TRUE(service.ok());
  constexpr uint64_t kSessions = 4;
  const size_t rows = fx.archive.size();
  const size_t dim = fx.archive.dim();

  // Responses land here keyed by (session, row); the sink is concurrent.
  std::vector<std::vector<double>> collected(kSessions * rows);
  std::vector<std::atomic<int>> delivered(kSessions * rows);
  std::atomic<uint64_t> failures{0};
  BatcherOptions batcher_options;
  batcher_options.max_batch = 64;
  batcher_options.max_queue_depth = 256;
  batcher_options.background_flush = true;
  batcher_options.max_wait_us = 200;
  Batcher batcher(service->get(), batcher_options,
                  [&](const RowResponse& response) {
                    if (!response.status.ok()) {
                      failures.fetch_add(1);
                      return;
                    }
                    const size_t slot =
                        response.session_id * rows + response.row_index;
                    collected[slot] = response.repaired;
                    delivered[slot].fetch_add(1);
                  });

  std::atomic<bool> done{false};
  std::thread reloader;
  if (reload_mid_stream) {
    reloader = std::thread([&] {
      // Same plan, new snapshot: output must not change, nothing may drop.
      while (!done.load()) {
        EXPECT_TRUE((*service)->ReloadPlan(fx.plans).ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  std::vector<std::thread> sessions;
  for (uint64_t session = 0; session < kSessions; ++session) {
    sessions.emplace_back([&, session] {
      // Each session replays in its own shuffled order: determinism must
      // not depend on submission order.
      common::Rng order_rng(900 + session);
      const std::vector<size_t> order = order_rng.Permutation(rows);
      for (const size_t row : order) {
        RowRequest request = ArchiveRequest(fx.archive, session, row);
        while (true) {
          if (batcher.Submit(std::move(request)).ok()) break;
          batcher.Flush();  // backpressure: help drain, retry
        }
      }
    });
  }
  for (auto& t : sessions) t.join();
  batcher.Close();
  done.store(true);
  if (reloader.joinable()) reloader.join();

  ASSERT_EQ(failures.load(), 0u);
  for (uint64_t session = 0; session < kSessions; ++session) {
    const data::Dataset offline = OfflineRepair(fx, **service, session);
    for (size_t i = 0; i < rows; ++i) {
      const size_t slot = session * rows + i;
      ASSERT_EQ(delivered[slot].load(), 1)
          << "session " << session << " row " << i << " delivered "
          << delivered[slot].load() << " times";
      for (size_t k = 0; k < dim; ++k)
        ASSERT_EQ(collected[slot][k], offline.feature(i, k))
            << "session " << session << " row " << i << " k " << k;
    }
  }
  if (reload_mid_stream) {
    EXPECT_GT((*service)->plan_version(), 1u);
  }
}

TEST(RepairServiceTest, ConcurrentShuffledSessionsMatchOfflineSerial) {
  RunConcurrentReplay(/*service_threads=*/1, /*reload_mid_stream=*/false);
}

TEST(RepairServiceTest, ConcurrentShuffledSessionsMatchOfflineParallel) {
  RunConcurrentReplay(/*service_threads=*/4, /*reload_mid_stream=*/false);
}

TEST(RepairServiceTest, HotSwapUnderTrafficDropsAndCorruptsNothing) {
  RunConcurrentReplay(/*service_threads=*/2, /*reload_mid_stream=*/true);
}

TEST(RepairServiceTest, ReloadRejectsMismatchedDim) {
  Fixture fx = MakeFixture(5);
  auto service = RepairService::Create(fx.plans, {});
  ASSERT_TRUE(service.ok());
  common::Rng rng(6);
  sim::GaussianSimConfig wide = sim::GaussianSimConfig::PaperDefault();
  wide.dim = 3;
  for (int u = 0; u <= 1; ++u)
    for (int s = 0; s <= 1; ++s) wide.mean[u][s].resize(3, 0.0);
  auto research = sim::SimulateGaussianMixture(600, wide, rng);
  ASSERT_TRUE(research.ok());
  auto other_plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(other_plans.ok());
  EXPECT_FALSE((*service)->ReloadPlan(std::move(*other_plans)).ok());
  EXPECT_EQ((*service)->plan_version(), 1u);  // failed reload does not swap
}

TEST(RepairServiceTest, ReloadBumpsVersionAndResetsDrift) {
  Fixture fx = MakeFixture(7);
  auto service = RepairService::Create(fx.plans, {});
  ASSERT_TRUE(service.ok());
  RowResponse response;
  for (size_t i = 0; i < 50; ++i)
    ASSERT_TRUE((*service)->RepairRow(ArchiveRequest(fx.archive, 0, i), &response).ok());
  EXPECT_GT((*service)->Health().values_observed, 0u);
  ASSERT_TRUE((*service)->ReloadPlan(fx.plans).ok());
  EXPECT_EQ((*service)->plan_version(), 2u);
  EXPECT_EQ((*service)->metrics().Snapshot().reloads, 1u);
  // Drift restarts against the freshly installed design.
  EXPECT_EQ((*service)->Health().values_observed, 0u);
}

TEST(RepairServiceTest, DriftHealthFlagsShiftedTraffic) {
  Fixture fx = MakeFixture(8, /*archive_rows=*/3000);
  ServiceOptions options;
  options.drift_shards = 3;
  auto service = RepairService::Create(fx.plans, options);
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE((*service)->Health().drifted);
  // Stream a shifted mixture: every channel moves by 2 sigma.
  common::Rng rng(9);
  std::vector<RowRequest> requests;
  for (size_t i = 0; i < 3000; ++i) {
    RowRequest request = ArchiveRequest(fx.archive, 0, i);
    for (double& x : request.features) x += 2.0;
    requests.push_back(std::move(request));
  }
  std::vector<RowResponse> responses;
  (*service)->RepairBatch(requests.data(), requests.size(), &responses);
  const ServiceHealth health = (*service)->Health();
  EXPECT_TRUE(health.drifted);
  EXPECT_GT(health.worst_w1, 0.1);
  EXPECT_EQ(health.values_observed, 3000u * fx.archive.dim());
  const core::DriftReport report = (*service)->DriftSnapshot();
  EXPECT_TRUE(report.drifted);
  // JSON surfaces the verdict for the health endpoint.
  EXPECT_NE(health.ToJson().find("\"drifted\":true"), std::string::npos);
}

TEST(RepairServiceTest, InvalidRowsReportPerRowStatus) {
  Fixture fx = MakeFixture(10);
  auto service = RepairService::Create(fx.plans, {});
  ASSERT_TRUE(service.ok());
  RowRequest bad_dim = ArchiveRequest(fx.archive, 0, 0);
  bad_dim.features.pop_back();
  RowRequest bad_label = ArchiveRequest(fx.archive, 0, 1);
  bad_label.u = 2;
  RowRequest good = ArchiveRequest(fx.archive, 0, 2);
  std::vector<RowRequest> requests;
  requests.push_back(std::move(bad_dim));
  requests.push_back(std::move(bad_label));
  requests.push_back(std::move(good));
  std::vector<RowResponse> responses;
  (*service)->RepairBatch(requests.data(), requests.size(), &responses);
  EXPECT_EQ(responses[0].status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_EQ(responses[1].status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_TRUE(responses[2].status.ok());
  const MetricsSnapshot metrics = (*service)->metrics().Snapshot();
  EXPECT_EQ(metrics.rows_invalid, 2u);
  EXPECT_EQ(metrics.rows_repaired, 1u);
  // Invalid rows must not pollute the drift accumulator.
  EXPECT_EQ((*service)->Health().values_observed, fx.archive.dim());
}

TEST(RepairServiceTest, ConcurrentReloadsAreMonotoneAndLastWriterWins) {
  // The documented concurrent-reload contract: calls serialize, every
  // successful call installs a strictly greater version (no torn or
  // reordered installs), and observed versions never decrease.
  Fixture fx = MakeFixture(12);
  auto service = RepairService::Create(fx.plans, {});
  ASSERT_TRUE(service.ok());
  constexpr int kThreads = 4;
  constexpr int kReloadsPerThread = 25;
  std::atomic<bool> start{false};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> monotonicity_violations{0};
  // A watcher hammers plan_version() and Health() during the storm: the
  // version must be non-decreasing from any single observer's viewpoint.
  std::thread watcher([&] {
    uint64_t last = 0;
    while (!done.load()) {
      const uint64_t v = (*service)->plan_version();
      if (v < last) monotonicity_violations.fetch_add(1);
      last = v;
      // Health snapshots ride the same atomic: never older than a version
      // this observer already saw.
      const ServiceHealth h = (*service)->Health();
      if (h.plan_version < last) monotonicity_violations.fetch_add(1);
      last = h.plan_version;
    }
  });
  std::vector<std::thread> reloaders;
  for (int t = 0; t < kThreads; ++t) {
    reloaders.emplace_back([&] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < kReloadsPerThread; ++i)
        EXPECT_TRUE((*service)->ReloadPlan(fx.plans).ok());
    });
  }
  start.store(true);
  for (auto& t : reloaders) t.join();
  done.store(true);
  watcher.join();
  EXPECT_EQ(monotonicity_violations.load(), 0u);
  // Every successful reload got its own version; the final state is the
  // last writer's install.
  EXPECT_EQ((*service)->plan_version(), 1u + kThreads * kReloadsPerThread);
  const ServiceHealth health = (*service)->Health();
  EXPECT_EQ(health.reloads_total, static_cast<uint64_t>(kThreads * kReloadsPerThread));
  EXPECT_EQ(health.reloads_failed, 0u);
}

TEST(RepairServiceTest, FailedReloadCountsAndKeepsServingVersion) {
  Fixture fx = MakeFixture(13);
  auto service = RepairService::Create(fx.plans, {});
  ASSERT_TRUE(service.ok());
  // A dim-mismatched plan is rejected: version unchanged, failure counted,
  // and the health JSON carries both reload counters.
  common::Rng rng(14);
  sim::GaussianSimConfig wide = sim::GaussianSimConfig::PaperDefault();
  wide.dim = 3;
  for (int u = 0; u <= 1; ++u)
    for (int s = 0; s <= 1; ++s) wide.mean[u][s].resize(3, 0.0);
  auto research = sim::SimulateGaussianMixture(600, wide, rng);
  ASSERT_TRUE(research.ok());
  auto bad_plans = core::DesignDistributionalRepair(*research, {});
  ASSERT_TRUE(bad_plans.ok());
  EXPECT_FALSE((*service)->ReloadPlan(std::move(*bad_plans)).ok());
  ASSERT_TRUE((*service)->ReloadPlan(fx.plans).ok());
  const ServiceHealth health = (*service)->Health();
  EXPECT_EQ(health.plan_version, 2u);
  EXPECT_EQ(health.reloads_total, 1u);
  EXPECT_EQ(health.reloads_failed, 1u);
  const std::string json = health.ToJson();
  EXPECT_NE(json.find("\"reloads_total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"reloads_failed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"healthy\""), std::string::npos);
}

TEST(RepairServiceTest, SuccessfulReloadClearsDegraded) {
  Fixture fx = MakeFixture(15);
  auto service = RepairService::Create(fx.plans, {});
  ASSERT_TRUE(service.ok());
  (*service)->SetDegraded(true);
  EXPECT_STREQ((*service)->Health().state(), "degraded");
  EXPECT_NE((*service)->Health().ToJson().find("\"state\":\"degraded\""),
            std::string::npos);
  ASSERT_TRUE((*service)->ReloadPlan(fx.plans).ok());
  EXPECT_FALSE((*service)->degraded());
  EXPECT_STREQ((*service)->Health().state(), "healthy");
}

TEST(RepairServiceTest, SketchesAccumulatePerChannelAndResetOnReload) {
  Fixture fx = MakeFixture(16);
  ServiceOptions options;
  options.sketch_sample_every = 1;  // sketch every row
  auto service = RepairService::Create(fx.plans, options);
  ASSERT_TRUE(service.ok());
  const size_t dim = fx.archive.dim();
  std::vector<RowRequest> requests;
  for (size_t i = 0; i < 500; ++i) requests.push_back(ArchiveRequest(fx.archive, 0, i));
  std::vector<RowResponse> responses;
  (*service)->RepairBatch(requests.data(), requests.size(), &responses);
  const auto sketches = (*service)->SketchSnapshot();
  ASSERT_EQ(sketches.size(), 2 * 2 * dim);  // (u, s, k) channels
  uint64_t total = 0;
  for (const auto& sketch : sketches) total += sketch.count();
  EXPECT_EQ(total, 500 * dim);  // every row sketched exactly once
  // Reload restarts the sketches with the drift accumulator.
  ASSERT_TRUE((*service)->ReloadPlan(fx.plans).ok());
  for (const auto& sketch : (*service)->SketchSnapshot()) EXPECT_EQ(sketch.count(), 0u);
}

TEST(RepairServiceTest, SketchSamplingHonorsCadence) {
  Fixture fx = MakeFixture(17);
  ServiceOptions options;
  options.sketch_sample_every = 4;
  auto service = RepairService::Create(fx.plans, options);
  ASSERT_TRUE(service.ok());
  RowResponse response;
  for (size_t i = 0; i < 400; ++i)
    ASSERT_TRUE((*service)->RepairRow(ArchiveRequest(fx.archive, 0, i), &response).ok());
  uint64_t total = 0;
  for (const auto& sketch : (*service)->SketchSnapshot()) total += sketch.count();
  EXPECT_EQ(total, 100 * fx.archive.dim());  // rows 0, 4, 8, ...
  // Disabled sketches: empty snapshot, zero overhead.
  ServiceOptions off;
  off.sketch_sample_every = 0;
  auto plain = RepairService::Create(fx.plans, off);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE((*plain)->RepairRow(ArchiveRequest(fx.archive, 0, 0), &response).ok());
  EXPECT_TRUE((*plain)->SketchSnapshot().empty());
}

TEST(RepairServiceTest, RejectsBadOptions) {
  Fixture fx = MakeFixture(11);
  ServiceOptions options;
  options.drift_shards = 0;
  EXPECT_FALSE(RepairService::Create(fx.plans, options).ok());
}

}  // namespace
}  // namespace otfair::serve
