// Self-heal loop contract tests. The load-bearing ones:
//
//  - A drifted stream with ripe sketches redesigns and hot-swaps: plan
//    version bumps, drift clears, service stays healthy.
//  - EVERY injected fault (throw, timeout, invalid plan, slow sketch
//    merge under a tiny deadline) leaves the service serving bit-identical
//    output on the old snapshot — a failed redesign is invisible to
//    traffic.
//  - Retry exhaustion flags `degraded` (sticky, still serving); a
//    transient fault is absorbed by the retry budget without degrading.

#include "serve/redesigner.h"

#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/designer.h"
#include "serve/fault_injector.h"
#include "serve/repair_service.h"
#include "sim/gaussian_mixture.h"

namespace otfair::serve {
namespace {

using Clock = std::chrono::steady_clock;

struct Fixture {
  data::Dataset research;
  data::Dataset archive;
  core::RepairPlanSet plans;
};

Fixture MakeFixture(uint64_t seed, size_t archive_rows = 4000) {
  Fixture fx;
  common::Rng rng(seed);
  auto research =
      sim::SimulateGaussianMixture(800, sim::GaussianSimConfig::PaperDefault(), rng);
  auto archive = sim::SimulateGaussianMixture(
      archive_rows, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(research.ok() && archive.ok());
  fx.research = std::move(*research);
  fx.archive = std::move(*archive);
  auto plans = core::DesignDistributionalRepair(fx.research, {});
  EXPECT_TRUE(plans.ok());
  fx.plans = std::move(*plans);
  return fx;
}

/// Streams `count` rows (the whole archive when 0) through the service
/// with every feature moved by `shift`, at row indices starting from
/// `begin` (archive rows recycle modulo its size) — enough to trip drift
/// and fill every channel's sketch, and reusable for continuing traffic.
void StreamShifted(RepairService* service, const data::Dataset& archive, double shift,
                   uint64_t begin = 0, size_t count = 0) {
  const size_t n = count == 0 ? archive.size() : count;
  std::vector<RowRequest> requests;
  requests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t src = static_cast<size_t>((begin + i) % archive.size());
    RowRequest request;
    request.session_id = 0;
    request.row_index = begin + i;
    request.u = archive.u(src);
    request.s = archive.s(src);
    request.features = archive.Row(src);
    for (double& x : request.features) x += shift;
    requests.push_back(std::move(request));
  }
  std::vector<RowResponse> responses;
  service->RepairBatch(requests.data(), requests.size(), &responses);
  for (const RowResponse& response : responses) ASSERT_TRUE(response.status.ok());
}

/// Service with per-row sketching so unit tests ripen sketches quickly.
std::unique_ptr<RepairService> MakeService(Fixture& fx, std::string faults = "") {
  ServiceOptions options;
  options.sketch_sample_every = 1;
  options.faults = std::move(faults);
  auto service = RepairService::Create(fx.plans, options);
  EXPECT_TRUE(service.ok()) << service.status();
  return std::move(*service);
}

/// A redesigner whose background thread is effectively inert (huge poll
/// interval), so tests drive AttemptRedesign() synchronously.
std::unique_ptr<Redesigner> MakeInertRedesigner(RepairService* service,
                                                RedesignerOptions options = {}) {
  options.poll_interval_ms = 1000000;
  auto redesigner = Redesigner::Create(service, options);
  EXPECT_TRUE(redesigner.ok()) << redesigner.status();
  return std::move(*redesigner);
}

/// Waits for `predicate` while keeping shifted traffic flowing at fresh
/// row indices — the self-heal loop restarts the sketches when an episode
/// opens, so it needs live post-drift rows to ripen them.
bool WaitWithShiftedTraffic(RepairService* service, const data::Dataset& archive,
                            uint64_t* next_row, const std::function<bool()>& predicate,
                            int timeout_ms = 90000) {
  const Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (predicate()) return true;
    StreamShifted(service, archive, 2.0, *next_row, 200);
    *next_row += 200;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

// --- FaultInjector unit tests ----------------------------------------------

TEST(FaultInjectorTest, DefaultInjectorIsInert) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.ShouldInject(Fault::kRedesignThrow));
  EXPECT_EQ(injector.fired(Fault::kRedesignThrow), 0u);
}

TEST(FaultInjectorTest, ParsesCountedAndUnlimitedSpecs) {
  auto injector = FaultInjector::Parse("redesign_throw:2,invalid_plan");
  ASSERT_TRUE(injector.ok()) << injector.status();
  EXPECT_TRUE(injector->armed());
  // Counted budget: exactly 2 fires, then disarmed.
  EXPECT_TRUE(injector->ShouldInject(Fault::kRedesignThrow));
  EXPECT_TRUE(injector->ShouldInject(Fault::kRedesignThrow));
  EXPECT_FALSE(injector->ShouldInject(Fault::kRedesignThrow));
  EXPECT_EQ(injector->fired(Fault::kRedesignThrow), 2u);
  // Unlimited budget never disarms.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(injector->ShouldInject(Fault::kInvalidPlan));
  EXPECT_TRUE(injector->armed());
  // Unrequested faults stay silent.
  EXPECT_FALSE(injector->ShouldInject(Fault::kRedesignTimeout));
}

TEST(FaultInjectorTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultInjector::Parse("no_such_fault").ok());
  EXPECT_FALSE(FaultInjector::Parse("redesign_throw:0").ok());
  EXPECT_FALSE(FaultInjector::Parse("redesign_throw:-1").ok());
  EXPECT_FALSE(FaultInjector::Parse("redesign_throw:abc").ok());
  EXPECT_FALSE(FaultInjector::Parse(",").ok());
  EXPECT_TRUE(FaultInjector::Parse("").ok());  // empty = inactive, not an error
  EXPECT_FALSE(FaultInjector::Parse("")->armed());
}

TEST(FaultInjectorTest, ReadsSpecFromEnvironment) {
  ASSERT_EQ(setenv("OTFAIR_FAULTS", "slow_sketch_merge:1", 1), 0);
  auto injector = FaultInjector::FromEnv();
  ASSERT_TRUE(injector.ok()) << injector.status();
  EXPECT_TRUE(injector->ShouldInject(Fault::kSlowSketchMerge));
  EXPECT_FALSE(injector->ShouldInject(Fault::kSlowSketchMerge));
  ASSERT_EQ(setenv("OTFAIR_FAULTS", "garbage_spec", 1), 0);
  EXPECT_FALSE(FaultInjector::FromEnv().ok());  // malformed env is surfaced
  ASSERT_EQ(unsetenv("OTFAIR_FAULTS"), 0);
  auto unset = FaultInjector::FromEnv();
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset->armed());
}

TEST(FaultInjectorTest, FaultNamesRoundTripThroughParser) {
  for (int i = 0; i < kFaultCount; ++i) {
    const Fault fault = static_cast<Fault>(i);
    auto injector = FaultInjector::Parse(FaultName(fault) + ":1");
    ASSERT_TRUE(injector.ok()) << FaultName(fault);
    EXPECT_TRUE(injector->ShouldInject(fault)) << FaultName(fault);
  }
}

// --- Redesigner construction ------------------------------------------------

TEST(RedesignerTest, RequiresSketchesEnabled) {
  Fixture fx = MakeFixture(1);
  ServiceOptions options;
  options.sketch_sample_every = 0;  // sketches off => nothing to redesign from
  auto service = RepairService::Create(fx.plans, options);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(Redesigner::Create(service->get()).status().code(),
            common::StatusCode::kFailedPrecondition);
}

TEST(RedesignerTest, RejectsBadOptions) {
  Fixture fx = MakeFixture(2);
  auto service = MakeService(fx);
  RedesignerOptions bad;
  bad.max_retries = 0;
  EXPECT_FALSE(Redesigner::Create(service.get(), bad).ok());
  bad = {};
  bad.backoff_max_ms = 1;
  bad.backoff_initial_ms = 10;  // max < initial
  EXPECT_FALSE(Redesigner::Create(service.get(), bad).ok());
  bad = {};
  bad.faults = "not_a_fault";
  EXPECT_FALSE(Redesigner::Create(service.get(), bad).ok());
  EXPECT_FALSE(Redesigner::Create(nullptr, {}).ok());
}

// --- Synchronous redesign attempts ------------------------------------------

TEST(RedesignerTest, RedesignFromShiftedStreamHotSwapsAndClearsDrift) {
  Fixture fx = MakeFixture(3);
  auto service = MakeService(fx);
  StreamShifted(service.get(), fx.archive, 2.0);
  ASSERT_TRUE(service->Health().drifted);
  const core::DriftReport before = service->DriftSnapshot();

  auto redesigner = MakeInertRedesigner(service.get());
  const common::Status status = redesigner->AttemptRedesign();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(service->plan_version(), 2u);
  EXPECT_EQ(service->metrics().Snapshot().reloads, 1u);
  EXPECT_FALSE(service->degraded());
  // Drift restarts against the redesigned plan; the shifted stream that
  // tripped the old plan must now fit.
  EXPECT_EQ(service->Health().values_observed, 0u);
  StreamShifted(service.get(), fx.archive, 2.0);
  const ServiceHealth after = service->Health();
  EXPECT_FALSE(after.drifted) << "worst_w1 " << after.worst_w1 << " (was "
                              << before.worst_w1 << ")";
  EXPECT_LT(after.worst_w1, before.worst_w1);
}

TEST(RedesignerTest, RedesignedPlanKeepsGeometry) {
  Fixture fx = MakeFixture(4);
  auto service = MakeService(fx);
  const RepairService::PlanGeometry before = service->Geometry();
  StreamShifted(service.get(), fx.archive, 2.0);
  auto redesigner = MakeInertRedesigner(service.get());
  ASSERT_TRUE(redesigner->AttemptRedesign().ok());
  const RepairService::PlanGeometry after = service->Geometry();
  EXPECT_EQ(after.n_q, before.n_q);
  EXPECT_EQ(after.feature_names, before.feature_names);
  EXPECT_EQ(after.lambdas, before.lambdas);
  EXPECT_EQ(after.target_t, before.target_t);
}

TEST(RedesignerTest, UndriftedServiceDoesNotRedesign) {
  // The background loop must not touch a healthy service: stream fitting
  // traffic, let several polls pass, and verify nothing changed.
  Fixture fx = MakeFixture(5, /*archive_rows=*/2000);
  auto service = MakeService(fx);
  StreamShifted(service.get(), fx.archive, 0.0);
  ASSERT_FALSE(service->Health().drifted);
  RedesignerOptions options;
  options.poll_interval_ms = 5;
  auto redesigner = Redesigner::Create(service.get(), options);
  ASSERT_TRUE(redesigner.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ((*redesigner)->stats().drift_trips, 0u);
  EXPECT_EQ(service->plan_version(), 1u);
}

/// Shared harness for the fault legs: trip drift, inject `faults`, attempt
/// one redesign, and require the failure to be invisible to traffic — the
/// old snapshot keeps serving bit-identical output.
void RunFaultLeg(const std::string& faults, common::StatusCode expected_code,
                 RedesignerOptions options = {}) {
  Fixture fx = MakeFixture(6);
  auto service = MakeService(fx);
  StreamShifted(service.get(), fx.archive, 2.0);
  ASSERT_TRUE(service->Health().drifted);

  RowRequest probe;
  probe.session_id = 9;
  probe.row_index = 42;
  probe.u = fx.archive.u(0);
  probe.s = fx.archive.s(0);
  probe.features = fx.archive.Row(0);
  RowResponse before;
  ASSERT_TRUE(service->RepairRow(probe, &before).ok());

  options.faults = faults;
  auto redesigner = MakeInertRedesigner(service.get(), options);
  const common::Status status = redesigner->AttemptRedesign();
  ASSERT_FALSE(status.ok()) << "fault spec: " << faults;
  EXPECT_EQ(status.code(), expected_code) << status;

  // The failed attempt is invisible: same plan, same bit-identical output,
  // not degraded (a single direct attempt is not retry exhaustion).
  EXPECT_EQ(service->plan_version(), 1u);
  EXPECT_FALSE(service->degraded());
  RowResponse after;
  ASSERT_TRUE(service->RepairRow(probe, &after).ok());
  EXPECT_EQ(after.repaired, before.repaired);
  EXPECT_EQ(service->metrics().Snapshot().reloads, 0u);
}

TEST(RedesignerFaultTest, RedesignThrowLeavesOldSnapshotServing) {
  RunFaultLeg("redesign_throw", common::StatusCode::kInternal);
}

TEST(RedesignerFaultTest, InvalidPlanIsRejectedByValidation) {
  RunFaultLeg("invalid_plan", common::StatusCode::kFailedPrecondition);
}

TEST(RedesignerFaultTest, TimeoutDiscardsLateResult) {
  RedesignerOptions options;
  options.redesign_timeout_ms = 50;
  RunFaultLeg("redesign_timeout", common::StatusCode::kUnavailable, options);
}

TEST(RedesignerFaultTest, SlowSketchMergeUnderTinyDeadlineTimesOut) {
  RedesignerOptions options;
  options.redesign_timeout_ms = 5;  // the injected 20 ms merge stall blows it
  RunFaultLeg("slow_sketch_merge", common::StatusCode::kUnavailable, options);
}

TEST(RedesignerFaultTest, ServiceOptionsFaultSpecIsHonored) {
  // Faults can arrive via ServiceOptions too (the CLI --faults path).
  Fixture fx = MakeFixture(7);
  auto service = MakeService(fx, /*faults=*/"redesign_throw:1");
  StreamShifted(service.get(), fx.archive, 2.0);
  auto redesigner = MakeInertRedesigner(service.get());
  EXPECT_EQ(redesigner->AttemptRedesign().code(), common::StatusCode::kInternal);
  // Budget of 1 consumed: the next attempt sails through and hot-swaps.
  EXPECT_TRUE(redesigner->AttemptRedesign().ok());
  EXPECT_EQ(service->plan_version(), 2u);
}

// --- Background loop --------------------------------------------------------

TEST(RedesignerLoopTest, SelfHealsInBackgroundEndToEnd) {
  Fixture fx = MakeFixture(8);
  auto service = MakeService(fx);
  StreamShifted(service.get(), fx.archive, 2.0);
  ASSERT_TRUE(service->Health().drifted);
  RedesignerOptions options;
  options.poll_interval_ms = 5;
  options.backoff_initial_ms = 1;
  auto redesigner = Redesigner::Create(service.get(), options);
  ASSERT_TRUE(redesigner.ok());
  uint64_t next_row = fx.archive.size();
  ASSERT_TRUE(WaitWithShiftedTraffic(service.get(), fx.archive, &next_row,
                                     [&] { return service->plan_version() >= 2; }))
      << "self-heal did not reload; last error: " << (*redesigner)->last_error();
  const ServiceHealth health = service->Health();
  EXPECT_FALSE(health.degraded);
  EXPECT_EQ(health.reloads_total, 1u);
  EXPECT_STREQ(health.state(), "healthy");
  const RedesignerStats stats = (*redesigner)->stats();
  EXPECT_EQ(stats.drift_trips, 1u);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.gave_up, 0u);
}

TEST(RedesignerLoopTest, RetryExhaustionDegradesButKeepsServing) {
  Fixture fx = MakeFixture(9);
  auto service = MakeService(fx);
  StreamShifted(service.get(), fx.archive, 2.0);
  RedesignerOptions options;
  options.poll_interval_ms = 5;
  options.max_retries = 2;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 4;
  options.cooldown_ms = 60000;  // one episode only
  options.faults = "redesign_throw";  // unlimited: every attempt fails
  auto redesigner = Redesigner::Create(service.get(), options);
  ASSERT_TRUE(redesigner.ok());
  uint64_t next_row = fx.archive.size();
  ASSERT_TRUE(WaitWithShiftedTraffic(service.get(), fx.archive, &next_row,
                                     [&] { return service->degraded(); }));
  const RedesignerStats stats = (*redesigner)->stats();
  EXPECT_EQ(stats.gave_up, 1u);
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.failures, 2u);
  EXPECT_EQ(stats.reloads, 0u);
  EXPECT_EQ((*redesigner)->last_error().code(), common::StatusCode::kInternal);

  // Degraded, not dead: the old snapshot still serves, health says so.
  const ServiceHealth health = service->Health();
  EXPECT_STREQ(health.state(), "degraded");
  EXPECT_EQ(health.plan_version, 1u);
  RowRequest probe;
  probe.u = fx.archive.u(0);
  probe.s = fx.archive.s(0);
  probe.features = fx.archive.Row(0);
  RowResponse response;
  EXPECT_TRUE(service->RepairRow(probe, &response).ok());

  // Degraded is sticky for the loop (no more episodes)...
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ((*redesigner)->stats().gave_up, 1u);
  // ...until an operator reload clears it.
  ASSERT_TRUE(service->ReloadPlan(fx.plans).ok());
  EXPECT_FALSE(service->degraded());
  EXPECT_STREQ(service->Health().state(), "healthy");
}

TEST(RedesignerLoopTest, TransientFaultIsAbsorbedByRetries) {
  Fixture fx = MakeFixture(10);
  auto service = MakeService(fx);
  StreamShifted(service.get(), fx.archive, 2.0);
  RedesignerOptions options;
  options.poll_interval_ms = 5;
  options.max_retries = 3;
  options.backoff_initial_ms = 1;
  options.faults = "redesign_throw:1";  // first attempt fails, then clean
  auto redesigner = Redesigner::Create(service.get(), options);
  ASSERT_TRUE(redesigner.ok());
  uint64_t next_row = fx.archive.size();
  ASSERT_TRUE(WaitWithShiftedTraffic(service.get(), fx.archive, &next_row,
                                     [&] { return service->plan_version() >= 2; }));
  const RedesignerStats stats = (*redesigner)->stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_FALSE(service->degraded());
}

TEST(RedesignerLoopTest, QuietStreamFallsBackToPreTripSketches) {
  // A finite stream that ends right after tripping drift (the replay
  // drain scenario): no post-drift traffic ever arrives, so the episode's
  // restarted sketches never ripen. After fresh_sketch_wait_ms the loop
  // must redesign from the pre-trip stash instead of waiting forever.
  Fixture fx = MakeFixture(12);
  auto service = MakeService(fx);
  StreamShifted(service.get(), fx.archive, 2.0);  // then silence
  ASSERT_TRUE(service->Health().drifted);
  RedesignerOptions options;
  options.poll_interval_ms = 5;
  options.backoff_initial_ms = 1;
  options.fresh_sketch_wait_ms = 50;
  auto redesigner = Redesigner::Create(service.get(), options);
  ASSERT_TRUE(redesigner.ok());
  const Clock::time_point deadline = Clock::now() + std::chrono::seconds(20);
  while (service->plan_version() < 2 && Clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(service->plan_version(), 2u)
      << "fallback never reloaded; last error: " << (*redesigner)->last_error();
  EXPECT_FALSE(service->degraded());
}

TEST(RedesignerLoopTest, StopIsIdempotentAndJoins) {
  Fixture fx = MakeFixture(11);
  auto service = MakeService(fx);
  RedesignerOptions options;
  options.poll_interval_ms = 5;
  auto redesigner = Redesigner::Create(service.get(), options);
  ASSERT_TRUE(redesigner.ok());
  (*redesigner)->Stop();
  (*redesigner)->Stop();  // second stop is a no-op, destructor a third
}

}  // namespace
}  // namespace otfair::serve
