// Checkpoint subsystem contracts:
//
//  - serialize -> parse is a bit-identical round trip for every field,
//    including sketch and drift payloads;
//  - every corruption class (truncation at any prefix, bit flips,
//    oversize, wrong magic/version, CRC mismatch) is rejected with a
//    clean Status — never a crash, hang, or huge allocation;
//  - recovery picks the newest intact generation, falling back past
//    corrupt files, and reports kNotFound when nothing validates;
//  - the live Checkpointer writes parseable generations under concurrent
//    ReloadPlan traffic and prunes beyond its retention window.

#include "serve/checkpointer.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/byte_io.h"
#include "common/file_util.h"
#include "common/rng.h"
#include "core/designer.h"
#include "sim/gaussian_mixture.h"

namespace otfair::serve {
namespace {

core::RepairPlanSet DesignedPlans(uint64_t seed, size_t n_q = 20) {
  common::Rng rng(seed);
  auto research =
      sim::SimulateGaussianMixture(400, sim::GaussianSimConfig::PaperDefault(), rng);
  EXPECT_TRUE(research.ok());
  core::DesignOptions options;
  options.n_q = n_q;
  auto plans = core::DesignDistributionalRepair(*research, options);
  EXPECT_TRUE(plans.ok());
  return *plans;
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  // Wipe leftovers from a previous run so every test starts empty.
  if (DIR* handle = ::opendir(dir.c_str())) {
    while (const struct dirent* entry = ::readdir(handle)) {
      const std::string file = entry->d_name;
      if (file != "." && file != "..") ::unlink((dir + "/" + file).c_str());
    }
    ::closedir(handle);
  }
  return dir;
}

/// A populated CheckpointData: real plans, drift counts, and sketches from
/// a service that has observed traffic.
CheckpointData MakeCheckpoint(uint64_t seed, uint64_t generation = 7) {
  auto service = RepairService::Create(DesignedPlans(seed), {});
  EXPECT_TRUE(service.ok());
  common::Rng rng(seed + 100);
  RowResponse response;
  for (size_t i = 0; i < 400; ++i) {
    RowRequest request;
    request.session_id = 0;
    request.row_index = i;
    request.u = static_cast<int>(i % 2);
    request.s = static_cast<int>((i / 2) % 2);
    request.features = {rng.Normal(), rng.Normal()};
    EXPECT_TRUE((*service)->RepairRow(request, &response).ok());
  }
  RepairService::CheckpointState state = (*service)->StateForCheckpoint();
  CheckpointData data;
  data.generation = generation;
  data.plan_version = state.plan_version;
  data.degraded = state.degraded;
  data.episode_open = true;
  data.seed = (*service)->options().seed;
  data.mode = static_cast<uint32_t>((*service)->options().mode);
  data.strength = (*service)->options().strength;
  data.sketch_sample_every = (*service)->options().sketch_sample_every;
  data.plans = std::move(state.plans);
  common::ByteWriter writer(&data.drift_counts);
  state.drift->SerializeCounts(writer);
  data.sketches = std::move(state.sketches);
  return data;
}

TEST(CheckpointSerializationTest, RoundTripIsBitIdentical) {
  const CheckpointData data = MakeCheckpoint(1);
  const std::string bytes = SerializeCheckpoint(data);
  auto parsed = ParseCheckpoint(bytes.data(), bytes.size(), "test");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->generation, data.generation);
  EXPECT_EQ(parsed->plan_version, data.plan_version);
  EXPECT_EQ(parsed->degraded, data.degraded);
  EXPECT_EQ(parsed->episode_open, data.episode_open);
  EXPECT_EQ(parsed->seed, data.seed);
  EXPECT_EQ(parsed->mode, data.mode);
  EXPECT_EQ(parsed->strength, data.strength);
  EXPECT_EQ(parsed->sketch_sample_every, data.sketch_sample_every);
  EXPECT_EQ(parsed->drift_counts, data.drift_counts);
  // Plan and sketches re-serialize to the same bytes — the strongest
  // bit-identity statement without field-by-field plumbing.
  EXPECT_EQ(parsed->plans.SerializeToString(), data.plans.SerializeToString());
  ASSERT_EQ(parsed->sketches.size(), data.sketches.size());
  for (size_t i = 0; i < data.sketches.size(); ++i) {
    EXPECT_EQ(parsed->sketches[i].count(), data.sketches[i].count());
    if (data.sketches[i].count() > 0) {
      EXPECT_EQ(parsed->sketches[i].Quantile(0.5), data.sketches[i].Quantile(0.5));
      EXPECT_EQ(parsed->sketches[i].min(), data.sketches[i].min());
      EXPECT_EQ(parsed->sketches[i].max(), data.sketches[i].max());
    }
  }
  // Determinism: serializing the parsed copy reproduces the input bytes.
  EXPECT_EQ(SerializeCheckpoint(*parsed), bytes);
}

TEST(CheckpointSerializationTest, EveryTruncationIsRejectedCleanly) {
  const std::string bytes = SerializeCheckpoint(MakeCheckpoint(2));
  // Every 97th prefix plus all short-header lengths: the parser must
  // reject each with a Status (size mismatch at the header), not read
  // out of bounds.
  for (size_t len = 0; len < bytes.size(); len = len < 32 ? len + 1 : len + 97) {
    auto parsed = ParseCheckpoint(bytes.data(), len, "trunc");
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(CheckpointSerializationTest, OversizedPayloadIsRejected) {
  std::string bytes = SerializeCheckpoint(MakeCheckpoint(3));
  bytes += "extra trailing junk";
  auto parsed = ParseCheckpoint(bytes.data(), bytes.size(), "oversize");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("size"), std::string::npos);
}

TEST(CheckpointSerializationTest, BitFlipsAreCaughtByCrc) {
  const std::string pristine = SerializeCheckpoint(MakeCheckpoint(4));
  // Flip one bit at a spread of positions across header and payload.
  for (size_t pos = 0; pos < pristine.size(); pos += 211) {
    std::string bytes = pristine;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x10);
    auto parsed = ParseCheckpoint(bytes.data(), bytes.size(), "flip");
    EXPECT_FALSE(parsed.ok()) << "bit flip at " << pos << " went unnoticed";
  }
}

TEST(CheckpointSerializationTest, WrongMagicAndVersionAreRejected) {
  const std::string pristine = SerializeCheckpoint(MakeCheckpoint(5));
  {
    std::string bytes = pristine;
    bytes[0] = 'X';
    auto parsed = ParseCheckpoint(bytes.data(), bytes.size(), "magic");
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("magic"), std::string::npos);
  }
  {
    std::string bytes = pristine;
    bytes[4] = 99;  // format version field
    auto parsed = ParseCheckpoint(bytes.data(), bytes.size(), "version");
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("version"), std::string::npos);
  }
}

TEST(CheckpointRecoveryTest, PicksNewestIntactGeneration) {
  const std::string dir = TempDirFor("recover_newest");
  for (uint64_t gen : {1u, 2u, 3u}) {
    CheckpointData data = MakeCheckpoint(6, gen);
    ASSERT_TRUE(
        common::AtomicWriteFile(CheckpointPath(dir, gen), SerializeCheckpoint(data)).ok());
  }
  auto recovered = RecoverNewestCheckpoint(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->data.generation, 3u);
  EXPECT_TRUE(recovered->skipped.empty());
}

TEST(CheckpointRecoveryTest, FallsBackPastCorruptNewerGenerations) {
  const std::string dir = TempDirFor("recover_fallback");
  for (uint64_t gen : {1u, 2u}) {
    CheckpointData data = MakeCheckpoint(7, gen);
    ASSERT_TRUE(
        common::AtomicWriteFile(CheckpointPath(dir, gen), SerializeCheckpoint(data)).ok());
  }
  // Generation 3: torn write (truncated). Generation 4: bit flip.
  std::string bytes = SerializeCheckpoint(MakeCheckpoint(7, 3));
  ASSERT_TRUE(common::AtomicWriteFile(CheckpointPath(dir, 3),
                                      bytes.substr(0, bytes.size() / 2))
                  .ok());
  bytes = SerializeCheckpoint(MakeCheckpoint(7, 4));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  ASSERT_TRUE(common::AtomicWriteFile(CheckpointPath(dir, 4), bytes).ok());

  auto recovered = RecoverNewestCheckpoint(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->data.generation, 2u);
  // Both bad generations are reported, newest first.
  ASSERT_EQ(recovered->skipped.size(), 2u);
  EXPECT_NE(recovered->skipped[0].find("00000000000000000004"), std::string::npos);
  EXPECT_NE(recovered->skipped[1].find("00000000000000000003"), std::string::npos);
}

TEST(CheckpointRecoveryTest, MismatchedFilenameGenerationIsSkipped) {
  const std::string dir = TempDirFor("recover_rename");
  // An intact generation-2 checkpoint renamed to claim generation 9: the
  // filename key and the payload's generation field must agree, so a
  // "newest" forged by renaming cannot shadow the real newest.
  CheckpointData data = MakeCheckpoint(8, 2);
  ASSERT_TRUE(
      common::AtomicWriteFile(CheckpointPath(dir, 9), SerializeCheckpoint(data)).ok());
  CheckpointData real = MakeCheckpoint(8, 3);
  ASSERT_TRUE(
      common::AtomicWriteFile(CheckpointPath(dir, 3), SerializeCheckpoint(real)).ok());
  auto recovered = RecoverNewestCheckpoint(dir);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->data.generation, 3u);
  ASSERT_EQ(recovered->skipped.size(), 1u);
}

TEST(CheckpointRecoveryTest, NothingIntactIsNotFound) {
  const std::string missing = ::testing::TempDir() + "/recover_missing_dir";
  EXPECT_EQ(RecoverNewestCheckpoint(missing).status().code(),
            common::StatusCode::kNotFound);

  const std::string dir = TempDirFor("recover_all_corrupt");
  ASSERT_TRUE(common::AtomicWriteFile(CheckpointPath(dir, 1), "garbage").ok());
  auto recovered = RecoverNewestCheckpoint(dir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), common::StatusCode::kNotFound);
  // The rejection reason is surfaced for the operator's log line.
  EXPECT_NE(recovered.status().message().find("00000000000000000001"), std::string::npos);
}

TEST(CheckpointerTest, WriteNowLandsParseableGenerationsAndCounts) {
  const std::string dir = TempDirFor("writer_basic");
  auto service = RepairService::Create(DesignedPlans(9), {});
  ASSERT_TRUE(service.ok());
  CheckpointerOptions options;
  options.dir = dir;
  options.interval_ms = 60000;  // effectively manual
  auto checkpointer = Checkpointer::Create(service->get(), options);
  ASSERT_TRUE(checkpointer.ok()) << checkpointer.status().ToString();
  ASSERT_TRUE((*checkpointer)->WriteNow().ok());
  ASSERT_TRUE((*checkpointer)->WriteNow().ok());
  EXPECT_EQ((*checkpointer)->generation(), 2u);
  auto loaded = LoadCheckpointFile(CheckpointPath(dir, 2));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, 2u);
  EXPECT_EQ(loaded->plan_version, 1u);
  const auto metrics = (*service)->metrics().Snapshot(0);
  EXPECT_EQ(metrics.checkpoints_written, 2u);
  EXPECT_EQ(metrics.checkpoints_failed, 0u);
}

TEST(CheckpointerTest, StartGenerationSeedsPastRecoveredFiles) {
  const std::string dir = TempDirFor("writer_seeded");
  auto service = RepairService::Create(DesignedPlans(10), {});
  ASSERT_TRUE(service.ok());
  CheckpointerOptions options;
  options.dir = dir;
  options.interval_ms = 60000;
  auto checkpointer = Checkpointer::Create(service->get(), options,
                                           /*redesigner=*/nullptr,
                                           /*start_generation=*/41);
  ASSERT_TRUE(checkpointer.ok());
  ASSERT_TRUE((*checkpointer)->WriteNow().ok());
  EXPECT_EQ((*checkpointer)->generation(), 42u);
  EXPECT_TRUE(common::FileExists(CheckpointPath(dir, 42)));
}

TEST(CheckpointerTest, PrunesBeyondRetentionWindow) {
  const std::string dir = TempDirFor("writer_prune");
  auto service = RepairService::Create(DesignedPlans(11), {});
  ASSERT_TRUE(service.ok());
  CheckpointerOptions options;
  options.dir = dir;
  options.interval_ms = 60000;
  options.keep = 2;
  auto checkpointer = Checkpointer::Create(service->get(), options);
  ASSERT_TRUE(checkpointer.ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE((*checkpointer)->WriteNow().ok());
  EXPECT_FALSE(common::FileExists(CheckpointPath(dir, 1)));
  EXPECT_FALSE(common::FileExists(CheckpointPath(dir, 3)));
  EXPECT_TRUE(common::FileExists(CheckpointPath(dir, 4)));
  EXPECT_TRUE(common::FileExists(CheckpointPath(dir, 5)));
}

TEST(CheckpointerTest, FailedWriteCountsAndDoesNotAdvanceGeneration) {
  auto service = RepairService::Create(DesignedPlans(12), {});
  ASSERT_TRUE(service.ok());
  const std::string dir = TempDirFor("writer_failing");
  CheckpointerOptions options;
  options.dir = dir;
  options.interval_ms = 60000;
  auto checkpointer = Checkpointer::Create(service->get(), options);
  ASSERT_TRUE(checkpointer.ok());
  // Remove the directory out from under the writer: the temp-file create
  // fails with ENOENT for any uid (chmod tricks don't fail under root).
  ASSERT_EQ(::rmdir(dir.c_str()), 0);
  const common::Status status = (*checkpointer)->WriteNow();
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ((*checkpointer)->generation(), 0u);
  EXPECT_EQ((*service)->metrics().Snapshot(0).checkpoints_failed, 1u);
  // Next write (directory restored) succeeds and lands generation 1.
  ASSERT_TRUE((*checkpointer)->WriteNow().ok());
  EXPECT_EQ((*checkpointer)->generation(), 1u);
}

TEST(CheckpointerRaceTest, CheckpointDuringReloadAlwaysWritesCoherentFiles) {
  // A writer thread checkpoints continuously while the main thread
  // hot-swaps plans. Every landed file must parse end to end and carry a
  // plan version that existed (1..kReloads+1) — the single-snapshot
  // capture contract: no torn plan/version mixes.
  const std::string dir = TempDirFor("race_reload");
  auto service = RepairService::Create(DesignedPlans(13), {});
  ASSERT_TRUE(service.ok());
  CheckpointerOptions options;
  options.dir = dir;
  options.interval_ms = 60000;
  options.keep = 1000;  // retain everything; the test parses all files
  auto checkpointer = Checkpointer::Create(service->get(), options);
  ASSERT_TRUE(checkpointer.ok());

  constexpr int kReloads = 20;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_TRUE((*checkpointer)->WriteNow().ok());
    }
  });
  core::RepairPlanSet plans = DesignedPlans(13);
  for (int i = 0; i < kReloads; ++i) {
    ASSERT_TRUE((*service)->ReloadPlan(plans).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  const uint64_t final_version = (*service)->plan_version();
  EXPECT_EQ(final_version, static_cast<uint64_t>(kReloads) + 1);
  uint64_t last_version = 0;
  for (uint64_t gen = 1; gen <= (*checkpointer)->generation(); ++gen) {
    auto loaded = LoadCheckpointFile(CheckpointPath(dir, gen));
    ASSERT_TRUE(loaded.ok()) << "generation " << gen << ": "
                             << loaded.status().ToString();
    EXPECT_GE(loaded->plan_version, 1u);
    EXPECT_LE(loaded->plan_version, final_version);
    // Monotone: a later checkpoint never carries an older plan version
    // (last-writer-wins reloads + coherent capture).
    EXPECT_GE(loaded->plan_version, last_version) << "generation " << gen;
    last_version = loaded->plan_version;
  }
}

}  // namespace
}  // namespace otfair::serve
