#include "serve/protocol.h"

#include <string>

#include <gtest/gtest.h>

namespace otfair::serve {
namespace {

TEST(ProtocolTest, ParsesRepairLine) {
  auto request = ParseRequestLine("repair 3 17 1 0 0.25 -1.5", 2);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->kind, RequestKind::kRepair);
  EXPECT_EQ(request->row.session_id, 3u);
  EXPECT_EQ(request->row.row_index, 17u);
  EXPECT_EQ(request->row.u, 1);
  EXPECT_EQ(request->row.s, 0);
  ASSERT_EQ(request->row.features.size(), 2u);
  EXPECT_EQ(request->row.features[0], 0.25);
  EXPECT_EQ(request->row.features[1], -1.5);
}

TEST(ProtocolTest, ToleratesExtraWhitespace) {
  auto request = ParseRequestLine("  repair  0\t0  0 1   1.0  2.0 ", 2);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->row.s, 1);
}

TEST(ProtocolTest, RejectsMalformedRepairLines) {
  EXPECT_FALSE(ParseRequestLine("", 2).ok());
  EXPECT_FALSE(ParseRequestLine("repair", 2).ok());
  EXPECT_FALSE(ParseRequestLine("repair 0 0 0 1 1.0", 2).ok());          // missing feature
  EXPECT_FALSE(ParseRequestLine("repair 0 0 0 1 1.0 2.0 3.0", 2).ok());  // extra feature
  EXPECT_FALSE(ParseRequestLine("repair 0 0 2 0 1.0 2.0", 2).ok());      // u out of range
  EXPECT_FALSE(ParseRequestLine("repair 0 0 0 1 1.0 abc", 2).ok());      // bad number
  EXPECT_FALSE(ParseRequestLine("repair x 0 0 1 1.0 2.0", 2).ok());      // bad session
  EXPECT_FALSE(ParseRequestLine("repair -1 0 0 1 1.0 2.0", 2).ok());     // negative session
  EXPECT_FALSE(ParseRequestLine("repair 0 -3 0 1 1.0 2.0", 2).ok());     // negative row
  EXPECT_FALSE(ParseRequestLine("unknown-verb 1 2 3", 2).ok());
}

TEST(ProtocolTest, ParsesControlVerbs) {
  EXPECT_EQ(ParseRequestLine("metrics", 2)->kind, RequestKind::kMetrics);
  EXPECT_EQ(ParseRequestLine("health", 2)->kind, RequestKind::kHealth);
  EXPECT_EQ(ParseRequestLine("quit", 2)->kind, RequestKind::kQuit);
  auto reload = ParseRequestLine("reload /tmp/plan.bin", 2);
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->kind, RequestKind::kReload);
  EXPECT_EQ(reload->plan_path, "/tmp/plan.bin");
  EXPECT_FALSE(ParseRequestLine("reload", 2).ok());
  EXPECT_FALSE(ParseRequestLine("reload a b", 2).ok());
  EXPECT_EQ(ParseRequestLine("checkpoint", 2)->kind, RequestKind::kCheckpoint);
  EXPECT_EQ(ParseRequestLine("  checkpoint  ", 2)->kind, RequestKind::kCheckpoint);
  // No operands: a checkpoint request names nothing.
  EXPECT_FALSE(ParseRequestLine("checkpointing", 2).ok());
}

TEST(ProtocolTest, FormatsOkResponseWithRoundTripPrecision) {
  RowResponse response;
  response.session_id = 4;
  response.row_index = 9;
  response.repaired = {0.1, -2.0};
  const std::string line = FormatRowResponse(response);
  EXPECT_EQ(line.substr(0, 7), "ok 4 9 ");
  // %.17g survives a strtod round trip bit-exactly.
  double parsed = 0.0;
  ASSERT_EQ(std::sscanf(line.c_str(), "ok 4 9 %lf", &parsed), 1);
  EXPECT_EQ(parsed, 0.1);
}

TEST(ProtocolTest, FormatsErrorResponses) {
  RowResponse response;
  response.session_id = 2;
  response.row_index = 5;
  response.status = common::Status::InvalidArgument("bad row");
  EXPECT_EQ(FormatRowResponse(response), "err 2 5 INVALID_ARGUMENT bad row");
  EXPECT_EQ(FormatErrorLine(common::Status::Unavailable("full")),
            "err - - UNAVAILABLE full");
}

TEST(ProtocolMultiGroupTest, AcceptsLabelsWithinConfiguredLevels) {
  auto request = ParseRequestLine("repair 1 2 2 3 0.5 1.5", 2, /*u_levels=*/3,
                                  /*s_levels=*/4);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->row.u, 2);
  EXPECT_EQ(request->row.s, 3);
}

TEST(ProtocolMultiGroupTest, RejectsLabelsBeyondConfiguredLevels) {
  EXPECT_FALSE(ParseRequestLine("repair 1 2 3 0 0.5 1.5", 2, 3, 4).ok());  // u = |U|
  EXPECT_FALSE(ParseRequestLine("repair 1 2 0 4 0.5 1.5", 2, 3, 4).ok());  // s = |S|
  // The default bounds stay binary.
  EXPECT_FALSE(ParseRequestLine("repair 1 2 2 0 0.5 1.5", 2).ok());
}

// --- Hardening gauntlet -----------------------------------------------------
//
// Every case must come back as a clean InvalidArgument status — never a
// crash, throw, or silently coerced field. The table covers truncation,
// out-of-range labels, non-finite payloads, numeric-overflow spellings,
// binary junk, and oversized lines.

struct GarbageCase {
  const char* name;
  std::string line;
};

std::string RepeatChar(char c, size_t n) { return std::string(n, c); }

TEST(ProtocolHardeningTest, GarbageLinesNeverCrashAndReportStructuredErrors) {
  const GarbageCase kCases[] = {
      {"empty", ""},
      {"whitespace_only", "   \t  \t "},
      {"truncated_verb", "rep"},
      {"truncated_repair_no_fields", "repair"},
      {"truncated_repair_mid_header", "repair 0 0"},
      {"truncated_repair_missing_last_feature", "repair 0 0 0 1 1.0"},
      {"nan_feature", "repair 0 0 0 1 nan 2.0"},
      {"nan_uppercase", "repair 0 0 0 1 NaN 2.0"},
      {"inf_feature", "repair 0 0 0 1 1.0 inf"},
      {"negative_inf", "repair 0 0 0 1 -inf 2.0"},
      {"infinity_spelled_out", "repair 0 0 0 1 Infinity 2.0"},
      {"overflowing_double", "repair 0 0 0 1 1e999 2.0"},
      {"hex_session", "repair 0x10 0 0 1 1.0 2.0"},
      {"float_row_index", "repair 0 1.5 0 1 1.0 2.0"},
      {"u_out_of_range", "repair 0 0 9 0 1.0 2.0"},
      {"s_out_of_range", "repair 0 0 0 9 1.0 2.0"},
      {"huge_u", "repair 0 0 18446744073709551615 0 1.0 2.0"},
      {"overflow_session", "repair 99999999999999999999999 0 0 1 1.0 2.0"},
      {"trailing_junk_on_number", "repair 0 0 0 1 1.0x 2.0"},
      {"embedded_nul_like_junk", std::string("repair 0 0 0 1 1.0 2.0\x01\x02")},
      {"binary_junk_verb", std::string("\xff\xfe\x00garbage", 10)},
      {"reload_no_path", "reload"},
      {"reload_two_paths", "reload a b"},
      {"unknown_verb", "destroy everything"},
      {"feature_is_binary_noise", "repair 0 0 0 1 \x07\x1b[31m 2.0"},
      {"oversized_line", "repair 0 0 0 1 " + RepeatChar('9', kMaxRequestLineBytes + 64)},
      {"oversized_whitespace", RepeatChar(' ', kMaxRequestLineBytes + 1)},
  };
  for (const GarbageCase& c : kCases) {
    auto request = ParseRequestLine(c.line, 2);
    ASSERT_FALSE(request.ok()) << "case " << c.name << " was accepted";
    EXPECT_EQ(request.status().code(), common::StatusCode::kInvalidArgument)
        << "case " << c.name;
    // The error must render as a single sane response line: no control
    // characters leaked from the input, no unbounded echo.
    const std::string rendered = FormatErrorLine(request.status());
    EXPECT_LT(rendered.size(), 512u) << "case " << c.name;
    for (char ch : rendered)
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20)
          << "case " << c.name << " leaked a control character";
  }
}

TEST(ProtocolHardeningTest, BadFeatureEchoIsTruncatedAndSanitized) {
  const std::string junk(500, 'z');
  auto request = ParseRequestLine("repair 0 0 0 1 " + junk + " 2.0", 2);
  ASSERT_FALSE(request.ok());
  // At most a 32-char prefix of the offending token is echoed.
  EXPECT_LT(request.status().message().size(), 128u);
  EXPECT_NE(request.status().message().find("zzzz"), std::string::npos);
}

TEST(ProtocolHardeningTest, MaxSizedValidLineStillParses) {
  // The ceiling rejects oversized lines, not long-but-valid ones.
  std::string line = "repair 0 0 0 1 1.0 2.0";
  line += RepeatChar(' ', kMaxRequestLineBytes - line.size());
  EXPECT_TRUE(ParseRequestLine(line, 2).ok());
  line += ' ';
  EXPECT_FALSE(ParseRequestLine(line, 2).ok());
}

}  // namespace
}  // namespace otfair::serve
