#include "serve/protocol.h"

#include <gtest/gtest.h>

namespace otfair::serve {
namespace {

TEST(ProtocolTest, ParsesRepairLine) {
  auto request = ParseRequestLine("repair 3 17 1 0 0.25 -1.5", 2);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->kind, RequestKind::kRepair);
  EXPECT_EQ(request->row.session_id, 3u);
  EXPECT_EQ(request->row.row_index, 17u);
  EXPECT_EQ(request->row.u, 1);
  EXPECT_EQ(request->row.s, 0);
  ASSERT_EQ(request->row.features.size(), 2u);
  EXPECT_EQ(request->row.features[0], 0.25);
  EXPECT_EQ(request->row.features[1], -1.5);
}

TEST(ProtocolTest, ToleratesExtraWhitespace) {
  auto request = ParseRequestLine("  repair  0\t0  0 1   1.0  2.0 ", 2);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->row.s, 1);
}

TEST(ProtocolTest, RejectsMalformedRepairLines) {
  EXPECT_FALSE(ParseRequestLine("", 2).ok());
  EXPECT_FALSE(ParseRequestLine("repair", 2).ok());
  EXPECT_FALSE(ParseRequestLine("repair 0 0 0 1 1.0", 2).ok());          // missing feature
  EXPECT_FALSE(ParseRequestLine("repair 0 0 0 1 1.0 2.0 3.0", 2).ok());  // extra feature
  EXPECT_FALSE(ParseRequestLine("repair 0 0 2 0 1.0 2.0", 2).ok());      // u out of range
  EXPECT_FALSE(ParseRequestLine("repair 0 0 0 1 1.0 abc", 2).ok());      // bad number
  EXPECT_FALSE(ParseRequestLine("repair x 0 0 1 1.0 2.0", 2).ok());      // bad session
  EXPECT_FALSE(ParseRequestLine("repair -1 0 0 1 1.0 2.0", 2).ok());     // negative session
  EXPECT_FALSE(ParseRequestLine("repair 0 -3 0 1 1.0 2.0", 2).ok());     // negative row
  EXPECT_FALSE(ParseRequestLine("unknown-verb 1 2 3", 2).ok());
}

TEST(ProtocolTest, ParsesControlVerbs) {
  EXPECT_EQ(ParseRequestLine("metrics", 2)->kind, RequestKind::kMetrics);
  EXPECT_EQ(ParseRequestLine("health", 2)->kind, RequestKind::kHealth);
  EXPECT_EQ(ParseRequestLine("quit", 2)->kind, RequestKind::kQuit);
  auto reload = ParseRequestLine("reload /tmp/plan.bin", 2);
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->kind, RequestKind::kReload);
  EXPECT_EQ(reload->plan_path, "/tmp/plan.bin");
  EXPECT_FALSE(ParseRequestLine("reload", 2).ok());
  EXPECT_FALSE(ParseRequestLine("reload a b", 2).ok());
}

TEST(ProtocolTest, FormatsOkResponseWithRoundTripPrecision) {
  RowResponse response;
  response.session_id = 4;
  response.row_index = 9;
  response.repaired = {0.1, -2.0};
  const std::string line = FormatRowResponse(response);
  EXPECT_EQ(line.substr(0, 7), "ok 4 9 ");
  // %.17g survives a strtod round trip bit-exactly.
  double parsed = 0.0;
  ASSERT_EQ(std::sscanf(line.c_str(), "ok 4 9 %lf", &parsed), 1);
  EXPECT_EQ(parsed, 0.1);
}

TEST(ProtocolTest, FormatsErrorResponses) {
  RowResponse response;
  response.session_id = 2;
  response.row_index = 5;
  response.status = common::Status::InvalidArgument("bad row");
  EXPECT_EQ(FormatRowResponse(response), "err 2 5 INVALID_ARGUMENT bad row");
  EXPECT_EQ(FormatErrorLine(common::Status::Unavailable("full")),
            "err - - UNAVAILABLE full");
}

TEST(ProtocolMultiGroupTest, AcceptsLabelsWithinConfiguredLevels) {
  auto request = ParseRequestLine("repair 1 2 2 3 0.5 1.5", 2, /*u_levels=*/3,
                                  /*s_levels=*/4);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->row.u, 2);
  EXPECT_EQ(request->row.s, 3);
}

TEST(ProtocolMultiGroupTest, RejectsLabelsBeyondConfiguredLevels) {
  EXPECT_FALSE(ParseRequestLine("repair 1 2 3 0 0.5 1.5", 2, 3, 4).ok());  // u = |U|
  EXPECT_FALSE(ParseRequestLine("repair 1 2 0 4 0.5 1.5", 2, 3, 4).ok());  // s = |S|
  // The default bounds stay binary.
  EXPECT_FALSE(ParseRequestLine("repair 1 2 2 0 0.5 1.5", 2).ok());
}

}  // namespace
}  // namespace otfair::serve
