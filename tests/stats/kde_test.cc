#include "stats/kde.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/normal.h"

namespace otfair::stats {
namespace {

std::vector<double> Grid(double lo, double hi, size_t n) {
  std::vector<double> g(n);
  for (size_t i = 0; i < n; ++i)
    g[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  return g;
}

TEST(KdeTest, SinglePointIsGaussianBump) {
  auto kde = GaussianKde::Fit({0.0}, 1.0);
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->Evaluate(0.0), NormalPdf(0.0), 1e-12);
  EXPECT_NEAR(kde->Evaluate(1.0), NormalPdf(1.0), 1e-12);
}

TEST(KdeTest, DensityIntegratesToOne) {
  common::Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.Normal());
  auto kde = GaussianKde::FitSilverman(xs);
  ASSERT_TRUE(kde.ok());
  // Trapezoid rule over a wide grid.
  const auto grid = Grid(-8.0, 8.0, 2001);
  const double step = grid[1] - grid[0];
  double integral = 0.0;
  for (double g : grid) integral += kde->Evaluate(g) * step;
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(KdeTest, RecoversNormalDensity) {
  common::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.Normal(2.0, 1.5));
  auto kde = GaussianKde::FitSilverman(xs);
  ASSERT_TRUE(kde.ok());
  for (double x : {0.0, 1.0, 2.0, 3.5}) {
    EXPECT_NEAR(kde->Evaluate(x), NormalPdf(x, 2.0, 1.5), 0.02) << "x=" << x;
  }
}

TEST(KdeTest, BimodalDataGivesBimodalDensity) {
  common::Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.Normal(-3.0, 0.5));
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.Normal(3.0, 0.5));
  auto kde = GaussianKde::FitSilverman(xs);
  ASSERT_TRUE(kde.ok());
  const double at_modes = 0.5 * (kde->Evaluate(-3.0) + kde->Evaluate(3.0));
  EXPECT_GT(at_modes, 3.0 * kde->Evaluate(0.0));  // valley between modes
}

TEST(KdeTest, EvaluateOnGridMatchesPointwise) {
  auto kde = GaussianKde::Fit({0.0, 1.0, 2.0}, 0.5);
  ASSERT_TRUE(kde.ok());
  const auto grid = Grid(-1.0, 3.0, 17);
  const auto values = kde->EvaluateOnGrid(grid);
  ASSERT_EQ(values.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i)
    EXPECT_DOUBLE_EQ(values[i], kde->Evaluate(grid[i]));
}

TEST(KdeTest, PmfOnGridNormalized) {
  auto kde = GaussianKde::Fit({0.0, 0.5}, 0.3);
  ASSERT_TRUE(kde.ok());
  auto pmf = kde->PmfOnGrid(Grid(-2.0, 2.0, 41));
  ASSERT_TRUE(pmf.ok());
  double total = 0.0;
  for (double p : *pmf) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(KdeTest, PmfErrorsWhenGridFarOutsideData) {
  auto kde = GaussianKde::Fit({0.0}, 0.01);
  ASSERT_TRUE(kde.ok());
  auto pmf = kde->PmfOnGrid(Grid(1e6, 2e6, 5));
  EXPECT_FALSE(pmf.ok());
}

TEST(KdeTest, LargerBandwidthSmoothsPeaks) {
  const std::vector<double> xs = {0.0, 0.0, 0.0, 5.0};
  auto sharp = GaussianKde::Fit(xs, 0.1);
  auto smooth = GaussianKde::Fit(xs, 2.0);
  ASSERT_TRUE(sharp.ok() && smooth.ok());
  EXPECT_GT(sharp->Evaluate(0.0), smooth->Evaluate(0.0));
  EXPECT_LT(sharp->Evaluate(2.5), smooth->Evaluate(2.5));
}

TEST(KdeTest, RejectsBadInputs) {
  EXPECT_FALSE(GaussianKde::Fit({}, 1.0).ok());
  EXPECT_FALSE(GaussianKde::Fit({0.0}, 0.0).ok());
  EXPECT_FALSE(GaussianKde::Fit({0.0}, -1.0).ok());
  EXPECT_FALSE(GaussianKde::Fit({std::nan("")}, 1.0).ok());
  EXPECT_FALSE(GaussianKde::FitSilverman({}).ok());
}

TEST(KdeTest, SilvermanBandwidthRecorded) {
  common::Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.Normal());
  auto kde = GaussianKde::FitSilverman(xs);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->bandwidth(), 0.0);
  EXPECT_EQ(kde->sample_size(), 100u);
}

}  // namespace
}  // namespace otfair::stats
