#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

namespace otfair::stats {
namespace {

TEST(DescriptiveTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({-1.0, 1.0}), 0.0);
}

TEST(DescriptiveTest, VarianceUnbiased) {
  // Sample variance of {1,2,3} with n-1 denominator is 1.
  EXPECT_DOUBLE_EQ(Variance({1.0, 2.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(Variance({4.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({2.0, 2.0, 2.0}), 0.0);
}

TEST(DescriptiveTest, StdDevIsSqrtVariance) {
  EXPECT_DOUBLE_EQ(StdDev({0.0, 2.0}), std::sqrt(2.0));
}

TEST(DescriptiveTest, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0, 0.0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 7.0);
}

TEST(DescriptiveTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(DescriptiveTest, QuantileEndpoints) {
  const std::vector<double> xs = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 20.0);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.75), 7.5);
}

TEST(DescriptiveTest, QuantileIgnoresInputOrder) {
  EXPECT_DOUBLE_EQ(Quantile({30.0, 10.0, 20.0}, 0.5), 20.0);
}

TEST(DescriptiveTest, IqrOfUniformGrid) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_NEAR(Iqr(xs), 50.0, 1e-9);
}

TEST(DescriptiveTest, MeanStdCombined) {
  const MeanStd ms = ComputeMeanStd({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.0);
  EXPECT_DOUBLE_EQ(ms.std, 1.0);
}

TEST(DescriptiveDeathTest, EmptyInputAborts) {
  EXPECT_DEATH(Mean({}), "empty");
  EXPECT_DEATH(Quantile({}, 0.5), "empty");
}

}  // namespace
}  // namespace otfair::stats
