#include "stats/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace otfair::stats {
namespace {

TEST(HistogramTest, CountsLandInCorrectBins) {
  auto h = UniformHistogram::Build({0.5, 1.5, 1.6, 2.5}, 3, 0.0, 3.0);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->counts(), (std::vector<size_t>{1, 2, 1}));
  EXPECT_EQ(h->total_count(), 4u);
}

TEST(HistogramTest, OutOfRangeClampedToEndBins) {
  auto h = UniformHistogram::Build({-10.0, 10.0}, 2, 0.0, 1.0);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->counts()[0], 1u);
  EXPECT_EQ(h->counts()[1], 1u);
}

TEST(HistogramTest, PmfSumsToOne) {
  common::Rng rng(20);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.Normal());
  auto h = UniformHistogram::BuildAuto(xs, 20);
  ASSERT_TRUE(h.ok());
  double total = 0.0;
  for (double p : h->Pmf()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, BinCenters) {
  auto h = UniformHistogram::Build({0.5}, 4, 0.0, 4.0);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->BinCenter(0), 0.5);
  EXPECT_DOUBLE_EQ(h->BinCenter(3), 3.5);
  EXPECT_DOUBLE_EQ(h->bin_width(), 1.0);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  common::Rng rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.Uniform(0.0, 4.0));
  auto h = UniformHistogram::Build(xs, 16, 0.0, 4.0);
  ASSERT_TRUE(h.ok());
  double integral = 0.0;
  for (size_t b = 0; b < h->num_bins(); ++b)
    integral += h->Density(h->BinCenter(b)) * h->bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(HistogramTest, DensityZeroOutsideRange) {
  auto h = UniformHistogram::Build({0.5}, 2, 0.0, 1.0);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->Density(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(h->Density(1.1), 0.0);
}

TEST(HistogramTest, AutoRangeCoversSample) {
  auto h = UniformHistogram::BuildAuto({-2.0, 5.0, 1.0}, 7);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->lo(), -2.0);
  EXPECT_DOUBLE_EQ(h->hi(), 5.0);
}

TEST(HistogramTest, AutoRangeWidensDegenerateSample) {
  auto h = UniformHistogram::BuildAuto({3.0, 3.0}, 4);
  ASSERT_TRUE(h.ok());
  EXPECT_LT(h->lo(), 3.0);
  EXPECT_GT(h->hi(), 3.0);
  EXPECT_EQ(h->total_count(), 2u);
}

TEST(HistogramTest, UniformDataUniformCounts) {
  common::Rng rng(22);
  std::vector<double> xs;
  const int n = 40000;
  for (int i = 0; i < n; ++i) xs.push_back(rng.Uniform(0.0, 1.0));
  auto h = UniformHistogram::Build(xs, 10, 0.0, 1.0);
  ASSERT_TRUE(h.ok());
  for (double p : h->Pmf()) EXPECT_NEAR(p, 0.1, 0.01);
}

TEST(HistogramTest, RejectsBadInputs) {
  EXPECT_FALSE(UniformHistogram::Build({}, 3, 0.0, 1.0).ok());
  EXPECT_FALSE(UniformHistogram::Build({0.5}, 0, 0.0, 1.0).ok());
  EXPECT_FALSE(UniformHistogram::Build({0.5}, 3, 1.0, 0.0).ok());
  EXPECT_FALSE(UniformHistogram::Build({std::nan("")}, 3, 0.0, 1.0).ok());
}

}  // namespace
}  // namespace otfair::stats
