#include "stats/bandwidth.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace otfair::stats {
namespace {

TEST(BandwidthTest, SilvermanMatchesFormulaOnKnownSample) {
  // Hand check: for a sample with sigma < IQR/1.34, h = 0.9 sigma n^{-1/5}.
  common::Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.Normal());
  const double h = SilvermanBandwidth(xs);
  // For standard normal data, sigma ~ 1 and IQR/1.34 ~ 1.006, so
  // h ~ 0.9 * min(...) * 1000^-0.2 ~ 0.9 * 1.0 * 0.251 ~ 0.226.
  EXPECT_NEAR(h, 0.9 * std::pow(1000.0, -0.2), 0.03);
}

TEST(BandwidthTest, ShrinksWithSampleSize) {
  common::Rng rng(2);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 50; ++i) small.push_back(rng.Normal());
  for (int i = 0; i < 5000; ++i) large.push_back(rng.Normal());
  EXPECT_GT(SilvermanBandwidth(small), SilvermanBandwidth(large));
}

TEST(BandwidthTest, ScalesWithSpread) {
  common::Rng rng(3);
  std::vector<double> narrow;
  std::vector<double> wide;
  for (int i = 0; i < 500; ++i) {
    const double z = rng.Normal();
    narrow.push_back(z);
    wide.push_back(10.0 * z);
  }
  EXPECT_NEAR(SilvermanBandwidth(wide) / SilvermanBandwidth(narrow), 10.0, 0.01);
}

TEST(BandwidthTest, RobustToOutliersViaIqr) {
  common::Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.Normal());
  std::vector<double> with_outlier = xs;
  with_outlier.push_back(1e4);  // inflates sigma but barely moves IQR
  const double clean = SilvermanBandwidth(xs);
  const double dirty = SilvermanBandwidth(with_outlier);
  EXPECT_LT(dirty / clean, 1.5);
}

TEST(BandwidthTest, DegenerateSampleStillPositive) {
  EXPECT_GT(SilvermanBandwidth({3.0, 3.0, 3.0}), 0.0);
  EXPECT_GT(SilvermanBandwidth({42.0}), 0.0);
  EXPECT_GT(ScottBandwidth({1.0, 1.0}), 0.0);
}

TEST(BandwidthTest, HeavilyDuplicatedDataFallsBackToSigma) {
  // IQR is 0 (75% duplicates) but sigma isn't: h must stay positive and
  // finite.
  std::vector<double> xs(90, 5.0);
  for (int i = 0; i < 10; ++i) xs.push_back(6.0 + 0.1 * i);
  const double h = SilvermanBandwidth(xs);
  EXPECT_GT(h, 0.0);
  EXPECT_TRUE(std::isfinite(h));
}

TEST(BandwidthTest, ScottLargerOrEqualSilvermanOnNormalData) {
  // Silverman multiplies by 0.9 and takes a min; Scott does neither.
  common::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 800; ++i) xs.push_back(rng.Normal());
  EXPECT_GE(ScottBandwidth(xs), SilvermanBandwidth(xs));
}

}  // namespace
}  // namespace otfair::stats
