#include "stats/sampling.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace otfair::stats {
namespace {

TEST(AliasTableTest, ReconstructedProbabilitiesMatchInput) {
  auto table = AliasTable::Build({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(table->Probability(0), 0.1, 1e-12);
  EXPECT_NEAR(table->Probability(3), 0.4, 1e-12);
}

TEST(AliasTableTest, EmpiricalFrequenciesMatch) {
  auto table = AliasTable::Build({0.5, 0.2, 0.3});
  ASSERT_TRUE(table.ok());
  common::Rng rng(12);
  std::vector<int> counts(3, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table->Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.01);
}

TEST(AliasTableTest, SingleBucketAlwaysReturnsZero) {
  auto table = AliasTable::Build({7.0});
  ASSERT_TRUE(table.ok());
  common::Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightBucketsNeverSampled) {
  auto table = AliasTable::Build({0.0, 1.0, 0.0, 1.0});
  ASSERT_TRUE(table.ok());
  common::Rng rng(14);
  for (int i = 0; i < 10000; ++i) {
    const size_t s = table->Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, HighlySkewedWeights) {
  auto table = AliasTable::Build({1e-6, 1.0});
  ASSERT_TRUE(table.ok());
  common::Rng rng(15);
  int rare = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) rare += table->Sample(rng) == 0 ? 1 : 0;
  EXPECT_LT(rare, 50);  // expected ~0.1
}

TEST(AliasTableTest, UniformWeights) {
  const size_t k = 10;
  auto table = AliasTable::Build(std::vector<double>(k, 1.0));
  ASSERT_TRUE(table.ok());
  common::Rng rng(16);
  std::vector<int> counts(k, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[table->Sample(rng)];
  for (int c : counts)
    EXPECT_NEAR(c / static_cast<double>(n), 0.1, 0.01);
}

TEST(AliasTableTest, MatchesInverseCdfReference) {
  // Same distribution through both samplers; compare first moments.
  const std::vector<double> weights = {0.05, 0.15, 0.4, 0.25, 0.15};
  auto table = AliasTable::Build(weights);
  ASSERT_TRUE(table.ok());
  common::Rng rng_a(17);
  common::Rng rng_b(17);
  const int n = 100000;
  double mean_alias = 0.0;
  for (int i = 0; i < n; ++i) mean_alias += static_cast<double>(table->Sample(rng_a));
  const std::vector<size_t> ref = SampleCategorical(weights, n, rng_b);
  double mean_ref = 0.0;
  for (size_t s : ref) mean_ref += static_cast<double>(s);
  EXPECT_NEAR(mean_alias / n, mean_ref / n, 0.02);
}

TEST(AliasTableTest, RejectsBadWeights) {
  EXPECT_FALSE(AliasTable::Build({}).ok());
  EXPECT_FALSE(AliasTable::Build({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasTable::Build({-1.0, 2.0}).ok());
  EXPECT_FALSE(AliasTable::Build({std::nan("")}).ok());
}

TEST(AliasTableTest, DeterministicGivenSeed) {
  auto table = AliasTable::Build({0.3, 0.7});
  ASSERT_TRUE(table.ok());
  common::Rng a(18);
  common::Rng b(18);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Sample(a), table->Sample(b));
}

TEST(SampleCategoricalTest, CountMatches) {
  common::Rng rng(19);
  const auto samples = SampleCategorical({1.0, 1.0}, 500, rng);
  EXPECT_EQ(samples.size(), 500u);
  for (size_t s : samples) EXPECT_LT(s, 2u);
}

}  // namespace
}  // namespace otfair::stats
