#include "stats/sampling.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace otfair::stats {
namespace {

TEST(AliasTableTest, ReconstructedProbabilitiesMatchInput) {
  auto table = AliasTable::Build({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(table->Probability(0), 0.1, 1e-12);
  EXPECT_NEAR(table->Probability(3), 0.4, 1e-12);
}

TEST(AliasTableTest, EmpiricalFrequenciesMatch) {
  auto table = AliasTable::Build({0.5, 0.2, 0.3});
  ASSERT_TRUE(table.ok());
  common::Rng rng(12);
  std::vector<int> counts(3, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table->Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.01);
}

TEST(AliasTableTest, SingleBucketAlwaysReturnsZero) {
  auto table = AliasTable::Build({7.0});
  ASSERT_TRUE(table.ok());
  common::Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightBucketsNeverSampled) {
  auto table = AliasTable::Build({0.0, 1.0, 0.0, 1.0});
  ASSERT_TRUE(table.ok());
  common::Rng rng(14);
  for (int i = 0; i < 10000; ++i) {
    const size_t s = table->Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, HighlySkewedWeights) {
  auto table = AliasTable::Build({1e-6, 1.0});
  ASSERT_TRUE(table.ok());
  common::Rng rng(15);
  int rare = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) rare += table->Sample(rng) == 0 ? 1 : 0;
  EXPECT_LT(rare, 50);  // expected ~0.1
}

TEST(AliasTableTest, UniformWeights) {
  const size_t k = 10;
  auto table = AliasTable::Build(std::vector<double>(k, 1.0));
  ASSERT_TRUE(table.ok());
  common::Rng rng(16);
  std::vector<int> counts(k, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[table->Sample(rng)];
  for (int c : counts)
    EXPECT_NEAR(c / static_cast<double>(n), 0.1, 0.01);
}

TEST(AliasTableTest, MatchesInverseCdfReference) {
  // Same distribution through both samplers; compare first moments.
  const std::vector<double> weights = {0.05, 0.15, 0.4, 0.25, 0.15};
  auto table = AliasTable::Build(weights);
  ASSERT_TRUE(table.ok());
  common::Rng rng_a(17);
  common::Rng rng_b(17);
  const int n = 100000;
  double mean_alias = 0.0;
  for (int i = 0; i < n; ++i) mean_alias += static_cast<double>(table->Sample(rng_a));
  const std::vector<size_t> ref = SampleCategorical(weights, n, rng_b);
  double mean_ref = 0.0;
  for (size_t s : ref) mean_ref += static_cast<double>(s);
  EXPECT_NEAR(mean_alias / n, mean_ref / n, 0.02);
}

TEST(AliasTableTest, RejectsBadWeights) {
  EXPECT_FALSE(AliasTable::Build({}).ok());
  EXPECT_FALSE(AliasTable::Build({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasTable::Build({-1.0, 2.0}).ok());
  EXPECT_FALSE(AliasTable::Build({std::nan("")}).ok());
}

TEST(AliasTableTest, DeterministicGivenSeed) {
  auto table = AliasTable::Build({0.3, 0.7});
  ASSERT_TRUE(table.ok());
  common::Rng a(18);
  common::Rng b(18);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Sample(a), table->Sample(b));
}

TEST(SampleCategoricalTest, CountMatches) {
  common::Rng rng(19);
  const auto samples = SampleCategorical({1.0, 1.0}, 500, rng);
  EXPECT_EQ(samples.size(), 500u);
  for (size_t s : samples) EXPECT_LT(s, 2u);
}

// The arena's contract is draw-for-draw equivalence with AliasTable: same
// weights, same generator state => same result AND same generator
// consumption. The repair determinism suite leans on this, so it is
// asserted directly across a sweep of row shapes.
TEST(AliasArenaTest, DrawSequenceIdenticalToAliasTable) {
  common::Rng weight_rng(23);
  std::vector<std::vector<double>> rows;
  std::vector<std::vector<uint32_t>> cols;
  for (size_t len = 1; len <= 19; ++len) {
    std::vector<double> w(len);
    std::vector<uint32_t> c(len);
    for (size_t i = 0; i < len; ++i) {
      // Mix smooth, skewed, and exactly-zero weights.
      w[i] = (i % 3 == 2) ? 0.0 : weight_rng.Uniform() * (i % 5 == 0 ? 100.0 : 1.0);
      c[i] = static_cast<uint32_t>(7 * i + 3);  // arbitrary payload columns
    }
    w[0] = 1.0;  // at least one positive weight
    rows.push_back(std::move(w));
    cols.push_back(std::move(c));
  }

  AliasArena arena;
  std::vector<AliasTable> tables;
  for (size_t r = 0; r < rows.size(); ++r) {
    ASSERT_TRUE(arena.AppendRow(rows[r].data(), cols[r].data(), rows[r].size()).ok());
    auto table = AliasTable::Build(rows[r]);
    ASSERT_TRUE(table.ok());
    tables.push_back(std::move(*table));
  }
  ASSERT_EQ(arena.rows(), rows.size());

  common::Rng rng_arena(31);
  common::Rng rng_table(31);
  for (int draw = 0; draw < 2000; ++draw) {
    const size_t r = static_cast<size_t>(draw) % rows.size();
    const uint32_t got = arena.SampleCol(r, rng_arena);
    const size_t j = tables[r].Sample(rng_table);
    EXPECT_EQ(cols[r][j], got);
    // Consumption must stay in lockstep too (Bernoulli on degenerate
    // probabilities consumes nothing — both sides must agree on when).
    EXPECT_EQ(rng_table.Next64(), rng_arena.Next64());
  }
}

TEST(AliasArenaTest, SlotsMirrorVoseConstruction) {
  const std::vector<double> weights = {0.05, 0.15, 0.4, 0.25, 0.15};
  const std::vector<uint32_t> cols = {2, 4, 6, 8, 10};
  AliasArena arena;
  ASSERT_TRUE(arena.AppendRow(weights.data(), cols.data(), weights.size()).ok());
  ASSERT_EQ(arena.RowSize(0), weights.size());
  // Acceptance probabilities of an honest Vose table lie in [0, 1] and
  // average to n_small-adjusted mass; spot-check bounds and payloads.
  for (size_t i = 0; i < weights.size(); ++i) {
    const AliasArena::Slot& slot = arena.RowSlots(0)[i];
    EXPECT_GE(slot.prob, 0.0);
    EXPECT_LE(slot.prob, 1.0);
    EXPECT_EQ(slot.col, cols[i]);
    // The alias payload is one of the row's columns.
    bool found = false;
    for (uint32_t c : cols) found = found || c == slot.alias_col;
    EXPECT_TRUE(found);
  }
}

TEST(AliasArenaTest, EmptyRowsAndMassQueries) {
  const std::vector<double> weights = {1.0, 3.0};
  const std::vector<uint32_t> cols = {5, 9};
  AliasArena arena;
  arena.Reserve(3, 2);
  arena.AppendEmptyRow();
  ASSERT_TRUE(arena.AppendRow(weights.data(), cols.data(), 2).ok());
  arena.AppendEmptyRow();
  EXPECT_EQ(arena.rows(), 3u);
  EXPECT_FALSE(arena.RowHasMass(0));
  EXPECT_TRUE(arena.RowHasMass(1));
  EXPECT_FALSE(arena.RowHasMass(2));
  EXPECT_EQ(arena.RowSize(0), 0u);
  EXPECT_EQ(arena.RowSize(1), 2u);
  common::Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    const uint32_t col = arena.SampleCol(1, rng);
    EXPECT_TRUE(col == 5 || col == 9);
  }
  arena.PrefetchRow(1);  // smoke: prefetch is a hint, must be safe anywhere
  arena.PrefetchRow(0);
}

TEST(AliasArenaTest, RejectsBadWeights) {
  AliasArena arena;
  const std::vector<uint32_t> cols = {0, 1};
  const std::vector<double> zero = {0.0, 0.0};
  const std::vector<double> negative = {-1.0, 2.0};
  EXPECT_FALSE(arena.AppendRow(zero.data(), cols.data(), 0).ok());
  EXPECT_FALSE(arena.AppendRow(zero.data(), cols.data(), 2).ok());
  EXPECT_FALSE(arena.AppendRow(negative.data(), cols.data(), 2).ok());
  // Failed appends must not leave a partial row behind.
  EXPECT_EQ(arena.rows(), 0u);
}

}  // namespace
}  // namespace otfair::stats
