#include "stats/divergence.h"

#include <cmath>

#include <gtest/gtest.h>

namespace otfair::stats {
namespace {

TEST(KlTest, IdenticalPmfsGiveZero) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  auto kl = KlDivergence(p, p);
  ASSERT_TRUE(kl.ok());
  EXPECT_NEAR(*kl, 0.0, 1e-12);
}

TEST(KlTest, NonNegative) {
  const std::vector<double> p = {0.7, 0.2, 0.1};
  const std::vector<double> q = {0.1, 0.2, 0.7};
  auto kl = KlDivergence(p, q);
  ASSERT_TRUE(kl.ok());
  EXPECT_GT(*kl, 0.0);
}

TEST(KlTest, HandComputedTwoState) {
  // D[(0.5,0.5) || (0.25,0.75)] = 0.5 ln 2 + 0.5 ln(2/3).
  auto kl = KlDivergence({0.5, 0.5}, {0.25, 0.75});
  ASSERT_TRUE(kl.ok());
  EXPECT_NEAR(*kl, 0.5 * std::log(2.0) + 0.5 * std::log(2.0 / 3.0), 1e-12);
}

TEST(KlTest, AsymmetricInGeneral) {
  const std::vector<double> p = {0.9, 0.1};
  const std::vector<double> q = {0.5, 0.5};
  auto pq = KlDivergence(p, q);
  auto qp = KlDivergence(q, p);
  ASSERT_TRUE(pq.ok() && qp.ok());
  EXPECT_GT(std::fabs(*pq - *qp), 1e-3);
}

TEST(KlTest, UnnormalizedInputsAreNormalized) {
  auto a = KlDivergence({2.0, 2.0}, {1.0, 3.0});
  auto b = KlDivergence({0.5, 0.5}, {0.25, 0.75});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(*a, *b, 1e-12);
}

TEST(KlTest, ZeroStatesFlooredNotInfinite) {
  auto kl = KlDivergence({0.5, 0.5, 0.0}, {0.0, 0.5, 0.5});
  ASSERT_TRUE(kl.ok());
  EXPECT_TRUE(std::isfinite(*kl));
  EXPECT_GT(*kl, 0.0);
}

TEST(KlTest, FloorControlsMagnitude) {
  // A larger floor softens the penalty for mismatched zero states.
  auto tight = KlDivergence({1.0, 0.0}, {0.0, 1.0}, 1e-12);
  auto loose = KlDivergence({1.0, 0.0}, {0.0, 1.0}, 1e-3);
  ASSERT_TRUE(tight.ok() && loose.ok());
  EXPECT_GT(*tight, *loose);
}

TEST(KlTest, RejectsBadInput) {
  EXPECT_FALSE(KlDivergence({0.5}, {0.5, 0.5}).ok());
  EXPECT_FALSE(KlDivergence({}, {}).ok());
  EXPECT_FALSE(KlDivergence({-0.5, 1.5}, {0.5, 0.5}).ok());
  EXPECT_FALSE(KlDivergence({0.0, 0.0}, {0.5, 0.5}, 0.0).ok());
}

TEST(SymmetrizedKlTest, SymmetricByConstruction) {
  const std::vector<double> p = {0.8, 0.15, 0.05};
  const std::vector<double> q = {0.3, 0.3, 0.4};
  auto pq = SymmetrizedKl(p, q);
  auto qp = SymmetrizedKl(q, p);
  ASSERT_TRUE(pq.ok() && qp.ok());
  EXPECT_NEAR(*pq, *qp, 1e-14);
}

TEST(SymmetrizedKlTest, AverageOfBothDirections) {
  const std::vector<double> p = {0.9, 0.1};
  const std::vector<double> q = {0.4, 0.6};
  auto sym = SymmetrizedKl(p, q);
  auto pq = KlDivergence(p, q);
  auto qp = KlDivergence(q, p);
  ASSERT_TRUE(sym.ok() && pq.ok() && qp.ok());
  EXPECT_NEAR(*sym, 0.5 * (*pq + *qp), 1e-14);
}

TEST(JensenShannonTest, BoundedByLog2) {
  auto js = JensenShannon({1.0, 0.0}, {0.0, 1.0});
  ASSERT_TRUE(js.ok());
  EXPECT_NEAR(*js, std::log(2.0), 1e-12);  // maximal for disjoint supports
  auto same = JensenShannon({0.5, 0.5}, {0.5, 0.5});
  ASSERT_TRUE(same.ok());
  EXPECT_NEAR(*same, 0.0, 1e-12);
}

TEST(TotalVariationTest, KnownValues) {
  auto tv = TotalVariation({1.0, 0.0}, {0.0, 1.0});
  ASSERT_TRUE(tv.ok());
  EXPECT_NEAR(*tv, 1.0, 1e-12);
  auto half = TotalVariation({0.75, 0.25}, {0.25, 0.75});
  ASSERT_TRUE(half.ok());
  EXPECT_NEAR(*half, 0.5, 1e-12);
}

TEST(TotalVariationTest, PinskerInequality) {
  // KL >= 2 * TV^2 (Pinsker); verifies consistency between the metrics.
  const std::vector<double> p = {0.6, 0.3, 0.1};
  const std::vector<double> q = {0.2, 0.5, 0.3};
  auto kl = KlDivergence(p, q, 0.0);
  auto tv = TotalVariation(p, q);
  ASSERT_TRUE(kl.ok() && tv.ok());
  EXPECT_GE(*kl, 2.0 * (*tv) * (*tv) - 1e-12);
}

}  // namespace
}  // namespace otfair::stats
