#include "stats/gmm.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/rng.h"

namespace otfair::stats {
namespace {

using common::Matrix;
using common::Rng;

/// Draws n rows from a 2-component 2-D mixture with the given means.
Matrix DrawMixture(Rng& rng, size_t n, const std::vector<double>& mean0,
                   const std::vector<double>& mean1, double weight0,
                   std::vector<size_t>* labels = nullptr) {
  Matrix data(n, 2);
  for (size_t i = 0; i < n; ++i) {
    const bool first = rng.Bernoulli(weight0);
    const std::vector<double>& mean = first ? mean0 : mean1;
    data(i, 0) = rng.Normal(mean[0], 0.7);
    data(i, 1) = rng.Normal(mean[1], 0.7);
    if (labels) labels->push_back(first ? 0 : 1);
  }
  return data;
}

TEST(GmmSupervisedTest, RecoversClassParameters) {
  Rng rng(31);
  std::vector<size_t> labels;
  Matrix data = DrawMixture(rng, 4000, {-2.0, 0.0}, {3.0, 1.0}, 0.3, &labels);
  auto model = GaussianMixture::FitSupervised(data, labels, 2);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->components()[0].weight, 0.3, 0.03);
  EXPECT_NEAR(model->components()[0].mean[0], -2.0, 0.1);
  EXPECT_NEAR(model->components()[1].mean[0], 3.0, 0.1);
  EXPECT_NEAR(model->components()[0].var[0], 0.49, 0.08);
}

TEST(GmmSupervisedTest, ClassifiesWellSeparatedPoints) {
  Rng rng(32);
  std::vector<size_t> labels;
  Matrix data = DrawMixture(rng, 1000, {-3.0, -3.0}, {3.0, 3.0}, 0.5, &labels);
  auto model = GaussianMixture::FitSupervised(data, labels, 2);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Classify({-3.0, -3.0}), 0u);
  EXPECT_EQ(model->Classify({3.0, 3.0}), 1u);
}

TEST(GmmSupervisedTest, RejectsEmptyClass) {
  Matrix data = Matrix::FromRows({{0.0, 0.0}, {1.0, 1.0}});
  EXPECT_FALSE(GaussianMixture::FitSupervised(data, {0, 0}, 2).ok());
}

TEST(GmmSupervisedTest, RejectsBadLabels) {
  Matrix data = Matrix::FromRows({{0.0, 0.0}, {1.0, 1.0}});
  EXPECT_FALSE(GaussianMixture::FitSupervised(data, {0, 5}, 2).ok());
  EXPECT_FALSE(GaussianMixture::FitSupervised(data, {0}, 2).ok());
}

TEST(GmmEmTest, RecoversSeparatedComponents) {
  Rng rng(33);
  Matrix data = DrawMixture(rng, 3000, {-3.0, 0.0}, {3.0, 0.0}, 0.5);
  Rng fit_rng(34);
  auto model = GaussianMixture::FitEm(data, 2, fit_rng);
  ASSERT_TRUE(model.ok());
  // Components can come out in either order.
  std::vector<double> first_means = {model->components()[0].mean[0],
                                     model->components()[1].mean[0]};
  std::sort(first_means.begin(), first_means.end());
  EXPECT_NEAR(first_means[0], -3.0, 0.25);
  EXPECT_NEAR(first_means[1], 3.0, 0.25);
}

TEST(GmmEmTest, LikelihoodImprovesOverSingleComponent) {
  Rng rng(35);
  Matrix data = DrawMixture(rng, 2000, {-3.0, -1.0}, {3.0, 1.0}, 0.5);
  Rng fit_rng_a(36);
  Rng fit_rng_b(37);
  auto one = GaussianMixture::FitEm(data, 1, fit_rng_a);
  auto two = GaussianMixture::FitEm(data, 2, fit_rng_b);
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_GT(two->MeanLogLikelihood(data), one->MeanLogLikelihood(data) + 0.1);
}

TEST(GmmEmTest, ResponsibilitiesSumToOne) {
  Rng rng(38);
  Matrix data = DrawMixture(rng, 500, {-1.0, 0.0}, {1.0, 0.0}, 0.4);
  Rng fit_rng(39);
  auto model = GaussianMixture::FitEm(data, 2, fit_rng);
  ASSERT_TRUE(model.ok());
  for (double x : {-2.0, 0.0, 2.0}) {
    const auto resp = model->Responsibilities({x, 0.0});
    EXPECT_NEAR(resp[0] + resp[1], 1.0, 1e-10);
    EXPECT_GE(resp[0], 0.0);
    EXPECT_GE(resp[1], 0.0);
  }
}

TEST(GmmEmTest, WeightsFormDistribution) {
  Rng rng(40);
  Matrix data = DrawMixture(rng, 800, {-2.0, 0.0}, {2.0, 0.0}, 0.25);
  Rng fit_rng(41);
  auto model = GaussianMixture::FitEm(data, 2, fit_rng);
  ASSERT_TRUE(model.ok());
  double total = 0.0;
  for (const auto& c : model->components()) {
    EXPECT_GE(c.weight, 0.0);
    total += c.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GmmEmTest, VarianceFloorPreventsCollapse) {
  // Many duplicated points invite zero-variance collapse.
  Matrix data(50, 1);
  for (size_t i = 0; i < 50; ++i) data(i, 0) = (i < 25) ? 0.0 : 1.0;
  Rng fit_rng(42);
  GmmOptions options;
  options.variance_floor = 1e-4;
  auto model = GaussianMixture::FitEm(data, 2, fit_rng, options);
  ASSERT_TRUE(model.ok());
  for (const auto& c : model->components()) EXPECT_GE(c.var[0], 1e-4);
}

TEST(GmmEmTest, RejectsBadArguments) {
  Matrix data = Matrix::FromRows({{0.0}, {1.0}});
  Rng rng(43);
  EXPECT_FALSE(GaussianMixture::FitEm(Matrix(), 2, rng).ok());
  EXPECT_FALSE(GaussianMixture::FitEm(data, 0, rng).ok());
  EXPECT_FALSE(GaussianMixture::FitEm(data, 3, rng).ok());  // n < k
}

TEST(GmmTest, LogDensityIsMixture) {
  // Single component: log density equals the diagonal-Gaussian log pdf.
  Matrix data = Matrix::FromRows({{0.0, 0.0}, {0.1, -0.1}, {-0.1, 0.1}, {0.05, 0.0}});
  auto model = GaussianMixture::FitSupervised(data, {0, 0, 0, 0}, 1);
  ASSERT_TRUE(model.ok());
  const auto& c = model->components()[0];
  const std::vector<double> x = {0.2, -0.3};
  double expected = 0.0;
  for (size_t j = 0; j < 2; ++j) {
    expected += -0.5 * (x[j] - c.mean[j]) * (x[j] - c.mean[j]) / c.var[j] -
                0.5 * std::log(2.0 * std::numbers::pi * c.var[j]);
  }
  EXPECT_NEAR(model->LogDensity(x), expected, 1e-12);
}

}  // namespace
}  // namespace otfair::stats
