#include "stats/kde2d.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace otfair::stats {
namespace {

std::vector<double> Grid(double lo, double hi, size_t n) {
  std::vector<double> g(n);
  for (size_t i = 0; i < n; ++i)
    g[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  return g;
}

TEST(Kde2dTest, SinglePointIsProductGaussian) {
  auto kde = GaussianKde2d::Fit({0.0}, {0.0}, 1.0, 2.0);
  ASSERT_TRUE(kde.ok());
  const double expected =
      std::exp(-0.5 * (1.0 + 0.25)) / (2.0 * std::numbers::pi * 1.0 * 2.0);
  EXPECT_NEAR(kde->Evaluate(1.0, 1.0), expected, 1e-12);
}

TEST(Kde2dTest, DensityIntegratesToOne) {
  common::Rng rng(1);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 400; ++i) {
    xs.push_back(rng.Normal(0.0, 1.0));
    ys.push_back(rng.Normal(0.0, 1.0));
  }
  auto kde = GaussianKde2d::FitSilverman(xs, ys);
  ASSERT_TRUE(kde.ok());
  const auto grid = Grid(-6.0, 6.0, 121);
  const double step = grid[1] - grid[0];
  common::Matrix density = kde->EvaluateOnGrid(grid, grid);
  EXPECT_NEAR(density.Sum() * step * step, 1.0, 5e-3);
}

TEST(Kde2dTest, GridEvaluationMatchesPointwise) {
  common::Rng rng(2);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(rng.Normal());
    ys.push_back(rng.Normal());
  }
  auto kde = GaussianKde2d::Fit(xs, ys, 0.5, 0.7);
  ASSERT_TRUE(kde.ok());
  const auto gx = Grid(-2.0, 2.0, 9);
  const auto gy = Grid(-1.0, 3.0, 7);
  common::Matrix density = kde->EvaluateOnGrid(gx, gy);
  for (size_t a = 0; a < gx.size(); ++a) {
    for (size_t b = 0; b < gy.size(); ++b) {
      EXPECT_NEAR(density(a, b), kde->Evaluate(gx[a], gy[b]), 1e-12);
    }
  }
}

TEST(Kde2dTest, CapturesCorrelationStructure) {
  // Strongly correlated cloud: density on the diagonal beats off-diagonal.
  common::Rng rng(3);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 2000; ++i) {
    const double z = rng.Normal();
    xs.push_back(z);
    ys.push_back(0.9 * z + 0.44 * rng.Normal());
  }
  auto kde = GaussianKde2d::FitSilverman(xs, ys);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Evaluate(1.0, 1.0), 3.0 * kde->Evaluate(1.0, -1.0));
}

TEST(Kde2dTest, PmfNormalized) {
  common::Rng rng(4);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(rng.Normal());
    ys.push_back(rng.Normal());
  }
  auto kde = GaussianKde2d::FitSilverman(xs, ys);
  ASSERT_TRUE(kde.ok());
  auto pmf = kde->PmfOnGrid(Grid(-3.0, 3.0, 20), Grid(-3.0, 3.0, 25));
  ASSERT_TRUE(pmf.ok());
  EXPECT_EQ(pmf->rows(), 20u);
  EXPECT_EQ(pmf->cols(), 25u);
  EXPECT_NEAR(pmf->Sum(), 1.0, 1e-12);
}

TEST(Kde2dTest, MarginalConsistentWith1dKde) {
  // Summing the joint pmf over y approximates the x marginal shape.
  common::Rng rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 3000; ++i) {
    xs.push_back(rng.Normal(1.0, 1.0));
    ys.push_back(rng.Normal(0.0, 1.0));
  }
  auto kde = GaussianKde2d::FitSilverman(xs, ys);
  ASSERT_TRUE(kde.ok());
  auto pmf = kde->PmfOnGrid(Grid(-3.0, 5.0, 33), Grid(-4.0, 4.0, 33));
  ASSERT_TRUE(pmf.ok());
  const std::vector<double> marginal_x = pmf->RowSums();
  // Mode of the x marginal near 1.0.
  size_t argmax = 0;
  for (size_t a = 1; a < marginal_x.size(); ++a) {
    if (marginal_x[a] > marginal_x[argmax]) argmax = a;
  }
  const auto gx = Grid(-3.0, 5.0, 33);
  EXPECT_NEAR(gx[argmax], 1.0, 0.5);
}

TEST(Kde2dTest, RejectsBadInputs) {
  EXPECT_FALSE(GaussianKde2d::Fit({}, {}, 1.0, 1.0).ok());
  EXPECT_FALSE(GaussianKde2d::Fit({0.0}, {0.0, 1.0}, 1.0, 1.0).ok());
  EXPECT_FALSE(GaussianKde2d::Fit({0.0}, {0.0}, 0.0, 1.0).ok());
  EXPECT_FALSE(GaussianKde2d::Fit({std::nan("")}, {0.0}, 1.0, 1.0).ok());
  auto kde = GaussianKde2d::Fit({0.0}, {0.0}, 0.01, 0.01);
  ASSERT_TRUE(kde.ok());
  EXPECT_FALSE(kde->PmfOnGrid(Grid(1e5, 2e5, 4), Grid(1e5, 2e5, 4)).ok());
}

}  // namespace
}  // namespace otfair::stats
