// QuantileSketch contract tests. The load-bearing ones:
//
//  - Merge algebra: sharded sketches merged in ANY order (and any
//    grouping) produce bit-identical quantile estimates — the property
//    the serving redesign path relies on when combining per-shard
//    channel sketches.
//  - Accuracy: against exact sample quantiles of simulated data (binary
//    and K = 4 level mixtures), estimates honor the relative-accuracy
//    guarantee |q_est - q_exact| <= alpha * |q_exact| plus one
//    rank-discretization step.
//  - Bounded memory: bucket occupancy stays under the documented ceiling
//    no matter how many values stream in.

#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/byte_io.h"
#include "common/rng.h"
#include "sim/gaussian_mixture.h"

namespace otfair::stats {
namespace {

std::vector<double> GaussianSample(size_t n, double mean, double sigma, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.Normal(mean, sigma);
  return xs;
}

/// The sketch guarantee: relative error alpha on the value, plus one
/// neighbor-rank step to absorb rank discretization at bucket boundaries.
void ExpectQuantileWithinBound(const QuantileSketch& sketch, const std::vector<double>& xs,
                               double p, double alpha) {
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  const size_t rank = static_cast<size_t>(p * static_cast<double>(n - 1));
  const double est = sketch.Quantile(p);
  const size_t lo_rank = rank > 0 ? rank - 1 : 0;
  const size_t hi_rank = rank + 1 < n ? rank + 1 : n - 1;
  const double lo = sorted[lo_rank];
  const double hi = sorted[hi_rank];
  const double slack_lo = alpha * std::fabs(lo) + 1e-12;
  const double slack_hi = alpha * std::fabs(hi) + 1e-12;
  EXPECT_GE(est, lo - slack_lo) << "p=" << p;
  EXPECT_LE(est, hi + slack_hi) << "p=" << p;
}

TEST(QuantileSketchTest, EmptySketchReportsNaN) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_TRUE(std::isnan(sketch.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(sketch.min()));
  EXPECT_TRUE(std::isnan(sketch.max()));
  EXPECT_EQ(sketch.Cdf(0.0), 0.0);
}

TEST(QuantileSketchTest, DropsNonFiniteValues) {
  QuantileSketch sketch;
  sketch.Add(1.0);
  sketch.Add(std::nan(""));
  sketch.Add(std::numeric_limits<double>::infinity());
  sketch.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_EQ(sketch.dropped(), 3u);
  EXPECT_EQ(sketch.Quantile(0.5), 1.0);
}

TEST(QuantileSketchTest, ExtremeQuantilesAreExact) {
  QuantileSketch sketch;
  const std::vector<double> xs = GaussianSample(5000, 1.5, 2.0, 11);
  for (double x : xs) sketch.Add(x);
  EXPECT_EQ(sketch.Quantile(0.0), *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(sketch.Quantile(1.0), *std::max_element(xs.begin(), xs.end()));
  EXPECT_EQ(sketch.min(), sketch.Quantile(0.0));
  EXPECT_EQ(sketch.max(), sketch.Quantile(1.0));
}

TEST(QuantileSketchTest, AccuracyAgainstExactQuantilesGaussian) {
  // Mixed-sign data exercises the negative store, the zero bucket, and the
  // positive store in one stream.
  QuantileSketch sketch;
  std::vector<double> xs = GaussianSample(20000, 0.0, 1.0, 21);
  xs.push_back(0.0);
  for (double x : xs) sketch.Add(x);
  EXPECT_EQ(sketch.count(), xs.size());
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99})
    ExpectQuantileWithinBound(sketch, xs, p, sketch.relative_accuracy());
}

TEST(QuantileSketchTest, AccuracyOnBinarySimulatedChannels) {
  // The serving use case: per-(u,s) channel streams from the paper's
  // binary Gaussian mixture.
  common::Rng rng(31);
  auto dataset =
      sim::SimulateGaussianMixture(8000, sim::GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(dataset.ok());
  for (int s = 0; s <= 1; ++s) {
    QuantileSketch sketch;
    std::vector<double> xs;
    for (size_t i = 0; i < dataset->size(); ++i) {
      if (dataset->s(i) != s) continue;
      xs.push_back(dataset->feature(i, 0));
      sketch.Add(xs.back());
    }
    ASSERT_GT(xs.size(), 1000u);
    for (double p : {0.05, 0.25, 0.5, 0.75, 0.95})
      ExpectQuantileWithinBound(sketch, xs, p, sketch.relative_accuracy());
  }
}

TEST(QuantileSketchTest, AccuracyOnFourLevelMixture) {
  // K = 4 strata with well-separated means: each stratum's sketch must
  // track its own exact quantiles (the multi-group redesign input).
  const double means[4] = {-6.0, -1.0, 1.5, 8.0};
  for (int level = 0; level < 4; ++level) {
    QuantileSketch sketch;
    const std::vector<double> xs =
        GaussianSample(6000, means[level], 0.7, 40 + static_cast<uint64_t>(level));
    for (double x : xs) sketch.Add(x);
    for (double p : {0.1, 0.5, 0.9})
      ExpectQuantileWithinBound(sketch, xs, p, sketch.relative_accuracy());
  }
}

TEST(QuantileSketchTest, MergeMatchesSingleStreamExactly) {
  // Values split across shards and merged must reproduce the single-sketch
  // estimates bit-for-bit: bucket counts are integers, so there is no
  // floating-point merge drift.
  const std::vector<double> xs = GaussianSample(12000, -0.5, 3.0, 51);
  QuantileSketch whole;
  QuantileSketch shards[3];
  for (size_t i = 0; i < xs.size(); ++i) {
    whole.Add(xs[i]);
    shards[i % 3].Add(xs[i]);
  }
  QuantileSketch merged;
  for (const QuantileSketch& shard : shards) ASSERT_TRUE(merged.Merge(shard).ok());
  ASSERT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  for (double p = 0.0; p <= 1.0; p += 0.05)
    EXPECT_EQ(merged.Quantile(p), whole.Quantile(p)) << "p=" << p;
}

TEST(QuantileSketchTest, MergeIsCommutativeAndAssociativeBitForBit) {
  // Build 5 shard sketches, then combine them in several distinct orders
  // and groupings; every combination must yield identical estimates at a
  // fine grid of quantiles.
  constexpr size_t kShards = 5;
  QuantileSketch shards[kShards];
  for (size_t shard = 0; shard < kShards; ++shard) {
    const std::vector<double> xs =
        GaussianSample(3000 + 500 * shard, static_cast<double>(shard) - 2.0, 1.0 + 0.3 * shard,
                       60 + shard);
    for (double x : xs) shards[shard].Add(x);
  }
  auto combine = [&](const std::vector<size_t>& order) {
    QuantileSketch out;
    for (size_t i : order) EXPECT_TRUE(out.Merge(shards[i]).ok());
    return out;
  };
  const QuantileSketch forward = combine({0, 1, 2, 3, 4});
  const QuantileSketch backward = combine({4, 3, 2, 1, 0});
  const QuantileSketch shuffled = combine({2, 0, 4, 1, 3});
  // Associativity: ((0+1)+(2+3))+4 as a different grouping.
  QuantileSketch left, right, grouped;
  ASSERT_TRUE(left.Merge(shards[0]).ok() && left.Merge(shards[1]).ok());
  ASSERT_TRUE(right.Merge(shards[2]).ok() && right.Merge(shards[3]).ok());
  ASSERT_TRUE(grouped.Merge(left).ok() && grouped.Merge(right).ok() &&
              grouped.Merge(shards[4]).ok());
  for (double p = 0.0; p <= 1.0; p += 0.01) {
    const double reference = forward.Quantile(p);
    EXPECT_EQ(backward.Quantile(p), reference) << "p=" << p;
    EXPECT_EQ(shuffled.Quantile(p), reference) << "p=" << p;
    EXPECT_EQ(grouped.Quantile(p), reference) << "p=" << p;
  }
  EXPECT_EQ(backward.count(), forward.count());
  EXPECT_EQ(grouped.bucket_count(), forward.bucket_count());
}

TEST(QuantileSketchTest, MergeRejectsMismatchedGeometry) {
  QuantileSketch::Options coarse;
  coarse.relative_accuracy = 0.05;
  QuantileSketch a;
  QuantileSketch b(coarse);
  b.Add(1.0);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(QuantileSketchTest, BoundedMemoryUnderAdversarialStream) {
  // Stream values spanning far beyond the clamped magnitude range; bucket
  // occupancy must stay below the documented ceiling (~5.5k at alpha=0.01).
  QuantileSketch sketch;
  common::Rng rng(71);
  for (int i = 0; i < 200000; ++i) {
    const double exponent = rng.Uniform() * 40.0 - 20.0;  // 1e-20 .. 1e20
    const double sign = rng.Uniform() < 0.5 ? -1.0 : 1.0;
    sketch.Add(sign * std::pow(10.0, exponent));
  }
  sketch.Add(0.0);
  EXPECT_EQ(sketch.count(), 200001u);
  EXPECT_LT(sketch.bucket_count(), 6000u);
  // Quantiles remain ordered even with clamped tails.
  double prev = sketch.Quantile(0.0);
  for (double p = 0.1; p <= 1.0; p += 0.1) {
    const double q = sketch.Quantile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
}

TEST(QuantileSketchTest, CdfIsMonotoneAndMatchesEmpirical) {
  QuantileSketch sketch;
  const std::vector<double> xs = GaussianSample(10000, 0.0, 1.0, 81);
  for (double x : xs) sketch.Add(x);
  double prev = 0.0;
  for (double x = -4.0; x <= 4.0; x += 0.25) {
    const double c = sketch.Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
    const double empirical =
        static_cast<double>(std::count_if(xs.begin(), xs.end(),
                                          [&](double v) { return v <= x; })) /
        static_cast<double>(xs.size());
    EXPECT_NEAR(c, empirical, 0.02) << "x=" << x;
  }
  EXPECT_EQ(sketch.Cdf(-100.0), 0.0);
  EXPECT_EQ(sketch.Cdf(100.0), 1.0);
}

TEST(QuantileSketchTest, ResetClearsObservedStateKeepsGeometry) {
  QuantileSketch sketch;
  for (double x : GaussianSample(1000, 2.0, 1.0, 91)) sketch.Add(x);
  ASSERT_GT(sketch.bucket_count(), 0u);
  sketch.Reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.bucket_count(), 0u);
  EXPECT_TRUE(std::isnan(sketch.Quantile(0.5)));
  sketch.Add(3.0);
  EXPECT_EQ(sketch.Quantile(0.5), 3.0);
}

TEST(QuantileSketchSerializationTest, RoundTripRestoresBitIdenticalEstimates) {
  QuantileSketch sketch;
  // Positives, negatives, zeros, extremes — every store participates.
  for (double x : GaussianSample(5000, 0.0, 3.0, 17)) sketch.Add(x);
  sketch.Add(0.0);
  sketch.Add(0.0);
  std::string bytes;
  common::ByteWriter writer(&bytes);
  sketch.SerializeTo(writer);

  QuantileSketch restored;
  common::ByteReader reader(bytes);
  ASSERT_TRUE(restored.DeserializeFrom(reader).ok());
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(restored.count(), sketch.count());
  EXPECT_EQ(restored.dropped(), sketch.dropped());
  EXPECT_EQ(restored.min(), sketch.min());
  EXPECT_EQ(restored.max(), sketch.max());
  for (double p : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0})
    EXPECT_EQ(restored.Quantile(p), sketch.Quantile(p)) << "p=" << p;
  // And the restored sketch re-serializes to the same bytes.
  std::string again;
  common::ByteWriter writer2(&again);
  restored.SerializeTo(writer2);
  EXPECT_EQ(again, bytes);
}

TEST(QuantileSketchSerializationTest, EmptySketchRoundTrips) {
  QuantileSketch sketch;
  std::string bytes;
  common::ByteWriter writer(&bytes);
  sketch.SerializeTo(writer);
  QuantileSketch restored;
  common::ByteReader reader(bytes);
  ASSERT_TRUE(restored.DeserializeFrom(reader).ok());
  EXPECT_EQ(restored.count(), 0u);
  EXPECT_TRUE(std::isnan(restored.Quantile(0.5)));
}

TEST(QuantileSketchSerializationTest, CorruptPayloadsRejectedWithoutMutating) {
  QuantileSketch sketch;
  for (double x : GaussianSample(2000, 1.0, 1.0, 18)) sketch.Add(x);
  std::string bytes;
  common::ByteWriter writer(&bytes);
  sketch.SerializeTo(writer);

  // Truncations: every parse fails, and the target sketch keeps its prior
  // state (commit-on-success semantics).
  for (size_t len : {size_t{0}, size_t{4}, bytes.size() / 2, bytes.size() - 1}) {
    QuantileSketch target;
    target.Add(42.0);
    common::ByteReader reader(bytes.data(), len);
    EXPECT_FALSE(target.DeserializeFrom(reader).ok()) << "prefix " << len;
    EXPECT_EQ(target.count(), 1u);
    EXPECT_EQ(target.Quantile(0.5), 42.0);
  }
  // A bucket-count/total mismatch (flip a count byte) is caught by the
  // overflow-safe sum check.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] = static_cast<char>(flipped[flipped.size() / 2] ^ 0x01);
  QuantileSketch target;
  common::ByteReader reader(flipped);
  // Either an invalid-structure error or (if the flip hit min/max) a
  // finite-extremes failure; it must not be silently accepted as-is with
  // inconsistent counts.
  if (target.DeserializeFrom(reader).ok()) {
    // The flip landed somewhere value-only (e.g. min/max mantissa) that
    // keeps the invariants intact; counts must still be self-consistent.
    EXPECT_EQ(target.count(), sketch.count());
  }
}

}  // namespace
}  // namespace otfair::stats
