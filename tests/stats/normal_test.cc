#include "stats/normal.h"

#include <cmath>

#include <gtest/gtest.h>

namespace otfair::stats {
namespace {

TEST(NormalTest, StandardPdfAtZero) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
}

TEST(NormalTest, PdfSymmetric) {
  EXPECT_DOUBLE_EQ(NormalPdf(1.3), NormalPdf(-1.3));
  EXPECT_DOUBLE_EQ(NormalPdf(5.0, 2.0, 3.0), NormalPdf(-1.0, 2.0, 3.0));
}

TEST(NormalTest, PdfScalesWithSd) {
  // Peak height is 1/(sd * sqrt(2pi)).
  EXPECT_NEAR(NormalPdf(0.0, 0.0, 2.0), 0.3989422804014327 / 2.0, 1e-12);
}

TEST(NormalTest, LogPdfConsistentWithPdf) {
  for (double x : {-2.0, 0.0, 0.7, 3.5}) {
    EXPECT_NEAR(std::exp(NormalLogPdf(x, 1.0, 1.5)), NormalPdf(x, 1.0, 1.5), 1e-12);
  }
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-9);
}

TEST(NormalTest, CdfMonotone) {
  double prev = 0.0;
  for (double x = -5.0; x <= 5.0; x += 0.25) {
    const double c = NormalCdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(NormalTest, CdfShiftScale) {
  EXPECT_NEAR(NormalCdf(3.0, 3.0, 10.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(5.0, 3.0, 2.0), NormalCdf(1.0), 1e-12);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double q : {0.001, 0.025, 0.25, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(q)), q, 1e-8) << "q=" << q;
  }
}

TEST(NormalTest, QuantileSymmetry) {
  EXPECT_NEAR(NormalQuantile(0.3), -NormalQuantile(0.7), 1e-9);
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
}

TEST(NormalTest, QuantileKnownValue) {
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-7);
}

}  // namespace
}  // namespace otfair::stats
