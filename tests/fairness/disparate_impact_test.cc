#include "fairness/disparate_impact.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/matrix.h"

namespace otfair::fairness {
namespace {

using common::Matrix;

/// 8 rows: u alternates every 4, s alternates every 2.
data::Dataset EightRows(std::vector<int> outcomes = {}) {
  Matrix features(8, 1);
  for (size_t i = 0; i < 8; ++i) features(i, 0) = static_cast<double>(i);
  std::vector<int> s = {0, 0, 1, 1, 0, 0, 1, 1};
  std::vector<int> u = {0, 0, 0, 0, 1, 1, 1, 1};
  auto d = data::Dataset::Create(std::move(features), std::move(s), std::move(u), {"x"},
                                 std::move(outcomes));
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(PositiveRateTest, CountsWithinGroup) {
  data::Dataset d = EightRows();
  // Group (u=0, s=0) = rows {0, 1}; predictions: 1 and 0 -> rate 0.5.
  const std::vector<int> preds = {1, 0, 0, 0, 0, 0, 0, 0};
  auto rate = PositiveRate(d, preds, 0, 0);
  ASSERT_TRUE(rate.ok());
  EXPECT_DOUBLE_EQ(*rate, 0.5);
}

TEST(DisparateImpactTest, ParityGivesOne) {
  data::Dataset d = EightRows();
  const std::vector<int> preds = {1, 0, 1, 0, 0, 1, 0, 1};
  auto di = DisparateImpact(d, preds, 0);
  ASSERT_TRUE(di.ok());
  EXPECT_DOUBLE_EQ(*di, 1.0);
}

TEST(DisparateImpactTest, DetectsBiasAgainstS0) {
  data::Dataset d = EightRows();
  // In u=0: s=0 rate 0, s=1 rate 1 -> DI = 0.
  const std::vector<int> preds = {0, 0, 1, 1, 0, 0, 0, 0};
  auto di = DisparateImpact(d, preds, 0);
  ASSERT_TRUE(di.ok());
  EXPECT_DOUBLE_EQ(*di, 0.0);
}

TEST(DisparateImpactTest, InfinityWhenDenominatorZero) {
  data::Dataset d = EightRows();
  // In u=0: s=0 rate 0.5, s=1 rate 0 -> DI = inf.
  const std::vector<int> preds = {1, 0, 0, 0, 0, 0, 0, 0};
  auto di = DisparateImpact(d, preds, 0);
  ASSERT_TRUE(di.ok());
  EXPECT_TRUE(std::isinf(*di));
}

TEST(DisparateImpactTest, OneWhenNobodyPositive) {
  data::Dataset d = EightRows();
  const std::vector<int> preds(8, 0);
  auto di = DisparateImpact(d, preds, 1);
  ASSERT_TRUE(di.ok());
  EXPECT_DOUBLE_EQ(*di, 1.0);
}

TEST(DisparateImpactTest, ConditionalDiffersFromUnconditional) {
  // Classic Simpson-style setup: parity within each u but s-groups are
  // unevenly distributed across u with different base rates.
  Matrix features(8, 1);
  std::vector<int> s = {0, 1, 1, 1, 0, 0, 0, 1};
  std::vector<int> u = {0, 0, 0, 0, 1, 1, 1, 1};
  auto d = data::Dataset::Create(std::move(features), std::move(s), std::move(u), {"x"});
  ASSERT_TRUE(d.ok());
  // u=0 everyone positive; u=1 everyone negative: conditional DI = 1 both
  // strata, but unconditionally s=0 has rate 1/4 and s=1 has 3/4.
  const std::vector<int> preds = {1, 1, 1, 1, 0, 0, 0, 0};
  auto cond0 = DisparateImpact(*d, preds, 0);
  auto cond1 = DisparateImpact(*d, preds, 1);
  auto uncond = DisparateImpactUnconditional(*d, preds);
  ASSERT_TRUE(cond0.ok() && cond1.ok() && uncond.ok());
  EXPECT_DOUBLE_EQ(*cond0, 1.0);
  EXPECT_DOUBLE_EQ(*cond1, 1.0);
  EXPECT_NEAR(*uncond, (1.0 / 4.0) / (3.0 / 4.0), 1e-12);
}

TEST(StatisticalParityTest, SignedDifference) {
  data::Dataset d = EightRows();
  // u=0: s=1 rate 1.0, s=0 rate 0.5 -> SPD = +0.5.
  const std::vector<int> preds = {1, 0, 1, 1, 0, 0, 0, 0};
  auto spd = StatisticalParityDifference(d, preds, 0);
  ASSERT_TRUE(spd.ok());
  EXPECT_DOUBLE_EQ(*spd, 0.5);
}

TEST(StatisticalParityTest, ZeroAtParity) {
  data::Dataset d = EightRows();
  const std::vector<int> preds = {1, 0, 0, 1, 1, 1, 1, 1};
  auto spd = StatisticalParityDifference(d, preds, 0);
  ASSERT_TRUE(spd.ok());
  EXPECT_DOUBLE_EQ(*spd, 0.0);
}

TEST(AccuracyTest, CountsMatches) {
  data::Dataset d = EightRows({1, 1, 0, 0, 1, 1, 0, 0});
  const std::vector<int> preds = {1, 1, 0, 0, 0, 0, 1, 1};
  auto acc = Accuracy(d, preds);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 0.5);
}

TEST(AccuracyTest, RequiresOutcome) {
  data::Dataset d = EightRows();
  EXPECT_FALSE(Accuracy(d, std::vector<int>(8, 0)).ok());
}

TEST(ValidationTest, RejectsBadPredictions) {
  data::Dataset d = EightRows();
  EXPECT_FALSE(DisparateImpact(d, {1, 0}, 0).ok());              // wrong length
  EXPECT_FALSE(DisparateImpact(d, std::vector<int>(8, 2), 0).ok());  // non-binary
}

TEST(ValidationTest, EmptyGroupReported) {
  Matrix features(2, 1);
  auto d = data::Dataset::Create(std::move(features), {0, 0}, {0, 0}, {"x"});
  ASSERT_TRUE(d.ok());
  auto di = DisparateImpact(*d, {1, 0}, 0);  // no s=1 rows in u=0
  EXPECT_FALSE(di.ok());
  EXPECT_EQ(di.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST(DisparateImpactMultiGroupTest, WorstPairBoundsEveryRatio) {
  // Three s levels in one u stratum with positive rates 1.0 / 0.5 / 0.25:
  // worst pair = 0.25, worst parity gap = 0.75.
  common::Matrix f = common::Matrix::FromRows({{1.0},
                                               {1.0},
                                               {1.0},
                                               {1.0},
                                               {1.0},
                                               {1.0},
                                               {1.0},
                                               {1.0},
                                               {1.0},
                                               {1.0},
                                               {1.0},
                                               {1.0}});
  std::vector<int> s = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2};
  std::vector<int> u(12, 0);
  auto d = data::Dataset::Create(std::move(f), std::move(s), std::move(u), {"x"}, {}, 0,
                                 /*u_levels=*/1);
  ASSERT_TRUE(d.ok());
  const std::vector<int> predictions = {1, 1, 1, 1, 1, 1, 0, 0, 1, 0, 0, 0};
  auto rates = PositiveRatesPerLevel(*d, predictions, 0);
  ASSERT_TRUE(rates.ok());
  ASSERT_EQ(rates->size(), 3u);
  EXPECT_DOUBLE_EQ((*rates)[0], 1.0);
  EXPECT_DOUBLE_EQ((*rates)[1], 0.5);
  EXPECT_DOUBLE_EQ((*rates)[2], 0.25);
  auto worst = DisparateImpactWorstPair(*d, predictions, 0);
  ASSERT_TRUE(worst.ok());
  EXPECT_DOUBLE_EQ(*worst, 0.25);
  auto gap = StatisticalParityWorstPair(*d, predictions, 0);
  ASSERT_TRUE(gap.ok());
  EXPECT_DOUBLE_EQ(*gap, 0.75);
}

TEST(DisparateImpactMultiGroupTest, BinaryWorstPairIsDirectionFree) {
  common::Matrix f = common::Matrix::FromRows({{1.0}, {1.0}, {1.0}, {1.0}});
  auto d = data::Dataset::Create(std::move(f), {0, 0, 1, 1}, {0, 0, 0, 0}, {"x"});
  ASSERT_TRUE(d.ok());
  // rate(s=0) = 1.0, rate(s=1) = 0.5: DI = 2, worst pair = min(DI, 1/DI).
  const std::vector<int> predictions = {1, 1, 1, 0};
  auto di = DisparateImpact(*d, predictions, 0);
  auto worst = DisparateImpactWorstPair(*d, predictions, 0);
  ASSERT_TRUE(di.ok() && worst.ok());
  EXPECT_DOUBLE_EQ(*di, 2.0);
  EXPECT_DOUBLE_EQ(*worst, 0.5);
}

TEST(DisparateImpactMultiGroupTest, WorstPairAtParityIsOne) {
  common::Matrix f = common::Matrix::FromRows({{1.0}, {1.0}, {1.0}});
  auto d = data::Dataset::Create(std::move(f), {0, 1, 2}, {0, 0, 0}, {"x"}, {}, 0, 1);
  ASSERT_TRUE(d.ok());
  // Nobody receives positives: trivially at parity.
  auto worst = DisparateImpactWorstPair(*d, {0, 0, 0}, 0);
  ASSERT_TRUE(worst.ok());
  EXPECT_DOUBLE_EQ(*worst, 1.0);
}

}  // namespace
}  // namespace otfair::fairness
