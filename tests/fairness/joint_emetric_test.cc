#include "fairness/joint_emetric.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"

namespace otfair::fairness {
namespace {

sim::GaussianSimConfig EqualMeansConfig() {
  sim::GaussianSimConfig config = sim::GaussianSimConfig::PaperDefault();
  config.mean[0][0] = {0.0, 0.0};
  config.mean[0][1] = {0.0, 0.0};
  config.mean[1][0] = {0.0, 0.0};
  config.mean[1][1] = {0.0, 0.0};
  config.pr_s0_given_u0 = 0.5;
  config.pr_s0_given_u1 = 0.5;
  return config;
}

TEST(JointEMetricTest, NearZeroWhenIdenticallyDistributed) {
  common::Rng rng(1);
  auto d = sim::SimulateGaussianMixture(6000, EqualMeansConfig(), rng);
  ASSERT_TRUE(d.ok());
  auto e = JointFeaturePairE(*d, 0, 1);
  ASSERT_TRUE(e.ok());
  // 2-D KDE + KL carries more small-sample bias than the 1-D metric;
  // "near zero" here means an order of magnitude below any real signal.
  EXPECT_LT(*e, 0.1);
}

TEST(JointEMetricTest, DetectsMeanShift) {
  common::Rng rng(2);
  auto d = sim::SimulateGaussianMixture(6000, sim::GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(d.ok());
  auto e = JointFeaturePairE(*d, 0, 1);
  ASSERT_TRUE(e.ok());
  EXPECT_GT(*e, 0.3);
}

TEST(JointEMetricTest, DetectsCorrelationOnlyDifference) {
  // Marginals identical, copulas different: the per-feature metric is
  // blind, the joint one is not. Build a dataset whose s=0 rows are
  // correlated and s=1 rows are not.
  sim::GaussianSimConfig correlated = EqualMeansConfig();
  correlated.rho = 0.85;
  sim::GaussianSimConfig independent = EqualMeansConfig();

  common::Rng rng(3);
  auto d_corr = sim::SimulateGaussianMixture(8000, correlated, rng);
  auto d_ind = sim::SimulateGaussianMixture(8000, independent, rng);
  ASSERT_TRUE(d_corr.ok() && d_ind.ok());

  std::vector<size_t> idx0;
  std::vector<size_t> idx1;
  for (size_t i = 0; i < d_corr->size(); ++i) {
    if (d_corr->s(i) == 0) idx0.push_back(i);
  }
  for (size_t i = 0; i < d_ind->size(); ++i) {
    if (d_ind->s(i) == 1) idx1.push_back(i);
  }
  data::Dataset part0 = d_corr->Subset(idx0);
  data::Dataset part1 = d_ind->Subset(idx1);
  common::Matrix features(part0.size() + part1.size(), 2);
  std::vector<int> s;
  std::vector<int> u;
  for (size_t i = 0; i < part0.size(); ++i) {
    features(i, 0) = part0.feature(i, 0);
    features(i, 1) = part0.feature(i, 1);
    s.push_back(0);
    u.push_back(part0.u(i));
  }
  for (size_t i = 0; i < part1.size(); ++i) {
    features(part0.size() + i, 0) = part1.feature(i, 0);
    features(part0.size() + i, 1) = part1.feature(i, 1);
    s.push_back(1);
    u.push_back(part1.u(i));
  }
  auto d = data::Dataset::Create(std::move(features), std::move(s), std::move(u),
                                 {"x1", "x2"});
  ASSERT_TRUE(d.ok());

  auto joint = JointFeaturePairE(*d, 0, 1);
  auto marginal = AggregateE(*d);
  ASSERT_TRUE(joint.ok() && marginal.ok());
  EXPECT_GT(*joint, 0.15);
  EXPECT_LT(*marginal, *joint / 3.0);
}

TEST(JointEMetricTest, SymmetricInFeatureOrder) {
  common::Rng rng(4);
  auto d = sim::SimulateGaussianMixture(4000, sim::GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(d.ok());
  auto ab = JointFeaturePairE(*d, 0, 1);
  auto ba = JointFeaturePairE(*d, 1, 0);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_NEAR(*ab, *ba, 0.02 * (*ab + *ba) + 0.01);
}

TEST(JointEMetricTest, RejectsBadArguments) {
  common::Rng rng(5);
  auto d = sim::SimulateGaussianMixture(200, sim::GaussianSimConfig::PaperDefault(), rng);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(JointFeaturePairE(*d, 0, 0).ok());
  EXPECT_FALSE(JointFeaturePairE(*d, 0, 7).ok());
  JointEMetricOptions options;
  options.grid_size = 1;
  EXPECT_FALSE(JointFeaturePairE(*d, 0, 1, options).ok());
}

}  // namespace
}  // namespace otfair::fairness
