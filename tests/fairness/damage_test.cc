#include "fairness/damage.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/matrix.h"

namespace otfair::fairness {
namespace {

using common::Matrix;

data::Dataset MakeDataset(const std::vector<std::vector<double>>& rows) {
  Matrix features = Matrix::FromRows(rows);
  std::vector<int> s(rows.size(), 0);
  std::vector<int> u(rows.size(), 0);
  std::vector<std::string> names;
  for (size_t k = 0; k < rows[0].size(); ++k) names.push_back("f" + std::to_string(k));
  auto d = data::Dataset::Create(std::move(features), std::move(s), std::move(u), names);
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(DamageTest, IdenticalDataZeroDamage) {
  data::Dataset d = MakeDataset({{1.0, 2.0}, {3.0, 4.0}});
  auto report = ComputeDamage(d, d);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->mean_abs_displacement[0], 0.0);
  EXPECT_DOUBLE_EQ(report->rms_displacement[1], 0.0);
  EXPECT_DOUBLE_EQ(report->mean_l2_displacement, 0.0);
}

TEST(DamageTest, UniformShiftMeasuredExactly) {
  data::Dataset before = MakeDataset({{0.0, 0.0}, {1.0, 1.0}});
  data::Dataset after = MakeDataset({{2.0, 0.0}, {3.0, 1.0}});
  auto report = ComputeDamage(before, after);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->mean_abs_displacement[0], 2.0);
  EXPECT_DOUBLE_EQ(report->mean_abs_displacement[1], 0.0);
  EXPECT_DOUBLE_EQ(report->rms_displacement[0], 2.0);
  EXPECT_DOUBLE_EQ(report->mean_l2_displacement, 2.0);
}

TEST(DamageTest, RmsExceedsMeanAbsForUnevenDisplacements) {
  data::Dataset before = MakeDataset({{0.0}, {0.0}});
  data::Dataset after = MakeDataset({{0.0}, {2.0}});
  auto report = ComputeDamage(before, after);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->mean_abs_displacement[0], 1.0);
  EXPECT_DOUBLE_EQ(report->rms_displacement[0], std::sqrt(2.0));
}

TEST(DamageTest, L2CombinesFeatures) {
  data::Dataset before = MakeDataset({{0.0, 0.0}});
  data::Dataset after = MakeDataset({{3.0, 4.0}});
  auto report = ComputeDamage(before, after);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->mean_l2_displacement, 5.0);
}

TEST(DamageTest, SignIrrelevant) {
  data::Dataset before = MakeDataset({{1.0}});
  data::Dataset after = MakeDataset({{-1.0}});
  auto report = ComputeDamage(before, after);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->mean_abs_displacement[0], 2.0);
}

TEST(DamageTest, RejectsMisalignedDatasets) {
  data::Dataset a = MakeDataset({{1.0}});
  data::Dataset b = MakeDataset({{1.0}, {2.0}});
  data::Dataset c = MakeDataset({{1.0, 2.0}});
  EXPECT_FALSE(ComputeDamage(a, b).ok());
  EXPECT_FALSE(ComputeDamage(a, c).ok());
}

}  // namespace
}  // namespace otfair::fairness
