#include "fairness/logistic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/rng.h"

namespace otfair::fairness {
namespace {

using common::Matrix;
using common::Rng;

TEST(LogisticTest, SeparatesLinearlySeparableData) {
  Rng rng(90);
  const size_t n = 400;
  Matrix features(n, 1);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
    features(i, 0) = labels[i] == 1 ? rng.Uniform(2.0, 4.0) : rng.Uniform(-4.0, -2.0);
  }
  auto model = LogisticRegression::Fit(features, labels);
  ASSERT_TRUE(model.ok());
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    correct += model->Classify({features(i, 0)}) == labels[i] ? 1 : 0;
  }
  EXPECT_EQ(correct, n);
}

TEST(LogisticTest, RecoversNoisyDecisionBoundary) {
  Rng rng(91);
  const size_t n = 4000;
  Matrix features(n, 2);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    features(i, 0) = rng.Normal(0.0, 2.0);
    features(i, 1) = rng.Normal(0.0, 2.0);
    const double z = 1.5 * features(i, 0) - 1.0 * features(i, 1);
    labels[i] = rng.Bernoulli(1.0 / (1.0 + std::exp(-z))) ? 1 : 0;
  }
  auto model = LogisticRegression::Fit(features, labels);
  ASSERT_TRUE(model.ok());
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    correct += model->Classify({features(i, 0), features(i, 1)}) == labels[i] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.80);
}

TEST(LogisticTest, ProbabilitiesAreCalibratedDirectionally) {
  Rng rng(92);
  const size_t n = 2000;
  Matrix features(n, 1);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    features(i, 0) = rng.Normal(0.0, 1.0);
    labels[i] = rng.Bernoulli(1.0 / (1.0 + std::exp(-3.0 * features(i, 0)))) ? 1 : 0;
  }
  auto model = LogisticRegression::Fit(features, labels);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->PredictProbability({2.0}), 0.9);
  EXPECT_LT(model->PredictProbability({-2.0}), 0.1);
  EXPECT_NEAR(model->PredictProbability({0.0}), 0.5, 0.1);
}

TEST(LogisticTest, BalancedPriorWithNoSignal) {
  Rng rng(93);
  const size_t n = 3000;
  Matrix features(n, 1);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    features(i, 0) = rng.Normal(0.0, 1.0);
    labels[i] = rng.Bernoulli(0.7) ? 1 : 0;  // label independent of x
  }
  auto model = LogisticRegression::Fit(features, labels);
  ASSERT_TRUE(model.ok());
  // With no signal the model should predict roughly the base rate.
  EXPECT_NEAR(model->PredictProbability({0.5}), 0.7, 0.05);
}

TEST(LogisticTest, ConstantFeatureColumnHandled) {
  Matrix features = Matrix::FromRows({{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}, {4.0, 5.0}});
  auto model = LogisticRegression::Fit(features, {0, 0, 1, 1});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Classify({1.0, 5.0}), 0);
  EXPECT_EQ(model->Classify({4.0, 5.0}), 1);
}

TEST(LogisticTest, FitDatasetUsesOutcomeColumn) {
  Rng rng(94);
  const size_t n = 500;
  Matrix features(n, 1);
  std::vector<int> s(n, 0);
  std::vector<int> u(n, 0);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = rng.Bernoulli(0.5) ? 1 : 0;
    features(i, 0) = y[i] == 1 ? rng.Normal(3.0, 0.5) : rng.Normal(-3.0, 0.5);
    s[i] = rng.Bernoulli(0.5);
    u[i] = rng.Bernoulli(0.5);
  }
  auto d = data::Dataset::Create(std::move(features), std::move(s), std::move(u), {"x"},
                                 std::move(y));
  ASSERT_TRUE(d.ok());
  auto model = LogisticRegression::FitDataset(*d);
  ASSERT_TRUE(model.ok());
  const auto preds = model->ClassifyDataset(*d);
  size_t correct = 0;
  for (size_t i = 0; i < d->size(); ++i) correct += preds[i] == d->y(i) ? 1 : 0;
  EXPECT_GT(static_cast<double>(correct) / d->size(), 0.99);
}

TEST(LogisticTest, FitDatasetRequiresOutcome) {
  Matrix features = Matrix::FromRows({{1.0}});
  auto d = data::Dataset::Create(std::move(features), {0}, {0}, {"x"});
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(LogisticRegression::FitDataset(*d).ok());
}

TEST(LogisticTest, RejectsBadInputs) {
  Matrix features = Matrix::FromRows({{1.0}, {2.0}});
  EXPECT_FALSE(LogisticRegression::Fit(features, {0}).ok());
  EXPECT_FALSE(LogisticRegression::Fit(features, {0, 3}).ok());
  EXPECT_FALSE(LogisticRegression::Fit(Matrix(), {}).ok());
}

TEST(LogisticTest, DeterministicTraining) {
  Matrix features = Matrix::FromRows({{0.0}, {1.0}, {2.0}, {3.0}});
  const std::vector<int> labels = {0, 0, 1, 1};
  auto a = LogisticRegression::Fit(features, labels);
  auto b = LogisticRegression::Fit(features, labels);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->weights(), b->weights());
  EXPECT_EQ(a->bias(), b->bias());
}

}  // namespace
}  // namespace otfair::fairness
