#include "fairness/emetric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/rng.h"

namespace otfair::fairness {
namespace {

using common::Matrix;
using common::Rng;

/// Builds a dataset where feature 0's s-conditionals are N(mean_s0, 1) and
/// N(mean_s1, 1) in both u strata.
data::Dataset ShiftedGaussians(Rng& rng, size_t n, double mean_s0, double mean_s1) {
  Matrix features(n, 1);
  std::vector<int> s(n);
  std::vector<int> u(n);
  for (size_t i = 0; i < n; ++i) {
    s[i] = rng.Bernoulli(0.5) ? 1 : 0;
    u[i] = rng.Bernoulli(0.5) ? 1 : 0;
    features(i, 0) = rng.Normal(s[i] == 0 ? mean_s0 : mean_s1, 1.0);
  }
  return *data::Dataset::Create(std::move(features), std::move(s), std::move(u), {"x"});
}

TEST(EMetricTest, NearZeroWhenConditionallyIndependent) {
  Rng rng(80);
  data::Dataset d = ShiftedGaussians(rng, 4000, 0.0, 0.0);
  auto e = FeatureE(d, 0);
  ASSERT_TRUE(e.ok());
  EXPECT_LT(*e, 0.05);
}

TEST(EMetricTest, GrowsWithSeparation) {
  Rng rng(81);
  data::Dataset close = ShiftedGaussians(rng, 4000, 0.0, 0.5);
  data::Dataset far = ShiftedGaussians(rng, 4000, 0.0, 2.0);
  auto e_close = FeatureE(close, 0);
  auto e_far = FeatureE(far, 0);
  ASSERT_TRUE(e_close.ok() && e_far.ok());
  EXPECT_GT(*e_far, 3.0 * *e_close);
}

TEST(EMetricTest, ApproximatesGaussianSymmetrizedKl) {
  // For N(0,1) vs N(delta,1), symmetrized KL = delta^2 / 2.
  Rng rng(82);
  const double delta = 1.0;
  data::Dataset d = ShiftedGaussians(rng, 20000, 0.0, delta);
  auto e = FeatureE(d, 0);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(*e, delta * delta / 2.0, 0.12);
}

TEST(EMetricTest, BreakdownWeightsSumToOne) {
  Rng rng(83);
  data::Dataset d = ShiftedGaussians(rng, 2000, 0.0, 1.0);
  auto breakdown = FeatureEMetric(d, 0);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_NEAR(breakdown->pr_u[0] + breakdown->pr_u[1], 1.0, 1e-12);
  EXPECT_GE(breakdown->e_u[0], 0.0);
  EXPECT_GE(breakdown->e_u[1], 0.0);
}

TEST(EMetricTest, DetectsDependenceInOnlyOneStratum) {
  // s-shift present only for u = 1: E_u0 ~ 0, E_u1 >> 0.
  Rng rng(84);
  const size_t n = 8000;
  Matrix features(n, 1);
  std::vector<int> s(n);
  std::vector<int> u(n);
  for (size_t i = 0; i < n; ++i) {
    s[i] = rng.Bernoulli(0.5) ? 1 : 0;
    u[i] = rng.Bernoulli(0.5) ? 1 : 0;
    const double mean = (u[i] == 1 && s[i] == 1) ? 2.0 : 0.0;
    features(i, 0) = rng.Normal(mean, 1.0);
  }
  auto d = data::Dataset::Create(std::move(features), std::move(s), std::move(u), {"x"});
  ASSERT_TRUE(d.ok());
  auto breakdown = FeatureEMetric(*d, 0);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_LT(breakdown->e_u[0], 0.1);
  EXPECT_GT(breakdown->e_u[1], 1.0);
}

TEST(EMetricTest, SkipsUnderpopulatedStratum) {
  // u = 1 stratum has a single s = 0 row; metric should renormalize onto
  // u = 0 rather than fail.
  Rng rng(85);
  const size_t n = 1000;
  Matrix features(n, 1);
  std::vector<int> s(n);
  std::vector<int> u(n);
  for (size_t i = 0; i < n; ++i) {
    u[i] = (i == 0 || i == 1) ? 1 : 0;
    s[i] = (i == 0) ? 0 : rng.Bernoulli(0.5) ? 1 : 0;
    if (i == 1) s[i] = 1;
    features(i, 0) = rng.Normal(0.0, 1.0);
  }
  auto d = data::Dataset::Create(std::move(features), std::move(s), std::move(u), {"x"});
  ASSERT_TRUE(d.ok());
  auto breakdown = FeatureEMetric(*d, 0);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_TRUE(std::isnan(breakdown->e_u[1]));
  EXPECT_FALSE(std::isnan(breakdown->e_u[0]));
}

TEST(EMetricTest, FailsWhenNoStratumUsable) {
  Matrix features = Matrix::FromRows({{1.0}, {2.0}});
  auto d = data::Dataset::Create(std::move(features), {0, 0}, {0, 1}, {"x"});
  ASSERT_TRUE(d.ok());
  auto e = FeatureE(*d, 0);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST(EMetricTest, AggregateAveragesFeatures) {
  Rng rng(86);
  const size_t n = 4000;
  Matrix features(n, 2);
  std::vector<int> s(n);
  std::vector<int> u(n);
  for (size_t i = 0; i < n; ++i) {
    s[i] = rng.Bernoulli(0.5) ? 1 : 0;
    u[i] = rng.Bernoulli(0.5) ? 1 : 0;
    features(i, 0) = rng.Normal(s[i] * 2.0, 1.0);  // dependent channel
    features(i, 1) = rng.Normal(0.0, 1.0);         // independent channel
  }
  auto d = data::Dataset::Create(std::move(features), std::move(s), std::move(u), {"a", "b"});
  ASSERT_TRUE(d.ok());
  auto e0 = FeatureE(*d, 0);
  auto e1 = FeatureE(*d, 1);
  auto agg = AggregateE(*d);
  ASSERT_TRUE(e0.ok() && e1.ok() && agg.ok());
  EXPECT_NEAR(*agg, 0.5 * (*e0 + *e1), 1e-12);
  EXPECT_GT(*e0, 10.0 * *e1);
}

TEST(EMetricTest, RejectsBadArguments) {
  Rng rng(87);
  data::Dataset d = ShiftedGaussians(rng, 100, 0.0, 0.0);
  EXPECT_FALSE(FeatureE(d, 5).ok());
  EMetricOptions options;
  options.grid_size = 1;
  EXPECT_FALSE(FeatureE(d, 0, options).ok());
}

TEST(EMetricTest, GridResolutionStableAboveThreshold) {
  Rng rng(88);
  data::Dataset d = ShiftedGaussians(rng, 5000, 0.0, 1.5);
  EMetricOptions coarse;
  coarse.grid_size = 50;
  EMetricOptions fine;
  fine.grid_size = 400;
  auto ec = FeatureE(d, 0, coarse);
  auto ef = FeatureE(d, 0, fine);
  ASSERT_TRUE(ec.ok() && ef.ok());
  EXPECT_NEAR(*ec, *ef, 0.05 * std::max(*ec, *ef) + 0.01);
}

TEST(EMetricMultiGroupTest, IdenticalLevelsScoreNearZero) {
  // Three s levels drawn from the same distribution: the max-over-pairs E
  // must be near zero.
  common::Rng rng(91);
  const size_t n = 3000;
  common::Matrix f(n, 1);
  std::vector<int> s(n);
  std::vector<int> u(n);
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<int>(rng.UniformInt(3));
    u[i] = static_cast<int>(rng.UniformInt(2));
    f(i, 0) = rng.Normal();
  }
  auto d = data::Dataset::Create(std::move(f), std::move(s), std::move(u), {"x"});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->s_levels(), 3u);
  auto e = FeatureE(*d, 0);
  ASSERT_TRUE(e.ok());
  EXPECT_LT(*e, 0.05);
}

TEST(EMetricMultiGroupTest, MaxOverPairsCatchesOneOutlierLevel) {
  // Levels 0 and 1 coincide; level 2 is shifted. The worst pair dominates
  // E, so it must be close to the (0 vs 2) separation, not the average.
  common::Rng rng(92);
  const size_t n = 6000;
  common::Matrix f(n, 1);
  std::vector<int> s(n);
  std::vector<int> u(n, 0);
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<int>(rng.UniformInt(3));
    f(i, 0) = rng.Normal() + (s[i] == 2 ? 3.0 : 0.0);
  }
  auto d = data::Dataset::Create(std::move(f), std::move(s), std::move(u), {"x"}, {}, 0,
                                 /*u_levels=*/1);
  ASSERT_TRUE(d.ok());
  auto breakdown = FeatureEMetric(*d, 0);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_GT(breakdown->e, 1.0);
}

TEST(EMetricMultiGroupTest, TinyClassIsSkippedNotTheStratum) {
  // Two well-populated classes plus one class below min_group_size: E
  // must come from the estimable pair, not fail the whole stratum.
  common::Rng rng(94);
  const size_t n = 2001;
  common::Matrix f(n, 1);
  std::vector<int> s(n);
  std::vector<int> u(n, 0);
  for (size_t i = 0; i < n; ++i) {
    s[i] = i == 0 ? 2 : static_cast<int>(rng.UniformInt(2));
    f(i, 0) = rng.Normal() + (s[i] == 1 ? 2.0 : 0.0);
  }
  auto d = data::Dataset::Create(std::move(f), std::move(s), std::move(u), {"x"}, {}, 3, 1);
  ASSERT_TRUE(d.ok());
  auto e = FeatureE(*d, 0);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_GT(*e, 0.5);  // the 0-vs-1 separation is measured
}

TEST(EMetricMultiGroupTest, OneVsRestLocatesTheOutlier) {
  common::Rng rng(93);
  const size_t n = 6000;
  common::Matrix f(n, 1);
  std::vector<int> s(n);
  std::vector<int> u(n, 0);
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<int>(rng.UniformInt(3));
    f(i, 0) = rng.Normal() + (s[i] == 2 ? 3.0 : 0.0);
  }
  auto d = data::Dataset::Create(std::move(f), std::move(s), std::move(u), {"x"}, {}, 0,
                                 /*u_levels=*/1);
  ASSERT_TRUE(d.ok());
  auto ovr = OneVsRestEMetric(*d, 0, 0);
  ASSERT_TRUE(ovr.ok());
  ASSERT_EQ(ovr->size(), 3u);
  // The shifted level separates from the rest far more than the others.
  EXPECT_GT((*ovr)[2], 2.0 * std::max((*ovr)[0], (*ovr)[1]));
}

}  // namespace
}  // namespace otfair::fairness
