// Ablation: per-feature repair (the paper's stratification, §IV-A) vs joint
// bivariate repair (the §VI intra-feature-correlation extension), on
// simulated data where the s-dependence enters through the *correlation*
// of the feature pair, not (only) through the marginals.
//
// The per-feature repair can only equalize the two s-conditional marginals
// per channel; when the s-classes differ in copula, the joint E metric
// stays elevated after per-feature repair, while the joint repair drives
// it down — at a design cost that is quadratic in the grid size, which is
// exactly the curse-of-dimensionality trade-off the paper describes.
//
// Run:  ./build/bench/ablation_joint_repair [--n_research=4000]
//           [--n_archive=8000] [--rho=0.85] [--seed=13]

#include <cstdio>

#include "common/flags.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/designer.h"
#include "core/joint_repair.h"
#include "core/repairer.h"
#include "fairness/emetric.h"
#include "fairness/joint_emetric.h"
#include "sim/gaussian_mixture.h"

using otfair::common::FlagParser;
using otfair::common::Rng;
using otfair::common::Timer;

namespace {

/// Builds a dataset whose s = 0 rows carry pairwise correlation `rho` and
/// s = 1 rows are uncorrelated, with identical component means — the
/// "copula-only unfairness" regime.
otfair::data::Dataset BuildCopulaDataset(size_t n, double rho, Rng& rng) {
  otfair::sim::GaussianSimConfig base = otfair::sim::GaussianSimConfig::PaperDefault();
  base.mean[0][0] = {0.0, 0.0};
  base.mean[0][1] = {0.0, 0.0};
  base.mean[1][0] = {1.0, 1.0};
  base.mean[1][1] = {1.0, 1.0};
  otfair::sim::GaussianSimConfig correlated = base;
  correlated.rho = rho;

  auto d_corr = otfair::sim::SimulateGaussianMixture(n, correlated, rng);
  auto d_ind = otfair::sim::SimulateGaussianMixture(n, base, rng);
  std::vector<size_t> idx0;
  std::vector<size_t> idx1;
  for (size_t i = 0; i < d_corr->size(); ++i) {
    if (d_corr->s(i) == 0) idx0.push_back(i);
  }
  for (size_t i = 0; i < d_ind->size(); ++i) {
    if (d_ind->s(i) == 1) idx1.push_back(i);
  }
  otfair::data::Dataset part0 = d_corr->Subset(idx0);
  otfair::data::Dataset part1 = d_ind->Subset(idx1);
  otfair::common::Matrix features(part0.size() + part1.size(), 2);
  std::vector<int> s;
  std::vector<int> u;
  for (size_t i = 0; i < part0.size(); ++i) {
    features(i, 0) = part0.feature(i, 0);
    features(i, 1) = part0.feature(i, 1);
    s.push_back(0);
    u.push_back(part0.u(i));
  }
  for (size_t i = 0; i < part1.size(); ++i) {
    features(part0.size() + i, 0) = part1.feature(i, 0);
    features(part0.size() + i, 1) = part1.feature(i, 1);
    s.push_back(1);
    u.push_back(part1.u(i));
  }
  return *otfair::data::Dataset::Create(std::move(features), std::move(s), std::move(u),
                                        {"x1", "x2"});
}

void PrintRow(const char* tag, const otfair::data::Dataset& dataset, double design_ms) {
  auto marginal = otfair::fairness::AggregateE(dataset);
  auto joint = otfair::fairness::JointFeaturePairE(dataset, 0, 1);
  std::printf("%-26s  %12.4f  %12.4f  %12.1f\n", tag, marginal.ok() ? *marginal : -1.0,
              joint.ok() ? *joint : -1.0, design_ms);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t n_research = static_cast<size_t>(flags.GetInt("n_research", 4000));
  const size_t n_archive = static_cast<size_t>(flags.GetInt("n_archive", 8000));
  const double rho = flags.GetDouble("rho", 0.85);
  const uint64_t seed = flags.GetUint64("seed", 13);
  if (auto status = flags.Validate({"n_research", "n_archive", "rho", "seed"});
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  Rng rng(seed);
  otfair::data::Dataset pool = BuildCopulaDataset(n_research + n_archive, rho, rng);
  Rng split_rng(seed + 1);
  auto split = otfair::data::SplitResearchArchive(
      pool, std::min(n_research, pool.size() - 1), split_rng);
  if (!split.ok()) return 1;
  const otfair::data::Dataset& research = split->first;
  const otfair::data::Dataset& archive = split->second;

  std::printf("JOINT vs PER-FEATURE REPAIR (copula-only unfairness, rho=%.2f, "
              "n_R=%zu, n_A=%zu)\n\n", rho, research.size(), archive.size());
  std::printf("%-26s  %12s  %12s  %12s\n", "dataset", "marginal E", "joint E",
              "design ms");
  PrintRow("archive, unrepaired", archive, 0.0);

  // Per-feature repair (the paper's Algorithms 1+2).
  Timer per_feature_timer;
  auto plans = otfair::core::DesignDistributionalRepair(research, {});
  if (!plans.ok()) return 1;
  const double per_feature_ms = per_feature_timer.ElapsedMillis();
  otfair::core::RepairOptions repair;
  repair.seed = seed;
  auto repairer = otfair::core::OffSampleRepairer::Create(*plans, repair);
  if (!repairer.ok()) return 1;
  auto repaired_pf = repairer->RepairDataset(archive);
  if (!repaired_pf.ok()) return 1;
  PrintRow("archive, per-feature", *repaired_pf, per_feature_ms);

  // Joint repair at two resolutions.
  for (const size_t n_q : {12u, 24u}) {
    otfair::core::JointDesignOptions options;
    options.n_q = n_q;
    Timer joint_timer;
    auto joint = otfair::core::JointPairRepairer::Design(research, 0, 1, options);
    const double joint_ms = joint_timer.ElapsedMillis();
    if (!joint.ok()) {
      std::printf("joint n_q=%zu failed: %s\n", n_q, joint.status().ToString().c_str());
      continue;
    }
    auto repaired_joint = joint->RepairDataset(archive, seed + 2);
    if (!repaired_joint.ok()) return 1;
    char tag[64];
    std::snprintf(tag, sizeof(tag), "archive, joint (n_q=%zu)", n_q);
    PrintRow(tag, *repaired_joint, joint_ms);
  }

  std::printf("\nexpected: per-feature repair leaves most of the *joint* dependence\n"
              "(it only matches the per-channel marginals; the copula gap survives);\n"
              "joint repair removes it, at a design cost growing ~n_q^2-fold — the\n"
              "curse-of-dimensionality trade-off of paper §VI.\n");
  return 0;
}
