// Reproduces paper Table I: per-feature E for simulated bivariate-Gaussian
// sub-groups, unrepaired vs distributional (ours) vs geometric [10], on
// research (on-sample) and archive (off-sample) data, mean ± std over
// Monte-Carlo trials.
//
// Paper parameters: n_R = 500, n_A = 5000, n_Q = 50, 200 trials. The
// default matches (pass --trials=50 for a quicker run); the
// paper used 200 trials. Absolute E values sit on our estimator's scale (see
// EXPERIMENTS.md); the method ordering and reduction factors are the
// reproduction target.
//
// Run:  ./build/bench/table1_simulated [--trials=50] [--n_research=500]
//           [--n_archive=5000] [--n_q=50] [--seed=1]

#include <cstdio>
#include <map>
#include <string>

#include "common/flags.h"
#include "core/geometric.h"
#include "core/pipeline.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"
#include "sim/monte_carlo.h"

using otfair::common::FlagParser;
using otfair::common::Result;
using otfair::common::Rng;
using otfair::sim::McSummary;

namespace {

std::string Cell(const std::map<std::string, McSummary>& summary, const std::string& key) {
  char buffer[64];
  const McSummary& s = summary.at(key);
  std::snprintf(buffer, sizeof(buffer), "%7.4f +- %6.4f", s.mean, s.std);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t trials = static_cast<size_t>(flags.GetInt("trials", 200));
  const size_t n_research = static_cast<size_t>(flags.GetInt("n_research", 500));
  const size_t n_archive = static_cast<size_t>(flags.GetInt("n_archive", 5000));
  const size_t n_q = static_cast<size_t>(flags.GetInt("n_q", 50));
  const uint64_t seed = flags.GetUint64("seed", 1);
  if (auto status = flags.Validate({"trials", "n_research", "n_archive", "n_q", "seed"});
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  const auto config = otfair::sim::GaussianSimConfig::PaperDefault();

  auto trial = [&](Rng& rng) -> Result<std::map<std::string, double>> {
    auto research = otfair::sim::SimulateGaussianMixture(n_research, config, rng);
    if (!research.ok()) return research.status();
    auto archive = otfair::sim::SimulateGaussianMixture(n_archive, config, rng);
    if (!archive.ok()) return archive.status();

    otfair::core::PipelineOptions options;
    options.design.n_q = n_q;
    options.repair.seed = rng.Next64();
    auto pipeline = otfair::core::RunRepairPipeline(*research, *archive, options);
    if (!pipeline.ok()) return pipeline.status();
    auto geometric = otfair::core::GeometricRepairDataset(*research, {});
    if (!geometric.ok()) return geometric.status();

    std::map<std::string, double> metrics;
    struct Row {
      const char* prefix;
      const otfair::data::Dataset* dataset;
    };
    const Row rows[] = {
        {"none_res", &*research},
        {"none_arc", &*archive},
        {"dist_res", &pipeline->repaired_research},
        {"dist_arc", &pipeline->repaired_archive},
        {"geom_res", &*geometric},
    };
    for (const Row& row : rows) {
      for (size_t k = 0; k < 2; ++k) {
        auto e = otfair::fairness::FeatureE(*row.dataset, k);
        if (!e.ok()) return e.status();
        metrics[std::string(row.prefix) + "_k" + std::to_string(k + 1)] = *e;
      }
    }
    return metrics;
  };

  auto summary = otfair::sim::RunMonteCarlo(trials, seed, trial);
  if (!summary.ok()) {
    std::fprintf(stderr, "monte carlo failed: %s\n", summary.status().ToString().c_str());
    return 1;
  }

  std::printf("TABLE I: OT-based repairs for simulated data "
              "(n_R=%zu, n_A=%zu, n_Q=%zu, %zu MC trials, seed=%llu)\n",
              n_research, n_archive, n_q, trials, static_cast<unsigned long long>(seed));
  std::printf("Lower E = better repair. Geometric [10] is on-sample only.\n\n");
  std::printf("%-22s | %-18s %-18s | %-18s %-18s\n", "Repair", "E_k1 (Research)",
              "E_k2 (Research)", "E_k1 (Archive)", "E_k2 (Archive)");
  std::printf("%.*s\n", 106,
              "-----------------------------------------------------------------"
              "-----------------------------------------");
  std::printf("%-22s | %-18s %-18s | %-18s %-18s\n", "None",
              Cell(*summary, "none_res_k1").c_str(), Cell(*summary, "none_res_k2").c_str(),
              Cell(*summary, "none_arc_k1").c_str(), Cell(*summary, "none_arc_k2").c_str());
  std::printf("%-22s | %-18s %-18s | %-18s %-18s\n", "Distributional (ours)",
              Cell(*summary, "dist_res_k1").c_str(), Cell(*summary, "dist_res_k2").c_str(),
              Cell(*summary, "dist_arc_k1").c_str(), Cell(*summary, "dist_arc_k2").c_str());
  std::printf("%-22s | %-18s %-18s | %-18s %-18s\n", "Geometric [10]",
              Cell(*summary, "geom_res_k1").c_str(), Cell(*summary, "geom_res_k2").c_str(),
              "-", "-");

  const double reduction_res =
      summary->at("none_res_k1").mean / summary->at("dist_res_k1").mean;
  const double reduction_arc =
      summary->at("none_arc_k1").mean / summary->at("dist_arc_k1").mean;
  std::printf("\nreduction factors (k1): research %.0fx (paper ~83x), archive %.0fx "
              "(paper ~16x)\n", reduction_res, reduction_arc);
  return 0;
}
