// Micro-benchmarks for the repair hot paths, backing the paper's "torrents
// of archival data" claim (§VI): once the plan is designed, each archival
// value costs O(1) — independent of both the archive size and (thanks to
// alias tables) the support resolution n_Q.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/designer.h"
#include "core/geometric.h"
#include "core/repairer.h"
#include "ot/solver.h"
#include "sim/gaussian_mixture.h"

namespace {

using otfair::common::Rng;

otfair::core::RepairPlanSet MakePlans(size_t n_q, uint64_t seed) {
  Rng rng(seed);
  auto research = otfair::sim::SimulateGaussianMixture(
      1000, otfair::sim::GaussianSimConfig::PaperDefault(), rng);
  otfair::core::DesignOptions options;
  options.n_q = n_q;
  auto plans = otfair::core::DesignDistributionalRepair(*research, options);
  return *plans;
}

void BM_RepairValueStochastic(benchmark::State& state) {
  const size_t n_q = static_cast<size_t>(state.range(0));
  auto repairer = otfair::core::OffSampleRepairer::Create(MakePlans(n_q, 1), {});
  Rng rng(2);
  for (auto _ : state) {
    const double x = rng.Normal(0.0, 1.0);
    benchmark::DoNotOptimize(repairer->RepairValue(0, 1, 0, x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RepairValueStochastic)->Arg(10)->Arg(50)->Arg(250)->Arg(1000);

void BM_RepairValueConditionalMean(benchmark::State& state) {
  const size_t n_q = static_cast<size_t>(state.range(0));
  otfair::core::RepairOptions options;
  options.mode = otfair::core::TransportMode::kConditionalMean;
  auto repairer = otfair::core::OffSampleRepairer::Create(MakePlans(n_q, 3), options);
  Rng rng(4);
  for (auto _ : state) {
    const double x = rng.Normal(0.0, 1.0);
    benchmark::DoNotOptimize(repairer->RepairValue(0, 1, 0, x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RepairValueConditionalMean)->Arg(50)->Arg(250);

void BM_RepairDatasetBatch(benchmark::State& state) {
  const size_t n_archive = static_cast<size_t>(state.range(0));
  auto plans = MakePlans(50, 5);
  Rng rng(6);
  auto archive = otfair::sim::SimulateGaussianMixture(
      n_archive, otfair::sim::GaussianSimConfig::PaperDefault(), rng);
  auto repairer = otfair::core::OffSampleRepairer::Create(std::move(plans), {});
  for (auto _ : state) {
    auto repaired = repairer->RepairDataset(*archive);
    benchmark::DoNotOptimize(repaired);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n_archive));
}
BENCHMARK(BM_RepairDatasetBatch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DesignDistributionalRepair(benchmark::State& state) {
  const size_t n_q = static_cast<size_t>(state.range(0));
  Rng rng(7);
  auto research = otfair::sim::SimulateGaussianMixture(
      1000, otfair::sim::GaussianSimConfig::PaperDefault(), rng);
  otfair::core::DesignOptions options;
  options.n_q = n_q;
  for (auto _ : state) {
    auto plans = otfair::core::DesignDistributionalRepair(*research, options);
    benchmark::DoNotOptimize(plans);
  }
}
BENCHMARK(BM_DesignDistributionalRepair)->Arg(25)->Arg(50)->Arg(250);

void BM_DesignWithExactSolver(benchmark::State& state) {
  const size_t n_q = static_cast<size_t>(state.range(0));
  Rng rng(8);
  auto research = otfair::sim::SimulateGaussianMixture(
      1000, otfair::sim::GaussianSimConfig::PaperDefault(), rng);
  otfair::core::DesignOptions options;
  options.n_q = n_q;
  options.solver = *otfair::ot::MakeSolver("exact");
  for (auto _ : state) {
    auto plans = otfair::core::DesignDistributionalRepair(*research, options);
    benchmark::DoNotOptimize(plans);
  }
}
BENCHMARK(BM_DesignWithExactSolver)->Arg(25)->Arg(50);

void BM_GeometricRepair(benchmark::State& state) {
  // The baseline repairs only on-sample, and its OT problem grows with the
  // research size — the scaling the distributional design avoids.
  const size_t n_research = static_cast<size_t>(state.range(0));
  Rng rng(9);
  auto research = otfair::sim::SimulateGaussianMixture(
      n_research, otfair::sim::GaussianSimConfig::PaperDefault(), rng);
  for (auto _ : state) {
    auto repaired = otfair::core::GeometricRepairDataset(*research, {});
    benchmark::DoNotOptimize(repaired);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n_research));
}
BENCHMARK(BM_GeometricRepair)->Arg(500)->Arg(5000)->Arg(20000);

}  // namespace
