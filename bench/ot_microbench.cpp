// Micro-benchmarks for the OT solvers, backing the complexity discussion of
// paper §IV-A1: unregularized exact OT is ~cubic in the support size n_Q,
// Sinkhorn is ~n_Q^2/eps^2, and the 1-D monotone solver is linear — which
// is why interpolating onto a small support Q (and, in 1-D, using the
// monotone solver) makes the design step cheap.

#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ot/barycenter.h"
#include "ot/cost.h"
#include "ot/exact.h"
#include "ot/measure.h"
#include "ot/monotone.h"
#include "ot/sinkhorn.h"

namespace {

using otfair::common::Matrix;
using otfair::common::Rng;
using otfair::ot::DiscreteMeasure;

struct Instance {
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> xs;
  std::vector<double> ys;
  Matrix cost;
};

Instance MakeInstance(size_t n, uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  inst.a.resize(n);
  inst.b.resize(n);
  inst.xs.resize(n);
  inst.ys.resize(n);
  double sa = 0.0;
  double sb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    inst.xs[i] = -2.0 + 4.0 * static_cast<double>(i) / static_cast<double>(n - 1);
    inst.ys[i] = inst.xs[i];
    sa += (inst.a[i] = rng.Uniform(0.2, 1.0));
    sb += (inst.b[i] = rng.Uniform(0.2, 1.0));
  }
  for (size_t i = 0; i < n; ++i) {
    inst.a[i] /= sa;
    inst.b[i] /= sb;
  }
  inst.cost = otfair::ot::SquaredEuclideanCost(inst.xs, inst.ys);
  return inst;
}

void BM_ExactSolver(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Instance inst = MakeInstance(n, 1);
  for (auto _ : state) {
    auto plan = otfair::ot::SolveExact(inst.a, inst.b, inst.cost);
    benchmark::DoNotOptimize(plan);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ExactSolver)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_Sinkhorn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Instance inst = MakeInstance(n, 2);
  otfair::ot::SinkhornOptions options;
  options.epsilon = 0.05;
  for (auto _ : state) {
    auto result = otfair::ot::SolveSinkhorn(inst.a, inst.b, inst.cost, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Sinkhorn)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_Monotone1D(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Instance inst = MakeInstance(n, 3);
  const DiscreteMeasure mu = *DiscreteMeasure::Create(inst.xs, inst.a);
  const DiscreteMeasure nu = *DiscreteMeasure::Create(inst.ys, inst.b);
  for (auto _ : state) {
    auto coupling = otfair::ot::SolveMonotone1D(mu, nu);
    benchmark::DoNotOptimize(coupling);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Monotone1D)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_Wasserstein1D(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.Normal(0.0, 1.0);
    ys[i] = rng.Normal(1.0, 2.0);
  }
  const DiscreteMeasure mu = *DiscreteMeasure::FromSamples(xs);
  const DiscreteMeasure nu = *DiscreteMeasure::FromSamples(ys);
  for (auto _ : state) {
    auto w = otfair::ot::Wasserstein1D(mu, nu, 2);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_Wasserstein1D)->RangeMultiplier(4)->Range(64, 16384);

void BM_QuantileBarycenterOnGrid(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Instance inst = MakeInstance(n, 5);
  const DiscreteMeasure mu = *DiscreteMeasure::Create(inst.xs, inst.a);
  const DiscreteMeasure nu = *DiscreteMeasure::Create(inst.ys, inst.b);
  for (auto _ : state) {
    auto bary = otfair::ot::QuantileBarycenterOnGrid(mu, nu, 0.5, inst.xs);
    benchmark::DoNotOptimize(bary);
  }
}
BENCHMARK(BM_QuantileBarycenterOnGrid)->RangeMultiplier(2)->Range(16, 1024);

void BM_BregmanBarycenter(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Instance inst = MakeInstance(n, 6);
  const DiscreteMeasure mu = *DiscreteMeasure::Create(inst.xs, inst.a);
  const DiscreteMeasure nu = *DiscreteMeasure::Create(inst.ys, inst.b);
  otfair::ot::BregmanBarycenterOptions options;
  options.epsilon = 0.1;
  options.max_iterations = 200;
  for (auto _ : state) {
    auto bary = otfair::ot::BregmanBarycenter({mu, nu}, {0.5, 0.5}, inst.xs, options);
    benchmark::DoNotOptimize(bary);
  }
}
BENCHMARK(BM_BregmanBarycenter)->RangeMultiplier(2)->Range(16, 128);

}  // namespace
