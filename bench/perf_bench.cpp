// Performance trajectory harness: times the repo's hot paths with plain
// steady-clock timing and emits a JSON snapshot. `tools/run_bench.sh`
// drives it and the committed BENCH_*.json files are its output, so
// speedup claims in perf PRs are measured, not asserted.
//
// Benchmarks:
//   design_step        DesignDistributionalRepair wall time, per thread
//                      count (the paper's Algorithm 1: 2*dim channels).
//   repair_throughput  OffSampleRepairer::RepairDataset rows/sec, per
//                      thread count (Algorithm 2 batch path).
//   design_step_s4     the same stages on a 4-level protected attribute
//   repair_throughput_s4  (|S| = 4): the multi-group K-scaling rows —
//                      design does |S| solves per channel, repair carries
//                      |S| x |U| x dim tables.
//   sinkhorn_standard  single-thread entropic solve, n x n, standard
//   sinkhorn_log       domain and log domain; ms_per_iter is the
//                      schedule-independent metric.
//   exact_solver       successive-shortest-path Kantorovich solve, n x n.
//   table_build        OffSampleRepairer::Create on CSR plans — the live
//                      O(nnz) repair-table path.
//   table_build_dense  the pre-sparse dense path (full n_Q-row scans +
//                      alias tables over every state), emulated against
//                      the same plans: the committed baseline for the
//                      sparse speedup claim.
//   plan_memory        resident CSR bytes and nnz per channel plan vs the
//                      dense n_Q x n_Q equivalent (not timed).
//   serve_throughput   rows/sec through the serving stack (RepairService
//                      + micro-batching Batcher, replay workload), per
//                      thread count — measures batching overhead against
//                      repair_throughput.
//   serve_p99_latency_us  request latency quantiles from the serving
//                      metrics histogram on the same replay workload.
//   serve_net_throughput  rows/sec through the epoll TCP front end
//                      (in-process net::Server + library loadgen) at
//                      1/16/64/256 client connections — prices the
//                      network hop against serve_throughput.
//   serve_net_p99_us   client-observed round-trip latency quantiles for
//                      the same runs, per connection count.
//   repair_throughput_soa     the default SoA batch-repair path (rows
//   repair_throughput_s4_soa  grouped by (u, s), channel-major RepairSpan
//                      with prefetch); the plain repair_throughput rows
//                      force soa_batch=false, so the pair isolates the
//                      layout win. _s4 again tracks K-scaling.
//   lse_reduction      the fused log-sum-exp kernel (simd::LseDiff) on an
//                      n-length row — the log-domain Sinkhorn inner loop
//                      in isolation.
//   alias_lookup_batch alias-arena draws/sec on a repair-shaped table
//                      (n_q rows, CSR-support-sized), prefetched batch
//                      loop — the repair table lookup in isolation.
//   sketch_update_ns   ns per QuantileSketch::Add on a Gaussian stream —
//                      the per-value cost the serve path pays when channel
//                      sketches are enabled.
//   trace_overhead_disabled  ns per OTFAIR_TRACE_SPAN guard with span
//   trace_overhead_enabled   collection off (the serving default — must
//                      be branch-cheap) vs on (two clock reads plus a
//                      wait-free ring push): the tracing-is-free claim.
//   redesign_to_reload_ms  one full self-heal redesign on a drift-tripped
//                      service: sketch snapshot -> design -> validation ->
//                      hot ReloadPlan (Redesigner::AttemptRedesign), the
//                      recovery-latency half of the self-healing claim.
//
// Flags:
//   --out=FILE         JSON output path (default: perf_bench.json)
//   --smoke            tiny sizes: a CI harness check, not a measurement
//   --threads=1,2,4,8  thread counts for the scaling benchmarks
//   --repeats=3        repetitions; the minimum wall time is reported
//   --no_simd          force the scalar kernels (the JSON meta records
//                      the dispatched ISA either way)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "obs/trace.h"
#include "ot/cost.h"
#include "ot/exact.h"
#include "ot/sinkhorn.h"
#include "serve/batcher.h"
#include "serve/checkpointer.h"
#include "serve/redesigner.h"
#include "serve/repair_service.h"
#include "sim/gaussian_mixture.h"
#include "stats/quantile_sketch.h"
#include "stats/sampling.h"

namespace {

using otfair::common::FlagParser;
using otfair::common::Matrix;
using otfair::common::Rng;
using otfair::common::Timer;

struct BenchCase {
  std::string name;
  int threads = 0;  // 0: not a threaded benchmark
  std::string params_json;
  int repeats = 0;
  double wall_ms = 0.0;
  double rows_per_sec = 0.0;          // repair only
  size_t iterations = 0;              // sinkhorn only
  double ms_per_iter = 0.0;           // sinkhorn only
  double nnz_per_plan = 0.0;          // plan_memory only
  double sparse_bytes_per_plan = 0.0; // plan_memory only
  double dense_bytes_per_plan = 0.0;  // plan_memory only
  double latency_p50_us = 0.0;        // serve latency only
  double latency_p99_us = 0.0;        // serve latency only
  double ns_per_op = 0.0;             // sketch_update only
};

/// Paper-style mixture generalized to `dim` features: the +/-1 mean
/// separation of the paper's bivariate config replicated across channels.
otfair::sim::GaussianSimConfig WideConfig(size_t dim) {
  otfair::sim::GaussianSimConfig config = otfair::sim::GaussianSimConfig::PaperDefault();
  config.dim = dim;
  config.mean[0][0].assign(dim, -1.0);
  config.mean[0][1].assign(dim, 0.0);
  config.mean[1][0].assign(dim, 1.0);
  config.mean[1][1].assign(dim, 0.0);
  return config;
}

struct OtProblem {
  std::vector<double> a;
  std::vector<double> b;
  Matrix cost;
};

OtProblem RandomOtProblem(size_t n, uint64_t seed) {
  Rng rng(seed);
  OtProblem p;
  p.a.resize(n);
  p.b.resize(n);
  double sa = 0.0;
  double sb = 0.0;
  for (double& v : p.a) sa += (v = rng.Uniform(0.2, 1.0));
  for (double& v : p.b) sb += (v = rng.Uniform(0.2, 1.0));
  for (double& v : p.a) v /= sa;
  for (double& v : p.b) v /= sb;
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (double& v : xs) v = rng.Uniform(-1.0, 1.0);
  for (double& v : ys) v = rng.Uniform(-1.0, 1.0);
  p.cost = otfair::ot::SquaredEuclideanCost(xs, ys);
  return p;
}

/// Minimum wall time of `repeats` runs of `body` (which must not fail).
template <typename Fn>
double BestWallMs(int repeats, const Fn& body) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    body();
    const double ms = timer.ElapsedMillis();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

void Die(const std::string& what) {
  std::fprintf(stderr, "perf_bench: %s\n", what.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (auto status = flags.Validate({"out", "smoke", "threads", "repeats", "no_simd"});
      !status.ok())
    Die(status.ToString());
  const std::string out_path = flags.GetString("out", "perf_bench.json");
  const bool smoke = flags.GetBool("smoke", false);
  if (flags.GetBool("no_simd", false)) otfair::common::simd::SetForceScalar(true);
  const std::vector<int> thread_counts = flags.GetIntList("threads", {1, 2, 4, 8});
  const int repeats = flags.GetInt("repeats", smoke ? 1 : 3);
  for (int t : thread_counts) {
    if (t < 1) Die("--threads entries must be >= 1");
  }

  // Workload sizes: the full profile targets the paper's n_Q >= 512
  // regime; smoke only proves the harness end-to-end.
  const size_t dim = 8;
  const size_t n_research = smoke ? 300 : 3000;
  const size_t n_archive = smoke ? 2000 : 150000;
  const size_t design_nq = smoke ? 48 : 512;
  const size_t sinkhorn_n = smoke ? 64 : 512;
  const size_t exact_n = smoke ? 24 : 256;

  std::vector<BenchCase> cases;
  char params[256];

  // --- Fixtures (untimed) -------------------------------------------------
  const otfair::sim::GaussianSimConfig config = WideConfig(dim);
  Rng sim_rng(0xbe9c);
  auto research = otfair::sim::SimulateGaussianMixture(n_research, config, sim_rng);
  if (!research.ok()) Die(research.status().ToString());
  auto archive = otfair::sim::SimulateGaussianMixture(n_archive, config, sim_rng);
  if (!archive.ok()) Die(archive.status().ToString());

  // --- design_step: thread scaling ---------------------------------------
  for (int t : thread_counts) {
    otfair::core::DesignOptions options;
    options.n_q = design_nq;
    options.threads = t;
    const double ms = BestWallMs(repeats, [&] {
      auto plans = otfair::core::DesignDistributionalRepair(*research, options);
      if (!plans.ok()) Die(plans.status().ToString());
    });
    BenchCase c;
    c.name = "design_step";
    c.threads = t;
    std::snprintf(params, sizeof(params), "{\"dim\": %zu, \"n_research\": %zu, \"n_q\": %zu}",
                  dim, n_research, design_nq);
    c.params_json = params;
    c.repeats = repeats;
    c.wall_ms = ms;
    cases.push_back(c);
    std::fprintf(stderr, "design_step       threads=%d  %10.2f ms\n", t, ms);
  }

  // --- repair_throughput: thread scaling ----------------------------------
  {
    otfair::core::DesignOptions design_options;
    design_options.n_q = design_nq;
    auto plans = otfair::core::DesignDistributionalRepair(*research, design_options);
    if (!plans.ok()) Die(plans.status().ToString());
    // soa_batch=false is the row-by-row baseline; the _soa row is the
    // default SoA batch path — same tables, same output, layout isolated.
    for (const bool soa : {false, true}) {
      for (int t : thread_counts) {
        otfair::core::RepairOptions options;
        options.threads = t;
        options.soa_batch = soa;
        auto repairer = otfair::core::OffSampleRepairer::Create(*plans, options);
        if (!repairer.ok()) Die(repairer.status().ToString());
        const double ms = BestWallMs(repeats, [&] {
          auto repaired = repairer->RepairDataset(*archive);
          if (!repaired.ok()) Die(repaired.status().ToString());
        });
        BenchCase c;
        c.name = soa ? "repair_throughput_soa" : "repair_throughput";
        c.threads = t;
        std::snprintf(params, sizeof(params),
                      "{\"dim\": %zu, \"n_archive\": %zu, \"n_q\": %zu, \"soa\": %s}", dim,
                      n_archive, design_nq, soa ? "true" : "false");
        c.params_json = params;
        c.repeats = repeats;
        c.wall_ms = ms;
        c.rows_per_sec = static_cast<double>(n_archive) / (ms / 1e3);
        cases.push_back(c);
        std::fprintf(stderr, "%-21s threads=%d  %8.2f ms  (%.0f rows/s)\n", c.name.c_str(), t,
                     ms, c.rows_per_sec);
      }
    }
  }

  // --- multi-group scaling: |S| = 4 design / repair ------------------------
  // The K-group pipeline does |S| OT solves per (u, k) channel and |S| x
  // |U| x dim repair tables, so these rows track the K-scaling cost
  // against the binary design_step/repair_throughput rows above.
  {
    Rng mg_rng(0xbe9d);
    const otfair::sim::MultiGroupSimConfig mg_config =
        otfair::sim::MultiGroupSimConfig::Default(4, 2, dim);
    auto mg_research =
        otfair::sim::SimulateMultiGroupGaussian(n_research, mg_config, mg_rng);
    if (!mg_research.ok()) Die(mg_research.status().ToString());
    auto mg_archive = otfair::sim::SimulateMultiGroupGaussian(n_archive, mg_config, mg_rng);
    if (!mg_archive.ok()) Die(mg_archive.status().ToString());

    for (int t : thread_counts) {
      otfair::core::DesignOptions options;
      options.n_q = design_nq;
      options.threads = t;
      const double ms = BestWallMs(repeats, [&] {
        auto plans = otfair::core::DesignDistributionalRepair(*mg_research, options);
        if (!plans.ok()) Die(plans.status().ToString());
      });
      BenchCase c;
      c.name = "design_step_s4";
      c.threads = t;
      std::snprintf(params, sizeof(params),
                    "{\"dim\": %zu, \"n_research\": %zu, \"n_q\": %zu, \"s_levels\": 4}", dim,
                    n_research, design_nq);
      c.params_json = params;
      c.repeats = repeats;
      c.wall_ms = ms;
      cases.push_back(c);
      std::fprintf(stderr, "design_step_s4    threads=%d  %10.2f ms\n", t, ms);
    }

    otfair::core::DesignOptions design_options;
    design_options.n_q = design_nq;
    auto plans = otfair::core::DesignDistributionalRepair(*mg_research, design_options);
    if (!plans.ok()) Die(plans.status().ToString());
    for (const bool soa : {false, true}) {
      for (int t : thread_counts) {
        otfair::core::RepairOptions options;
        options.threads = t;
        options.soa_batch = soa;
        auto repairer = otfair::core::OffSampleRepairer::Create(*plans, options);
        if (!repairer.ok()) Die(repairer.status().ToString());
        const double ms = BestWallMs(repeats, [&] {
          auto repaired = repairer->RepairDataset(*mg_archive);
          if (!repaired.ok()) Die(repaired.status().ToString());
        });
        BenchCase c;
        c.name = soa ? "repair_throughput_s4_soa" : "repair_throughput_s4";
        c.threads = t;
        std::snprintf(
            params, sizeof(params),
            "{\"dim\": %zu, \"n_archive\": %zu, \"n_q\": %zu, \"s_levels\": 4, \"soa\": %s}",
            dim, n_archive, design_nq, soa ? "true" : "false");
        c.params_json = params;
        c.repeats = repeats;
        c.wall_ms = ms;
        c.rows_per_sec = static_cast<double>(n_archive) / (ms / 1e3);
        cases.push_back(c);
        std::fprintf(stderr, "%-24s threads=%d %8.2f ms  (%.0f rows/s)\n", c.name.c_str(), t,
                     ms, c.rows_per_sec);
      }
    }
  }

  // --- serve_throughput / serve_p99_latency_us ----------------------------
  {
    otfair::core::DesignOptions design_options;
    design_options.n_q = design_nq;
    auto plans = otfair::core::DesignDistributionalRepair(*research, design_options);
    if (!plans.ok()) Die(plans.status().ToString());
    const size_t rows = archive->size();
    for (int t : thread_counts) {
      otfair::serve::ServiceOptions service_options;
      service_options.threads = t;
      auto service = otfair::serve::RepairService::Create(*plans, service_options);
      if (!service.ok()) Die(service.status().ToString());
      // Checkpointing runs at its production default during the
      // measurement: the number reported is the throughput of the
      // crash-safe configuration, not an idealized one.
      char ckpt_template[] = "/tmp/otfair_bench_serve_ckpt.XXXXXX";
      const char* ckpt_dir = ::mkdtemp(ckpt_template);
      if (ckpt_dir == nullptr) Die("mkdtemp failed for serve bench");
      otfair::serve::CheckpointerOptions serve_ckpt_options;
      serve_ckpt_options.dir = ckpt_dir;
      auto serve_checkpointer = otfair::serve::Checkpointer::Create(
          service->get(), serve_ckpt_options);
      if (!serve_checkpointer.ok()) Die(serve_checkpointer.status().ToString());
      otfair::serve::BatcherOptions batcher_options;
      batcher_options.max_batch = 256;
      batcher_options.max_queue_depth = 4096;
      batcher_options.background_flush = false;  // replay flushes explicitly
      size_t responses = 0;
      otfair::serve::Batcher batcher(
          service->get(), batcher_options,
          [&](const otfair::serve::RowResponse& response) {
            if (response.status.ok()) ++responses;
          });
      // The replay workload: one session submitting every archive row as
      // a single-row request — the serving path the CLI's --replay mode
      // drives, micro-batching included.
      const double ms = BestWallMs(repeats, [&] {
        for (size_t i = 0; i < rows; ++i) {
          otfair::serve::RowRequest request;
          request.session_id = 0;
          request.row_index = i;
          request.u = archive->u(i);
          request.s = archive->s(i);
          const double* row = archive->features().row(i);
          request.features.assign(row, row + dim);
          while (!batcher.Submit(std::move(request)).ok()) batcher.Flush();
        }
        batcher.Flush();
      });
      // `responses` accumulates across repeats; every repeat must have
      // delivered every row.
      if (responses < rows * static_cast<size_t>(repeats)) Die("serve bench dropped rows");
      const auto metrics = (*service)->metrics().Snapshot();
      BenchCase c;
      c.name = "serve_throughput";
      c.threads = t;
      std::snprintf(params, sizeof(params),
                    "{\"dim\": %zu, \"n_archive\": %zu, \"n_q\": %zu, \"max_batch\": %zu}",
                    dim, n_archive, design_nq, batcher_options.max_batch);
      c.params_json = params;
      c.repeats = repeats;
      c.wall_ms = ms;
      c.rows_per_sec = static_cast<double>(rows) / (ms / 1e3);
      cases.push_back(c);
      std::fprintf(stderr, "serve_throughput  threads=%d  %10.2f ms  (%.0f rows/s)\n", t, ms,
                   c.rows_per_sec);
      if (t == 1) {
        c = BenchCase{};
        c.name = "serve_p99_latency_us";
        c.threads = 1;
        std::snprintf(params, sizeof(params),
                      "{\"dim\": %zu, \"n_archive\": %zu, \"n_q\": %zu, \"max_batch\": %zu}",
                      dim, n_archive, design_nq, batcher_options.max_batch);
        c.params_json = params;
        c.repeats = repeats;
        c.wall_ms = ms;
        c.latency_p50_us = metrics.latency_p50_us;
        c.latency_p99_us = metrics.latency_p99_us;
        cases.push_back(c);
        std::fprintf(stderr, "serve_p99_latency threads=1  p50=%.0fus p99=%.0fus (%llu samples)\n",
                     metrics.latency_p50_us, metrics.latency_p99_us,
                     static_cast<unsigned long long>(metrics.latency_samples));
      }
      const uint64_t last_generation = (*serve_checkpointer)->generation();
      serve_checkpointer->reset();  // stop the background thread first
      for (uint64_t g = 1; g <= last_generation; ++g)
        ::remove(otfair::serve::CheckpointPath(ckpt_dir, g).c_str());
      ::remove(ckpt_dir);
    }
  }

  // --- serve_net_throughput / serve_net_p99_us -----------------------------
  // The epoll TCP front end measured end to end: an in-process Server plus
  // the library loadgen (one client thread per connection, window-bounded
  // pipelining), reporting client-observed rows/sec and round-trip p99 per
  // connection count. Server workers and client threads share this host's
  // cores, so on a small machine these rows price protocol + syscall
  // overhead under contention rather than multi-core scaling.
  {
    otfair::core::DesignOptions design_options;
    design_options.n_q = design_nq;
    auto plans = otfair::core::DesignDistributionalRepair(*research, design_options);
    if (!plans.ok()) Die(plans.status().ToString());
    auto service = otfair::serve::RepairService::Create(*plans, {});
    if (!service.ok()) Die(service.status().ToString());
    otfair::net::ServerOptions server_options;
    server_options.net_threads = 2;
    server_options.batcher.max_batch = 256;
    // Deep enough that 256 windows of 64 outstanding rows never trip
    // backpressure: the row being priced is throughput, not rejection.
    server_options.batcher.max_queue_depth = 65536;
    auto server = otfair::net::Server::Create(service->get(), server_options);
    if (!server.ok()) Die(server.status().ToString());
    const std::vector<size_t> connection_counts =
        smoke ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 16, 64, 256};
    const uint64_t total_rows = smoke ? 2000 : 100000;
    for (const size_t connections : connection_counts) {
      otfair::net::LoadgenOptions loadgen_options;
      loadgen_options.port = (*server)->port();
      loadgen_options.connections = connections;
      loadgen_options.rows_per_session =
          std::max<uint64_t>(1, total_rows / connections);
      loadgen_options.dim = dim;
      otfair::net::LoadgenResult best;
      for (int r = 0; r < repeats; ++r) {
        auto result = otfair::net::RunLoadgen(loadgen_options);
        if (!result.ok()) Die("serve_net bench: " + result.status().ToString());
        if (result->rows_ok + result->rows_err != result->rows_sent)
          Die("serve_net bench dropped rows");
        if (result->rows_err > 0)
          std::fprintf(stderr, "serve_net: %llu rows pushed back: %s\n",
                       static_cast<unsigned long long>(result->rows_err),
                       result->first_error.c_str());
        if (r == 0 || result->rows_per_sec > best.rows_per_sec) best = *result;
      }
      std::snprintf(params, sizeof(params),
                    "{\"connections\": %zu, \"rows_per_session\": %llu, \"dim\": %zu, "
                    "\"window\": %zu, \"net_threads\": %d}",
                    connections,
                    static_cast<unsigned long long>(loadgen_options.rows_per_session),
                    dim, loadgen_options.window, server_options.net_threads);
      BenchCase c;
      c.name = "serve_net_throughput";
      c.threads = server_options.net_threads;
      c.params_json = params;
      c.repeats = repeats;
      c.wall_ms = best.seconds * 1e3;
      c.rows_per_sec = best.rows_per_sec;
      cases.push_back(c);
      std::fprintf(stderr, "serve_net_tput    conns=%-3zu  %10.2f ms  (%.0f rows/s)\n",
                   connections, c.wall_ms, c.rows_per_sec);
      c = BenchCase{};
      c.name = "serve_net_p99_us";
      c.threads = server_options.net_threads;
      c.params_json = params;
      c.repeats = repeats;
      c.wall_ms = best.seconds * 1e3;
      c.latency_p50_us = best.p50_us;
      c.latency_p99_us = best.p99_us;
      cases.push_back(c);
      std::fprintf(stderr, "serve_net_p99     conns=%-3zu  p50=%.0fus p99=%.0fus\n",
                   connections, best.p50_us, best.p99_us);
    }
    (*server)->Shutdown();
  }

  // --- checkpoint_write_ms / recover_ms -----------------------------------
  // The crash-safety tax: how long one atomic checkpoint of a loaded
  // service takes (capture + serialize + write-temp + fsync + rename +
  // prune), and how long recovery takes end to end (scan dir, validate the
  // newest file, rebuild the service, fold the drift/sketch state back in).
  // Checkpointing runs on a background thread, so write cost bounds the
  // fsync pressure, not serve latency; recover cost is restart downtime.
  {
    otfair::core::DesignOptions design_options;
    design_options.n_q = design_nq;
    auto plans = otfair::core::DesignDistributionalRepair(*research, design_options);
    if (!plans.ok()) Die(plans.status().ToString());
    otfair::serve::ServiceOptions service_options;
    service_options.sketch_sample_every = 4;
    auto service = otfair::serve::RepairService::Create(*plans, service_options);
    if (!service.ok()) Die(service.status().ToString());
    // Populate drift counts and sketches so the checkpoint carries a
    // realistic observed-state payload, not empty accumulators.
    otfair::serve::RowResponse response;
    for (size_t i = 0; i < archive->size(); ++i) {
      otfair::serve::RowRequest request;
      request.session_id = 0;
      request.row_index = i;
      request.u = archive->u(i);
      request.s = archive->s(i);
      const double* row = archive->features().row(i);
      request.features.assign(row, row + dim);
      if (!(*service)->RepairRow(request, &response).ok()) Die("checkpoint bench repair");
    }
    char dir_template[] = "/tmp/otfair_bench_ckpt.XXXXXX";
    const char* dir_cstr = ::mkdtemp(dir_template);
    if (dir_cstr == nullptr) Die("mkdtemp failed for checkpoint bench");
    const std::string dir = dir_cstr;
    otfair::serve::CheckpointerOptions ckpt_options;
    ckpt_options.dir = dir;
    ckpt_options.interval_ms = 3600 * 1000;  // only explicit WriteNow calls
    auto checkpointer = otfair::serve::Checkpointer::Create(service->get(), ckpt_options);
    if (!checkpointer.ok()) Die(checkpointer.status().ToString());
    const double write_ms = BestWallMs(repeats, [&] {
      if (!(*checkpointer)->WriteNow().ok()) Die("checkpoint write failed");
    });
    BenchCase c;
    c.name = "checkpoint_write_ms";
    std::snprintf(params, sizeof(params),
                  "{\"dim\": %zu, \"n_archive\": %zu, \"n_q\": %zu}", dim, n_archive,
                  design_nq);
    c.params_json = params;
    c.repeats = repeats;
    c.wall_ms = write_ms;
    cases.push_back(c);
    std::fprintf(stderr, "checkpoint_write   %10.3f ms\n", write_ms);

    const double recover_ms = BestWallMs(repeats, [&] {
      auto recovered = otfair::serve::RecoverNewestCheckpoint(dir);
      if (!recovered.ok()) Die("recover failed: " + recovered.status().ToString());
      otfair::serve::ServiceOptions recover_options = service_options;
      recover_options.seed = recovered->data.seed;
      recover_options.initial_plan_version = recovered->data.plan_version;
      auto revived =
          otfair::serve::RepairService::Create(recovered->data.plans, recover_options);
      if (!revived.ok()) Die("recover create failed");
      if (!(*revived)->RestoreObservedState(recovered->data.drift_counts,
                                            recovered->data.sketches).ok())
        Die("recover restore failed");
    });
    c = BenchCase{};
    c.name = "recover_ms";
    c.params_json = params;
    c.repeats = repeats;
    c.wall_ms = recover_ms;
    cases.push_back(c);
    std::fprintf(stderr, "recover            %10.3f ms\n", recover_ms);
    // Leave no bench litter behind.
    for (int g = 1; g <= repeats + 1; ++g)
      ::remove(otfair::serve::CheckpointPath(dir, static_cast<uint64_t>(g)).c_str());
    ::remove(dir.c_str());
  }

  // --- sketch_update_ns: streaming sketch ingest in isolation --------------
  // The per-value cost the serve path pays per sampled channel when
  // sketches are on (ServiceOptions::sketch_sample_every > 0): one
  // QuantileSketch::Add per (u, s, k) observation.
  {
    Rng sketch_rng(0x5ce7);
    const size_t values = smoke ? 50000 : 5000000;
    std::vector<double> stream(values);
    for (double& v : stream) v = sketch_rng.Normal(0.0, 2.0);
    uint64_t sink = 0;
    double alpha = 0.0;
    const double ms = BestWallMs(repeats, [&] {
      otfair::stats::QuantileSketch sketch;
      for (double v : stream) sketch.Add(v);
      sink += sketch.count();
      alpha = sketch.relative_accuracy();
    });
    if (sink == 0) Die("sketch_update produced implausible sink");
    BenchCase c;
    c.name = "sketch_update_ns";
    c.threads = 1;
    std::snprintf(params, sizeof(params), "{\"values\": %zu, \"alpha\": %.3f}", values,
                  alpha);
    c.params_json = params;
    c.repeats = repeats;
    c.wall_ms = ms;
    c.ns_per_op = ms * 1e6 / static_cast<double>(values);
    cases.push_back(c);
    std::fprintf(stderr, "sketch_update_ns  threads=1  %10.2f ms  (%.1f ns/value)\n", ms,
                 c.ns_per_op);
  }

  // --- trace_overhead_disabled / trace_overhead_enabled --------------------
  // The span guard in isolation: a tight loop around OTFAIR_TRACE_SPAN.
  // Disabled (the serving default, and how every row above is measured)
  // must cost one relaxed load and a predicted branch — sub-ns, which is
  // the "tracing compiled in costs nothing" claim. Enabled pays two
  // steady-clock reads plus a wait-free ring push per span.
  {
    const size_t spans = smoke ? 100000 : 10000000;
    auto spin = [&](size_t n) {
      uint64_t acc = 0;
      for (size_t i = 0; i < n; ++i) {
        OTFAIR_TRACE_SPAN("bench_overhead");
        acc += i;
      }
      return acc;
    };
    auto& collector = otfair::obs::TraceCollector::Global();
    for (const bool enabled : {false, true}) {
      if (enabled)
        collector.Enable();
      else
        collector.Disable();
      volatile uint64_t sink = 0;
      const double ms = BestWallMs(repeats, [&] { sink = sink + spin(spans); });
      collector.Disable();
      collector.ResetForTest();  // discard the pushed spans, free the rings
      BenchCase c;
      c.name = enabled ? "trace_overhead_enabled" : "trace_overhead_disabled";
      c.threads = 1;
      std::snprintf(params, sizeof(params), "{\"spans\": %zu}", spans);
      c.params_json = params;
      c.repeats = repeats;
      c.wall_ms = ms;
      c.ns_per_op = ms * 1e6 / static_cast<double>(spans);
      cases.push_back(c);
      std::fprintf(stderr, "%-24s threads=1 %8.2f ms  (%.2f ns/span)\n", c.name.c_str(),
                   ms, c.ns_per_op);
    }
  }

  // --- redesign_to_reload_ms: one self-heal episode's critical path --------
  // A drift-tripped service (shifted replay filled the channel sketches),
  // then exactly what the background loop runs per attempt: sketch
  // snapshot -> DesignFromQuantileFunctions -> validation -> hot
  // ReloadPlan. A successful reload resets the drift state, so each repeat
  // rebuilds the service and re-streams the shifted rows untimed.
  {
    otfair::core::DesignOptions design_options;
    design_options.n_q = design_nq;
    auto plans = otfair::core::DesignDistributionalRepair(*research, design_options);
    if (!plans.ok()) Die(plans.status().ToString());
    const double shift = 2.0;
    const size_t heal_rows = std::min<size_t>(n_archive, smoke ? 2000 : 20000);
    std::vector<otfair::serve::RowRequest> requests(heal_rows);
    for (size_t i = 0; i < heal_rows; ++i) {
      otfair::serve::RowRequest& request = requests[i];
      request.session_id = 0;
      request.row_index = i;
      request.u = archive->u(i);
      request.s = archive->s(i);
      const double* row = archive->features().row(i);
      request.features.resize(dim);
      for (size_t k = 0; k < dim; ++k) request.features[k] = row[k] + shift;
    }
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      otfair::serve::ServiceOptions service_options;
      service_options.sketch_sample_every = 1;
      auto service = otfair::serve::RepairService::Create(*plans, service_options);
      if (!service.ok()) Die(service.status().ToString());
      otfair::serve::RedesignerOptions heal_options;
      heal_options.poll_interval_ms = 1000000;  // inert loop; timed call is manual
      auto redesigner = otfair::serve::Redesigner::Create(service->get(), heal_options);
      if (!redesigner.ok()) Die(redesigner.status().ToString());
      std::vector<otfair::serve::RowResponse> responses;
      (*service)->RepairBatch(requests.data(), requests.size(), &responses);
      for (const auto& response : responses)
        if (!response.status.ok()) Die("redesign bench dropped a row");
      if (!(*service)->Health().drifted) Die("redesign bench: drift did not trip");
      Timer timer;
      const auto status = (*redesigner)->AttemptRedesign();
      const double ms = timer.ElapsedMillis();
      if (!status.ok()) Die("redesign bench: " + status.ToString());
      if ((*service)->plan_version() != 2) Die("redesign bench: reload did not land");
      (*redesigner)->Stop();
      if (r == 0 || ms < best) best = ms;
    }
    BenchCase c;
    c.name = "redesign_to_reload_ms";
    c.threads = 1;
    std::snprintf(params, sizeof(params),
                  "{\"dim\": %zu, \"rows\": %zu, \"n_q\": %zu, \"shift\": %.1f}", dim,
                  heal_rows, design_nq, shift);
    c.params_json = params;
    c.repeats = repeats;
    c.wall_ms = best;
    cases.push_back(c);
    std::fprintf(stderr, "redesign_to_reload threads=1 %10.2f ms\n", best);
  }

  // --- table_build / plan_memory: sparse vs dense repair tables -----------
  {
    otfair::common::parallel::SetThreadCount(1);
    otfair::core::DesignOptions design_options;
    design_options.n_q = design_nq;
    design_options.threads = 1;
    auto plans = otfair::core::DesignDistributionalRepair(*research, design_options);
    if (!plans.ok()) Die(plans.status().ToString());
    const size_t plan_count = 4 * dim;  // (u, s) x k

    // The live path: OffSampleRepairer::Create = plan validation + alias
    // tables, both O(nnz) over the CSR rows.
    const double sparse_ms = BestWallMs(repeats, [&] {
      auto repairer = otfair::core::OffSampleRepairer::Create(*plans, {});
      if (!repairer.ok()) Die(repairer.status().ToString());
    });
    BenchCase c;
    c.name = "table_build";
    c.threads = 1;
    std::snprintf(params, sizeof(params), "{\"dim\": %zu, \"n_q\": %zu, \"solver\": \"monotone\"}",
                  dim, design_nq);
    c.params_json = params;
    c.repeats = repeats;
    c.wall_ms = sparse_ms;
    cases.push_back(c);
    std::fprintf(stderr, "table_build       threads=1  %10.2f ms\n", sparse_ms);

    // The pre-sparse baseline, emulated against the same plans: dense
    // n_Q x n_Q matrices scanned row by row, one alias table over all
    // n_Q states per massive row (weights copied into a fresh vector, as
    // the old call sites did). Densification itself is untimed — the old
    // path received dense matrices from the solver.
    std::vector<otfair::common::Matrix> dense_plans;
    std::vector<const otfair::core::ChannelPlan*> dense_channels;
    dense_plans.reserve(plan_count);
    dense_channels.reserve(plan_count);
    for (int u = 0; u <= 1; ++u) {
      for (int s = 0; s <= 1; ++s) {
        for (size_t k = 0; k < dim; ++k) {
          const auto& channel = plans->At(u, k);
          dense_plans.push_back(channel.plan[static_cast<size_t>(s)].ToDense());
          dense_channels.push_back(&channel);
        }
      }
    }
    const double dense_ms = BestWallMs(repeats, [&] {
      for (size_t p = 0; p < dense_plans.size(); ++p) {
        const otfair::common::Matrix& pi = dense_plans[p];
        const auto& grid = dense_channels[p]->grid;
        const size_t nq = grid.size();
        std::vector<std::optional<otfair::stats::AliasTable>> alias(nq);
        std::vector<double> conditional_mean(nq, 0.0);
        std::vector<char> has_mass(nq, 0);
        for (size_t q = 0; q < nq; ++q) {
          const double* row = pi.row(q);
          double mass = 0.0;
          double mean = 0.0;
          for (size_t j = 0; j < nq; ++j) {
            mass += row[j];
            mean += row[j] * grid.point(j);
          }
          if (mass > 1e-300) {
            has_mass[q] = 1;
            conditional_mean[q] = mean / mass;
            auto table =
                otfair::stats::AliasTable::Build(std::vector<double>(row, row + nq));
            if (!table.ok()) Die(table.status().ToString());
            alias[q] = std::move(*table);
          }
        }
        // Keep the emulation honest: same fallback construction as the
        // live path.
        std::vector<size_t> fallback(nq, 0);
        for (size_t q = 0; q < nq; ++q) {
          if (has_mass[q]) {
            fallback[q] = q;
            continue;
          }
          for (size_t delta = 1; delta < nq; ++delta) {
            if (q >= delta && has_mass[q - delta]) {
              fallback[q] = q - delta;
              break;
            }
            if (q + delta < nq && has_mass[q + delta]) {
              fallback[q] = q + delta;
              break;
            }
          }
        }
      }
    });
    c = BenchCase{};
    c.name = "table_build_dense";
    c.threads = 1;
    std::snprintf(params, sizeof(params), "{\"dim\": %zu, \"n_q\": %zu, \"solver\": \"monotone\"}",
                  dim, design_nq);
    c.params_json = params;
    c.repeats = repeats;
    c.wall_ms = dense_ms;
    cases.push_back(c);
    std::fprintf(stderr, "table_build_dense threads=1  %10.2f ms  (sparse speedup %.1fx)\n",
                 dense_ms, sparse_ms > 0.0 ? dense_ms / sparse_ms : 0.0);

    // plan_memory: resident bytes of the CSR arrays per channel plan
    // against the dense n_Q x n_Q footprint the plans used to occupy.
    size_t nnz_total = 0;
    size_t sparse_bytes_total = 0;
    for (int u = 0; u <= 1; ++u) {
      for (int s = 0; s <= 1; ++s) {
        for (size_t k = 0; k < dim; ++k) {
          const auto& pi = plans->At(u, k).plan[static_cast<size_t>(s)];
          nnz_total += pi.nnz();
          sparse_bytes_total += pi.MemoryBytes();
        }
      }
    }
    c = BenchCase{};
    c.name = "plan_memory";
    c.threads = 1;
    std::snprintf(params, sizeof(params),
                  "{\"dim\": %zu, \"n_q\": %zu, \"solver\": \"monotone\", \"plans\": %zu}", dim,
                  design_nq, plan_count);
    c.params_json = params;
    c.repeats = 1;
    c.nnz_per_plan = static_cast<double>(nnz_total) / static_cast<double>(plan_count);
    c.sparse_bytes_per_plan =
        static_cast<double>(sparse_bytes_total) / static_cast<double>(plan_count);
    c.dense_bytes_per_plan = static_cast<double>(design_nq * design_nq * sizeof(double));
    cases.push_back(c);
    std::fprintf(stderr,
                 "plan_memory       threads=1  %10.0f nnz/plan  (%.1f KiB CSR vs %.1f KiB "
                 "dense, %.0fx smaller)\n",
                 c.nnz_per_plan, c.sparse_bytes_per_plan / 1024.0,
                 c.dense_bytes_per_plan / 1024.0,
                 c.sparse_bytes_per_plan > 0.0 ? c.dense_bytes_per_plan / c.sparse_bytes_per_plan
                                               : 0.0);
    otfair::common::parallel::SetThreadCount(0);
  }

  // --- sinkhorn: single-thread, both domains -------------------------------
  {
    otfair::common::parallel::SetThreadCount(1);
    const OtProblem p = RandomOtProblem(sinkhorn_n, 0x51f0);
    for (const bool log_domain : {false, true}) {
      otfair::ot::SinkhornOptions options;
      options.epsilon = 0.05;
      options.tolerance = 1e-6;
      options.max_iterations = log_domain ? 300 : 1000;
      options.log_domain = log_domain;
      size_t iterations = 0;
      const double ms = BestWallMs(repeats, [&] {
        auto result = otfair::ot::SolveSinkhorn(p.a, p.b, p.cost, options);
        if (!result.ok()) Die(result.status().ToString());
        iterations = result->iterations;
      });
      BenchCase c;
      c.name = log_domain ? "sinkhorn_log" : "sinkhorn_standard";
      c.threads = 1;
      std::snprintf(params, sizeof(params),
                    "{\"n\": %zu, \"epsilon\": 0.05, \"tolerance\": 1e-6, "
                    "\"max_iterations\": %zu}",
                    sinkhorn_n, options.max_iterations);
      c.params_json = params;
      c.repeats = repeats;
      c.wall_ms = ms;
      c.iterations = iterations;
      c.ms_per_iter = iterations > 0 ? ms / static_cast<double>(iterations) : 0.0;
      cases.push_back(c);
      std::fprintf(stderr, "%-17s threads=1  %10.2f ms  (%zu iters, %.4f ms/iter)\n",
                   c.name.c_str(), ms, iterations, c.ms_per_iter);
    }
    otfair::common::parallel::SetThreadCount(0);
  }

  // --- lse_reduction: the fused log-sum-exp kernel in isolation ------------
  // One sinkhorn_n-length LseDiff per "iteration": exactly the inner loop
  // of a log-domain Sinkhorn row update. The accumulator sink keeps the
  // call observable so the optimizer cannot drop it.
  {
    Rng lse_rng(0x15e0);
    std::vector<double> other(sinkhorn_n);
    std::vector<double> cost_row(sinkhorn_n);
    for (double& v : other) v = lse_rng.Uniform(-2.0, 2.0);
    for (double& v : cost_row) v = lse_rng.Uniform(0.0, 4.0);
    const size_t iters = smoke ? 2000 : 200000;
    double sink = 0.0;
    const double ms = BestWallMs(repeats, [&] {
      for (size_t i = 0; i < iters; ++i)
        sink += otfair::common::simd::LseDiff(other.data(), cost_row.data(), sinkhorn_n);
    });
    if (!std::isfinite(sink)) Die("lse_reduction produced non-finite sink");
    BenchCase c;
    c.name = "lse_reduction";
    c.threads = 1;
    std::snprintf(params, sizeof(params), "{\"n\": %zu, \"calls\": %zu}", sinkhorn_n, iters);
    c.params_json = params;
    c.repeats = repeats;
    c.wall_ms = ms;
    c.iterations = iters;
    c.ms_per_iter = ms / static_cast<double>(iters);
    cases.push_back(c);
    std::fprintf(stderr, "lse_reduction     threads=1  %10.2f ms  (%zu calls, %.5f ms/call)\n",
                 ms, iters, c.ms_per_iter);
  }

  // --- alias_lookup_batch: arena draws in isolation ------------------------
  // A repair-shaped arena (design_nq rows, narrow CSR-like support) drawn
  // from in the same prefetched pattern RepairSpan uses; rows_per_sec is
  // draws/sec. Row indices are precomputed so the timed loop is lookup
  // plus RNG only.
  {
    Rng build_rng(0xa11a);
    otfair::stats::AliasArena arena;
    const size_t support = 8;  // typical CSR row width from monotone plans
    arena.Reserve(design_nq, design_nq * support);
    std::vector<double> w(support);
    std::vector<uint32_t> c_ids(support);
    for (size_t q = 0; q < design_nq; ++q) {
      for (size_t i = 0; i < support; ++i) {
        w[i] = build_rng.Uniform(0.01, 1.0);
        c_ids[i] = static_cast<uint32_t>((q + i) % design_nq);
      }
      if (auto status = arena.AppendRow(w.data(), c_ids.data(), support); !status.ok())
        Die(status.ToString());
    }
    const size_t draws = smoke ? 20000 : 2000000;
    std::vector<uint32_t> row_ids(draws);
    for (uint32_t& r : row_ids)
      r = static_cast<uint32_t>(build_rng.UniformInt(design_nq));
    constexpr size_t kPrefetchAhead = 8;  // matches RepairSpan
    uint64_t sink = 0;
    const double ms = BestWallMs(repeats, [&] {
      Rng draw_rng(0xd4a3);
      for (size_t t = 0; t < draws; ++t) {
        if (t + kPrefetchAhead < draws) arena.PrefetchRow(row_ids[t + kPrefetchAhead]);
        sink += arena.SampleCol(row_ids[t], draw_rng);
      }
    });
    if (sink == 0) Die("alias_lookup_batch produced implausible sink");
    BenchCase c;
    c.name = "alias_lookup_batch";
    c.threads = 1;
    std::snprintf(params, sizeof(params),
                  "{\"rows\": %zu, \"support\": %zu, \"draws\": %zu}", design_nq, support,
                  draws);
    c.params_json = params;
    c.repeats = repeats;
    c.wall_ms = ms;
    c.rows_per_sec = static_cast<double>(draws) / (ms / 1e3);
    cases.push_back(c);
    std::fprintf(stderr, "alias_lookup_batch threads=1 %10.2f ms  (%.0f draws/s)\n", ms,
                 c.rows_per_sec);
  }

  // --- exact solver --------------------------------------------------------
  {
    otfair::common::parallel::SetThreadCount(1);
    const OtProblem p = RandomOtProblem(exact_n, 0xe8ac);
    const double ms = BestWallMs(repeats, [&] {
      auto plan = otfair::ot::SolveExact(p.a, p.b, p.cost);
      if (!plan.ok()) Die(plan.status().ToString());
    });
    BenchCase c;
    c.name = "exact_solver";
    c.threads = 1;
    std::snprintf(params, sizeof(params), "{\"n\": %zu}", exact_n);
    c.params_json = params;
    c.repeats = repeats;
    c.wall_ms = ms;
    cases.push_back(c);
    std::fprintf(stderr, "exact_solver      threads=1  %10.2f ms\n", ms);
    otfair::common::parallel::SetThreadCount(0);
  }

  // --- JSON out ------------------------------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) Die("cannot open " + out_path);
  std::fprintf(out, "{\n  \"schema\": \"otfair-bench-v1\",\n");
  std::fprintf(out, "  \"meta\": {\"hardware_threads\": %zu, \"smoke\": %s, \"simd_isa\": \"%s\"},\n",
               static_cast<size_t>(otfair::common::parallel::DefaultThreadCount()),
               smoke ? "true" : "false", otfair::common::simd::ActiveIsa());
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < cases.size(); ++i) {
    const BenchCase& c = cases[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"threads\": %d, \"params\": %s, "
                 "\"repeats\": %d, \"wall_ms\": %.3f",
                 c.name.c_str(), c.threads, c.params_json.c_str(), c.repeats, c.wall_ms);
    if (c.rows_per_sec > 0.0) std::fprintf(out, ", \"rows_per_sec\": %.0f", c.rows_per_sec);
    if (c.iterations > 0)
      std::fprintf(out, ", \"iterations\": %zu, \"ms_per_iter\": %.5f", c.iterations,
                   c.ms_per_iter);
    if (c.nnz_per_plan > 0.0)
      std::fprintf(out,
                   ", \"nnz_per_plan\": %.1f, \"sparse_bytes_per_plan\": %.0f, "
                   "\"dense_bytes_per_plan\": %.0f",
                   c.nnz_per_plan, c.sparse_bytes_per_plan, c.dense_bytes_per_plan);
    if (c.latency_p99_us > 0.0)
      std::fprintf(out, ", \"latency_p50_us\": %.1f, \"latency_p99_us\": %.1f",
                   c.latency_p50_us, c.latency_p99_us);
    if (c.ns_per_op > 0.0) std::fprintf(out, ", \"ns_per_op\": %.2f", c.ns_per_op);
    std::fprintf(out, "}%s\n", i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
