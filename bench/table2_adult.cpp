// Reproduces paper Table II: E per feature (age, hours/week) for the Adult
// income setting — s = male, u = college-educated — research vs archive,
// unrepaired vs distributional (ours) vs geometric [10].
//
// Paper parameters: n_R = 10000, n_A = 35222, n_Q = 250, single run.
// Data source: the Adult-like synthetic generator (DESIGN.md §3) with mild
// archive drift, or --csv=<path> for a genuine preprocessed Adult file.
//
// Run:  ./build/bench/table2_adult [--n_research=10000] [--n_archive=35222]
//           [--n_q=250] [--seed=2] [--csv=path]

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/rng.h"
#include "core/geometric.h"
#include "core/pipeline.h"
#include "data/adult_like.h"
#include "data/csv.h"
#include "fairness/emetric.h"

using otfair::common::FlagParser;
using otfair::common::Rng;

namespace {

double FeatureEOrNan(const otfair::data::Dataset& dataset, size_t k) {
  auto e = otfair::fairness::FeatureE(dataset, k);
  return e.ok() ? *e : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t n_research = static_cast<size_t>(flags.GetInt("n_research", 10000));
  const size_t n_archive = static_cast<size_t>(flags.GetInt("n_archive", 35222));
  const size_t n_q = static_cast<size_t>(flags.GetInt("n_q", 250));
  const uint64_t seed = flags.GetUint64("seed", 2);
  const std::string csv = flags.GetString("csv", "");
  if (auto status = flags.Validate({"n_research", "n_archive", "n_q", "seed", "csv"});
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  Rng rng(seed);
  otfair::data::Dataset research;
  otfair::data::Dataset archive;
  if (!csv.empty()) {
    auto full = otfair::data::ReadCsv(csv);
    if (!full.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", csv.c_str(),
                   full.status().ToString().c_str());
      return 1;
    }
    auto split = otfair::data::SplitResearchArchive(
        *full, std::min(n_research, full->size() - 1), rng);
    if (!split.ok()) return 1;
    research = std::move(split->first);
    archive = std::move(split->second);
  } else {
    auto r = otfair::data::GenerateAdultLike(n_research, rng, {.drift = 0.0});
    auto a = otfair::data::GenerateAdultLike(n_archive, rng, {.drift = 0.15});
    if (!r.ok() || !a.ok()) return 1;
    research = std::move(*r);
    archive = std::move(*a);
  }

  otfair::core::PipelineOptions options;
  options.design.n_q = n_q;
  options.repair.seed = seed;
  auto pipeline = otfair::core::RunRepairPipeline(research, archive, options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  auto geometric = otfair::core::GeometricRepairDataset(research, {});
  if (!geometric.ok()) {
    std::fprintf(stderr, "geometric repair failed: %s\n",
                 geometric.status().ToString().c_str());
    return 1;
  }

  std::printf("TABLE II: quenching gender dependence of educational groups, Adult "
              "income setting\n");
  std::printf("(%s; n_R=%zu, n_A=%zu, n_Q=%zu, seed=%llu)\n\n",
              csv.empty() ? "synthetic Adult-like data" : csv.c_str(), research.size(),
              archive.size(), n_q, static_cast<unsigned long long>(seed));
  std::printf("%-22s | %-12s %-12s | %-12s %-12s\n", "Repair", "Age (Res)", "Hours (Res)",
              "Age (Arc)", "Hours (Arc)");
  std::printf("%.*s\n", 82,
              "-----------------------------------------------------------------"
              "-----------------");
  std::printf("%-22s | %-12.4f %-12.4f | %-12.4f %-12.4f\n", "None",
              FeatureEOrNan(research, 0), FeatureEOrNan(research, 1),
              FeatureEOrNan(archive, 0), FeatureEOrNan(archive, 1));
  std::printf("%-22s | %-12.4f %-12.4f | %-12.4f %-12.4f\n", "Distributional (ours)",
              FeatureEOrNan(pipeline->repaired_research, 0),
              FeatureEOrNan(pipeline->repaired_research, 1),
              FeatureEOrNan(pipeline->repaired_archive, 0),
              FeatureEOrNan(pipeline->repaired_archive, 1));
  std::printf("%-22s | %-12.4f %-12.4f | %-12s %-12s\n", "Geometric [10]",
              FeatureEOrNan(*geometric, 0), FeatureEOrNan(*geometric, 1), "-", "-");

  std::printf("\nExpected shape (paper Table II): unrepaired E far smaller than the\n"
              "simulation study (groups overlap heavily); distributional repair\n"
              "reduces E severalfold on research AND archive (paper: ~4x / ~3x).\n"
              "Known deviation: the paper's geometric baseline fails on hours/week\n"
              "(E stays at 2.126 of 2.700) — an artifact of their solver on heavily\n"
              "tied integer data; our implementation of [10] uses the canonical\n"
              "monotone coupling and repairs that channel fine. See EXPERIMENTS.md.\n");
  return 0;
}
