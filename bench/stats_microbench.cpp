// Micro-benchmarks for the statistical substrate: KDE interpolation of the
// marginals (Algorithm 1 line 8) and the E-metric evaluation, the two
// statistics-heavy steps of the experiment harness.

#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"
#include "stats/divergence.h"
#include "stats/gmm.h"
#include "stats/kde.h"
#include "stats/sampling.h"

namespace {

using otfair::common::Rng;

std::vector<double> NormalSample(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.Normal();
  return xs;
}

std::vector<double> UniformGrid(size_t n) {
  std::vector<double> g(n);
  for (size_t i = 0; i < n; ++i)
    g[i] = -4.0 + 8.0 * static_cast<double>(i) / static_cast<double>(n - 1);
  return g;
}

void BM_KdePmfOnGrid(benchmark::State& state) {
  const size_t n_samples = static_cast<size_t>(state.range(0));
  const size_t n_grid = static_cast<size_t>(state.range(1));
  const auto samples = NormalSample(n_samples, 1);
  const auto grid = UniformGrid(n_grid);
  const auto kde = otfair::stats::GaussianKde::FitSilverman(samples);
  for (auto _ : state) {
    auto pmf = kde->PmfOnGrid(grid);
    benchmark::DoNotOptimize(pmf);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n_samples * n_grid));
}
BENCHMARK(BM_KdePmfOnGrid)
    ->Args({500, 50})
    ->Args({500, 250})
    ->Args({5000, 50})
    ->Args({10000, 250});

void BM_SymmetrizedKl(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> p(n);
  std::vector<double> q(n);
  for (size_t i = 0; i < n; ++i) {
    p[i] = rng.Uniform(0.0, 1.0);
    q[i] = rng.Uniform(0.0, 1.0);
  }
  for (auto _ : state) {
    auto kl = otfair::stats::SymmetrizedKl(p, q);
    benchmark::DoNotOptimize(kl);
  }
}
BENCHMARK(BM_SymmetrizedKl)->RangeMultiplier(4)->Range(64, 4096);

void BM_AggregateEMetric(benchmark::State& state) {
  const size_t n_rows = static_cast<size_t>(state.range(0));
  Rng rng(3);
  auto dataset = otfair::sim::SimulateGaussianMixture(
      n_rows, otfair::sim::GaussianSimConfig::PaperDefault(), rng);
  for (auto _ : state) {
    auto e = otfair::fairness::AggregateE(*dataset);
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n_rows));
}
BENCHMARK(BM_AggregateEMetric)->Arg(500)->Arg(5000)->Arg(20000);

void BM_AliasTableBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.Uniform(0.0, 1.0);
  for (auto _ : state) {
    auto table = otfair::stats::AliasTable::Build(weights);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_AliasTableBuild)->RangeMultiplier(4)->Range(16, 4096);

void BM_AliasTableSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.Uniform(0.0, 1.0);
  auto table = otfair::stats::AliasTable::Build(weights);
  Rng sample_rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->Sample(sample_rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AliasTableSample)->Arg(50)->Arg(250)->Arg(4096);

void BM_GmmEmFit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  otfair::common::Matrix data(n, 2);
  for (size_t i = 0; i < n; ++i) {
    const bool first = rng.Bernoulli(0.5);
    data(i, 0) = rng.Normal(first ? -2.0 : 2.0, 1.0);
    data(i, 1) = rng.Normal(0.0, 1.0);
  }
  for (auto _ : state) {
    Rng fit_rng(8);
    auto model = otfair::stats::GaussianMixture::FitEm(data, 2, fit_rng);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_GmmEmFit)->Arg(500)->Arg(2000);

}  // namespace
