// Ablation bench for the design choices called out in DESIGN.md:
//
//   A. Barycentre position t (paper Eq. 7): sweeping the repair target
//      along the W2 geodesic redistributes the damage between the two
//      s-classes while (near-)preserving the fairness of the result.
//   B. Transport mode: the paper's randomized mass split (Algorithm 2)
//      vs the deterministic conditional-mean map (§VI Monge discussion).
//   C. Plan solver: monotone (exact, O(n_Q)) vs Sinkhorn at two epsilons —
//      quality of the resulting repair vs design cost.
//
// Run:  ./build/bench/ablation_partial_repair [--n_archive=20000] [--seed=5]

#include <cmath>
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/designer.h"
#include "core/repairer.h"
#include "fairness/damage.h"
#include "fairness/emetric.h"
#include "ot/solver.h"
#include "sim/gaussian_mixture.h"

using otfair::common::FlagParser;
using otfair::common::Rng;
using otfair::common::Timer;

namespace {

struct Measured {
  double e = -1.0;
  double damage_s0 = -1.0;
  double damage_s1 = -1.0;
};

Measured Measure(const otfair::data::Dataset& before, const otfair::data::Dataset& after) {
  Measured out;
  if (auto e = otfair::fairness::AggregateE(after); e.ok()) out.e = *e;
  // Per-class damage: mean |x' - x| over rows of each s class (feature 0).
  double acc[2] = {0.0, 0.0};
  size_t count[2] = {0, 0};
  for (size_t i = 0; i < before.size(); ++i) {
    const int s = before.s(i);
    double row = 0.0;
    for (size_t k = 0; k < before.dim(); ++k) {
      const double d = after.feature(i, k) - before.feature(i, k);
      row += d * d;
    }
    acc[s] += std::sqrt(row);
    ++count[s];
  }
  out.damage_s0 = count[0] ? acc[0] / static_cast<double>(count[0]) : 0.0;
  out.damage_s1 = count[1] ? acc[1] / static_cast<double>(count[1]) : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t n_archive = static_cast<size_t>(flags.GetInt("n_archive", 20000));
  const uint64_t seed = flags.GetUint64("seed", 5);
  if (auto status = flags.Validate({"n_archive", "seed"}); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  Rng rng(seed);
  const auto config = otfair::sim::GaussianSimConfig::PaperDefault();
  auto research = otfair::sim::SimulateGaussianMixture(800, config, rng);
  auto archive = otfair::sim::SimulateGaussianMixture(n_archive, config, rng);
  if (!research.ok() || !archive.ok()) return 1;
  auto e_raw = otfair::fairness::AggregateE(*archive);
  std::printf("ABLATIONS (unrepaired archive E = %.4f, n_A = %zu)\n\n", *e_raw,
              archive->size());

  // --- A: barycentre position t. ---
  std::printf("[A] barycentre position t (who absorbs the damage)\n");
  std::printf("%8s  %12s  %16s  %16s\n", "t", "E (archive)", "damage s=0", "damage s=1");
  for (const double t : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    otfair::core::DesignOptions design;
    design.target_t = t;
    auto plans = otfair::core::DesignDistributionalRepair(*research, design);
    if (!plans.ok()) return 1;
    otfair::core::RepairOptions repair;
    repair.seed = seed;
    auto repairer = otfair::core::OffSampleRepairer::Create(*plans, repair);
    if (!repairer.ok()) return 1;
    auto repaired = repairer->RepairDataset(*archive);
    if (!repaired.ok()) return 1;
    const Measured m = Measure(*archive, *repaired);
    std::printf("%8.2f  %12.4f  %16.4f  %16.4f\n", t, m.e, m.damage_s0, m.damage_s1);
  }
  std::printf("expected: E roughly flat in t; damage shifts monotonically from the\n"
              "s=1 class (t=0 drags it onto mu_0) to the s=0 class (t=1).\n\n");

  // --- B: transport mode. ---
  std::printf("[B] transport mode (Algorithm 2 randomization vs conditional mean)\n");
  std::printf("%-18s  %12s  %16s\n", "mode", "E (archive)", "mean damage");
  for (const auto mode : {otfair::core::TransportMode::kStochastic,
                          otfair::core::TransportMode::kConditionalMean}) {
    auto plans = otfair::core::DesignDistributionalRepair(*research, {});
    if (!plans.ok()) return 1;
    otfair::core::RepairOptions repair;
    repair.mode = mode;
    repair.seed = seed;
    auto repairer = otfair::core::OffSampleRepairer::Create(*plans, repair);
    if (!repairer.ok()) return 1;
    auto repaired = repairer->RepairDataset(*archive);
    if (!repaired.ok()) return 1;
    auto damage = otfair::fairness::ComputeDamage(*archive, *repaired);
    const Measured m = Measure(*archive, *repaired);
    std::printf("%-18s  %12.4f  %16.4f\n",
                mode == otfair::core::TransportMode::kStochastic ? "stochastic"
                                                                 : "conditional-mean",
                m.e, damage.ok() ? damage->mean_l2_displacement : -1.0);
  }
  std::printf("expected: similar E; the deterministic map damages slightly less but\n"
              "narrows the repaired marginal (no mass splitting).\n\n");

  // --- C: plan solver. ---
  std::printf("[C] plan solver (design cost vs repair quality, n_Q = 50)\n");
  std::printf("%-22s  %12s  %14s  %14s\n", "solver", "E (archive)", "mean damage",
              "design ms");
  struct SolverCase {
    const char* name;
    const char* registry_name;
    double epsilon;
  };
  const SolverCase cases[] = {
      {"monotone (exact)", "monotone", 0.0},
      {"network flow (exact)", "exact", 0.0},
      {"sinkhorn eps=0.5", "sinkhorn", 0.5},
      {"sinkhorn eps=0.05", "sinkhorn", 0.05},
  };
  for (const SolverCase& c : cases) {
    otfair::core::DesignOptions design;
    otfair::ot::SolverOptions solver_options;
    if (c.epsilon > 0.0) {
      solver_options.sinkhorn.epsilon = c.epsilon;
      solver_options.sinkhorn.log_domain = true;
    }
    design.solver = *otfair::ot::MakeSolver(c.registry_name, solver_options);
    Timer timer;
    auto plans = otfair::core::DesignDistributionalRepair(*research, design);
    const double ms = timer.ElapsedMillis();
    if (!plans.ok()) {
      std::printf("%-22s  failed: %s\n", c.name, plans.status().ToString().c_str());
      continue;
    }
    otfair::core::RepairOptions repair;
    repair.seed = seed;
    auto repairer = otfair::core::OffSampleRepairer::Create(*plans, repair);
    if (!repairer.ok()) return 1;
    auto repaired = repairer->RepairDataset(*archive);
    if (!repaired.ok()) return 1;
    auto damage = otfair::fairness::ComputeDamage(*archive, *repaired);
    const Measured m = Measure(*archive, *repaired);
    std::printf("%-22s  %12.4f  %14.4f  %14.2f\n", c.name, m.e,
                damage.ok() ? damage->mean_l2_displacement : -1.0, ms);
  }
  std::printf("expected: monotone and network-flow give identical E (same optimum)\n"
              "with monotone far cheaper. Entropic plans blur the transport: loose\n"
              "Sinkhorn homogenizes the two repaired conditionals even further\n"
              "(lower E) but at visibly higher data damage; tightening epsilon\n"
              "approaches the exact repair at growing design cost — the regularized\n"
              "trade-off the paper cites via [35].\n");
  return 0;
}
