// Reproduces paper Figure 4: empirical E of the *composite* repaired data
// (research + archive) as the interpolated-support resolution n_Q grows.
// Paper setting: n_R = 500, n_A = 5000, n_Q in {5, ..., 50}; performance
// converges above n_Q ~ 30.
//
// Run:  ./build/bench/fig4_support_resolution [--trials=10] [--n_research=500]
//           [--n_archive=5000] [--grid_sizes=5,10,15,20,25,30,35,40,45,50]
//           [--seed=4]

#include <cstdio>
#include <map>
#include <vector>

#include "common/flags.h"
#include "core/pipeline.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"
#include "sim/monte_carlo.h"

using otfair::common::FlagParser;
using otfair::common::Result;
using otfair::common::Rng;

namespace {

/// Concatenates two row-aligned datasets (same schema).
otfair::data::Dataset Concatenate(const otfair::data::Dataset& a,
                                  const otfair::data::Dataset& b) {
  otfair::common::Matrix features(a.size() + b.size(), a.dim());
  std::vector<int> s;
  std::vector<int> u;
  s.reserve(features.rows());
  u.reserve(features.rows());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t k = 0; k < a.dim(); ++k) features(i, k) = a.feature(i, k);
    s.push_back(a.s(i));
    u.push_back(a.u(i));
  }
  for (size_t i = 0; i < b.size(); ++i) {
    for (size_t k = 0; k < b.dim(); ++k) features(a.size() + i, k) = b.feature(i, k);
    s.push_back(b.s(i));
    u.push_back(b.u(i));
  }
  return *otfair::data::Dataset::Create(std::move(features), std::move(s), std::move(u),
                                        a.feature_names());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t trials = static_cast<size_t>(flags.GetInt("trials", 20));
  const size_t n_research = static_cast<size_t>(flags.GetInt("n_research", 500));
  const size_t n_archive = static_cast<size_t>(flags.GetInt("n_archive", 5000));
  const uint64_t seed = flags.GetUint64("seed", 4);
  const std::vector<int> grid_sizes =
      flags.GetIntList("grid_sizes", {5, 10, 15, 20, 25, 30, 35, 40, 45, 50});
  if (auto status =
          flags.Validate({"trials", "n_research", "n_archive", "grid_sizes", "seed"});
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  const auto config = otfair::sim::GaussianSimConfig::PaperDefault();

  std::printf("FIGURE 4: E of the composite repaired data (X_R u X_A) vs n_Q\n");
  std::printf("(n_R=%zu, n_A=%zu, %zu MC trials per point, seed=%llu)\n\n", n_research,
              n_archive, trials, static_cast<unsigned long long>(seed));
  std::printf("%8s  %26s\n", "n_Q", "E composite (repaired)");

  for (const int n_q : grid_sizes) {
    auto trial = [&](Rng& rng) -> Result<std::map<std::string, double>> {
      auto research = otfair::sim::SimulateGaussianMixture(n_research, config, rng);
      if (!research.ok()) return research.status();
      auto archive = otfair::sim::SimulateGaussianMixture(n_archive, config, rng);
      if (!archive.ok()) return archive.status();
      otfair::core::PipelineOptions options;
      options.design.n_q = static_cast<size_t>(n_q);
      options.repair.seed = rng.Next64();
      auto pipeline = otfair::core::RunRepairPipeline(*research, *archive, options);
      if (!pipeline.ok()) return pipeline.status();
      const otfair::data::Dataset composite =
          Concatenate(pipeline->repaired_research, pipeline->repaired_archive);
      auto e = otfair::fairness::AggregateE(composite);
      if (!e.ok()) return e.status();
      return std::map<std::string, double>{{"composite", *e}};
    };
    auto summary =
        otfair::sim::RunMonteCarlo(trials, seed + static_cast<uint64_t>(n_q), trial);
    if (!summary.ok()) {
      std::fprintf(stderr, "n_Q=%d failed: %s\n", n_q, summary.status().ToString().c_str());
      return 1;
    }
    std::printf("%8d  %12.4f +- %-10.4f\n", n_q, summary->at("composite").mean,
                summary->at("composite").std);
  }
  std::printf("\nExpected shape (paper Fig. 4): E falls as n_Q grows and is\n"
              "statistically flat above n_Q ~ 30 — an order of magnitude fewer\n"
              "interpolants than research points, i.e. the pseudo-sufficient-\n"
              "statistics compression the paper highlights.\n");
  return 0;
}
