// Reproduces paper Figure 3: empirical E (aggregated over both features) of
// the repaired research and archival data as the research set size n_R
// grows, with the unrepaired E as reference. Paper setting: n_A = 5000,
// n_Q = 50, n_R in [25, 750].
//
// Run:  ./build/bench/fig3_research_size [--trials=10] [--n_archive=5000]
//           [--n_q=50] [--sizes=25,50,100,200,300,400,500,750] [--seed=3]

#include <cstdio>
#include <map>
#include <vector>

#include "common/flags.h"
#include "core/pipeline.h"
#include "fairness/emetric.h"
#include "sim/gaussian_mixture.h"
#include "sim/monte_carlo.h"

using otfair::common::FlagParser;
using otfair::common::Result;
using otfair::common::Rng;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t trials = static_cast<size_t>(flags.GetInt("trials", 20));
  const size_t n_archive = static_cast<size_t>(flags.GetInt("n_archive", 5000));
  const size_t n_q = static_cast<size_t>(flags.GetInt("n_q", 50));
  const uint64_t seed = flags.GetUint64("seed", 3);
  const std::vector<int> sizes =
      flags.GetIntList("sizes", {25, 50, 100, 200, 300, 400, 500, 750});
  if (auto status = flags.Validate({"trials", "n_archive", "n_q", "sizes", "seed"});
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  const auto config = otfair::sim::GaussianSimConfig::PaperDefault();

  std::printf("FIGURE 3: E (aggregated over both features) vs research size n_R\n");
  std::printf("(n_A=%zu, n_Q=%zu, %zu MC trials per point, seed=%llu)\n\n", n_archive, n_q,
              trials, static_cast<unsigned long long>(seed));
  std::printf("%8s  %22s  %22s  %22s\n", "n_R", "E repaired (research)",
              "E repaired (archive)", "E unrepaired (archive)");

  for (const int n_research : sizes) {
    auto trial = [&](Rng& rng) -> Result<std::map<std::string, double>> {
      // Tiny research sets can miss an (u, s) group entirely; resample the
      // research draw until the design is feasible, as an experimenter
      // running the paper's protocol would.
      for (int attempt = 0; attempt < 64; ++attempt) {
        auto research = otfair::sim::SimulateGaussianMixture(
            static_cast<size_t>(n_research), config, rng);
        if (!research.ok()) return research.status();
        auto archive = otfair::sim::SimulateGaussianMixture(n_archive, config, rng);
        if (!archive.ok()) return archive.status();
        otfair::core::PipelineOptions options;
        options.design.n_q = n_q;
        options.repair.seed = rng.Next64();
        auto pipeline = otfair::core::RunRepairPipeline(*research, *archive, options);
        if (!pipeline.ok()) continue;
        auto e_res = otfair::fairness::AggregateE(pipeline->repaired_research);
        auto e_arc = otfair::fairness::AggregateE(pipeline->repaired_archive);
        auto e_raw = otfair::fairness::AggregateE(*archive);
        if (!e_res.ok() || !e_arc.ok() || !e_raw.ok()) continue;
        return std::map<std::string, double>{
            {"research", *e_res}, {"archive", *e_arc}, {"unrepaired", *e_raw}};
      }
      return otfair::common::Status::FailedPrecondition(
          "could not draw a feasible research set");
    };
    auto summary = otfair::sim::RunMonteCarlo(trials, seed + static_cast<uint64_t>(n_research),
                                              trial);
    if (!summary.ok()) {
      std::fprintf(stderr, "n_R=%d failed: %s\n", n_research,
                   summary.status().ToString().c_str());
      return 1;
    }
    std::printf("%8d  %10.4f +- %-9.4f  %10.4f +- %-9.4f  %10.4f +- %-9.4f\n", n_research,
                summary->at("research").mean, summary->at("research").std,
                summary->at("archive").mean, summary->at("archive").std,
                summary->at("unrepaired").mean, summary->at("unrepaired").std);
  }
  std::printf("\nExpected shape (paper Fig. 3): both repaired series fall steeply and\n"
              "flatten once n_R ~ 10%% of n_A; the archive series converges to a\n"
              "slightly higher plateau than the research series; both sit far below\n"
              "the unrepaired reference.\n");
  return 0;
}
