#ifndef OTFAIR_SIM_GAUSSIAN_MIXTURE_H_
#define OTFAIR_SIM_GAUSSIAN_MIXTURE_H_

#include <array>
#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace otfair::sim {

/// Configuration of the paper's simulation study (§V-A): bivariate Gaussian
/// (u, s)-conditional components with identity-scaled covariance,
///
///     x | (u, s) ~ N(mean[u][s], sigma^2 * I_d)
///
/// with group priors Pr[u = 0] and Pr[s = 0 | u].
struct GaussianSimConfig {
  /// Component means, indexed mean[u][s]; each must have length `dim`.
  std::array<std::array<std::vector<double>, 2>, 2> mean;
  double sigma = 1.0;
  size_t dim = 2;
  /// Pairwise correlation between consecutive feature pairs (applied to
  /// (x1, x2), (x3, x4), ...). 0 reproduces the paper's isotropic setting;
  /// non-zero values create the intra-feature correlation structure that
  /// per-feature repair ignores (paper §VI) — used by the joint-repair
  /// ablation. Must lie in (-1, 1).
  double rho = 0.0;
  double pr_u0 = 0.5;
  double pr_s0_given_u0 = 0.3;
  double pr_s0_given_u1 = 0.1;

  /// Exactly the paper's §V-A setting: d = 2, Sigma = I2,
  /// mean[0][0] = [-1,-1], mean[0][1] = [0,0], mean[1][0] = [1,1],
  /// mean[1][1] = [0,0], Pr[u=0] = 0.5, Pr[s=0|u=0] = 0.3,
  /// Pr[s=0|u=1] = 0.1.
  static GaussianSimConfig PaperDefault();
};

/// Draws `n` iid observations from the configured mixture and packages them
/// as a labelled dataset (features x1..xd, plus s and u).
common::Result<data::Dataset> SimulateGaussianMixture(size_t n, const GaussianSimConfig& config,
                                                      common::Rng& rng);

/// Multi-group extension of the simulation study: |U| x |S| Gaussian
/// components x | (u, s) ~ N(mean[u][s], sigma^2 I_d) with arbitrary
/// cardinalities. The binary paper setting is GaussianSimConfig /
/// SimulateGaussianMixture above (kept verbatim so existing fixtures stay
/// bit-identical); this config is what `otfair simulate --s-levels/--u-levels`
/// drives.
struct MultiGroupSimConfig {
  /// Component means, indexed mean[u][s], each of length `dim`.
  std::vector<std::vector<std::vector<double>>> mean;
  /// Group priors: pr_u[m] and pr_s_given_u[m][j], rows summing to one.
  std::vector<double> pr_u;
  std::vector<std::vector<double>> pr_s_given_u;
  double sigma = 1.0;
  size_t dim = 2;

  size_t u_levels() const { return mean.size(); }
  size_t s_levels() const { return mean.empty() ? 0 : mean[0].size(); }

  /// A default multi-group layout generalizing the paper's §V-A geometry:
  /// the u strata are centred at spread-out locations (the ±1 separation
  /// of the binary default, scaled across |U|), and within each stratum
  /// the s levels fan out symmetrically around the stratum centre, so
  /// every adjacent s pair is separated — the signal the repair quenches.
  /// Priors are uniform over u and mildly tilted over s (matching the
  /// binary default's 0.3/0.7 imbalance at |S| = 2 in spirit).
  static MultiGroupSimConfig Default(size_t s_levels, size_t u_levels, size_t dim = 2);
};

/// Draws `n` iid observations from the multi-group mixture.
common::Result<data::Dataset> SimulateMultiGroupGaussian(size_t n,
                                                         const MultiGroupSimConfig& config,
                                                         common::Rng& rng);

}  // namespace otfair::sim

#endif  // OTFAIR_SIM_GAUSSIAN_MIXTURE_H_
