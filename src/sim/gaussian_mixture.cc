#include "sim/gaussian_mixture.h"

#include <cmath>
#include <string>

#include "common/matrix.h"
#include "common/status.h"

namespace otfair::sim {

using common::Matrix;
using common::Result;
using common::Rng;
using common::Status;

GaussianSimConfig GaussianSimConfig::PaperDefault() {
  GaussianSimConfig config;
  config.dim = 2;
  config.sigma = 1.0;
  config.pr_u0 = 0.5;
  config.pr_s0_given_u0 = 0.3;
  config.pr_s0_given_u1 = 0.1;
  config.mean[0][0] = {-1.0, -1.0};
  config.mean[0][1] = {0.0, 0.0};
  config.mean[1][0] = {1.0, 1.0};
  config.mean[1][1] = {0.0, 0.0};
  return config;
}

Result<data::Dataset> SimulateGaussianMixture(size_t n, const GaussianSimConfig& config,
                                              Rng& rng) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (config.dim == 0) return Status::InvalidArgument("dim must be positive");
  if (!(config.sigma > 0.0)) return Status::InvalidArgument("sigma must be positive");
  for (int u = 0; u <= 1; ++u) {
    for (int s = 0; s <= 1; ++s) {
      if (config.mean[u][s].size() != config.dim)
        return Status::InvalidArgument("component mean has wrong dimension");
    }
  }
  auto valid_prob = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!valid_prob(config.pr_u0) || !valid_prob(config.pr_s0_given_u0) ||
      !valid_prob(config.pr_s0_given_u1))
    return Status::InvalidArgument("probabilities must lie in [0, 1]");
  if (!(config.rho > -1.0 && config.rho < 1.0))
    return Status::InvalidArgument("rho must lie in (-1, 1)");

  Matrix features(n, config.dim);
  std::vector<int> s_labels(n);
  std::vector<int> u_labels(n);
  // Cholesky factor of [[1, rho], [rho, 1]] applied to consecutive pairs.
  const double cross = config.rho;
  const double residual = std::sqrt(1.0 - config.rho * config.rho);
  for (size_t i = 0; i < n; ++i) {
    const int u = rng.Bernoulli(config.pr_u0) ? 0 : 1;
    const double pr_s0 = (u == 0) ? config.pr_s0_given_u0 : config.pr_s0_given_u1;
    const int s = rng.Bernoulli(pr_s0) ? 0 : 1;
    u_labels[i] = u;
    s_labels[i] = s;
    for (size_t k = 0; k < config.dim; ++k) {
      double z = rng.Normal();
      if (config.rho != 0.0 && k % 2 == 1) {
        // Correlate with the previous channel's standardized deviate.
        const double prev =
            (features(i, k - 1) - config.mean[u][s][k - 1]) / config.sigma;
        z = cross * prev + residual * z;
      }
      features(i, k) = config.mean[u][s][k] + config.sigma * z;
    }
  }

  std::vector<std::string> names;
  for (size_t k = 0; k < config.dim; ++k) names.push_back("x" + std::to_string(k + 1));
  return data::Dataset::Create(std::move(features), std::move(s_labels), std::move(u_labels),
                               std::move(names));
}

MultiGroupSimConfig MultiGroupSimConfig::Default(size_t s_levels, size_t u_levels, size_t dim) {
  MultiGroupSimConfig config;
  config.dim = dim;
  config.sigma = 1.0;
  config.mean.resize(u_levels);
  config.pr_u.assign(u_levels, 1.0 / static_cast<double>(u_levels));
  config.pr_s_given_u.resize(u_levels);
  for (size_t m = 0; m < u_levels; ++m) {
    // Stratum centres spread over [-1, 1] (the binary default's u = 0/1
    // centres sit at the ends); a single stratum sits at the origin.
    const double centre =
        u_levels > 1
            ? -1.0 + 2.0 * static_cast<double>(m) / static_cast<double>(u_levels - 1)
            : 0.0;
    config.mean[m].resize(s_levels);
    for (size_t j = 0; j < s_levels; ++j) {
      // s levels fan out over [centre - 1, centre + 1]: adjacent levels are
      // separated by 2/(|S|-1), giving every pair a repairable offset. A
      // degenerate single level (rejected by the simulator anyway) sits at
      // the centre rather than dividing by zero.
      const double offset =
          s_levels > 1
              ? -1.0 + 2.0 * static_cast<double>(j) / static_cast<double>(s_levels - 1)
              : 0.0;
      config.mean[m][j].assign(dim, centre + offset);
    }
    // Mild imbalance toward higher s levels, echoing the paper's 0.3/0.7
    // binary prior: weight_j ∝ 1 + j.
    std::vector<double>& pr_s = config.pr_s_given_u[m];
    pr_s.resize(s_levels);
    double total = 0.0;
    for (size_t j = 0; j < s_levels; ++j) total += static_cast<double>(1 + j);
    for (size_t j = 0; j < s_levels; ++j)
      pr_s[j] = static_cast<double>(1 + j) / total;
  }
  return config;
}

Result<data::Dataset> SimulateMultiGroupGaussian(size_t n, const MultiGroupSimConfig& config,
                                                 Rng& rng) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (config.dim == 0) return Status::InvalidArgument("dim must be positive");
  if (!(config.sigma > 0.0)) return Status::InvalidArgument("sigma must be positive");
  const size_t u_levels = config.u_levels();
  const size_t s_levels = config.s_levels();
  if (u_levels < 1 || s_levels < 2)
    return Status::InvalidArgument("need |U| >= 1 and |S| >= 2 component grids");
  if (config.pr_u.size() != u_levels || config.pr_s_given_u.size() != u_levels)
    return Status::InvalidArgument("prior shapes must match the component grid");
  for (size_t m = 0; m < u_levels; ++m) {
    if (config.mean[m].size() != s_levels)
      return Status::InvalidArgument("component grid must be rectangular");
    if (config.pr_s_given_u[m].size() != s_levels)
      return Status::InvalidArgument("prior shapes must match the component grid");
    for (size_t j = 0; j < s_levels; ++j) {
      if (config.mean[m][j].size() != config.dim)
        return Status::InvalidArgument("component mean has wrong dimension");
    }
  }
  auto valid_prior = [](const std::vector<double>& p) {
    double total = 0.0;
    for (double v : p) {
      if (!(v >= 0.0)) return false;
      total += v;
    }
    return total > 0.0;
  };
  if (!valid_prior(config.pr_u)) return Status::InvalidArgument("pr_u must be a distribution");
  for (size_t m = 0; m < u_levels; ++m) {
    if (!valid_prior(config.pr_s_given_u[m]))
      return Status::InvalidArgument("pr_s_given_u rows must be distributions");
  }

  Matrix features(n, config.dim);
  std::vector<int> s_labels(n);
  std::vector<int> u_labels(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t u = rng.Categorical(config.pr_u);
    const size_t s = rng.Categorical(config.pr_s_given_u[u]);
    u_labels[i] = static_cast<int>(u);
    s_labels[i] = static_cast<int>(s);
    for (size_t k = 0; k < config.dim; ++k)
      features(i, k) = config.mean[u][s][k] + config.sigma * rng.Normal();
  }

  std::vector<std::string> names;
  for (size_t k = 0; k < config.dim; ++k) names.push_back("x" + std::to_string(k + 1));
  return data::Dataset::Create(std::move(features), std::move(s_labels), std::move(u_labels),
                               std::move(names), /*outcome=*/{}, s_levels, u_levels);
}

}  // namespace otfair::sim
