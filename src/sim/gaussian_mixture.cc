#include "sim/gaussian_mixture.h"

#include <cmath>
#include <string>

#include "common/matrix.h"
#include "common/status.h"

namespace otfair::sim {

using common::Matrix;
using common::Result;
using common::Rng;
using common::Status;

GaussianSimConfig GaussianSimConfig::PaperDefault() {
  GaussianSimConfig config;
  config.dim = 2;
  config.sigma = 1.0;
  config.pr_u0 = 0.5;
  config.pr_s0_given_u0 = 0.3;
  config.pr_s0_given_u1 = 0.1;
  config.mean[0][0] = {-1.0, -1.0};
  config.mean[0][1] = {0.0, 0.0};
  config.mean[1][0] = {1.0, 1.0};
  config.mean[1][1] = {0.0, 0.0};
  return config;
}

Result<data::Dataset> SimulateGaussianMixture(size_t n, const GaussianSimConfig& config,
                                              Rng& rng) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (config.dim == 0) return Status::InvalidArgument("dim must be positive");
  if (!(config.sigma > 0.0)) return Status::InvalidArgument("sigma must be positive");
  for (int u = 0; u <= 1; ++u) {
    for (int s = 0; s <= 1; ++s) {
      if (config.mean[u][s].size() != config.dim)
        return Status::InvalidArgument("component mean has wrong dimension");
    }
  }
  auto valid_prob = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!valid_prob(config.pr_u0) || !valid_prob(config.pr_s0_given_u0) ||
      !valid_prob(config.pr_s0_given_u1))
    return Status::InvalidArgument("probabilities must lie in [0, 1]");
  if (!(config.rho > -1.0 && config.rho < 1.0))
    return Status::InvalidArgument("rho must lie in (-1, 1)");

  Matrix features(n, config.dim);
  std::vector<int> s_labels(n);
  std::vector<int> u_labels(n);
  // Cholesky factor of [[1, rho], [rho, 1]] applied to consecutive pairs.
  const double cross = config.rho;
  const double residual = std::sqrt(1.0 - config.rho * config.rho);
  for (size_t i = 0; i < n; ++i) {
    const int u = rng.Bernoulli(config.pr_u0) ? 0 : 1;
    const double pr_s0 = (u == 0) ? config.pr_s0_given_u0 : config.pr_s0_given_u1;
    const int s = rng.Bernoulli(pr_s0) ? 0 : 1;
    u_labels[i] = u;
    s_labels[i] = s;
    for (size_t k = 0; k < config.dim; ++k) {
      double z = rng.Normal();
      if (config.rho != 0.0 && k % 2 == 1) {
        // Correlate with the previous channel's standardized deviate.
        const double prev =
            (features(i, k - 1) - config.mean[u][s][k - 1]) / config.sigma;
        z = cross * prev + residual * z;
      }
      features(i, k) = config.mean[u][s][k] + config.sigma * z;
    }
  }

  std::vector<std::string> names;
  for (size_t k = 0; k < config.dim; ++k) names.push_back("x" + std::to_string(k + 1));
  return data::Dataset::Create(std::move(features), std::move(s_labels), std::move(u_labels),
                               std::move(names));
}

}  // namespace otfair::sim
