#include "sim/monte_carlo.h"

#include "common/status.h"
#include "stats/descriptive.h"

namespace otfair::sim {

using common::Result;
using common::Rng;
using common::Status;

Result<std::map<std::string, McSummary>> RunMonteCarlo(size_t trials, uint64_t seed,
                                                       const McTrialFn& trial) {
  if (trials == 0) return Status::InvalidArgument("trials must be positive");
  Rng master(seed);
  std::map<std::string, std::vector<double>> series;
  for (size_t t = 0; t < trials; ++t) {
    Rng trial_rng = master.Fork();
    auto metrics = trial(trial_rng);
    if (!metrics.ok()) return metrics.status();
    if (t == 0) {
      for (const auto& [key, value] : *metrics) series[key] = {value};
    } else {
      if (metrics->size() != series.size())
        return Status::Internal("trial emitted inconsistent metric keys");
      for (const auto& [key, value] : *metrics) {
        auto it = series.find(key);
        if (it == series.end())
          return Status::Internal("trial emitted unknown metric key: " + key);
        it->second.push_back(value);
      }
    }
  }
  std::map<std::string, McSummary> out;
  for (const auto& [key, values] : series) {
    const stats::MeanStd ms = stats::ComputeMeanStd(values);
    out[key] = McSummary{ms.mean, ms.std, values.size()};
  }
  return out;
}

}  // namespace otfair::sim
