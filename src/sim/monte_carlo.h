#ifndef OTFAIR_SIM_MONTE_CARLO_H_
#define OTFAIR_SIM_MONTE_CARLO_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace otfair::sim {

/// Mean ± std summary of one Monte-Carlo metric.
struct McSummary {
  double mean = 0.0;
  double std = 0.0;
  size_t trials = 0;
};

/// One trial returns named scalar metrics (e.g. "E_k1_research"); it
/// receives its own forked, reproducible RNG stream.
using McTrialFn = std::function<common::Result<std::map<std::string, double>>(common::Rng&)>;

/// Runs `trials` independent repetitions and aggregates every metric to
/// mean ± std, matching the paper's "200 independent Monte-Carlo
/// simulations" protocol (§V-A). Each trial gets a forked RNG so results
/// are reproducible for a given `seed` regardless of per-trial consumption.
/// Trials returning errors abort the run with that error; all trials must
/// emit the same metric keys.
common::Result<std::map<std::string, McSummary>> RunMonteCarlo(size_t trials, uint64_t seed,
                                                               const McTrialFn& trial);

}  // namespace otfair::sim

#endif  // OTFAIR_SIM_MONTE_CARLO_H_
