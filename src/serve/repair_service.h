#ifndef OTFAIR_SERVE_REPAIR_SERVICE_H_
#define OTFAIR_SERVE_REPAIR_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/drift_monitor.h"
#include "core/repair_plan.h"
#include "core/repairer.h"
#include "serve/metrics.h"
#include "stats/quantile_sketch.h"

namespace otfair::serve {

/// One row of one client session's archival stream.
///
/// `(session_id, row_index)` is the determinism contract: the service
/// repairs this row with `Rng::ForStream(SessionSeed(session_id),
/// row_index)`, channels in k order — exactly how `OffSampleRepairer::
/// RepairDataset` treats row `row_index` under seed
/// `SessionSeed(session_id)`. A session replaying an archive therefore
/// gets output bit-identical to the offline batch repair of that archive,
/// regardless of submission order, interleaving with other sessions,
/// thread counts, or plan hot-swaps to an identical plan.
struct RowRequest {
  uint64_t session_id = 0;
  uint64_t row_index = 0;
  /// Categorical group labels; validated against the serving plan's
  /// u_levels()/s_levels() per row.
  int u = 0;
  int s = 0;
  /// Full feature row, length dim(), in feature (k) order.
  std::vector<double> features;
};

/// The repaired row, tagged with the request identity. `status` is OK for
/// a repaired row; on a per-row validation failure `repaired` is empty
/// and `status` says why.
struct RowResponse {
  uint64_t session_id = 0;
  uint64_t row_index = 0;
  std::vector<double> repaired;
  common::Status status;
};

/// Drift-based health verdict of the live plan snapshot.
///
/// The overall state is one of three strings (in `state()` / the JSON
/// "state" field): "healthy", "drifted" (the drift thresholds tripped and
/// no redesign has landed yet), or "degraded" (self-heal exhausted its
/// retries — the service keeps serving the last good snapshot, but an
/// operator should intervene). Degraded dominates drifted.
struct ServiceHealth {
  bool drifted = false;
  /// Self-heal gave up (see RepairService::SetDegraded); serving continues
  /// on the old snapshot. Cleared by the next successful plan reload.
  bool degraded = false;
  double worst_w1 = 0.0;
  double worst_out_of_range = 0.0;
  /// Total values streamed into the drift accumulator since the current
  /// plan snapshot was installed.
  uint64_t values_observed = 0;
  uint64_t plan_version = 1;
  /// Plan hot-swaps served / rejected over the service lifetime.
  uint64_t reloads_total = 0;
  uint64_t reloads_failed = 0;
  /// True when this process recovered its state from a checkpoint at
  /// startup; `recovered_generation` is the generation it loaded.
  bool recovered = false;
  uint64_t recovered_generation = 0;
  /// Checkpoints written / failed over the service lifetime.
  uint64_t checkpoints_written = 0;
  uint64_t checkpoints_failed = 0;

  const char* state() const {
    return degraded ? "degraded" : (drifted ? "drifted" : "healthy");
  }

  std::string ToJson() const;
};

/// Options fixed at service construction. `seed`, `mode` and `strength`
/// define the repair semantics (the offline-equivalence contract binds
/// them); they survive plan reloads.
struct ServiceOptions {
  uint64_t seed = 0x07fa12u;
  core::TransportMode mode = core::TransportMode::kStochastic;
  double strength = 1.0;
  /// Lanes for RepairBatch (0: process default, 1: serial).
  int threads = 0;
  /// Shards of the drift accumulator; more shards = less observation
  /// contention under concurrent traffic.
  size_t drift_shards = 8;
  core::DriftMonitorOptions drift;
  /// Per-channel streaming quantile sketches feed on every
  /// `sketch_sample_every`-th row index (the same 1/16 cadence as batcher
  /// latency sampling, so hot-path cost stays negligible). 0 disables
  /// sketch accumulation (and with it sketch-based redesign).
  uint64_t sketch_sample_every = 16;
  /// Fault-injection spec for the self-heal path (see serve::FaultInjector
  /// for the syntax). Empty defers to the OTFAIR_FAULTS environment
  /// variable; production leaves both unset.
  std::string faults;
  /// Version stamped on the construction-time snapshot. Recovery passes
  /// the checkpointed version here so a recovered process serves (and
  /// reports) the same plan version the pre-crash process did — the
  /// bit-identity contract includes the version a session observed.
  uint64_t initial_plan_version = 1;
};

/// A long-lived, thread-safe repair server over a `RepairPlanSet`.
///
/// The plan, its O(1) sampling tables, and the drift accumulator live in
/// one immutable-by-readers snapshot held through
/// `std::atomic<std::shared_ptr>`:
///
///  - The read path (`RepairRow` / `RepairBatch`) takes no lock — it
///    atomically acquires the current snapshot, repairs against it, and
///    drops the reference. Any number of threads repair concurrently.
///  - `ReloadPlan` builds a complete replacement snapshot off to the side
///    (plan validation + alias tables) and swaps it in with one atomic
///    store. In-flight requests finish on the snapshot they acquired; no
///    request is ever dropped, blocked, or torn by a reload.
///
/// Determinism: repair randomness derives only from
/// `(seed, session_id, row_index)` — never from service state, thread
/// schedule, or snapshot identity — so concurrent serving is bit-
/// identical to offline batch repair per session (see RowRequest).
///
/// Drift: every observed row also feeds a sharded `core::DriftMonitor`;
/// `Health()` merges the shards and applies the configured thresholds, so
/// operators learn when the serving plan has gone stale (the paper's
/// stationarity assumption, §IV/§VI). Reloading a plan resets the
/// accumulator — drift is always judged against the live design.
class RepairService {
 public:
  /// Validates the plans and options and builds the first snapshot.
  static common::Result<std::unique_ptr<RepairService>> Create(
      core::RepairPlanSet plans, const ServiceOptions& options = {});

  ~RepairService();

  RepairService(const RepairService&) = delete;
  RepairService& operator=(const RepairService&) = delete;

  /// The per-session repair seed: session 0 keeps the base seed (a
  /// single-session service is literally the offline batch repairer);
  /// other sessions get decorrelated sub-seeds. Exposed so tests and
  /// clients can construct the equivalent offline repairer.
  uint64_t SessionSeed(uint64_t session_id) const;

  /// Repairs one row. Lock-free on the plan path; thread-safe.
  common::Status RepairRow(const RowRequest& request, RowResponse* response);

  /// Repairs a batch of rows, fanning out over `options.threads` lanes on
  /// the process thread pool. Per-row failures land in the matching
  /// response's `status`; the batch itself always completes. `responses`
  /// is resized to match and its element capacity is reused.
  void RepairBatch(const RowRequest* requests, size_t count,
                   std::vector<RowResponse>* responses);

  /// Atomically replaces the serving plan. The new plan must have the
  /// same dimensionality and |U|/|S| level counts (the group-label wire
  /// contract of live sessions must not change under them). Existing
  /// traffic is never blocked or dropped; requests concurrent with the
  /// swap use whichever snapshot they acquired first. The drift
  /// accumulator (and the streaming sketches) restart against the new
  /// plan, and a successful reload clears any `degraded` verdict.
  ///
  /// Concurrent reloads: calls serialize on an internal mutex (readers
  /// never touch it) and resolve last-writer-wins — each successful call
  /// installs its own plan with a version strictly greater than every
  /// snapshot installed before it, so `plan_version()` is monotone and the
  /// final state is the last caller's plan, never a torn mix. There is no
  /// timeout: a reload blocks only on the preceding reload's snapshot
  /// build (validation + alias tables), which is bounded CPU work, not
  /// I/O. A failed reload (validation error) leaves the serving snapshot
  /// untouched and counts into `reloads_failed`.
  common::Status ReloadPlan(core::RepairPlanSet plans);
  common::Status ReloadPlanFromFile(const std::string& path);

  /// Monotone snapshot version; 1 for the construction-time plan.
  uint64_t plan_version() const;

  size_t dim() const { return dim_; }
  /// Serving group cardinalities, fixed at construction.
  size_t s_levels() const { return s_levels_; }
  size_t u_levels() const { return u_levels_; }
  const ServiceOptions& options() const { return options_; }

  /// Design geometry of the live plan — what an online redesign inherits
  /// so the rebuilt plan set stays drop-in compatible (the level-grid
  /// contract): feature names, the n_Q support resolution, and the
  /// barycentric weights/position.
  struct PlanGeometry {
    std::vector<std::string> feature_names;
    size_t n_q = 0;
    std::vector<double> lambdas;
    double target_t = 0.5;
  };
  PlanGeometry Geometry() const;

  /// Merged drift report over all shards of the live snapshot.
  core::DriftReport DriftSnapshot() const;

  /// Merged per-channel quantile sketches of the live snapshot, indexed
  /// `(u * s_levels + s) * dim + k` (the DriftMonitor state order). Shard
  /// merge order is irrelevant — QuantileSketch::Merge is exactly
  /// commutative/associative — so the result is deterministic for a given
  /// set of observed rows. Empty when `sketch_sample_every` is 0.
  std::vector<stats::QuantileSketch> SketchSnapshot() const;

  /// Restarts every channel sketch of the live snapshot (the drift
  /// accumulator is untouched). The self-heal loop calls this when a drift
  /// episode opens, so the redesign input reflects post-drift traffic only
  /// — sketches accumulated since plan install are dominated by the
  /// pre-shift distribution and would bake the stale mixture into the
  /// redesigned plan. No-op when sketching is disabled.
  void ResetSketches();

  /// Everything the checkpointer persists, captured from ONE atomic
  /// snapshot acquisition so the plan, its version, and the observed
  /// drift/sketch state are mutually coherent even when a reload lands
  /// concurrently (the pieces all describe the same snapshot — a reload
  /// concurrent with the capture is either entirely before or entirely
  /// after it).
  struct CheckpointState {
    uint64_t plan_version = 1;
    bool degraded = false;
    core::RepairPlanSet plans;
    /// Merged drift accumulator (engaged whenever the capture succeeded;
    /// optional only because DriftMonitor has no default construction).
    std::optional<core::DriftMonitor> drift;
    /// Merged channel sketches; empty when sketching is disabled.
    std::vector<stats::QuantileSketch> sketches;
  };
  CheckpointState StateForCheckpoint() const;

  /// Folds checkpointed observed state into the live snapshot (shard 0):
  /// `drift_counts` is a DriftMonitor::SerializeCounts payload, validated
  /// against the live monitor's real geometry before anything mutates;
  /// `sketches` merge channel-wise (the exactly-commutative integer-count
  /// merge, so restoring into a fresh service reproduces the checkpointed
  /// sketches bit-identically). Call once, right after Create, before
  /// traffic. An empty `drift_counts` / `sketches` restores nothing.
  common::Status RestoreObservedState(const std::string& drift_counts,
                                      const std::vector<stats::QuantileSketch>& sketches);

  /// Records that this service was started from a recovered checkpoint
  /// (generation > 0); surfaces in Health().
  void MarkRecovered(uint64_t generation) {
    recovered_generation_.store(generation, std::memory_order_relaxed);
  }
  uint64_t recovered_generation() const {
    return recovered_generation_.load(std::memory_order_relaxed);
  }

  /// Cheap health verdict (thresholds from options.drift).
  ServiceHealth Health() const;

  /// Flags (or clears) the degraded verdict — set by the self-heal loop
  /// after retry exhaustion; cleared automatically by a successful
  /// ReloadPlan. Serving is never interrupted either way.
  void SetDegraded(bool degraded) {
    degraded_.store(degraded, std::memory_order_relaxed);
    metrics_.SetDegraded(degraded);
  }
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

 private:
  struct Snapshot;

  RepairService(size_t dim, size_t s_levels, size_t u_levels, const ServiceOptions& options);

  static common::Result<std::shared_ptr<Snapshot>> BuildSnapshot(
      core::RepairPlanSet plans, const ServiceOptions& options, uint64_t version);

  /// Checks feature count and label ranges, stamping the response's
  /// identity and (on failure) its error status. Shared by the single-row
  /// path and RepairBatch's grouping pass.
  bool ValidateRequest(const RowRequest& request, RowResponse* response) const;

  /// The shared inner row repair; returns false on validation failure.
  /// Drift observation is the caller's job (per-row for RepairRow, one
  /// amortized shard pass per batch for RepairBatch).
  bool RepairRowOnSnapshot(const Snapshot& snap, const RowRequest& request,
                           RowResponse* response) const;

  size_t dim_ = 0;
  size_t s_levels_ = 2;
  size_t u_levels_ = 2;
  ServiceOptions options_;
  Metrics metrics_;
  std::atomic<std::shared_ptr<Snapshot>> snapshot_;
  /// Rotates batches across drift shards (see RepairBatch).
  std::atomic<uint64_t> batch_counter_{0};
  /// Serializes reloads (readers never touch it).
  std::mutex reload_mu_;
  std::atomic<bool> degraded_{false};
  /// Checkpoint generation this process recovered from (0 = cold start).
  std::atomic<uint64_t> recovered_generation_{0};
  /// Scrape callbacks registered on metrics_.registry() (plan version,
  /// per-channel drift levels, sketch fill counts). Declared last so they
  /// unregister before anything they capture is torn down.
  std::vector<obs::CallbackHandle> metric_callbacks_;
};

}  // namespace otfair::serve

#endif  // OTFAIR_SERVE_REPAIR_SERVICE_H_
