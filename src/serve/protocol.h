#ifndef OTFAIR_SERVE_PROTOCOL_H_
#define OTFAIR_SERVE_PROTOCOL_H_

#include <string>

#include "common/result.h"
#include "serve/repair_service.h"

namespace otfair::serve {

/// The newline-delimited request/response protocol `otfair serve` speaks
/// on stdin/stdout. One request per line, whitespace-separated fields:
///
///   repair <session_id> <row_index> <u> <s> <x_1> ... <x_d>
///   metrics              -> one-line JSON metrics snapshot
///   metrics --prom       -> Prometheus text exposition, "# EOF"-terminated
///   health               -> one-line JSON drift/health verdict
///   reload <plan_path>   -> hot-swaps the serving plan
///   checkpoint           -> forces a synchronous checkpoint write
///   quit                 -> drains pending work and exits
///
/// Responses (one line each):
///
///   ok <session_id> <row_index> <y_1> ... <y_d>     repaired row
///   err <session_id> <row_index> <CODE> <message>   per-row failure
///   ok reload <version>                             after a reload
///   ok checkpoint <generation>                      after a forced write
///   {...}                                           metrics / health JSON
///
/// `metrics --prom` is the one multi-line response: the full exposition
/// text followed by a terminating "# EOF" line (a comment under the
/// exposition grammar, so the payload stays checker-clean).
///
/// Repaired values are printed with %.17g, so a round trip through the
/// protocol is bit-exact.

enum class RequestKind { kRepair, kMetrics, kMetricsProm, kHealth, kReload, kCheckpoint, kQuit };

/// Hard ceiling on one request line's length. A well-formed repair line is
/// ~25 bytes per feature, so 64 KiB comfortably covers dim in the
/// thousands; anything longer is garbage (or a protocol abuse) and is
/// rejected with a structured error before tokenization touches it.
inline constexpr size_t kMaxRequestLineBytes = 64 * 1024;

struct ProtocolRequest {
  RequestKind kind = RequestKind::kRepair;
  RowRequest row;         // kRepair
  std::string plan_path;  // kReload
};

/// Parses one request line. `dim` is the serving dimensionality; a repair
/// line must carry exactly `dim` features. `u_levels`/`s_levels` bound the
/// categorical group labels (the binary protocol is u_levels = s_levels =
/// 2). Blank lines are invalid.
///
/// Hardened against garbage input: any malformed line — truncated
/// commands, out-of-range labels, non-numeric or non-finite (nan/inf)
/// feature payloads, oversized lines (> kMaxRequestLineBytes), binary
/// junk — comes back as an InvalidArgument status (rendered by
/// FormatErrorLine into a structured `err` line). Parsing never throws,
/// crashes, or silently coerces a bad field.
common::Result<ProtocolRequest> ParseRequestLine(const std::string& line, size_t dim,
                                                 size_t u_levels = 2, size_t s_levels = 2);

/// Formats the `ok .../err ...` response line for one repaired row
/// (no trailing newline).
std::string FormatRowResponse(const RowResponse& response);

/// Formats a request-level failure (parse errors, rejected submits) as an
/// `err` line; session/row are echoed when known, `-` otherwise.
std::string FormatErrorLine(const common::Status& status);
std::string FormatErrorLine(uint64_t session_id, uint64_t row_index,
                            const common::Status& status);

}  // namespace otfair::serve

#endif  // OTFAIR_SERVE_PROTOCOL_H_
