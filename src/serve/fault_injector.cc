#include "serve/fault_injector.h"

#include <cstdlib>

#include "common/string_util.h"

namespace otfair::serve {

using common::Result;
using common::Status;

namespace {

const char* const kFaultNames[kFaultCount] = {
    "redesign_throw",
    "redesign_timeout",
    "invalid_plan",
    "slow_sketch_merge",
};

bool LookupFault(const std::string& name, Fault* out) {
  for (int i = 0; i < kFaultCount; ++i) {
    if (name == kFaultNames[i]) {
      *out = static_cast<Fault>(i);
      return true;
    }
  }
  return false;
}

}  // namespace

std::string FaultName(Fault fault) { return kFaultNames[static_cast<int>(fault)]; }

FaultInjector::FaultInjector(const FaultInjector& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  budget_ = other.budget_;
  fired_ = other.fired_;
}

FaultInjector& FaultInjector::operator=(const FaultInjector& other) {
  if (this == &other) return *this;
  // Consistent order is irrelevant here: injectors are configured before
  // the threads that consult them start, so assignment never races a
  // ShouldInject on `other` in practice — but lock both for safety.
  std::scoped_lock lock(mu_, other.mu_);
  budget_ = other.budget_;
  fired_ = other.fired_;
  return *this;
}

Result<FaultInjector> FaultInjector::Parse(const std::string& spec) {
  FaultInjector injector;
  if (spec.empty()) return injector;
  size_t entries = 0;
  for (const std::string& raw : common::Split(spec, ',')) {
    const std::string entry = common::Trim(raw);
    if (entry.empty()) continue;
    ++entries;
    const size_t colon = entry.find(':');
    const std::string name = entry.substr(0, colon);
    Fault fault;
    if (!LookupFault(name, &fault))
      return Status::InvalidArgument("unknown fault '" + name +
                                     "' (expected redesign_throw, redesign_timeout, "
                                     "invalid_plan, or slow_sketch_merge)");
    int64_t budget = -1;  // bare name: unlimited
    if (colon != std::string::npos) {
      const std::string count = entry.substr(colon + 1);
      char* end = nullptr;
      const long long v = std::strtoll(count.c_str(), &end, 10);
      if (count.empty() || end == count.c_str() || *end != '\0' || v <= 0)
        return Status::InvalidArgument("bad fault count in '" + entry +
                                       "' (expected name:positive_count)");
      budget = v;
    }
    injector.budget_[static_cast<int>(fault)] = budget;
  }
  // A non-empty spec that names no fault (e.g. ",") is a mistake, and a
  // silently inactive injector is exactly the failure mode the strict
  // parser exists to prevent.
  if (entries == 0)
    return Status::InvalidArgument("fault spec '" + spec + "' names no fault");
  return injector;
}

Result<FaultInjector> FaultInjector::FromEnv() {
  const char* env = std::getenv("OTFAIR_FAULTS");
  return Parse(env == nullptr ? std::string() : std::string(env));
}

bool FaultInjector::ShouldInject(Fault fault) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t& budget = budget_[static_cast<int>(fault)];
  if (budget == 0) return false;
  if (budget > 0) --budget;
  ++fired_[static_cast<int>(fault)];
  return true;
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const int64_t b : budget_)
    if (b != 0) return true;
  return false;
}

uint64_t FaultInjector::fired(Fault fault) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_[static_cast<int>(fault)];
}

}  // namespace otfair::serve
