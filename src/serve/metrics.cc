#include "serve/metrics.h"

#include <cmath>

#include "common/json_writer.h"
#include "obs/prometheus.h"

namespace otfair::serve {

namespace {

/// Legacy quantile estimator kept byte-identical to the pre-registry
/// implementation: nearest-rank over the log-linear buckets, reported as
/// the (fractional) bucket midpoint, never clipped by the observed max.
double LegacyQuantileUs(double q, const obs::Histogram::Snapshot& snap) {
  if (snap.count == 0) return 0.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(snap.count)));
  if (rank < 1) rank = 1;
  if (rank > snap.count) rank = snap.count;
  uint64_t seen = 0;
  for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
    seen += snap.counts[b];
    if (seen >= rank) {
      if (b < 8) return static_cast<double>(b);
      const int exp = 3 + (b - 8) / 8;
      const int sub = (b - 8) % 8;
      const double lo = std::ldexp(1.0 + static_cast<double>(sub) / 8.0, exp);
      const double width = std::ldexp(1.0 / 8.0, exp);
      return lo + width / 2.0;
    }
  }
  return static_cast<double>(obs::Histogram::BucketValueUs(obs::Histogram::kBuckets - 1));
}

obs::Counter* MustCounter(obs::Registry& registry, const char* name, const char* help) {
  return registry.AddCounter(name, help).value();
}

obs::Gauge* MustGauge(obs::Registry& registry, const char* name, const char* help) {
  return registry.AddGauge(name, help).value();
}

}  // namespace

Metrics::Metrics() : start_(std::chrono::steady_clock::now()) {
  rows_accepted_ = MustCounter(registry_, "otfair_serve_rows_accepted_total",
                               "Rows accepted into the service");
  rows_repaired_ = MustCounter(registry_, "otfair_serve_rows_repaired_total",
                               "Rows repaired successfully");
  rows_invalid_ = MustCounter(registry_, "otfair_serve_rows_invalid_total",
                              "Rows that failed per-row validation");
  rows_rejected_ = MustCounter(registry_, "otfair_serve_rows_rejected_total",
                               "Rows rejected at the admission boundary");
  batches_ = MustCounter(registry_, "otfair_serve_batches_total", "RepairBatch executions");
  reloads_ = MustCounter(registry_, "otfair_serve_reloads_total", "Plan hot-swaps served");
  reloads_failed_ = MustCounter(registry_, "otfair_serve_reloads_failed_total",
                                "Plan reloads rejected before swapping");
  checkpoints_written_ = MustCounter(registry_, "otfair_serve_checkpoints_written_total",
                                     "Checkpoints persisted");
  checkpoints_failed_ = MustCounter(registry_, "otfair_serve_checkpoints_failed_total",
                                    "Checkpoint writes that failed");
  redesign_episodes_ = MustCounter(registry_, "otfair_serve_redesign_episodes_total",
                                   "Drift-triggered redesign episodes opened");
  redesign_attempts_ = MustCounter(registry_, "otfair_serve_redesign_attempts_total",
                                   "Redesign attempts (including retries)");
  redesign_failures_ = MustCounter(registry_, "otfair_serve_redesign_failures_total",
                                   "Redesign attempts that failed");
  redesign_reloads_ = MustCounter(registry_, "otfair_serve_redesign_reloads_total",
                                  "Redesigned plans hot-swapped into serving");
  redesign_gave_up_ = MustCounter(registry_, "otfair_serve_redesign_gave_up_total",
                                  "Redesign episodes abandoned after max attempts");
  degraded_gauge_ = MustGauge(registry_, "otfair_serve_degraded",
                              "1 when serving degraded (redesign gave up), else 0");
  queue_depth_gauge_ = MustGauge(registry_, "otfair_serve_queue_depth",
                                 "Pending rows in the batcher queue at last scrape");
  uptime_gauge_ = MustGauge(registry_, "otfair_serve_uptime_seconds",
                            "Seconds since service metrics were created");
  window_p50_gauge_ = MustGauge(registry_, "otfair_serve_latency_window_p50_us",
                                "p50 request latency over the last scrape window (us)");
  window_p90_gauge_ = MustGauge(registry_, "otfair_serve_latency_window_p90_us",
                                "p90 request latency over the last scrape window (us)");
  window_p99_gauge_ = MustGauge(registry_, "otfair_serve_latency_window_p99_us",
                                "p99 request latency over the last scrape window (us)");
  latency_ = registry_
                 .AddHistogram("otfair_serve_latency_us",
                               "Sampled request latency through the batcher path (us)")
                 .value();
}

void Metrics::RecordLatencyUs(double us) {
  if (!(us > 0.0)) us = 0.0;
  latency_->Record(static_cast<uint64_t>(us));
}

void Metrics::FillLegacy(MetricsSnapshot* snap, uint64_t queue_depth) const {
  snap->rows_accepted = rows_accepted_->Value();
  snap->rows_repaired = rows_repaired_->Value();
  snap->rows_invalid = rows_invalid_->Value();
  snap->rows_rejected = rows_rejected_->Value();
  snap->batches = batches_->Value();
  snap->reloads = reloads_->Value();
  snap->reloads_failed = reloads_failed_->Value();
  snap->checkpoints_written = checkpoints_written_->Value();
  snap->checkpoints_failed = checkpoints_failed_->Value();
  snap->queue_depth = queue_depth;
  snap->uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  snap->rows_per_second = snap->uptime_seconds > 0.0
                              ? static_cast<double>(snap->rows_repaired) / snap->uptime_seconds
                              : 0.0;

  const obs::Histogram::Snapshot hist = latency_->Read();
  // The sample total is derived from the bucket reads themselves, so the
  // quantile rank can never exceed the summed counts even when writers
  // land between loads.
  uint64_t samples = 0;
  for (uint64_t c : hist.counts) samples += c;
  obs::Histogram::Snapshot consistent = hist;
  consistent.count = samples;
  snap->latency_samples = samples;
  snap->latency_p50_us = LegacyQuantileUs(0.50, consistent);
  snap->latency_p90_us = LegacyQuantileUs(0.90, consistent);
  snap->latency_p99_us = LegacyQuantileUs(0.99, consistent);
  snap->latency_max_us = static_cast<double>(hist.max);

  snap->degraded = degraded();
  snap->redesign_episodes = redesign_episodes_->Value();
  snap->redesign_attempts = redesign_attempts_->Value();
  snap->redesign_failures = redesign_failures_->Value();
  snap->redesign_reloads = redesign_reloads_->Value();
  snap->redesign_gave_up = redesign_gave_up_->Value();
}

MetricsSnapshot Metrics::Snapshot(uint64_t queue_depth) const {
  MetricsSnapshot snap;
  FillLegacy(&snap, queue_depth);
  std::lock_guard<std::mutex> lock(window_mu_);
  snap.window_latency_samples = window_samples_;
  snap.window_latency_p50_us = window_p50_us_;
  snap.window_latency_p90_us = window_p90_us_;
  snap.window_latency_p99_us = window_p99_us_;
  return snap;
}

MetricsSnapshot Metrics::ScrapeSnapshot(uint64_t queue_depth) {
  MetricsSnapshot snap;
  FillLegacy(&snap, queue_depth);

  std::lock_guard<std::mutex> lock(window_mu_);
  obs::Histogram::Snapshot cur = latency_->Read();
  // Re-derive the count from the buckets for the same writer-race
  // robustness as the lifetime path.
  uint64_t samples = 0;
  for (uint64_t c : cur.counts) samples += c;
  cur.count = samples;
  obs::Histogram::Snapshot window =
      window_base_.counts.empty() ? cur : obs::Histogram::Delta(cur, window_base_);
  window_samples_ = window.count;
  window_p50_us_ = LegacyQuantileUs(0.50, window);
  window_p90_us_ = LegacyQuantileUs(0.90, window);
  window_p99_us_ = LegacyQuantileUs(0.99, window);
  window_base_ = std::move(cur);

  snap.window_latency_samples = window_samples_;
  snap.window_latency_p50_us = window_p50_us_;
  snap.window_latency_p90_us = window_p90_us_;
  snap.window_latency_p99_us = window_p99_us_;

  queue_depth_gauge_->Set(static_cast<double>(queue_depth));
  uptime_gauge_->Set(snap.uptime_seconds);
  window_p50_gauge_->Set(window_p50_us_);
  window_p90_gauge_->Set(window_p90_us_);
  window_p99_gauge_->Set(window_p99_us_);
  return snap;
}

std::string Metrics::RenderPrometheus(uint64_t queue_depth) {
  (void)ScrapeSnapshot(queue_depth);
  return obs::RenderPrometheusText(registry_);
}

std::string MetricsSnapshot::ToJson() const {
  common::JsonWriter w;
  w.BeginObject()
      .Key("rows_accepted").Uint(rows_accepted)
      .Key("rows_repaired").Uint(rows_repaired)
      .Key("rows_invalid").Uint(rows_invalid)
      .Key("rows_rejected").Uint(rows_rejected)
      .Key("batches").Uint(batches)
      .Key("reloads").Uint(reloads)
      .Key("reloads_failed").Uint(reloads_failed)
      .Key("checkpoints_written").Uint(checkpoints_written)
      .Key("checkpoints_failed").Uint(checkpoints_failed)
      .Key("queue_depth").Uint(queue_depth)
      .Key("uptime_seconds").Double(uptime_seconds)
      .Key("rows_per_second").Double(rows_per_second)
      .Key("latency_samples").Uint(latency_samples)
      .Key("latency_p50_us").Double(latency_p50_us)
      .Key("latency_p90_us").Double(latency_p90_us)
      .Key("latency_p99_us").Double(latency_p99_us)
      .Key("latency_max_us").Double(latency_max_us)
      .Key("degraded").Bool(degraded)
      .Key("redesign_episodes").Uint(redesign_episodes)
      .Key("redesign_attempts").Uint(redesign_attempts)
      .Key("redesign_failures").Uint(redesign_failures)
      .Key("redesign_reloads").Uint(redesign_reloads)
      .Key("redesign_gave_up").Uint(redesign_gave_up)
      .Key("window_latency_samples").Uint(window_latency_samples)
      .Key("window_latency_p50_us").Double(window_latency_p50_us)
      .Key("window_latency_p90_us").Double(window_latency_p90_us)
      .Key("window_latency_p99_us").Double(window_latency_p99_us)
      .EndObject();
  return w.str();
}

}  // namespace otfair::serve
