#include "serve/metrics.h"

#include <bit>
#include <cmath>

#include "common/json_writer.h"

namespace otfair::serve {

size_t Metrics::BucketIndex(uint64_t us) {
  // Slots 0..7 are exact for [0, 8); above that, 8 linear sub-buckets per
  // power of two: bucket = 8 + 8 * (exp - 3) + top-3-bits-below-leading.
  if (us < 8) return static_cast<size_t>(us);
  const int exp = 63 - std::countl_zero(us);  // >= 3
  const size_t sub = static_cast<size_t>((us >> (exp - 3)) & 0x7u);
  size_t bucket = 8 + 8 * static_cast<size_t>(exp - 3) + sub;
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  return bucket;
}

double Metrics::BucketValueUs(size_t bucket) {
  if (bucket < 8) return static_cast<double>(bucket);
  const size_t exp = 3 + (bucket - 8) / 8;
  const size_t sub = (bucket - 8) % 8;
  const double lo = std::ldexp(1.0 + static_cast<double>(sub) / 8.0, static_cast<int>(exp));
  const double width = std::ldexp(1.0 / 8.0, static_cast<int>(exp));
  return lo + width / 2.0;
}

void Metrics::RecordLatencyUs(double us) {
  if (!(us > 0.0)) us = 0.0;
  const uint64_t v = static_cast<uint64_t>(us);
  latency_buckets_[BucketIndex(v)].fetch_add(1, kRelaxed);
  // Racy max update is fine: losing an update can only under-report by
  // one concurrent sample.
  uint64_t seen = latency_max_us_.load(kRelaxed);
  while (v > seen && !latency_max_us_.compare_exchange_weak(seen, v, kRelaxed)) {
  }
}

double Metrics::QuantileUs(double q, uint64_t samples,
                           const std::array<uint64_t, kBuckets>& counts) const {
  if (samples == 0) return 0.0;
  // Nearest-rank: the smallest value with at least ceil(q * n) samples at
  // or below it.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(samples)));
  if (rank < 1) rank = 1;
  if (rank > samples) rank = samples;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) return BucketValueUs(b);
  }
  return BucketValueUs(kBuckets - 1);
}

MetricsSnapshot Metrics::Snapshot(uint64_t queue_depth) const {
  MetricsSnapshot snap;
  snap.rows_accepted = rows_accepted_.load(kRelaxed);
  snap.rows_repaired = rows_repaired_.load(kRelaxed);
  snap.rows_invalid = rows_invalid_.load(kRelaxed);
  snap.rows_rejected = rows_rejected_.load(kRelaxed);
  snap.batches = batches_.load(kRelaxed);
  snap.reloads = reloads_.load(kRelaxed);
  snap.reloads_failed = reloads_failed_.load(kRelaxed);
  snap.checkpoints_written = checkpoints_written_.load(kRelaxed);
  snap.checkpoints_failed = checkpoints_failed_.load(kRelaxed);
  snap.queue_depth = queue_depth;
  snap.uptime_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  snap.rows_per_second =
      snap.uptime_seconds > 0.0 ? static_cast<double>(snap.rows_repaired) / snap.uptime_seconds : 0.0;

  std::array<uint64_t, kBuckets> counts;
  uint64_t samples = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    counts[b] = latency_buckets_[b].load(kRelaxed);
    samples += counts[b];
  }
  // The sample total is derived from the bucket reads themselves, so the
  // quantile rank can never exceed the summed counts even when writers
  // land between loads.
  snap.latency_samples = samples;
  snap.latency_p50_us = QuantileUs(0.50, snap.latency_samples, counts);
  snap.latency_p90_us = QuantileUs(0.90, snap.latency_samples, counts);
  snap.latency_p99_us = QuantileUs(0.99, snap.latency_samples, counts);
  snap.latency_max_us = static_cast<double>(latency_max_us_.load(kRelaxed));
  return snap;
}

std::string MetricsSnapshot::ToJson() const {
  common::JsonWriter w;
  w.BeginObject()
      .Key("rows_accepted").Uint(rows_accepted)
      .Key("rows_repaired").Uint(rows_repaired)
      .Key("rows_invalid").Uint(rows_invalid)
      .Key("rows_rejected").Uint(rows_rejected)
      .Key("batches").Uint(batches)
      .Key("reloads").Uint(reloads)
      .Key("reloads_failed").Uint(reloads_failed)
      .Key("checkpoints_written").Uint(checkpoints_written)
      .Key("checkpoints_failed").Uint(checkpoints_failed)
      .Key("queue_depth").Uint(queue_depth)
      .Key("uptime_seconds").Double(uptime_seconds)
      .Key("rows_per_second").Double(rows_per_second)
      .Key("latency_samples").Uint(latency_samples)
      .Key("latency_p50_us").Double(latency_p50_us)
      .Key("latency_p90_us").Double(latency_p90_us)
      .Key("latency_p99_us").Double(latency_p99_us)
      .Key("latency_max_us").Double(latency_max_us)
      .EndObject();
  return w.str();
}

}  // namespace otfair::serve
