#ifndef OTFAIR_SERVE_FAULT_INJECTOR_H_
#define OTFAIR_SERVE_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"

namespace otfair::serve {

/// Failure modes the self-heal path can be forced through. Each names one
/// seam in the redesign pipeline; see Redesigner for where they fire.
enum class Fault : int {
  /// AttemptRedesign fails outright before designing (models a designer
  /// crash / thrown exception surfaced as a Status).
  kRedesignThrow = 0,
  /// The redesign sleeps past its deadline, exercising the cooperative
  /// timeout (late results are discarded, never installed).
  kRedesignTimeout = 1,
  /// The candidate plan is reported invalid at validation, exercising the
  /// reject-and-keep-serving path.
  kInvalidPlan = 2,
  /// Sketch snapshot/merge is artificially slowed (20 ms per injection),
  /// exercising deadline pressure from the stats side.
  kSlowSketchMerge = 3,
};
inline constexpr int kFaultCount = 4;

/// Runtime fault injection for the serving self-heal path. Compiled in
/// always (no ifdef'd test-only seams); disabled by default and armed via a
/// spec string from `ServiceOptions::faults` or the `OTFAIR_FAULTS`
/// environment variable.
///
/// Spec syntax: comma-separated `name` or `name:count` entries, e.g.
/// `"redesign_throw"` (fires every time) or `"redesign_throw:2,invalid_plan:1"`
/// (fires the first N opportunities, then disarms). Names: redesign_throw,
/// redesign_timeout, invalid_plan, slow_sketch_merge. Unknown names are a
/// parse error — a typo must not silently disable a fault leg.
///
/// `ShouldInject` is thread-safe and consumes one unit of a counted budget
/// per true return.
class FaultInjector {
 public:
  /// Inactive injector (every ShouldInject returns false).
  FaultInjector() = default;

  FaultInjector(const FaultInjector& other);
  FaultInjector& operator=(const FaultInjector& other);

  /// Parses a spec string (see class comment). Empty spec = inactive.
  static common::Result<FaultInjector> Parse(const std::string& spec);

  /// Parses `OTFAIR_FAULTS` from the environment; unset/empty = inactive.
  /// A malformed env spec is an error (surfaced, not ignored).
  static common::Result<FaultInjector> FromEnv();

  /// True if the fault is armed; consumes one unit of a counted budget.
  bool ShouldInject(Fault fault);

  /// True if any fault is still armed.
  bool armed() const;

  /// Times ShouldInject returned true for `fault` (for tests/logging).
  uint64_t fired(Fault fault) const;

 private:
  mutable std::mutex mu_;
  /// Remaining budget per fault: 0 = disarmed, -1 = unlimited.
  std::array<int64_t, kFaultCount> budget_{};
  std::array<uint64_t, kFaultCount> fired_{};
};

/// The spec name for a fault (inverse of the parser's table).
std::string FaultName(Fault fault);

}  // namespace otfair::serve

#endif  // OTFAIR_SERVE_FAULT_INJECTOR_H_
