#ifndef OTFAIR_SERVE_REDESIGNER_H_
#define OTFAIR_SERVE_REDESIGNER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/designer.h"
#include "serve/fault_injector.h"
#include "serve/repair_service.h"

namespace otfair::serve {

/// Knobs of the self-heal loop. The defaults favour stability over
/// reaction speed: one poll every 200 ms, three attempts per drift episode
/// with doubling backoff, and a cooldown after every episode so a stream
/// oscillating around the drift threshold cannot flap the plan.
struct RedesignerOptions {
  /// Health-poll cadence of the background thread.
  int poll_interval_ms = 200;
  /// Quiet period after an episode (successful or exhausted) before drift
  /// is judged again.
  int cooldown_ms = 5000;
  /// Redesign attempts per drift episode before declaring `degraded`.
  int max_retries = 3;
  /// Backoff before the 2nd attempt; doubles per retry, capped below.
  int backoff_initial_ms = 250;
  int backoff_max_ms = 5000;
  /// Cooperative wall-clock deadline for one redesign attempt (sketch
  /// snapshot + design + validation). Checked between stages: a late
  /// result is discarded, never installed.
  int redesign_timeout_ms = 30000;
  /// Minimum sketch observations per (u, s, k) channel before a redesign
  /// is attempted; below it the loop keeps waiting (drift stays flagged)
  /// rather than burning retry budget on thin data.
  uint64_t min_channel_count = 32;
  /// How long an episode waits for post-drift sketches to ripen before
  /// falling back to the pre-trip sketch snapshot. A live stream ripens
  /// fresh sketches well inside this and gets a pure post-shift redesign;
  /// a stream that went quiet right after tripping (e.g. a finite replay
  /// draining) falls back to the stashed mixture — which still contains
  /// the drifted suffix — instead of waiting forever.
  int fresh_sketch_wait_ms = 2000;
  /// Designer knobs for the rebuilt plan. Grid resolution (n_q), lambdas
  /// and target_t are always inherited from the live plan so the
  /// replacement is drop-in compatible; the solver/marginal/pseudo-sample
  /// fields apply as-is.
  core::DesignOptions design;
  /// Fault-injection spec (see FaultInjector). Empty falls back to
  /// `ServiceOptions::faults`, then the OTFAIR_FAULTS environment
  /// variable.
  std::string faults;
};

/// Counters of the self-heal loop (monotone over the redesigner lifetime).
struct RedesignerStats {
  /// Drift episodes started (ready sketches + tripped thresholds).
  uint64_t drift_trips = 0;
  /// Redesign attempts, including retries.
  uint64_t attempts = 0;
  /// Failed attempts (any stage: snapshot, design, validation, reload).
  uint64_t failures = 0;
  /// Successful redesign hot-swaps.
  uint64_t reloads = 0;
  /// Episodes that exhausted every retry and flagged `degraded`.
  uint64_t gave_up = 0;
};

/// The self-healing loop: a background thread that watches the service's
/// drift verdict and, when it trips, rebuilds the repair plan from the
/// streaming quantile sketches and hot-swaps it — no raw-row retention, no
/// restart, no dropped requests.
///
/// One drift episode runs: restart the channel sketches (so the redesign
/// sees post-drift traffic only, not the stale mixture accumulated since
/// plan install) -> wait until every channel ripens past
/// `min_channel_count` -> snapshot sketches -> DesignFromQuantileFunctions
/// (inheriting the live plan's geometry) -> validate (structural Validate,
/// sketch-fit W1 must clear the drift threshold AND improve on the current
/// drift level) -> ReloadPlan. Failures retry with exponential backoff up
/// to `max_retries`; the old snapshot serves untouched throughout, and
/// exhaustion flags the service `degraded` instead of dying. A successful
/// reload resets the drift accumulator and sketches by construction (they
/// live in the plan snapshot), and the episode cooldown guards against
/// flapping. Degraded is sticky until the next successful reload (the
/// loop's own later success, after cooldown, or an operator `reload`).
class Redesigner {
 public:
  /// Validates options, resolves the fault spec and starts the thread.
  /// `service` must outlive the redesigner.
  static common::Result<std::unique_ptr<Redesigner>> Create(
      RepairService* service, const RedesignerOptions& options = {});

  ~Redesigner();

  Redesigner(const Redesigner&) = delete;
  Redesigner& operator=(const Redesigner&) = delete;

  /// Stops and joins the background thread (idempotent).
  void Stop();

  RedesignerStats stats() const;

  /// True while a drift episode is being worked (redesign or backoff in
  /// progress). Replay drivers drain on this before judging final health.
  bool busy() const { return busy_.load(std::memory_order_relaxed); }

  /// True from the moment a drift episode opens (sketches stashed and
  /// restarted) until it closes (reload landed, retries exhausted, or the
  /// drift verdict cleared on its own). The checkpointer records this so a
  /// post-crash operator can see the crash landed mid-episode; recovery
  /// restarts the episode from the restored drift accumulators.
  bool episode_open() const { return episode_open_.load(std::memory_order_relaxed); }

  /// Last attempt failure (Ok if none); for logs and tests.
  common::Status last_error() const;

  /// One synchronous redesign attempt — the unit the background loop
  /// retries. Public for tests and the redesign_to_reload benchmark; the
  /// background loop calls exactly this. `sketches_override`, when given,
  /// replaces the live sketch snapshot as the design input (the loop's
  /// stale-stream fallback); the caller keeps ownership.
  common::Status AttemptRedesign(
      const std::vector<stats::QuantileSketch>* sketches_override = nullptr);

 private:
  Redesigner(RepairService* service, const RedesignerOptions& options,
             FaultInjector faults);

  void Loop();
  /// One poll: cooldown/degraded/drift checks, then a full episode
  /// (attempts + backoff) if drift tripped and sketches are ready.
  void StepOnce();
  /// Interruptible sleep; returns false if stopped while waiting.
  bool SleepUnlessStopped(int ms);

  RepairService* service_;
  RedesignerOptions options_;
  FaultInjector faults_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  /// Episode-open state (loop thread only). See StepOnce: a tripped
  /// monitor first stashes and resets the sketches, then waits for
  /// post-drift traffic to ripen fresh ones — falling back to the stash
  /// after `fresh_sketch_wait_ms` if the stream went quiet.
  bool fresh_sketches_ = false;
  std::vector<stats::QuantileSketch> stashed_sketches_;
  std::chrono::steady_clock::time_point fresh_since_;
  RedesignerStats stats_;
  common::Status last_error_;
  std::chrono::steady_clock::time_point cooldown_until_;

  std::atomic<bool> busy_{false};
  std::atomic<bool> episode_open_{false};
  /// Backoff currently being served between attempts (0 outside an
  /// episode); feeds the backoff gauge.
  std::atomic<int> current_backoff_ms_{0};
  std::thread thread_;
  /// Episode/backoff gauges on the service registry; declared last so
  /// they unregister first.
  std::vector<obs::CallbackHandle> metric_callbacks_;
};

}  // namespace otfair::serve

#endif  // OTFAIR_SERVE_REDESIGNER_H_
