#include "serve/redesigner.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "core/drift_monitor.h"
#include "obs/trace.h"
#include "ot/measure.h"

namespace otfair::serve {

using common::Result;
using common::Status;

namespace {

using Clock = std::chrono::steady_clock;

/// Normalized W1 between the sketch's streamed distribution and a design
/// marginal, both expressed on the marginal's grid — the same statistic
/// (and normalization) DriftMonitor judges the live plan by, so the
/// candidate's fit is directly comparable to the drift level that
/// triggered the redesign.
double SketchFitW1(const stats::QuantileSketch& sketch, const core::SupportGrid& grid,
                   const ot::DiscreteMeasure& marginal) {
  const std::vector<double>& points = grid.points();
  const size_t n = points.size();
  if (n < 2 || sketch.count() == 0) return 0.0;
  double gap_sum = 0.0;
  double cum_design = 0.0;
  for (size_t i = 0; i + 1 < n; ++i) {
    // CDF at the midpoint between states i and i+1: every streamed value
    // below it bins to state <= i (nearest-state binning, as the drift
    // histogram does). Out-of-range mass clamps into the end states.
    const double cum_stream = sketch.Cdf(0.5 * (points[i] + points[i + 1]));
    cum_design += marginal.weight_at(i);
    gap_sum += std::fabs(cum_stream - cum_design);
  }
  const double span = grid.hi() - grid.lo();
  return span > 0.0 ? grid.step() * gap_sum / span : 0.0;
}

}  // namespace

Redesigner::Redesigner(RepairService* service, const RedesignerOptions& options,
                       FaultInjector faults)
    : service_(service), options_(options), faults_(std::move(faults)) {
  cooldown_until_ = Clock::now();
}

Result<std::unique_ptr<Redesigner>> Redesigner::Create(RepairService* service,
                                                       const RedesignerOptions& options) {
  if (service == nullptr) return Status::InvalidArgument("service must not be null");
  if (options.poll_interval_ms <= 0)
    return Status::InvalidArgument("poll_interval_ms must be >= 1");
  if (options.max_retries < 1) return Status::InvalidArgument("max_retries must be >= 1");
  if (options.backoff_initial_ms < 0 || options.backoff_max_ms < options.backoff_initial_ms)
    return Status::InvalidArgument("backoff must satisfy 0 <= initial <= max");
  if (options.redesign_timeout_ms <= 0)
    return Status::InvalidArgument("redesign_timeout_ms must be >= 1");
  if (options.cooldown_ms < 0) return Status::InvalidArgument("cooldown_ms must be >= 0");
  if (options.fresh_sketch_wait_ms < 0)
    return Status::InvalidArgument("fresh_sketch_wait_ms must be >= 0");
  if (service->options().sketch_sample_every == 0)
    return Status::FailedPrecondition(
        "service has sketch_sample_every = 0: no streaming sketches to redesign from");
  // Fault spec precedence: redesigner options, then service options, then
  // the OTFAIR_FAULTS environment.
  Result<FaultInjector> faults =
      !options.faults.empty()
          ? FaultInjector::Parse(options.faults)
          : (!service->options().faults.empty()
                 ? FaultInjector::Parse(service->options().faults)
                 : FaultInjector::FromEnv());
  if (!faults.ok()) return faults.status();
  std::unique_ptr<Redesigner> redesigner(
      new Redesigner(service, options, std::move(*faults)));
  // Best-effort gauges (a second redesigner on the same service keeps
  // running; only the first one's gauges register).
  Redesigner* raw = redesigner.get();
  obs::Registry& registry = service->metrics().registry();
  auto episode_cb = registry.AddCallback(
      "otfair_serve_redesign_episode_open", "1 while a drift episode is open, else 0",
      obs::MetricKind::kGauge, [raw] {
        return std::vector<obs::MetricSample>{{"", raw->episode_open() ? 1.0 : 0.0}};
      });
  if (episode_cb.ok()) redesigner->metric_callbacks_.push_back(std::move(*episode_cb));
  auto busy_cb = registry.AddCallback(
      "otfair_serve_redesign_busy", "1 while a redesign attempt or backoff runs, else 0",
      obs::MetricKind::kGauge, [raw] {
        return std::vector<obs::MetricSample>{{"", raw->busy() ? 1.0 : 0.0}};
      });
  if (busy_cb.ok()) redesigner->metric_callbacks_.push_back(std::move(*busy_cb));
  auto backoff_cb = registry.AddCallback(
      "otfair_serve_redesign_backoff_ms",
      "Backoff being served between redesign attempts (0 outside an episode)",
      obs::MetricKind::kGauge, [raw] {
        return std::vector<obs::MetricSample>{
            {"", static_cast<double>(raw->current_backoff_ms_.load(std::memory_order_relaxed))}};
      });
  if (backoff_cb.ok()) redesigner->metric_callbacks_.push_back(std::move(*backoff_cb));
  redesigner->thread_ = std::thread([r = redesigner.get()] { r->Loop(); });
  return redesigner;
}

Redesigner::~Redesigner() { Stop(); }

void Redesigner::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

RedesignerStats Redesigner::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status Redesigner::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

bool Redesigner::SleepUnlessStopped(int ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(ms), [&] { return stop_; });
  return !stop_;
}

void Redesigner::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_interval_ms),
                   [&] { return stop_; });
      if (stop_) return;
    }
    StepOnce();
  }
}

void Redesigner::StepOnce() {
  if (Clock::now() < [&] {
        std::lock_guard<std::mutex> lock(mu_);
        return cooldown_until_;
      }())
    return;
  // Degraded is sticky: the loop stands down until a successful reload
  // (operator `reload`, or this loop's own later success is impossible —
  // it gave up) clears the flag on the service.
  if (service_->degraded()) return;
  if (!service_->Health().drifted) {
    fresh_sketches_ = false;
    episode_open_.store(false, std::memory_order_relaxed);
    return;
  }
  // A drift episode opens: stash the accumulated sketches and restart
  // them, so the redesign input reflects post-drift traffic only.
  // Sketches accumulated since plan install are dominated by the
  // pre-shift distribution — designing from that mixture would install a
  // plan the ongoing stream immediately drifts against.
  if (!fresh_sketches_) {
    stashed_sketches_ = service_->SketchSnapshot();
    service_->ResetSketches();
    fresh_since_ = Clock::now();
    fresh_sketches_ = true;
    episode_open_.store(true, std::memory_order_relaxed);
    return;
  }
  // Thin sketches: drift tripped but the restarted sketches haven't seen
  // enough sampled rows per channel yet. Keep waiting — burning the retry
  // budget here would flag degraded on a stream that merely needs time.
  // If the stream went quiet instead (a finite replay draining after the
  // shift), fall back to the pre-trip stash after `fresh_sketch_wait_ms`:
  // it still contains the drifted suffix, and a mixture-fit plan beats
  // waiting forever on traffic that will never come.
  const std::vector<stats::QuantileSketch>* sketches_override = nullptr;
  {
    const std::vector<stats::QuantileSketch> sketches = service_->SketchSnapshot();
    const uint64_t need =
        std::max<uint64_t>(options_.min_channel_count, options_.design.min_group_size);
    bool ripe = true;
    for (const stats::QuantileSketch& sketch : sketches)
      if (sketch.count() < need) {
        ripe = false;
        break;
      }
    if (!ripe) {
      if (Clock::now() <
          fresh_since_ + std::chrono::milliseconds(options_.fresh_sketch_wait_ms))
        return;
      sketches_override = &stashed_sketches_;
    }
  }

  // A drift episode: attempt, retry with doubling backoff, and either
  // hot-swap or flag degraded. The serving snapshot is untouched by
  // everything except a successful ReloadPlan.
  OTFAIR_TRACE_SPAN("redesign_episode");
  busy_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.drift_trips;
  }
  service_->metrics().AddRedesignEpisode();
  Status status;
  int backoff_ms = options_.backoff_initial_ms;
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) break;
      ++stats_.attempts;
    }
    service_->metrics().AddRedesignAttempt();
    status = AttemptRedesign(sketches_override);
    if (status.ok()) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failures;
      last_error_ = status;
    }
    service_->metrics().AddRedesignFailure();
    if (attempt + 1 < options_.max_retries) {
      current_backoff_ms_.store(backoff_ms, std::memory_order_relaxed);
      const bool keep_going = SleepUnlessStopped(backoff_ms);
      current_backoff_ms_.store(0, std::memory_order_relaxed);
      if (!keep_going) break;
    }
    backoff_ms = std::min(backoff_ms > 0 ? backoff_ms * 2 : 1, options_.backoff_max_ms);
  }
  bool stopped_mid_episode = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_mid_episode = stop_;
    if (status.ok()) {
      ++stats_.reloads;
    } else if (!stopped_mid_episode) {
      ++stats_.gave_up;
    }
    cooldown_until_ = Clock::now() + std::chrono::milliseconds(options_.cooldown_ms);
  }
  if (status.ok()) {
    service_->metrics().AddRedesignReload();
  } else if (!stopped_mid_episode) {
    service_->metrics().AddRedesignGaveUp();
  }
  // Exhausted every retry: degrade — but keep serving. A Stop() mid-episode
  // is not a verdict.
  if (!status.ok() && !stopped_mid_episode) service_->SetDegraded(true);
  // The episode is over either way; the next one starts from fresh
  // sketches again (a successful reload already reset them structurally).
  fresh_sketches_ = false;
  stashed_sketches_.clear();
  episode_open_.store(false, std::memory_order_relaxed);
  busy_.store(false, std::memory_order_relaxed);
}

Status Redesigner::AttemptRedesign(
    const std::vector<stats::QuantileSketch>* sketches_override) {
  OTFAIR_TRACE_SPAN("redesign_attempt");
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options_.redesign_timeout_ms);
  auto past_deadline = [&] { return Clock::now() > deadline; };

  if (faults_.ShouldInject(Fault::kRedesignThrow))
    return Status::Internal("injected fault: redesign throw");
  if (faults_.ShouldInject(Fault::kSlowSketchMerge))
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Stage 1: bounded-memory inputs. The sketch snapshot and the drift
  // level the candidate must beat are taken back to back, so both describe
  // the same serving snapshot (a concurrent reload would reset both).
  std::vector<stats::QuantileSketch> sketches =
      sketches_override != nullptr ? *sketches_override : service_->SketchSnapshot();
  if (sketches.empty())
    return Status::FailedPrecondition("sketches disabled; cannot redesign from stream");
  const core::DriftReport current = service_->DriftSnapshot();

  if (faults_.ShouldInject(Fault::kRedesignTimeout))
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.redesign_timeout_ms + 20));
  if (past_deadline())
    return Status::Unavailable("redesign exceeded " +
                               std::to_string(options_.redesign_timeout_ms) +
                               " ms deadline after sketch snapshot; result discarded");

  // Stage 2: rebuild through the designer, inheriting the live plan's
  // geometry so the replacement is drop-in compatible.
  const RepairService::PlanGeometry geometry = service_->Geometry();
  core::DesignOptions design = options_.design;
  design.n_q = geometry.n_q;
  design.lambdas = geometry.lambdas;
  design.target_t = geometry.target_t;

  const size_t dim = service_->dim();
  const size_t s_levels = service_->s_levels();
  auto shared =
      std::make_shared<const std::vector<stats::QuantileSketch>>(std::move(sketches));
  std::vector<core::StreamChannelQuantiles> channels(shared->size());
  for (size_t c = 0; c < shared->size(); ++c) {
    channels[c].count = (*shared)[c].count();
    channels[c].quantile = [shared, c](double p) { return (*shared)[c].Quantile(p); };
  }
  auto candidate = [&] {
    OTFAIR_TRACE_SPAN("redesign_design");
    return core::DesignFromQuantileFunctions(dim, geometry.feature_names, s_levels,
                                             service_->u_levels(), channels, design);
  }();
  if (!candidate.ok()) return candidate.status();
  if (past_deadline())
    return Status::Unavailable("redesign exceeded " +
                               std::to_string(options_.redesign_timeout_ms) +
                               " ms deadline after design; result discarded");

  // Stage 3: validation. Structural invariants, then the fit gate: the
  // candidate's own drift statistic against the streamed distribution must
  // clear the drift threshold AND improve on the current plan's drift
  // level (the E-improvement proxy — both are the normalized W1 the
  // monitor alarms on; the integration test closes the loop on the real
  // E-metric).
  if (Status validate_status = [&]() -> Status {
        OTFAIR_TRACE_SPAN("redesign_validate");
        if (faults_.ShouldInject(Fault::kInvalidPlan))
          return Status::FailedPrecondition("injected fault: candidate plan invalid");
        if (Status status = candidate->Validate(1e-5); !status.ok())
          return Status::FailedPrecondition("candidate plan failed validation: " +
                                            status.message());
        double worst_fit = 0.0;
        const size_t u_levels = service_->u_levels();
        for (size_t u = 0; u < u_levels; ++u) {
          for (size_t k = 0; k < dim; ++k) {
            const core::ChannelPlan& channel = candidate->At(static_cast<int>(u), k);
            for (size_t s = 0; s < s_levels; ++s) {
              const double fit = SketchFitW1((*shared)[(u * s_levels + s) * dim + k],
                                             channel.grid, channel.marginal[s]);
              worst_fit = std::max(worst_fit, fit);
            }
          }
        }
        const double threshold = service_->options().drift.w1_threshold;
        if (worst_fit > threshold)
          return Status::FailedPrecondition(
              "candidate plan still drifted against the stream (worst W1 " +
              std::to_string(worst_fit) + " > threshold " + std::to_string(threshold) + ")");
        if (current.drifted && worst_fit >= current.worst_w1)
          return Status::FailedPrecondition(
              "candidate plan does not improve on the live plan (worst W1 " +
              std::to_string(worst_fit) + " vs current " +
              std::to_string(current.worst_w1) + ")");
        return Status::Ok();
      }();
      !validate_status.ok())
    return validate_status;
  if (past_deadline())
    return Status::Unavailable("redesign exceeded " +
                               std::to_string(options_.redesign_timeout_ms) +
                               " ms deadline after validation; result discarded");

  // Stage 4: the hot swap (also clears any degraded verdict).
  return service_->ReloadPlan(std::move(*candidate));
}

}  // namespace otfair::serve
