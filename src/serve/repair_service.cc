#include "serve/repair_service.h"

#include <utility>

#include "common/byte_io.h"
#include "common/json_writer.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace otfair::serve {

using common::Result;
using common::Status;

/// The unit of hot-swap: everything a request needs, built once per
/// (re)load and immutable afterwards except the internally-locked drift
/// shards. Readers hold it through shared_ptr, so a snapshot outlives the
/// swap for as long as any in-flight request still uses it.
struct RepairService::Snapshot {
  core::OffSampleRepairer repairer;
  uint64_t version;

  struct DriftShard {
    std::mutex mu;
    core::DriftMonitor monitor;
    /// Per-channel streaming quantile sketches (same (u, s, k) state order
    /// as the monitor), fed on sampled rows under the same shard lock.
    /// Empty when sketching is disabled.
    std::vector<stats::QuantileSketch> sketches;
    explicit DriftShard(core::DriftMonitor m) : monitor(std::move(m)) {}

    /// One valid row into the drift histograms and (on sampled row
    /// indices) the quantile sketches. Sampling keys off the request's
    /// row_index — deterministic in the request identity, so replays
    /// sketch identically regardless of interleaving. Caller holds `mu`.
    void ObserveRow(const RowRequest& request, size_t dim, size_t s_levels,
                    uint64_t sketch_every) {
      for (size_t k = 0; k < dim; ++k)
        monitor.Observe(request.u, request.s, k, request.features[k]);
      if (sketches.empty()) return;
      // Sampling keys off row_index alone, so the hot path pays one mask
      // (the default cadence 16 — any power of two — avoids the 64-bit
      // modulo) and the 15/16 unsampled rows skip the sketch loop cold.
      const bool sampled = (sketch_every & (sketch_every - 1)) == 0
                               ? (request.row_index & (sketch_every - 1)) == 0
                               : request.row_index % sketch_every == 0;
      if (!sampled) return;
      const size_t base = (static_cast<size_t>(request.u) * s_levels +
                           static_cast<size_t>(request.s)) *
                          dim;
      for (size_t k = 0; k < dim; ++k) sketches[base + k].Add(request.features[k]);
    }
  };
  /// unique_ptr per shard: mutexes are neither movable nor copyable.
  std::vector<std::unique_ptr<DriftShard>> drift_shards;

  Snapshot(core::OffSampleRepairer r, uint64_t v) : repairer(std::move(r)), version(v) {}

  /// Stable shard choice for a request identity (any deterministic spread
  /// works — this only balances lock contention).
  size_t ShardFor(uint64_t session_id, uint64_t row_index) const {
    uint64_t h = row_index * 0x9e3779b97f4a7c15ULL + session_id;
    h ^= h >> 29;
    return static_cast<size_t>(h % drift_shards.size());
  }
};

std::string ServiceHealth::ToJson() const {
  common::JsonWriter w;
  w.BeginObject()
      .Key("healthy").Bool(!drifted && !degraded)
      .Key("state").String(state())
      .Key("drifted").Bool(drifted)
      .Key("degraded").Bool(degraded)
      .Key("worst_w1").Double(worst_w1)
      .Key("worst_out_of_range").Double(worst_out_of_range)
      .Key("values_observed").Uint(values_observed)
      .Key("plan_version").Uint(plan_version)
      .Key("reloads_total").Uint(reloads_total)
      .Key("reloads_failed").Uint(reloads_failed)
      .Key("recovered").Bool(recovered)
      .Key("recovered_generation").Uint(recovered_generation)
      .Key("checkpoints_written").Uint(checkpoints_written)
      .Key("checkpoints_failed").Uint(checkpoints_failed)
      .EndObject();
  return w.str();
}

RepairService::RepairService(size_t dim, size_t s_levels, size_t u_levels,
                             const ServiceOptions& options)
    : dim_(dim), s_levels_(s_levels), u_levels_(u_levels), options_(options) {}

RepairService::~RepairService() = default;

Result<std::shared_ptr<RepairService::Snapshot>> RepairService::BuildSnapshot(
    core::RepairPlanSet plans, const ServiceOptions& options, uint64_t version) {
  core::RepairOptions repair_options;
  repair_options.seed = options.seed;  // unused: serving supplies per-row rngs
  repair_options.mode = options.mode;
  repair_options.strength = options.strength;
  repair_options.threads = options.threads;
  // The drift monitors copy what they need from the plans before the
  // repairer takes ownership.
  const size_t sketch_channels =
      options.sketch_sample_every > 0 ? plans.u_levels() * plans.s_levels() * plans.dim() : 0;
  std::vector<std::unique_ptr<Snapshot::DriftShard>> shards;
  shards.reserve(options.drift_shards);
  for (size_t i = 0; i < options.drift_shards; ++i) {
    auto monitor = core::DriftMonitor::Create(plans, options.drift);
    if (!monitor.ok()) return monitor.status();
    shards.push_back(std::make_unique<Snapshot::DriftShard>(std::move(*monitor)));
    shards.back()->sketches.resize(sketch_channels);
  }
  auto repairer = core::OffSampleRepairer::Create(std::move(plans), repair_options);
  if (!repairer.ok()) return repairer.status();
  auto snapshot = std::make_shared<Snapshot>(std::move(*repairer), version);
  snapshot->drift_shards = std::move(shards);
  return snapshot;
}

Result<std::unique_ptr<RepairService>> RepairService::Create(core::RepairPlanSet plans,
                                                             const ServiceOptions& options) {
  if (options.drift_shards == 0)
    return Status::InvalidArgument("drift_shards must be >= 1");
  const size_t dim = plans.dim();
  if (dim == 0) return Status::InvalidArgument("plan set is empty");
  if (options.initial_plan_version == 0)
    return Status::InvalidArgument("initial_plan_version must be >= 1");
  const size_t s_levels = plans.s_levels();
  const size_t u_levels = plans.u_levels();
  auto snapshot = BuildSnapshot(std::move(plans), options, options.initial_plan_version);
  if (!snapshot.ok()) return snapshot.status();
  std::unique_ptr<RepairService> service(
      new RepairService(dim, s_levels, u_levels, options));
  service->snapshot_.store(std::move(*snapshot), std::memory_order_release);

  // Scrape-time callback families on the metric registry. The raw pointer
  // captures are safe: the handles unregister in ~RepairService before any
  // captured state dies.
  RepairService* raw = service.get();
  obs::Registry& registry = service->metrics_.registry();
  auto plan_version_cb = registry.AddCallback(
      "otfair_serve_plan_version", "Version of the live plan snapshot", obs::MetricKind::kGauge,
      [raw] {
        return std::vector<obs::MetricSample>{
            {"", static_cast<double>(raw->plan_version())}};
      });
  if (plan_version_cb.ok())
    service->metric_callbacks_.push_back(std::move(*plan_version_cb));
  auto drift_cb = registry.AddCallback(
      "otfair_serve_drift_channel_w1",
      "Per-channel normalized W1 drift vs the design marginal", obs::MetricKind::kGauge,
      [raw] {
        std::vector<obs::MetricSample> samples;
        for (const core::ChannelDrift& c : raw->DriftSnapshot().channels) {
          samples.push_back({"u=\"" + std::to_string(c.u) + "\",s=\"" + std::to_string(c.s) +
                                 "\",k=\"" + std::to_string(c.k) + "\"",
                             c.w1_normalized});
        }
        return samples;
      });
  if (drift_cb.ok()) service->metric_callbacks_.push_back(std::move(*drift_cb));
  auto sketch_cb = registry.AddCallback(
      "otfair_serve_sketch_count", "Values accumulated per channel quantile sketch",
      obs::MetricKind::kGauge, [raw, s_levels] {
        std::vector<obs::MetricSample> samples;
        const std::vector<stats::QuantileSketch> sketches = raw->SketchSnapshot();
        const size_t dim = raw->dim();
        for (size_t c = 0; c < sketches.size(); ++c) {
          const size_t us = c / dim;
          samples.push_back({"u=\"" + std::to_string(us / s_levels) + "\",s=\"" +
                                 std::to_string(us % s_levels) + "\",k=\"" +
                                 std::to_string(c % dim) + "\"",
                             static_cast<double>(sketches[c].count())});
        }
        return samples;
      });
  if (sketch_cb.ok()) service->metric_callbacks_.push_back(std::move(*sketch_cb));
  return service;
}

uint64_t RepairService::SessionSeed(uint64_t session_id) const {
  if (session_id == 0) return options_.seed;
  return common::Rng::ForStream(options_.seed, session_id).Next64();
}

bool RepairService::ValidateRequest(const RowRequest& request, RowResponse* response) const {
  response->session_id = request.session_id;
  response->row_index = request.row_index;
  if (request.features.size() != dim_) {
    response->repaired.clear();
    response->status = Status::InvalidArgument(
        "row has " + std::to_string(request.features.size()) + " features, plan expects " +
        std::to_string(dim_));
    return false;
  }
  if (request.u < 0 || static_cast<size_t>(request.u) >= u_levels_ || request.s < 0 ||
      static_cast<size_t>(request.s) >= s_levels_) {
    response->repaired.clear();
    response->status = Status::InvalidArgument(
        "u and s labels must lie in [0, " + std::to_string(u_levels_) + ") x [0, " +
        std::to_string(s_levels_) + ")");
    return false;
  }
  return true;
}

bool RepairService::RepairRowOnSnapshot(const Snapshot& snap, const RowRequest& request,
                                        RowResponse* response) const {
  if (!ValidateRequest(request, response)) return false;
  // The determinism contract: randomness is a pure function of
  // (seed, session, row) — see RowRequest.
  common::Rng rng = common::Rng::ForStream(SessionSeed(request.session_id), request.row_index);
  core::RepairStats stats;
  response->repaired.resize(dim_);
  for (size_t k = 0; k < dim_; ++k) {
    response->repaired[k] =
        snap.repairer.RepairValueAt(request.u, request.s, k, request.features[k], rng, stats);
  }
  response->status = Status::Ok();
  return true;
}

Status RepairService::RepairRow(const RowRequest& request, RowResponse* response) {
  std::shared_ptr<Snapshot> snap = snapshot_.load(std::memory_order_acquire);
  metrics_.AddAccepted(1);
  metrics_.AddBatch();
  if (RepairRowOnSnapshot(*snap, request, response)) {
    metrics_.AddRepaired(1);
    // Feed the (pre-repair) values into the drift accumulator: drift is a
    // property of the incoming archival stream vs the design marginals.
    Snapshot::DriftShard& shard =
        *snap->drift_shards[snap->ShardFor(request.session_id, request.row_index)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.ObserveRow(request, dim_, s_levels_, options_.sketch_sample_every);
  } else {
    metrics_.AddInvalid(1);
  }
  return response->status;
}

void RepairService::RepairBatch(const RowRequest* requests, size_t count,
                                std::vector<RowResponse>* responses) {
  // One snapshot acquisition per batch: every row of a batch is served by
  // the same plan version, and the atomic load amortizes to nothing.
  std::shared_ptr<Snapshot> snap = snapshot_.load(std::memory_order_acquire);
  responses->resize(count);
  if (count == 0) return;
  metrics_.AddAccepted(count);
  metrics_.AddBatch();

  // Validation pass, serial and cheap, doubling as the SoA grouping pass:
  // valid rows are bucketed by their (u, s) label pair so the repair pass
  // can run channel-major through OffSampleRepairer::RepairSpan — every
  // table lookup run stays inside one channel's slot-major alias arena
  // instead of cycling through all dim_ channels per row. Per-row
  // (session, row) generators keep each response a pure function of the
  // request, so regrouping cannot change any output (the single-row path
  // and this batch path agree bit-for-bit).
  uint64_t bad = 0;
  std::vector<std::vector<uint32_t>> buckets(u_levels_ * s_levels_);
  for (size_t i = 0; i < count; ++i) {
    if (ValidateRequest(requests[i], &(*responses)[i])) {
      buckets[static_cast<size_t>(requests[i].u) * s_levels_ +
              static_cast<size_t>(requests[i].s)]
          .push_back(static_cast<uint32_t>(i));
    } else {
      ++bad;
    }
  }
  metrics_.AddRepaired(count - bad);
  if (bad > 0) metrics_.AddInvalid(bad);

  constexpr size_t kChunk = 256;
  struct Chunk {
    uint32_t bucket;
    uint32_t begin;
    uint32_t end;
  };
  std::vector<Chunk> chunks;
  for (size_t b = 0; b < buckets.size(); ++b) {
    for (size_t begin = 0; begin < buckets[b].size(); begin += kChunk) {
      const size_t end = std::min(begin + kChunk, buckets[b].size());
      chunks.push_back(Chunk{static_cast<uint32_t>(b), static_cast<uint32_t>(begin),
                             static_cast<uint32_t>(end)});
    }
  }
  common::parallel::ParallelFor(
      0, chunks.size(),
      [&](size_t ci) {
        const Chunk& c = chunks[ci];
        const uint32_t* ids = buckets[c.bucket].data() + c.begin;
        const int u = static_cast<int>(c.bucket / s_levels_);
        const int s = static_cast<int>(c.bucket % s_levels_);
        const size_t m = c.end - c.begin;
        std::vector<double> buf(m * dim_);
        std::vector<common::Rng> rngs;
        rngs.reserve(m);
        for (size_t t = 0; t < m; ++t) {
          const RowRequest& request = requests[ids[t]];
          rngs.push_back(
              common::Rng::ForStream(SessionSeed(request.session_id), request.row_index));
        }
        for (size_t k = 0; k < dim_; ++k)
          for (size_t t = 0; t < m; ++t) buf[k * m + t] = requests[ids[t]].features[k];
        core::RepairStats stats;
        core::OffSampleRepairer::SpanScratch scratch;
        for (size_t k = 0; k < dim_; ++k)
          snap->repairer.RepairSpan(u, s, k, buf.data() + k * m, m, rngs.data(),
                                    buf.data() + k * m, stats, scratch);
        for (size_t t = 0; t < m; ++t) {
          RowResponse& response = (*responses)[ids[t]];
          response.repaired.resize(dim_);
          for (size_t k = 0; k < dim_; ++k) response.repaired[k] = buf[k * m + t];
          response.status = Status::Ok();
        }
      },
      static_cast<size_t>(options_.threads));

  // Drift observation, amortized: the whole batch lands in one shard
  // (rotating across batches), so the serial pass takes the shard lock
  // once per ~max_batch rows instead of once per row. Concurrent batch
  // executors rotate onto different shards.
  Snapshot::DriftShard& shard =
      *snap->drift_shards[batch_counter_.fetch_add(1, std::memory_order_relaxed) %
                          snap->drift_shards.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  for (size_t i = 0; i < count; ++i) {
    if (!(*responses)[i].status.ok()) continue;
    shard.ObserveRow(requests[i], dim_, s_levels_, options_.sketch_sample_every);
  }
}

Status RepairService::ReloadPlan(core::RepairPlanSet plans) {
  OTFAIR_TRACE_SPAN("plan_reload");
  // Concurrent reloads serialize here and resolve last-writer-wins: each
  // successful caller reads the then-current version under the lock and
  // installs version + 1, so Version() is strictly monotone and the final
  // snapshot is the last caller's plan.
  std::lock_guard<std::mutex> lock(reload_mu_);
  Status status = [&]() -> Status {
    if (plans.dim() != dim_)
      return Status::InvalidArgument("reload plan has dim " + std::to_string(plans.dim()) +
                                     ", service serves dim " + std::to_string(dim_));
    if (plans.s_levels() != s_levels_ || plans.u_levels() != u_levels_)
      return Status::InvalidArgument(
          "reload plan has |S|=" + std::to_string(plans.s_levels()) + ", |U|=" +
          std::to_string(plans.u_levels()) + "; service serves |S|=" +
          std::to_string(s_levels_) + ", |U|=" + std::to_string(u_levels_));
    const uint64_t next_version = snapshot_.load(std::memory_order_acquire)->version + 1;
    auto snapshot = BuildSnapshot(std::move(plans), options_, next_version);
    if (!snapshot.ok()) return snapshot.status();
    // The swap itself: one release store. Readers that loaded the old
    // snapshot keep it alive until their request completes.
    snapshot_.store(std::move(*snapshot), std::memory_order_release);
    return Status::Ok();
  }();
  if (!status.ok()) {
    metrics_.AddReloadFailed();
    return status;
  }
  metrics_.AddReload();
  // A fresh healthy plan supersedes any stuck self-heal verdict.
  SetDegraded(false);
  return Status::Ok();
}

Status RepairService::ReloadPlanFromFile(const std::string& path) {
  auto plans = core::RepairPlanSet::LoadFromFile(path);
  if (!plans.ok()) {
    metrics_.AddReloadFailed();
    return plans.status();
  }
  return ReloadPlan(std::move(*plans));
}

uint64_t RepairService::plan_version() const {
  return snapshot_.load(std::memory_order_acquire)->version;
}

RepairService::PlanGeometry RepairService::Geometry() const {
  std::shared_ptr<Snapshot> snap = snapshot_.load(std::memory_order_acquire);
  const core::RepairPlanSet& plans = snap->repairer.plans();
  PlanGeometry geometry;
  geometry.feature_names = plans.feature_names();
  geometry.n_q = plans.At(0, 0).grid.size();
  geometry.lambdas = plans.lambdas();
  geometry.target_t = plans.target_t();
  return geometry;
}

core::DriftReport RepairService::DriftSnapshot() const {
  std::shared_ptr<Snapshot> snap = snapshot_.load(std::memory_order_acquire);
  core::DriftMonitor merged = [&] {
    std::lock_guard<std::mutex> lock(snap->drift_shards[0]->mu);
    return snap->drift_shards[0]->monitor;  // copy under the shard lock
  }();
  for (size_t i = 1; i < snap->drift_shards.size(); ++i) {
    std::lock_guard<std::mutex> lock(snap->drift_shards[i]->mu);
    // Same plan set by construction; merge cannot fail.
    merged.MergeFrom(snap->drift_shards[i]->monitor);
  }
  return merged.SnapshotReport();
}

std::vector<stats::QuantileSketch> RepairService::SketchSnapshot() const {
  std::shared_ptr<Snapshot> snap = snapshot_.load(std::memory_order_acquire);
  std::vector<stats::QuantileSketch> merged;
  for (const auto& shard : snap->drift_shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->sketches.empty()) continue;
    if (merged.empty()) {
      merged = shard->sketches;  // copy under the shard lock
      continue;
    }
    // Identical bucket geometry by construction; Merge cannot fail.
    for (size_t c = 0; c < merged.size(); ++c) {
      Status merge_status = merged[c].Merge(shard->sketches[c]);
      (void)merge_status;
    }
  }
  return merged;
}

void RepairService::ResetSketches() {
  std::shared_ptr<Snapshot> snap = snapshot_.load(std::memory_order_acquire);
  for (const auto& shard : snap->drift_shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (stats::QuantileSketch& sketch : shard->sketches) sketch.Reset();
  }
}

RepairService::CheckpointState RepairService::StateForCheckpoint() const {
  // ONE snapshot acquisition: plan, version, and observed state all
  // describe the same serving snapshot, even mid-reload.
  std::shared_ptr<Snapshot> snap = snapshot_.load(std::memory_order_acquire);
  CheckpointState state;
  state.plan_version = snap->version;
  state.degraded = degraded();
  state.plans = snap->repairer.plans();
  state.drift = [&] {
    std::lock_guard<std::mutex> lock(snap->drift_shards[0]->mu);
    return snap->drift_shards[0]->monitor;  // copy under the shard lock
  }();
  for (size_t i = 1; i < snap->drift_shards.size(); ++i) {
    std::lock_guard<std::mutex> lock(snap->drift_shards[i]->mu);
    // Same plan set by construction; merge cannot fail.
    state.drift->MergeFrom(snap->drift_shards[i]->monitor);
  }
  for (const auto& shard : snap->drift_shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->sketches.empty()) continue;
    if (state.sketches.empty()) {
      state.sketches = shard->sketches;  // copy under the shard lock
      continue;
    }
    for (size_t c = 0; c < state.sketches.size(); ++c) {
      Status merge_status = state.sketches[c].Merge(shard->sketches[c]);
      (void)merge_status;
    }
  }
  return state;
}

Status RepairService::RestoreObservedState(const std::string& drift_counts,
                                           const std::vector<stats::QuantileSketch>& sketches) {
  std::shared_ptr<Snapshot> snap = snapshot_.load(std::memory_order_acquire);
  Snapshot::DriftShard& shard = *snap->drift_shards[0];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!drift_counts.empty()) {
    common::ByteReader reader(drift_counts);
    OTFAIR_RETURN_IF_ERROR(shard.monitor.RestoreCounts(reader));
    if (!reader.exhausted())
      return Status::InvalidArgument("trailing bytes after drift counts");
  }
  if (!sketches.empty()) {
    if (shard.sketches.size() != sketches.size())
      return Status::InvalidArgument(
          "checkpoint carries " + std::to_string(sketches.size()) +
          " sketches, service has " + std::to_string(shard.sketches.size()) +
          " channels");
    for (size_t c = 0; c < sketches.size(); ++c)
      OTFAIR_RETURN_IF_ERROR(shard.sketches[c].Merge(sketches[c]));
  }
  return Status::Ok();
}

ServiceHealth RepairService::Health() const {
  const core::DriftReport report = DriftSnapshot();
  const MetricsSnapshot metrics = metrics_.Snapshot();
  ServiceHealth health;
  health.drifted = report.drifted;
  health.degraded = degraded();
  health.worst_w1 = report.worst_w1;
  health.worst_out_of_range = report.worst_out_of_range;
  for (const core::ChannelDrift& c : report.channels) health.values_observed += c.count;
  health.plan_version = plan_version();
  health.reloads_total = metrics.reloads;
  health.reloads_failed = metrics.reloads_failed;
  health.recovered_generation = recovered_generation();
  health.recovered = health.recovered_generation > 0;
  health.checkpoints_written = metrics.checkpoints_written;
  health.checkpoints_failed = metrics.checkpoints_failed;
  return health;
}

}  // namespace otfair::serve
