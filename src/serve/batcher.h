#ifndef OTFAIR_SERVE_BATCHER_H_
#define OTFAIR_SERVE_BATCHER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/work_queue.h"
#include "serve/repair_service.h"

namespace otfair::serve {

struct BatcherOptions {
  /// Rows coalesced into one RepairBatch call.
  size_t max_batch = 256;
  /// Pending-row bound; a Submit against a full queue is rejected with
  /// UNAVAILABLE (explicit backpressure — the service never buffers
  /// unboundedly). May be smaller than max_batch, in which case batches
  /// fill only to the queue capacity.
  size_t max_queue_depth = 4096;
  /// How long a partial batch may wait for stragglers before the
  /// background flusher executes it anyway. Only meaningful with
  /// background_flush.
  int64_t max_wait_us = 1000;
  /// Run a flusher thread that bounds the latency of partial batches.
  /// Without it the batcher only executes on full batches (caller-runs)
  /// and on explicit Flush()/Close() — the right mode for replay/bench
  /// loops that drive traffic as fast as they can and flush at the end.
  bool background_flush = true;
  /// Latency histogram sampling: every Nth accepted row is timestamped
  /// and recorded (1 = every row). Sampling keeps the hot path down to
  /// one clock read per N rows while the quantiles stay statistically
  /// faithful at serving rates. 0 disables latency recording.
  size_t latency_sample_every = 16;
};

/// Micro-batching front end of a `RepairService`.
///
/// Producers call `Submit` with single rows from any number of threads;
/// the batcher coalesces them into `max_batch`-row `RepairBatch` calls.
/// Execution is caller-runs: the submitter that fills a batch repairs it
/// in place (no handoff latency on the hot path), while the optional
/// background flusher picks up partial batches after `max_wait_us`.
///
/// Delivery contract: every accepted row is repaired and delivered to the
/// sink exactly once — including rows still queued at Close(). Responses
/// carry their (session, row) identity; delivery order across batches is
/// unspecified. The sink may be called concurrently from submitter and
/// flusher threads and must be thread-safe; it must not call back into
/// the batcher (it runs under the execution lock).
class Batcher {
 public:
  using Sink = std::function<void(const RowResponse&)>;

  /// `service` must outlive the batcher. The sink must be thread-safe.
  Batcher(RepairService* service, const BatcherOptions& options, Sink sink);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueues one row. Returns UNAVAILABLE when the queue is full
  /// (backpressure) or the batcher is closed; on failure `request` is
  /// left intact so the caller may retry. When the submit fills a batch,
  /// the calling thread executes it before returning.
  common::Status Submit(RowRequest&& request);

  /// Synchronously drains and repairs everything pending. Callable from
  /// any thread, concurrently with Submits.
  void Flush();

  /// Rejects further submits, stops the flusher, and drains what remains.
  /// Idempotent; also run by the destructor.
  void Close();

  /// Pending rows (live gauge for metrics snapshots).
  size_t queue_depth() const { return queue_.size(); }

  const BatcherOptions& options() const { return options_; }

 private:
  struct Item {
    RowRequest request;
    /// Set only on sampled rows (see latency_sample_every).
    std::chrono::steady_clock::time_point enqueue;
    bool sampled = false;
  };

  /// Pops up to one batch and repairs it; returns rows executed.
  size_t ExecuteOne();
  /// Repairs `items` (requests are moved out) and delivers responses.
  /// Caller holds exec_mu_.
  void ExecuteItems(std::vector<Item>* items);
  void FlusherLoop();

  RepairService* service_;
  BatcherOptions options_;
  Sink sink_;
  common::BoundedWorkQueue<Item> queue_;
  /// Serializes batch execution; scratch buffers below are guarded by it.
  std::mutex exec_mu_;
  std::vector<Item> exec_items_;
  std::vector<RowRequest> exec_requests_;
  std::vector<RowResponse> exec_responses_;
  std::atomic<uint64_t> submit_counter_{0};
  std::atomic<bool> closed_{false};
  std::thread flusher_;
};

}  // namespace otfair::serve

#endif  // OTFAIR_SERVE_BATCHER_H_
