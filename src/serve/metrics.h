#ifndef OTFAIR_SERVE_METRICS_H_
#define OTFAIR_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace otfair::serve {

/// Point-in-time view of a `Metrics` instance. Plain values; safe to copy
/// around, serialize, or diff against an earlier snapshot.
struct MetricsSnapshot {
  /// Rows accepted into the service (single-row and batch members alike).
  uint64_t rows_accepted = 0;
  /// Rows repaired successfully.
  uint64_t rows_repaired = 0;
  /// Rows that failed per-row validation (bad labels, wrong dimension).
  uint64_t rows_invalid = 0;
  /// Rows rejected at the admission boundary (queue full / closed).
  uint64_t rows_rejected = 0;
  /// RepairBatch executions (a single-row repair counts as a batch of 1).
  uint64_t batches = 0;
  /// Plan hot-swaps served so far.
  uint64_t reloads = 0;
  /// Plan reloads rejected (validation failure, unreadable file); the
  /// serving snapshot was left untouched each time.
  uint64_t reloads_failed = 0;
  /// Checkpoints persisted / failed (the serving path is unaffected by a
  /// checkpoint failure — it only loses durability freshness).
  uint64_t checkpoints_written = 0;
  uint64_t checkpoints_failed = 0;
  /// Latency samples recorded (batcher-path requests only).
  uint64_t latency_samples = 0;
  double latency_p50_us = 0.0;
  double latency_p90_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;
  /// Pending rows in the batcher queue when the snapshot was taken (a
  /// gauge supplied by the caller — the queue belongs to the Batcher).
  uint64_t queue_depth = 0;
  double uptime_seconds = 0.0;
  /// rows_repaired / uptime — the coarse live-throughput gauge.
  double rows_per_second = 0.0;

  /// One-line JSON rendering (for the `metrics` protocol verb and the
  /// replay-mode summary).
  std::string ToJson() const;
};

/// Lock-free serving counters plus a log-linear latency histogram.
///
/// Every mutation is a relaxed atomic add — the hot path never takes a
/// lock and never allocates, so metrics stay cheap enough to record per
/// row at millions of rows per second. `Snapshot()` reads the counters
/// without stopping writers; a snapshot taken under live traffic is a
/// consistent-enough view (each counter is individually exact, cross-
/// counter skew is bounded by in-flight requests).
///
/// The histogram is log-linear (HdrHistogram-style): 8 sub-buckets per
/// power of two of microseconds, giving <= 12.5% relative quantile error
/// over [1us, ~4000s] in a fixed 328-slot table.
class Metrics {
 public:
  Metrics() : start_(std::chrono::steady_clock::now()) {}

  void AddAccepted(uint64_t rows) { rows_accepted_.fetch_add(rows, kRelaxed); }
  void AddRepaired(uint64_t rows) { rows_repaired_.fetch_add(rows, kRelaxed); }
  void AddInvalid(uint64_t rows) { rows_invalid_.fetch_add(rows, kRelaxed); }
  void AddRejected(uint64_t rows) { rows_rejected_.fetch_add(rows, kRelaxed); }
  void AddBatch() { batches_.fetch_add(1, kRelaxed); }
  void AddReload() { reloads_.fetch_add(1, kRelaxed); }
  void AddReloadFailed() { reloads_failed_.fetch_add(1, kRelaxed); }
  void AddCheckpoint() { checkpoints_written_.fetch_add(1, kRelaxed); }
  void AddCheckpointFailed() { checkpoints_failed_.fetch_add(1, kRelaxed); }

  /// Records one request latency in microseconds (negative values clamp
  /// to 0).
  void RecordLatencyUs(double us);

  /// Reads everything; `queue_depth` is passed through into the snapshot.
  MetricsSnapshot Snapshot(uint64_t queue_depth = 0) const;

  /// Number of histogram slots (exposed for tests).
  static constexpr size_t kBuckets = 328;

 private:
  static constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

  /// Histogram slot for a microsecond value; log-linear, monotone.
  static size_t BucketIndex(uint64_t us);
  /// Representative latency (bucket midpoint) for a slot.
  static double BucketValueUs(size_t bucket);
  /// Smallest latency quantile q in [0, 1] from the histogram.
  double QuantileUs(double q, uint64_t samples,
                    const std::array<uint64_t, kBuckets>& counts) const;

  std::chrono::steady_clock::time_point start_;
  std::atomic<uint64_t> rows_accepted_{0};
  std::atomic<uint64_t> rows_repaired_{0};
  std::atomic<uint64_t> rows_invalid_{0};
  std::atomic<uint64_t> rows_rejected_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> reloads_failed_{0};
  std::atomic<uint64_t> checkpoints_written_{0};
  std::atomic<uint64_t> checkpoints_failed_{0};
  std::atomic<uint64_t> latency_max_us_{0};
  std::array<std::atomic<uint64_t>, kBuckets> latency_buckets_{};
};

}  // namespace otfair::serve

#endif  // OTFAIR_SERVE_METRICS_H_
