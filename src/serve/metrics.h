#ifndef OTFAIR_SERVE_METRICS_H_
#define OTFAIR_SERVE_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/registry.h"

namespace otfair::serve {

/// Point-in-time view of a `Metrics` instance. Plain values; safe to copy
/// around, serialize, or diff against an earlier snapshot.
struct MetricsSnapshot {
  /// Rows accepted into the service (single-row and batch members alike).
  uint64_t rows_accepted = 0;
  /// Rows repaired successfully.
  uint64_t rows_repaired = 0;
  /// Rows that failed per-row validation (bad labels, wrong dimension).
  uint64_t rows_invalid = 0;
  /// Rows rejected at the admission boundary (queue full / closed).
  uint64_t rows_rejected = 0;
  /// RepairBatch executions (a single-row repair counts as a batch of 1).
  uint64_t batches = 0;
  /// Plan hot-swaps served so far.
  uint64_t reloads = 0;
  /// Plan reloads rejected (validation failure, unreadable file); the
  /// serving snapshot was left untouched each time.
  uint64_t reloads_failed = 0;
  /// Checkpoints persisted / failed (the serving path is unaffected by a
  /// checkpoint failure — it only loses durability freshness).
  uint64_t checkpoints_written = 0;
  uint64_t checkpoints_failed = 0;
  /// Latency samples recorded (batcher-path requests only).
  uint64_t latency_samples = 0;
  double latency_p50_us = 0.0;
  double latency_p90_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;
  /// Pending rows in the batcher queue when the snapshot was taken (a
  /// gauge supplied by the caller — the queue belongs to the Batcher).
  uint64_t queue_depth = 0;
  double uptime_seconds = 0.0;
  /// rows_repaired / uptime — the coarse live-throughput gauge.
  double rows_per_second = 0.0;
  /// Serving in degraded mode (redesign gave up; stale plan kept hot).
  bool degraded = false;
  /// Self-heal lifecycle counters, mirrored from the Redesigner.
  uint64_t redesign_episodes = 0;
  uint64_t redesign_attempts = 0;
  uint64_t redesign_failures = 0;
  uint64_t redesign_reloads = 0;
  uint64_t redesign_gave_up = 0;
  /// Latency quantiles over the last closed scrape window (delta between
  /// the two most recent scrapes), as opposed to the lifetime aggregates
  /// above. Zero until the first window closes.
  uint64_t window_latency_samples = 0;
  double window_latency_p50_us = 0.0;
  double window_latency_p90_us = 0.0;
  double window_latency_p99_us = 0.0;

  /// One-line JSON rendering (for the `metrics` protocol verb and the
  /// replay-mode summary). Pre-registry keys render first, byte-identical
  /// to earlier releases; new keys are appended only.
  std::string ToJson() const;
};

/// Serving metrics facade over an `obs::Registry`.
///
/// Every mutation is a relaxed atomic add on a registered instrument — the
/// hot path never takes a lock and never allocates, so metrics stay cheap
/// enough to record per row at millions of rows per second. `Snapshot()`
/// reads the counters without stopping writers; a snapshot taken under
/// live traffic is a consistent-enough view (each counter is individually
/// exact, cross-counter skew is bounded by in-flight requests).
///
/// The registry is the extension point: other serve components
/// (RepairService, Checkpointer, Redesigner) register their own gauges and
/// callback families on `registry()`, and everything — the facade's
/// instruments included — renders through one Prometheus exposition.
///
/// The latency histogram is log-linear (HdrHistogram-style): 8 sub-buckets
/// per power of two of microseconds, <= 12.5% relative quantile error over
/// [1us, ~4000s] in a fixed 328-slot table. Lifetime quantiles come from
/// `Snapshot()`; `ScrapeSnapshot()` additionally closes a scrape window so
/// p50/p99 over just the last interval stay visible after warm-up.
class Metrics {
 public:
  Metrics();

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void AddAccepted(uint64_t rows) { rows_accepted_->Add(rows); }
  void AddRepaired(uint64_t rows) { rows_repaired_->Add(rows); }
  void AddInvalid(uint64_t rows) { rows_invalid_->Add(rows); }
  void AddRejected(uint64_t rows) { rows_rejected_->Add(rows); }
  void AddBatch() { batches_->Add(1); }
  void AddReload() { reloads_->Add(1); }
  void AddReloadFailed() { reloads_failed_->Add(1); }
  void AddCheckpoint() { checkpoints_written_->Add(1); }
  void AddCheckpointFailed() { checkpoints_failed_->Add(1); }

  /// Self-heal lifecycle, mirrored by the Redesigner as episodes run.
  void AddRedesignEpisode() { redesign_episodes_->Add(1); }
  void AddRedesignAttempt() { redesign_attempts_->Add(1); }
  void AddRedesignFailure() { redesign_failures_->Add(1); }
  void AddRedesignReload() { redesign_reloads_->Add(1); }
  void AddRedesignGaveUp() { redesign_gave_up_->Add(1); }
  void SetDegraded(bool degraded) {
    degraded_.store(degraded, std::memory_order_relaxed);
    degraded_gauge_->Set(degraded ? 1.0 : 0.0);
  }
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  /// Records one request latency in microseconds (negative values clamp
  /// to 0).
  void RecordLatencyUs(double us);

  /// Reads everything without side effects; `queue_depth` is passed
  /// through into the snapshot. Window quantiles reflect the last window
  /// closed by `ScrapeSnapshot()` — calling `Snapshot()` (e.g. from the
  /// `health` verb) never consumes the scrape window.
  MetricsSnapshot Snapshot(uint64_t queue_depth = 0) const;

  /// Snapshot() plus: closes the current latency window (quantiles over
  /// samples recorded since the previous scrape) and refreshes the
  /// exposition gauges (queue depth, uptime, window quantiles). Call this
  /// from scrape paths (`metrics` verb, Prometheus dumps), once per
  /// scrape.
  MetricsSnapshot ScrapeSnapshot(uint64_t queue_depth = 0);

  /// Closes the window and renders every registered metric in Prometheus
  /// text exposition format.
  std::string RenderPrometheus(uint64_t queue_depth = 0);

  /// The underlying registry, for other components to register gauges,
  /// histograms, and scrape callbacks on.
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }

  /// Number of histogram slots (exposed for tests).
  static constexpr size_t kBuckets = obs::Histogram::kBuckets;

 private:
  void FillLegacy(MetricsSnapshot* snap, uint64_t queue_depth) const;

  obs::Registry registry_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<bool> degraded_{false};

  obs::Counter* rows_accepted_;
  obs::Counter* rows_repaired_;
  obs::Counter* rows_invalid_;
  obs::Counter* rows_rejected_;
  obs::Counter* batches_;
  obs::Counter* reloads_;
  obs::Counter* reloads_failed_;
  obs::Counter* checkpoints_written_;
  obs::Counter* checkpoints_failed_;
  obs::Counter* redesign_episodes_;
  obs::Counter* redesign_attempts_;
  obs::Counter* redesign_failures_;
  obs::Counter* redesign_reloads_;
  obs::Counter* redesign_gave_up_;
  obs::Gauge* degraded_gauge_;
  obs::Gauge* queue_depth_gauge_;
  obs::Gauge* uptime_gauge_;
  obs::Gauge* window_p50_gauge_;
  obs::Gauge* window_p90_gauge_;
  obs::Gauge* window_p99_gauge_;
  obs::Histogram* latency_;

  /// Scrape-window state: the histogram snapshot at the last scrape plus
  /// the quantiles of the last CLOSED window (what Snapshot() reports).
  mutable std::mutex window_mu_;
  obs::Histogram::Snapshot window_base_;
  uint64_t window_samples_ = 0;
  double window_p50_us_ = 0.0;
  double window_p90_us_ = 0.0;
  double window_p99_us_ = 0.0;
};

}  // namespace otfair::serve

#endif  // OTFAIR_SERVE_METRICS_H_
