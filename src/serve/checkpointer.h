#ifndef OTFAIR_SERVE_CHECKPOINTER_H_
#define OTFAIR_SERVE_CHECKPOINTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/repair_plan.h"
#include "serve/redesigner.h"
#include "serve/repair_service.h"
#include "stats/quantile_sketch.h"

namespace otfair::serve {

/// The decoded contents of one checkpoint file: everything a restarted
/// process needs to serve as the pre-crash one did at the checkpoint
/// boundary — the plan (embedded in full, because a self-heal redesign
/// installs plans that exist only in memory), its version, the repair
/// semantics (seed/mode/strength bind the bit-identity contract), the
/// drift accumulators, the channel sketches, and the degraded/episode
/// flags.
struct CheckpointData {
  /// Monotone per-directory write counter; also the filename key.
  uint64_t generation = 0;
  uint64_t plan_version = 1;
  bool degraded = false;
  /// The redesigner had a drift episode open when this was written.
  bool episode_open = false;
  /// Repair semantics of the writing service (ServiceOptions).
  uint64_t seed = 0;
  uint32_t mode = 0;
  double strength = 1.0;
  uint64_t sketch_sample_every = 16;
  core::RepairPlanSet plans;
  /// Raw DriftMonitor::SerializeCounts payload; empty when absent.
  /// Deferred-parse: the counts are validated against the restored
  /// service's real monitor geometry (RepairService::RestoreObservedState)
  /// rather than trusted here.
  std::string drift_counts;
  std::vector<stats::QuantileSketch> sketches;
};

/// Serializes a checkpoint to its on-disk byte form: a fixed header
/// (magic "OTCP", format version, payload size, payload CRC32) followed by
/// the payload. The size field must equal the bytes actually present and
/// the CRC must match, so truncated, oversized, and bit-flipped files are
/// all rejected at the header before any payload field is trusted.
std::string SerializeCheckpoint(const CheckpointData& data);

/// Parses checkpoint bytes, validating the header (magic/version/size/
/// CRC) and then every payload field. `context` labels error messages.
common::Result<CheckpointData> ParseCheckpoint(const char* data, size_t size,
                                               const std::string& context);

common::Result<CheckpointData> LoadCheckpointFile(const std::string& path);

/// The checkpoint file for `generation` inside `dir`.
std::string CheckpointPath(const std::string& dir, uint64_t generation);

/// What recovery found: the decoded newest intact checkpoint, plus the
/// corrupt newer generations it had to skip to get there (for logs).
struct RecoveredCheckpoint {
  CheckpointData data;
  std::string path;
  /// Paths that looked like checkpoints but failed validation, newest
  /// first, each with the rejection reason.
  std::vector<std::string> skipped;
};

/// Scans `dir` for checkpoint files and loads the newest one that
/// validates end to end, falling back generation-by-generation past
/// corrupt or torn files. Returns kNotFound when the directory holds no
/// intact checkpoint at all (including when it is empty or missing) — the
/// caller cold-starts from the plan file; recovery never refuses to serve.
common::Result<RecoveredCheckpoint> RecoverNewestCheckpoint(const std::string& dir);

/// Knobs of the background checkpoint loop.
struct CheckpointerOptions {
  /// Directory the checkpoint files live in (created if missing).
  std::string dir;
  /// Cadence of the background loop.
  int interval_ms = 1000;
  /// Generations retained on disk; older files are pruned after each
  /// successful write. The retained window is what recovery can fall back
  /// through when the newest file is corrupt.
  int keep = 3;
};

/// Periodic, atomic checkpoints of a live RepairService (plus, when given,
/// the redesigner's episode flag).
///
/// Each write captures one coherent service snapshot
/// (RepairService::StateForCheckpoint), serializes it, and lands it with
/// write-temp + fsync + rename — a crash at any instant leaves the
/// directory holding only complete, CRC-valid generations. Failures are
/// counted (metrics `checkpoints_failed`) and retried on the next tick;
/// the serving path never blocks on checkpointing.
class Checkpointer {
 public:
  /// Validates options, creates the directory, and starts the background
  /// thread. `service` must outlive the checkpointer; `redesigner` may be
  /// null. `start_generation` seeds the write counter — recovery passes
  /// the recovered generation so new files sort strictly after every
  /// pre-crash one.
  static common::Result<std::unique_ptr<Checkpointer>> Create(
      RepairService* service, const CheckpointerOptions& options,
      Redesigner* redesigner = nullptr, uint64_t start_generation = 0);

  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// One synchronous checkpoint write (also what the loop calls). Bumps
  /// the generation only when the file landed; prunes generations older
  /// than `keep` afterwards.
  common::Status WriteNow();

  /// Stops and joins the background thread (idempotent). Does not write a
  /// final checkpoint — the drain path calls WriteNow() explicitly so the
  /// final write's outcome is observable.
  void Stop();

  /// Last generation successfully written (the start generation until the
  /// first write lands).
  uint64_t generation() const { return generation_.load(std::memory_order_relaxed); }

  /// Seconds since the last successful write; negative when none landed
  /// yet. Feeds the checkpoint-age gauge.
  double AgeSeconds() const;

  const CheckpointerOptions& options() const { return options_; }

 private:
  Checkpointer(RepairService* service, const CheckpointerOptions& options,
               Redesigner* redesigner, uint64_t start_generation);

  void Loop();

  RepairService* service_;
  CheckpointerOptions options_;
  Redesigner* redesigner_;
  std::atomic<uint64_t> generation_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  /// Monotonic-clock stamp of the last successful write (0 = none yet).
  std::atomic<uint64_t> last_write_ns_{0};
  /// Serializes WriteNow against itself (loop tick vs drain call).
  std::mutex write_mu_;
  std::thread thread_;
  /// Generation/age gauges on the service registry; declared last so they
  /// unregister first.
  std::vector<obs::CallbackHandle> metric_callbacks_;
};

}  // namespace otfair::serve

#endif  // OTFAIR_SERVE_CHECKPOINTER_H_
