#include "serve/batcher.h"

#include <utility>

#include "obs/trace.h"

namespace otfair::serve {

using common::Status;

Batcher::Batcher(RepairService* service, const BatcherOptions& options, Sink sink)
    : service_(service),
      options_([&] {
        BatcherOptions o = options;
        if (o.max_batch == 0) o.max_batch = 1;
        if (o.max_queue_depth == 0) o.max_queue_depth = 1;
        if (o.max_wait_us < 0) o.max_wait_us = 0;
        return o;
      }()),
      sink_(std::move(sink)),
      queue_(options_.max_queue_depth) {
  if (options_.background_flush) flusher_ = std::thread([this] { FlusherLoop(); });
}

Batcher::~Batcher() { Close(); }

Status Batcher::Submit(RowRequest&& request) {
  OTFAIR_TRACE_SPAN("admit");
  if (closed_.load(std::memory_order_acquire))
    return Status::Unavailable("batcher is closed");
  Item item{std::move(request), {}, false};
  if (options_.latency_sample_every == 1 ||
      (options_.latency_sample_every > 1 &&
       submit_counter_.fetch_add(1, std::memory_order_relaxed) %
               options_.latency_sample_every ==
           0)) {
    item.sampled = true;
    item.enqueue = std::chrono::steady_clock::now();
  }
  size_t size_after = 0;
  if (!queue_.TryPush(std::move(item), &size_after)) {
    // TryPush does not move on failure; hand the request back untouched.
    request = std::move(item.request);
    service_->metrics().AddRejected(1);
    return Status::Unavailable(queue_.closed() ? "batcher is closed"
                                               : "queue full (backpressure)");
  }
  // Caller-runs: the submitter that fills a batch executes it. This keeps
  // the hot path free of wakeup latency and makes backpressure natural —
  // a producer outrunning the service spends its own time repairing.
  if (size_after >= options_.max_batch) ExecuteOne();
  return Status::Ok();
}

size_t Batcher::ExecuteOne() {
  std::lock_guard<std::mutex> lock(exec_mu_);
  exec_items_.clear();
  if (queue_.TryPopBatch(options_.max_batch, &exec_items_) == 0) return 0;
  ExecuteItems(&exec_items_);
  return exec_items_.size();
}

void Batcher::ExecuteItems(std::vector<Item>* items) {
  OTFAIR_TRACE_SPAN("batch_flush");
  const size_t n = items->size();
  exec_requests_.clear();
  exec_requests_.reserve(n);
  for (Item& item : *items) exec_requests_.push_back(std::move(item.request));
  service_->RepairBatch(exec_requests_.data(), n, &exec_responses_);
  // One completion stamp per batch: request latency = queue wait + batch
  // execution, which the shared endpoint captures for every sampled row.
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    if ((*items)[i].sampled)
      service_->metrics().RecordLatencyUs(
          std::chrono::duration<double, std::micro>(now - (*items)[i].enqueue).count());
    if (sink_) sink_(exec_responses_[i]);
  }
}

void Batcher::Flush() {
  while (ExecuteOne() > 0) {
  }
}

void Batcher::FlusherLoop() {
  std::vector<Item> items;
  while (true) {
    items.clear();
    // Sleep until traffic arrives, then give stragglers max_wait_us to
    // fill the batch. A zero pop means closed-and-drained (the empty-queue
    // wait has no deadline) — time to exit.
    const size_t n = queue_.PopBatchWhenReady(
        options_.max_batch, &items, std::chrono::microseconds(options_.max_wait_us));
    if (n == 0) {
      if (queue_.closed() && queue_.size() == 0) return;
      continue;
    }
    std::lock_guard<std::mutex> lock(exec_mu_);
    ExecuteItems(&items);
  }
}

void Batcher::Close() {
  bool expected = false;
  if (!closed_.compare_exchange_strong(expected, true)) {
    // Already closed; still make sure nothing is left behind.
    Flush();
    return;
  }
  queue_.Close();
  if (flusher_.joinable()) flusher_.join();
  Flush();
}

}  // namespace otfair::serve
