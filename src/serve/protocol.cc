#include "serve/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace otfair::serve {

using common::Result;
using common::Status;

namespace {

/// Splits on runs of spaces/tabs (unlike common::Split, which keeps empty
/// tokens): protocol lines are human-typeable.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  // strtoull silently wraps negatives ("-1" -> 2^64-1); require a digit.
  if (text.empty() || text[0] < '0' || text[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  // strtod accepts "nan"/"inf" spellings; a non-finite feature would
  // poison the repair tables and the drift/sketch accumulators, so the
  // protocol rejects it at the boundary.
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

/// Echoes at most a 32-char prefix of an input token inside an error
/// message, with control characters replaced: the token may be huge or
/// binary junk, and the rendered `err` line must stay one sane line.
std::string SanitizeToken(const std::string& token) {
  std::string shown = token.substr(0, 32);
  for (char& c : shown)
    if (static_cast<unsigned char>(c) < 0x20 || static_cast<unsigned char>(c) >= 0x7f)
      c = '?';
  return shown;
}

}  // namespace

Result<ProtocolRequest> ParseRequestLine(const std::string& line, size_t dim, size_t u_levels,
                                         size_t s_levels) {
  if (line.size() > kMaxRequestLineBytes)
    return Status::InvalidArgument("request line exceeds " +
                                   std::to_string(kMaxRequestLineBytes) + " bytes");
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Status::InvalidArgument("empty request line");
  ProtocolRequest request;
  const std::string& verb = tokens[0];
  if (verb == "metrics") {
    if (tokens.size() >= 2 && (tokens[1] == "--prom" || tokens[1] == "prom")) {
      request.kind = RequestKind::kMetricsProm;
      return request;
    }
    request.kind = RequestKind::kMetrics;
    return request;
  }
  if (verb == "health") {
    request.kind = RequestKind::kHealth;
    return request;
  }
  if (verb == "quit") {
    request.kind = RequestKind::kQuit;
    return request;
  }
  if (verb == "checkpoint") {
    request.kind = RequestKind::kCheckpoint;
    return request;
  }
  if (verb == "reload") {
    if (tokens.size() != 2)
      return Status::InvalidArgument("usage: reload <plan_path>");
    request.kind = RequestKind::kReload;
    request.plan_path = tokens[1];
    return request;
  }
  if (verb == "repair") {
    if (tokens.size() != 5 + dim)
      return Status::InvalidArgument(
          "usage: repair <session> <row> <u> <s> <x_1..x_" + std::to_string(dim) +
          "> (got " + std::to_string(tokens.size() - 1) + " fields)");
    request.kind = RequestKind::kRepair;
    uint64_t u = 0;
    uint64_t s = 0;
    if (!ParseU64(tokens[1], &request.row.session_id) ||
        !ParseU64(tokens[2], &request.row.row_index) || !ParseU64(tokens[3], &u) ||
        !ParseU64(tokens[4], &s) || u >= u_levels || s >= s_levels)
      return Status::InvalidArgument("bad session/row/u/s fields");
    request.row.u = static_cast<int>(u);
    request.row.s = static_cast<int>(s);
    request.row.features.resize(dim);
    for (size_t k = 0; k < dim; ++k) {
      if (!ParseDouble(tokens[5 + k], &request.row.features[k]))
        return Status::InvalidArgument("bad feature value '" +
                                       SanitizeToken(tokens[5 + k]) +
                                       "' (must be a finite number)");
    }
    return request;
  }
  return Status::InvalidArgument("unknown request '" + SanitizeToken(verb) + "'");
}

std::string FormatRowResponse(const RowResponse& response) {
  if (!response.status.ok())
    return FormatErrorLine(response.session_id, response.row_index, response.status);
  std::string line = "ok ";
  line += std::to_string(response.session_id);
  line += ' ';
  line += std::to_string(response.row_index);
  char buf[32];
  for (const double v : response.repaired) {
    std::snprintf(buf, sizeof(buf), " %.17g", v);
    line += buf;
  }
  return line;
}

std::string FormatErrorLine(const common::Status& status) {
  std::string line = "err - - ";
  line += common::StatusCodeToString(status.code());
  line += ' ';
  line += status.message();
  return line;
}

std::string FormatErrorLine(uint64_t session_id, uint64_t row_index,
                            const common::Status& status) {
  std::string line = "err ";
  line += std::to_string(session_id);
  line += ' ';
  line += std::to_string(row_index);
  line += ' ';
  line += common::StatusCodeToString(status.code());
  line += ' ';
  line += status.message();
  return line;
}

}  // namespace otfair::serve
