#include "serve/checkpointer.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/byte_io.h"
#include "common/crc32.h"
#include "common/file_util.h"
#include "obs/trace.h"

namespace otfair::serve {

using common::ByteReader;
using common::ByteWriter;
using common::Result;
using common::Status;

namespace {

constexpr uint32_t kCheckpointMagic = 0x4F544350;  // "OTCP"
constexpr uint32_t kCheckpointVersion = 1;
/// magic + version + payload size + payload crc.
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;

constexpr char kFilePrefix[] = "checkpoint-";
constexpr char kFileSuffix[] = ".otcp";

}  // namespace

std::string CheckpointPath(const std::string& dir, uint64_t generation) {
  char name[64];
  // Zero-padded so lexical and numeric order agree in directory listings.
  std::snprintf(name, sizeof(name), "%s%020llu%s", kFilePrefix,
                static_cast<unsigned long long>(generation), kFileSuffix);
  return dir + "/" + name;
}

std::string SerializeCheckpoint(const CheckpointData& data) {
  std::string payload;
  ByteWriter out(&payload);
  out.U64(data.generation);
  out.U64(data.plan_version);
  out.U8(data.degraded ? 1 : 0);
  out.U8(data.episode_open ? 1 : 0);
  out.U64(data.seed);
  out.U32(data.mode);
  out.F64(data.strength);
  out.U64(data.sketch_sample_every);
  // The plan rides along in full: a self-heal redesign installs plans
  // that exist nowhere on disk, and recovery must serve exactly what the
  // pre-crash process served.
  out.String(data.plans.SerializeToString());
  out.String(data.drift_counts);
  out.U64(data.sketches.size());
  for (const stats::QuantileSketch& sketch : data.sketches) sketch.SerializeTo(out);

  std::string bytes;
  ByteWriter header(&bytes);
  header.U32(kCheckpointMagic);
  header.U32(kCheckpointVersion);
  header.U64(payload.size());
  header.U32(common::Crc32(payload));
  bytes += payload;
  return bytes;
}

Result<CheckpointData> ParseCheckpoint(const char* data, size_t size,
                                       const std::string& context) {
  ByteReader header(data, size);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t crc = 0;
  if (!header.U32(&magic) || magic != kCheckpointMagic)
    return Status::IoError("not a checkpoint file: " + context);
  if (!header.U32(&version) || version != kCheckpointVersion)
    return Status::IoError("unsupported checkpoint version in " + context);
  if (!header.U64(&payload_size) || !header.U32(&crc))
    return Status::IoError("truncated checkpoint header: " + context);
  // Exact-size match: a truncated file (crash mid-write never produces one
  // — rename is atomic — but a copied or tampered file can) and an
  // oversized file with trailing bytes are both rejected here.
  if (payload_size != header.remaining())
    return Status::IoError("checkpoint size mismatch in " + context + ": header says " +
                           std::to_string(payload_size) + " bytes, file carries " +
                           std::to_string(header.remaining()));
  const char* payload = data + kHeaderBytes;
  if (common::Crc32(payload, payload_size) != crc)
    return Status::IoError("checkpoint CRC mismatch in " + context);

  ByteReader in(payload, payload_size);
  CheckpointData out;
  uint8_t degraded = 0;
  uint8_t episode_open = 0;
  if (!in.U64(&out.generation) || !in.U64(&out.plan_version) || !in.U8(&degraded) ||
      !in.U8(&episode_open) || !in.U64(&out.seed) || !in.U32(&out.mode) ||
      !in.F64(&out.strength) || !in.U64(&out.sketch_sample_every))
    return Status::IoError("truncated checkpoint payload: " + context);
  if (out.generation == 0 || out.plan_version == 0)
    return Status::IoError("corrupt checkpoint counters in " + context);
  if (degraded > 1 || episode_open > 1)
    return Status::IoError("corrupt checkpoint flags in " + context);
  out.degraded = degraded == 1;
  out.episode_open = episode_open == 1;
  if (out.mode > static_cast<uint32_t>(core::TransportMode::kConditionalMean))
    return Status::IoError("corrupt transport mode in " + context);
  if (!std::isfinite(out.strength) || out.strength < 0.0 || out.strength > 1.0)
    return Status::IoError("corrupt repair strength in " + context);

  std::string plan_bytes;
  if (!in.String(&plan_bytes, in.remaining()))
    return Status::IoError("truncated checkpoint plan: " + context);
  auto plans = core::RepairPlanSet::ParseFromBuffer(plan_bytes.data(), plan_bytes.size(),
                                                    "checkpoint " + context);
  if (!plans.ok()) return plans.status();
  out.plans = std::move(*plans);

  if (!in.String(&out.drift_counts, in.remaining()))
    return Status::IoError("truncated checkpoint drift counts: " + context);

  uint64_t sketch_count = 0;
  if (!in.U64(&sketch_count))
    return Status::IoError("truncated checkpoint sketches: " + context);
  const uint64_t channels =
      static_cast<uint64_t>(out.plans.u_levels()) * out.plans.s_levels() * out.plans.dim();
  if (sketch_count != 0 && sketch_count != channels)
    return Status::IoError("checkpoint sketch count does not match plan channels in " +
                           context);
  out.sketches.resize(static_cast<size_t>(sketch_count));
  for (stats::QuantileSketch& sketch : out.sketches) {
    Status status = sketch.DeserializeFrom(in);
    if (!status.ok())
      return Status::IoError("corrupt checkpoint sketch in " + context + ": " +
                             status.message());
  }
  if (!in.exhausted())
    return Status::IoError("trailing bytes after checkpoint payload in " + context);
  return out;
}

Result<CheckpointData> LoadCheckpointFile(const std::string& path) {
  auto bytes = common::ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return ParseCheckpoint(bytes->data(), bytes->size(), path);
}

Result<RecoveredCheckpoint> RecoverNewestCheckpoint(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr)
    return Status::NotFound("no checkpoint directory at '" + dir + "': " +
                            std::strerror(errno));
  std::vector<std::pair<uint64_t, std::string>> candidates;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= std::strlen(kFilePrefix) + std::strlen(kFileSuffix)) continue;
    if (name.compare(0, std::strlen(kFilePrefix), kFilePrefix) != 0) continue;
    if (name.compare(name.size() - std::strlen(kFileSuffix), std::strlen(kFileSuffix),
                     kFileSuffix) != 0)
      continue;
    const std::string digits = name.substr(
        std::strlen(kFilePrefix),
        name.size() - std::strlen(kFilePrefix) - std::strlen(kFileSuffix));
    char* end = nullptr;
    errno = 0;
    const unsigned long long generation = std::strtoull(digits.c_str(), &end, 10);
    if (errno != 0 || end == digits.c_str() || *end != '\0' || generation == 0) continue;
    candidates.emplace_back(static_cast<uint64_t>(generation), dir + "/" + name);
  }
  ::closedir(d);
  if (candidates.empty())
    return Status::NotFound("no checkpoint files in '" + dir + "'");

  // Newest first; fall back generation by generation past anything that
  // fails validation. Never give up until every candidate is exhausted.
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  RecoveredCheckpoint recovered;
  for (const auto& [generation, path] : candidates) {
    auto data = LoadCheckpointFile(path);
    if (data.ok() && data->generation != generation) {
      recovered.skipped.push_back(path + ": generation field " +
                                  std::to_string(data->generation) +
                                  " does not match filename");
      continue;
    }
    if (!data.ok()) {
      recovered.skipped.push_back(path + ": " + data.status().ToString());
      continue;
    }
    recovered.data = std::move(*data);
    recovered.path = path;
    return recovered;
  }
  std::string detail;
  for (const std::string& s : recovered.skipped) detail += "\n  " + s;
  return Status::NotFound("no intact checkpoint in '" + dir + "'; rejected " +
                          std::to_string(recovered.skipped.size()) + " file(s):" + detail);
}

Checkpointer::Checkpointer(RepairService* service, const CheckpointerOptions& options,
                           Redesigner* redesigner, uint64_t start_generation)
    : service_(service),
      options_(options),
      redesigner_(redesigner),
      generation_(start_generation) {}

Result<std::unique_ptr<Checkpointer>> Checkpointer::Create(RepairService* service,
                                                           const CheckpointerOptions& options,
                                                           Redesigner* redesigner,
                                                           uint64_t start_generation) {
  if (service == nullptr) return Status::InvalidArgument("service must not be null");
  if (options.dir.empty()) return Status::InvalidArgument("checkpoint dir must be set");
  if (options.interval_ms <= 0)
    return Status::InvalidArgument("checkpoint interval_ms must be >= 1");
  if (options.keep < 1) return Status::InvalidArgument("checkpoint keep must be >= 1");
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST)
    return Status::IoError("cannot create checkpoint dir '" + options.dir +
                           "': " + std::strerror(errno));
  std::unique_ptr<Checkpointer> checkpointer(
      new Checkpointer(service, options, redesigner, start_generation));
  // Best-effort gauges (a second checkpointer on the same service keeps
  // serving; only the first one's gauges register).
  Checkpointer* raw = checkpointer.get();
  obs::Registry& registry = service->metrics().registry();
  auto generation_cb = registry.AddCallback(
      "otfair_serve_checkpoint_generation", "Last checkpoint generation written",
      obs::MetricKind::kGauge, [raw] {
        return std::vector<obs::MetricSample>{{"", static_cast<double>(raw->generation())}};
      });
  if (generation_cb.ok()) checkpointer->metric_callbacks_.push_back(std::move(*generation_cb));
  auto age_cb = registry.AddCallback(
      "otfair_serve_checkpoint_age_seconds",
      "Seconds since the last successful checkpoint (-1 before the first)",
      obs::MetricKind::kGauge, [raw] {
        return std::vector<obs::MetricSample>{{"", raw->AgeSeconds()}};
      });
  if (age_cb.ok()) checkpointer->metric_callbacks_.push_back(std::move(*age_cb));
  checkpointer->thread_ = std::thread([c = checkpointer.get()] { c->Loop(); });
  return checkpointer;
}

double Checkpointer::AgeSeconds() const {
  const uint64_t last = last_write_ns_.load(std::memory_order_relaxed);
  if (last == 0) return -1.0;
  return static_cast<double>(obs::TraceNowNs() - last) / 1e9;
}

Checkpointer::~Checkpointer() { Stop(); }

void Checkpointer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Checkpointer::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [&] { return stop_; });
      if (stop_) return;
    }
    // Failures are counted in metrics and retried next tick; the loop
    // itself never dies on one.
    Status status = WriteNow();
    (void)status;
  }
}

Status Checkpointer::WriteNow() {
  OTFAIR_TRACE_SPAN("checkpoint_write");
  std::lock_guard<std::mutex> write_lock(write_mu_);
  const uint64_t generation = generation_.load(std::memory_order_relaxed) + 1;

  CheckpointData data;
  data.generation = generation;
  RepairService::CheckpointState state = service_->StateForCheckpoint();
  data.plan_version = state.plan_version;
  data.degraded = state.degraded;
  data.episode_open = redesigner_ != nullptr && redesigner_->episode_open();
  const ServiceOptions& service_options = service_->options();
  data.seed = service_options.seed;
  data.mode = static_cast<uint32_t>(service_options.mode);
  data.strength = service_options.strength;
  data.sketch_sample_every = service_options.sketch_sample_every;
  data.plans = std::move(state.plans);
  if (state.drift.has_value()) {
    ByteWriter drift_writer(&data.drift_counts);
    state.drift->SerializeCounts(drift_writer);
  }
  data.sketches = std::move(state.sketches);

  Status status = [&] {
    // The write-temp + fsync + rename is where a checkpoint actually
    // stalls; a distinct span makes slow disks visible inside the write.
    OTFAIR_TRACE_SPAN("checkpoint_fsync");
    return common::AtomicWriteFile(CheckpointPath(options_.dir, generation),
                                   SerializeCheckpoint(data));
  }();
  if (!status.ok()) {
    service_->metrics().AddCheckpointFailed();
    return status;
  }
  generation_.store(generation, std::memory_order_relaxed);
  last_write_ns_.store(obs::TraceNowNs(), std::memory_order_relaxed);
  service_->metrics().AddCheckpoint();

  // Prune: keep the last `keep` generations. Best-effort — a prune failure
  // only leaves extra fallback files around.
  if (generation > static_cast<uint64_t>(options_.keep)) {
    const uint64_t oldest_kept = generation - static_cast<uint64_t>(options_.keep) + 1;
    DIR* d = ::opendir(options_.dir.c_str());
    if (d != nullptr) {
      std::vector<std::string> stale;
      while (struct dirent* entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.compare(0, std::strlen(kFilePrefix), kFilePrefix) != 0) continue;
        const unsigned long long g =
            std::strtoull(name.c_str() + std::strlen(kFilePrefix), nullptr, 10);
        if (g > 0 && g < oldest_kept) stale.push_back(options_.dir + "/" + name);
      }
      ::closedir(d);
      for (const std::string& path : stale) ::unlink(path.c_str());
    }
  }
  return Status::Ok();
}

}  // namespace otfair::serve
