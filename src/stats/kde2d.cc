#include "stats/kde2d.h"

#include <cmath>
#include <numbers>

#include "common/status.h"
#include "stats/bandwidth.h"

namespace otfair::stats {

using common::Matrix;
using common::Result;
using common::Status;

Result<GaussianKde2d> GaussianKde2d::Fit(std::vector<double> xs, std::vector<double> ys,
                                         double bandwidth_x, double bandwidth_y) {
  if (xs.empty()) return Status::InvalidArgument("KDE needs at least one sample");
  if (xs.size() != ys.size()) return Status::InvalidArgument("paired samples length mismatch");
  if (!(bandwidth_x > 0.0) || !(bandwidth_y > 0.0))
    return Status::InvalidArgument("bandwidths must be positive");
  for (size_t i = 0; i < xs.size(); ++i) {
    if (!std::isfinite(xs[i]) || !std::isfinite(ys[i]))
      return Status::InvalidArgument("KDE samples must be finite");
  }
  return GaussianKde2d(std::move(xs), std::move(ys), bandwidth_x, bandwidth_y);
}

Result<GaussianKde2d> GaussianKde2d::FitSilverman(std::vector<double> xs,
                                                  std::vector<double> ys) {
  if (xs.empty()) return Status::InvalidArgument("KDE needs at least one sample");
  if (xs.size() != ys.size()) return Status::InvalidArgument("paired samples length mismatch");
  const double hx = SilvermanBandwidth(xs);
  const double hy = SilvermanBandwidth(ys);
  return Fit(std::move(xs), std::move(ys), hx, hy);
}

double GaussianKde2d::Evaluate(double x, double y) const {
  const double inv_hx = 1.0 / bandwidth_x_;
  const double inv_hy = 1.0 / bandwidth_y_;
  double acc = 0.0;
  for (size_t i = 0; i < xs_.size(); ++i) {
    const double zx = (x - xs_[i]) * inv_hx;
    const double zy = (y - ys_[i]) * inv_hy;
    acc += std::exp(-0.5 * (zx * zx + zy * zy));
  }
  const double norm = 1.0 / (static_cast<double>(xs_.size()) * bandwidth_x_ * bandwidth_y_ *
                             2.0 * std::numbers::pi);
  return acc * norm;
}

Matrix GaussianKde2d::EvaluateOnGrid(const std::vector<double>& grid_x,
                                     const std::vector<double>& grid_y) const {
  // Separable kernel: precompute the per-axis kernel matrices and combine,
  // O(n (gx + gy) + gx gy n) -> O(n gx + n gy + gx gy) via the outer sum.
  const size_t gx = grid_x.size();
  const size_t gy = grid_y.size();
  Matrix kx(xs_.size(), gx);   // K((grid_x[a] - x_i)/hx)
  Matrix ky(xs_.size(), gy);
  const double inv_hx = 1.0 / bandwidth_x_;
  const double inv_hy = 1.0 / bandwidth_y_;
  for (size_t i = 0; i < xs_.size(); ++i) {
    double* rx = kx.row(i);
    double* ry = ky.row(i);
    for (size_t a = 0; a < gx; ++a) {
      const double z = (grid_x[a] - xs_[i]) * inv_hx;
      rx[a] = std::exp(-0.5 * z * z);
    }
    for (size_t b = 0; b < gy; ++b) {
      const double z = (grid_y[b] - ys_[i]) * inv_hy;
      ry[b] = std::exp(-0.5 * z * z);
    }
  }
  // density(a, b) = sum_i kx(i, a) * ky(i, b) = (kx' * ky)(a, b).
  Matrix density = kx.Transposed().Multiply(ky);
  const double norm = 1.0 / (static_cast<double>(xs_.size()) * bandwidth_x_ * bandwidth_y_ *
                             2.0 * std::numbers::pi);
  density.Scale(norm);
  return density;
}

Result<Matrix> GaussianKde2d::PmfOnGrid(const std::vector<double>& grid_x,
                                        const std::vector<double>& grid_y) const {
  if (grid_x.empty() || grid_y.empty()) return Status::InvalidArgument("empty grid");
  Matrix pmf = EvaluateOnGrid(grid_x, grid_y);
  const double total = pmf.Sum();
  if (!(total > 0.0))
    return Status::InvalidArgument("KDE mass underflowed on grid (grid outside data range?)");
  pmf.Scale(1.0 / total);
  return pmf;
}

}  // namespace otfair::stats
