#ifndef OTFAIR_STATS_DESCRIPTIVE_H_
#define OTFAIR_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace otfair::stats {

/// Descriptive statistics over a sample. All functions CHECK-fail on empty
/// input (empty samples are contract violations at this layer; callers
/// validate upstream).

/// Arithmetic mean.
double Mean(const std::vector<double>& xs);

/// Unbiased (n-1) sample variance; 0 for n == 1.
double Variance(const std::vector<double>& xs);

/// Square root of `Variance`.
double StdDev(const std::vector<double>& xs);

/// Smallest element.
double Min(const std::vector<double>& xs);

/// Largest element.
double Max(const std::vector<double>& xs);

/// Linear-interpolation sample quantile, q in [0, 1] (type-7, the numpy
/// default).
double Quantile(const std::vector<double>& xs, double q);

/// Median (Quantile at 0.5).
double Median(const std::vector<double>& xs);

/// Interquartile range Q3 - Q1.
double Iqr(const std::vector<double>& xs);

/// Mean and std in one pass over Monte-Carlo results.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& xs);

}  // namespace otfair::stats

#endif  // OTFAIR_STATS_DESCRIPTIVE_H_
