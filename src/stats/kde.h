#ifndef OTFAIR_STATS_KDE_H_
#define OTFAIR_STATS_KDE_H_

#include <vector>

#include "common/result.h"

namespace otfair::stats {

/// One-dimensional Gaussian kernel density estimator (paper Eqs. 11-12):
///
///     f_hat(x) = (1 / (n h)) * sum_i K((x - x_i) / h),  K = standard normal
///
/// Used to interpolate the empirical (u, s)-conditional feature marginals
/// onto the shared support Q during repair design (Algorithm 1 line 8).
class GaussianKde {
 public:
  /// Fits a KDE to `samples` with explicit bandwidth h > 0.
  static common::Result<GaussianKde> Fit(std::vector<double> samples, double bandwidth);

  /// Fits with Silverman's rule-of-thumb bandwidth (the paper's choice).
  static common::Result<GaussianKde> FitSilverman(std::vector<double> samples);

  /// Density estimate at x.
  double Evaluate(double x) const;

  /// Density estimates at each grid point.
  std::vector<double> EvaluateOnGrid(const std::vector<double>& grid) const;

  /// Normalized pmf over `grid`: densities rescaled to sum to one. This is
  /// exactly the paper's `p_{s,q} ∝ sum_i K(q - x_i, h)` (Eq. 11). Requires
  /// a non-empty grid; returns InvalidArgument if the total density
  /// underflows to zero (grid entirely outside the data range).
  common::Result<std::vector<double>> PmfOnGrid(const std::vector<double>& grid) const;

  double bandwidth() const { return bandwidth_; }
  size_t sample_size() const { return samples_.size(); }

 private:
  GaussianKde(std::vector<double> samples, double bandwidth)
      : samples_(std::move(samples)), bandwidth_(bandwidth) {}

  std::vector<double> samples_;
  double bandwidth_ = 0.0;
};

}  // namespace otfair::stats

#endif  // OTFAIR_STATS_KDE_H_
