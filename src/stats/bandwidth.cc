#include "stats/bandwidth.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/descriptive.h"

namespace otfair::stats {

namespace {
// Bandwidth used when the sample carries no spread at all; keeps the KDE a
// proper (if narrow) density instead of a delta.
constexpr double kDegenerateBandwidth = 1e-3;
}  // namespace

double SilvermanBandwidth(const std::vector<double>& samples) {
  OTFAIR_CHECK(!samples.empty());
  const double n = static_cast<double>(samples.size());
  const double sigma = StdDev(samples);
  const double iqr = Iqr(samples);
  double scale = std::min(sigma, iqr / 1.34);
  if (scale <= 0.0) scale = sigma;  // robust scale collapsed
  if (scale <= 0.0) return kDegenerateBandwidth;
  return 0.9 * scale * std::pow(n, -0.2);
}

double ScottBandwidth(const std::vector<double>& samples) {
  OTFAIR_CHECK(!samples.empty());
  const double sigma = StdDev(samples);
  if (sigma <= 0.0) return kDegenerateBandwidth;
  return sigma * std::pow(static_cast<double>(samples.size()), -0.2);
}

}  // namespace otfair::stats
