#include "stats/kde.h"

#include <cmath>
#include <numbers>

#include "common/status.h"
#include "stats/bandwidth.h"

namespace otfair::stats {

using common::Result;
using common::Status;

Result<GaussianKde> GaussianKde::Fit(std::vector<double> samples, double bandwidth) {
  if (samples.empty()) return Status::InvalidArgument("KDE needs at least one sample");
  if (!(bandwidth > 0.0)) return Status::InvalidArgument("bandwidth must be positive");
  for (double x : samples) {
    if (!std::isfinite(x)) return Status::InvalidArgument("KDE samples must be finite");
  }
  return GaussianKde(std::move(samples), bandwidth);
}

Result<GaussianKde> GaussianKde::FitSilverman(std::vector<double> samples) {
  if (samples.empty()) return Status::InvalidArgument("KDE needs at least one sample");
  const double h = SilvermanBandwidth(samples);
  return Fit(std::move(samples), h);
}

double GaussianKde::Evaluate(double x) const {
  const double inv_h = 1.0 / bandwidth_;
  double acc = 0.0;
  for (double xi : samples_) {
    const double z = (x - xi) * inv_h;
    acc += std::exp(-0.5 * z * z);
  }
  const double norm =
      1.0 / (static_cast<double>(samples_.size()) * bandwidth_ * std::sqrt(2.0 * std::numbers::pi));
  return acc * norm;
}

std::vector<double> GaussianKde::EvaluateOnGrid(const std::vector<double>& grid) const {
  std::vector<double> out(grid.size());
  for (size_t q = 0; q < grid.size(); ++q) out[q] = Evaluate(grid[q]);
  return out;
}

Result<std::vector<double>> GaussianKde::PmfOnGrid(const std::vector<double>& grid) const {
  if (grid.empty()) return Status::InvalidArgument("empty grid");
  std::vector<double> pmf = EvaluateOnGrid(grid);
  double total = 0.0;
  for (double p : pmf) total += p;
  if (!(total > 0.0))
    return Status::InvalidArgument("KDE mass underflowed on grid (grid outside data range?)");
  for (double& p : pmf) p /= total;
  return pmf;
}

}  // namespace otfair::stats
