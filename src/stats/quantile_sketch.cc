#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace otfair::stats {

using common::Status;

namespace {

/// Magnitudes below this collapse into the zero bucket; above the inverse,
/// into the top bucket. Together with the log-bin geometry this caps the
/// key span (and therefore sketch memory) at a constant.
constexpr double kMinAbs = 1e-12;
constexpr double kMaxAbs = 1e12;

}  // namespace

QuantileSketch::QuantileSketch(const Options& options) {
  alpha_ = std::min(0.25, std::max(1e-4, options.relative_accuracy));
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
  min_key_ = static_cast<int>(std::ceil(std::log(kMinAbs) * inv_log_gamma_));
  max_key_ = static_cast<int>(std::ceil(std::log(kMaxAbs) * inv_log_gamma_));
}

void QuantileSketch::Store::Add(int key, uint64_t n) {
  if (counts.empty()) {
    base = key;
    counts.push_back(n);
    return;
  }
  if (key < base) {
    counts.insert(counts.begin(), static_cast<size_t>(base - key), 0);
    base = key;
  } else if (key >= base + static_cast<int>(counts.size())) {
    counts.resize(static_cast<size_t>(key - base) + 1, 0);
  }
  counts[static_cast<size_t>(key - base)] += n;
}

int QuantileSketch::KeyFor(double abs_value) const {
  const double k = std::ceil(std::log(abs_value) * inv_log_gamma_);
  if (k <= min_key_) return min_key_;
  if (k >= max_key_) return max_key_;
  return static_cast<int>(k);
}

double QuantileSketch::BucketValue(int key) const {
  // Midpoint (in the relative sense) of the bucket (gamma^{k-1}, gamma^k]:
  // worst-case relative error alpha for any value in the bucket.
  return 2.0 * std::pow(gamma_, key) / (gamma_ + 1.0);
}

void QuantileSketch::Add(double x) {
  if (!std::isfinite(x)) {
    ++dropped_;
    return;
  }
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double ax = std::fabs(x);
  if (ax < kMinAbs) {
    ++zero_count_;
  } else if (x > 0.0) {
    positive_.Add(KeyFor(ax), 1);
  } else {
    negative_.Add(KeyFor(ax), 1);
  }
}

Status QuantileSketch::Merge(const QuantileSketch& other) {
  if (std::fabs(alpha_ - other.alpha_) > 1e-12)
    return Status::InvalidArgument("cannot merge sketches with different relative accuracy");
  for (size_t i = 0; i < other.negative_.counts.size(); ++i)
    if (other.negative_.counts[i] > 0)
      negative_.Add(other.negative_.base + static_cast<int>(i), other.negative_.counts[i]);
  for (size_t i = 0; i < other.positive_.counts.size(); ++i)
    if (other.positive_.counts[i] > 0)
      positive_.Add(other.positive_.base + static_cast<int>(i), other.positive_.counts[i]);
  zero_count_ += other.zero_count_;
  dropped_ += other.dropped_;
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
  }
  return Status::Ok();
}

double QuantileSketch::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double QuantileSketch::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

template <typename Fn>
void QuantileSketch::ForEachBucketAscending(Fn&& fn) const {
  for (size_t i = negative_.counts.size(); i-- > 0;) {
    if (negative_.counts[i] > 0)
      fn(-BucketValue(negative_.base + static_cast<int>(i)), negative_.counts[i]);
  }
  if (zero_count_ > 0) fn(0.0, zero_count_);
  for (size_t i = 0; i < positive_.counts.size(); ++i) {
    if (positive_.counts[i] > 0)
      fn(BucketValue(positive_.base + static_cast<int>(i)), positive_.counts[i]);
  }
}

double QuantileSketch::Quantile(double p) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  p = std::min(1.0, std::max(0.0, p));
  if (p <= 0.0) return min_;
  if (p >= 1.0) return max_;
  // 0-based rank of the order statistic the estimate targets.
  const uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(count_ - 1));
  uint64_t cumulative = 0;
  double result = max_;
  bool found = false;
  ForEachBucketAscending([&](double value, uint64_t n) {
    if (found) return;
    cumulative += n;
    if (cumulative > rank) {
      result = value;
      found = true;
    }
  });
  return std::min(max_, std::max(min_, result));
}

double QuantileSketch::Cdf(double x) const {
  if (count_ == 0) return 0.0;
  if (x < min_) return 0.0;
  if (x >= max_) return 1.0;
  uint64_t below = 0;
  ForEachBucketAscending([&](double value, uint64_t n) {
    if (value <= x) below += n;
  });
  return static_cast<double>(below) / static_cast<double>(count_);
}

void QuantileSketch::Reset() {
  negative_.counts.clear();
  positive_.counts.clear();
  negative_.base = 0;
  positive_.base = 0;
  zero_count_ = 0;
  count_ = 0;
  dropped_ = 0;
  min_ = 0.0;
  max_ = 0.0;
}

size_t QuantileSketch::bucket_count() const {
  return negative_.counts.size() + positive_.counts.size() + (zero_count_ > 0 ? 1 : 0);
}

void QuantileSketch::SerializeTo(common::ByteWriter& writer) const {
  writer.F64(alpha_);
  for (const Store* store : {&negative_, &positive_}) {
    writer.I32(store->base);
    writer.U64(store->counts.size());
    writer.U64s(store->counts.data(), store->counts.size());
  }
  writer.U64(zero_count_);
  writer.U64(count_);
  writer.U64(dropped_);
  writer.F64(min_);
  writer.F64(max_);
}

Status QuantileSketch::DeserializeFrom(common::ByteReader& reader) {
  double alpha = 0.0;
  if (!reader.F64(&alpha)) return Status::InvalidArgument("sketch: truncated alpha");
  if (!std::isfinite(alpha) || alpha < 1e-4 || alpha > 0.25)
    return Status::InvalidArgument("sketch: relative accuracy out of range");

  // Rebuild the geometry from alpha, then validate every bucket span
  // against it before any state is committed.
  QuantileSketch fresh(Options{alpha});

  const size_t key_span =
      static_cast<size_t>(fresh.max_key_ - fresh.min_key_) + 1;
  for (Store* store : {&fresh.negative_, &fresh.positive_}) {
    int32_t base = 0;
    uint64_t size = 0;
    if (!reader.I32(&base) || !reader.U64(&size))
      return Status::InvalidArgument("sketch: truncated store header");
    if (size > key_span)
      return Status::InvalidArgument("sketch: store size exceeds key span");
    if (size > 0 &&
        (base < fresh.min_key_ ||
         base + static_cast<int64_t>(size) - 1 > fresh.max_key_))
      return Status::InvalidArgument("sketch: store base outside key range");
    if (!reader.Fits(size, sizeof(uint64_t)))
      return Status::InvalidArgument("sketch: store counts truncated");
    store->base = base;
    store->counts.resize(static_cast<size_t>(size));
    if (!reader.U64s(store->counts.data(), store->counts.size()))
      return Status::InvalidArgument("sketch: store counts truncated");
  }

  if (!reader.U64(&fresh.zero_count_) || !reader.U64(&fresh.count_) ||
      !reader.U64(&fresh.dropped_) || !reader.F64(&fresh.min_) ||
      !reader.F64(&fresh.max_))
    return Status::InvalidArgument("sketch: truncated tail");

  uint64_t sum = fresh.zero_count_;
  for (const Store* store : {&fresh.negative_, &fresh.positive_}) {
    for (uint64_t c : store->counts) {
      if (c > fresh.count_ || sum > fresh.count_ - c)
        return Status::InvalidArgument("sketch: bucket counts exceed total");
      sum += c;
    }
  }
  if (sum != fresh.count_)
    return Status::InvalidArgument("sketch: bucket counts do not sum to total");
  if (fresh.count_ > 0) {
    if (!std::isfinite(fresh.min_) || !std::isfinite(fresh.max_) ||
        fresh.min_ > fresh.max_)
      return Status::InvalidArgument("sketch: invalid min/max");
  } else if (fresh.min_ != 0.0 || fresh.max_ != 0.0) {
    return Status::InvalidArgument("sketch: empty sketch with nonzero extremes");
  }

  *this = std::move(fresh);
  return Status::Ok();
}

}  // namespace otfair::stats
