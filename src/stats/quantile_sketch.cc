#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace otfair::stats {

using common::Status;

namespace {

/// Magnitudes below this collapse into the zero bucket; above the inverse,
/// into the top bucket. Together with the log-bin geometry this caps the
/// key span (and therefore sketch memory) at a constant.
constexpr double kMinAbs = 1e-12;
constexpr double kMaxAbs = 1e12;

}  // namespace

QuantileSketch::QuantileSketch(const Options& options) {
  alpha_ = std::min(0.25, std::max(1e-4, options.relative_accuracy));
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
  min_key_ = static_cast<int>(std::ceil(std::log(kMinAbs) * inv_log_gamma_));
  max_key_ = static_cast<int>(std::ceil(std::log(kMaxAbs) * inv_log_gamma_));
}

void QuantileSketch::Store::Add(int key, uint64_t n) {
  if (counts.empty()) {
    base = key;
    counts.push_back(n);
    return;
  }
  if (key < base) {
    counts.insert(counts.begin(), static_cast<size_t>(base - key), 0);
    base = key;
  } else if (key >= base + static_cast<int>(counts.size())) {
    counts.resize(static_cast<size_t>(key - base) + 1, 0);
  }
  counts[static_cast<size_t>(key - base)] += n;
}

int QuantileSketch::KeyFor(double abs_value) const {
  const double k = std::ceil(std::log(abs_value) * inv_log_gamma_);
  if (k <= min_key_) return min_key_;
  if (k >= max_key_) return max_key_;
  return static_cast<int>(k);
}

double QuantileSketch::BucketValue(int key) const {
  // Midpoint (in the relative sense) of the bucket (gamma^{k-1}, gamma^k]:
  // worst-case relative error alpha for any value in the bucket.
  return 2.0 * std::pow(gamma_, key) / (gamma_ + 1.0);
}

void QuantileSketch::Add(double x) {
  if (!std::isfinite(x)) {
    ++dropped_;
    return;
  }
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double ax = std::fabs(x);
  if (ax < kMinAbs) {
    ++zero_count_;
  } else if (x > 0.0) {
    positive_.Add(KeyFor(ax), 1);
  } else {
    negative_.Add(KeyFor(ax), 1);
  }
}

Status QuantileSketch::Merge(const QuantileSketch& other) {
  if (std::fabs(alpha_ - other.alpha_) > 1e-12)
    return Status::InvalidArgument("cannot merge sketches with different relative accuracy");
  for (size_t i = 0; i < other.negative_.counts.size(); ++i)
    if (other.negative_.counts[i] > 0)
      negative_.Add(other.negative_.base + static_cast<int>(i), other.negative_.counts[i]);
  for (size_t i = 0; i < other.positive_.counts.size(); ++i)
    if (other.positive_.counts[i] > 0)
      positive_.Add(other.positive_.base + static_cast<int>(i), other.positive_.counts[i]);
  zero_count_ += other.zero_count_;
  dropped_ += other.dropped_;
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
  }
  return Status::Ok();
}

double QuantileSketch::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double QuantileSketch::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

template <typename Fn>
void QuantileSketch::ForEachBucketAscending(Fn&& fn) const {
  for (size_t i = negative_.counts.size(); i-- > 0;) {
    if (negative_.counts[i] > 0)
      fn(-BucketValue(negative_.base + static_cast<int>(i)), negative_.counts[i]);
  }
  if (zero_count_ > 0) fn(0.0, zero_count_);
  for (size_t i = 0; i < positive_.counts.size(); ++i) {
    if (positive_.counts[i] > 0)
      fn(BucketValue(positive_.base + static_cast<int>(i)), positive_.counts[i]);
  }
}

double QuantileSketch::Quantile(double p) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  p = std::min(1.0, std::max(0.0, p));
  if (p <= 0.0) return min_;
  if (p >= 1.0) return max_;
  // 0-based rank of the order statistic the estimate targets.
  const uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(count_ - 1));
  uint64_t cumulative = 0;
  double result = max_;
  bool found = false;
  ForEachBucketAscending([&](double value, uint64_t n) {
    if (found) return;
    cumulative += n;
    if (cumulative > rank) {
      result = value;
      found = true;
    }
  });
  return std::min(max_, std::max(min_, result));
}

double QuantileSketch::Cdf(double x) const {
  if (count_ == 0) return 0.0;
  if (x < min_) return 0.0;
  if (x >= max_) return 1.0;
  uint64_t below = 0;
  ForEachBucketAscending([&](double value, uint64_t n) {
    if (value <= x) below += n;
  });
  return static_cast<double>(below) / static_cast<double>(count_);
}

void QuantileSketch::Reset() {
  negative_.counts.clear();
  positive_.counts.clear();
  negative_.base = 0;
  positive_.base = 0;
  zero_count_ = 0;
  count_ = 0;
  dropped_ = 0;
  min_ = 0.0;
  max_ = 0.0;
}

size_t QuantileSketch::bucket_count() const {
  return negative_.counts.size() + positive_.counts.size() + (zero_count_ > 0 ? 1 : 0);
}

}  // namespace otfair::stats
