#ifndef OTFAIR_STATS_NORMAL_H_
#define OTFAIR_STATS_NORMAL_H_

namespace otfair::stats {

/// Standard-normal and general Gaussian density utilities.

/// Density of N(mean, sd^2) at x; sd must be > 0.
double NormalPdf(double x, double mean = 0.0, double sd = 1.0);

/// Log-density of N(mean, sd^2) at x; sd must be > 0.
double NormalLogPdf(double x, double mean = 0.0, double sd = 1.0);

/// CDF of N(mean, sd^2) at x via erf.
double NormalCdf(double x, double mean = 0.0, double sd = 1.0);

/// Inverse standard-normal CDF (Acklam's rational approximation, |error| <
/// 1.2e-9); q must lie in (0, 1).
double NormalQuantile(double q);

}  // namespace otfair::stats

#endif  // OTFAIR_STATS_NORMAL_H_
