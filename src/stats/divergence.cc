#include "stats/divergence.h"

#include <cmath>

#include "common/status.h"

namespace otfair::stats {

using common::Result;
using common::Status;

namespace {

/// Validates and normalizes a pmf, applying the floor to zero states.
Result<std::vector<double>> NormalizePmf(const std::vector<double>& p, double floor) {
  if (p.empty()) return Status::InvalidArgument("empty pmf");
  std::vector<double> out(p.size());
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (!(p[i] >= 0.0) || !std::isfinite(p[i]))
      return Status::InvalidArgument("pmf entries must be non-negative and finite");
    out[i] = p[i] < floor ? floor : p[i];
    total += out[i];
  }
  if (!(total > 0.0)) return Status::InvalidArgument("pmf has zero total mass");
  for (double& v : out) v /= total;
  return out;
}

}  // namespace

Result<double> KlDivergence(const std::vector<double>& p, const std::vector<double>& q,
                            double floor) {
  if (p.size() != q.size()) return Status::InvalidArgument("pmf length mismatch");
  auto pn = NormalizePmf(p, floor);
  if (!pn.ok()) return pn.status();
  auto qn = NormalizePmf(q, floor);
  if (!qn.ok()) return qn.status();
  double kl = 0.0;
  for (size_t i = 0; i < pn->size(); ++i) {
    const double pi = (*pn)[i];
    const double qi = (*qn)[i];
    if (pi > 0.0) kl += pi * std::log(pi / qi);
  }
  // Smoothing can leave a vanishingly small negative value; clamp.
  return kl < 0.0 ? 0.0 : kl;
}

Result<double> SymmetrizedKl(const std::vector<double>& p, const std::vector<double>& q,
                             double floor) {
  auto forward = KlDivergence(p, q, floor);
  if (!forward.ok()) return forward.status();
  auto backward = KlDivergence(q, p, floor);
  if (!backward.ok()) return backward.status();
  return 0.5 * (*forward + *backward);
}

Result<double> JensenShannon(const std::vector<double>& p, const std::vector<double>& q) {
  if (p.size() != q.size()) return Status::InvalidArgument("pmf length mismatch");
  auto pn = NormalizePmf(p, 0.0);
  if (!pn.ok()) return pn.status();
  auto qn = NormalizePmf(q, 0.0);
  if (!qn.ok()) return qn.status();
  std::vector<double> mid(pn->size());
  for (size_t i = 0; i < mid.size(); ++i) mid[i] = 0.5 * ((*pn)[i] + (*qn)[i]);
  double js = 0.0;
  for (size_t i = 0; i < mid.size(); ++i) {
    if ((*pn)[i] > 0.0) js += 0.5 * (*pn)[i] * std::log((*pn)[i] / mid[i]);
    if ((*qn)[i] > 0.0) js += 0.5 * (*qn)[i] * std::log((*qn)[i] / mid[i]);
  }
  return js < 0.0 ? 0.0 : js;
}

Result<double> TotalVariation(const std::vector<double>& p, const std::vector<double>& q) {
  if (p.size() != q.size()) return Status::InvalidArgument("pmf length mismatch");
  auto pn = NormalizePmf(p, 0.0);
  if (!pn.ok()) return pn.status();
  auto qn = NormalizePmf(q, 0.0);
  if (!qn.ok()) return qn.status();
  double tv = 0.0;
  for (size_t i = 0; i < pn->size(); ++i) tv += std::fabs((*pn)[i] - (*qn)[i]);
  return 0.5 * tv;
}

}  // namespace otfair::stats
