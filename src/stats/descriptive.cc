#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace otfair::stats {

double Mean(const std::vector<double>& xs) {
  OTFAIR_CHECK(!xs.empty());
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  OTFAIR_CHECK(!xs.empty());
  if (xs.size() == 1) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Min(const std::vector<double>& xs) {
  OTFAIR_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  OTFAIR_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double Quantile(const std::vector<double>& xs, double q) {
  OTFAIR_CHECK(!xs.empty());
  OTFAIR_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs);
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Median(const std::vector<double>& xs) { return Quantile(xs, 0.5); }

double Iqr(const std::vector<double>& xs) { return Quantile(xs, 0.75) - Quantile(xs, 0.25); }

MeanStd ComputeMeanStd(const std::vector<double>& xs) {
  MeanStd out;
  out.mean = Mean(xs);
  out.std = StdDev(xs);
  return out;
}

}  // namespace otfair::stats
