#ifndef OTFAIR_STATS_HISTOGRAM_H_
#define OTFAIR_STATS_HISTOGRAM_H_

#include <vector>

#include "common/result.h"

namespace otfair::stats {

/// Fixed-width histogram over [lo, hi] with `num_bins` equal bins.
///
/// Serves as the non-smoothed alternative to KDE when estimating marginal
/// pmfs (used in ablation benchmarks comparing marginal estimators), and as
/// a goodness-of-fit utility in tests.
class UniformHistogram {
 public:
  /// Builds a histogram; values outside [lo, hi] are clamped to the end
  /// bins. Requires hi > lo and num_bins >= 1.
  static common::Result<UniformHistogram> Build(const std::vector<double>& samples,
                                                size_t num_bins, double lo, double hi);

  /// Builds over the sample range (expanded slightly when degenerate).
  static common::Result<UniformHistogram> BuildAuto(const std::vector<double>& samples,
                                                    size_t num_bins);

  size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return (hi_ - lo_) / static_cast<double>(counts_.size()); }
  const std::vector<size_t>& counts() const { return counts_; }
  size_t total_count() const { return total_; }

  /// Centre of bin b.
  double BinCenter(size_t b) const;

  /// Normalized pmf over the bins.
  std::vector<double> Pmf() const;

  /// Density estimate (pmf / bin_width) at x; 0 outside [lo, hi].
  double Density(double x) const;

 private:
  UniformHistogram(std::vector<size_t> counts, double lo, double hi, size_t total)
      : counts_(std::move(counts)), lo_(lo), hi_(hi), total_(total) {}

  std::vector<size_t> counts_;
  double lo_;
  double hi_;
  size_t total_;
};

}  // namespace otfair::stats

#endif  // OTFAIR_STATS_HISTOGRAM_H_
