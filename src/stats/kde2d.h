#ifndef OTFAIR_STATS_KDE2D_H_
#define OTFAIR_STATS_KDE2D_H_

#include <vector>

#include "common/matrix.h"
#include "common/result.h"

namespace otfair::stats {

/// Two-dimensional Gaussian product-kernel density estimator:
///
///     f_hat(x, y) = (1 / (n hx hy)) * sum_i K((x-x_i)/hx) K((y-y_i)/hy)
///
/// with per-dimension Silverman bandwidths by default. Used by the joint
/// (bivariate) fairness metric and the joint-repair design, which estimate
/// (u, s)-conditional densities over feature *pairs* instead of single
/// channels — the correlation-aware extension sketched in paper §VI.
class GaussianKde2d {
 public:
  /// Fits to paired samples (same length, >= 1) with explicit bandwidths.
  static common::Result<GaussianKde2d> Fit(std::vector<double> xs, std::vector<double> ys,
                                           double bandwidth_x, double bandwidth_y);

  /// Fits with per-dimension Silverman bandwidths.
  static common::Result<GaussianKde2d> FitSilverman(std::vector<double> xs,
                                                    std::vector<double> ys);

  /// Density estimate at (x, y).
  double Evaluate(double x, double y) const;

  /// Density matrix over the product grid: entry (i, j) is the density at
  /// (grid_x[i], grid_y[j]).
  common::Matrix EvaluateOnGrid(const std::vector<double>& grid_x,
                                const std::vector<double>& grid_y) const;

  /// Normalized joint pmf over the product grid (sums to one). Returns
  /// InvalidArgument if the mass underflows on the grid.
  common::Result<common::Matrix> PmfOnGrid(const std::vector<double>& grid_x,
                                           const std::vector<double>& grid_y) const;

  double bandwidth_x() const { return bandwidth_x_; }
  double bandwidth_y() const { return bandwidth_y_; }
  size_t sample_size() const { return xs_.size(); }

 private:
  GaussianKde2d(std::vector<double> xs, std::vector<double> ys, double hx, double hy)
      : xs_(std::move(xs)), ys_(std::move(ys)), bandwidth_x_(hx), bandwidth_y_(hy) {}

  std::vector<double> xs_;
  std::vector<double> ys_;
  double bandwidth_x_ = 0.0;
  double bandwidth_y_ = 0.0;
};

}  // namespace otfair::stats

#endif  // OTFAIR_STATS_KDE2D_H_
