#ifndef OTFAIR_STATS_QUANTILE_SKETCH_H_
#define OTFAIR_STATS_QUANTILE_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/byte_io.h"
#include "common/status.h"

namespace otfair::stats {

/// A mergeable, bounded-memory streaming quantile sketch with relative
/// value-accuracy guarantees (DDSketch-style log-binned buckets).
///
/// Every finite value lands in a bucket keyed by ceil(log_gamma |x|), with
/// gamma = (1 + alpha) / (1 - alpha), so any returned quantile q satisfies
/// |q - x_true| <= alpha * |x_true| for the value it estimates (plus the
/// usual half-rank discretization). Keys are clamped to the magnitude range
/// [1e-12, 1e12], which bounds the sketch at ~5.5k buckets (~44 KB) at the
/// default alpha = 0.01 no matter how many values stream in — in practice a
/// serving channel touches a few hundred buckets. Exact min/max/count are
/// tracked on the side, so extreme quantiles are exact.
///
/// Determinism and merge algebra: the sketch holds no RNG state and merging
/// is element-wise integer addition of bucket counts, so `Merge` is exactly
/// commutative and associative — per-thread sketches merged in ANY order
/// yield bit-identical quantile estimates. This is the property the serving
/// redesign path leans on: sharded per-channel sketches can be snapshotted
/// and combined without coordinating with writers' merge order.
class QuantileSketch {
 public:
  struct Options {
    /// Relative value accuracy alpha in (0, 0.25]; values outside are
    /// clamped. Smaller alpha = finer buckets = more memory (the bucket
    /// ceiling scales as 1/alpha).
    double relative_accuracy = 0.01;
  };

  QuantileSketch() : QuantileSketch(Options{}) {}
  explicit QuantileSketch(const Options& options);

  /// Streams one value in. Non-finite values are dropped (counted in
  /// `dropped()`), never folded into the distribution.
  void Add(double x);

  /// Folds `other` into this sketch. Requires identical relative accuracy
  /// (bucket geometry). Commutative and associative in the exact sense.
  common::Status Merge(const QuantileSketch& other);

  /// Finite values observed.
  uint64_t count() const { return count_; }
  /// Non-finite values rejected by Add.
  uint64_t dropped() const { return dropped_; }
  /// Exact extremes of the observed values; NaN when empty.
  double min() const;
  double max() const;

  /// Estimated p-quantile (p clamped to [0, 1]); NaN when empty. p = 0 and
  /// p = 1 return the exact min/max, and every estimate is clamped into
  /// [min, max].
  double Quantile(double p) const;

  /// Estimated fraction of observed mass <= x; 0 when empty.
  double Cdf(double x) const;

  /// Drops all observed state, keeping the bucket geometry.
  void Reset();

  /// Appends the full sketch state (geometry parameter + every bucket
  /// count + exact min/max/count) to `writer`. A sketch restored with
  /// DeserializeFrom is bit-identical to this one: same buckets, same
  /// counts, same extremes — so Quantile/Cdf answer identically. This is
  /// the property checkpoint recovery relies on.
  void SerializeTo(common::ByteWriter& writer) const;

  /// Replaces this sketch's state with one previously written by
  /// SerializeTo, validating every field: truncated input, impossible
  /// bucket spans, count mismatches, and non-finite extremes all return
  /// kInvalidArgument and leave the sketch untouched.
  common::Status DeserializeFrom(common::ByteReader& reader);

  /// Occupied bucket-array length (a memory gauge, exposed for tests and
  /// the bounded-memory claim).
  size_t bucket_count() const;

  double relative_accuracy() const { return alpha_; }

 private:
  /// One sign's bucket array: counts over a contiguous key range starting
  /// at `base`. Grown on demand; key clamping bounds its length.
  struct Store {
    std::vector<uint64_t> counts;
    int base = 0;

    void Add(int key, uint64_t n);
    bool empty() const { return counts.empty(); }
  };

  int KeyFor(double abs_value) const;
  double BucketValue(int key) const;

  /// Invokes fn(value_estimate, count) over every non-empty bucket in
  /// ascending value order: negatives (descending key), zero, positives
  /// (ascending key).
  template <typename Fn>
  void ForEachBucketAscending(Fn&& fn) const;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  int min_key_;
  int max_key_;

  Store negative_;
  Store positive_;
  uint64_t zero_count_ = 0;
  uint64_t count_ = 0;
  uint64_t dropped_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace otfair::stats

#endif  // OTFAIR_STATS_QUANTILE_SKETCH_H_
