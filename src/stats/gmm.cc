#include "stats/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/check.h"
#include "common/status.h"

namespace otfair::stats {

using common::Matrix;
using common::Result;
using common::Rng;
using common::Status;

namespace {

/// Log-density of a diagonal Gaussian at row `x`.
double ComponentLogPdf(const GmmComponent& c, const double* x, size_t d) {
  double acc = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double z2 = (x[j] - c.mean[j]) * (x[j] - c.mean[j]) / c.var[j];
    acc += -0.5 * z2 - 0.5 * std::log(2.0 * std::numbers::pi * c.var[j]);
  }
  return acc;
}

double LogSumExp(const std::vector<double>& v) {
  double hi = -std::numeric_limits<double>::infinity();
  for (double x : v) hi = std::max(hi, x);
  if (!std::isfinite(hi)) return hi;
  double acc = 0.0;
  for (double x : v) acc += std::exp(x - hi);
  return hi + std::log(acc);
}

/// k-means++-style seeding: first centre uniform, later centres weighted by
/// squared distance to the nearest existing centre.
std::vector<size_t> SeedCentres(const Matrix& data, size_t k, Rng& rng) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  std::vector<size_t> centres;
  centres.push_back(rng.UniformInt(n));
  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  while (centres.size() < k) {
    const double* c = data.row(centres.back());
    for (size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      const double* x = data.row(i);
      for (size_t j = 0; j < d; ++j) acc += (x[j] - c[j]) * (x[j] - c[j]);
      dist2[i] = std::min(dist2[i], acc);
    }
    double total = 0.0;
    for (double v : dist2) total += v;
    if (total <= 0.0) {
      centres.push_back(rng.UniformInt(n));  // all points identical
      continue;
    }
    double u = rng.Uniform() * total;
    size_t pick = n - 1;
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += dist2[i];
      if (u < acc) {
        pick = i;
        break;
      }
    }
    centres.push_back(pick);
  }
  return centres;
}

}  // namespace

Result<GaussianMixture> GaussianMixture::FitEm(const Matrix& data, size_t k, Rng& rng,
                                               const GmmOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("empty data matrix");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (n < k) return Status::InvalidArgument("fewer rows than components");

  // Global per-dimension variance for initialization and flooring.
  std::vector<double> global_mean(d, 0.0);
  std::vector<double> global_var(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* x = data.row(i);
    for (size_t j = 0; j < d; ++j) global_mean[j] += x[j];
  }
  for (size_t j = 0; j < d; ++j) global_mean[j] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double* x = data.row(i);
    for (size_t j = 0; j < d; ++j)
      global_var[j] += (x[j] - global_mean[j]) * (x[j] - global_mean[j]);
  }
  for (size_t j = 0; j < d; ++j)
    global_var[j] = std::max(global_var[j] / static_cast<double>(n), options.variance_floor);

  // Initialize from a hard nearest-seed assignment (one k-means step).
  // Seeding each component with the *global* covariance flattens the first
  // E-step responsibilities and EM stalls on a saddle; cluster-local
  // moments give it a usable gradient from iteration one.
  std::vector<GmmComponent> comps(k);
  const std::vector<size_t> seeds = SeedCentres(data, k, rng);
  std::vector<size_t> assignment(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const double* x = data.row(i);
    double best = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      const double* seed = data.row(seeds[c]);
      double dist = 0.0;
      for (size_t j = 0; j < d; ++j) dist += (x[j] - seed[j]) * (x[j] - seed[j]);
      if (dist < best) {
        best = dist;
        assignment[i] = c;
      }
    }
  }
  std::vector<size_t> cluster_sizes(k, 0);
  for (size_t c = 0; c < k; ++c) {
    comps[c].mean.assign(d, 0.0);
    comps[c].var.assign(d, 0.0);
  }
  for (size_t i = 0; i < n; ++i) {
    ++cluster_sizes[assignment[i]];
    const double* x = data.row(i);
    for (size_t j = 0; j < d; ++j) comps[assignment[i]].mean[j] += x[j];
  }
  for (size_t c = 0; c < k; ++c) {
    if (cluster_sizes[c] == 0) {
      comps[c].mean.assign(data.row(seeds[c]), data.row(seeds[c]) + d);
      comps[c].var = global_var;
      comps[c].weight = 1.0 / static_cast<double>(k);
      continue;
    }
    for (size_t j = 0; j < d; ++j) comps[c].mean[j] /= static_cast<double>(cluster_sizes[c]);
    comps[c].weight = static_cast<double>(cluster_sizes[c]) / static_cast<double>(n);
  }
  for (size_t i = 0; i < n; ++i) {
    const double* x = data.row(i);
    GmmComponent& c = comps[assignment[i]];
    for (size_t j = 0; j < d; ++j) c.var[j] += (x[j] - c.mean[j]) * (x[j] - c.mean[j]);
  }
  for (size_t c = 0; c < k; ++c) {
    if (cluster_sizes[c] == 0) continue;
    for (size_t j = 0; j < d; ++j) {
      comps[c].var[j] =
          std::max(comps[c].var[j] / static_cast<double>(cluster_sizes[c]),
                   options.variance_floor);
    }
  }

  Matrix resp(n, k);
  std::vector<double> logp(k);
  double prev_ll = -std::numeric_limits<double>::infinity();
  size_t iterations = 0;

  for (size_t iter = 1; iter <= options.max_iterations; ++iter) {
    iterations = iter;
    // E-step.
    double ll = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double* x = data.row(i);
      for (size_t c = 0; c < k; ++c)
        logp[c] = std::log(std::max(comps[c].weight, 1e-300)) + ComponentLogPdf(comps[c], x, d);
      const double lse = LogSumExp(logp);
      ll += lse;
      for (size_t c = 0; c < k; ++c) resp(i, c) = std::exp(logp[c] - lse);
    }
    ll /= static_cast<double>(n);

    // M-step.
    for (size_t c = 0; c < k; ++c) {
      double nk = 0.0;
      for (size_t i = 0; i < n; ++i) nk += resp(i, c);
      if (nk < 1e-10) {
        // Dead component: re-seed it on a random data point with the global
        // spread so EM can recover instead of dividing by ~zero.
        const size_t pick = rng.UniformInt(n);
        comps[c].mean.assign(data.row(pick), data.row(pick) + d);
        comps[c].var = global_var;
        comps[c].weight = 1.0 / static_cast<double>(k);
        continue;
      }
      comps[c].weight = nk / static_cast<double>(n);
      for (size_t j = 0; j < d; ++j) {
        double m = 0.0;
        for (size_t i = 0; i < n; ++i) m += resp(i, c) * data(i, j);
        comps[c].mean[j] = m / nk;
      }
      for (size_t j = 0; j < d; ++j) {
        double v = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double dlt = data(i, j) - comps[c].mean[j];
          v += resp(i, c) * dlt * dlt;
        }
        comps[c].var[j] = std::max(v / nk, options.variance_floor);
      }
    }

    if (std::fabs(ll - prev_ll) < options.tolerance) break;
    prev_ll = ll;
  }

  GaussianMixture model(std::move(comps));
  model.em_iterations_ = iterations;
  return model;
}

Result<GaussianMixture> GaussianMixture::FitSupervised(const Matrix& data,
                                                       const std::vector<size_t>& labels, size_t k,
                                                       double variance_floor) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("empty data matrix");
  if (labels.size() != n) return Status::InvalidArgument("labels length mismatch");
  if (k == 0) return Status::InvalidArgument("k must be positive");

  std::vector<GmmComponent> comps(k);
  std::vector<size_t> counts(k, 0);
  for (size_t c = 0; c < k; ++c) {
    comps[c].mean.assign(d, 0.0);
    comps[c].var.assign(d, 0.0);
  }
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] >= k) return Status::InvalidArgument("label out of range");
    ++counts[labels[i]];
    const double* x = data.row(i);
    for (size_t j = 0; j < d; ++j) comps[labels[i]].mean[j] += x[j];
  }
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) return Status::InvalidArgument("empty class in supervised GMM fit");
    for (size_t j = 0; j < d; ++j) comps[c].mean[j] /= static_cast<double>(counts[c]);
    comps[c].weight = static_cast<double>(counts[c]) / static_cast<double>(n);
  }
  for (size_t i = 0; i < n; ++i) {
    const double* x = data.row(i);
    GmmComponent& c = comps[labels[i]];
    for (size_t j = 0; j < d; ++j) c.var[j] += (x[j] - c.mean[j]) * (x[j] - c.mean[j]);
  }
  for (size_t c = 0; c < k; ++c) {
    for (size_t j = 0; j < d; ++j)
      comps[c].var[j] = std::max(comps[c].var[j] / static_cast<double>(counts[c]), variance_floor);
  }
  return GaussianMixture(std::move(comps));
}

double GaussianMixture::LogDensity(const std::vector<double>& x) const {
  OTFAIR_CHECK_EQ(x.size(), dim());
  std::vector<double> logp(components_.size());
  for (size_t c = 0; c < components_.size(); ++c) {
    logp[c] = std::log(std::max(components_[c].weight, 1e-300)) +
              ComponentLogPdf(components_[c], x.data(), x.size());
  }
  return LogSumExp(logp);
}

std::vector<double> GaussianMixture::Responsibilities(const std::vector<double>& x) const {
  OTFAIR_CHECK_EQ(x.size(), dim());
  std::vector<double> logp(components_.size());
  for (size_t c = 0; c < components_.size(); ++c) {
    logp[c] = std::log(std::max(components_[c].weight, 1e-300)) +
              ComponentLogPdf(components_[c], x.data(), x.size());
  }
  const double lse = LogSumExp(logp);
  std::vector<double> resp(components_.size());
  for (size_t c = 0; c < components_.size(); ++c) resp[c] = std::exp(logp[c] - lse);
  return resp;
}

size_t GaussianMixture::Classify(const std::vector<double>& x) const {
  const std::vector<double> resp = Responsibilities(x);
  size_t best = 0;
  for (size_t c = 1; c < resp.size(); ++c) {
    if (resp[c] > resp[best]) best = c;
  }
  return best;
}

double GaussianMixture::MeanLogLikelihood(const Matrix& data) const {
  OTFAIR_CHECK_GT(data.rows(), 0u);
  double acc = 0.0;
  std::vector<double> x(data.cols());
  for (size_t i = 0; i < data.rows(); ++i) {
    x.assign(data.row(i), data.row(i) + data.cols());
    acc += LogDensity(x);
  }
  return acc / static_cast<double>(data.rows());
}

}  // namespace otfair::stats
