#ifndef OTFAIR_STATS_SAMPLING_H_
#define OTFAIR_STATS_SAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace otfair::stats {

/// Walker/Vose alias table for O(1) categorical sampling.
///
/// Algorithm 2 of the paper draws, for every archival record, one state from
/// the normalized row of an OT plan (Eq. 15). With torrents of archival
/// data that draw dominates repair cost, so the repairer precomputes one
/// alias table per plan row: O(n_Q) setup once, O(1) per record thereafter.
class AliasTable {
 public:
  /// Builds a table from unnormalized, non-negative weights (at least one
  /// strictly positive).
  static common::Result<AliasTable> Build(const std::vector<double>& weights);

  /// As above, from a raw pointer + length — the repair-table hot path
  /// builds one table per CSR plan row and this overload reads the row's
  /// value span in place instead of copying it into a fresh vector.
  static common::Result<AliasTable> Build(const double* weights, size_t count);

  /// Draws an index in [0, size()) with probability proportional to the
  /// original weights. Consumes one uniform and one Bernoulli from `rng`.
  size_t Sample(common::Rng& rng) const;

  size_t size() const { return prob_.size(); }

  /// Reconstructed sampling probability of index i (for tests).
  double Probability(size_t i) const;

 private:
  AliasTable(std::vector<double> prob, std::vector<size_t> alias, std::vector<double> pmf)
      : prob_(std::move(prob)), alias_(std::move(alias)), pmf_(std::move(pmf)) {}

  std::vector<double> prob_;    // acceptance probability per bucket
  std::vector<size_t> alias_;   // fallback index per bucket
  std::vector<double> pmf_;     // normalized input, kept for Probability()
};

/// A packed arena of Walker/Vose alias tables, one per "row", laid out
/// slot-major: every bucket of a row is one contiguous 16-byte Slot
/// carrying the acceptance probability AND both candidate payloads, and
/// all rows share a single arena allocation.
///
/// This is the batch-repair replacement for a vector<AliasTable>: the
/// per-table layout (three separate heap vectors per row) costs two or
/// three dependent cache misses per draw once the channel count grows —
/// measured as a ~22% repair-throughput loss going from K=2 to K=4
/// feature channels. The arena makes a draw exactly one slot load after
/// the bucket pick, and rows can be software-prefetched ahead of use.
///
/// Determinism contract: construction replicates AliasTable::Build's
/// arithmetic exactly (same normalization and Vose pairing order), and
/// SampleCol consumes the generator exactly like AliasTable::Sample (one
/// UniformInt, then one Bernoulli on a bit-identical probability — which
/// for degenerate probabilities consumes nothing, so even the *count* of
/// draws matches). Swapping a table for an arena row cannot change any
/// downstream random stream.
class AliasArena {
 public:
  struct Slot {
    double prob;         // acceptance probability of this bucket
    uint32_t col;        // payload returned when the bucket accepts
    uint32_t alias_col;  // payload returned when it rejects (Vose alias)
  };
  static_assert(sizeof(Slot) == 16, "Slot must pack to 16 bytes");

  /// Pre-sizes the arena (rows and total buckets are both known up front
  /// when building from a CSR plan: rows() and nnz()).
  void Reserve(size_t rows, size_t total_slots);

  /// Appends one row built from unnormalized non-negative weights (at
  /// least one strictly positive) and their payload columns.
  common::Status AppendRow(const double* weights, const uint32_t* cols,
                           size_t count);

  /// Appends a row with no buckets (a zero-mass plan row; the caller's
  /// fallback machinery must redirect draws elsewhere).
  void AppendEmptyRow();

  size_t rows() const { return offsets_.size() - 1; }
  bool RowHasMass(size_t row) const { return offsets_[row + 1] > offsets_[row]; }
  size_t RowSize(size_t row) const { return offsets_[row + 1] - offsets_[row]; }

  /// Draws a payload column from row `row` (which must have mass). RNG
  /// consumption is identical to AliasTable::Sample on the same weights.
  uint32_t SampleCol(size_t row, common::Rng& rng) const {
    const size_t begin = offsets_[row];
    const size_t bucket =
        static_cast<size_t>(rng.UniformInt(offsets_[row + 1] - begin));
    const Slot& slot = slots_[begin + bucket];
    return rng.Bernoulli(slot.prob) ? slot.col : slot.alias_col;
  }

  /// Hints the first cache lines of a row into L1 ahead of SampleCol — the
  /// batch repair loop issues this a few records ahead of the draw.
  void PrefetchRow(size_t row) const {
#if defined(__GNUC__) || defined(__clang__)
    const Slot* p = slots_.data() + offsets_[row];
    __builtin_prefetch(p, 0, 1);
    if (RowSize(row) > 4) __builtin_prefetch(p + 4, 0, 1);
#else
    (void)row;
#endif
  }

  /// Bucket view for tests (parity against AliasTable).
  const Slot* RowSlots(size_t row) const { return slots_.data() + offsets_[row]; }

 private:
  std::vector<Slot> slots_;
  std::vector<size_t> offsets_ = {0};
  // Construction scratch, reused across AppendRow calls so building one
  // arena per channel does O(rows) allocations, not O(rows * nnz).
  std::vector<double> scaled_;
  std::vector<double> prob_scratch_;
  std::vector<uint32_t> alias_scratch_;
  std::vector<uint32_t> small_;
  std::vector<uint32_t> large_;
};

/// Draws `n` indices from the pmf by inverse CDF (reference implementation
/// used to cross-check AliasTable in tests).
std::vector<size_t> SampleCategorical(const std::vector<double>& weights, size_t n,
                                      common::Rng& rng);

}  // namespace otfair::stats

#endif  // OTFAIR_STATS_SAMPLING_H_
