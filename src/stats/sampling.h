#ifndef OTFAIR_STATS_SAMPLING_H_
#define OTFAIR_STATS_SAMPLING_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace otfair::stats {

/// Walker/Vose alias table for O(1) categorical sampling.
///
/// Algorithm 2 of the paper draws, for every archival record, one state from
/// the normalized row of an OT plan (Eq. 15). With torrents of archival
/// data that draw dominates repair cost, so the repairer precomputes one
/// alias table per plan row: O(n_Q) setup once, O(1) per record thereafter.
class AliasTable {
 public:
  /// Builds a table from unnormalized, non-negative weights (at least one
  /// strictly positive).
  static common::Result<AliasTable> Build(const std::vector<double>& weights);

  /// As above, from a raw pointer + length — the repair-table hot path
  /// builds one table per CSR plan row and this overload reads the row's
  /// value span in place instead of copying it into a fresh vector.
  static common::Result<AliasTable> Build(const double* weights, size_t count);

  /// Draws an index in [0, size()) with probability proportional to the
  /// original weights. Consumes one uniform and one Bernoulli from `rng`.
  size_t Sample(common::Rng& rng) const;

  size_t size() const { return prob_.size(); }

  /// Reconstructed sampling probability of index i (for tests).
  double Probability(size_t i) const;

 private:
  AliasTable(std::vector<double> prob, std::vector<size_t> alias, std::vector<double> pmf)
      : prob_(std::move(prob)), alias_(std::move(alias)), pmf_(std::move(pmf)) {}

  std::vector<double> prob_;    // acceptance probability per bucket
  std::vector<size_t> alias_;   // fallback index per bucket
  std::vector<double> pmf_;     // normalized input, kept for Probability()
};

/// Draws `n` indices from the pmf by inverse CDF (reference implementation
/// used to cross-check AliasTable in tests).
std::vector<size_t> SampleCategorical(const std::vector<double>& weights, size_t n,
                                      common::Rng& rng);

}  // namespace otfair::stats

#endif  // OTFAIR_STATS_SAMPLING_H_
