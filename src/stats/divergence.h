#ifndef OTFAIR_STATS_DIVERGENCE_H_
#define OTFAIR_STATS_DIVERGENCE_H_

#include <vector>

#include "common/result.h"

namespace otfair::stats {

/// Kullback–Leibler divergence D[p || q] between two pmfs defined on the
/// same support (paper Def. 2.4 evaluates it between KDE-interpolated
/// conditionals on the shared grid Q).
///
/// States where q == 0 but p > 0 make the divergence infinite; to keep the
/// fairness metric finite on finite supports we floor q at `floor`
/// (default 1e-12) and renormalize, the standard smoothing used when
/// comparing empirical pmfs. Inputs need not be normalized; they are
/// normalized internally. Returns InvalidArgument on length mismatch,
/// negative entries or zero total mass.
common::Result<double> KlDivergence(const std::vector<double>& p, const std::vector<double>& q,
                                    double floor = 1e-12);

/// Symmetrized KL: (D[p||q] + D[q||p]) / 2 — the paper's s|u-dependence
/// building block (Def. 2.4).
common::Result<double> SymmetrizedKl(const std::vector<double>& p, const std::vector<double>& q,
                                     double floor = 1e-12);

/// Jensen–Shannon divergence (base e), a bounded alternative reported by the
/// fairness module for diagnostics.
common::Result<double> JensenShannon(const std::vector<double>& p, const std::vector<double>& q);

/// Total variation distance 0.5 * sum |p_i - q_i| between normalized pmfs.
common::Result<double> TotalVariation(const std::vector<double>& p, const std::vector<double>& q);

}  // namespace otfair::stats

#endif  // OTFAIR_STATS_DIVERGENCE_H_
