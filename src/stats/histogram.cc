#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/status.h"
#include "stats/descriptive.h"

namespace otfair::stats {

using common::Result;
using common::Status;

Result<UniformHistogram> UniformHistogram::Build(const std::vector<double>& samples,
                                                 size_t num_bins, double lo, double hi) {
  if (samples.empty()) return Status::InvalidArgument("empty sample");
  if (num_bins == 0) return Status::InvalidArgument("num_bins must be positive");
  if (!(hi > lo)) return Status::InvalidArgument("hi must exceed lo");
  std::vector<size_t> counts(num_bins, 0);
  const double width = (hi - lo) / static_cast<double>(num_bins);
  for (double x : samples) {
    if (!std::isfinite(x)) return Status::InvalidArgument("samples must be finite");
    long bin = static_cast<long>(std::floor((x - lo) / width));
    bin = std::clamp<long>(bin, 0, static_cast<long>(num_bins) - 1);
    ++counts[static_cast<size_t>(bin)];
  }
  return UniformHistogram(std::move(counts), lo, hi, samples.size());
}

Result<UniformHistogram> UniformHistogram::BuildAuto(const std::vector<double>& samples,
                                                     size_t num_bins) {
  if (samples.empty()) return Status::InvalidArgument("empty sample");
  double lo = Min(samples);
  double hi = Max(samples);
  if (!(hi > lo)) {
    lo -= 0.5;
    hi += 0.5;
  }
  return Build(samples, num_bins, lo, hi);
}

double UniformHistogram::BinCenter(size_t b) const {
  OTFAIR_CHECK_LT(b, counts_.size());
  return lo_ + (static_cast<double>(b) + 0.5) * bin_width();
}

std::vector<double> UniformHistogram::Pmf() const {
  std::vector<double> pmf(counts_.size());
  for (size_t b = 0; b < counts_.size(); ++b)
    pmf[b] = static_cast<double>(counts_[b]) / static_cast<double>(total_);
  return pmf;
}

double UniformHistogram::Density(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  long bin = static_cast<long>(std::floor((x - lo_) / bin_width()));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  return static_cast<double>(counts_[static_cast<size_t>(bin)]) /
         (static_cast<double>(total_) * bin_width());
}

}  // namespace otfair::stats
