#ifndef OTFAIR_STATS_GMM_H_
#define OTFAIR_STATS_GMM_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "common/rng.h"

namespace otfair::stats {

/// One diagonal-covariance Gaussian mixture component.
struct GmmComponent {
  std::vector<double> mean;
  std::vector<double> var;  // per-dimension variances (diagonal covariance)
  double weight = 0.0;
};

/// Options for EM fitting.
struct GmmOptions {
  size_t max_iterations = 200;
  /// Stop when the per-sample log-likelihood improves by less than this.
  double tolerance = 1e-6;
  /// Variance floor guarding against component collapse.
  double variance_floor = 1e-6;
};

/// Diagonal-covariance Gaussian mixture model over d-dimensional rows.
///
/// Two fitting paths:
///  * `FitEm` — unsupervised EM from a k-means++-style seeding. This is the
///    "standard method" (paper §IV, ref. [27]) for identifying the
///    u-conditional mixture F(x|u) = sum_s F(x|s,u) Pr[s|u] (Eq. 10) when
///    archival s-labels are missing.
///  * `FitSupervised` — closed-form per-class Gaussians from labelled data
///    (diagonal QDA); used by core::LabelEstimator to seed/compare.
///
/// `Classify` performs the MAP component assignment that produces the
/// s_hat|u labels consumed by Algorithm 2.
class GaussianMixture {
 public:
  static common::Result<GaussianMixture> FitEm(const common::Matrix& data, size_t k,
                                               common::Rng& rng, const GmmOptions& options = {});

  /// `labels[i]` in [0, k); every class must be non-empty.
  static common::Result<GaussianMixture> FitSupervised(const common::Matrix& data,
                                                       const std::vector<size_t>& labels, size_t k,
                                                       double variance_floor = 1e-6);

  size_t num_components() const { return components_.size(); }
  size_t dim() const { return components_.empty() ? 0 : components_[0].mean.size(); }
  const std::vector<GmmComponent>& components() const { return components_; }

  /// Log of the mixture density at `x` (length dim()).
  double LogDensity(const std::vector<double>& x) const;

  /// Posterior responsibilities p(component | x), length num_components().
  std::vector<double> Responsibilities(const std::vector<double>& x) const;

  /// MAP component index for `x`.
  size_t Classify(const std::vector<double>& x) const;

  /// Mean per-row log-likelihood over a data matrix.
  double MeanLogLikelihood(const common::Matrix& data) const;

  /// Final EM iteration count (0 for supervised fits).
  size_t em_iterations() const { return em_iterations_; }

 private:
  explicit GaussianMixture(std::vector<GmmComponent> components)
      : components_(std::move(components)) {}

  std::vector<GmmComponent> components_;
  size_t em_iterations_ = 0;
};

}  // namespace otfair::stats

#endif  // OTFAIR_STATS_GMM_H_
