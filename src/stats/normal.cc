#include "stats/normal.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace otfair::stats {

double NormalPdf(double x, double mean, double sd) {
  OTFAIR_CHECK_GT(sd, 0.0);
  const double z = (x - mean) / sd;
  return std::exp(-0.5 * z * z) / (sd * std::sqrt(2.0 * std::numbers::pi));
}

double NormalLogPdf(double x, double mean, double sd) {
  OTFAIR_CHECK_GT(sd, 0.0);
  const double z = (x - mean) / sd;
  return -0.5 * z * z - std::log(sd) - 0.5 * std::log(2.0 * std::numbers::pi);
}

double NormalCdf(double x, double mean, double sd) {
  OTFAIR_CHECK_GT(sd, 0.0);
  return 0.5 * std::erfc(-(x - mean) / (sd * std::numbers::sqrt2));
}

double NormalQuantile(double q) {
  OTFAIR_CHECK(q > 0.0 && q < 1.0);
  // Acklam's algorithm: rational approximations on central and tail
  // regions.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1.0 - plow;
  double x;
  if (q < plow) {
    const double u = std::sqrt(-2.0 * std::log(q));
    x = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  } else if (q > phigh) {
    const double u = std::sqrt(-2.0 * std::log(1.0 - q));
    x = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  } else {
    const double u = q - 0.5;
    const double r = u * u;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * u /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  return x;
}

}  // namespace otfair::stats
