#ifndef OTFAIR_STATS_BANDWIDTH_H_
#define OTFAIR_STATS_BANDWIDTH_H_

#include <vector>

namespace otfair::stats {

/// Kernel bandwidth selectors for 1-D Gaussian KDE.

/// Silverman's rule of thumb (Silverman 1986, the selector prescribed by the
/// paper, Eq. 12):
///
///     h = 0.9 * min(sigma_hat, IQR / 1.34) * n^(-1/5)
///
/// Falls back to `sigma_hat * n^(-1/5)` when the robust scale collapses
/// (e.g. heavily duplicated data), and to a small positive constant when the
/// sample is degenerate (all values equal), so the returned bandwidth is
/// always strictly positive.
double SilvermanBandwidth(const std::vector<double>& samples);

/// Scott's rule: `h = sigma_hat * n^(-1/5)`; provided for ablations.
double ScottBandwidth(const std::vector<double>& samples);

}  // namespace otfair::stats

#endif  // OTFAIR_STATS_BANDWIDTH_H_
