#include "stats/sampling.h"

#include <cmath>

#include "common/status.h"

namespace otfair::stats {

using common::Result;
using common::Rng;
using common::Status;

Result<AliasTable> AliasTable::Build(const std::vector<double>& weights) {
  return Build(weights.data(), weights.size());
}

Result<AliasTable> AliasTable::Build(const double* weights, size_t count) {
  if (count == 0) return Status::InvalidArgument("empty weight vector");
  const size_t n = count;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    if (!(w >= 0.0) || !std::isfinite(w))
      return Status::InvalidArgument("weights must be non-negative and finite");
    total += w;
  }
  if (!(total > 0.0)) return Status::InvalidArgument("weights must not all be zero");

  std::vector<double> pmf(n);
  for (size_t i = 0; i < n; ++i) pmf[i] = weights[i] / total;

  // Vose's stable construction: partition scaled probabilities into
  // "small" (< 1) and "large" (>= 1) worklists and pair them off.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = pmf[i] * static_cast<double>(n);
  std::vector<size_t> small;
  std::vector<size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  std::vector<double> prob(n, 1.0);
  std::vector<size_t> alias(n, 0);
  for (size_t i = 0; i < n; ++i) alias[i] = i;

  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    prob[s] = scaled[s];
    alias[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are numerically 1.
  for (size_t s : small) prob[s] = 1.0;
  for (size_t l : large) prob[l] = 1.0;

  return AliasTable(std::move(prob), std::move(alias), std::move(pmf));
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t bucket = static_cast<size_t>(rng.UniformInt(prob_.size()));
  return rng.Bernoulli(prob_[bucket]) ? bucket : alias_[bucket];
}

double AliasTable::Probability(size_t i) const { return i < pmf_.size() ? pmf_[i] : 0.0; }

std::vector<size_t> SampleCategorical(const std::vector<double>& weights, size_t n, Rng& rng) {
  std::vector<size_t> out;
  out.reserve(n);
  for (size_t k = 0; k < n; ++k) out.push_back(rng.Categorical(weights));
  return out;
}

}  // namespace otfair::stats
