#include "stats/sampling.h"

#include <cmath>

#include "common/status.h"

namespace otfair::stats {

using common::Result;
using common::Rng;
using common::Status;

Result<AliasTable> AliasTable::Build(const std::vector<double>& weights) {
  return Build(weights.data(), weights.size());
}

Result<AliasTable> AliasTable::Build(const double* weights, size_t count) {
  if (count == 0) return Status::InvalidArgument("empty weight vector");
  const size_t n = count;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    if (!(w >= 0.0) || !std::isfinite(w))
      return Status::InvalidArgument("weights must be non-negative and finite");
    total += w;
  }
  if (!(total > 0.0)) return Status::InvalidArgument("weights must not all be zero");

  std::vector<double> pmf(n);
  for (size_t i = 0; i < n; ++i) pmf[i] = weights[i] / total;

  // Vose's stable construction: partition scaled probabilities into
  // "small" (< 1) and "large" (>= 1) worklists and pair them off.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = pmf[i] * static_cast<double>(n);
  std::vector<size_t> small;
  std::vector<size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  std::vector<double> prob(n, 1.0);
  std::vector<size_t> alias(n, 0);
  for (size_t i = 0; i < n; ++i) alias[i] = i;

  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    prob[s] = scaled[s];
    alias[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are numerically 1.
  for (size_t s : small) prob[s] = 1.0;
  for (size_t l : large) prob[l] = 1.0;

  return AliasTable(std::move(prob), std::move(alias), std::move(pmf));
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t bucket = static_cast<size_t>(rng.UniformInt(prob_.size()));
  return rng.Bernoulli(prob_[bucket]) ? bucket : alias_[bucket];
}

double AliasTable::Probability(size_t i) const { return i < pmf_.size() ? pmf_[i] : 0.0; }

void AliasArena::Reserve(size_t rows, size_t total_slots) {
  offsets_.reserve(rows + 1);
  slots_.reserve(total_slots);
}

void AliasArena::AppendEmptyRow() { offsets_.push_back(slots_.size()); }

Status AliasArena::AppendRow(const double* weights, const uint32_t* cols,
                             size_t count) {
  if (count == 0) return Status::InvalidArgument("empty weight vector");
  const size_t n = count;
  // The arithmetic below must stay term-for-term identical to
  // AliasTable::Build: the resulting acceptance probabilities feed
  // Rng::Bernoulli, whose draw *count* depends on degenerate values, so
  // any bit drift here would desynchronize downstream random streams.
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    if (!(w >= 0.0) || !std::isfinite(w))
      return Status::InvalidArgument("weights must be non-negative and finite");
    total += w;
  }
  if (!(total > 0.0)) return Status::InvalidArgument("weights must not all be zero");

  scaled_.resize(n);
  for (size_t i = 0; i < n; ++i)
    scaled_[i] = (weights[i] / total) * static_cast<double>(n);
  small_.clear();
  large_.clear();
  for (size_t i = 0; i < n; ++i) {
    (scaled_[i] < 1.0 ? small_ : large_).push_back(static_cast<uint32_t>(i));
  }

  prob_scratch_.assign(n, 1.0);
  alias_scratch_.resize(n);
  for (size_t i = 0; i < n; ++i) alias_scratch_[i] = static_cast<uint32_t>(i);

  while (!small_.empty() && !large_.empty()) {
    const uint32_t s = small_.back();
    small_.pop_back();
    const uint32_t l = large_.back();
    large_.pop_back();
    prob_scratch_[s] = scaled_[s];
    alias_scratch_[s] = l;
    scaled_[l] = (scaled_[l] + scaled_[s]) - 1.0;
    (scaled_[l] < 1.0 ? small_ : large_).push_back(l);
  }
  // Leftovers are numerically 1 (prob_scratch_ starts at 1.0).

  const size_t begin = slots_.size();
  slots_.resize(begin + n);
  for (size_t i = 0; i < n; ++i) {
    slots_[begin + i] = Slot{prob_scratch_[i], cols[i], cols[alias_scratch_[i]]};
  }
  offsets_.push_back(slots_.size());
  return Status::Ok();
}

std::vector<size_t> SampleCategorical(const std::vector<double>& weights, size_t n, Rng& rng) {
  std::vector<size_t> out;
  out.reserve(n);
  for (size_t k = 0; k < n; ++k) out.push_back(rng.Categorical(weights));
  return out;
}

}  // namespace otfair::stats
