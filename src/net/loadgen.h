#ifndef OTFAIR_NET_LOADGEN_H_
#define OTFAIR_NET_LOADGEN_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace otfair::net {

/// Self-contained load generator for the TCP serve protocol: N client
/// connections pipeline `repair` rows (window-bounded outstanding per
/// connection) and record client-observed round-trip latency per row.
struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t connections = 1;
  /// Total session count; 0 means one session per connection. Session s
  /// is driven by connection s % connections — the affinity contract: a
  /// session's rows all flow over one connection, in row order.
  size_t sessions = 0;
  /// Rows submitted per session (row indices 0..rows_per_session-1).
  uint64_t rows_per_session = 1000;
  /// Feature count per row; must match the served plan's dim (a mismatch
  /// fails the run with a structured error, not a hang).
  size_t dim = 2;
  int u_levels = 2;
  int s_levels = 2;
  /// Max outstanding (sent, unanswered) rows per connection.
  size_t window = 64;
  /// Seed for the synthetic feature stream: row features derive from
  /// (seed, session, row) only, so any two runs submit identical rows.
  uint64_t seed = 1;
  /// Inactivity bound per connection; no byte in or out for this long
  /// fails the run (a stuck server must not hang the client).
  int timeout_ms = 30000;
};

struct LoadgenResult {
  uint64_t rows_sent = 0;
  uint64_t rows_ok = 0;
  /// Per-row error lines received (backpressure, validation failures).
  uint64_t rows_err = 0;
  double seconds = 0.0;
  /// rows_ok / seconds, aggregated over all connections.
  double rows_per_sec = 0.0;
  uint64_t latency_samples = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  /// First error line seen, for diagnostics ("" when rows_err == 0).
  std::string first_error;

  /// True when every submitted row came back ok — the zero-drop verdict.
  bool clean() const { return rows_err == 0 && rows_ok == rows_sent; }

  std::string ToJson() const;
  static std::string CsvHeader();
  std::string CsvRow() const;
};

/// Runs the load (one thread per connection) and aggregates counters and
/// latency histograms. Returns an error on connect failure, inactivity
/// timeout, a premature server close, or an unattributable (`err - -`)
/// protocol error; per-row errors are reported in the result instead.
common::Result<LoadgenResult> RunLoadgen(const LoadgenOptions& options);

/// One-shot control-verb client: sends `verb` on a fresh connection and
/// returns the response ("metrics --prom" reads up to the "# EOF" marker,
/// every other verb one line).
common::Result<std::string> SendVerb(const std::string& host, uint16_t port,
                                     const std::string& verb, int timeout_ms = 30000);

}  // namespace otfair::net

#endif  // OTFAIR_NET_LOADGEN_H_
