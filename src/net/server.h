#ifndef OTFAIR_NET_SERVER_H_
#define OTFAIR_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/socket.h"
#include "serve/batcher.h"
#include "serve/repair_service.h"

namespace otfair::net {

struct ServerOptions {
  /// IPv4 listen address. The default is loopback; bind 0.0.0.0 to serve
  /// off-host.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; `Server::port()` reports the actual one.
  uint16_t port = 0;
  /// Worker threads. Each worker owns one epoll instance, one
  /// SO_REUSEPORT listener on the shared port (the kernel spreads
  /// accepts), and one micro-batcher — a connection's whole life happens
  /// on the worker that accepted it.
  int net_threads = 1;
  int backlog = 256;
  /// Global cap across workers; accepts beyond it are answered with one
  /// best-effort UNAVAILABLE error line and closed.
  size_t max_connections = 4096;
  /// Per-connection pending-output bound. A reader slow enough to let
  /// this pile up is disconnected (never blocks the worker).
  size_t max_write_buffer_bytes = 64 * 1024 * 1024;
  /// Bound on how long a drain waits for clients to absorb final
  /// responses before closing on them.
  int drain_timeout_ms = 5000;
  /// Per-worker micro-batcher config. `background_flush` is forced off:
  /// the worker thread is the only submitter and flushes at the end of
  /// every epoll cycle, so batch execution (and therefore the response
  /// sink) stays on the worker thread — connection state needs no locks.
  serve::BatcherOptions batcher;
};

/// Verbs that need process-level machinery the service doesn't own.
struct ServerHooks {
  /// `checkpoint` verb: persist now, return the generation. Unset maps to
  /// the same FAILED_PRECONDITION error stdio serve gives.
  std::function<common::Result<uint64_t>()> checkpoint;
};

/// Non-blocking epoll TCP front end for a `RepairService`.
///
/// Speaks exactly the stdio `serve` line protocol (serve/protocol.h is
/// reused unchanged), reassembled across arbitrary packetization; the
/// 64KiB request-line cap holds across split reads. Repair rows flow
/// through a per-worker `serve::Batcher` into the lock-free service
/// snapshot, so the `(seed, session_id, row_index)` determinism contract
/// is untouched by the network hop: per session, TCP output is
/// bit-identical to offline batch repair and to stdio serve.
///
/// Backpressure is explicit: a rejected Submit becomes an immediate
/// `err <session> <row> UNAVAILABLE ...` line (same semantics as stdio
/// serve) — rows are never silently dropped. Oversized or unparseable-verb
/// input closes the connection after a sanitized error line; malformed
/// arguments to a known verb get an error line and the connection lives.
///
/// `Shutdown()` (idempotent, also run by the destructor) drains
/// gracefully: listeners close first, queued rows flush through the
/// batchers, pending output is written out under `drain_timeout_ms`, then
/// connections close.
class Server {
 public:
  static common::Result<std::unique_ptr<Server>> Create(serve::RepairService* service,
                                                        const ServerOptions& options,
                                                        ServerHooks hooks = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolved even when options.port was 0).
  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }

  /// Graceful drain; blocks until every worker has exited.
  void Shutdown();

  /// Sum of pending batcher rows across workers (metrics gauge).
  size_t queue_depth() const;

 private:
  struct Conn;
  struct Worker;

  Server(serve::RepairService* service, const ServerOptions& options, ServerHooks hooks);

  common::Status Start();
  void WorkerLoop(Worker& w);
  void AcceptBurst(Worker& w);
  void HandleReadable(Worker& w, Conn* c);
  void ProcessLines(Worker& w, Conn* c);
  void HandleLine(Worker& w, Conn* c, const std::string& line);
  void Output(Worker& w, Conn* c, const std::string& line);
  void FlushConn(Worker& w, Conn* c);
  void FlushDirty(Worker& w);
  void CloseConn(Worker& w, Conn* c);
  void DrainWorker(Worker& w);

  serve::RepairService* service_;
  ServerOptions options_;
  ServerHooks hooks_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> joined_{false};
  std::atomic<size_t> active_connections_{0};

  obs::Counter* connections_accepted_ = nullptr;
  obs::Counter* connections_closed_ = nullptr;
  obs::Counter* connections_rejected_ = nullptr;
  obs::Counter* bytes_read_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
  obs::Counter* backpressure_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Counter* oversize_closed_ = nullptr;
  obs::Counter* orphan_responses_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
};

}  // namespace otfair::net

#endif  // OTFAIR_NET_SERVER_H_
