#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/trace.h"
#include "serve/protocol.h"

namespace otfair::net {

using common::Result;
using common::Status;

namespace {

/// Verbs ParseRequestLine understands. A parse failure on a line whose
/// first token is NOT one of these is garbage input (binary junk, the
/// wrong protocol) and closes the connection; a malformed line with a
/// known verb is a client bug worth an error line but not a disconnect.
bool KnownVerb(const std::string& line) {
  size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos) return false;
  const size_t j = line.find_first_of(" \t", i);
  const std::string verb = line.substr(i, j == std::string::npos ? j : j - i);
  return verb == "repair" || verb == "metrics" || verb == "health" || verb == "reload" ||
         verb == "checkpoint" || verb == "quit";
}

}  // namespace

struct Server::Conn {
  int fd = -1;
  /// Unconsumed input bytes (at most one partial line after ProcessLines).
  std::string in;
  /// Pending output; [out_off, out.size()) is unsent.
  std::string out;
  size_t out_off = 0;
  /// Deliver pending output, then close (quit / oversize / garbage / EOF).
  bool close_after_flush = false;
  bool closed = false;
  bool dirty = false;
  bool read_eof = false;
  /// Sessions whose responses route here (the affinity map's reverse
  /// index, so closing the connection cleans the map in O(|sessions|)).
  std::unordered_set<uint64_t> sessions;
};

struct Server::Worker {
  int index = 0;
  Socket listen;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::unique_ptr<serve::Batcher> batcher;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  /// session id -> connection currently owning it (last writer wins; a
  /// reconnecting client re-binds its sessions to the new connection).
  std::unordered_map<uint64_t, Conn*> session_owner;
  /// Connections (by fd) with output appended this epoll cycle.
  std::vector<int> dirty;
  /// Closed connections survive here until the end of the cycle so stack
  /// frames holding the pointer stay valid.
  std::vector<std::unique_ptr<Conn>> graveyard;
  std::thread thread;

  ~Worker() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
  }
};

Server::Server(serve::RepairService* service, const ServerOptions& options, ServerHooks hooks)
    : service_(service), options_(options), hooks_(std::move(hooks)) {
  options_.batcher.background_flush = false;
}

Server::~Server() { Shutdown(); }

Result<std::unique_ptr<Server>> Server::Create(serve::RepairService* service,
                                               const ServerOptions& options,
                                               ServerHooks hooks) {
  if (service == nullptr) return Status::InvalidArgument("null service");
  if (options.net_threads < 1)
    return Status::InvalidArgument("net_threads must be >= 1 (got " +
                                   std::to_string(options.net_threads) + ")");
  if (options.max_connections < 1)
    return Status::InvalidArgument("max_connections must be >= 1");
  std::unique_ptr<Server> server(new Server(service, options, std::move(hooks)));

  // One Server per service lifetime: the registry rejects duplicate names.
  obs::Registry& registry = service->metrics().registry();
  auto counter = [&](const char* name, const char* help,
                     obs::Counter** out) -> Status {
    auto added = registry.AddCounter(name, help);
    if (!added.ok()) return added.status();
    *out = *added;
    return Status::Ok();
  };
  struct Spec {
    const char* name;
    const char* help;
    obs::Counter** slot;
  };
  const Spec specs[] = {
      {"otfair_net_connections_accepted_total", "TCP connections accepted",
       &server->connections_accepted_},
      {"otfair_net_connections_closed_total", "TCP connections closed",
       &server->connections_closed_},
      {"otfair_net_connections_rejected_total",
       "TCP connections refused at the max_connections cap",
       &server->connections_rejected_},
      {"otfair_net_bytes_read_total", "Bytes read from TCP clients",
       &server->bytes_read_},
      {"otfair_net_bytes_written_total", "Bytes written to TCP clients",
       &server->bytes_written_},
      {"otfair_net_backpressure_total",
       "Repair submits rejected with UNAVAILABLE (explicit backpressure error lines)",
       &server->backpressure_},
      {"otfair_net_protocol_errors_total",
       "Request lines rejected by the protocol parser", &server->protocol_errors_},
      {"otfair_net_oversize_closed_total",
       "Connections closed for exceeding the request line cap or garbage input",
       &server->oversize_closed_},
      {"otfair_net_orphan_responses_total",
       "Repaired rows whose connection closed before delivery",
       &server->orphan_responses_},
  };
  for (const Spec& spec : specs)
    if (Status status = counter(spec.name, spec.help, spec.slot); !status.ok())
      return status;
  auto gauge = registry.AddGauge("otfair_net_active_connections",
                                 "Currently open TCP client connections");
  if (!gauge.ok()) return gauge.status();
  server->active_gauge_ = *gauge;

  if (Status status = server->Start(); !status.ok()) {
    server->Shutdown();
    return status;
  }
  return server;
}

Status Server::Start() {
  uint16_t port = options_.port;
  for (int i = 0; i < options_.net_threads; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    // The first bind resolves an ephemeral port; the rest share it via
    // SO_REUSEPORT, so the kernel distributes accepts across workers.
    uint16_t bound = 0;
    auto listener = ListenTcp(options_.host, port, options_.backlog, &bound);
    if (!listener.ok()) return listener.status();
    worker->listen = std::move(*listener);
    if (i == 0) {
      port = bound;
      port_ = bound;
    }
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (worker->epoll_fd < 0)
      return Status::Internal(std::string("epoll_create1: ") + std::strerror(errno));
    worker->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (worker->wake_fd < 0)
      return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;  // level-triggered: re-notified while accepts pend
    ev.data.fd = worker->listen.fd();
    if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->listen.fd(), &ev) < 0)
      return Status::Internal(std::string("epoll_ctl(listen): ") + std::strerror(errno));
    ev.data.fd = worker->wake_fd;
    if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->wake_fd, &ev) < 0)
      return Status::Internal(std::string("epoll_ctl(wake): ") + std::strerror(errno));

    Worker* w = worker.get();
    worker->batcher = std::make_unique<serve::Batcher>(
        service_, options_.batcher, [this, w](const serve::RowResponse& response) {
          // Runs on the worker thread only (sole submitter, no flusher
          // thread), so touching connection state here is race-free.
          auto it = w->session_owner.find(response.session_id);
          if (it == w->session_owner.end() || it->second->closed) {
            orphan_responses_->Add(1);
            return;
          }
          Output(*w, it->second, serve::FormatRowResponse(response));
        });
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_)
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(*w); });
  return Status::Ok();
}

void Server::Shutdown() {
  stop_.store(true, std::memory_order_release);
  if (joined_.exchange(true)) return;
  for (auto& worker : workers_) {
    if (worker->wake_fd >= 0) {
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t rc = ::write(worker->wake_fd, &one, sizeof(one));
    }
  }
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
}

size_t Server::queue_depth() const {
  size_t depth = 0;
  for (const auto& worker : workers_) depth += worker->batcher->queue_depth();
  return depth;
}

void Server::WorkerLoop(Worker& w) {
  std::vector<epoll_event> events(256);
  while (!stop_.load(std::memory_order_acquire)) {
    // With rows pending the wait is bounded by the batcher's partial-batch
    // deadline; otherwise a coarse tick (the wake eventfd makes shutdown
    // prompt regardless).
    const int timeout_ms =
        w.batcher->queue_depth() > 0
            ? std::max(1, static_cast<int>(options_.batcher.max_wait_us / 1000))
            : 200;
    const int n =
        ::epoll_wait(w.epoll_fd, events.data(), static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      const int fd = ev.data.fd;
      if (fd == w.listen.fd()) {
        AcceptBurst(w);
        continue;
      }
      if (fd == w.wake_fd) {
        uint64_t junk;
        while (::read(w.wake_fd, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      auto it = w.conns.find(fd);
      if (it == w.conns.end()) continue;
      Conn* c = it->second.get();
      if (ev.events & EPOLLIN) HandleReadable(w, c);
      if (!c->closed && (ev.events & EPOLLOUT)) FlushConn(w, c);
      if (!c->closed && (ev.events & (EPOLLERR | EPOLLHUP))) CloseConn(w, c);
    }
    // Partial batches don't wait for the flusher thread there isn't:
    // flushing once per cycle bounds latency at one epoll cycle while
    // still coalescing rows across every connection that was readable.
    if (w.batcher->queue_depth() > 0) w.batcher->Flush();
    FlushDirty(w);
    w.graveyard.clear();
  }
  DrainWorker(w);
}

void Server::AcceptBurst(Worker& w) {
  OTFAIR_TRACE_SPAN("net_accept");
  while (true) {
    const int fd = ::accept4(w.listen.fd(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // EAGAIN, or a transient accept failure — next event retries
    }
    if (active_connections_.fetch_add(1, std::memory_order_relaxed) >=
        options_.max_connections) {
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      connections_rejected_->Add(1);
      const std::string line =
          serve::FormatErrorLine(Status::Unavailable("connection limit reached")) + "\n";
      size_t sent = 0;
      bool would_block = false;
      WriteSome(fd, line.data(), line.size(), &sent, &would_block);
      ::close(fd);
      continue;
    }
    SetNoDelay(fd);  // best effort; latency benefits only
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    w.conns.emplace(fd, std::move(conn));
    connections_accepted_->Add(1);
    active_gauge_->Set(static_cast<double>(active_connections_.load(std::memory_order_relaxed)));
  }
}

void Server::HandleReadable(Worker& w, Conn* c) {
  OTFAIR_TRACE_SPAN("net_read");
  char buf[16384];
  // Edge-triggered: read until EAGAIN. Lines are processed chunk by chunk
  // so a flood never accumulates more than one read's worth past the
  // request-line cap.
  while (!c->closed && !c->close_after_flush) {
    size_t n = 0;
    bool would_block = false;
    if (Status status = ReadSome(c->fd, buf, sizeof(buf), &n, &would_block); !status.ok()) {
      CloseConn(w, c);
      return;
    }
    if (would_block) break;
    if (n == 0) {
      c->read_eof = true;
      break;
    }
    bytes_read_->Add(n);
    c->in.append(buf, n);
    ProcessLines(w, c);
  }
  if (!c->closed && c->read_eof && !c->close_after_flush) {
    // Half-close: the client is done sending but may still be reading.
    // Deliver every response it is owed, then FIN back.
    w.batcher->Flush();
    c->close_after_flush = true;
    FlushConn(w, c);
  }
}

void Server::ProcessLines(Worker& w, Conn* c) {
  size_t start = 0;
  while (!c->closed && !c->close_after_flush) {
    const size_t nl = c->in.find('\n', start);
    const size_t line_len =
        (nl == std::string::npos ? c->in.size() : nl) - start;
    if (line_len > serve::kMaxRequestLineBytes) {
      // The cap holds across split reads: a newline-less line is rejected
      // as soon as the buffered prefix alone exceeds it.
      oversize_closed_->Add(1);
      Output(w, c,
             serve::FormatErrorLine(Status::InvalidArgument(
                 "request line exceeds " + std::to_string(serve::kMaxRequestLineBytes) +
                 " bytes")));
      c->close_after_flush = true;
      break;
    }
    if (nl == std::string::npos) break;
    std::string line = c->in.substr(start, line_len);
    start = nl + 1;
    while (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    HandleLine(w, c, line);
  }
  c->in.erase(0, start);
}

void Server::HandleLine(Worker& w, Conn* c, const std::string& line) {
  auto request = serve::ParseRequestLine(line, service_->dim(), service_->u_levels(),
                                         service_->s_levels());
  if (!request.ok()) {
    protocol_errors_->Add(1);
    Output(w, c, serve::FormatErrorLine(request.status()));
    if (!KnownVerb(line)) {
      // Garbage (unknown verb / binary junk): sanitized error line, then
      // disconnect — this stream is not speaking the protocol.
      oversize_closed_->Add(1);
      c->close_after_flush = true;
    }
    return;
  }
  using serve::RequestKind;
  switch (request->kind) {
    case RequestKind::kRepair: {
      const uint64_t session = request->row.session_id;
      const uint64_t row = request->row.row_index;
      // Bind the session to this connection before Submit: a full batch
      // executes caller-runs and delivers through the sink inline.
      w.session_owner[session] = c;
      c->sessions.insert(session);
      if (Status status = w.batcher->Submit(std::move(request->row)); !status.ok()) {
        // Explicit backpressure: the row is answered, never dropped.
        backpressure_->Add(1);
        Output(w, c, serve::FormatErrorLine(session, row, status));
      }
      break;
    }
    case RequestKind::kMetrics:
      Output(w, c, service_->metrics().Snapshot(w.batcher->queue_depth()).ToJson());
      break;
    case RequestKind::kMetricsProm: {
      std::string text = service_->metrics().RenderPrometheus(w.batcher->queue_depth());
      text += "# EOF";
      Output(w, c, text);
      break;
    }
    case RequestKind::kHealth:
      Output(w, c, service_->Health().ToJson());
      break;
    case RequestKind::kReload: {
      if (Status status = service_->ReloadPlanFromFile(request->plan_path); !status.ok()) {
        Output(w, c, serve::FormatErrorLine(status));
      } else {
        Output(w, c, "ok reload " + std::to_string(service_->plan_version()));
      }
      break;
    }
    case RequestKind::kCheckpoint: {
      if (!hooks_.checkpoint) {
        Output(w, c,
               serve::FormatErrorLine(Status::FailedPrecondition(
                   "checkpointing disabled (serve with --checkpoint_dir)")));
        break;
      }
      // Drain this worker's in-flight micro-batch first so the acked
      // generation covers every row this connection submitted before the
      // verb (session affinity pins its rows to this batcher).
      w.batcher->Flush();
      auto generation = hooks_.checkpoint();
      if (!generation.ok()) {
        Output(w, c, serve::FormatErrorLine(generation.status()));
      } else {
        Output(w, c, "ok checkpoint " + std::to_string(*generation));
      }
      break;
    }
    case RequestKind::kQuit:
      // Per-connection goodbye (the process keeps serving): deliver the
      // rows this worker still has queued, then close after the flush.
      w.batcher->Flush();
      c->close_after_flush = true;
      break;
  }
}

void Server::Output(Worker& w, Conn* c, const std::string& line) {
  if (c->closed) {
    orphan_responses_->Add(1);
    return;
  }
  c->out += line;
  c->out += '\n';
  if (!c->dirty) {
    c->dirty = true;
    w.dirty.push_back(c->fd);
  }
  // Opportunistic flush keeps memory flat during huge pipelined bursts.
  if (c->out.size() - c->out_off >= 256 * 1024) FlushConn(w, c);
  if (!c->closed && c->out.size() - c->out_off > options_.max_write_buffer_bytes)
    CloseConn(w, c);  // reader too slow to ever catch up
}

void Server::FlushConn(Worker& w, Conn* c) {
  if (c->closed) return;
  OTFAIR_TRACE_SPAN("net_flush");
  while (c->out_off < c->out.size()) {
    size_t n = 0;
    bool would_block = false;
    if (Status status = WriteSome(c->fd, c->out.data() + c->out_off,
                                  c->out.size() - c->out_off, &n, &would_block);
        !status.ok()) {
      CloseConn(w, c);
      return;
    }
    if (would_block) break;  // EPOLLOUT edge resumes the flush
    c->out_off += n;
    bytes_written_->Add(n);
  }
  if (c->out_off == c->out.size()) {
    c->out.clear();
    c->out_off = 0;
    if (c->close_after_flush) CloseConn(w, c);
  } else if (c->out_off > (1u << 20)) {
    c->out.erase(0, c->out_off);
    c->out_off = 0;
  }
}

void Server::FlushDirty(Worker& w) {
  for (size_t i = 0; i < w.dirty.size(); ++i) {
    auto it = w.conns.find(w.dirty[i]);
    if (it == w.conns.end()) continue;
    Conn* c = it->second.get();
    c->dirty = false;
    if (!c->closed) FlushConn(w, c);
  }
  w.dirty.clear();
}

void Server::CloseConn(Worker& w, Conn* c) {
  if (c->closed) return;
  c->closed = true;
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  for (const uint64_t session : c->sessions) {
    auto it = w.session_owner.find(session);
    if (it != w.session_owner.end() && it->second == c) w.session_owner.erase(it);
  }
  connections_closed_->Add(1);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  active_gauge_->Set(static_cast<double>(active_connections_.load(std::memory_order_relaxed)));
  // Defer destruction to the end of the cycle: callers up the stack may
  // still hold the pointer.
  auto it = w.conns.find(c->fd);
  if (it != w.conns.end()) {
    w.graveyard.push_back(std::move(it->second));
    w.conns.erase(it);
  }
}

void Server::DrainWorker(Worker& w) {
  // Stop accepting first; in-flight work still completes.
  if (w.listen.valid()) {
    ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, w.listen.fd(), nullptr);
    w.listen.Close();
  }
  // Every accepted row gets repaired and its response buffered.
  w.batcher->Flush();
  w.batcher->Close();
  // Bounded wait for clients to absorb the final responses.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    bool pending = false;
    std::vector<int> fds;
    fds.reserve(w.conns.size());
    for (const auto& entry : w.conns) fds.push_back(entry.first);
    for (const int fd : fds) {
      auto it = w.conns.find(fd);
      if (it == w.conns.end()) continue;
      Conn* c = it->second.get();
      if (c->closed) continue;
      FlushConn(w, c);
      if (!c->closed && c->out_off < c->out.size()) pending = true;
    }
    if (!pending) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::vector<int> fds;
  fds.reserve(w.conns.size());
  for (const auto& entry : w.conns) fds.push_back(entry.first);
  for (const int fd : fds) {
    auto it = w.conns.find(fd);
    if (it != w.conns.end()) CloseConn(w, it->second.get());
  }
  w.graveyard.clear();
}

}  // namespace otfair::net
