#include "net/loadgen.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/json_writer.h"
#include "common/rng.h"
#include "common/timer.h"
#include "net/socket.h"
#include "obs/registry.h"

namespace otfair::net {

using common::Result;
using common::Status;

namespace {

using Clock = std::chrono::steady_clock;

struct ConnState {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t err = 0;
  std::string first_error;
  obs::Histogram latency;
  Status status;  // fatal outcome of the connection (OK = clean)
};

/// Formats one deterministic repair row. Features derive from
/// (seed, session, row) only — the same decorrelated-stream scheme batch
/// repair uses — so every run (and every connection count) submits an
/// identical workload.
void FormatRow(const LoadgenOptions& opt, uint64_t session, uint64_t row, std::string* out) {
  char head[96];
  const int u = static_cast<int>((session + row) % static_cast<uint64_t>(opt.u_levels));
  const int s = static_cast<int>(row % static_cast<uint64_t>(opt.s_levels));
  std::snprintf(head, sizeof(head), "repair %llu %llu %d %d",
                static_cast<unsigned long long>(session),
                static_cast<unsigned long long>(row), u, s);
  *out += head;
  common::Rng rng = common::Rng::ForStream(opt.seed + session, row);
  char num[40];
  for (size_t k = 0; k < opt.dim; ++k) {
    std::snprintf(num, sizeof(num), " %.9g", rng.Normal());
    *out += num;
  }
  *out += '\n';
}

/// Parses "ok <session> <row> ..." / "err <session> <row> ..." identity.
/// Returns false when the identity is absent ("err - -" global errors).
bool ParseIdentity(const std::string& line, size_t off, uint64_t* session, uint64_t* row) {
  const char* p = line.c_str() + off;
  char* end = nullptr;
  errno = 0;
  const unsigned long long s = std::strtoull(p, &end, 10);
  if (end == p || *end != ' ' || errno != 0) return false;
  p = end + 1;
  const unsigned long long r = std::strtoull(p, &end, 10);
  if (end == p || errno != 0) return false;
  *session = s;
  *row = r;
  return true;
}

void RunConnection(const LoadgenOptions& opt, size_t conn_index, size_t total_sessions,
                   ConnState* state) {
  auto sock = ConnectTcp(opt.host, opt.port);
  if (!sock.ok()) {
    state->status = sock.status();
    return;
  }
  SetNoDelay(sock->fd());
  if (Status status = SetNonBlocking(sock->fd()); !status.ok()) {
    state->status = status;
    return;
  }

  // Sessions owned by this connection (the affinity assignment), driven
  // row-major so sessions interleave on the wire like concurrent clients.
  std::vector<uint64_t> sessions;
  for (uint64_t s = conn_index; s < total_sessions; s += opt.connections) sessions.push_back(s);
  const uint64_t total = static_cast<uint64_t>(sessions.size()) * opt.rows_per_session;

  std::string sendbuf;
  size_t send_off = 0;
  std::string recvbuf;
  std::unordered_map<uint64_t, Clock::time_point> outstanding;
  outstanding.reserve(opt.window * 2);
  uint64_t issued = 0;
  uint64_t completed = 0;
  auto last_progress = Clock::now();

  auto key_of = [&](uint64_t session, uint64_t row) {
    return session * opt.rows_per_session + row;
  };

  auto complete = [&](const std::string& line) -> Status {
    const bool is_ok = line.rfind("ok ", 0) == 0;
    const bool is_err = line.rfind("err ", 0) == 0;
    if (!is_ok && !is_err)
      return Status::Internal("unrecognized response line: " + line.substr(0, 64));
    uint64_t session = 0;
    uint64_t row = 0;
    if (!ParseIdentity(line, is_ok ? 3 : 4, &session, &row)) {
      // "err - -": the server rejected a line it could not attribute —
      // the workload generator never sends one, so this is fatal.
      return Status::Internal("unattributable error from server: " + line.substr(0, 128));
    }
    auto it = outstanding.find(key_of(session, row));
    if (it == outstanding.end())
      return Status::Internal("response for a row never sent: " + line.substr(0, 64));
    const auto rtt =
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - it->second);
    state->latency.Record(static_cast<uint64_t>(rtt.count()));
    outstanding.erase(it);
    ++completed;
    if (is_ok) {
      ++state->ok;
    } else {
      ++state->err;
      if (state->first_error.empty()) state->first_error = line;
    }
    return Status::Ok();
  };

  char buf[16384];
  while (completed < total) {
    // Top up the pipeline: format rows until the window is full (bounding
    // the send buffer so a stalled server can't balloon memory).
    while (outstanding.size() < opt.window && issued < total &&
           sendbuf.size() - send_off < (1u << 20)) {
      const uint64_t session = sessions[issued % sessions.size()];
      const uint64_t row = issued / sessions.size();
      outstanding.emplace(key_of(session, row), Clock::now());
      FormatRow(opt, session, row, &sendbuf);
      ++issued;
      ++state->sent;
    }

    bool progressed = false;
    if (send_off < sendbuf.size()) {
      size_t n = 0;
      bool would_block = false;
      if (Status status = WriteSome(sock->fd(), sendbuf.data() + send_off,
                                    sendbuf.size() - send_off, &n, &would_block);
          !status.ok()) {
        state->status = status;
        return;
      }
      if (n > 0) {
        progressed = true;
        send_off += n;
        if (send_off == sendbuf.size()) {
          sendbuf.clear();
          send_off = 0;
        }
      }
    }

    while (true) {
      size_t n = 0;
      bool would_block = false;
      if (Status status = ReadSome(sock->fd(), buf, sizeof(buf), &n, &would_block);
          !status.ok()) {
        state->status = status;
        return;
      }
      if (would_block) break;
      if (n == 0) {
        state->status = Status::Internal(
            "server closed the connection with " +
            std::to_string(total - completed) + " rows outstanding");
        return;
      }
      progressed = true;
      recvbuf.append(buf, n);
      size_t start = 0;
      size_t nl;
      while ((nl = recvbuf.find('\n', start)) != std::string::npos) {
        std::string line = recvbuf.substr(start, nl - start);
        start = nl + 1;
        while (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        if (Status status = complete(line); !status.ok()) {
          state->status = status;
          return;
        }
      }
      recvbuf.erase(0, start);
      if (completed >= total) break;
    }

    if (progressed) {
      last_progress = Clock::now();
      continue;
    }
    if (std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - last_progress)
            .count() > opt.timeout_ms) {
      state->status = Status::Internal("loadgen connection stalled for " +
                                       std::to_string(opt.timeout_ms) + " ms");
      return;
    }
    pollfd pfd;
    pfd.fd = sock->fd();
    pfd.events = static_cast<short>(POLLIN | (send_off < sendbuf.size() ? POLLOUT : 0));
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) {
      state->status = Status::Internal(std::string("poll: ") + std::strerror(errno));
      return;
    }
  }
}

}  // namespace

Result<LoadgenResult> RunLoadgen(const LoadgenOptions& options) {
  if (options.connections < 1) return Status::InvalidArgument("connections must be >= 1");
  if (options.rows_per_session < 1)
    return Status::InvalidArgument("rows_per_session must be >= 1");
  if (options.dim < 1) return Status::InvalidArgument("dim must be >= 1");
  if (options.window < 1) return Status::InvalidArgument("window must be >= 1");
  if (options.u_levels < 1 || options.s_levels < 1)
    return Status::InvalidArgument("u_levels/s_levels must be >= 1");
  const size_t total_sessions =
      options.sessions == 0 ? options.connections : options.sessions;
  if (total_sessions < options.connections)
    return Status::InvalidArgument("sessions must be >= connections (or 0 for 1:1)");

  std::vector<ConnState> states(options.connections);
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  common::Timer timer;
  for (size_t c = 0; c < options.connections; ++c)
    threads.emplace_back(
        [&, c] { RunConnection(options, c, total_sessions, &states[c]); });
  for (std::thread& thread : threads) thread.join();
  const double seconds = timer.ElapsedSeconds();

  LoadgenResult result;
  obs::Histogram::Snapshot merged;
  merged.counts.assign(obs::Histogram::kBuckets, 0);
  for (const ConnState& state : states) {
    if (!state.status.ok()) return state.status;
    result.rows_sent += state.sent;
    result.rows_ok += state.ok;
    result.rows_err += state.err;
    if (result.first_error.empty() && !state.first_error.empty())
      result.first_error = state.first_error;
    const obs::Histogram::Snapshot snap = state.latency.Read();
    for (int b = 0; b < obs::Histogram::kBuckets; ++b) merged.counts[b] += snap.counts[b];
    merged.count += snap.count;
    merged.sum += snap.sum;
    merged.max = std::max(merged.max, snap.max);
  }
  result.seconds = seconds;
  result.rows_per_sec = seconds > 0 ? static_cast<double>(result.rows_ok) / seconds : 0.0;
  result.latency_samples = merged.count;
  result.p50_us = static_cast<double>(merged.QuantileUs(0.50));
  result.p90_us = static_cast<double>(merged.QuantileUs(0.90));
  result.p99_us = static_cast<double>(merged.QuantileUs(0.99));
  result.max_us = static_cast<double>(merged.max);
  return result;
}

Result<std::string> SendVerb(const std::string& host, uint16_t port, const std::string& verb,
                             int timeout_ms) {
  auto sock = ConnectTcp(host, port);
  if (!sock.ok()) return sock.status();
  const std::string request = verb + "\n";
  size_t off = 0;
  while (off < request.size()) {
    size_t n = 0;
    bool would_block = false;
    if (Status status =
            WriteSome(sock->fd(), request.data() + off, request.size() - off, &n, &would_block);
        !status.ok())
      return status;
    off += n;
  }
  // "metrics --prom" is the one multi-line response; everything else is a
  // single line.
  const bool multi_line = verb.rfind("metrics", 0) == 0 &&
                          verb.find("prom") != std::string::npos;
  std::string response;
  char buf[8192];
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    pollfd pfd;
    pfd.fd = sock->fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return Status::Internal("timed out waiting for '" + verb + "'");
    const int rc = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (rc < 0 && errno != EINTR)
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    if (rc <= 0) continue;
    size_t n = 0;
    bool would_block = false;
    if (Status status = ReadSome(sock->fd(), buf, sizeof(buf), &n, &would_block); !status.ok())
      return status;
    if (would_block) continue;
    if (n == 0) return Status::Internal("connection closed before a full response");
    response.append(buf, n);
    if (multi_line) {
      if (response.find("# EOF\n") != std::string::npos) return response;
    } else if (response.find('\n') != std::string::npos) {
      return response;
    }
  }
}

std::string LoadgenResult::ToJson() const {
  common::JsonWriter w;
  w.BeginObject()
      .Key("rows_sent").Uint(rows_sent)
      .Key("rows_ok").Uint(rows_ok)
      .Key("rows_err").Uint(rows_err)
      .Key("seconds").Double(seconds)
      .Key("rows_per_sec").Double(rows_per_sec)
      .Key("latency_samples").Uint(latency_samples)
      .Key("p50_us").Double(p50_us)
      .Key("p90_us").Double(p90_us)
      .Key("p99_us").Double(p99_us)
      .Key("max_us").Double(max_us)
      .Key("clean").Bool(clean())
      .Key("first_error").String(first_error)
      .EndObject();
  return w.str();
}

std::string LoadgenResult::CsvHeader() {
  return "rows_sent,rows_ok,rows_err,seconds,rows_per_sec,p50_us,p90_us,p99_us,max_us";
}

std::string LoadgenResult::CsvRow() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%llu,%llu,%llu,%.6f,%.1f,%.1f,%.1f,%.1f,%.1f",
                static_cast<unsigned long long>(rows_sent),
                static_cast<unsigned long long>(rows_ok),
                static_cast<unsigned long long>(rows_err), seconds, rows_per_sec, p50_us,
                p90_us, p99_us, max_us);
  return buf;
}

}  // namespace otfair::net
