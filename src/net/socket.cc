#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace otfair::net {

using common::Result;
using common::Status;

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return Errno("fcntl(O_NONBLOCK)");
  return Status::Ok();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0)
    return Errno("setsockopt(TCP_NODELAY)");
  return Status::Ok();
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port, int backlog,
                         uint16_t* bound_port) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0)
    return Errno("setsockopt(SO_REUSEADDR)");
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0)
    return Errno("setsockopt(SO_REUSEPORT)");
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) < 0)
    return Errno("bind " + host + ":" + std::to_string(port));
  if (::listen(sock.fd(), backlog) < 0) return Errno("listen");
  if (Status status = SetNonBlocking(sock.fd()); !status.ok()) return status;
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual), &len) < 0)
      return Errno("getsockname");
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Errno("socket");
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("connect " + host + ":" + std::to_string(port));
  return sock;
}

Status ReadSome(int fd, char* buf, size_t cap, size_t* n, bool* would_block) {
  *n = 0;
  *would_block = false;
  ssize_t rc;
  do {
    rc = ::recv(fd, buf, cap, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return Status::Ok();
    }
    return Errno("recv");
  }
  *n = static_cast<size_t>(rc);
  return Status::Ok();
}

Status WriteSome(int fd, const char* buf, size_t len, size_t* n, bool* would_block) {
  *n = 0;
  *would_block = false;
  ssize_t rc;
  do {
    rc = ::send(fd, buf, len, MSG_NOSIGNAL);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return Status::Ok();
    }
    return Errno("send");
  }
  *n = static_cast<size_t>(rc);
  return Status::Ok();
}

}  // namespace otfair::net
