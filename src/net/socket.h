#ifndef OTFAIR_NET_SOCKET_H_
#define OTFAIR_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace otfair::net {

/// RAII owner of a file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Close();

 private:
  int fd_ = -1;
};

/// Creates a non-blocking IPv4 TCP listener bound to `host:port` with
/// SO_REUSEADDR + SO_REUSEPORT (so N worker listeners can share one port
/// and the kernel spreads accepts across them). `port` 0 binds an
/// ephemeral port; `*bound_port` reports the actual port either way.
common::Result<Socket> ListenTcp(const std::string& host, uint16_t port, int backlog,
                                 uint16_t* bound_port);

/// Blocking IPv4 TCP connect (clients switch the fd to non-blocking
/// afterwards if they need to).
common::Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

common::Status SetNonBlocking(int fd);
common::Status SetNoDelay(int fd);

/// One recv() with EINTR retry. On success `*n` is the byte count (0 =
/// orderly EOF) and `*would_block` is false; when the socket has no data
/// and is non-blocking, `*would_block` is true and `*n` is 0.
common::Status ReadSome(int fd, char* buf, size_t cap, size_t* n, bool* would_block);

/// One send(MSG_NOSIGNAL) with EINTR retry; same out-parameter contract
/// as ReadSome.
common::Status WriteSome(int fd, const char* buf, size_t len, size_t* n, bool* would_block);

}  // namespace otfair::net

#endif  // OTFAIR_NET_SOCKET_H_
