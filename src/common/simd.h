#ifndef OTFAIR_COMMON_SIMD_H_
#define OTFAIR_COMMON_SIMD_H_

#include <cstddef>

namespace otfair::common::simd {

/// Thin SIMD wrapper for the repair/Sinkhorn hot paths.
///
/// One kernel table per instruction set (AVX2+FMA on x86-64, NEON on
/// aarch64, plus a portable scalar fallback) is compiled in; which table
/// actually runs is decided once, at first use, by a runtime check:
/// the CPU must support the compiled ISA (`__builtin_cpu_supports`) and
/// the `OTFAIR_NO_SIMD` environment variable (or a `SetForceScalar`
/// call — the CLI `--no-simd` flag lands there) must not force the
/// scalar path. The AVX2 kernels carry per-function target attributes,
/// so no global `-march` flag is needed — the default build dispatches
/// to AVX2 on supporting hardware and to scalar elsewhere.
///
/// Numerical contract: every kernel computes the same mathematical
/// quantity as its scalar reference, but the vector reductions (Sum,
/// Dot, LseDiff) accumulate in lane-parallel partials, so their results
/// may differ from the scalar path in the last bits — they are only
/// used in tolerance-checked contexts (Sinkhorn iterations, plan
/// validation). Element-wise kernels (AddInPlace, ScaledMul) and the
/// exact comparisons (Max, and the repair table *lookup* paths built on
/// this layer) are bit-identical to scalar. Nothing here touches RNG
/// streams, so repair output is bit-identical across scalar/SIMD — the
/// determinism suite asserts exactly that.
struct Ops {
  /// Short ISA tag: "avx2", "neon", or "scalar".
  const char* isa;
  /// sum_i x[i]
  double (*sum)(const double* x, size_t n);
  /// sum_i x[i] * y[i]
  double (*dot)(const double* x, const double* y, size_t n);
  /// max_i x[i]; -inf for n == 0. NaN inputs are not propagated
  /// (comparisons ignore them), matching the scalar `if (v > hi)` idiom.
  double (*max)(const double* x, size_t n);
  /// max_i |x[i] - y[i]|; 0 for n == 0.
  double (*max_abs_diff)(const double* x, const double* y, size_t n);
  /// dst[i] += x[i] (element-wise, bit-identical to scalar)
  void (*add_in_place)(double* dst, const double* x, size_t n);
  /// dst[i] = c * x[i] * y[i] (element-wise, no FMA contraction, so
  /// bit-identical to scalar)
  void (*scaled_mul)(double* dst, const double* x, const double* y, double c,
                     size_t n);
  /// log sum_i exp(x[i] - y[i]), the fused two-pass (max, then exp-sum)
  /// log-sum-exp over a difference; -inf when n == 0 or every term is
  /// -inf. The AVX2 path uses a Cephes-style vector exp (< 2 ulp).
  double (*lse_diff)(const double* x, const double* y, size_t n);
};

/// The portable scalar reference table (always available).
const Ops& ScalarOps();

/// The widest kernel table compiled in AND supported by this CPU,
/// ignoring any force-scalar override. Equals ScalarOps() on hardware
/// without a compiled vector ISA.
const Ops& BestOps();

/// The dispatched table: BestOps(), unless `OTFAIR_NO_SIMD` was set in
/// the environment at first use or `SetForceScalar(true)` was called.
const Ops& Active();

/// Forces (or un-forces) the scalar fallback at runtime; the CLI/bench
/// `--no-simd` escape hatch. Takes effect on subsequent Active() calls.
void SetForceScalar(bool force);

/// True when the scalar path is currently forced (env or SetForceScalar).
bool ForcedScalar();

/// ISA tag of the table Active() dispatches to right now.
const char* ActiveIsa();

// Convenience forwarders through the dispatched table.
inline double Sum(const double* x, size_t n) { return Active().sum(x, n); }
inline double Dot(const double* x, const double* y, size_t n) {
  return Active().dot(x, y, n);
}
inline double Max(const double* x, size_t n) { return Active().max(x, n); }
inline double MaxAbsDiff(const double* x, const double* y, size_t n) {
  return Active().max_abs_diff(x, y, n);
}
inline void AddInPlace(double* dst, const double* x, size_t n) {
  Active().add_in_place(dst, x, n);
}
inline void ScaledMul(double* dst, const double* x, const double* y, double c,
                      size_t n) {
  Active().scaled_mul(dst, x, y, c, n);
}
inline double LseDiff(const double* x, const double* y, size_t n) {
  return Active().lse_diff(x, y, n);
}

}  // namespace otfair::common::simd

#endif  // OTFAIR_COMMON_SIMD_H_
