#ifndef OTFAIR_COMMON_FILE_UTIL_H_
#define OTFAIR_COMMON_FILE_UTIL_H_

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace otfair::common {

/// Reads an entire file into a string using raw POSIX I/O.
///
/// Unlike the naive ifstream read it replaces, this loop retries on EINTR
/// and on short reads (both are routine under signals and on network
/// filesystems), so a transient interruption never surfaces as a permanent
/// load failure. Retries are bounded: a descriptor that yields zero
/// progress repeatedly is reported as kIoError rather than spinning.
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `contents`.
///
/// Writes to a temporary file in the same directory, fsyncs it, renames it
/// over `path`, then fsyncs the parent directory so the rename itself is
/// durable. A crash at any point leaves either the old file or the new one
/// — never a torn mix. Write/fsync failures remove the temporary and
/// return kIoError; EINTR on write is retried.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// True when `path` exists and is a regular file.
bool FileExists(const std::string& path);

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_FILE_UTIL_H_
