#ifndef OTFAIR_COMMON_WORK_QUEUE_H_
#define OTFAIR_COMMON_WORK_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace otfair::common {

/// Bounded multi-producer / multi-consumer work queue with batch pops —
/// the condition-variable primitive underneath `serve::Batcher`.
///
/// Design points:
///  - `TryPush` never blocks: a full (or closed) queue is reported to the
///    producer immediately, which is what turns queue pressure into an
///    explicit backpressure rejection at the serving boundary instead of
///    an unbounded buffer.
///  - `PopBatch` coalesces: it waits until `max_items` are available, the
///    wait budget expires, or the queue closes — then drains up to
///    `max_items` in FIFO order. This is the micro-batching wait loop.
///  - Consumers that want work *now* (caller-runs execution) use
///    `TryPopBatch`.
///
/// All operations are linearizable under the internal mutex; the queue
/// never drops an accepted item — after `Close()`, pops keep draining
/// whatever was accepted before the close.
///
/// Storage is a preallocated ring of default-constructed `T` slots
/// (`T` must be default-constructible and movable): pushes move-assign
/// into recycled moved-from slots, so steady-state operation performs no
/// allocations of its own.
template <typename T>
class BoundedWorkQueue {
 public:
  explicit BoundedWorkQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity), slots_(capacity_) {}

  BoundedWorkQueue(const BoundedWorkQueue&) = delete;
  BoundedWorkQueue& operator=(const BoundedWorkQueue&) = delete;

  /// Appends an item unless the queue is full or closed. When `size_after`
  /// is non-null it receives the queue size including the new item (only
  /// meaningful on success) — producers use it to detect a full batch
  /// without a second lock.
  bool TryPush(T&& item, size_t* size_after = nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || count_ >= capacity_) return false;
      slots_[(head_ + count_) % capacity_] = std::move(item);
      ++count_;
      if (size_after != nullptr) *size_after = count_;
    }
    if (waiters_.load(std::memory_order_relaxed) > 0) cv_.notify_one();
    return true;
  }

  /// Drains up to `max_items` into `out` (appending; existing capacity is
  /// reused) without blocking. Returns the number popped.
  size_t TryPopBatch(size_t max_items, std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    return DrainLocked(max_items, out);
  }

  /// Blocks until `max_items` are queued, `max_wait` has elapsed since the
  /// call, or the queue is closed — then drains up to `max_items` into
  /// `out`. Returns the number popped (0 only on timeout-with-empty-queue
  /// or a closed-and-drained queue).
  size_t PopBatch(size_t max_items, std::vector<T>* out, std::chrono::microseconds max_wait) {
    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    std::unique_lock<std::mutex> lock(mu_);
    waiters_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait_until(lock, deadline, [&] { return closed_ || count_ >= max_items; });
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    return DrainLocked(max_items, out);
  }

  /// As PopBatch but with no deadline while the queue is empty: blocks for
  /// the first item (or close), then gives stragglers `max_wait` to fill
  /// the batch. This is the idle loop of a background flusher — it sleeps
  /// indefinitely on an idle queue yet bounds the latency of a partial
  /// batch once traffic arrives.
  size_t PopBatchWhenReady(size_t max_items, std::vector<T>* out,
                           std::chrono::microseconds max_wait) {
    std::unique_lock<std::mutex> lock(mu_);
    waiters_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait(lock, [&] { return closed_ || count_ > 0; });
    if (!closed_ && count_ < max_items) {
      const auto deadline = std::chrono::steady_clock::now() + max_wait;
      cv_.wait_until(lock, deadline, [&] { return closed_ || count_ >= max_items; });
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    return DrainLocked(max_items, out);
  }

  /// Closes the queue: further pushes fail, blocked pops wake and drain
  /// what remains.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  size_t capacity() const { return capacity_; }

 private:
  size_t DrainLocked(size_t max_items, std::vector<T>* out) {
    size_t popped = 0;
    while (popped < max_items && count_ > 0) {
      out->push_back(std::move(slots_[head_]));
      head_ = (head_ + 1) % capacity_;
      --count_;
      ++popped;
    }
    return popped;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> slots_;  // ring: [head_, head_ + count_) mod capacity_
  size_t head_ = 0;
  size_t count_ = 0;
  std::atomic<int> waiters_{0};
  bool closed_ = false;
};

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_WORK_QUEUE_H_
