#include "common/crc32.h"

#include <array>

namespace otfair::common {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32(const void* data, size_t len) {
  return Crc32Final(Crc32Update(kCrc32Init, data, len));
}

}  // namespace otfair::common
