#ifndef OTFAIR_COMMON_FLAGS_H_
#define OTFAIR_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace otfair::common {

/// Minimal command-line flag parser for examples and experiment binaries.
///
/// Accepts `--name=value`, `--name value`, and boolean `--name`. Anything
/// not starting with `--` is collected as a positional argument. Typical
/// use:
///
///     FlagParser flags(argc, argv);
///     int trials = flags.GetInt("trials", 50);
///     uint64_t seed = flags.GetUint64("seed", 42);
///     if (!flags.Validate({"trials", "seed"}).ok()) { ... }
class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  /// True if the flag was present on the command line.
  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name, const std::string& default_value) const;
  int GetInt(const std::string& name, int default_value) const;
  uint64_t GetUint64(const std::string& name, uint64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Comma-separated list of ints, e.g. `--sizes=25,50,100`.
  std::vector<int> GetIntList(const std::string& name, const std::vector<int>& default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

  /// Returns InvalidArgument if any flag on the command line is not in
  /// `known`; guards against typos in experiment invocations.
  Status Validate(const std::vector<std::string>& known) const;

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_FLAGS_H_
