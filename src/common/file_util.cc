#include "common/file_util.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

namespace otfair::common {
namespace {

// A descriptor that makes zero progress this many times in a row (EINTR
// included) is treated as broken rather than retried forever.
constexpr int kMaxZeroProgressRetries = 100;

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

int OpenRetry(const char* path, int flags, mode_t mode) {
  for (int attempt = 0; attempt < kMaxZeroProgressRetries; ++attempt) {
    int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
  return -1;
}

// Writes all of `data`, retrying EINTR and short writes (bounded).
bool WriteAll(int fd, const char* data, size_t len) {
  int stalls = 0;
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n > 0) {
      data += n;
      len -= static_cast<size_t>(n);
      stalls = 0;
      continue;
    }
    if (n < 0 && errno != EINTR) return false;
    if (++stalls >= kMaxZeroProgressRetries) {
      errno = EIO;
      return false;
    }
  }
  return true;
}

bool FsyncRetry(int fd) {
  for (int attempt = 0; attempt < kMaxZeroProgressRetries; ++attempt) {
    if (::fsync(fd) == 0) return true;
    if (errno != EINTR) return false;
  }
  return false;
}

// Fsyncs the directory containing `path` so a just-completed rename in it
// survives a crash. Best-effort on filesystems that reject directory fds.
void FsyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = (slash == std::string::npos) ? "." : path.substr(0, slash + 1);
  int fd = OpenRetry(dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) return;
  FsyncRetry(fd);
  ::close(fd);
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = OpenRetry(path.c_str(), O_RDONLY, 0);
  if (fd < 0) return Status::IoError(Errno("failed to open", path));

  std::string out;
  struct stat st;
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    out.reserve(static_cast<size_t>(st.st_size));
  }

  char buf[1 << 16];
  int stalls = 0;
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      stalls = 0;
      continue;
    }
    if (n == 0) break;  // EOF
    if (errno != EINTR) {
      Status err = Status::IoError(Errno("failed to read", path));
      ::close(fd);
      return err;
    }
    if (++stalls >= kMaxZeroProgressRetries) {
      ::close(fd);
      return Status::IoError("read of '" + path + "' made no progress after repeated EINTR");
    }
  }
  ::close(fd);
  return out;
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  // The temp file must live in the same directory for rename() to be atomic.
  std::string tmp = path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = OpenRetry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(Errno("failed to create", tmp));

  if (!WriteAll(fd, contents.data(), contents.size())) {
    Status err = Status::IoError(Errno("failed to write", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return err;
  }
  if (!FsyncRetry(fd)) {
    Status err = Status::IoError(Errno("failed to fsync", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return err;
  }
  if (::close(fd) != 0) {
    Status err = Status::IoError(Errno("failed to close", tmp));
    ::unlink(tmp.c_str());
    return err;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status err = Status::IoError(Errno("failed to rename into", path));
    ::unlink(tmp.c_str());
    return err;
  }
  FsyncParentDir(path);
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace otfair::common
