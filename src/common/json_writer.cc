#include "common/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace otfair::common {

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::Raw(const std::string& text) {
  BeforeValue();
  out_ += text;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  OTFAIR_CHECK(!needs_comma_.empty());
  OTFAIR_CHECK(!pending_key_);
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  OTFAIR_CHECK(!needs_comma_.empty());
  OTFAIR_CHECK(!pending_key_);
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  OTFAIR_CHECK(!needs_comma_.empty());
  OTFAIR_CHECK(!pending_key_);
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted += '"';
  quoted += JsonEscape(value);
  quoted += '"';
  Raw(quoted);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  if (!std::isfinite(value)) return Null();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  Raw(buf);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Raw(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Raw("null");
  return *this;
}

}  // namespace otfair::common
