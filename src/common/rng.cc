#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace otfair::common {
namespace {

/// SplitMix64 step: used for seeding xoshiro state and for stream forking.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng Rng::ForStream(uint64_t seed, uint64_t stream) {
  // Hash the stream index through SplitMix64 before mixing it with the
  // seed, so consecutive stream indices land on well-separated seeds (the
  // Rng constructor then expands that seed through SplitMix64 again).
  uint64_t sm = stream;
  return Rng(seed ^ SplitMix64(&sm));
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // xoshiro must not start in the all-zero state; SplitMix64 makes this
  // astronomically unlikely but we guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  OTFAIR_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  OTFAIR_CHECK_GT(n, 0u);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. u1 in (0,1] so log(u1) is finite.
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double sd) {
  OTFAIR_CHECK_GE(sd, 0.0);
  return mean + sd * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  OTFAIR_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    OTFAIR_CHECK_GE(w, 0.0);
    total += w;
  }
  OTFAIR_CHECK_GT(total, 0.0);
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  // Floating-point edge: u == total. Return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

double Rng::Exponential(double rate) {
  OTFAIR_CHECK_GT(rate, 0.0);
  return -std::log(1.0 - Uniform()) / rate;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = UniformInt(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork() {
  uint64_t child_seed = Next64();
  return Rng(child_seed);
}

}  // namespace otfair::common
