#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/simd.h"

namespace otfair::common {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  const size_t cols = rows[0].size();
  // Storage is allocated once up front; each row is a single contiguous
  // copy into it (no per-element indexed stores).
  Matrix m(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    OTFAIR_CHECK_EQ(rows[r].size(), cols) << "ragged row " << r;
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::RowVector(size_t r) const {
  OTFAIR_CHECK_LT(r, rows_);
  return std::vector<double>(row(r), row(r) + cols_);
}

std::vector<double> Matrix::ColVector(size_t c) const {
  OTFAIR_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

double Matrix::Sum() const {
  double total = 0.0;
  for (double v : data_) total += v;
  return total;
}

std::vector<double> Matrix::RowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) sums[r] = simd::Sum(row(r), cols_);
  return sums;
}

std::vector<double> Matrix::ColSums() const {
  // Row-major streaming accumulation; the element-wise vector add keeps
  // the per-column summation order (row 0, row 1, ...) bit-identical to
  // the scalar loop.
  std::vector<double> sums(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) simd::AddInPlace(sums.data(), row(r), cols_);
  return sums;
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Matrix::Dot(const Matrix& other) const {
  OTFAIR_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double total = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) total += data_[i] * other.data_[i];
  return total;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  OTFAIR_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* brow = other.row(k);
      double* orow = out.row(r);
      for (size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  OTFAIR_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double best = 0.0;
  for (size_t i = 0; i < data_.size(); ++i)
    best = std::max(best, std::fabs(data_[i] - other.data_[i]));
  return best;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace otfair::common
