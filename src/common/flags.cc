#include "common/flags.h"

#include <cstdlib>

#include "common/string_util.h"

namespace otfair::common {

FlagParser::FlagParser(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool FlagParser::Has(const std::string& name) const { return values_.count(name) > 0; }

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int FlagParser::GetInt(const std::string& name, int default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atoi(it->second.c_str());
}

uint64_t FlagParser::GetUint64(const std::string& name, uint64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : static_cast<uint64_t>(std::strtoull(it->second.c_str(), nullptr, 10));
}

double FlagParser::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atof(it->second.c_str());
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<int> FlagParser::GetIntList(const std::string& name,
                                        const std::vector<int>& default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::vector<int> out;
  for (const std::string& tok : Split(it->second, ',')) {
    if (!tok.empty()) out.push_back(std::atoi(tok.c_str()));
  }
  return out;
}

Status FlagParser::Validate(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) return Status::InvalidArgument("unknown flag --" + name);
  }
  return Status::Ok();
}

}  // namespace otfair::common
