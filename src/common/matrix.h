#ifndef OTFAIR_COMMON_MATRIX_H_
#define OTFAIR_COMMON_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"

namespace otfair::common {

/// Dense row-major matrix of doubles.
///
/// A deliberately small linear-algebra surface: the OT solvers, KDE and GMM
/// code need contiguous storage, element access, row views and a few
/// reductions — not a full BLAS. Sized for n_Q × n_Q cost matrices and OT
/// plans (typically <= 1000 x 1000).
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, zero-initialized (or filled with `init`).
  Matrix(size_t rows, size_t cols, double init = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Builds from nested initializer data; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    OTFAIR_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    OTFAIR_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw contiguous storage (row-major).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Pointer to the start of row r.
  double* row(size_t r) {
    OTFAIR_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* row(size_t r) const {
    OTFAIR_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Copies row r into a vector.
  std::vector<double> RowVector(size_t r) const;
  /// Copies column c into a vector.
  std::vector<double> ColVector(size_t c) const;

  /// Sum over all elements.
  double Sum() const;
  /// Per-row sums (length rows()).
  std::vector<double> RowSums() const;
  /// Per-column sums (length cols()).
  std::vector<double> ColSums() const;
  /// Largest |a_ij|.
  double MaxAbs() const;

  /// Frobenius inner product <A, B>; shapes must match.
  double Dot(const Matrix& other) const;

  /// Matrix transpose.
  Matrix Transposed() const;

  /// Matrix product this * other; inner dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Multiplies every element by s, in place.
  void Scale(double s);

  /// Element-wise maximum deviation from `other`; shapes must match.
  double MaxAbsDiff(const Matrix& other) const;

  /// Multi-line debug rendering with fixed precision.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_MATRIX_H_
