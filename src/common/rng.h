#ifndef OTFAIR_COMMON_RNG_H_
#define OTFAIR_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace otfair::common {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implementation: xoshiro256++ (Blackman & Vigna, 2019) seeded through
/// SplitMix64, which gives well-distributed state from any 64-bit seed.
/// All experiment randomness in otfair flows through this class so that
/// every table/figure reproduction is bit-reproducible given a seed.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// handed to <random> distributions where convenient; the methods below are
/// the preferred interface because their output is stable across standard
/// library implementations.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed. Equal seeds give equal
  /// streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Deterministic decorrelated sub-stream `stream` of `seed`: for a fixed
  /// seed, distinct stream indices give independent-looking generators.
  /// This is how batch repair assigns each dataset row its own stream, so
  /// rows can be repaired in any order (or in parallel) with bit-identical
  /// results.
  static Rng ForStream(uint64_t seed, uint64_t stream);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64 random bits.
  uint64_t operator()() { return Next64(); }
  uint64_t Next64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double Uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal deviate (Box–Muller with caching: exactly two uniforms
  /// consumed per pair of normals).
  double Normal();

  /// Normal deviate with the given mean and standard deviation (sd >= 0).
  double Normal(double mean, double sd);

  /// Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Draws an index from the (unnormalized, non-negative) weight vector by
  /// inverse-CDF. Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Exponential deviate with the given rate (> 0).
  double Exponential(double rate);

  /// In-place Fisher–Yates shuffle of indices [0, n); returns the
  /// permutation.
  std::vector<size_t> Permutation(size_t n);

  /// Forks an independent generator: the child stream is decorrelated from
  /// this one (seeded from this stream through SplitMix64). Useful for
  /// giving each Monte-Carlo trial its own reproducible stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_RNG_H_
