#ifndef OTFAIR_COMMON_RESULT_H_
#define OTFAIR_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace otfair::common {

/// Value-or-error container, modelled on absl::StatusOr<T>.
///
/// A `Result<T>` holds either a `T` (and an OK status) or a non-OK `Status`.
/// Accessing the value of an error result is a fatal programmer error
/// (enforced with CHECK).
///
///     Result<Plan> r = Solve(...);
///     if (!r.ok()) return r.status();
///     const Plan& plan = r.value();
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value: success.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from an error status. The status must not be OK:
  /// an OK status without a value would be ill-formed.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    OTFAIR_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    OTFAIR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    OTFAIR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    OTFAIR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Early-return helper: assigns the value of a Result expression to `lhs`, or
/// propagates its error status. `lhs` must be a declaration or assignable
/// expression.
#define OTFAIR_ASSIGN_OR_RETURN(lhs, rexpr)                     \
  OTFAIR_ASSIGN_OR_RETURN_IMPL_(                                \
      OTFAIR_CONCAT_(_otfair_result_, __LINE__), lhs, rexpr)

#define OTFAIR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define OTFAIR_CONCAT_INNER_(a, b) a##b
#define OTFAIR_CONCAT_(a, b) OTFAIR_CONCAT_INNER_(a, b)

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_RESULT_H_
