#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace otfair::common {

std::vector<std::string> Split(const std::string& input, char delimiter) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : input) {
    if (c == delimiter) {
      tokens.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  tokens.push_back(current);
  return tokens;
}

std::string Join(const std::vector<std::string>& tokens, const std::string& delimiter) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i) out += delimiter;
    out += tokens[i];
  }
  return out;
}

std::string Trim(const std::string& input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return input.substr(begin, end - begin);
}

bool StartsWith(const std::string& input, const std::string& prefix) {
  return input.size() >= prefix.size() && input.compare(0, prefix.size(), prefix) == 0;
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace otfair::common
