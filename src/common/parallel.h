#ifndef OTFAIR_COMMON_PARALLEL_H_
#define OTFAIR_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/status.h"

namespace otfair::common::parallel {

/// Process-wide parallelism subsystem: a persistent thread pool plus a
/// `ParallelFor` primitive the hot paths (channel design, batch repair,
/// Sinkhorn row updates) are written against.
///
/// Design rules that make parallel output bit-identical to serial:
///  - `ParallelFor(begin, end, fn)` runs `fn(i)` exactly once per index;
///    callers write results into preallocated per-index slots and never
///    share mutable state across indices, so the schedule cannot change
///    the result.
///  - Reductions (max error, stats totals) are computed serially from the
///    per-index slots after the loop.
///  - At an effective thread count of 1 the loop runs inline on the
///    calling thread with zero pool involvement — the serial fallback.
///
/// Thread-count resolution order: an explicit per-call count, else the
/// process override installed by `SetThreadCount` (CLI `--threads`), else
/// the `OTFAIR_THREADS` environment variable, else
/// `std::thread::hardware_concurrency()`.

/// Parses a thread-count string; returns 0 unless `text` is a positive
/// base-10 integer with no trailing garbage. Exposed for unit tests.
size_t ParseThreadCount(const char* text);

/// Default thread count: `OTFAIR_THREADS` when it parses to a positive
/// integer, else `hardware_concurrency()` (never 0). Reads the
/// environment once and caches.
size_t DefaultThreadCount();

/// Installs a process-wide override (the CLI `--threads` flag lands
/// here); `count == 0` removes the override, restoring the default.
void SetThreadCount(size_t count);

/// Effective process-wide thread count (override, else default).
size_t ThreadCount();

/// True while the calling thread is executing a `ParallelFor` body;
/// nested loops run serially instead of deadlocking the pool.
bool InParallelRegion();

/// Persistent worker pool. One process-wide instance serves every
/// `ParallelFor`; the calling thread always participates, so a pool with
/// W workers gives W + 1 concurrent lanes.
class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is valid: every Run executes on the
  /// caller).
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const;

  /// Runs fn(i) for every i in [begin, end) using at most
  /// `max_concurrency` lanes (caller included), blocking until every
  /// index has completed. If bodies throw, the exception raised at the
  /// smallest failing index is rethrown after the loop drains; the other
  /// exceptions are dropped.
  void Run(size_t begin, size_t end, const std::function<void(size_t)>& fn,
           size_t max_concurrency);

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-wide pool, created on first use and replaced by a larger
/// one when the configured thread count — or an explicit `min_lanes`
/// request from a ParallelFor call — outgrows its worker count (the
/// outgrown instance is retired, never destroyed mid-use, so concurrent
/// callers are safe). Concurrent Run() invocations on one pool are
/// serialized: each caller gets the full pool in admission order.
ThreadPool& GlobalPool(size_t min_lanes = 0);

/// Runs fn(i) for every i in [begin, end); blocks until all complete.
/// `threads == 0` uses `ThreadCount()`. Runs inline (serial) when the
/// effective count is 1, the range has a single index, or the caller is
/// already inside a ParallelFor body. An effective count of 1 also marks
/// the region, so nested loops stay serial — threads=1 is a promise that
/// no pool lanes are used underneath.
void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                 size_t threads = 0);

/// ParallelFor over fallible tasks: every index runs (no early abort),
/// each status lands in a per-index slot, and the first failure in index
/// order is returned — so error reporting is as deterministic as the
/// results. This is the shape every task-parallel pipeline stage
/// (channel design, geometric repair, ...) shares.
Status ParallelForStatus(size_t begin, size_t end,
                         const std::function<Status(size_t)>& fn, size_t threads = 0);

}  // namespace otfair::common::parallel

#endif  // OTFAIR_COMMON_PARALLEL_H_
