#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace otfair::common::parallel {

namespace {

thread_local bool tls_in_parallel_region = false;

std::atomic<size_t>& ThreadCountOverride() {
  static std::atomic<size_t> override_count{0};
  return override_count;
}

}  // namespace

size_t ParseThreadCount(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  size_t value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
    const size_t digit = static_cast<size_t>(*p - '0');
    if (value > (~size_t{0} - digit) / 10) return 0;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

size_t DefaultThreadCount() {
  static const size_t cached = [] {
    const size_t from_env = ParseThreadCount(std::getenv("OTFAIR_THREADS"));
    if (from_env > 0) return from_env;
    const size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : size_t{1};
  }();
  return cached;
}

void SetThreadCount(size_t count) { ThreadCountOverride().store(count); }

size_t ThreadCount() {
  const size_t override_count = ThreadCountOverride().load();
  return override_count > 0 ? override_count : DefaultThreadCount();
}

bool InParallelRegion() { return tls_in_parallel_region; }

struct ThreadPool::Impl {
  /// One ParallelFor invocation. Lives on the shared_ptr so late workers
  /// can still read it after Run() has returned.
  struct Job {
    size_t begin = 0;
    size_t total = 0;
    size_t chunk = 1;
    size_t worker_limit = 0;  // workers with id >= limit sit this job out
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex error_mutex;
    size_t error_index = ~size_t{0};
    std::exception_ptr error;
  };

  std::mutex run_mutex;  // serializes whole Run() invocations
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> threads;
  std::shared_ptr<Job> job;
  uint64_t generation = 0;
  bool stopping = false;

  /// Claims and executes chunks until the job's index space is exhausted.
  void WorkOn(Job& j) {
    tls_in_parallel_region = true;
    for (;;) {
      const size_t start = j.next.fetch_add(j.chunk);
      if (start >= j.total) break;
      const size_t stop = std::min(j.total, start + j.chunk);
      for (size_t i = start; i < stop; ++i) {
        try {
          (*j.fn)(j.begin + i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(j.error_mutex);
          if (j.begin + i < j.error_index) {
            j.error_index = j.begin + i;
            j.error = std::current_exception();
          }
        }
      }
      const size_t finished = j.done.fetch_add(stop - start) + (stop - start);
      if (finished == j.total) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
    tls_in_parallel_region = false;
  }

  void WorkerLoop(size_t id) {
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> current;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stopping || generation != seen; });
        if (stopping) return;
        seen = generation;
        current = job;
      }
      if (current && id < current->worker_limit) WorkOn(*current);
    }
  }
};

ThreadPool::ThreadPool(size_t workers) : impl_(new Impl) {
  impl_->threads.reserve(workers);
  for (size_t id = 0; id < workers; ++id) {
    impl_->threads.emplace_back([this, id] { impl_->WorkerLoop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
  delete impl_;
}

size_t ThreadPool::workers() const { return impl_->threads.size(); }

void ThreadPool::Run(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                     size_t max_concurrency) {
  if (end <= begin) return;
  // One job at a time: concurrent top-level callers queue here instead of
  // overwriting each other's job slot. Each queued caller still gets the
  // full pool once admitted.
  std::lock_guard<std::mutex> run_lock(impl_->run_mutex);
  const size_t total = end - begin;
  const size_t lanes = std::max<size_t>(1, max_concurrency);

  auto job = std::make_shared<Impl::Job>();
  job->begin = begin;
  job->total = total;
  // Small chunks keep lanes busy on ragged per-index costs; 4 chunks per
  // lane bounds the claim-counter contention.
  job->chunk = std::max<size_t>(1, total / (lanes * 4));
  job->worker_limit = lanes - 1;  // the caller is the remaining lane
  job->fn = &fn;

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->generation;
  }
  if (job->worker_limit > 0) impl_->work_cv.notify_all();

  impl_->WorkOn(*job);

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] { return job->done.load() == total; });
    impl_->job.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& GlobalPool(size_t min_lanes) {
  static std::mutex pool_mutex;
  // Outgrown pools are retired, not destroyed: another thread may still
  // be inside Run() on the old instance, and joining it here would be a
  // use-after-free for that caller. Retired pools idle until process
  // exit; growth events are rare (monotone in the largest request).
  static std::vector<std::unique_ptr<ThreadPool>>& pools =
      *new std::vector<std::unique_ptr<ThreadPool>>();
  std::lock_guard<std::mutex> lock(pool_mutex);
  const size_t lanes = std::max(ThreadCount(), min_lanes);
  const size_t want_workers = lanes > 0 ? lanes - 1 : 0;
  if (pools.empty() || pools.back()->workers() < want_workers) {
    pools.push_back(std::make_unique<ThreadPool>(want_workers));
  }
  return *pools.back();
}

void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                 size_t threads) {
  if (end <= begin) return;
  if (InParallelRegion()) {  // nested: the outer loop owns the lanes
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const size_t count = threads > 0 ? threads : ThreadCount();
  if (count <= 1) {
    // An effective count of 1 is a promise of serial execution, so mark
    // the region: nested loops (e.g. Sinkhorn inside a threads=1 design)
    // must not fan out behind the caller's back.
    tls_in_parallel_region = true;
    try {
      for (size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      tls_in_parallel_region = false;
      throw;
    }
    tls_in_parallel_region = false;
    return;
  }
  if (end - begin == 1) {
    // Single index: run inline but leave the region unmarked — a nested
    // loop inside the one task may still use the pool.
    fn(begin);
    return;
  }
  GlobalPool(count).Run(begin, end, fn, count);
}

Status ParallelForStatus(size_t begin, size_t end,
                         const std::function<Status(size_t)>& fn, size_t threads) {
  if (end <= begin) return Status::Ok();
  std::vector<Status> slots(end - begin, Status::Ok());
  ParallelFor(begin, end, [&](size_t i) { slots[i - begin] = fn(i); }, threads);
  for (Status& status : slots) {
    if (!status.ok()) return std::move(status);
  }
  return Status::Ok();
}

}  // namespace otfair::common::parallel
