#ifndef OTFAIR_COMMON_CRC32_H_
#define OTFAIR_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace otfair::common {

/// IEEE 802.3 CRC-32 (the zlib/gzip polynomial 0xEDB88320, reflected,
/// init/final-xor 0xFFFFFFFF). Used as the integrity check on checkpoint
/// payloads: it catches the bit-flips and truncations the chaos harness
/// injects, without pulling in any external dependency.
uint32_t Crc32(const void* data, size_t len);

inline uint32_t Crc32(const std::string& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// Incremental form: feed chunks with `crc = Crc32Update(crc, ...)`,
/// starting from `kCrc32Init`, and finalize with `Crc32Final`.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);
inline uint32_t Crc32Final(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_CRC32_H_
