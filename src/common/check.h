#ifndef OTFAIR_COMMON_CHECK_H_
#define OTFAIR_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace otfair::common::internal {

/// Accumulates a fatal-error message and aborts the process on destruction.
/// Used only via the OTFAIR_CHECK family of macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed message when a check passes; enables the
/// `cond ? Voidify() : stream` ternary used by the macros.
struct Voidify {
  void operator&(const CheckFailureStream&) const {}
};

}  // namespace otfair::common::internal

/// Aborts with a diagnostic if `cond` is false. For contract violations
/// (programmer errors), not for recoverable runtime failures — those use
/// Status/Result. Additional context can be streamed:
///
///     OTFAIR_CHECK(i < n) << "index " << i << " out of bounds " << n;
#define OTFAIR_CHECK(cond)                                       \
  (cond) ? (void)0                                               \
         : ::otfair::common::internal::Voidify() &               \
               ::otfair::common::internal::CheckFailureStream(#cond, __FILE__, __LINE__)

#define OTFAIR_CHECK_EQ(a, b) OTFAIR_CHECK((a) == (b))
#define OTFAIR_CHECK_NE(a, b) OTFAIR_CHECK((a) != (b))
#define OTFAIR_CHECK_LT(a, b) OTFAIR_CHECK((a) < (b))
#define OTFAIR_CHECK_LE(a, b) OTFAIR_CHECK((a) <= (b))
#define OTFAIR_CHECK_GT(a, b) OTFAIR_CHECK((a) > (b))
#define OTFAIR_CHECK_GE(a, b) OTFAIR_CHECK((a) >= (b))

/// Debug-only variant: compiled out in NDEBUG builds.
#ifdef NDEBUG
#define OTFAIR_DCHECK(cond) OTFAIR_CHECK(true)
#else
#define OTFAIR_DCHECK(cond) OTFAIR_CHECK(cond)
#endif

#endif  // OTFAIR_COMMON_CHECK_H_
