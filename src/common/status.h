#ifndef OTFAIR_COMMON_STATUS_H_
#define OTFAIR_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace otfair::common {

/// Canonical error space for all fallible operations in otfair.
///
/// The library follows a no-exceptions discipline: every operation that can
/// fail at runtime (bad input data, non-convergence, IO errors, ...) reports
/// through `Status` or `Result<T>`. Programmer errors (violated contracts)
/// use `CHECK` from `common/check.h` instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kIoError = 7,
  kNotConverged = 8,
  /// Transient refusal: the resource exists but cannot take the request
  /// right now (queue full, service shut down). Retry-able, unlike
  /// kInvalidArgument. Used by the serving layer for backpressure.
  kUnavailable = 9,
};

/// Human-readable name of a status code (e.g. "INVALID_ARGUMENT").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, modelled on absl::Status.
///
/// `Status` is cheap to copy in the success case (no allocation) and carries
/// a message string in the error case. Typical use:
///
///     Status s = plan.Validate();
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code clears
  /// the message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Early-return helper: propagates a non-OK status to the caller.
#define OTFAIR_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::otfair::common::Status _otfair_st = (expr);     \
    if (!_otfair_st.ok()) return _otfair_st;          \
  } while (false)

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_STATUS_H_
