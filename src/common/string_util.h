#ifndef OTFAIR_COMMON_STRING_UTIL_H_
#define OTFAIR_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace otfair::common {

/// Splits `input` on `delimiter`, keeping empty tokens ("a,,b" -> 3 tokens).
std::vector<std::string> Split(const std::string& input, char delimiter);

/// Joins tokens with `delimiter`.
std::string Join(const std::vector<std::string>& tokens, const std::string& delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(const std::string& input);

/// True if `input` begins with `prefix`.
bool StartsWith(const std::string& input, const std::string& prefix);

/// Formats a double with `precision` significant decimal places (fixed).
std::string FormatDouble(double value, int precision = 4);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_STRING_UTIL_H_
