#ifndef OTFAIR_COMMON_TIMER_H_
#define OTFAIR_COMMON_TIMER_H_

#include <chrono>

namespace otfair::common {

/// Monotonic wall-clock stopwatch for experiment instrumentation.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_TIMER_H_
