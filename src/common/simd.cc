#include "common/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>

#if defined(__x86_64__) || defined(_M_X64)
#define OTFAIR_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define OTFAIR_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace otfair::common::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These mirror the loop idioms the hot paths used
// before this layer existed, so forcing the scalar table reproduces the
// pre-SIMD numerics exactly.
// ---------------------------------------------------------------------------

double ScalarSum(const double* x, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

double ScalarDot(const double* x, const double* y, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double ScalarMax(const double* x, size_t n) {
  double hi = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    if (x[i] > hi) hi = x[i];
  }
  return hi;
}

double ScalarMaxAbsDiff(const double* x, const double* y, size_t n) {
  double hi = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = std::abs(x[i] - y[i]);
    if (d > hi) hi = d;
  }
  return hi;
}

void ScalarAddInPlace(double* dst, const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += x[i];
}

void ScalarScaledMul(double* dst, const double* x, const double* y, double c,
                     size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = c * x[i] * y[i];
}

// Two-pass fused log-sum-exp over a difference, matching the former
// ot::RowLogSumExp: subtract the running max so every exp argument is <= 0.
double ScalarLseDiff(const double* x, const double* y, size_t n) {
  double hi = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const double d = x[i] - y[i];
    if (d > hi) hi = d;
  }
  if (!std::isfinite(hi)) return hi;  // all -inf (or empty): LSE is -inf
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += std::exp((x[i] - y[i]) - hi);
  return hi + std::log(acc);
}

constexpr Ops kScalarOps = {
    "scalar",        ScalarSum,        ScalarDot,      ScalarMax,
    ScalarMaxAbsDiff, ScalarAddInPlace, ScalarScaledMul, ScalarLseDiff,
};

#if defined(OTFAIR_SIMD_X86)

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels. Compiled with per-function target attributes so the
// default (no -mavx2) build still contains them; dispatch checks
// __builtin_cpu_supports("avx2") before installing this table.
// Reductions keep 4 independent accumulators to break the dependency chain,
// then fold lanes in a fixed order so results are deterministic run-to-run
// (though not bit-equal to the scalar single-accumulator order).
// ---------------------------------------------------------------------------

#define OTFAIR_AVX2 __attribute__((target("avx2,fma")))

OTFAIR_AVX2 inline double HAdd(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(lo) + _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
}

OTFAIR_AVX2 inline double HMax(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_max_pd(lo, hi);
  const double a = _mm_cvtsd_f64(lo);
  const double b = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  return a > b ? a : b;
}

OTFAIR_AVX2 double Avx2Sum(const double* x, size_t n) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    a0 = _mm256_add_pd(a0, _mm256_loadu_pd(x + i));
    a1 = _mm256_add_pd(a1, _mm256_loadu_pd(x + i + 4));
    a2 = _mm256_add_pd(a2, _mm256_loadu_pd(x + i + 8));
    a3 = _mm256_add_pd(a3, _mm256_loadu_pd(x + i + 12));
  }
  for (; i + 4 <= n; i += 4) a0 = _mm256_add_pd(a0, _mm256_loadu_pd(x + i));
  double acc = HAdd(_mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3)));
  for (; i < n; ++i) acc += x[i];
  return acc;
}

OTFAIR_AVX2 double Avx2Dot(const double* x, const double* y, size_t n) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    a0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), a0);
    a1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4),
                         a1);
    a2 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 8), _mm256_loadu_pd(y + i + 8),
                         a2);
    a3 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 12),
                         _mm256_loadu_pd(y + i + 12), a3);
  }
  for (; i + 4 <= n; i += 4) {
    a0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), a0);
  }
  double acc = HAdd(_mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3)));
  for (; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

OTFAIR_AVX2 double Avx2Max(const double* x, size_t n) {
  double hi = -std::numeric_limits<double>::infinity();
  size_t i = 0;
  if (n >= 4) {
    __m256d m = _mm256_loadu_pd(x);
    for (i = 4; i + 4 <= n; i += 4) {
      m = _mm256_max_pd(m, _mm256_loadu_pd(x + i));
    }
    hi = HMax(m);
  }
  for (; i < n; ++i) {
    if (x[i] > hi) hi = x[i];
  }
  return hi;
}

OTFAIR_AVX2 double Avx2MaxAbsDiff(const double* x, const double* y, size_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d m = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    m = _mm256_max_pd(m, _mm256_andnot_pd(sign_mask, d));
  }
  double hi = HMax(m);
  if (hi < 0.0) hi = 0.0;  // n < 4: HMax of the zero vector is 0 already
  for (; i < n; ++i) {
    const double d = std::abs(x[i] - y[i]);
    if (d > hi) hi = d;
  }
  return hi;
}

OTFAIR_AVX2 void Avx2AddInPlace(double* dst, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                   _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) dst[i] += x[i];
}

OTFAIR_AVX2 void Avx2ScaledMul(double* dst, const double* x, const double* y,
                               double c, size_t n) {
  const __m256d vc = _mm256_set1_pd(c);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Two explicit rounded multiplies, c*x then *y, matching the scalar
    // `c * x[i] * y[i]` evaluation order with no FMA contraction.
    const __m256d cx = _mm256_mul_pd(vc, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(cx, _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) dst[i] = c * x[i] * y[i];
}

// Cephes-style vectorized exp(x) for doubles (accurate to < 2 ulp over the
// finite range; clamps to 0 / +inf at the double exp under/overflow bounds).
// Range reduction: x = n*ln2 + r, exp(x) = 2^n * exp(r) with exp(r)
// approximated by the classic P/Q rational form.
OTFAIR_AVX2 inline __m256d Avx2Exp(__m256d x) {
  const __m256d kLog2E = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d kLn2Hi = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d kLn2Lo = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d kP0 = _mm256_set1_pd(1.26177193074810590878e-4);
  const __m256d kP1 = _mm256_set1_pd(3.02994407707441961300e-2);
  const __m256d kP2 = _mm256_set1_pd(9.99999999999999999910e-1);
  const __m256d kQ0 = _mm256_set1_pd(3.00198505138664455042e-6);
  const __m256d kQ1 = _mm256_set1_pd(2.52448340349684104192e-3);
  const __m256d kQ2 = _mm256_set1_pd(2.27265548208155028766e-1);
  const __m256d kQ3 = _mm256_set1_pd(2.00000000000000000005e0);
  const __m256d kMaxArg = _mm256_set1_pd(709.4);
  const __m256d kMinArg = _mm256_set1_pd(-708.39);

  const __m256d too_hi = _mm256_cmp_pd(x, kMaxArg, _CMP_GT_OQ);
  const __m256d too_lo = _mm256_cmp_pd(x, kMinArg, _CMP_LT_OQ);
  x = _mm256_min_pd(_mm256_max_pd(x, kMinArg), kMaxArg);

  // n = round(x * log2(e)); r = x - n*ln2 in two pieces for accuracy.
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, kLog2E), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(n, kLn2Hi, x);
  r = _mm256_fnmadd_pd(n, kLn2Lo, r);

  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d p = _mm256_fmadd_pd(kP0, r2, kP1);
  p = _mm256_fmadd_pd(p, r2, kP2);
  p = _mm256_mul_pd(p, r);
  __m256d q = _mm256_fmadd_pd(kQ0, r2, kQ1);
  q = _mm256_fmadd_pd(q, r2, kQ2);
  q = _mm256_fmadd_pd(q, r2, kQ3);
  // exp(r) = 1 + 2p/(q - p)
  __m256d e = _mm256_add_pd(
      _mm256_set1_pd(1.0),
      _mm256_div_pd(_mm256_add_pd(p, p), _mm256_sub_pd(q, p)));

  // Scale by 2^n via the exponent field: (n + 1023) << 52.
  const __m128i ni = _mm256_cvtpd_epi32(n);
  const __m256i ni64 = _mm256_cvtepi32_epi64(ni);
  const __m256i pow2 =
      _mm256_slli_epi64(_mm256_add_epi64(ni64, _mm256_set1_epi64x(1023)), 52);
  e = _mm256_mul_pd(e, _mm256_castsi256_pd(pow2));

  e = _mm256_blendv_pd(e, _mm256_setzero_pd(), too_lo);
  e = _mm256_blendv_pd(e, _mm256_set1_pd(std::numeric_limits<double>::infinity()),
                       too_hi);
  return e;
}

OTFAIR_AVX2 double Avx2LseDiff(const double* x, const double* y, size_t n) {
  // Pass 1: max of (x - y).
  double hi = -std::numeric_limits<double>::infinity();
  size_t i = 0;
  if (n >= 4) {
    __m256d m = _mm256_sub_pd(_mm256_loadu_pd(x), _mm256_loadu_pd(y));
    for (i = 4; i + 4 <= n; i += 4) {
      m = _mm256_max_pd(
          m, _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    }
    hi = HMax(m);
  }
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    if (d > hi) hi = d;
  }
  if (!std::isfinite(hi)) return hi;

  // Pass 2: sum exp((x - y) - hi); every argument is <= 0 so Avx2Exp never
  // hits its overflow clamp, and -inf terms (zero-mass entries) flush to 0
  // through the underflow clamp exactly like std::exp.
  const __m256d vhi = _mm256_set1_pd(hi);
  __m256d vacc = _mm256_setzero_pd();
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    vacc = _mm256_add_pd(vacc, Avx2Exp(_mm256_sub_pd(d, vhi)));
  }
  double acc = HAdd(vacc);
  for (; i < n; ++i) acc += std::exp((x[i] - y[i]) - hi);
  return hi + std::log(acc);
}

#undef OTFAIR_AVX2

constexpr Ops kAvx2Ops = {
    "avx2",         Avx2Sum,        Avx2Dot,      Avx2Max,
    Avx2MaxAbsDiff, Avx2AddInPlace, Avx2ScaledMul, Avx2LseDiff,
};

#endif  // OTFAIR_SIMD_X86

#if defined(OTFAIR_SIMD_NEON)

// ---------------------------------------------------------------------------
// NEON (aarch64) kernels: 2-lane doubles. exp stays scalar in LseDiff — the
// reduction and max passes are still vectorized, which is where the win is
// for the small rows this path sees.
// ---------------------------------------------------------------------------

double NeonSum(const double* x, size_t n) {
  float64x2_t a0 = vdupq_n_f64(0.0), a1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 = vaddq_f64(a0, vld1q_f64(x + i));
    a1 = vaddq_f64(a1, vld1q_f64(x + i + 2));
  }
  double acc = vaddvq_f64(vaddq_f64(a0, a1));
  for (; i < n; ++i) acc += x[i];
  return acc;
}

double NeonDot(const double* x, const double* y, size_t n) {
  float64x2_t a0 = vdupq_n_f64(0.0), a1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 = vfmaq_f64(a0, vld1q_f64(x + i), vld1q_f64(y + i));
    a1 = vfmaq_f64(a1, vld1q_f64(x + i + 2), vld1q_f64(y + i + 2));
  }
  double acc = vaddvq_f64(vaddq_f64(a0, a1));
  for (; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double NeonMax(const double* x, size_t n) {
  double hi = -std::numeric_limits<double>::infinity();
  size_t i = 0;
  if (n >= 2) {
    float64x2_t m = vld1q_f64(x);
    for (i = 2; i + 2 <= n; i += 2) m = vmaxq_f64(m, vld1q_f64(x + i));
    hi = vmaxvq_f64(m);
  }
  for (; i < n; ++i) {
    if (x[i] > hi) hi = x[i];
  }
  return hi;
}

double NeonMaxAbsDiff(const double* x, const double* y, size_t n) {
  float64x2_t m = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    m = vmaxq_f64(m, vabdq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
  }
  double hi = vmaxvq_f64(m);
  for (; i < n; ++i) {
    const double d = std::abs(x[i] - y[i]);
    if (d > hi) hi = d;
  }
  return hi;
}

void NeonAddInPlace(double* dst, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) dst[i] += x[i];
}

void NeonScaledMul(double* dst, const double* x, const double* y, double c,
                   size_t n) {
  const float64x2_t vc = vdupq_n_f64(c);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t cx = vmulq_f64(vc, vld1q_f64(x + i));
    vst1q_f64(dst + i, vmulq_f64(cx, vld1q_f64(y + i)));
  }
  for (; i < n; ++i) dst[i] = c * x[i] * y[i];
}

double NeonLseDiff(const double* x, const double* y, size_t n) {
  double hi = -std::numeric_limits<double>::infinity();
  size_t i = 0;
  if (n >= 2) {
    float64x2_t m = vsubq_f64(vld1q_f64(x), vld1q_f64(y));
    for (i = 2; i + 2 <= n; i += 2) {
      m = vmaxq_f64(m, vsubq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
    }
    hi = vmaxvq_f64(m);
  }
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    if (d > hi) hi = d;
  }
  if (!std::isfinite(hi)) return hi;
  double acc = 0.0;
  for (i = 0; i < n; ++i) acc += std::exp((x[i] - y[i]) - hi);
  return hi + std::log(acc);
}

constexpr Ops kNeonOps = {
    "neon",         NeonSum,        NeonDot,      NeonMax,
    NeonMaxAbsDiff, NeonAddInPlace, NeonScaledMul, NeonLseDiff,
};

#endif  // OTFAIR_SIMD_NEON

const Ops* DetectBest() {
#if defined(OTFAIR_SIMD_X86)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &kAvx2Ops;
  }
#elif defined(OTFAIR_SIMD_NEON)
  return &kNeonOps;  // NEON is architecturally guaranteed on aarch64
#endif
  return &kScalarOps;
}

bool EnvForcesScalar() {
  const char* v = std::getenv("OTFAIR_NO_SIMD");
  if (v == nullptr) return false;
  // Any value other than an explicit "0"/"" disables SIMD.
  return v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& ForceScalarFlag() {
  static std::atomic<bool> flag{EnvForcesScalar()};
  return flag;
}

}  // namespace

const Ops& ScalarOps() { return kScalarOps; }

const Ops& BestOps() {
  static const Ops* best = DetectBest();
  return *best;
}

const Ops& Active() {
  return ForceScalarFlag().load(std::memory_order_relaxed) ? kScalarOps
                                                           : BestOps();
}

void SetForceScalar(bool force) {
  ForceScalarFlag().store(force, std::memory_order_relaxed);
}

bool ForcedScalar() {
  return ForceScalarFlag().load(std::memory_order_relaxed);
}

const char* ActiveIsa() { return Active().isa; }

}  // namespace otfair::common::simd
