#ifndef OTFAIR_COMMON_JSON_WRITER_H_
#define OTFAIR_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace otfair::common {

/// Minimal streaming JSON writer for the machine-readable CLI surfaces
/// (`otfair inspect --json`, `otfair drift --json`) and the serving
/// layer's metrics/health snapshots. Emits compact one-line JSON with
/// proper string escaping; commas are inserted automatically.
///
/// The writer is append-only and does not validate the overall shape
/// beyond nesting: callers must pair Begin/End calls and emit a Key
/// before every value inside an object. Violations are programmer
/// errors (CHECK).
///
///     JsonWriter w;
///     w.BeginObject().Key("rows").Uint(42).Key("drifted").Bool(false);
///     w.EndObject();
///     std::string line = w.str();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the member name for the next value; valid only inside an
  /// object.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  /// Shortest round-trip formatting; non-finite values become null (JSON
  /// has no NaN/Inf).
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The JSON produced so far. Complete once every Begin has been Ended.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  void Raw(const std::string& text);

  std::string out_;
  /// One frame per open object/array: whether a separator is needed
  /// before the next member.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// Escapes `value` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& value);

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_JSON_WRITER_H_
