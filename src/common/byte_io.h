#ifndef OTFAIR_COMMON_BYTE_IO_H_
#define OTFAIR_COMMON_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace otfair::common {

/// Append-only binary serializer over a caller-owned std::string. Scalars
/// are written in native (little-endian on every supported target) byte
/// order, matching the on-disk layout the plan format has always used.
/// The writer never fails: the buffer grows as needed.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }

  void Bytes(const void* data, size_t len) { Raw(data, len); }
  /// u64 length prefix + raw bytes.
  void String(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  void Doubles(const double* data, size_t count) { Raw(data, count * sizeof(double)); }
  void U64s(const uint64_t* data, size_t count) { Raw(data, count * sizeof(uint64_t)); }
  void U32s(const uint32_t* data, size_t count) { Raw(data, count * sizeof(uint32_t)); }

  size_t size() const { return out_->size(); }

 private:
  void Raw(const void* data, size_t len) {
    out_->append(static_cast<const char*>(data), len);
  }

  std::string* out_;
};

/// Bounds-checked binary reader over a caller-owned buffer. Every read
/// returns false instead of running past the end, and `remaining()` lets
/// parsers reject element counts whose payload could not possibly fit —
/// the guard that keeps a corrupt length field from triggering a huge
/// allocation before the truncation is even noticed.
///
/// The reader does not own the buffer; the caller keeps it alive.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), end_(data + size) {}
  explicit ByteReader(const std::string& bytes) : ByteReader(bytes.data(), bytes.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - data_); }
  bool exhausted() const { return data_ == end_; }

  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I32(int32_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }

  bool Bytes(void* out, size_t len) { return Raw(out, len); }
  /// Reads a u64-length-prefixed string, rejecting lengths above
  /// `max_len` (or past the buffer end) before allocating.
  bool String(std::string* s, size_t max_len) {
    uint64_t len = 0;
    if (!U64(&len)) return false;
    if (len > max_len || len > remaining()) return false;
    s->assign(data_, static_cast<size_t>(len));
    data_ += len;
    return true;
  }
  bool Doubles(double* out, size_t count) { return Raw(out, count * sizeof(double)); }
  bool U64s(uint64_t* out, size_t count) { return Raw(out, count * sizeof(uint64_t)); }
  bool U32s(uint32_t* out, size_t count) { return Raw(out, count * sizeof(uint32_t)); }

  /// True when `count` elements of `elem_size` bytes still fit — the
  /// pre-allocation check for length-prefixed arrays.
  bool Fits(uint64_t count, size_t elem_size) const {
    return count <= remaining() / elem_size;
  }

 private:
  bool Raw(void* out, size_t len) {
    if (len > remaining()) {
      data_ = end_;  // poison: every later read fails too
      return false;
    }
    std::memcpy(out, data_, len);
    data_ += len;
    return true;
  }

  const char* data_;
  const char* end_;
};

}  // namespace otfair::common

#endif  // OTFAIR_COMMON_BYTE_IO_H_
