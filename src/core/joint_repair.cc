#include "core/joint_repair.h"

#include <cmath>
#include <string>

#include "common/check.h"
#include "common/parallel.h"
#include "common/status.h"
#include "core/repair_plan.h"
#include "stats/kde2d.h"

namespace otfair::core {

using common::Matrix;
using common::Result;
using common::Rng;
using common::Status;

namespace {

// Rows with less mass than this are treated as empty.
constexpr double kRowMassFloor = 1e-300;

// Mass-relative truncation for the CSR extraction of the entropic joint
// plans (same contract as SinkhornOptions::plan_truncation): row
// marginals stay exact to roundoff, column marginals move by at most
// this fraction of the total mass.
constexpr double kJointPlanTruncation = 1e-12;

/// Separable Gibbs kernel over the product grid: K((a,b),(c,d)) =
/// Kx(a,c) * Ky(b,d). Applying it to a flattened state vector costs
/// O(n_q^3) instead of the O(n_q^4) dense product.
struct SeparableKernel {
  Matrix kx;  // n_qx x n_qx
  Matrix ky;  // n_qy x n_qy

  /// result = K v, with v flattened row-major over (a, b).
  std::vector<double> Apply(const std::vector<double>& v) const {
    const size_t nx = kx.rows();
    const size_t ny = ky.rows();
    OTFAIR_CHECK_EQ(v.size(), nx * ny);
    // V as nx x ny matrix; result = Kx * V * Ky (Ky symmetric).
    Matrix value(nx, ny);
    for (size_t a = 0; a < nx; ++a) {
      for (size_t b = 0; b < ny; ++b) value(a, b) = v[a * ny + b];
    }
    Matrix mid = kx.Multiply(value);
    Matrix out = mid.Multiply(ky);
    std::vector<double> result(nx * ny);
    for (size_t a = 0; a < nx; ++a) {
      for (size_t b = 0; b < ny; ++b) result[a * ny + b] = out(a, b);
    }
    return result;
  }

  double Entry(size_t i, size_t j, size_t ny) const {
    return kx(i / ny, j / ny) * ky(i % ny, j % ny);
  }
};

SeparableKernel BuildKernel(const SupportGrid& gx, const SupportGrid& gy, double epsilon) {
  SeparableKernel kernel;
  kernel.kx = Matrix(gx.size(), gx.size());
  kernel.ky = Matrix(gy.size(), gy.size());
  for (size_t a = 0; a < gx.size(); ++a) {
    for (size_t c = 0; c < gx.size(); ++c) {
      const double d = gx.point(a) - gx.point(c);
      kernel.kx(a, c) = std::exp(-d * d / epsilon);
    }
  }
  for (size_t b = 0; b < gy.size(); ++b) {
    for (size_t d = 0; d < gy.size(); ++d) {
      const double delta = gy.point(b) - gy.point(d);
      kernel.ky(b, d) = std::exp(-delta * delta / epsilon);
    }
  }
  return kernel;
}

/// Entropic barycenter of N pmfs on the shared product grid (iterative
/// Bregman projections with barycentric weights `lambda`).
Result<std::vector<double>> EntropicBarycenter(const SeparableKernel& kernel,
                                               const std::vector<std::vector<double>>& p,
                                               const std::vector<double>& lambda,
                                               size_t max_iterations, double tolerance) {
  const size_t num = p.size();
  const size_t states = p[0].size();
  std::vector<std::vector<double>> scaling(num, std::vector<double>(states, 1.0));
  std::vector<double> bary(states, 1.0 / static_cast<double>(states));
  std::vector<double> prev(states, 0.0);

  for (size_t iter = 0; iter < max_iterations; ++iter) {
    std::vector<double> log_bary(states, 0.0);
    std::vector<std::vector<double>> kv(num);
    for (size_t m = 0; m < num; ++m) {
      std::vector<double> ku = kernel.Apply(scaling[m]);
      std::vector<double> v(states, 0.0);
      for (size_t i = 0; i < states; ++i) v[i] = ku[i] > 0.0 ? p[m][i] / ku[i] : 0.0;
      kv[m] = kernel.Apply(v);
      for (size_t i = 0; i < states; ++i)
        log_bary[i] += lambda[m] * (kv[m][i] > 0.0 ? std::log(kv[m][i]) : -1e30);
    }
    double total = 0.0;
    for (size_t i = 0; i < states; ++i) {
      bary[i] = std::exp(log_bary[i]);
      if (!std::isfinite(bary[i])) return Status::NotConverged("joint barycenter diverged");
      total += bary[i];
    }
    if (total <= 0.0) return Status::NotConverged("joint barycenter lost all mass");
    for (size_t m = 0; m < num; ++m) {
      for (size_t i = 0; i < states; ++i)
        scaling[m][i] = kv[m][i] > 0.0 ? bary[i] / kv[m][i] : 0.0;
    }
    double delta = 0.0;
    for (size_t i = 0; i < states; ++i) delta = std::max(delta, std::fabs(bary[i] - prev[i]));
    prev = bary;
    if (delta < tolerance * total) break;
  }
  double total = 0.0;
  for (double w : bary) total += w;
  for (double& w : bary) w /= total;
  return bary;
}

/// Sinkhorn plan between two pmfs on the shared product grid, returned as a
/// dense states x states coupling.
Result<Matrix> EntropicPlan(const SeparableKernel& kernel, const std::vector<double>& source,
                            const std::vector<double>& target, size_t ny,
                            size_t max_iterations, double tolerance) {
  const size_t states = source.size();
  std::vector<double> alpha(states, 1.0);
  std::vector<double> beta(states, 1.0);
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    std::vector<double> kb = kernel.Apply(beta);
    for (size_t i = 0; i < states; ++i) alpha[i] = kb[i] > 0.0 ? source[i] / kb[i] : 0.0;
    std::vector<double> ka = kernel.Apply(alpha);
    double err = 0.0;
    for (size_t j = 0; j < states; ++j) {
      const double col = beta[j] * ka[j];
      err = std::max(err, std::fabs(col - target[j]));
      beta[j] = ka[j] > 0.0 ? target[j] / ka[j] : 0.0;
    }
    if (err < tolerance) break;
  }
  Matrix plan(states, states);
  for (size_t i = 0; i < states; ++i) {
    if (alpha[i] == 0.0) continue;
    double* row = plan.row(i);
    for (size_t j = 0; j < states; ++j) {
      row[j] = alpha[i] * kernel.Entry(i, j, ny) * beta[j];
      if (!std::isfinite(row[j])) return Status::NotConverged("joint plan diverged");
    }
  }
  return plan;
}

/// Dense 2-D squared-Euclidean cost over the flattened product states,
/// for solving the joint plans through an injected registry backend.
Matrix ProductGridCost(const SupportGrid& gx, const SupportGrid& gy) {
  const size_t ny = gy.size();
  const size_t states = gx.size() * ny;
  // Flattened per-state coordinates, so the O(states^2) loop below does
  // no index arithmetic or grid lookups.
  std::vector<double> xs(states);
  std::vector<double> ys(states);
  for (size_t i = 0; i < states; ++i) {
    xs[i] = gx.point(i / ny);
    ys[i] = gy.point(i % ny);
  }
  Matrix cost(states, states);
  for (size_t i = 0; i < states; ++i) {
    double* row = cost.row(i);
    for (size_t j = 0; j < states; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      row[j] = dx * dx + dy * dy;
    }
  }
  return cost;
}

}  // namespace

Result<JointPairRepairer> JointPairRepairer::Design(const data::Dataset& research, size_t k1,
                                                    size_t k2,
                                                    const JointDesignOptions& options) {
  if (research.empty()) return Status::InvalidArgument("empty research dataset");
  if (k1 >= research.dim() || k2 >= research.dim() || k1 == k2)
    return Status::InvalidArgument("feature pair must be two distinct valid columns");
  if (options.n_q < 2 || options.n_q > 64)
    return Status::InvalidArgument("n_q must lie in [2, 64] (states scale as n_q^2)");
  if (!(options.target_t >= 0.0 && options.target_t <= 1.0))
    return Status::InvalidArgument("target_t must lie in [0, 1]");
  if (!(options.epsilon > 0.0)) return Status::InvalidArgument("epsilon must be positive");
  if (options.solver && !options.solver->supports_general_cost())
    return Status::Unimplemented("joint repair solves product-grid (2-D) problems; backend '" +
                                 options.solver->name() + "' supports 1-D costs only");

  const size_t s_levels = research.s_levels();
  const size_t u_levels = research.u_levels();

  // Barycentric class weights (shared contract: ResolveLambdas).
  auto resolved = ResolveLambdas(options.lambdas, options.target_t, s_levels);
  if (!resolved.ok()) return resolved.status();
  const std::vector<double> lam = std::move(*resolved);

  JointPairRepairer repairer;
  repairer.k1_ = k1;
  repairer.k2_ = k2;
  repairer.s_levels_ = s_levels;
  repairer.strata_.resize(u_levels);

  for (size_t u = 0; u < u_levels; ++u) {
    std::vector<std::vector<size_t>> idx_by_s(s_levels);
    for (size_t s = 0; s < s_levels; ++s) {
      idx_by_s[s] = research.GroupIndices({static_cast<int>(u), static_cast<int>(s)});
      if (idx_by_s[s].size() < options.min_group_size)
        return Status::FailedPrecondition("research group (u=" + std::to_string(u) +
                                          ") too small for joint design");
    }
    const std::vector<size_t> idx_all = research.UIndices(static_cast<int>(u));

    StratumPlan& stratum = repairer.strata_[u];
    stratum.plan.resize(s_levels);
    stratum.alias.resize(s_levels);
    stratum.fallback_row.resize(s_levels);
    auto grid_x = SupportGrid::FromSamples(research.FeatureColumn(k1, idx_all), options.n_q);
    if (!grid_x.ok()) return grid_x.status();
    auto grid_y = SupportGrid::FromSamples(research.FeatureColumn(k2, idx_all), options.n_q);
    if (!grid_y.ok()) return grid_y.status();
    stratum.grid_x = std::move(*grid_x);
    stratum.grid_y = std::move(*grid_y);
    const size_t ny = stratum.grid_y.size();
    const size_t states = stratum.grid_x.size() * ny;

    // Effective epsilon scales with the squared support span, so the same
    // dimensionless option works across feature scales.
    const double span_x = stratum.grid_x.hi() - stratum.grid_x.lo();
    const double span_y = stratum.grid_y.hi() - stratum.grid_y.lo();
    const double epsilon = options.epsilon * (span_x * span_x + span_y * span_y);
    const SeparableKernel kernel = BuildKernel(stratum.grid_x, stratum.grid_y, epsilon);

    // 2-D KDE-interpolated joint marginals, flattened row-major.
    std::vector<std::vector<double>> marginal(s_levels);
    for (size_t s = 0; s < s_levels; ++s) {
      const std::vector<size_t>& idx = idx_by_s[s];
      auto kde = options.bandwidth > 0.0
                     ? stats::GaussianKde2d::Fit(research.FeatureColumn(k1, idx),
                                                 research.FeatureColumn(k2, idx),
                                                 options.bandwidth, options.bandwidth)
                     : stats::GaussianKde2d::FitSilverman(research.FeatureColumn(k1, idx),
                                                          research.FeatureColumn(k2, idx));
      if (!kde.ok()) return kde.status();
      auto pmf = kde->PmfOnGrid(stratum.grid_x.points(), stratum.grid_y.points());
      if (!pmf.ok()) return pmf.status();
      marginal[s].assign(pmf->data(), pmf->data() + pmf->size());
    }

    auto barycenter = EntropicBarycenter(kernel, marginal, lam, options.max_iterations,
                                         options.tolerance);
    if (!barycenter.ok()) return barycenter.status();

    // An injected backend solves the dense product-grid problem under the
    // true 2-D cost; the default path keeps the separable-kernel entropic
    // iteration.
    Matrix product_cost;
    if (options.solver) product_cost = ProductGridCost(stratum.grid_x, stratum.grid_y);
    auto solve_plan = [&](const std::vector<double>& source) -> Result<Matrix> {
      if (!options.solver)
        return EntropicPlan(kernel, source, *barycenter, ny, options.max_iterations,
                            options.tolerance);
      auto solved = options.solver->Solve(source, *barycenter, product_cost);
      if (!solved.ok()) return solved.status();
      return std::move(solved->coupling);
    };

    for (size_t s = 0; s < s_levels; ++s) {
      Result<Matrix> plan = solve_plan(marginal[s]);
      if (!plan.ok()) return plan.status();
      // Truncated CSR extraction: the dense n_q^2 x n_q^2 coupling is a
      // solver intermediate; only its effective support is retained.
      stratum.plan[s] = ot::TruncateToSparse(*plan, kJointPlanTruncation);

      // Alias tables + fallbacks per row, O(nnz) over the CSR support
      // (value spans read in place, no per-row copies).
      auto& alias = stratum.alias[s];
      auto& fallback = stratum.fallback_row[s];
      alias.resize(states);
      fallback.assign(states, 0);
      std::vector<char> has_mass(states, 0);
      const ot::SparsePlan& pi = stratum.plan[s];
      for (size_t q = 0; q < states; ++q) {
        const ot::SparsePlan::RowView row = pi.Row(q);
        double mass = 0.0;
        for (size_t t = 0; t < row.nnz; ++t) mass += row.values[t];
        if (mass > kRowMassFloor) {
          has_mass[q] = 1;
          auto table = stats::AliasTable::Build(row.values, row.nnz);
          if (!table.ok()) return Status::Internal("alias build failed");
          alias[q] = std::move(*table);
        }
      }
      bool any = false;
      for (size_t q = 0; q < states; ++q) any = any || has_mass[q];
      if (!any) return Status::FailedPrecondition("joint plan has no transportable mass");
      for (size_t q = 0; q < states; ++q) {
        if (has_mass[q]) {
          fallback[q] = q;
          continue;
        }
        for (size_t delta = 1; delta < states; ++delta) {
          if (q >= delta && has_mass[q - delta]) {
            fallback[q] = q - delta;
            break;
          }
          if (q + delta < states && has_mass[q + delta]) {
            fallback[q] = q + delta;
            break;
          }
        }
      }
    }
  }
  return repairer;
}

const JointPairRepairer::StratumPlan& JointPairRepairer::PlanFor(int u) const {
  OTFAIR_CHECK(u >= 0 && static_cast<size_t>(u) < strata_.size());
  return strata_[static_cast<size_t>(u)];
}

std::pair<double, double> JointPairRepairer::RepairPair(int u, int s, double x, double y,
                                                        Rng& rng) const {
  OTFAIR_CHECK(s >= 0 && static_cast<size_t>(s) < s_levels_);
  const StratumPlan& stratum = PlanFor(u);
  const size_t ny = stratum.grid_y.size();

  SupportGrid::Location loc_x = stratum.grid_x.Locate(x);
  SupportGrid::Location loc_y = stratum.grid_y.Locate(y);
  size_t qx = loc_x.lower;
  size_t qy = loc_y.lower;
  if (rng.Bernoulli(loc_x.tau) && qx + 1 < stratum.grid_x.size()) ++qx;
  if (rng.Bernoulli(loc_y.tau) && qy + 1 < ny) ++qy;
  size_t row = qx * ny + qy;
  const auto& alias = stratum.alias[static_cast<size_t>(s)];
  if (!alias[row].has_value()) row = stratum.fallback_row[static_cast<size_t>(s)][row];
  // Local draw over the CSR row's support, mapped back to the flattened
  // target state through the row's column indices.
  const size_t j_local = alias[row]->Sample(rng);
  const size_t j = stratum.plan[static_cast<size_t>(s)].Row(row).cols[j_local];
  return {stratum.grid_x.point(j / ny), stratum.grid_y.point(j % ny)};
}

Result<data::Dataset> JointPairRepairer::RepairDataset(const data::Dataset& dataset,
                                                       uint64_t seed) const {
  if (k1_ >= dataset.dim() || k2_ >= dataset.dim())
    return Status::InvalidArgument("dataset lacks the designed feature pair");
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.s(i) < 0 || static_cast<size_t>(dataset.s(i)) >= s_levels_ ||
        dataset.u(i) < 0 || static_cast<size_t>(dataset.u(i)) >= strata_.size())
      return Status::InvalidArgument("dataset labels exceed the designed group levels");
  }
  data::Dataset repaired = dataset.Clone();
  // Row i draws from sub-stream (seed, i), so rows are order-independent
  // and the parallel batch is bit-identical to the serial one.
  common::parallel::ParallelFor(0, dataset.size(), [&](size_t i) {
    Rng rng = Rng::ForStream(seed, i);
    const auto [x, y] = RepairPair(dataset.u(i), dataset.s(i), dataset.feature(i, k1_),
                                   dataset.feature(i, k2_), rng);
    repaired.set_feature(i, k1_, x);
    repaired.set_feature(i, k2_, y);
  });
  return repaired;
}

}  // namespace otfair::core
